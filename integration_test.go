package bfvlsi

// Integration tests: invariants that span multiple subsystems. They tie
// the geometric layout back to the graph it claims to realize, and the
// packaging counts back to simulated traffic.

import (
	"fmt"
	"strings"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/thompson"
)

// parseWire decodes the builder's wire labels back into the swap-butterfly
// edge the wire realizes.
func parseWire(t *testing.T, sb *isn.SwapButterfly, label string) (u, v int) {
	t.Helper()
	var r, to, j int
	switch {
	case strings.HasPrefix(label, "s"):
		if _, err := fmt.Sscanf(label, "s%d.%d", &r, &j); err != nil {
			t.Fatalf("bad straight label %q: %v", label, err)
		}
		return sb.ID(r, j), sb.ID(r, j+1)
	case strings.HasPrefix(label, "c"):
		if _, err := fmt.Sscanf(label, "c%d.%d", &r, &j); err != nil {
			t.Fatalf("bad cross label %q: %v", label, err)
		}
		bit := 1 << uint(sb.Steps[j].Bit)
		return sb.ID(r, j), sb.ID(r^bit, j+1)
	case strings.HasPrefix(label, "m"):
		if _, err := fmt.Sscanf(label, "m%d-%d.%d", &r, &to, &j); err != nil {
			t.Fatalf("bad merged label %q: %v", label, err)
		}
		return sb.ID(r, j), sb.ID(to, j+1)
	case strings.HasPrefix(label, "x"):
		if _, err := fmt.Sscanf(label, "x%d-%d.%d", &r, &to, &j); err != nil {
			t.Fatalf("bad inter label %q: %v", label, err)
		}
		return sb.ID(r, j), sb.ID(to, j+1)
	}
	t.Fatalf("unknown wire label %q", label)
	return 0, 0
}

// Every wire of the built layout realizes exactly one edge of the
// swap-butterfly, the multiset of realized edges equals the graph's edge
// multiset, and each wire's endpoints touch the boxes of its edge's
// endpoint nodes.
func TestLayoutRealizesGraphExactly(t *testing.T) {
	for _, widths := range [][]int{{2, 2}, {1, 1, 1}, {2, 2, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		res, err := thompson.Build(thompson.Params{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		sb := res.SB
		realized := graph.New(sb.G.NumNodes())
		for i := range res.L.Wires {
			w := &res.L.Wires[i]
			u, v := parseWire(t, sb, w.Label)
			realized.AddEdge(u, v, graph.KindStraight)
			// Geometric endpoint containment.
			a, bpt := w.Endpoints()
			ru, su := sb.RowStage(u)
			rv, sv := sb.RowStage(v)
			if !res.NodeRect(ru, su).Contains(a) {
				t.Fatalf("%v: wire %q start %v not on node (%d,%d) box %v",
					spec, w.Label, a, ru, su, res.NodeRect(ru, su))
			}
			if !res.NodeRect(rv, sv).Contains(bpt) {
				t.Fatalf("%v: wire %q end %v not on node (%d,%d) box %v",
					spec, w.Label, bpt, rv, sv, res.NodeRect(rv, sv))
			}
		}
		if !graph.SameEdgeMultiset(realized, sb.G, true) {
			t.Errorf("%v: realized edge multiset differs from the swap-butterfly", spec)
		}
	}
}

// The layout's inter-block wires are exactly the links the row partition
// counts as cut: geometry and packaging agree.
func TestInterBlockWiresMatchPartitionCut(t *testing.T) {
	for _, widths := range [][]int{{2, 2}, {2, 2, 2}, {2, 2, 1}} {
		spec := bitutil.MustGroupSpec(widths...)
		res, err := thompson.Build(thompson.Params{Spec: spec})
		if err != nil {
			t.Fatal(err)
		}
		inter := 0
		for i := range res.L.Wires {
			if strings.HasPrefix(res.L.Wires[i].Label, "x") {
				inter++
			}
		}
		cut := packaging.RowPartition(res.SB).Stats().TotalCutLinks
		if inter != cut {
			t.Errorf("%v: %d inter-block wires vs %d cut links", spec, inter, cut)
		}
	}
}

// Simulated boundary traffic never exceeds the partition's link capacity
// (each cut link carries at most one packet per cycle in each direction).
func TestTrafficWithinCutCapacity(t *testing.T) {
	n := 5
	rows := 1 << uint(n)
	rowsPer := 4
	moduleOf := make([]int, n*rows)
	for col := 0; col < n; col++ {
		for row := 0; row < rows; row++ {
			moduleOf[col*rows+row] = row / rowsPer
		}
	}
	r, err := routing.Simulate(routing.Params{
		N: n, Lambda: 0.9, // above saturation: worst-case pressure
		Warmup: 200, Cycles: 500, Seed: 3, ModuleOf: moduleOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Capacity: count wrapped-butterfly links crossing modules.
	capacity := 0
	for col := 0; col < n; col++ {
		next := (col + 1) % n
		bit := 1 << uint(col)
		for row := 0; row < rows; row++ {
			for _, nr := range []int{row, row ^ bit} {
				if moduleOf[col*rows+row] != moduleOf[next*rows+nr] {
					capacity++
				}
			}
		}
	}
	if r.BoundaryCrossingsPerCycle > float64(capacity) {
		t.Errorf("crossings %.2f/cycle exceed capacity %d", r.BoundaryCrossingsPerCycle, capacity)
	}
	if r.BoundaryCrossingsPerCycle < 1 {
		t.Error("implausibly low boundary traffic at overload")
	}
}

// The whole pipeline at once: spec -> ISN -> swap butterfly (verified)
// -> layout (validated) -> partition -> counts consistent with formulas.
func TestEndToEndPipeline(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 1)
	sb := isn.Transform(spec)
	if err := sb.VerifyAutomorphism(); err != nil {
		t.Fatal(err)
	}
	res, err := thompson.Build(thompson.Params{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Fatal(err)
	}
	st := packaging.RowPartition(sb).Stats()
	want := packaging.GeneralAvgOffLinks([]int{2, 2, 1})
	if diff := st.AvgOffLinksPerNode - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("avg off links %v != formula %v", st.AvgOffLinksPerNode, want)
	}
}

// A fault plan with no faults attached must be invisible: same seed, same
// Result as the plain simulation, in both simulator modes. This is the
// zero-fault equivalence guarantee of the fault subsystem.
func TestFaultFreePlanReproducesBaseline(t *testing.T) {
	for _, buffers := range []int{0, 3} {
		p := routing.Params{N: 5, Lambda: 0.12, Warmup: 80, Cycles: 400, Seed: 29, BufferLimit: buffers}
		base, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		q := p
		q.Faults = faults.MustPlan(p.N)
		wrapped, err := routing.Simulate(q)
		if err != nil {
			t.Fatal(err)
		}
		if *base != *wrapped {
			t.Errorf("buffers=%d: empty fault plan changed the run:\n%+v\nvs\n%+v", buffers, base, wrapped)
		}
	}
}

// Mixed fault load - permanent links, permanent nodes, transients, and a
// module kill projected from a real nucleus partition - with exact
// accounting under both policies and both simulator modes.
func TestFaultAccountingExact(t *testing.T) {
	n := 5
	sb := isn.Transform(thompson.SpecForDim(n))
	moduleOf, err := packaging.RoutingModuleOf(packaging.NucleusPartition(sb), sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, buffers := range []int{0, 3} {
		for _, policy := range []routing.Policy{routing.Misroute, routing.DropDead} {
			plan := faults.MustPlan(n)
			if _, err := plan.AddRandomLinkFaults(0.02, 31); err != nil {
				t.Fatal(err)
			}
			if _, err := plan.AddRandomNodeFaults(0.01, 32); err != nil {
				t.Fatal(err)
			}
			if err := plan.AddRandomTransientLinkFaults(12, 300, 60, 33); err != nil {
				t.Fatal(err)
			}
			if _, err := plan.AddModuleFault(moduleOf, 0, 50, 200); err != nil {
				t.Fatal(err)
			}
			r, err := routing.Simulate(routing.Params{
				N: n, Lambda: 0.1, Warmup: 60, Cycles: 400, Seed: 37,
				BufferLimit: buffers, Faults: plan, Policy: policy,
				TTL: faults.DefaultTTL(n),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := r.CheckConservation(); err != nil {
				t.Errorf("buffers=%d policy=%v: %v", buffers, policy, err)
			}
			if r.TotalDelivered == 0 {
				t.Errorf("buffers=%d policy=%v: nothing delivered", buffers, policy)
			}
			if r.Unreachable == 0 {
				t.Errorf("buffers=%d policy=%v: no unreachable despite dead nodes", buffers, policy)
			}
		}
	}
}

// The packaging pipeline feeds the fault model end to end: partition a
// swap-butterfly, project it onto the routing machine, kill one module,
// and the simulated network degrades but keeps routing around the hole.
func TestModuleKillEndToEnd(t *testing.T) {
	n := 6
	base := routing.Params{N: n, Lambda: 0.1, Warmup: 60, Cycles: 300, Seed: 41}
	baseline, err := routing.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	sb := isn.Transform(thompson.SpecForDim(n))
	moduleOf, err := packaging.RoutingModuleOf(packaging.NucleusPartition(sb), sb)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.MustPlan(n)
	killed, err := plan.AddModuleFault(moduleOf, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if killed == 0 {
		t.Fatal("module 0 killed no nodes")
	}
	p := base
	p.Faults = plan
	p.TTL = faults.DefaultTTL(n)
	r, err := routing.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Throughput >= baseline.Throughput {
		t.Errorf("killing a module did not reduce throughput: %v -> %v",
			baseline.Throughput, r.Throughput)
	}
	if r.Unreachable == 0 {
		t.Error("no traffic addressed the dead module")
	}
	if r.Delivered == 0 {
		t.Error("the surviving network stopped delivering")
	}
}
