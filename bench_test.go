package bfvlsi

// One benchmark per experiment of the reproduction index (DESIGN.md,
// E1-E12). Each benchmark regenerates the core computation behind its
// table/figure; `go test -bench . -benchmem` therefore re-measures the
// entire evaluation. Custom metrics report the headline quantity of each
// experiment alongside time and allocations.

import (
	"math/rand"
	"testing"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/analysis"
	"bfvlsi/internal/benes"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/cubelayout"
	"bfvlsi/internal/faults"
	"bfvlsi/internal/fftsim"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/thompson"
)

// E1: Fig. 1 - transform the 4x4 ISN and verify the automorphism.
func BenchmarkE1TransformSmall(b *testing.B) {
	spec := bitutil.MustGroupSpec(1, 1)
	for i := 0; i < b.N; i++ {
		sb := isn.Transform(spec)
		if err := sb.VerifyAutomorphism(); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: Fig. 2 - 8x8 and 16x16 swap-butterflies.
func BenchmarkE2TransformMedium(b *testing.B) {
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 1),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 2),
	}
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			sb := isn.Transform(spec)
			if err := sb.VerifyAutomorphism(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E3: Fig. 3 - the recursive grid layout, built end to end.
func BenchmarkE3ThompsonLayout(b *testing.B) {
	spec := thompson.SpecForDim(6)
	b.ReportAllocs()
	var area int64
	for i := 0; i < b.N; i++ {
		res, err := thompson.Build(thompson.Params{Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		area = res.L.Stats().Area
	}
	b.ReportMetric(float64(area), "area")
}

// E4: Fig. 4 - optimal collinear layout of K_N plus geometry validation.
func BenchmarkE4Collinear(b *testing.B) {
	var tracks int
	for i := 0; i < b.N; i++ {
		ta := collinear.MustOptimal(64)
		if err := ta.Validate(); err != nil {
			b.Fatal(err)
		}
		tracks = ta.NumTracks
	}
	b.ReportMetric(float64(tracks), "tracks")
}

// E5: Sec. 2.3 - off-module links of the swap-link partition.
func BenchmarkE5Packaging(b *testing.B) {
	sb := isn.Transform(bitutil.MustGroupSpec(3, 3, 3))
	var avg float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avg = packaging.RowPartition(sb).Stats().AvgOffLinksPerNode
	}
	b.ReportMetric(avg, "off-links/node")
}

// E6: Theorem 2.1 - nucleus partition bound checking.
func BenchmarkE6Theorem21(b *testing.B) {
	sb := isn.Transform(bitutil.MustGroupSpec(3, 3, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := packaging.Theorem21(sb); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: Sec. 3 - Thompson area and wire-length bound regeneration at n=9.
func BenchmarkE7ThompsonBounds(b *testing.B) {
	spec := thompson.SpecForDim(9)
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := thompson.Build(thompson.Params{Spec: spec})
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(res.L.Stats().Area) / analysis.LeadingAreaExact(9)
	}
	b.ReportMetric(ratio, "area/2^2n")
}

// E8: Theorem 4.1 - the multilayer sweep (L = 2, 4, 8).
func BenchmarkE8Multilayer(b *testing.B) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	for i := 0; i < b.N; i++ {
		for _, L := range []int{2, 4, 8} {
			if _, err := thompson.Build(thompson.Params{Spec: spec, Layers: L, Multilayer: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E9: Sec. 5.2 - the full chip/board design search.
func BenchmarkE9Hierarchical(b *testing.B) {
	var area int64
	for i := 0; i < b.N; i++ {
		d, err := hierarchy.Design(9, 64, 20)
		if err != nil {
			b.Fatal(err)
		}
		area = d.BoardArea(2)
	}
	b.ReportMetric(float64(area), "board-area-L2")
}

// E10: Sec. 2.3 - routing simulation near saturation.
func BenchmarkE10Routing(b *testing.B) {
	var thr float64
	for i := 0; i < b.N; i++ {
		r, err := routing.Simulate(routing.Params{
			N: 6, Lambda: routing.TheoreticalSaturation(6) * 0.8,
			Warmup: 100, Cycles: 300, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		thr = r.Throughput
	}
	b.ReportMetric(thr, "throughput")
}

// E11: Sec. 3.3 - node-size scalability build (side 8).
func BenchmarkE11Scalability(b *testing.B) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	for i := 0; i < b.N; i++ {
		if _, err := thompson.Build(thompson.Params{Spec: spec, NodeSide: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// E12: Sec. 2.2 - FFT along the ISN, 512 points.
func BenchmarkE12FFT(b *testing.B) {
	in := isn.New(bitutil.MustGroupSpec(3, 3, 3))
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, in.Rows)
	for i := range x {
		x[i] = complex(rng.Float64(), rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fftsim.OnISN(in, x); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline micro-benchmark: plain butterfly construction for scale
// context next to E1-E3.
func BenchmarkButterflyB12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		butterfly.New(12)
	}
}

// E13: extension - hypercube and torus layouts via the same scheme.
func BenchmarkE13CubeLayouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := cubelayout.Hypercube(8); err != nil {
			b.Fatal(err)
		}
		if _, err := cubelayout.Torus(16); err != nil {
			b.Fatal(err)
		}
	}
}

// E14: extension - Benes looping algorithm.
func BenchmarkE14BenesRoute(b *testing.B) {
	net := benes.New(8)
	rng := rand.New(rand.NewSource(2))
	perm := rng.Perm(net.T)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Reset()
		if err := net.Route(perm); err != nil {
			b.Fatal(err)
		}
	}
}

// E15: extension - adversarial traffic simulation.
func BenchmarkE15BitReverseTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := routing.SimulatePattern(routing.Params{
			N: 5, Lambda: 0.2, Warmup: 50, Cycles: 200, Seed: int64(i),
		}, routing.BitReverse); err != nil {
			b.Fatal(err)
		}
	}
}

// E16: extension - three-level packaging design.
func BenchmarkE16MultiLevel(b *testing.B) {
	spec := bitutil.MustGroupSpec(3, 3, 3)
	for i := 0; i < b.N; i++ {
		if _, err := hierarchy.DesignMultiLevel(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// E21: extension - fault-tolerant routing, misrouting around 5% dead
// links with exact packet accounting.
func BenchmarkE21FaultRouting(b *testing.B) {
	plan := faults.MustPlan(5)
	if _, err := plan.AddRandomLinkFaults(0.05, 3); err != nil {
		b.Fatal(err)
	}
	var misroutes int
	for i := 0; i < b.N; i++ {
		r, err := routing.Simulate(routing.Params{
			N: 5, Lambda: 0.15, Warmup: 50, Cycles: 200, Seed: 3,
			Faults: plan, TTL: faults.DefaultTTL(5),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := r.CheckConservation(); err != nil {
			b.Fatal(err)
		}
		misroutes = r.Misroutes
	}
	b.ReportMetric(float64(misroutes), "misroutes")
}

// E22: extension - cycle cost of the end-to-end reliability layer:
// fault-free baseline vs retransmission under rolling link outages, with
// exact copy conservation on every run.
func BenchmarkE22ReliableDelivery(b *testing.B) {
	run := func(b *testing.B, outages bool) {
		var retx int
		for i := 0; i < b.N; i++ {
			tr := reliable.MustNew(reliable.Config{Timeout: 20, MaxRetries: 3, Jitter: 3, Seed: 5})
			p := routing.Params{
				N: 5, Lambda: 0.1, Warmup: 50, Cycles: 200, Seed: 3,
				Policy: routing.DropDead, Reliable: tr,
			}
			if outages {
				plan := faults.MustPlan(5)
				if err := plan.AddRandomTransientLinkFaults(60, 250, 40, 7); err != nil {
					b.Fatal(err)
				}
				p.Faults = plan
				p.TTL = faults.DefaultTTL(5)
			}
			r, err := routing.Simulate(p)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.CheckConservation(); err != nil {
				b.Fatal(err)
			}
			retx = r.Retransmitted
		}
		b.ReportMetric(float64(retx), "retx")
	}
	b.Run("fault-free", func(b *testing.B) { run(b, false) })
	b.Run("outages", func(b *testing.B) { run(b, true) })
}

// E23: extension - recovery under permanent module-kill: the static
// misroute policy vs the adaptive router (breakers + detours + epoch
// maps) on the same nucleus-module wreckage, with exact copy
// conservation on every run. The headline metric is delivered packets;
// adaptive's dimension-shift detours recover traffic misroute loses.
func BenchmarkE23AdaptiveRecovery(b *testing.B) {
	makePlan := func() *faults.Plan {
		plan := faults.MustPlan(5)
		schemes, err := faults.StandardSchemes(5)
		if err != nil {
			b.Fatal(err)
		}
		sc := schemes[1] // nucleus
		for _, m := range faults.PickModules(sc.NumModules, 2, 7) {
			if _, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
		return plan
	}
	run := func(b *testing.B, adapt bool) {
		var delivered, detours int
		for i := 0; i < b.N; i++ {
			p := routing.Params{
				N: 5, Lambda: 0.06, Warmup: 100, Cycles: 400, Seed: 3,
				Faults: makePlan(), TTL: faults.DefaultTTL(5),
			}
			if adapt {
				rt, err := adaptive.New(adaptive.DefaultConfig(5))
				if err != nil {
					b.Fatal(err)
				}
				p.Adaptive = rt
			}
			r, err := routing.Simulate(p)
			if err != nil {
				b.Fatal(err)
			}
			if err := r.CheckConservation(); err != nil {
				b.Fatal(err)
			}
			delivered, detours = r.Delivered, r.Detours
		}
		b.ReportMetric(float64(delivered), "delivered")
		b.ReportMetric(float64(detours), "detours")
	}
	b.Run("misroute", func(b *testing.B) { run(b, false) })
	b.Run("adaptive", func(b *testing.B) { run(b, true) })
}
