package bitutil

import "testing"

// FuzzSwapNeighbor checks the swap involution and range invariants for
// arbitrary specs and addresses (run with `go test -fuzz FuzzSwapNeighbor`
// for continuous fuzzing; the seeds below run in every `go test`).
func FuzzSwapNeighbor(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(2), uint64(0b101_01_110))
	f.Add(uint8(1), uint8(1), uint8(1), uint64(5))
	f.Add(uint8(4), uint8(4), uint8(0), uint64(0xABCD))
	f.Fuzz(func(t *testing.T, k1, k2, k3 uint8, x uint64) {
		widths := []int{1 + int(k1)%8}
		if k2 > 0 {
			widths = append(widths, 1+int(k2)%widths[0])
		}
		if k3 > 0 && len(widths) == 2 {
			widths = append(widths, 1+int(k3)%widths[0])
		}
		spec, err := NewGroupSpec(widths...)
		if err != nil {
			t.Fatalf("generator produced invalid spec %v: %v", widths, err)
		}
		x &= spec.Size() - 1
		if spec.JoinGroups(spec.SplitGroups(x)) != x {
			t.Fatalf("split/join not inverse on %#x", x)
		}
		for lvl := 2; lvl <= spec.Levels(); lvl++ {
			y := spec.SwapNeighbor(x, lvl)
			if !spec.Valid(y) {
				t.Fatalf("neighbor %#x out of range", y)
			}
			if spec.SwapNeighbor(y, lvl) != x {
				t.Fatalf("swap at level %d not involutive on %#x", lvl, x)
			}
		}
	})
}
