// Package bitutil provides the bit-field algebra used to address nodes of
// swap networks, indirect swap networks, and butterfly networks.
//
// A node address is an n-bit unsigned integer. Swap networks partition the
// address into l contiguous groups of widths k_1, ..., k_l (group 1 is the
// least significant). The defining operation of a level-i swap link is
// exchanging the i-th group with the rightmost k_i bits of the address
// (paper, Appendix A.1).
package bitutil

import "fmt"

// Mask returns a mask with the low k bits set. k must be in [0, 63].
func Mask(k int) uint64 {
	if k < 0 || k > 63 {
		panic(fmt.Sprintf("bitutil: Mask width %d out of range [0,63]", k))
	}
	return (uint64(1) << uint(k)) - 1
}

// Field extracts the k-bit field of x starting at bit position pos
// (little-endian: pos 0 is the least significant bit).
func Field(x uint64, pos, k int) uint64 {
	return (x >> uint(pos)) & Mask(k)
}

// SetField returns x with the k-bit field starting at pos replaced by the
// low k bits of v.
func SetField(x uint64, pos, k int, v uint64) uint64 {
	m := Mask(k) << uint(pos)
	return (x &^ m) | ((v & Mask(k)) << uint(pos))
}

// SwapFields returns x with the k-bit field at position posA exchanged with
// the k-bit field at position posB. The two fields must not overlap.
func SwapFields(x uint64, posA, posB, k int) uint64 {
	if overlap(posA, posB, k) {
		panic(fmt.Sprintf("bitutil: SwapFields overlap: posA=%d posB=%d k=%d", posA, posB, k))
	}
	a := Field(x, posA, k)
	b := Field(x, posB, k)
	x = SetField(x, posA, k, b)
	return SetField(x, posB, k, a)
}

func overlap(posA, posB, k int) bool {
	if k == 0 {
		return false
	}
	lo, hi := posA, posB
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo+k > hi
}

// CheckedShl returns x << s, with ok=false when the shift amount is out
// of range or the shifted value does not fit in int. It is the
// overflow-checked primitive behind the layout constructors' 2^n row
// and column counts (the bflint overflowcalc analyzer flags unchecked
// shifts whose amount it cannot bound below 63).
func CheckedShl(x, s int) (v int, ok bool) {
	if s < 0 || s > 62 {
		return 0, false
	}
	if x == 0 {
		return 0, true
	}
	v = x << uint(s)
	if v>>uint(s) != x || (x > 0) != (v > 0) {
		return 0, false
	}
	return v, true
}

// CheckedMul returns a * b, with ok=false when the product overflows
// int. Companion of CheckedShl for the layout area/track products
// (⌊N²/4⌋ and friends).
func CheckedMul(a, b int) (v int, ok bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	v = a * b
	// The division round-trip detects wrapping; MinInt/-1 overflows the
	// check itself and is handled first.
	if a == -1 && v == -v && v < 0 {
		return 0, false // b == MinInt
	}
	if v/a != b {
		return 0, false
	}
	return v, true
}

// GroupSpec describes the partition of an address into groups of widths
// Widths[0] (least significant, k_1) through Widths[l-1] (k_l).
type GroupSpec struct {
	Widths []int
}

// NewGroupSpec validates and returns a group spec for the given widths
// (k_1 first). Every width must be positive and, per the swap-network
// definition, k_i <= n_{i-1} for i >= 2 (so a level-i swap is well formed);
// for the networks in this paper the stronger condition k_i <= k_1 holds,
// which we enforce because the ISN stage schedule relies on it.
func NewGroupSpec(widths ...int) (GroupSpec, error) {
	if len(widths) == 0 {
		return GroupSpec{}, fmt.Errorf("bitutil: group spec needs at least one group")
	}
	for i, k := range widths {
		if k <= 0 {
			return GroupSpec{}, fmt.Errorf("bitutil: group %d has non-positive width %d", i+1, k)
		}
		if i > 0 && k > widths[0] {
			return GroupSpec{}, fmt.Errorf("bitutil: group %d width %d exceeds nucleus width k1=%d", i+1, k, widths[0])
		}
	}
	if total(widths) > 62 {
		return GroupSpec{}, fmt.Errorf("bitutil: total address width %d exceeds 62 bits", total(widths))
	}
	cp := make([]int, len(widths))
	copy(cp, widths)
	return GroupSpec{Widths: cp}, nil
}

// MustGroupSpec is NewGroupSpec that panics on error; for tests and
// literals with known-good parameters.
func MustGroupSpec(widths ...int) GroupSpec {
	gs, err := NewGroupSpec(widths...)
	if err != nil {
		panic(err)
	}
	return gs
}

func total(ws []int) int {
	t := 0
	for _, w := range ws {
		t += w
	}
	return t
}

// Levels returns l, the number of groups.
func (g GroupSpec) Levels() int { return len(g.Widths) }

// TotalBits returns n_l, the total address width.
func (g GroupSpec) TotalBits() int { return total(g.Widths) }

// Size returns the number of addresses, 2^{n_l}.
func (g GroupSpec) Size() uint64 { return uint64(1) << uint(g.TotalBits()) }

// GroupPos returns the bit position of the least significant bit of group
// level (1-based): n_{level-1} = k_1 + ... + k_{level-1}.
func (g GroupSpec) GroupPos(level int) int {
	if level < 1 || level > len(g.Widths) {
		panic(fmt.Sprintf("bitutil: group level %d out of range [1,%d]", level, len(g.Widths)))
	}
	pos := 0
	for i := 0; i < level-1; i++ {
		pos += g.Widths[i]
	}
	return pos
}

// GroupWidth returns k_level.
func (g GroupSpec) GroupWidth(level int) int {
	if level < 1 || level > len(g.Widths) {
		panic(fmt.Sprintf("bitutil: group level %d out of range [1,%d]", level, len(g.Widths)))
	}
	return g.Widths[level-1]
}

// SwapNeighbor returns the level-i swap neighbor of address x: the address
// obtained by exchanging the i-th group with the rightmost k_i bits
// (Appendix A.1). Level must be >= 2. If the group and the rightmost field
// hold equal values the address is its own neighbor (a fixed point).
func (g GroupSpec) SwapNeighbor(x uint64, level int) uint64 {
	if level < 2 {
		panic("bitutil: SwapNeighbor level must be >= 2")
	}
	k := g.GroupWidth(level)
	pos := g.GroupPos(level)
	return SwapFields(x, 0, pos, k)
}

// Valid reports whether x is a valid address under the spec.
func (g GroupSpec) Valid(x uint64) bool { return x < g.Size() }

// String renders the spec as (k_1, k_2, ..., k_l).
func (g GroupSpec) String() string {
	s := "("
	for i, w := range g.Widths {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(w)
	}
	return s + ")"
}

// SplitGroups returns the value of each group of x, group 1 first.
func (g GroupSpec) SplitGroups(x uint64) []uint64 {
	out := make([]uint64, len(g.Widths))
	pos := 0
	for i, w := range g.Widths {
		out[i] = Field(x, pos, w)
		pos += w
	}
	return out
}

// JoinGroups is the inverse of SplitGroups.
func (g GroupSpec) JoinGroups(parts []uint64) uint64 {
	if len(parts) != len(g.Widths) {
		panic("bitutil: JoinGroups arity mismatch")
	}
	var x uint64
	pos := 0
	for i, w := range g.Widths {
		x = SetField(x, pos, w, parts[i])
		pos += w
	}
	return x
}
