package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		k    int
		want uint64
	}{
		{0, 0},
		{1, 1},
		{2, 3},
		{8, 255},
		{16, 65535},
		{63, (uint64(1) << 63) - 1},
	}
	for _, c := range cases {
		if got := Mask(c.k); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.k, got, c.want)
		}
	}
}

func TestMaskPanicsOutOfRange(t *testing.T) {
	for _, k := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mask(%d) did not panic", k)
				}
			}()
			Mask(k)
		}()
	}
}

func TestFieldSetField(t *testing.T) {
	x := uint64(0b1101_0110)
	if got := Field(x, 0, 4); got != 0b0110 {
		t.Errorf("Field low nibble = %#b", got)
	}
	if got := Field(x, 4, 4); got != 0b1101 {
		t.Errorf("Field high nibble = %#b", got)
	}
	y := SetField(x, 4, 4, 0b1010)
	if y != 0b1010_0110 {
		t.Errorf("SetField = %#b", y)
	}
	// SetField must ignore high bits of v beyond width k.
	z := SetField(0, 0, 2, 0xFF)
	if z != 0b11 {
		t.Errorf("SetField truncation = %#b", z)
	}
}

func TestSwapFields(t *testing.T) {
	x := uint64(0b01_10) // group at pos 2 = 01, pos 0 = 10
	got := SwapFields(x, 0, 2, 2)
	if got != 0b10_01 {
		t.Errorf("SwapFields = %#b, want %#b", got, 0b1001)
	}
}

func TestSwapFieldsOverlapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SwapFields with overlapping fields did not panic")
		}
	}()
	SwapFields(0, 0, 1, 2)
}

func TestSwapFieldsInvolution(t *testing.T) {
	f := func(x uint64, posA, posB, k uint8) bool {
		pa := int(posA % 20)
		pb := 24 + int(posB%20)
		kk := 1 + int(k%4)
		y := SwapFields(x, pa, pb, kk)
		return SwapFields(y, pa, pb, kk) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewGroupSpecValidation(t *testing.T) {
	if _, err := NewGroupSpec(); err == nil {
		t.Error("empty spec accepted")
	}
	if _, err := NewGroupSpec(0); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewGroupSpec(3, -1); err == nil {
		t.Error("negative width accepted")
	}
	if _, err := NewGroupSpec(2, 3); err == nil {
		t.Error("k2 > k1 accepted")
	}
	if _, err := NewGroupSpec(40, 40); err == nil {
		t.Error("over-wide spec accepted")
	}
	gs, err := NewGroupSpec(3, 3, 2)
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if gs.Levels() != 3 || gs.TotalBits() != 8 || gs.Size() != 256 {
		t.Errorf("spec summary wrong: %v levels=%d bits=%d size=%d", gs, gs.Levels(), gs.TotalBits(), gs.Size())
	}
}

func TestGroupSpecAccessors(t *testing.T) {
	gs := MustGroupSpec(4, 3, 2)
	if gs.GroupPos(1) != 0 || gs.GroupPos(2) != 4 || gs.GroupPos(3) != 7 {
		t.Errorf("GroupPos: %d %d %d", gs.GroupPos(1), gs.GroupPos(2), gs.GroupPos(3))
	}
	if gs.GroupWidth(1) != 4 || gs.GroupWidth(2) != 3 || gs.GroupWidth(3) != 2 {
		t.Errorf("GroupWidth wrong")
	}
	if gs.String() != "(4,3,2)" {
		t.Errorf("String = %q", gs.String())
	}
}

func TestSwapNeighborSmall(t *testing.T) {
	// Spec (1,1): addresses are 2 bits; level-2 swap exchanges bit 0 and bit 1.
	gs := MustGroupSpec(1, 1)
	cases := map[uint64]uint64{0b00: 0b00, 0b01: 0b10, 0b10: 0b01, 0b11: 0b11}
	for x, want := range cases {
		if got := gs.SwapNeighbor(x, 2); got != want {
			t.Errorf("SwapNeighbor(%#b, 2) = %#b, want %#b", x, got, want)
		}
	}
}

func TestSwapNeighborMatchesDefinition(t *testing.T) {
	// For spec (3,2): level-2 neighbor of x = swap rightmost 2 bits with bits [3,5).
	gs := MustGroupSpec(3, 2)
	for x := uint64(0); x < gs.Size(); x++ {
		lo := x & 3
		grp := (x >> 3) & 3
		want := (x &^ (3 | (3 << 3))) | (grp) | (lo << 3)
		if got := gs.SwapNeighbor(x, 2); got != want {
			t.Errorf("SwapNeighbor(%#b) = %#b, want %#b", x, got, want)
		}
	}
}

func TestSwapNeighborInvolutionProperty(t *testing.T) {
	specs := []GroupSpec{
		MustGroupSpec(3, 3, 3),
		MustGroupSpec(4, 2),
		MustGroupSpec(2, 2, 2, 2),
		MustGroupSpec(5, 4, 3),
	}
	rng := rand.New(rand.NewSource(1))
	for _, gs := range specs {
		for trial := 0; trial < 200; trial++ {
			x := rng.Uint64() & (gs.Size() - 1)
			for lvl := 2; lvl <= gs.Levels(); lvl++ {
				y := gs.SwapNeighbor(x, lvl)
				if !gs.Valid(y) {
					t.Fatalf("%v: SwapNeighbor(%d,%d) out of range", gs, x, lvl)
				}
				if gs.SwapNeighbor(y, lvl) != x {
					t.Fatalf("%v: swap at level %d not an involution on %#b", gs, lvl, x)
				}
			}
		}
	}
}

func TestSwapNeighborLevelOnePanics(t *testing.T) {
	gs := MustGroupSpec(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("SwapNeighbor(level=1) did not panic")
		}
	}()
	gs.SwapNeighbor(0, 1)
}

func TestSplitJoinGroups(t *testing.T) {
	gs := MustGroupSpec(3, 2, 2)
	f := func(x uint64) bool {
		x &= gs.Size() - 1
		return gs.JoinGroups(gs.SplitGroups(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	parts := gs.SplitGroups(0b11_01_101)
	if parts[0] != 0b101 || parts[1] != 0b01 || parts[2] != 0b11 {
		t.Errorf("SplitGroups = %v", parts)
	}
}

func BenchmarkSwapNeighbor(b *testing.B) {
	gs := MustGroupSpec(8, 8, 8)
	x := uint64(0x123456)
	for i := 0; i < b.N; i++ {
		x = gs.SwapNeighbor(x, 3)
	}
	_ = x
}
