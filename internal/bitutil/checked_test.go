package bitutil

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestCheckedShl(t *testing.T) {
	tests := []struct {
		x, s   int
		want   int
		wantOK bool
	}{
		{1, 0, 1, true},
		{1, 10, 1024, true},
		{1, 62, 1 << 62, true},
		{0, 200, 0, false},     // amount validated before the zero fast path
		{3, 61, 3 << 61, true}, // 3·2^61 < 2^63: still representable
		{3, 62, 0, false},
		{1, 63, 0, false},
		{1, 64, 0, false},
		{1, -1, 0, false},
		{-1, 5, -32, true},
		{-2, 62, math.MinInt, true}, // exactly MinInt: representable
		{-3, 62, 0, false},
		{math.MaxInt, 1, 0, false},
	}
	for _, tt := range tests {
		got, ok := CheckedShl(tt.x, tt.s)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("CheckedShl(%d, %d) = (%d, %v), want (%d, %v)", tt.x, tt.s, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestCheckedShlZeroRejectsBadAmount(t *testing.T) {
	// Even a zero operand must reject out-of-range shift amounts: the
	// amount is caller input and silently accepting it would hide the
	// validation bug until the operand became nonzero.
	if _, ok := CheckedShl(0, 63); ok {
		t.Error("CheckedShl(0, 63) accepted an out-of-range amount")
	}
	if _, ok := CheckedShl(0, -1); ok {
		t.Error("CheckedShl(0, -1) accepted a negative amount")
	}
}

func TestCheckedMul(t *testing.T) {
	tests := []struct {
		a, b   int
		want   int
		wantOK bool
	}{
		{0, math.MaxInt, 0, true},
		{math.MaxInt, 0, 0, true},
		{3, 5, 15, true},
		{-3, 5, -15, true},
		{math.MaxInt, 1, math.MaxInt, true},
		{math.MaxInt, 2, 0, false},
		{math.MinInt, 1, math.MinInt, true},
		{math.MinInt, -1, 0, false},
		{-1, math.MinInt, 0, false},
		{1 << 31, 1 << 31, 1 << 62, true},
		{1 << 32, 1 << 31, 0, false},
		{-(1 << 32), 1 << 31, -(1 << 63), true},
		{-(1 << 32), -(1 << 31), 0, false},
	}
	for _, tt := range tests {
		got, ok := CheckedMul(tt.a, tt.b)
		if ok != tt.wantOK || (ok && got != tt.want) {
			t.Errorf("CheckedMul(%d, %d) = (%d, %v), want (%d, %v)", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
		}
	}
}

// TestCheckedMulAgainstBigInt cross-checks the overflow detection
// against arbitrary-precision arithmetic over random operands.
func TestCheckedMulAgainstBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		got, ok := CheckedMul(int(a), int(b))
		exact := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		fits := exact.IsInt64()
		if ok != fits {
			return false
		}
		return !ok || int64(got) == exact.Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCheckedShlAgainstBigInt does the same for shifts.
func TestCheckedShlAgainstBigInt(t *testing.T) {
	f := func(x int64, s uint8) bool {
		sh := int(s % 70)
		got, ok := CheckedShl(int(x), sh)
		exact := new(big.Int).Lsh(big.NewInt(x), uint(sh))
		fits := sh <= 62 && exact.IsInt64()
		if ok != fits {
			return false
		}
		return !ok || int64(got) == exact.Int64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
