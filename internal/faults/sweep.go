package faults

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/thompson"
)

// Point is one fault level of a link-fault degradation sweep.
type Point struct {
	// Rate is the independent per-link fault probability of this level.
	Rate float64
	// DeadLinks is the number of directed links actually killed.
	DeadLinks int
	Result    *routing.Result
	Err       error
}

// Sweep measures throughput and latency degradation as the link fault
// rate grows: one simulation per rate, each with its own permanent
// random link faults drawn from a seed derived deterministically from
// base.Seed and the level index, so the sweep is reproducible regardless
// of scheduling. Levels run concurrently (one goroutine per CPU, capped).
//
// base.Faults must be nil (each level builds its own plan). If base.TTL
// is 0, faulted levels get DefaultTTL(base.N) so trapped packets are
// dropped and accounted rather than pooling in Backlog; a zero-rate level
// keeps TTL 0 and therefore reproduces the fault-free baseline exactly.
func Sweep(base routing.Params, rates []float64) []Point {
	out := make([]Point, len(rates))
	run := func(i int) {
		pt := &out[i]
		pt.Rate = rates[i]
		plan, err := NewPlan(base.N)
		if err != nil {
			pt.Err = err
			return
		}
		dead, err := plan.AddRandomLinkFaults(rates[i], base.Seed+int64(i)*1_000_003+1)
		if err != nil {
			pt.Err = err
			return
		}
		pt.DeadLinks = dead
		p := base
		p.Faults = plan
		if p.TTL == 0 && dead > 0 {
			p.TTL = DefaultTTL(base.N)
		}
		pt.Result, pt.Err = routing.Simulate(p)
		if pt.Err == nil {
			pt.Err = pt.Result.CheckConservation()
		}
		if pt.Err != nil {
			// Fail loudly with the cell's coordinates: a sweep must never
			// hand an inconsistent row downstream without saying which.
			pt.Err = fmt.Errorf("faults: sweep rate %g (%d dead links): %w", pt.Rate, pt.DeadLinks, pt.Err)
		}
	}
	forEach(len(rates), run)
	return out
}

// Scheme is a named module assignment of the wrapped butterfly - one
// packaging variant viewed as a set of failure domains.
type Scheme struct {
	Name string
	// ModuleOf maps wrapped node id -> module (see
	// packaging.RoutingModuleOf).
	ModuleOf   []int
	NumModules int
}

// PartitionScheme wraps a packaging partition into a Scheme. Pass the
// swap-butterfly the partition was built from, or nil for plain-butterfly
// partitions (NaiveRowPartition). Module ids are re-densified over the
// wrapped network: a module that owns only stage-n nodes (possible for
// the last nucleus segment) vanishes under the wrap and is not a failure
// domain of the simulated machine.
func PartitionScheme(name string, part *packaging.Partition, sb *isn.SwapButterfly) (Scheme, error) {
	moduleOf, err := packaging.RoutingModuleOf(part, sb)
	if err != nil {
		return Scheme{}, err
	}
	present := make(map[int]bool)
	for _, m := range moduleOf {
		present[m] = true
	}
	ids := make([]int, 0, len(present))
	for m := range present {
		ids = append(ids, m)
	}
	sort.Ints(ids)
	remap := make(map[int]int, len(ids))
	for dense, m := range ids {
		remap[m] = dense
	}
	dense := make([]int, len(moduleOf))
	for i, m := range moduleOf {
		dense[i] = remap[m]
	}
	return Scheme{Name: name, ModuleOf: dense, NumModules: len(ids)}, nil
}

// StandardSchemes builds the three packagings the paper compares, as
// failure-domain schemes for dimension n: the Section 2.3 row partition
// (variant a) and nucleus partition (variant b, Theorem 2.1) of the
// paper's group spec for n, and the naive consecutive-row baseline with
// the same 2^k1 rows per module.
func StandardSchemes(n int) ([]Scheme, error) {
	spec := thompson.SpecForDim(n)
	sb := isn.Transform(spec)
	k1 := spec.GroupWidth(1)
	row, err := PartitionScheme("row", packaging.RowPartition(sb), sb)
	if err != nil {
		return nil, err
	}
	nucleus, err := PartitionScheme("nucleus", packaging.NucleusPartition(sb), sb)
	if err != nil {
		return nil, err
	}
	naive, err := PartitionScheme("naive", packaging.NaiveRowPartition(butterfly.New(n), 1<<uint(k1)), nil)
	if err != nil {
		return nil, err
	}
	return []Scheme{row, nucleus, naive}, nil
}

// SchemePoint is one (scheme, kill count) cell of a module-kill sweep.
type SchemePoint struct {
	Scheme string
	// Killed is the number of modules failed; DeadNodes the resulting
	// dead node count and DeadNodeFrac its fraction of the network.
	Killed       int
	DeadNodes    int
	DeadNodeFrac float64
	Result       *routing.Result
	Err          error
}

// ModuleKillSweep fails k whole modules (k ranging over kills) under each
// scheme and measures the degradation: module choice is a deterministic
// seeded draw per (scheme, k) cell, faults are permanent from cycle 0,
// and base.TTL of 0 is replaced by DefaultTTL for the faulted cells (as
// in Sweep). Cells run concurrently; results are ordered scheme-major.
//
// This is the packaging comparison behind the tentpole claim: the
// Theorem 2.1 nucleus modules are small failure domains with few boundary
// links, so killing the same number of modules removes a smaller slice of
// the machine - and the sweep shows the gentler throughput decay.
func ModuleKillSweep(base routing.Params, schemes []Scheme, kills []int) []SchemePoint {
	out := make([]SchemePoint, len(schemes)*len(kills))
	run := func(idx int) {
		si, ki := idx/len(kills), idx%len(kills)
		sc := schemes[si]
		pt := &out[idx]
		pt.Scheme = sc.Name
		pt.Killed = kills[ki]
		if pt.Killed < 0 || pt.Killed > sc.NumModules {
			pt.Err = fmt.Errorf("faults: cannot kill %d of %d modules", pt.Killed, sc.NumModules)
			return
		}
		plan, err := NewPlan(base.N)
		if err != nil {
			pt.Err = err
			return
		}
		// Same per-k seed across schemes: the "random draw" of which
		// modules die is shared, the schemes differ only in what a
		// module is.
		for _, m := range PickModules(sc.NumModules, pt.Killed, base.Seed+int64(ki)*2_000_003+7) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				pt.Err = err
				return
			}
			pt.DeadNodes += killed
		}
		pt.DeadNodeFrac = float64(pt.DeadNodes) / float64(plan.Nodes())
		p := base
		p.Faults = plan
		if p.TTL == 0 && pt.Killed > 0 {
			p.TTL = DefaultTTL(base.N)
		}
		pt.Result, pt.Err = routing.Simulate(p)
		if pt.Err == nil {
			pt.Err = pt.Result.CheckConservation()
		}
		if pt.Err != nil {
			pt.Err = fmt.Errorf("faults: scheme %s kills %d: %w", pt.Scheme, pt.Killed, pt.Err)
		}
	}
	forEach(len(out), run)
	return out
}

// PickModules draws k distinct module ids uniformly from [0, numModules)
// by a seeded permutation - the draw ModuleKillSweep uses per kill count.
func PickModules(numModules, k int, seed int64) []int {
	return newRand(seed).Perm(numModules)[:k]
}

// forEach runs f(0..n-1) on a capped worker pool.
func forEach(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
