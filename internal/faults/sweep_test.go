package faults

import (
	"testing"

	"bfvlsi/internal/routing"
)

// The zero-rate level of a sweep is the fault-free baseline, bit for bit,
// and higher fault rates degrade throughput without losing packets.
func TestSweepZeroRateMatchesBaseline(t *testing.T) {
	base := routing.Params{N: 4, Lambda: 0.1, Warmup: 50, Cycles: 300, Seed: 21}
	baseline, err := routing.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	pts := Sweep(base, []float64{0, 0.08})
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("rate %v: %v", pt.Rate, pt.Err)
		}
	}
	if pts[0].DeadLinks != 0 {
		t.Errorf("zero rate killed %d links", pts[0].DeadLinks)
	}
	if *pts[0].Result != *baseline {
		t.Errorf("zero-rate sweep point diverged from baseline:\n%+v\nvs\n%+v", pts[0].Result, baseline)
	}
	if pts[1].DeadLinks == 0 {
		t.Fatal("8% fault rate killed no links")
	}
	if pts[1].Result.Throughput >= pts[0].Result.Throughput {
		t.Errorf("throughput did not degrade: %v at rate 0, %v at rate %v",
			pts[0].Result.Throughput, pts[1].Result.Throughput, pts[1].Rate)
	}
}

func TestStandardSchemes(t *testing.T) {
	n := 6
	schemes, err := StandardSchemes(n)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"row", "nucleus", "naive"}
	if len(schemes) != len(names) {
		t.Fatalf("got %d schemes, want %d", len(schemes), len(names))
	}
	byName := map[string]Scheme{}
	for i, sc := range schemes {
		if sc.Name != names[i] {
			t.Errorf("scheme %d named %q, want %q", i, sc.Name, names[i])
		}
		byName[sc.Name] = sc
		if len(sc.ModuleOf) != n<<uint(n) {
			t.Errorf("%s: ModuleOf has %d entries, want %d", sc.Name, len(sc.ModuleOf), n<<uint(n))
		}
		// Dense ids: every module in [0, NumModules) owns a node.
		seen := make([]bool, sc.NumModules)
		for node, m := range sc.ModuleOf {
			if m < 0 || m >= sc.NumModules {
				t.Fatalf("%s: node %d in module %d outside [0,%d)", sc.Name, node, m, sc.NumModules)
			}
			seen[m] = true
		}
		for m, ok := range seen {
			if !ok {
				t.Errorf("%s: module %d owns no wrapped nodes", sc.Name, m)
			}
		}
	}
	if byName["nucleus"].NumModules <= byName["row"].NumModules {
		t.Errorf("nucleus modules (%d) should outnumber row modules (%d)",
			byName["nucleus"].NumModules, byName["row"].NumModules)
	}
}

// Killing modules degrades throughput under every scheme, the zero-kill
// cell reproduces the fault-free baseline exactly, and the nucleus
// packaging loses fewer nodes per killed module than the row packaging.
func TestModuleKillSweep(t *testing.T) {
	// n = 5 uses spec (2,2,1), whose last nucleus segment holds only
	// stage n and must have been densified away by PartitionScheme.
	base := routing.Params{N: 5, Lambda: 0.1, Warmup: 40, Cycles: 250, Seed: 3}
	baseline, err := routing.Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	schemes, err := StandardSchemes(base.N)
	if err != nil {
		t.Fatal(err)
	}
	kills := []int{0, 2}
	pts := ModuleKillSweep(base, schemes, kills)
	if len(pts) != len(schemes)*len(kills) {
		t.Fatalf("got %d points, want %d", len(pts), len(schemes)*len(kills))
	}
	byCell := map[string]map[int]SchemePoint{}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatalf("%s k=%d: %v", pt.Scheme, pt.Killed, pt.Err)
		}
		if byCell[pt.Scheme] == nil {
			byCell[pt.Scheme] = map[int]SchemePoint{}
		}
		byCell[pt.Scheme][pt.Killed] = pt
	}
	for _, sc := range schemes {
		zero, hit := byCell[sc.Name][0], byCell[sc.Name][2]
		if *zero.Result != *baseline {
			t.Errorf("%s k=0 diverged from fault-free baseline", sc.Name)
		}
		if hit.DeadNodes == 0 {
			t.Errorf("%s k=2 killed no nodes", sc.Name)
		}
		if hit.Result.Throughput >= zero.Result.Throughput {
			t.Errorf("%s: throughput did not degrade: %v -> %v",
				sc.Name, zero.Result.Throughput, hit.Result.Throughput)
		}
	}
	// Theorem 2.1 failure-domain story: nucleus modules are smaller, so
	// the same number of killed modules removes less of the machine.
	if nuc, row := byCell["nucleus"][2], byCell["row"][2]; nuc.DeadNodes >= row.DeadNodes {
		t.Errorf("nucleus kill removed %d nodes, row kill %d - nucleus modules should be smaller",
			nuc.DeadNodes, row.DeadNodes)
	}

	bad := ModuleKillSweep(base, schemes[:1], []int{-1})
	if len(bad) != 1 || bad[0].Err == nil {
		t.Error("negative kill count accepted")
	}
}
