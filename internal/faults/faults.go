// Package faults injects deterministic, seeded failures into the wrapped
// butterfly routing simulator and measures how routing degrades under
// them. It is the failure-domain counterpart of the Section 2.3 packaging
// result: a module (chip/board) is not just a layout unit but the thing
// that dies as a whole in a real machine - its nodes and its few
// off-module links go down together - so a Plan can correlate faults by
// module via a packaging.Partition as well as fail individual links and
// nodes, permanently or transiently with repair after a fixed number of
// cycles.
//
// A Plan implements routing.FaultModel. The simulator calls BeginCycle
// once per cycle; the plan replays its event schedule (activations and
// repairs) up to that cycle, so fault state is a pure function of the
// plan - same plan, same run. Reusing a plan for a second run resets the
// replay automatically; a single plan must not be shared by concurrently
// running simulations.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"bfvlsi/internal/routing"
)

// Plan implements routing.FaultModel.
var _ routing.FaultModel = (*Plan)(nil)

// Plan is a deterministic fault schedule for the n-dimensional wrapped
// butterfly (R = 2^n rows, n columns, node id = col*R + row; each node
// has directed output links 0 = straight, 1 = cross).
type Plan struct {
	n, rows, nodes int

	events []event
	sorted bool

	// Reference counts: an entity is dead while its count is positive,
	// so overlapping faults compose correctly.
	nodeRef []int
	linkRef []int
	// target[l] is the head node of directed link l = node*2 + out.
	target []int

	next  int // next event to apply
	cycle int // last cycle passed to BeginCycle (-1 before the run)
}

type event struct {
	cycle int
	delta int // +1 fault onset, -1 repair
	node  int // node id for node events, -1 otherwise
	link  int // directed link id for link events, -1 otherwise
	seq   int // insertion order, to make the replay order total
}

// NewPlan returns an empty plan for the n-dimensional wrapped butterfly.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n > 14 {
		return nil, fmt.Errorf("faults: dimension %d out of range [1,14]", n)
	}
	rows := 1 << uint(n)
	nodes := n * rows
	p := &Plan{
		n: n, rows: rows, nodes: nodes,
		nodeRef: make([]int, nodes),
		linkRef: make([]int, 2*nodes),
		target:  make([]int, 2*nodes),
		cycle:   -1,
	}
	for col := 0; col < n; col++ {
		nextCol := (col + 1) % n
		for row := 0; row < rows; row++ {
			node := col*rows + row
			p.target[node*2] = nextCol*rows + row
			p.target[node*2+1] = nextCol*rows + (row ^ (1 << uint(col)))
		}
	}
	return p, nil
}

// MustPlan is NewPlan for known-good dimensions; it panics on error.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the butterfly dimension the plan targets.
func (p *Plan) N() int { return p.n }

// Nodes returns the node count n * 2^n.
func (p *Plan) Nodes() int { return p.nodes }

// NumEvents returns the number of scheduled onset/repair events.
func (p *Plan) NumEvents() int { return len(p.events) }

func (p *Plan) add(cycle, delta, node, link int) {
	p.events = append(p.events, event{cycle: cycle, delta: delta, node: node, link: link, seq: len(p.events)})
	p.sorted = false
}

// schedule records an onset at start and, for repairAfter > 0, a repair
// at start+repairAfter. repairAfter == 0 means permanent.
func (p *Plan) schedule(node, link, start, repairAfter int) error {
	if start < 0 {
		return fmt.Errorf("faults: negative start cycle %d", start)
	}
	if repairAfter < 0 {
		return fmt.Errorf("faults: negative repair delay %d", repairAfter)
	}
	p.add(start, +1, node, link)
	if repairAfter > 0 {
		p.add(start+repairAfter, -1, node, link)
	}
	return nil
}

// AddLinkFault kills the directed link out of node on output out (0 =
// straight, 1 = cross) from cycle start on; repairAfter > 0 restores it
// repairAfter cycles later, repairAfter == 0 makes the fault permanent.
// Cycles are absolute simulation cycles, warmup included.
func (p *Plan) AddLinkFault(node, out, start, repairAfter int) error {
	if node < 0 || node >= p.nodes {
		return fmt.Errorf("faults: node %d out of range [0,%d)", node, p.nodes)
	}
	if out != 0 && out != 1 {
		return fmt.Errorf("faults: output %d is not 0 (straight) or 1 (cross)", out)
	}
	return p.schedule(-1, node*2+out, start, repairAfter)
}

// AddNodeFault kills the node from cycle start on: it stops injecting and
// every link into or out of it goes down with it. repairAfter as in
// AddLinkFault.
func (p *Plan) AddNodeFault(node, start, repairAfter int) error {
	if node < 0 || node >= p.nodes {
		return fmt.Errorf("faults: node %d out of range [0,%d)", node, p.nodes)
	}
	return p.schedule(node, -1, start, repairAfter)
}

// AddModuleFault kills module m of the wrapped module assignment moduleOf
// (see packaging.RoutingModuleOf): every node of the module dies, and
// with them every boundary link of the module - the failure-domain
// semantics of a packaged chip or board. Returns the number of nodes
// killed.
func (p *Plan) AddModuleFault(moduleOf []int, m, start, repairAfter int) (int, error) {
	if len(moduleOf) != p.nodes {
		return 0, fmt.Errorf("faults: moduleOf has %d entries, want %d", len(moduleOf), p.nodes)
	}
	killed := 0
	for node, mod := range moduleOf {
		if mod != m {
			continue
		}
		if err := p.AddNodeFault(node, start, repairAfter); err != nil {
			return killed, err
		}
		killed++
	}
	if killed == 0 {
		return 0, fmt.Errorf("faults: module %d owns no nodes", m)
	}
	return killed, nil
}

// AddRandomLinkFaults kills each directed link independently with
// probability rate, permanently from cycle 0, drawing from a private
// seeded source. It returns the number of links killed.
func (p *Plan) AddRandomLinkFaults(rate float64, seed int64) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("faults: link fault rate %v outside [0,1]", rate)
	}
	rng := newRand(seed)
	killed := 0
	for l := 0; l < 2*p.nodes; l++ {
		if rng.Float64() < rate {
			if err := p.AddLinkFault(l/2, l%2, 0, 0); err != nil {
				return killed, err
			}
			killed++
		}
	}
	return killed, nil
}

// AddRandomNodeFaults kills each node independently with probability
// rate, permanently from cycle 0. It returns the number of nodes killed.
func (p *Plan) AddRandomNodeFaults(rate float64, seed int64) (int, error) {
	if rate < 0 || rate > 1 {
		return 0, fmt.Errorf("faults: node fault rate %v outside [0,1]", rate)
	}
	rng := newRand(seed)
	killed := 0
	for node := 0; node < p.nodes; node++ {
		if rng.Float64() < rate {
			if err := p.AddNodeFault(node, 0, 0); err != nil {
				return killed, err
			}
			killed++
		}
	}
	return killed, nil
}

// AddRandomTransientLinkFaults schedules count transient link faults:
// each picks a uniformly random directed link and a uniformly random
// onset cycle in [0, horizon), and repairs itself repairAfter cycles
// later. Faults may overlap; reference counting keeps the state exact.
func (p *Plan) AddRandomTransientLinkFaults(count, horizon, repairAfter int, seed int64) error {
	if count < 0 {
		return fmt.Errorf("faults: negative transient fault count %d", count)
	}
	if horizon <= 0 {
		return fmt.Errorf("faults: transient fault horizon %d must be positive", horizon)
	}
	if repairAfter <= 0 {
		return fmt.Errorf("faults: transient faults need a positive repair delay, got %d", repairAfter)
	}
	rng := newRand(seed)
	for i := 0; i < count; i++ {
		l := rng.Intn(2 * p.nodes)
		if err := p.AddLinkFault(l/2, l%2, rng.Intn(horizon), repairAfter); err != nil {
			return err
		}
	}
	return nil
}

// reset rewinds the replay so the plan can drive another run.
func (p *Plan) reset() {
	for i := range p.nodeRef {
		p.nodeRef[i] = 0
	}
	for i := range p.linkRef {
		p.linkRef[i] = 0
	}
	p.next = 0
	p.cycle = -1
}

// BeginCycle implements routing.FaultModel: it advances the replay to the
// given absolute cycle. Rewinding (a new run starting over at an earlier
// cycle) resets and replays from scratch.
func (p *Plan) BeginCycle(cycle int) {
	if !p.sorted {
		sort.Slice(p.events, func(i, j int) bool {
			if p.events[i].cycle != p.events[j].cycle {
				return p.events[i].cycle < p.events[j].cycle
			}
			return p.events[i].seq < p.events[j].seq
		})
		p.sorted = true
	}
	if cycle < p.cycle {
		p.reset()
	}
	for p.next < len(p.events) && p.events[p.next].cycle <= cycle {
		e := p.events[p.next]
		if e.node >= 0 {
			p.nodeRef[e.node] += e.delta
		}
		if e.link >= 0 {
			p.linkRef[e.link] += e.delta
		}
		p.next++
	}
	p.cycle = cycle
}

// NodeDown implements routing.FaultModel.
func (p *Plan) NodeDown(node int) bool { return p.nodeRef[node] > 0 }

// LinkDown implements routing.FaultModel: a directed link is down if it
// was failed itself or either endpoint node is down.
func (p *Plan) LinkDown(node, out int) bool {
	l := node*2 + out
	return p.linkRef[l] > 0 || p.nodeRef[node] > 0 || p.nodeRef[p.target[l]] > 0
}

// DeadNodes returns the number of nodes currently down (after the last
// BeginCycle).
func (p *Plan) DeadNodes() int {
	dead := 0
	for _, c := range p.nodeRef {
		if c > 0 {
			dead++
		}
	}
	return dead
}

// DeadLinks returns the number of directed links currently down,
// including links killed by endpoint node deaths.
func (p *Plan) DeadLinks() int {
	dead := 0
	for node := 0; node < p.nodes; node++ {
		for out := 0; out < 2; out++ {
			if p.LinkDown(node, out) {
				dead++
			}
		}
	}
	return dead
}

// newRand is the package's single source of randomness: always an
// explicitly seeded private source, never the global math/rand one, so
// every plan and sweep is reproducible from its seed.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// DefaultTTL is the packet lifetime used by the sweeps when the caller
// does not set one: generous next to the fault-free worst-case path
// (under 2n hops) so misrouted packets get many wrap-around retries, but
// finite so packets trapped by permanent faults are eventually dropped
// and accounted.
func DefaultTTL(n int) int { return 16 * n }
