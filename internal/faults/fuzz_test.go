package faults

import (
	"testing"
)

// interval is the brute-force oracle's view of one scheduled fault: the
// entity is dead for cycles in [start, end).
type interval struct {
	node, link int // exactly one is >= 0
	start, end int
}

func (iv interval) covers(cycle int) bool { return iv.start <= cycle && cycle < iv.end }

// FuzzPlanComposition throws arbitrary overlapping link, node, module,
// and random-transient faults at a Plan and checks, against a brute-force
// interval replay, that:
//
//   - reference counts never go negative at any cycle,
//   - NodeDown and LinkDown agree with the oracle exactly,
//   - rewinding (BeginCycle at an earlier cycle) and plan reuse replay
//     identically.
//
// Each 5-byte chunk of data encodes one fault op; dimension is kept in
// [1,3] so the whole state space is checked every cycle.
func FuzzPlanComposition(f *testing.F) {
	f.Add(byte(1), []byte{})
	f.Add(byte(2), []byte{0, 0, 3, 5, 4})
	f.Add(byte(3), []byte{
		0, 0, 7, 0, 0, // permanent link fault
		1, 0, 2, 3, 6, // transient node fault
		2, 0, 1, 4, 0, // permanent module (column) fault
		3, 0, 9, 2, 5, // random transient link faults
		1, 0, 2, 8, 4, // same node again, overlapping
	})
	f.Fuzz(func(t *testing.T, nRaw byte, data []byte) {
		n := int(nRaw)%3 + 1
		plan := MustPlan(n)
		nodes := plan.Nodes()
		rows := 1 << uint(n)
		const horizon = 64

		// moduleOf assigns each column to its own module: a legitimate
		// wrapped-partition shape with boundary links between modules.
		moduleOf := make([]int, nodes)
		for node := range moduleOf {
			moduleOf[node] = node / rows
		}

		var ivs []interval
		permanent := func(repair, start int) int {
			if repair == 0 {
				return horizon * 2 // beyond every replayed cycle
			}
			return start + repair
		}
		ops := 0
		for i := 0; i+5 <= len(data) && ops < 24; i, ops = i+5, ops+1 {
			kind := data[i] % 4
			x := int(data[i+1])<<8 | int(data[i+2])
			start := int(data[i+3]) % horizon
			repair := int(data[i+4]) % 24
			switch kind {
			case 0:
				l := x % (2 * nodes)
				if err := plan.AddLinkFault(l/2, l%2, start, repair); err != nil {
					t.Fatal(err)
				}
				ivs = append(ivs, interval{node: -1, link: l, start: start, end: permanent(repair, start)})
			case 1:
				node := x % nodes
				if err := plan.AddNodeFault(node, start, repair); err != nil {
					t.Fatal(err)
				}
				ivs = append(ivs, interval{node: node, link: -1, start: start, end: permanent(repair, start)})
			case 2:
				m := x % n
				if _, err := plan.AddModuleFault(moduleOf, m, start, repair); err != nil {
					t.Fatal(err)
				}
				for node := range moduleOf {
					if moduleOf[node] == m {
						ivs = append(ivs, interval{node: node, link: -1, start: start, end: permanent(repair, start)})
					}
				}
			case 3:
				count := x % 6
				if repair == 0 {
					repair = 1
				}
				seed := int64(x)*31 + int64(start)
				if err := plan.AddRandomTransientLinkFaults(count, horizon, repair, seed); err != nil {
					t.Fatal(err)
				}
				// Replicate the seeded draws exactly as the plan makes them.
				rng := newRand(seed)
				for j := 0; j < count; j++ {
					l := rng.Intn(2 * nodes)
					s := rng.Intn(horizon)
					ivs = append(ivs, interval{node: -1, link: l, start: s, end: s + repair})
				}
			}
		}

		nodeDead := func(node, cycle int) bool {
			for _, iv := range ivs {
				if iv.node == node && iv.covers(cycle) {
					return true
				}
			}
			return false
		}
		linkDead := func(l, cycle int) bool {
			for _, iv := range ivs {
				if iv.link == l && iv.covers(cycle) {
					return true
				}
			}
			return nodeDead(l/2, cycle) || nodeDead(plan.target[l], cycle)
		}

		check := func(cycle int, pass string) {
			for node, c := range plan.nodeRef {
				if c < 0 {
					t.Fatalf("%s cycle %d: node %d refcount %d went negative", pass, cycle, node, c)
				}
			}
			for l, c := range plan.linkRef {
				if c < 0 {
					t.Fatalf("%s cycle %d: link %d refcount %d went negative", pass, cycle, l, c)
				}
			}
			for node := 0; node < nodes; node++ {
				if got, want := plan.NodeDown(node), nodeDead(node, cycle); got != want {
					t.Fatalf("%s cycle %d: NodeDown(%d) = %v, oracle says %v", pass, cycle, node, got, want)
				}
				for out := 0; out < 2; out++ {
					if got, want := plan.LinkDown(node, out), linkDead(node*2+out, cycle); got != want {
						t.Fatalf("%s cycle %d: LinkDown(%d,%d) = %v, oracle says %v", pass, cycle, node, out, got, want)
					}
				}
			}
		}

		last := horizon + 32 // past every repair of interest
		for cycle := 0; cycle <= last; cycle++ {
			plan.BeginCycle(cycle)
			check(cycle, "forward")
		}
		// Rewind mid-schedule: the plan must reset and replay from scratch.
		mid := horizon / 2
		if len(data) > 0 {
			mid = int(data[0]) % horizon
		}
		plan.BeginCycle(mid)
		check(mid, "rewind")
		// Jump forward with a gap, then reuse from cycle 0 like a second run.
		plan.BeginCycle(last)
		check(last, "jump")
		plan.BeginCycle(0)
		check(0, "reuse")
	})
}
