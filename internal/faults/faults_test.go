package faults

import (
	"testing"
)

func TestPlanValidation(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("dimension 0 accepted")
	}
	if _, err := NewPlan(15); err == nil {
		t.Error("dimension 15 accepted")
	}
	p := MustPlan(3)
	if err := p.AddLinkFault(-1, 0, 0, 0); err == nil {
		t.Error("negative node accepted")
	}
	if err := p.AddLinkFault(p.Nodes(), 0, 0, 0); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := p.AddLinkFault(0, 2, 0, 0); err == nil {
		t.Error("output 2 accepted")
	}
	if err := p.AddLinkFault(0, 0, -1, 0); err == nil {
		t.Error("negative start cycle accepted")
	}
	if err := p.AddNodeFault(0, 0, -1); err == nil {
		t.Error("negative repair delay accepted")
	}
	if _, err := p.AddRandomLinkFaults(1.5, 1); err == nil {
		t.Error("link fault rate 1.5 accepted")
	}
	if _, err := p.AddRandomNodeFaults(-0.1, 1); err == nil {
		t.Error("node fault rate -0.1 accepted")
	}
	if err := p.AddRandomTransientLinkFaults(-1, 100, 10, 1); err == nil {
		t.Error("negative transient count accepted")
	}
	if err := p.AddRandomTransientLinkFaults(1, 0, 10, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if err := p.AddRandomTransientLinkFaults(1, 100, 0, 1); err == nil {
		t.Error("transient fault without repair accepted")
	}
	if _, err := p.AddModuleFault(make([]int, 5), 0, 0, 0); err == nil {
		t.Error("wrong-length moduleOf accepted")
	}
	if _, err := p.AddModuleFault(make([]int, p.Nodes()), 1, 0, 0); err == nil {
		t.Error("empty module accepted")
	}
	if p.NumEvents() != 0 {
		t.Errorf("rejected faults left %d events behind", p.NumEvents())
	}
}

// A transient link fault is down exactly on cycles [start, start+repair),
// and overlapping faults on the same link compose by reference counting.
func TestTransientLinkLifecycle(t *testing.T) {
	p := MustPlan(3)
	if err := p.AddLinkFault(5, 1, 5, 3); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle <= 12; cycle++ {
		p.BeginCycle(cycle)
		want := cycle >= 5 && cycle < 8
		if got := p.LinkDown(5, 1); got != want {
			t.Errorf("single fault, cycle %d: LinkDown = %v, want %v", cycle, got, want)
		}
	}

	q := MustPlan(3)
	if err := q.AddLinkFault(5, 1, 5, 3); err != nil {
		t.Fatal(err)
	}
	if err := q.AddLinkFault(5, 1, 6, 10); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle <= 20; cycle++ {
		q.BeginCycle(cycle)
		want := cycle >= 5 && cycle < 16
		if got := q.LinkDown(5, 1); got != want {
			t.Errorf("overlapping faults, cycle %d: LinkDown = %v, want %v", cycle, got, want)
		}
	}
}

// A node fault takes down the node and every link into or out of it,
// and nothing else.
func TestNodeFaultKillsIncidentLinks(t *testing.T) {
	p := MustPlan(3)
	rows := 8
	dead := 1*rows + 2 // (row 2, col 1)
	if err := p.AddNodeFault(dead, 0, 0); err != nil {
		t.Fatal(err)
	}
	p.BeginCycle(0)
	if !p.NodeDown(dead) {
		t.Fatal("faulted node reported up")
	}
	if p.NodeDown(0) {
		t.Error("unrelated node reported down")
	}
	for out := 0; out < 2; out++ {
		if !p.LinkDown(dead, out) {
			t.Errorf("output %d of the dead node reported up", out)
		}
	}
	// In-links: the straight link from (row 2, col 0) and the cross link
	// from (row 3, col 0) both target (row 2, col 1).
	if !p.LinkDown(2, 0) {
		t.Error("straight link into the dead node reported up")
	}
	if !p.LinkDown(3, 1) {
		t.Error("cross link into the dead node reported up")
	}
	if p.LinkDown(0, 0) {
		t.Error("unrelated link reported down")
	}
	if got := p.DeadNodes(); got != 1 {
		t.Errorf("DeadNodes = %d, want 1", got)
	}
	if got := p.DeadLinks(); got != 4 {
		t.Errorf("DeadLinks = %d, want 4 (2 out, 2 in)", got)
	}
}

// A module fault kills exactly the module's nodes, and with them every
// link touching the module (internal and boundary alike).
func TestModuleFaultSemantics(t *testing.T) {
	n, rows := 3, 8
	p := MustPlan(n)
	moduleOf := make([]int, p.Nodes())
	for i := range moduleOf {
		moduleOf[i] = i / 6 // 4 modules of 6 nodes
	}
	killed, err := p.AddModuleFault(moduleOf, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if killed != 6 {
		t.Errorf("killed %d nodes, want 6", killed)
	}
	p.BeginCycle(0)
	deadNode := func(id int) bool { return moduleOf[id] == 1 }
	for id := 0; id < p.Nodes(); id++ {
		if p.NodeDown(id) != deadNode(id) {
			t.Errorf("node %d: NodeDown = %v, want %v", id, p.NodeDown(id), deadNode(id))
		}
	}
	// Every directed link is down iff it touches the dead module.
	for id := 0; id < p.Nodes(); id++ {
		col, row := id/rows, id%rows
		for out := 0; out < 2; out++ {
			nr := row
			if out == 1 {
				nr = row ^ (1 << uint(col))
			}
			target := ((col+1)%n)*rows + nr
			want := deadNode(id) || deadNode(target)
			if got := p.LinkDown(id, out); got != want {
				t.Errorf("link (%d,%d): LinkDown = %v, want %v", id, out, got, want)
			}
		}
	}
}

// Reusing a plan for a second run (BeginCycle rewinding to an earlier
// cycle) replays the schedule from scratch.
func TestPlanReuseResets(t *testing.T) {
	p := MustPlan(2)
	if err := p.AddLinkFault(1, 0, 2, 3); err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		p.BeginCycle(0)
		if p.LinkDown(1, 0) {
			t.Fatalf("run %d: link down before onset", run)
		}
		p.BeginCycle(3)
		if !p.LinkDown(1, 0) {
			t.Fatalf("run %d: link up inside the fault window", run)
		}
		p.BeginCycle(10)
		if p.LinkDown(1, 0) {
			t.Fatalf("run %d: link down after repair", run)
		}
	}
}

// Random fault generators are pure functions of their seed.
func TestRandomFaultsDeterministic(t *testing.T) {
	build := func() *Plan {
		p := MustPlan(4)
		if _, err := p.AddRandomLinkFaults(0.1, 42); err != nil {
			t.Fatal(err)
		}
		if _, err := p.AddRandomNodeFaults(0.05, 43); err != nil {
			t.Fatal(err)
		}
		if err := p.AddRandomTransientLinkFaults(10, 200, 30, 44); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := build(), build()
	if a.NumEvents() != b.NumEvents() {
		t.Fatalf("same seeds, different event counts: %d vs %d", a.NumEvents(), b.NumEvents())
	}
	for _, cycle := range []int{0, 50, 100, 150, 250} {
		a.BeginCycle(cycle)
		b.BeginCycle(cycle)
		if a.DeadNodes() != b.DeadNodes() || a.DeadLinks() != b.DeadLinks() {
			t.Errorf("cycle %d: state diverged: %d/%d dead nodes, %d/%d dead links",
				cycle, a.DeadNodes(), b.DeadNodes(), a.DeadLinks(), b.DeadLinks())
		}
	}
}
