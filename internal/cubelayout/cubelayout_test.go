package cubelayout

import (
	"testing"

	"bfvlsi/internal/collinear"
)

func TestHypercubeValidates(t *testing.T) {
	for n := 1; n <= 8; n++ {
		res, err := Hypercube(n)
		if err != nil {
			t.Fatalf("Q_%d: %v", n, err)
		}
		if err := res.Validate(); err != nil {
			t.Errorf("Q_%d: %v", n, err)
		}
		wantWires := n * (1 << uint(n)) / 2
		if got := len(res.L.Wires); got != wantWires {
			t.Errorf("Q_%d: %d wires, want %d", n, got, wantWires)
		}
		if got := len(res.L.Nodes); got != 1<<uint(n) {
			t.Errorf("Q_%d: %d nodes", n, got)
		}
	}
}

func TestHypercubeAreaOrderNSquared(t *testing.T) {
	// Area must be Theta(N^2): N^2/4 (bisection bound, up to node size)
	// <= area <= c * N^2 for a modest c.
	for _, n := range []int{4, 6, 8, 10} {
		res, err := Hypercube(n)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats()
		nn := int64(1) << uint(n)
		if st.Area < nn*nn/8 {
			t.Errorf("Q_%d: area %d below bisection order %d", n, st.Area, nn*nn/8)
		}
		if st.Area > 64*nn*nn {
			t.Errorf("Q_%d: area %d far above Theta(N^2)", n, st.Area)
		}
	}
}

func TestHypercubeAreaRatioStabilizes(t *testing.T) {
	// area / N^2 should approach a constant (the scheme's leading
	// coefficient), i.e. consecutive ratios get closer.
	var ratios []float64
	for _, n := range []int{6, 8, 10} {
		res, err := Hypercube(n)
		if err != nil {
			t.Fatal(err)
		}
		nn := float64(int64(1) << uint(n))
		ratios = append(ratios, float64(res.Stats().Area)/(nn*nn))
	}
	d1 := ratios[1]/ratios[0] - 1
	d2 := ratios[2]/ratios[1] - 1
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	if abs(d2) > abs(d1)+0.05 {
		t.Errorf("ratios diverging: %v", ratios)
	}
}

func TestTorusValidates(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8, 16} {
		res, err := Torus(k)
		if err != nil {
			t.Fatalf("torus %d: %v", k, err)
		}
		if err := res.Validate(); err != nil {
			t.Errorf("torus %d: %v", k, err)
		}
		wantWires := 2 * k * k
		if k == 2 {
			wantWires = 2 * 2 // single edge per 2-ring, per row/col
		}
		if got := len(res.L.Wires); got != wantWires {
			t.Errorf("torus %d: %d wires, want %d", k, got, wantWires)
		}
	}
}

func TestTorusTrackCounts(t *testing.T) {
	// A k-ring in natural order needs exactly 2 tracks (adjacent chain +
	// the wrap link) for k >= 3.
	res, err := Torus(5)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowTracks != 2 || res.ColTracks != 2 {
		t.Errorf("tracks = %d/%d, want 2/2", res.RowTracks, res.ColTracks)
	}
	// Torus area therefore ~ (k*(nodeSide+2))^2: very compact.
	st := res.Stats()
	want := int64(5*(res.NodeSide+2)) * int64(5*(res.NodeSide+2))
	if st.Area > want {
		t.Errorf("area %d exceeds %d", st.Area, want)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(0, 4, nil, nil); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := Build(2, 2, []collinear.Link{{A: 0, B: 5}}, nil); err == nil {
		t.Error("out-of-range row link accepted")
	}
	if _, err := Hypercube(0); err == nil {
		t.Error("Q_0 accepted")
	}
	if _, err := Torus(1); err == nil {
		t.Error("1-ary torus accepted")
	}
}

func TestBuildCustomNetwork(t *testing.T) {
	// A 3x4 mesh (no wraparound): rows are 4-node paths, columns 3-node
	// paths.
	rowLinks := []collinear.Link{{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}}
	colLinks := []collinear.Link{{A: 0, B: 1}, {A: 1, B: 2}}
	res, err := Build(3, 4, rowLinks, colLinks)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
	// Paths chain in one track each.
	if res.RowTracks != 1 || res.ColTracks != 1 {
		t.Errorf("mesh tracks = %d/%d, want 1/1", res.RowTracks, res.ColTracks)
	}
}

func BenchmarkHypercubeQ10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Hypercube(10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTorus32(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Torus(32); err != nil {
			b.Fatal(err)
		}
	}
}
