// Package cubelayout lays out hypercubes and k-ary 2-cubes (2-D tori)
// with the same grid-of-collinear-layouts scheme the paper uses for
// butterflies, substantiating the conclusion's remark that "the layouts
// for ... many other networks, such as hypercubes and k-ary n-cubes"
// follow from the same technique (and the authors' companion paper [26]).
//
// The scheme: split the node address into a column part and a row part
// and place the nodes as a 2-D grid. Links that vary only the column
// part stay within a grid row and are wired in a horizontal track band
// above that row using an optimal collinear assignment; links that vary
// the row part stay within a grid column and use a vertical track region
// to its right. For Q_n with an even split this gives area Theta(N^2),
// matching the bisection lower bound up to a constant.
package cubelayout

import (
	"fmt"

	"bfvlsi/internal/collinear"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
)

// Result is a built layout plus its bookkeeping.
type Result struct {
	Rows, Cols int
	NodeSide   int
	RowTracks  int // horizontal tracks per row band
	ColTracks  int // vertical tracks per column region
	L          *grid.Layout
}

// Build lays out an arbitrary product-structured network: rows x cols
// nodes; rowLinks is the link set applied within every grid row
// (indices are column positions), colLinks within every grid column
// (indices are row positions).
func Build(rows, cols int, rowLinks, colLinks []collinear.Link) (*Result, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("cubelayout: need positive grid dimensions")
	}
	if rows*cols > 1<<20 {
		return nil, fmt.Errorf("cubelayout: %dx%d too large", rows, cols)
	}
	rowTA, err := collinear.FromLinks(cols, rowLinks)
	if err != nil {
		return nil, fmt.Errorf("cubelayout: row links: %v", err)
	}
	colTA, err := collinear.FromLinks(rows, colLinks)
	if err != nil {
		return nil, fmt.Errorf("cubelayout: column links: %v", err)
	}

	// Node side: enough terminals on the top edge for the row-link
	// degree and on the right edge for the column-link degree, and at
	// least the Thompson degree-sized box.
	rowDeg := degrees(cols, rowLinks)
	colDeg := degrees(rows, colLinks)
	maxRow, maxCol := maxOf(rowDeg), maxOf(colDeg)
	nodeSide := maxRow + maxCol
	if nodeSide < 1 {
		nodeSide = 1
	}

	res := &Result{
		Rows: rows, Cols: cols,
		NodeSide:  nodeSide,
		RowTracks: rowTA.NumTracks,
		ColTracks: colTA.NumTracks,
	}
	l := grid.NewLayout(grid.Thompson, 2)
	res.L = l

	pitchX := nodeSide + res.ColTracks
	pitchY := nodeSide + res.RowTracks
	nodeX := func(c int) int { return c * pitchX }
	nodeY := func(r int) int { return r * pitchY }

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			l.AddNode(fmt.Sprintf("q%d.%d", r, c),
				geom.NewRect(nodeX(c), nodeY(r), nodeX(c)+nodeSide-1, nodeY(r)+nodeSide-1))
		}
	}

	// Terminal offsets: for node-position v in a line with links,
	// rank of each neighbor among v's neighbors sorted ascending.
	rowRank := ranks(cols, rowLinks)
	colRank := ranks(rows, colLinks)

	// Row links: band above each grid row.
	for r := 0; r < rows; r++ {
		bandY := nodeY(r) + nodeSide
		for _, lk := range rowTA.Links {
			xa := nodeX(lk.A) + rowRank[lk.A][lk.B]
			xb := nodeX(lk.B) + rowRank[lk.B][lk.A]
			y := bandY + lk.Track
			if err := l.AddWireHV(fmt.Sprintf("r%d.%d-%d", r, lk.A, lk.B),
				geom.Point{X: xa, Y: nodeY(r) + nodeSide - 1},
				geom.Point{X: xa, Y: y},
				geom.Point{X: xb, Y: y},
				geom.Point{X: xb, Y: nodeY(r) + nodeSide - 1},
			); err != nil {
				return nil, err
			}
		}
	}

	// Column links: region right of each grid column. Terminal y slots
	// start above the row-link x-slot range cannot collide: x slots are
	// horizontal offsets, y slots vertical; both fit because
	// nodeSide = maxRow + maxCol and column slots begin at maxRow.
	for c := 0; c < cols; c++ {
		regionX := nodeX(c) + nodeSide
		for _, lk := range colTA.Links {
			ya := nodeY(lk.A) + maxRow + colRank[lk.A][lk.B]
			yb := nodeY(lk.B) + maxRow + colRank[lk.B][lk.A]
			x := regionX + lk.Track
			if err := l.AddWireHV(fmt.Sprintf("c%d.%d-%d", c, lk.A, lk.B),
				geom.Point{X: nodeX(c) + nodeSide - 1, Y: ya},
				geom.Point{X: x, Y: ya},
				geom.Point{X: x, Y: yb},
				geom.Point{X: nodeX(c) + nodeSide - 1, Y: yb},
			); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func degrees(n int, links []collinear.Link) []int {
	deg := make([]int, n)
	for _, lk := range links {
		deg[lk.A]++
		deg[lk.B]++
	}
	return deg
}

func maxOf(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// ranks[v][u] = index of u among v's neighbors in ascending order.
func ranks(n int, links []collinear.Link) []map[int]int {
	neigh := make([][]int, n)
	for _, lk := range links {
		neigh[lk.A] = append(neigh[lk.A], lk.B)
		neigh[lk.B] = append(neigh[lk.B], lk.A)
	}
	out := make([]map[int]int, n)
	for v := range neigh {
		ns := neigh[v]
		// insertion sort; degrees are tiny
		for i := 1; i < len(ns); i++ {
			for j := i; j > 0 && ns[j] < ns[j-1]; j-- {
				ns[j], ns[j-1] = ns[j-1], ns[j]
			}
		}
		m := make(map[int]int, len(ns))
		for i, u := range ns {
			m[u] = i
		}
		out[v] = m
	}
	return out
}

// Hypercube lays out Q_n with the even address split
// (kx = ceil(n/2) column bits, ky = n - kx row bits).
func Hypercube(n int) (*Result, error) {
	if n < 1 || n > 16 {
		return nil, fmt.Errorf("cubelayout: dimension %d out of range [1,16]", n)
	}
	kx := (n + 1) / 2
	ky := n - kx
	cols := 1 << uint(kx)
	rows := 1 << uint(ky)
	var colLinks []collinear.Link
	if ky > 0 {
		colLinks = collinear.HypercubeLinks(ky)
	}
	return Build(rows, cols, collinear.HypercubeLinks(kx), colLinks)
}

// Torus lays out the k-ary 2-cube (k x k torus): every grid row and
// column is a k-node ring.
func Torus(k int) (*Result, error) {
	if k < 2 || k > 1024 {
		return nil, fmt.Errorf("cubelayout: torus radix %d out of range [2,1024]", k)
	}
	return Build(k, k, collinear.RingLinks(k), collinear.RingLinks(k))
}

// Stats measures the built layout.
func (r *Result) Stats() grid.Stats { return r.L.Stats() }

// Validate runs the full Thompson-rule check.
func (r *Result) Validate() error {
	return r.L.Validate(grid.ValidateOptions{
		CheckNodeInteriors:      true,
		RequireTerminalsOnNodes: true,
	})
}
