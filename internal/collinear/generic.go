package collinear

import (
	"fmt"
	"sort"
)

// Link is an edge of an arbitrary graph whose nodes sit on a line.
type Link struct {
	A, B int // 0-based node indices, any order
}

// FromLinks builds a track assignment for an arbitrary multiset of links
// over n collinear nodes using the left-edge algorithm. The track count
// equals the maximum cut of the link intervals, which is optimal for
// interval track assignment. Parallel links are allowed (each occupies
// its own interval); self-loops are rejected.
//
// This generalizes the complete-graph layout of Appendix B to the "other
// networks" the paper's conclusion mentions (hypercubes, k-ary n-cubes):
// any network with a fixed linear node order gets an optimal-depth
// collinear layout, reusable by the grid-of-collinear-layouts scheme.
func FromLinks(n int, links []Link) (*TrackAssignment, error) {
	if n < 1 {
		return nil, fmt.Errorf("collinear: need at least one node")
	}
	type iv struct {
		a, b, idx int
	}
	ivs := make([]iv, 0, len(links))
	for i, lk := range links {
		a, b := lk.A, lk.B
		if a > b {
			a, b = b, a
		}
		if a < 0 || b >= n {
			return nil, fmt.Errorf("collinear: link %d (%d,%d) out of range [0,%d)", i, lk.A, lk.B, n)
		}
		if a == b {
			return nil, fmt.Errorf("collinear: link %d is a self-loop on node %d", i, a)
		}
		ivs = append(ivs, iv{a, b, i})
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].a != ivs[j].a {
			return ivs[i].a < ivs[j].a
		}
		return ivs[i].b < ivs[j].b
	})
	type trk struct{ end, id int }
	var tracks []trk // sorted ascending by end
	insert := func(t trk) {
		pos := sort.Search(len(tracks), func(i int) bool { return tracks[i].end > t.end })
		tracks = append(tracks, trk{})
		copy(tracks[pos+1:], tracks[pos:len(tracks)-1])
		tracks[pos] = t
	}
	ta := &TrackAssignment{N: n, Links: make([]AssignedLink, len(links))}
	next := 0
	for _, v := range ivs {
		pos := sort.Search(len(tracks), func(i int) bool { return tracks[i].end > v.a })
		var t trk
		if pos == 0 {
			t = trk{id: next}
			next++
		} else {
			t = tracks[pos-1]
			tracks = append(tracks[:pos-1], tracks[pos:]...)
		}
		t.end = v.b
		insert(t)
		ta.Links[v.idx] = AssignedLink{A: v.a, B: v.b, Track: t.id}
	}
	ta.NumTracks = next
	return ta, nil
}

// MaxCut returns the maximum number of link intervals covering any point
// strictly between two adjacent nodes: the bisection-style lower bound on
// collinear tracks for this link set and node order.
func MaxCut(n int, links []Link) int {
	diff := make([]int, n+1)
	for _, lk := range links {
		a, b := lk.A, lk.B
		if a > b {
			a, b = b, a
		}
		// covers the gaps a..b-1 (gap i lies between node i and i+1)
		diff[a]++
		diff[b]--
	}
	cur, max := 0, 0
	for i := 0; i < n; i++ {
		cur += diff[i]
		if cur > max {
			max = cur
		}
	}
	return max
}

// ValidateLoose checks a generic assignment: all link intervals in range,
// no two links in the same track overlapping in more than an endpoint.
// Unlike Validate it does not require the links to form K_N.
func (ta *TrackAssignment) ValidateLoose() error {
	byTrack := make(map[int][]AssignedLink)
	for _, lk := range ta.Links {
		if lk.A < 0 || lk.B >= ta.N || lk.A >= lk.B {
			return fmt.Errorf("collinear: bad link %+v", lk)
		}
		if lk.Track < 0 || lk.Track >= ta.NumTracks {
			return fmt.Errorf("collinear: link %+v track out of range", lk)
		}
		byTrack[lk.Track] = append(byTrack[lk.Track], lk)
	}
	for t, links := range byTrack {
		sort.Slice(links, func(i, j int) bool { return links[i].A < links[j].A })
		for i := 1; i < len(links); i++ {
			if links[i].A < links[i-1].B {
				return fmt.Errorf("collinear: track %d: %+v and %+v overlap", t, links[i-1], links[i])
			}
		}
	}
	return nil
}

// HypercubeLinks returns the edge list of Q_k over the identity node
// order (node = address). It panics for k outside [0, 30]: Q_k has
// k·2^(k-1) edges, so larger k could not be materialized anyway and
// 2^k would no longer be safely representable.
func HypercubeLinks(k int) []Link {
	if k < 0 || k > 30 {
		panic(fmt.Sprintf("collinear: hypercube dimension %d outside [0,30]", k))
	}
	n := 1 << uint(k)
	var out []Link
	for u := 0; u < n; u++ {
		for d := 0; d < k; d++ {
			v := u ^ (1 << uint(d))
			if v > u {
				out = append(out, Link{u, v})
			}
		}
	}
	return out
}

// RingLinks returns the edge list of a k-node ring (the 1-D k-ary cube)
// over the natural order, including the wraparound edge.
func RingLinks(k int) []Link {
	var out []Link
	for i := 0; i < k; i++ {
		j := (i + 1) % k
		a, b := i, j
		if a > b {
			a, b = b, a
		}
		if k == 2 && i == 1 {
			continue // avoid doubling the single edge
		}
		out = append(out, Link{a, b})
	}
	return out
}
