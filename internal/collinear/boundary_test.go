package collinear

import (
	"strings"
	"testing"
)

// MaxN is exactly floor(sqrt(2^63 - 1)): its square is the largest
// representable n², so OptimalTracks(MaxN) must compute and
// OptimalTracks(MaxN+1) must refuse.
func TestOptimalTracksAtExactMaxN(t *testing.T) {
	got := OptimalTracks(MaxN)
	want := MaxN * MaxN / 4
	if got != want {
		t.Errorf("OptimalTracks(MaxN) = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("OptimalTracks(MaxN+1) did not panic")
		}
	}()
	OptimalTracks(MaxN + 1)
}

func TestConstructorsRejectOutOfRangeN(t *testing.T) {
	for _, n := range []int{-1, 0, 1, MaxN + 1} {
		if _, err := Optimal(n); err == nil {
			t.Errorf("Optimal(%d) succeeded, want error", n)
		}
		if _, err := Greedy(n); err == nil {
			t.Errorf("Greedy(%d) succeeded, want error", n)
		}
	}
	if _, err := Optimal(MaxN + 1); err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Errorf("Optimal(MaxN+1) error = %v, want overflow message", err)
	}
}

func TestChenAgrawalTracksAtExactMax(t *testing.T) {
	// maxChenAgrawalN = 2^31: ceil(log2 n) = 31, bound 4(4^30 - 1)/3.
	p := 1
	for i := 0; i < 30; i++ {
		p *= 4
	}
	if got, want := ChenAgrawalTracks(maxChenAgrawalN), 4*(p-1)/3; got != want {
		t.Errorf("ChenAgrawalTracks(2^31) = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("ChenAgrawalTracks(2^31+1) did not panic")
		}
	}()
	ChenAgrawalTracks(maxChenAgrawalN + 1)
}

func TestHypercubeLinksDimensionGuard(t *testing.T) {
	for _, k := range []int{-1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HypercubeLinks(%d) did not panic", k)
				}
			}()
			HypercubeLinks(k)
		}()
	}
	if got := len(HypercubeLinks(3)); got != 12 {
		t.Errorf("Q_3 has %d links, want 12", got)
	}
}

func TestMustConstructorsPanicOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOptimal(1) did not panic")
		}
	}()
	MustOptimal(1)
}
