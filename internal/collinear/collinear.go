// Package collinear implements the strictly optimal collinear layout of
// complete graphs from Appendix B of the paper, plus two baselines.
//
// A collinear layout places the N nodes of K_N along a row and routes
// every one of the N(N-1)/2 links in horizontal tracks above them. The
// paper's scheme classifies a link joining nodes a < b as "type i" with
// i = b - a and assigns:
//
//   - type-i links, i <= N/2: to i tracks, one per residue class of the
//     node address modulo i (links in a class chain end-to-end);
//   - type-i links, i > N/2: each of the N-i links gets its own track.
//
// The total is sum_i min(i, N-i) = floor(N^2/4) tracks, exactly matching
// the bisection lower bound, 25% below the 4(4^(log2 N - 1) - 1)/3 bound
// of Chen & Agrawal that the paper improves on.
package collinear

import (
	"fmt"
	"math"
	"sort"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
)

// MaxN is the largest complete-graph size whose N² products (track
// counts, link counts) fit in int: floor(sqrt(2^63 - 1)). Constructors
// reject larger N with a descriptive error instead of silently
// overflowing.
const MaxN = 3_037_000_499

// maxChenAgrawalN is the largest n whose Chen–Agrawal track bound
// 4(4^(ceil(log2 n)-1) - 1)/3 fits in int: ceil(log2 n) <= 31 keeps the
// final 4(4^30 - 1)/3 product under 2^63.
const maxChenAgrawalN = 1 << 31

// AssignedLink is a K_N link placed in a track.
type AssignedLink struct {
	A, B  int // 0-based node indices, A < B
	Track int
}

// TrackAssignment maps every link of K_N to a track such that links
// sharing a track do not overlap in their interiors.
type TrackAssignment struct {
	N         int
	NumTracks int
	Links     []AssignedLink
}

// OptimalTracks returns floor(N^2/4), the paper's strictly optimal track
// count (and the bisection-width lower bound for even N). It panics for
// n beyond MaxN, where the square no longer fits in int.
func OptimalTracks(n int) int {
	sq, ok := bitutil.CheckedMul(n, n)
	if !ok {
		panic(fmt.Sprintf("collinear: floor(n²/4) overflows int for n=%d (max %d)", n, MaxN))
	}
	return sq / 4
}

// ChenAgrawalTracks returns the prior best bound the paper improves on:
// 4*(4^(ceil(log2 N)-1) - 1)/3 tracks (Chen & Agrawal, dBCube). Defined
// for N >= 2; N is rounded up to a power of two as in the original
// recursive construction.
func ChenAgrawalTracks(n int) int {
	if n < 2 {
		return 0
	}
	if n > maxChenAgrawalN {
		panic(fmt.Sprintf("collinear: Chen–Agrawal bound overflows int for n=%d (max %d)", n, maxChenAgrawalN))
	}
	lg := 0
	for lg < 63 && (1<<uint(lg)) < n {
		lg++
	}
	// 4*(4^(lg-1)-1)/3
	p := 1
	for i := 0; i < lg-1; i++ {
		p *= 4
	}
	return 4 * (p - 1) / 3
}

// Optimal constructs the paper's assignment for K_n (Appendix B). It
// returns an error for n < 2 (no links) and for n > MaxN (the track and
// link counts overflow int).
func Optimal(n int) (*TrackAssignment, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	ta := &TrackAssignment{N: n}
	// Track base offset for each type: types laid out in order 1..n-1.
	base := 0
	for i := 1; i < n; i++ {
		cnt := i
		if n-i < cnt {
			cnt = n - i
		}
		if i <= n/2 {
			// one track per residue class modulo i
			for a := 0; a+i < n; a++ {
				ta.Links = append(ta.Links, AssignedLink{A: a, B: a + i, Track: base + a%i})
			}
		} else {
			// each link its own track
			t := 0
			for a := 0; a+i < n; a++ {
				ta.Links = append(ta.Links, AssignedLink{A: a, B: a + i, Track: base + t})
				t++
			}
		}
		base += cnt
	}
	ta.NumTracks = base
	return ta, nil
}

// checkN validates a complete-graph size for the constructors.
func checkN(n int) error {
	if n < 2 {
		return fmt.Errorf("collinear: K_%d has no links", n)
	}
	if n > MaxN {
		return fmt.Errorf("collinear: K_%d track count floor(n²/4) overflows int (max n %d)", n, MaxN)
	}
	return nil
}

// MustOptimal is Optimal that panics on error; for tests and literals
// with known-good parameters.
func MustOptimal(n int) *TrackAssignment {
	ta, err := Optimal(n)
	if err != nil {
		panic(err)
	}
	return ta
}

// MustGreedy is Greedy that panics on error.
func MustGreedy(n int) *TrackAssignment {
	ta, err := Greedy(n)
	if err != nil {
		panic(err)
	}
	return ta
}

// Greedy constructs an assignment with the classical left-edge algorithm
// (sort links by left endpoint; place each in the lowest track whose
// last-used right endpoint is <= the link's left endpoint). It serves as
// an independent constructive baseline: for K_n it also achieves the
// maximum cut, floor(n^2/4) tracks, corroborating the optimality of the
// paper's closed-form scheme.
func Greedy(n int) (*TrackAssignment, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	type link struct{ a, b int }
	var links []link
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			links = append(links, link{a, b})
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].a != links[j].a {
			return links[i].a < links[j].a
		}
		return links[i].b < links[j].b
	})
	// Tracks kept sorted ascending by their rightmost used endpoint; for
	// each link reuse the track with the largest end <= its left endpoint
	// (best-fit left-edge), else open a new track.
	type trk struct{ end, id int }
	var tracks []trk
	insert := func(t trk) {
		pos := sort.Search(len(tracks), func(i int) bool { return tracks[i].end > t.end })
		tracks = append(tracks, trk{})
		copy(tracks[pos+1:], tracks[pos:len(tracks)-1])
		tracks[pos] = t
	}
	ta := &TrackAssignment{N: n}
	nextID := 0
	for _, lk := range links {
		idx := sort.Search(len(tracks), func(i int) bool { return tracks[i].end > lk.a })
		var t trk
		if idx == 0 {
			t = trk{id: nextID}
			nextID++
		} else {
			t = tracks[idx-1]
			tracks = append(tracks[:idx-1], tracks[idx:]...)
		}
		t.end = lk.b
		insert(t)
		ta.Links = append(ta.Links, AssignedLink{A: lk.a, B: lk.b, Track: t.id})
	}
	ta.NumTracks = nextID
	return ta, nil
}

// Validate checks that the assignment covers every link of K_N exactly
// once, track indices are within range, and no two links in the same
// track overlap in more than an endpoint.
func (ta *TrackAssignment) Validate() error {
	seen := make(map[[2]int]bool)
	byTrack := make(map[int][]AssignedLink)
	for _, lk := range ta.Links {
		if lk.A < 0 || lk.B >= ta.N || lk.A >= lk.B {
			return fmt.Errorf("collinear: bad link %+v", lk)
		}
		key := [2]int{lk.A, lk.B}
		if seen[key] {
			return fmt.Errorf("collinear: duplicate link %v", key)
		}
		seen[key] = true
		if lk.Track < 0 || lk.Track >= ta.NumTracks {
			return fmt.Errorf("collinear: link %v track %d out of range [0,%d)", key, lk.Track, ta.NumTracks)
		}
		byTrack[lk.Track] = append(byTrack[lk.Track], lk)
	}
	if want := ta.N * (ta.N - 1) / 2; len(ta.Links) != want {
		return fmt.Errorf("collinear: %d links assigned, want %d", len(ta.Links), want)
	}
	for t, links := range byTrack {
		sort.Slice(links, func(i, j int) bool { return links[i].A < links[j].A })
		for i := 1; i < len(links); i++ {
			if links[i].A < links[i-1].B {
				return fmt.Errorf("collinear: track %d: links %+v and %+v overlap", t, links[i-1], links[i])
			}
		}
	}
	return nil
}

// ReorderByDescendingSpan renumbers tracks so that tracks holding longer
// links sit closer to the node row (lower track index). This is the
// paper's remark that reversing the track order reduces the maximum wire
// length: the longest horizontal runs then pay the smallest vertical
// detour.
func (ta *TrackAssignment) ReorderByDescendingSpan() {
	maxSpan := make([]int, ta.NumTracks)
	for _, lk := range ta.Links {
		if s := lk.B - lk.A; s > maxSpan[lk.Track] {
			maxSpan[lk.Track] = s
		}
	}
	order := make([]int, ta.NumTracks)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool { return maxSpan[order[i]] > maxSpan[order[j]] })
	newIdx := make([]int, ta.NumTracks)
	for rank, t := range order {
		newIdx[t] = rank
	}
	for i := range ta.Links {
		ta.Links[i].Track = newIdx[ta.Links[i].Track]
	}
}

// LayoutOptions controls geometric realization of a track assignment.
type LayoutOptions struct {
	// Replication lays out each link as this many parallel copies, each
	// in its own track bank (the paper's quadrupled collinear layouts use
	// Replication 4). Default 1.
	Replication int
	// NodeHeight is the height of the node boxes (default 1).
	NodeHeight int
}

// ToLayout realizes the assignment as a Thompson-model layout: node boxes
// in a row (each wide enough for one terminal per incident wire), tracks
// above, every wire an up-over-down polyline. The result validates under
// the Thompson rules.
func ToLayout(ta *TrackAssignment, opts LayoutOptions) (*grid.Layout, error) {
	rep := opts.Replication
	if rep == 0 {
		rep = 1
	}
	if rep < 1 {
		return nil, fmt.Errorf("collinear: replication %d < 1", rep)
	}
	nodeH := opts.NodeHeight
	if nodeH == 0 {
		nodeH = 1
	}
	n := ta.N
	deg := (n - 1) * rep // terminals per node
	pitch := deg + 1
	l := grid.NewLayout(grid.Thompson, 2)
	nodeX := func(v int) int { return v * pitch }
	// terminal column for the link (v -> other, copy c): rank of (other,c)
	// among v's incident wires ordered by (other, c).
	term := func(v, other, c int) int {
		rank := 0
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if u < other {
				rank += rep
			}
		}
		return nodeX(v) + rank + c
	}
	topY := nodeH - 1 // node boxes occupy y in [0, nodeH-1]
	for v := 0; v < n; v++ {
		l.AddNode(fmt.Sprintf("node%d", v), geom.NewRect(nodeX(v), 0, nodeX(v)+deg-1, topY))
	}
	trackY := func(track, copy int) int { return topY + 1 + copy*ta.NumTracks + track }
	for _, lk := range ta.Links {
		for c := 0; c < rep; c++ {
			xa := term(lk.A, lk.B, c)
			xb := term(lk.B, lk.A, c)
			y := trackY(lk.Track, c)
			label := fmt.Sprintf("k%d-%d.%d", lk.A, lk.B, c)
			if err := l.AddWireHV(label,
				geom.Point{X: xa, Y: topY},
				geom.Point{X: xa, Y: y},
				geom.Point{X: xb, Y: y},
				geom.Point{X: xb, Y: topY},
			); err != nil {
				return nil, err
			}
		}
	}
	return l, nil
}

// MaxWireLength computes, without building geometry, the maximum wire
// length of the single-copy unit-node realization: horizontal span in
// node pitches plus twice the vertical track offset.
func (ta *TrackAssignment) MaxWireLength() int {
	pitch := ta.N // abstract unit pitch per node
	max := 0
	for _, lk := range ta.Links {
		length := (lk.B-lk.A)*pitch + 2*(lk.Track+1)
		if length > max {
			max = length
		}
	}
	return max
}

// Efficiency returns NumTracks / OptimalTracks, i.e. 1.0 for an optimal
// assignment.
func (ta *TrackAssignment) Efficiency() float64 {
	return float64(ta.NumTracks) / float64(OptimalTracks(ta.N))
}

// TheoreticalTotal verifies the closed form of Appendix B by direct
// summation: sum_{i=1}^{N-1} min(i, N-i), which the paper shows equals
// floor(N^2/4).
func TheoreticalTotal(n int) int {
	total := 0
	for i := 1; i < n; i++ {
		total += int(math.Min(float64(i), float64(n-i)))
	}
	return total
}
