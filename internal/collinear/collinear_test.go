package collinear

import (
	"testing"

	"bfvlsi/internal/grid"
)

func TestOptimalTrackCountMatchesPaper(t *testing.T) {
	// Appendix B: the assignment uses exactly floor(N^2/4) tracks.
	for n := 2; n <= 40; n++ {
		ta := MustOptimal(n)
		if ta.NumTracks != OptimalTracks(n) {
			t.Errorf("K_%d: tracks = %d, want %d", n, ta.NumTracks, OptimalTracks(n))
		}
		if err := ta.Validate(); err != nil {
			t.Errorf("K_%d: %v", n, err)
		}
	}
}

// Figure 4 of the paper: K_9 lays out in floor(81/4) = 20 tracks.
func TestFig4K9(t *testing.T) {
	ta := MustOptimal(9)
	if ta.NumTracks != 20 {
		t.Fatalf("K_9 tracks = %d, want 20", ta.NumTracks)
	}
	if err := ta.Validate(); err != nil {
		t.Fatal(err)
	}
	// And the prior bound it beats: Chen-Agrawal needs 4*(4^3-1)/3 = 84
	// tracks for N rounded to 16; for N=8, 4*(4^2-1)/3 = 20... the paper's
	// 25% claim refers to powers of two: check N=8 and N=16 below.
}

func TestClosedFormEqualsSummation(t *testing.T) {
	for n := 2; n <= 100; n++ {
		if TheoreticalTotal(n) != OptimalTracks(n) {
			t.Errorf("N=%d: sum min(i,N-i) = %d, floor(N^2/4) = %d", n, TheoreticalTotal(n), OptimalTracks(n))
		}
	}
}

func TestChenAgrawalBaselineIs25PercentWorse(t *testing.T) {
	// For N a power of two, the paper claims its bound is 25% smaller
	// than 4(4^{log2 N - 1} - 1)/3; asymptotically CA/opt -> 4/3.
	for _, n := range []int{16, 32, 64, 128, 256} {
		ca := ChenAgrawalTracks(n)
		opt := OptimalTracks(n)
		ratio := float64(ca) / float64(opt)
		if ratio < 1.25 || ratio > 4.0/3.0+0.01 {
			t.Errorf("N=%d: CA=%d opt=%d ratio=%.4f, want in [1.25, 1.334]", n, ca, opt, ratio)
		}
	}
	if ChenAgrawalTracks(1) != 0 {
		t.Error("CA(1) != 0")
	}
}

func TestGreedyMatchesOptimalCount(t *testing.T) {
	// Left-edge greedy is optimal for interval track assignment, so it
	// must also land on floor(N^2/4) - an independent corroboration of
	// the bisection bound being achievable.
	for n := 2; n <= 30; n++ {
		g := MustGreedy(n)
		if err := g.Validate(); err != nil {
			t.Fatalf("greedy K_%d invalid: %v", n, err)
		}
		if g.NumTracks != OptimalTracks(n) {
			t.Errorf("greedy K_%d tracks = %d, want %d", n, g.NumTracks, OptimalTracks(n))
		}
	}
}

func TestValidateCatchesBadAssignments(t *testing.T) {
	ta := MustOptimal(5)
	// duplicate link
	bad := *ta
	bad.Links = append(append([]AssignedLink(nil), ta.Links...), AssignedLink{A: 0, B: 1, Track: 0})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate link accepted")
	}
	// overlapping in same track
	bad2 := &TrackAssignment{N: 3, NumTracks: 1, Links: []AssignedLink{
		{A: 0, B: 2, Track: 0}, {A: 1, B: 2, Track: 0}, {A: 0, B: 1, Track: 0},
	}}
	if err := bad2.Validate(); err == nil {
		t.Error("overlapping links accepted")
	}
	// out-of-range track
	bad3 := &TrackAssignment{N: 2, NumTracks: 1, Links: []AssignedLink{{A: 0, B: 1, Track: 5}}}
	if err := bad3.Validate(); err == nil {
		t.Error("out-of-range track accepted")
	}
	// missing links
	bad4 := &TrackAssignment{N: 3, NumTracks: 1, Links: []AssignedLink{{A: 0, B: 1, Track: 0}}}
	if err := bad4.Validate(); err == nil {
		t.Error("incomplete assignment accepted")
	}
}

func TestReorderByDescendingSpanReducesMaxWire(t *testing.T) {
	for _, n := range []int{8, 9, 16, 25} {
		ta := MustOptimal(n)
		before := ta.MaxWireLength()
		ta.ReorderByDescendingSpan()
		if err := ta.Validate(); err != nil {
			t.Fatalf("reorder broke K_%d: %v", n, err)
		}
		after := ta.MaxWireLength()
		if after > before {
			t.Errorf("K_%d: reorder increased max wire length %d -> %d", n, before, after)
		}
	}
}

func TestToLayoutValidatesUnderThompson(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9, 12} {
		ta := MustOptimal(n)
		l, err := ToLayout(ta, LayoutOptions{})
		if err != nil {
			t.Fatalf("K_%d: %v", n, err)
		}
		if err := l.Validate(grid.ValidateOptions{
			CheckNodeInteriors:      true,
			RequireTerminalsOnNodes: true,
		}); err != nil {
			t.Errorf("K_%d geometry invalid: %v", n, err)
		}
		if got, want := len(l.Wires), n*(n-1)/2; got != want {
			t.Errorf("K_%d wires = %d, want %d", n, got, want)
		}
	}
}

func TestToLayoutReplication(t *testing.T) {
	// Quadrupled links, as used for the butterfly block wiring (Sec. 3.2).
	ta := MustOptimal(8)
	l, err := ToLayout(ta, LayoutOptions{Replication: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(grid.ValidateOptions{
		CheckNodeInteriors:      true,
		RequireTerminalsOnNodes: true,
	}); err != nil {
		t.Fatalf("replicated geometry invalid: %v", err)
	}
	if got, want := len(l.Wires), 4*8*7/2; got != want {
		t.Errorf("wires = %d, want %d", got, want)
	}
	// The track region height is 4 * floor(64/4) = 64 plus the node row.
	st := l.Stats()
	if st.Height != 1+4*16 {
		t.Errorf("height = %d, want %d", st.Height, 1+4*16)
	}
}

func TestToLayoutRejectsBadReplication(t *testing.T) {
	if _, err := ToLayout(MustOptimal(4), LayoutOptions{Replication: -1}); err == nil {
		t.Error("negative replication accepted")
	}
}

func TestGreedyGeometryAlsoValid(t *testing.T) {
	ta := MustGreedy(9)
	l, err := ToLayout(ta, LayoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(grid.ValidateOptions{CheckNodeInteriors: true}); err != nil {
		t.Errorf("greedy geometry invalid: %v", err)
	}
}

func TestEfficiency(t *testing.T) {
	if e := MustOptimal(10).Efficiency(); e != 1.0 {
		t.Errorf("optimal efficiency = %v", e)
	}
}

func BenchmarkOptimalK64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustOptimal(64)
	}
}

func BenchmarkGreedyK64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MustGreedy(64)
	}
}

func BenchmarkToLayoutK32(b *testing.B) {
	ta := MustOptimal(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ToLayout(ta, LayoutOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
