package collinear

import (
	"testing"
	"testing/quick"
)

// Property (testing/quick): for any N in [2, 64], the paper's assignment
// is valid and uses exactly floor(N^2/4) tracks, and reordering tracks
// never breaks validity nor increases the abstract max wire length.
func TestOptimalQuickProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := 2 + int(raw)%63
		ta := MustOptimal(n)
		if ta.Validate() != nil || ta.NumTracks != OptimalTracks(n) {
			return false
		}
		before := ta.MaxWireLength()
		ta.ReorderByDescendingSpan()
		return ta.Validate() == nil && ta.MaxWireLength() <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: greedy and the closed-form scheme always agree on the track
// count (both optimal).
func TestGreedyEqualsOptimalQuick(t *testing.T) {
	f := func(raw uint8) bool {
		n := 2 + int(raw)%40
		return MustGreedy(n).NumTracks == MustOptimal(n).NumTracks
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: FromLinks on any random link multiset equals MaxCut and
// validates loosely.
func TestFromLinksQuick(t *testing.T) {
	f := func(seed int64, nodes uint8, count uint8) bool {
		n := 2 + int(nodes)%24
		m := int(count) % 48
		links := make([]Link, 0, m)
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int((s >> 33) % int64(mod))
			if v < 0 {
				v += mod
			}
			return v
		}
		for i := 0; i < m; i++ {
			a := next(n)
			b := next(n)
			if a == b {
				b = (b + 1) % n
			}
			links = append(links, Link{A: a, B: b})
		}
		ta, err := FromLinks(n, links)
		if err != nil {
			return false
		}
		return ta.ValidateLoose() == nil && ta.NumTracks == MaxCut(n, links)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
