package collinear

import (
	"math/rand"
	"testing"

	"bfvlsi/internal/grid"
)

func TestFromLinksMatchesMaxCut(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(30)
		m := rng.Intn(4 * n)
		links := make([]Link, 0, m)
		for i := 0; i < m; i++ {
			a := rng.Intn(n)
			b := rng.Intn(n)
			if a == b {
				b = (b + 1) % n
			}
			links = append(links, Link{a, b})
		}
		ta, err := FromLinks(n, links)
		if err != nil {
			t.Fatal(err)
		}
		if err := ta.ValidateLoose(); err != nil {
			t.Fatal(err)
		}
		if ta.NumTracks != MaxCut(n, links) {
			t.Fatalf("trial %d: tracks=%d maxcut=%d", trial, ta.NumTracks, MaxCut(n, links))
		}
	}
}

func TestFromLinksRejectsBadInput(t *testing.T) {
	if _, err := FromLinks(0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := FromLinks(3, []Link{{0, 3}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := FromLinks(3, []Link{{1, 1}}); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestFromLinksCompleteGraphEqualsOptimal(t *testing.T) {
	// On K_N the generic left-edge must reach the same floor(N^2/4) as
	// the paper's closed-form scheme.
	for _, n := range []int{4, 9, 16, 25} {
		var links []Link
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				links = append(links, Link{a, b})
			}
		}
		ta, err := FromLinks(n, links)
		if err != nil {
			t.Fatal(err)
		}
		if ta.NumTracks != OptimalTracks(n) {
			t.Errorf("K_%d: generic tracks %d != floor(N^2/4) %d", n, ta.NumTracks, OptimalTracks(n))
		}
	}
}

func TestHypercubeCollinear(t *testing.T) {
	// Collinear Q_k in natural order: the cut at the midpoint is 2^{k-1}
	// (one dim-(k-1) link per node in the left half), plus the lower-dim
	// links spanning it... compute the exact maxcut and ensure left-edge
	// matches it, and that it is Theta(2^k).
	for k := 1; k <= 8; k++ {
		links := HypercubeLinks(k)
		ta, err := FromLinks(1<<uint(k), links)
		if err != nil {
			t.Fatal(err)
		}
		if err := ta.ValidateLoose(); err != nil {
			t.Fatal(err)
		}
		mc := MaxCut(1<<uint(k), links)
		if ta.NumTracks != mc {
			t.Errorf("Q_%d: tracks %d != maxcut %d", k, ta.NumTracks, mc)
		}
		// Theta(2^k) window: bisection 2^{k-1} <= tracks <= k*2^{k-1}.
		if mc < 1<<uint(k-1) || mc > k<<uint(k-1) {
			t.Errorf("Q_%d: maxcut %d outside [2^{k-1}, k 2^{k-1}]", k, mc)
		}
	}
}

func TestHypercubeCollinearExactCut(t *testing.T) {
	// The exact midpoint cut of collinear Q_k in natural order is
	// 2^k - 1 links for k >= 1 (one link per dimension d crossing per
	// residue: sum_d 2^{k-1-d} ... verified against direct counting).
	for k := 1; k <= 10; k++ {
		n := 1 << uint(k)
		// direct midpoint count: links (a,b) with a < n/2 <= b
		count := 0
		for _, lk := range HypercubeLinks(k) {
			if lk.A < n/2 && lk.B >= n/2 {
				count++
			}
		}
		mc := MaxCut(n, HypercubeLinks(k))
		if mc < count {
			t.Errorf("Q_%d: maxcut %d below midpoint cut %d", k, mc, count)
		}
	}
}

func TestRingLinks(t *testing.T) {
	links := RingLinks(5)
	if len(links) != 5 {
		t.Fatalf("ring links = %v", links)
	}
	ta, err := FromLinks(5, links)
	if err != nil {
		t.Fatal(err)
	}
	// A ring in natural order: adjacent links on the baseline (cut 1)
	// plus the wrap link spanning everything: maxcut 2.
	if ta.NumTracks != 2 {
		t.Errorf("ring tracks = %d, want 2", ta.NumTracks)
	}
	if len(RingLinks(2)) != 1 {
		t.Error("2-ring should have a single edge")
	}
}

func TestGenericToLayoutValidates(t *testing.T) {
	// The geometric realization also works for generic assignments as
	// long as every node's incident count fits its box: size boxes by
	// the true degree via the K_N realization path. For Q_3 (degree 3 <
	// N-1) ToLayout still allocates K_N-sized terminals, which is safe.
	links := HypercubeLinks(3)
	ta, err := FromLinks(8, links)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ToLayout(ta, LayoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(grid.ValidateOptions{CheckNodeInteriors: true}); err != nil {
		t.Errorf("Q_3 collinear geometry invalid: %v", err)
	}
}

func BenchmarkFromLinksQ8(b *testing.B) {
	links := HypercubeLinks(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromLinks(256, links); err != nil {
			b.Fatal(err)
		}
	}
}
