package packaging

import (
	"math"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/isn"
)

func TestRowPartitionAvgMatchesPaperFormula(t *testing.T) {
	// For HSN-derived swap-butterflies the measured average off-module
	// links per node must equal the Section 2.3 formula exactly.
	cases := [][]int{
		{2, 2},
		{3, 3},
		{2, 2, 2},
		{3, 3, 3},
		{1, 1, 1, 1},
		{2, 2, 2, 2},
	}
	for _, widths := range cases {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		st := RowPartition(sb).Stats()
		want := PaperAvgOffLinks(spec.Levels(), spec.GroupWidth(1), spec.TotalBits())
		if math.Abs(st.AvgOffLinksPerNode-want) > 1e-12 {
			t.Errorf("%v: avg off links = %v, formula %v", spec, st.AvgOffLinksPerNode, want)
		}
	}
}

func TestGeneralAvgOffLinksMatchesMeasurement(t *testing.T) {
	for _, widths := range [][]int{{3, 2}, {3, 2, 2}, {4, 3, 1}, {3, 3, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		st := RowPartition(sb).Stats()
		want := GeneralAvgOffLinks(widths)
		if math.Abs(st.AvgOffLinksPerNode-want) > 1e-12 {
			t.Errorf("%v: avg off links = %v, formula %v", spec, st.AvgOffLinksPerNode, want)
		}
	}
}

func TestRowPartitionOnlySwapLinksCut(t *testing.T) {
	// The whole point of the scheme: straight and cross links never leave
	// a module, so the cut is at most the number of swap links.
	spec := bitutil.MustGroupSpec(2, 2, 2)
	sb := isn.Transform(spec)
	p := RowPartition(sb)
	st := p.Stats()
	swapLinks := 2 * sb.Rows * (spec.Levels() - 1)
	if st.TotalCutLinks > swapLinks {
		t.Errorf("cut %d exceeds swap link count %d", st.TotalCutLinks, swapLinks)
	}
	if st.TotalCutLinks == 0 {
		t.Error("no links cut; partition degenerate")
	}
	// Modules hold full rows: 2^k1 rows x (n+1) stages each.
	if st.MaxNodesPerModule != st.MinNodesPerModule || st.MaxNodesPerModule != 4*7 {
		t.Errorf("module sizes = [%d, %d], want uniform 28", st.MinNodesPerModule, st.MaxNodesPerModule)
	}
}

func TestNaiveBaselineIsApproximatelyTwo(t *testing.T) {
	for _, c := range []struct{ n, m int }{{6, 2}, {8, 3}, {9, 3}} {
		bf := butterfly.New(c.n)
		p := NaiveRowPartition(bf, 1<<uint(c.m))
		st := p.Stats()
		want := NaiveAvgOffLinks(c.n, c.m)
		if math.Abs(st.AvgOffLinksPerNode-want) > 1e-12 {
			t.Errorf("n=%d m=%d: avg = %v, formula %v", c.n, c.m, st.AvgOffLinksPerNode, want)
		}
		if st.AvgOffLinksPerNode < 1.0 {
			t.Errorf("baseline suspiciously good: %v", st.AvgOffLinksPerNode)
		}
	}
}

func TestSchemeBeatsBaselineByLogFactor(t *testing.T) {
	// Section 2.3: the scheme outperforms the naive partition by a factor
	// of Theta(log N), already visible at k1 = 3 (paper's remark).
	spec := bitutil.MustGroupSpec(3, 3, 3)
	sb := isn.Transform(spec)
	scheme := RowPartition(sb).Stats().AvgOffLinksPerNode
	bf := butterfly.New(9)
	naive := NaiveRowPartition(bf, 8).Stats().AvgOffLinksPerNode
	ratio := naive / scheme
	// At n=9 the asymptotic Theta(log N) factor shows up as ~1.7x
	// (0.7 vs 1.2 off-module links per node); it grows with n (next test).
	if ratio < 1.5 {
		t.Errorf("improvement ratio only %.2f (scheme %.3f vs naive %.3f)", ratio, scheme, naive)
	}
}

func TestImprovementGrowsWithN(t *testing.T) {
	// The improvement factor must grow with n (it is Theta(log N)).
	prev := 0.0
	for _, k := range []int{1, 2, 3} {
		spec := bitutil.MustGroupSpec(k, k, k)
		sb := isn.Transform(spec)
		scheme := RowPartition(sb).Stats().AvgOffLinksPerNode
		naive := NaiveRowPartition(butterfly.New(3*k), 1<<uint(k)).Stats().AvgOffLinksPerNode
		ratio := naive / scheme
		if ratio <= prev {
			t.Errorf("k=%d: ratio %.3f did not grow (prev %.3f)", k, ratio, prev)
		}
		prev = ratio
	}
}

func TestNucleusPartitionTheorem21(t *testing.T) {
	for _, widths := range [][]int{{2, 2}, {3, 3}, {2, 2, 2}, {3, 3, 3}, {3, 3, 2}, {3, 2, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		if err := Theorem21(sb); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestNucleusPartitionStructure(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	sb := isn.Transform(spec)
	p := NucleusPartition(sb)
	// 3 segments x 16 row blocks = 48 modules.
	if p.NumModules != 48 {
		t.Fatalf("modules = %d, want 48", p.NumModules)
	}
	st := p.Stats()
	// Segment 0 has k1+1=3 stages, others k_i=2: nodes per module 12 or 8.
	if st.MaxNodesPerModule != 12 || st.MinNodesPerModule != 8 {
		t.Errorf("module sizes [%d, %d], want [8, 12]", st.MinNodesPerModule, st.MaxNodesPerModule)
	}
	// Every module's off-links bounded by 2^{k1+2} = 16.
	if st.MaxOffLinksPerModu > 16 {
		t.Errorf("max off links %d > 16", st.MaxOffLinksPerModu)
	}
	// Nucleus partition cuts ALL swap links (every merged link crosses a
	// segment boundary).
	if want := 2 * sb.Rows * 2; st.TotalCutLinks != want {
		t.Errorf("cut = %d, want all %d swap links", st.TotalCutLinks, want)
	}
}

func TestNucleusAvgApproximately4OverK1(t *testing.T) {
	// Section 2.3: variant (b) average off-module links per node ~ 4/k1
	// for HSN specs with moderate l.
	spec := bitutil.MustGroupSpec(3, 3, 3)
	sb := isn.Transform(spec)
	st := NucleusPartition(sb).Stats()
	// exact: 2*cut/N = 2*(l-1)*2R / ((n+1) R) = 4(l-1)/(n+1) = 8/10
	want := 4.0 * float64(spec.Levels()-1) / float64(spec.TotalBits()+1)
	if math.Abs(st.AvgOffLinksPerNode-want) > 1e-12 {
		t.Errorf("avg = %v, want %v", st.AvgOffLinksPerNode, want)
	}
	if st.AvgOffLinksPerNode > 4.0/float64(spec.GroupWidth(1))+1e-9 {
		t.Errorf("avg %v exceeds 4/k1 = %v", st.AvgOffLinksPerNode, 4.0/3.0)
	}
}

func TestInjectionLowerBound(t *testing.T) {
	if got := InjectionLowerBound(80, 512); math.Abs(got-80.0/9.0) > 1e-12 {
		t.Errorf("lower bound = %v, want %v", got, 80.0/9.0)
	}
	if got := InjectionLowerBound(5, 1); got != 5 {
		t.Errorf("degenerate bound = %v", got)
	}
	// The scheme's off-module links stay within a constant factor of the
	// lower bound: optimality within a constant (Theorem 2.1).
	spec := bitutil.MustGroupSpec(3, 3, 3)
	sb := isn.Transform(spec)
	st := NucleusPartition(sb).Stats()
	lb := InjectionLowerBound(st.MaxNodesPerModule, sb.Rows)
	if float64(st.MaxOffLinksPerModu) < lb {
		t.Errorf("off-links %d below the lower bound %v: impossible", st.MaxOffLinksPerModu, lb)
	}
	if float64(st.MaxOffLinksPerModu) > 16*lb {
		t.Errorf("off-links %d not within constant factor of bound %v", st.MaxOffLinksPerModu, lb)
	}
}

func TestNaivePartitionUnevenModules(t *testing.T) {
	bf := butterfly.New(4)
	p := NaiveRowPartition(bf, 3) // 16 rows -> 6 modules, last with 1 row
	if p.NumModules != 6 {
		t.Fatalf("modules = %d", p.NumModules)
	}
	st := p.Stats()
	if st.MinNodesPerModule != 5 || st.MaxNodesPerModule != 15 {
		t.Errorf("sizes [%d,%d], want [5,15]", st.MinNodesPerModule, st.MaxNodesPerModule)
	}
}

func BenchmarkRowPartitionStats(b *testing.B) {
	sb := isn.Transform(bitutil.MustGroupSpec(3, 3, 3))
	p := RowPartition(sb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Stats()
	}
}

func TestModuleGraphStructure(t *testing.T) {
	// Row partition of an HSN-derived swap-butterfly: the module quotient
	// is the swap network's cluster structure - every module pair in the
	// same "row" of the level structure is adjacent. For (2,2,2), the
	// blocks form GHC(2,4): each module has 2*(4-1) = 6 neighbors.
	spec := bitutil.MustGroupSpec(2, 2, 2)
	sb := isn.Transform(spec)
	p := RowPartition(sb)
	mg := p.ModuleGraph()
	if mg.NumNodes() != 16 {
		t.Fatalf("modules = %d", mg.NumNodes())
	}
	// Total quotient edges = total cut links.
	if mg.NumEdges() != p.Stats().TotalCutLinks {
		t.Errorf("quotient edges %d != cut %d", mg.NumEdges(), p.Stats().TotalCutLinks)
	}
	if got := p.MaxNeighborModules(); got != 6 {
		t.Errorf("max neighbor modules = %d, want 6 (GHC(2,4) degree)", got)
	}
}

func TestSchemeTradesNeighborsForBandwidth(t *testing.T) {
	// The two partitions make opposite trades. The naive one touches few
	// distinct neighbor modules (one per crossed dimension: n - m) but
	// cuts a link per node per crossed dimension; the scheme's modules
	// sit in complete cluster graphs (more neighbors) yet cut far fewer
	// total links - and pins are priced by links, not neighbors.
	bf := butterfly.New(6)
	naive := NaiveRowPartition(bf, 4)
	spec := bitutil.MustGroupSpec(2, 2, 2)
	scheme := RowPartition(isn.Transform(spec))
	if got := naive.MaxNeighborModules(); got != 4 { // dims 2..5 crossed
		t.Errorf("naive neighbors = %d, want 4", got)
	}
	if got := scheme.MaxNeighborModules(); got != 6 { // GHC(2,4) degree
		t.Errorf("scheme neighbors = %d, want 6", got)
	}
	if scheme.Stats().TotalCutLinks >= naive.Stats().TotalCutLinks {
		t.Errorf("scheme cut %d not below naive %d",
			scheme.Stats().TotalCutLinks, naive.Stats().TotalCutLinks)
	}
}

func TestVariantGapRemark(t *testing.T) {
	// Section 2.3: the two variants' averages differ by less than
	// 1/(2^k1 - 1) of the average.
	for _, c := range []struct{ l, k1, n int }{{3, 3, 9}, {2, 2, 4}, {4, 3, 12}} {
		gap, frac := VariantGap(c.l, c.k1, c.n)
		if gap <= 0 {
			t.Errorf("l=%d k1=%d: variant (b) not above variant (a): gap %v", c.l, c.k1, gap)
		}
		bound := 1.0 / float64(int(1)<<uint(c.k1)-1)
		if frac >= bound {
			t.Errorf("l=%d k1=%d: gap fraction %v not below 1/(2^k1-1) = %v", c.l, c.k1, frac, bound)
		}
		// And the gap equals avg_b / 2^k1 exactly.
		avgB := 4 * float64(c.l-1) / float64(c.n+1)
		if math.Abs(gap-avgB/float64(int(1)<<uint(c.k1))) > 1e-12 {
			t.Errorf("gap %v != avg_b/2^k1", gap)
		}
	}
}

func TestHierarchicalPartitions(t *testing.T) {
	for _, widths := range [][]int{{2, 2, 2}, {3, 3, 3}, {2, 2, 2, 2}, {3, 2, 2, 1}} {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		parts := HierarchicalPartitions(sb)
		if len(parts) != spec.Levels()-1 {
			t.Fatalf("%v: %d levels, want %d", spec, len(parts), spec.Levels()-1)
		}
		prevCut := 1 << 30
		for j, p := range parts {
			st := p.Stats()
			want := HierarchicalCutFormula(widths, j+1)
			if st.TotalCutLinks != want {
				t.Errorf("%v level %d: cut %d, formula %d", spec, j+1, st.TotalCutLinks, want)
			}
			// Coarser levels cut strictly fewer links.
			if st.TotalCutLinks >= prevCut {
				t.Errorf("%v level %d: cut %d did not shrink (prev %d)", spec, j+1, st.TotalCutLinks, prevCut)
			}
			prevCut = st.TotalCutLinks
		}
		// Level 1 equals the row partition.
		if parts[0].Stats() != RowPartition(sb).Stats() {
			t.Errorf("%v: level-1 partition differs from RowPartition", spec)
		}
	}
}
