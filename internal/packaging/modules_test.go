package packaging

import (
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/isn"
)

// bruteCutCounts recounts, straight off the graph, the total number of
// cut links and the per-module boundary link counts of a partition.
func bruteCutCounts(p *Partition) (total int, per map[int]int) {
	per = make(map[int]int)
	for _, e := range p.G.Edges() {
		if e.U == e.V {
			continue
		}
		mu, mv := p.ModuleOf[e.U], p.ModuleOf[e.V]
		if mu != mv {
			total++
			per[mu]++
			per[mv]++
		}
	}
	return total, per
}

// Invariant sweep over a grid of (n, k1) shapes: every node is assigned
// exactly one module, and the reported off-module link counts match a
// brute-force recount over the graph - for the row partition, the nucleus
// partition, and the naive baseline (including non-dividing module sizes).
func TestPartitionInvariantsGrid(t *testing.T) {
	var parts []*Partition
	for _, widths := range [][]int{
		{1, 1}, {2, 1}, {1, 1, 1}, {2, 2}, {2, 2, 1}, {2, 2, 2}, {3, 3}, {3, 2, 2},
	} {
		sb := isn.Transform(bitutil.MustGroupSpec(widths...))
		parts = append(parts, RowPartition(sb), NucleusPartition(sb))
	}
	for n := 3; n <= 6; n++ {
		for _, rowsPer := range []int{1, 2, 3, 4} {
			parts = append(parts, NaiveRowPartition(butterfly.New(n), rowsPer))
		}
	}
	for _, p := range parts {
		if err := p.ValidateAssignment(); err != nil {
			t.Errorf("%s: %v", p.Desc, err)
			continue
		}
		st := p.Stats()
		total, per := bruteCutCounts(p)
		if st.TotalCutLinks != total {
			t.Errorf("%s: Stats cut links %d, brute force %d", p.Desc, st.TotalCutLinks, total)
		}
		maxOff := 0
		for _, m := range p.Modules() {
			_, boundary := p.ModuleLinks(m)
			if len(boundary) != per[m] {
				t.Errorf("%s: module %d boundary links %d, brute force %d",
					p.Desc, m, len(boundary), per[m])
			}
			if len(boundary) > maxOff {
				maxOff = len(boundary)
			}
		}
		if st.MaxOffLinksPerModu != maxOff {
			t.Errorf("%s: Stats max off links %d, brute force %d", p.Desc, st.MaxOffLinksPerModu, maxOff)
		}
	}
}

// ModuleNodes must partition the node set: every node in exactly one
// module's list, and internal+boundary links cover each module's edges.
func TestModuleNodesPartitionNodeSet(t *testing.T) {
	sb := isn.Transform(bitutil.MustGroupSpec(2, 2))
	p := NucleusPartition(sb)
	owned := make([]int, p.G.NumNodes())
	for i := range owned {
		owned[i] = -1
	}
	for _, m := range p.Modules() {
		for _, id := range p.ModuleNodes(m) {
			if owned[id] != -1 {
				t.Fatalf("node %d owned by modules %d and %d", id, owned[id], m)
			}
			owned[id] = m
		}
	}
	for id, m := range owned {
		if m != p.ModuleOf[id] {
			t.Errorf("node %d: ModuleNodes says %d, ModuleOf says %d", id, m, p.ModuleOf[id])
		}
	}
	// Internal link endpoints are both in the module; boundary exactly one.
	for _, m := range p.Modules() {
		internal, boundary := p.ModuleLinks(m)
		for _, e := range internal {
			if p.ModuleOf[e.U] != m || p.ModuleOf[e.V] != m {
				t.Errorf("module %d internal link %v leaves the module", m, e)
			}
		}
		for _, e := range boundary {
			if (p.ModuleOf[e.U] == m) == (p.ModuleOf[e.V] == m) {
				t.Errorf("module %d boundary link %v is not a boundary link", m, e)
			}
		}
	}
}

// RoutingModuleOf projects onto the wrapped butterfly: right shape, and
// per-column module multisets preserved under the automorphism labels.
func TestRoutingModuleOfProjection(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2)
	sb := isn.Transform(spec)
	n := sb.ButterflyDim()
	for _, p := range []*Partition{RowPartition(sb), NucleusPartition(sb)} {
		wrapped, err := RoutingModuleOf(p, sb)
		if err != nil {
			t.Fatal(err)
		}
		if len(wrapped) != n*sb.Rows {
			t.Fatalf("%s: wrapped length %d, want %d", p.Desc, len(wrapped), n*sb.Rows)
		}
		for s := 0; s < n; s++ {
			want := make(map[int]int)
			got := make(map[int]int)
			for r := 0; r < sb.Rows; r++ {
				want[p.ModuleOf[sb.ID(r, s)]]++
				got[wrapped[s*sb.Rows+r]]++
			}
			for m, c := range want {
				if got[m] != c {
					t.Errorf("%s: column %d module %d count %d, want %d", p.Desc, s, m, got[m], c)
				}
			}
		}
	}
	// Plain-butterfly projection is direct indexing with stage n dropped.
	bf := butterfly.New(n)
	naive := NaiveRowPartition(bf, 4)
	wrapped, err := RoutingModuleOf(naive, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		for r := 0; r < bf.Rows; r++ {
			if wrapped[s*bf.Rows+r] != naive.ModuleOf[bf.ID(r, s)] {
				t.Fatalf("naive projection differs at (row %d, col %d)", r, s)
			}
		}
	}
	// Shape errors are reported, not panicked.
	bad := &Partition{G: bf.G, ModuleOf: make([]int, 7), NumModules: 1}
	if _, err := RoutingModuleOf(bad, sb); err == nil {
		t.Error("mismatched swap-butterfly accepted")
	}
	bad2 := &Partition{G: bf.G, ModuleOf: make([]int, 7), NumModules: 1}
	if _, err := RoutingModuleOf(bad2, nil); err == nil {
		t.Error("non-butterfly node count accepted")
	}
}
