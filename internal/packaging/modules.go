package packaging

import (
	"fmt"
	"sort"

	"bfvlsi/internal/graph"
	"bfvlsi/internal/isn"
)

// Module-as-failure-domain helpers. A packaging module (chip, board) is
// also the unit that fails in a real machine: when it dies, all of its
// nodes and all of its boundary links die together. These helpers expose
// a partition's module contents and project partitions onto the wrapped
// butterfly used by internal/routing, so internal/faults can turn a
// Partition into module-correlated fault plans.

// ModuleNodes returns the ids of the nodes assigned to module m, in
// increasing order. The result is empty for an unused module id.
func (p *Partition) ModuleNodes(m int) []int {
	var out []int
	for id, mod := range p.ModuleOf {
		if mod == m {
			out = append(out, id)
		}
	}
	return out
}

// ModuleLinks returns the links of module m split into internal links
// (both endpoints inside m) and boundary links (exactly one endpoint
// inside m) - the failure-domain view: when module m dies, both lists die
// with it, and len(boundary) is the off-module link count Stats reports
// per module. Self-loops count as internal. Edges are in the canonical
// sorted order of graph.Edges.
func (p *Partition) ModuleLinks(m int) (internal, boundary []graph.Edge) {
	for _, e := range p.G.Edges() {
		inU := p.ModuleOf[e.U] == m
		inV := p.ModuleOf[e.V] == m
		switch {
		case inU && inV:
			internal = append(internal, e)
		case inU || inV:
			boundary = append(boundary, e)
		}
	}
	return internal, boundary
}

// RoutingModuleOf projects the partition onto the n-column wrapped
// butterfly simulated by internal/routing (node id = col*2^n + row,
// col < n): wrapped column c inherits the module of stage c, and stage n
// - identified with stage 0 by the wrap - is dropped.
//
// For partitions of a swap-butterfly (RowPartition, NucleusPartition)
// pass the swap-butterfly: its automorphism row labels translate each
// (row, stage) to the butterfly coordinates the simulator routes on. For
// partitions of a plain butterfly (NaiveRowPartition) pass nil; node ids
// already follow the butterfly convention.
func RoutingModuleOf(p *Partition, sb *isn.SwapButterfly) ([]int, error) {
	var rows, stages int
	if sb != nil {
		rows, stages = sb.Rows, sb.Stages
		if len(p.ModuleOf) != rows*stages {
			return nil, fmt.Errorf("packaging: partition has %d nodes, swap-butterfly %v has %d",
				len(p.ModuleOf), sb.Spec, rows*stages)
		}
	} else {
		var err error
		rows, stages, err = butterflyShape(len(p.ModuleOf))
		if err != nil {
			return nil, err
		}
	}
	n := stages - 1
	wrapped := make([]int, n*rows)
	for s := 0; s < n; s++ {
		for r := 0; r < rows; r++ {
			if sb != nil {
				wrapped[s*rows+sb.RowLabel[sb.ID(r, s)]] = p.ModuleOf[sb.ID(r, s)]
			} else {
				wrapped[s*rows+r] = p.ModuleOf[s*rows+r]
			}
		}
	}
	return wrapped, nil
}

// butterflyShape solves nodes = (n+1) * 2^n for the unique butterfly
// dimension n, returning (rows, stages).
func butterflyShape(nodes int) (rows, stages int, err error) {
	for n := 1; n <= 24; n++ {
		if (n+1)<<uint(n) == nodes {
			return 1 << uint(n), n + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("packaging: %d nodes is not a butterfly (n+1)*2^n shape", nodes)
}

// ValidateAssignment checks the structural invariants of a partition:
// every node carries exactly one module id in [0, NumModules), and every
// module id owns at least one node.
func (p *Partition) ValidateAssignment() error {
	if len(p.ModuleOf) != p.G.NumNodes() {
		return fmt.Errorf("packaging: %d assignments for %d nodes", len(p.ModuleOf), p.G.NumNodes())
	}
	seen := make([]bool, p.NumModules)
	for id, m := range p.ModuleOf {
		if m < 0 || m >= p.NumModules {
			return fmt.Errorf("packaging: node %d assigned to module %d outside [0,%d)", id, m, p.NumModules)
		}
		seen[m] = true
	}
	for m, ok := range seen {
		if !ok {
			return fmt.Errorf("packaging: module %d owns no nodes", m)
		}
	}
	return nil
}

// Modules returns the list of module ids that own at least one node, in
// increasing order. For a valid partition it is exactly 0..NumModules-1.
func (p *Partition) Modules() []int {
	set := make(map[int]bool)
	for _, m := range p.ModuleOf {
		set[m] = true
	}
	out := make([]int, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}
