// Package packaging implements the butterfly partitioning and packaging
// scheme of Section 2.3 of the paper, its naive baseline, and the
// injection-rate lower bound that makes the scheme asymptotically optimal
// (Theorem 2.1).
//
// The scheme partitions a swap-butterfly (package isn) so that straight
// and cross links stay inside modules and only (doubled) swap links cross
// module boundaries:
//
//   - RowPartition (variant a): every 2^k1 consecutive rows, all stages,
//     form one module; average off-module links per node is
//     4(l-1)(2^k1 - 1) / ((n+1) 2^k1).
//   - NucleusPartition (variant b): modules are (row block, stage
//     segment) pairs, one nucleus butterfly per module; at most 2^{k1+2}
//     off-module links per module.
//
// The baseline places consecutive rows of a plain butterfly into equal
// modules and pays ~2 off-module links per node, a Theta(log N) penalty.
package packaging

import (
	"fmt"
	"math"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/isn"
)

// Partition assigns every node of a network to a module.
type Partition struct {
	Desc       string
	G          *graph.Graph
	ModuleOf   []int
	NumModules int
}

// Stats summarizes a partition's packaging quality.
type Stats struct {
	NumModules         int
	MinNodesPerModule  int
	MaxNodesPerModule  int
	MaxOffLinksPerModu int
	TotalCutLinks      int
	// AvgOffLinksPerNode is the average, over nodes, of the number of
	// incident links that leave the node's module (each cut link
	// contributes to both of its endpoints).
	AvgOffLinksPerNode float64
}

// Stats measures the partition.
func (p *Partition) Stats() Stats {
	nodes := make(map[int]int)
	for _, m := range p.ModuleOf {
		nodes[m]++
	}
	cut, per := p.G.CutEdges(p.ModuleOf)
	st := Stats{NumModules: p.NumModules, TotalCutLinks: cut}
	st.MinNodesPerModule = 1 << 30
	for m := 0; m < p.NumModules; m++ {
		c := nodes[m]
		if c < st.MinNodesPerModule {
			st.MinNodesPerModule = c
		}
		if c > st.MaxNodesPerModule {
			st.MaxNodesPerModule = c
		}
		if per[m] > st.MaxOffLinksPerModu {
			st.MaxOffLinksPerModu = per[m]
		}
	}
	st.AvgOffLinksPerNode = 2 * float64(cut) / float64(p.G.NumNodes())
	return st
}

// RowPartition builds variant (a): module m holds rows
// [m*2^k1, (m+1)*2^k1), all stages.
func RowPartition(sb *isn.SwapButterfly) *Partition {
	k1 := sb.Spec.GroupWidth(1)
	rowsPer := 1 << uint(k1)
	numModules := sb.Rows / rowsPer
	moduleOf := make([]int, sb.Rows*sb.Stages)
	for s := 0; s < sb.Stages; s++ {
		for r := 0; r < sb.Rows; r++ {
			moduleOf[sb.ID(r, s)] = r / rowsPer
		}
	}
	return &Partition{
		Desc:       fmt.Sprintf("row partition %v (%d rows/module)", sb.Spec, rowsPer),
		G:          sb.G,
		ModuleOf:   moduleOf,
		NumModules: numModules,
	}
}

// NucleusPartition builds variant (b): stages are cut at the merged
// (swap) boundaries, so each module is one nucleus butterfly block: row
// block x stage segment. Segment i >= 1 spans stages
// (boundary_{i-1}, boundary_i]; segment 0 spans [0, boundary_0].
func NucleusPartition(sb *isn.SwapButterfly) *Partition {
	k1 := sb.Spec.GroupWidth(1)
	rowsPer := 1 << uint(k1)
	rowBlocks := sb.Rows / rowsPer
	bounds := sb.MergedBoundaries()
	segOf := make([]int, sb.Stages)
	seg := 0
	bi := 0
	for s := 0; s < sb.Stages; s++ {
		segOf[s] = seg
		if bi < len(bounds) && s == bounds[bi] {
			seg++
			bi++
		}
	}
	numSegs := seg + 1
	moduleOf := make([]int, sb.Rows*sb.Stages)
	for s := 0; s < sb.Stages; s++ {
		for r := 0; r < sb.Rows; r++ {
			moduleOf[sb.ID(r, s)] = segOf[s]*rowBlocks + r/rowsPer
		}
	}
	return &Partition{
		Desc:       fmt.Sprintf("nucleus partition %v (%d segments x %d row blocks)", sb.Spec, numSegs, rowBlocks),
		G:          sb.G,
		ModuleOf:   moduleOf,
		NumModules: numSegs * rowBlocks,
	}
}

// NaiveRowPartition is the baseline the paper compares against: place
// rowsPerModule consecutive rows of a plain butterfly B_n into each
// module. rowsPerModule need not divide the row count; the last module
// may be smaller.
func NaiveRowPartition(bf *butterfly.Butterfly, rowsPerModule int) *Partition {
	if rowsPerModule < 1 {
		panic("packaging: rowsPerModule must be positive")
	}
	numModules := (bf.Rows + rowsPerModule - 1) / rowsPerModule
	moduleOf := make([]int, bf.NumNodes())
	for s := 0; s < bf.Stages; s++ {
		for r := 0; r < bf.Rows; r++ {
			moduleOf[bf.ID(r, s)] = r / rowsPerModule
		}
	}
	return &Partition{
		Desc:       fmt.Sprintf("naive row partition of B_%d (%d rows/module)", bf.N, rowsPerModule),
		G:          bf.G,
		ModuleOf:   moduleOf,
		NumModules: numModules,
	}
}

// PaperAvgOffLinks returns the Section 2.3 closed form for variant (a)
// on an HSN-derived swap-butterfly: 4(l-1)(2^k1 - 1) / ((n+1) 2^k1).
func PaperAvgOffLinks(l, k1, n int) float64 {
	if l < 1 || k1 < 0 || k1 > 62 {
		return math.NaN()
	}
	return 4 * float64(l-1) * float64(int(1)<<uint(k1)-1) /
		(float64(n+1) * float64(int(1)<<uint(k1)))
}

// GeneralAvgOffLinks is the same quantity for arbitrary group widths:
// each level-i merged step cuts 2R(1 - 2^-k_i) links, and the average per
// node is 2*cut/N.
func GeneralAvgOffLinks(widths []int) float64 {
	n := 0
	for _, k := range widths {
		n += k
	}
	cutPerR := 0.0
	for i := 1; i < len(widths); i++ {
		k := widths[i]
		if k < 0 || k > 62 {
			return math.NaN()
		}
		cutPerR += 2 * (1 - 1/float64(int64(1)<<uint(k)))
	}
	return 2 * cutPerR / float64(n+1)
}

// NaiveAvgOffLinks is the baseline closed form: with modules of 2^m
// consecutive rows of B_n, the average is 2(n-m)/(n+1), approximately 2.
func NaiveAvgOffLinks(n, m int) float64 {
	return 2 * float64(n-m) / float64(n+1)
}

// InjectionLowerBound returns the Omega(M / log R) lower bound on
// off-module links required for an M-node module of an R-row butterfly to
// sustain uniform random routing at the network's saturation injection
// rate (Section 2.3). The constant is normalized to 1.
func InjectionLowerBound(moduleNodes int, rows int) float64 {
	lg := 0
	for lg < 63 && (1<<uint(lg)) < rows {
		lg++
	}
	if lg == 0 {
		return float64(moduleNodes)
	}
	return float64(moduleNodes) / float64(lg)
}

// Theorem21 verifies the Theorem 2.1 guarantees on the nucleus partition
// of the given swap-butterfly: every module has at most 2^k1 (k1+1) nodes
// (the paper states 2^k1 k1, counting shared boundary stages once) and at
// most 2^{k1+2} off-module links.
func Theorem21(sb *isn.SwapButterfly) error {
	p := NucleusPartition(sb)
	st := p.Stats()
	k1 := sb.Spec.GroupWidth(1)
	nucleusRows, ok := bitutil.CheckedShl(1, k1)
	if !ok {
		return fmt.Errorf("packaging: nucleus rows 2^k1 not representable for k1=%d", k1)
	}
	maxNodes, ok := bitutil.CheckedMul(nucleusRows, k1+1)
	if !ok {
		return fmt.Errorf("packaging: node bound 2^k1(k1+1) overflows int for k1=%d", k1)
	}
	maxLinks, ok := bitutil.CheckedShl(1, k1+2)
	if !ok {
		return fmt.Errorf("packaging: link bound 2^(k1+2) overflows int for k1=%d", k1)
	}
	if st.MaxNodesPerModule > maxNodes {
		return fmt.Errorf("packaging: module has %d nodes > 2^k1(k1+1) = %d", st.MaxNodesPerModule, maxNodes)
	}
	if st.MaxOffLinksPerModu > maxLinks {
		return fmt.Errorf("packaging: module has %d off-module links > 2^{k1+2} = %d", st.MaxOffLinksPerModu, maxLinks)
	}
	return nil
}

// ModuleGraph returns the quotient multigraph of the partition: one node
// per module, one edge per cut link. Its structure drives backplane
// design: the maximum module degree (in the simple reduction) is the
// number of distinct neighbor modules a module must reach.
func (p *Partition) ModuleGraph() *graph.Graph {
	return p.G.Contract(p.ModuleOf)
}

// MaxNeighborModules returns the largest number of distinct other
// modules any module is wired to.
func (p *Partition) MaxNeighborModules() int {
	return p.ModuleGraph().Simple().MaxDegree()
}

// VariantGap quantifies the Section 2.3 remark comparing the two
// partitioning variants: the difference between variant (b)'s average
// off-module links per node, 4(l-1)/(n+1), and variant (a)'s,
// 4(l-1)(1 - 2^-k1)/(n+1), is avg_b / 2^k1 - "smaller than
// 1/(2^k1 - 1) of the average". It returns (gap, gapOverAvg).
func VariantGap(l, k1, n int) (gap, fraction float64) {
	avgB := 4 * float64(l-1) / float64(n+1)
	avgA := PaperAvgOffLinks(l, k1, n)
	gap = avgB - avgA
	return gap, gap / avgB
}

// HierarchicalPartitions returns, for an l-level swap-butterfly, the
// partition at every packaging level j = 1..l-1: a level-j module holds
// 2^{k1+...+kj} consecutive rows (all stages), so level-1 modules are
// chips, level-2 boards, level-3 cabinets, and so on - the paper's
// "more than two levels in the packaging hierarchy" (Section 2.3).
// Only swap links of levels above j cross level-j modules.
func HierarchicalPartitions(sb *isn.SwapButterfly) []*Partition {
	l := sb.Spec.Levels()
	out := make([]*Partition, 0, l-1)
	shift := 0
	for j := 1; j < l; j++ {
		shift += sb.Spec.GroupWidth(j)
		if shift > 62 {
			panic(fmt.Sprintf("packaging: cumulative group width %d exceeds 62 for spec %v", shift, sb.Spec))
		}
		rowsPer := 1 << uint(shift)
		moduleOf := make([]int, sb.Rows*sb.Stages)
		for s := 0; s < sb.Stages; s++ {
			for r := 0; r < sb.Rows; r++ {
				moduleOf[sb.ID(r, s)] = r / rowsPer
			}
		}
		out = append(out, &Partition{
			Desc:       fmt.Sprintf("level-%d partition %v (%d rows/module)", j, sb.Spec, rowsPer),
			G:          sb.G,
			ModuleOf:   moduleOf,
			NumModules: sb.Rows / rowsPer,
		})
	}
	return out
}

// HierarchicalCutFormula returns the expected cut link count of the
// level-j partition (1-based): sum over swap levels i > j of
// 2(R - 2^{n-k_i}).
func HierarchicalCutFormula(widths []int, j int) int {
	n := 0
	for _, k := range widths {
		n += k
	}
	if n < 0 || n > 55 {
		panic(fmt.Sprintf("packaging: total width %d outside [0,55]", n))
	}
	rows := 1 << uint(n)
	cut := 0
	for i := j + 1; i <= len(widths); i++ {
		cut += 2 * (rows - rows>>uint(widths[i-1]))
	}
	return cut
}
