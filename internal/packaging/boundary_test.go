package packaging

import (
	"math"
	"testing"
)

func TestAvgOffLinksFormulasRejectOutOfRange(t *testing.T) {
	if v := PaperAvgOffLinks(0, 3, 9); !math.IsNaN(v) {
		t.Errorf("PaperAvgOffLinks(l=0) = %v, want NaN", v)
	}
	if v := PaperAvgOffLinks(2, 63, 9); !math.IsNaN(v) {
		t.Errorf("PaperAvgOffLinks(k1=63) = %v, want NaN", v)
	}
	// k1 = 62 is the last width whose 2^k1 fits in int.
	if v := PaperAvgOffLinks(2, 62, 9); math.IsNaN(v) || v <= 0 {
		t.Errorf("PaperAvgOffLinks(k1=62) = %v, want finite positive", v)
	}
	if v := GeneralAvgOffLinks([]int{3, 63}); !math.IsNaN(v) {
		t.Errorf("GeneralAvgOffLinks(width 63) = %v, want NaN", v)
	}
	if v := GeneralAvgOffLinks([]int{3, 62}); math.IsNaN(v) {
		t.Errorf("GeneralAvgOffLinks(width 62) = %v, want finite", v)
	}
}

func TestHierarchicalCutFormulaWidthBoundary(t *testing.T) {
	// Total width 55 is the largest with 2*(2^n - ...) safely in int.
	if cut := HierarchicalCutFormula([]int{28, 27}, 1); cut <= 0 {
		t.Errorf("HierarchicalCutFormula(n=55) = %d, want positive", cut)
	}
	defer func() {
		if recover() == nil {
			t.Error("HierarchicalCutFormula(n=56) did not panic")
		}
	}()
	HierarchicalCutFormula([]int{28, 28}, 1)
}

func TestInjectionLowerBoundHugeRows(t *testing.T) {
	// rows beyond 2^62 must not spin the log search past a 63-bit shift.
	v := InjectionLowerBound(1024, math.MaxInt64)
	if v <= 0 || math.IsNaN(v) {
		t.Errorf("InjectionLowerBound(1024, MaxInt64) = %v, want positive", v)
	}
}
