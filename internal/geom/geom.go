// Package geom provides the small integer geometry toolkit used by the
// layout packages: points, axis-aligned segments, rectangles, and
// intervals on grid coordinates.
package geom

import "fmt"

// Point is a grid point.
type Point struct {
	X, Y int
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy int) Point { return Point{p.X + dx, p.Y + dy} }

// Interval is a closed integer interval [Lo, Hi], Lo <= Hi.
type Interval struct {
	Lo, Hi int
}

// NewInterval returns the interval covering both a and b.
func NewInterval(a, b int) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// Len returns Hi - Lo.
func (iv Interval) Len() int { return iv.Hi - iv.Lo }

// Contains reports whether x is inside the closed interval.
func (iv Interval) Contains(x int) bool { return iv.Lo <= x && x <= iv.Hi }

// Overlaps reports whether the closed intervals share at least one point.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo <= o.Hi && o.Lo <= iv.Hi }

// OverlapsInterior reports whether the intervals share a segment of
// positive length (endpoint touching does not count).
func (iv Interval) OverlapsInterior(o Interval) bool {
	lo := max(iv.Lo, o.Lo)
	hi := min(iv.Hi, o.Hi)
	return lo < hi
}

// Segment is an axis-aligned closed segment between two grid points.
type Segment struct {
	A, B Point
}

// NewSegment validates axis alignment.
func NewSegment(a, b Point) (Segment, error) {
	if a.X != b.X && a.Y != b.Y {
		return Segment{}, fmt.Errorf("geom: segment %v-%v not axis-aligned", a, b)
	}
	return Segment{a, b}, nil
}

// Horizontal reports whether the segment is horizontal. A zero-length
// segment counts as horizontal.
func (s Segment) Horizontal() bool { return s.A.Y == s.B.Y }

// Vertical reports whether the segment is vertical (and has length > 0 or
// is a point, in which case Horizontal is preferred).
func (s Segment) Vertical() bool { return s.A.X == s.B.X && s.A.Y != s.B.Y }

// Len returns the L1 length of the segment.
func (s Segment) Len() int {
	return abs(s.A.X-s.B.X) + abs(s.A.Y-s.B.Y)
}

// XSpan returns the x interval covered.
func (s Segment) XSpan() Interval { return NewInterval(s.A.X, s.B.X) }

// YSpan returns the y interval covered.
func (s Segment) YSpan() Interval { return NewInterval(s.A.Y, s.B.Y) }

// Translate returns the segment moved by (dx, dy).
func (s Segment) Translate(dx, dy int) Segment {
	return Segment{s.A.Add(dx, dy), s.B.Add(dx, dy)}
}

func (s Segment) String() string { return fmt.Sprintf("%v-%v", s.A, s.B) }

// Rect is an axis-aligned rectangle with inclusive corner coordinates
// [X0,X1] x [Y0,Y1].
type Rect struct {
	X0, Y0, X1, Y1 int
}

// NewRect normalizes corner order.
func NewRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Width returns X1 - X0 + 1 (grid cells spanned horizontally).
func (r Rect) Width() int { return r.X1 - r.X0 + 1 }

// Height returns Y1 - Y0 + 1.
func (r Rect) Height() int { return r.Y1 - r.Y0 + 1 }

// Area returns Width * Height.
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// Contains reports whether p lies in the closed rectangle.
func (r Rect) Contains(p Point) bool {
	return r.X0 <= p.X && p.X <= r.X1 && r.Y0 <= p.Y && p.Y <= r.Y1
}

// ContainsInterior reports whether p lies strictly inside.
func (r Rect) ContainsInterior(p Point) bool {
	return r.X0 < p.X && p.X < r.X1 && r.Y0 < p.Y && p.Y < r.Y1
}

// Intersects reports whether the closed rectangles share a point.
func (r Rect) Intersects(o Rect) bool {
	return r.X0 <= o.X1 && o.X0 <= r.X1 && r.Y0 <= o.Y1 && o.Y0 <= r.Y1
}

// IntersectsInterior reports whether the rectangles share interior area.
func (r Rect) IntersectsInterior(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// Union returns the smallest rectangle containing both.
func (r Rect) Union(o Rect) Rect {
	return Rect{min(r.X0, o.X0), min(r.Y0, o.Y0), max(r.X1, o.X1), max(r.Y1, o.Y1)}
}

// Translate returns the rectangle moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// SegmentIntersectsRectInterior reports whether any point of s lies
// strictly inside r.
func SegmentIntersectsRectInterior(s Segment, r Rect) bool {
	if s.Horizontal() {
		return s.A.Y > r.Y0 && s.A.Y < r.Y1 && s.XSpan().Overlaps(Interval{r.X0 + 1, r.X1 - 1}) && r.X1-r.X0 >= 2
	}
	return s.A.X > r.X0 && s.A.X < r.X1 && s.YSpan().Overlaps(Interval{r.Y0 + 1, r.Y1 - 1}) && r.Y1-r.Y0 >= 2
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.X0, r.X1, r.Y0, r.Y1)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
