package geom

import (
	"testing"
	"testing/quick"
)

func TestInterval(t *testing.T) {
	iv := NewInterval(7, 3)
	if iv.Lo != 3 || iv.Hi != 7 {
		t.Fatalf("NewInterval did not normalize: %+v", iv)
	}
	if iv.Len() != 4 {
		t.Errorf("Len = %d", iv.Len())
	}
	if !iv.Contains(3) || !iv.Contains(7) || iv.Contains(8) {
		t.Error("Contains wrong")
	}
	if !iv.Overlaps(Interval{7, 9}) || iv.Overlaps(Interval{8, 9}) {
		t.Error("Overlaps wrong")
	}
	if iv.OverlapsInterior(Interval{7, 9}) {
		t.Error("endpoint touch counted as interior overlap")
	}
	if !iv.OverlapsInterior(Interval{6, 9}) {
		t.Error("interior overlap missed")
	}
}

func TestSegment(t *testing.T) {
	if _, err := NewSegment(Point{0, 0}, Point{1, 1}); err == nil {
		t.Error("diagonal segment accepted")
	}
	s, err := NewSegment(Point{2, 3}, Point{9, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Horizontal() || s.Vertical() {
		t.Error("orientation wrong")
	}
	if s.Len() != 7 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.XSpan() != (Interval{2, 9}) || s.YSpan() != (Interval{3, 3}) {
		t.Error("spans wrong")
	}
	v, _ := NewSegment(Point{1, 1}, Point{1, 5})
	if !v.Vertical() || v.Horizontal() {
		t.Error("vertical orientation wrong")
	}
	tr := s.Translate(1, -1)
	if tr.A != (Point{3, 2}) || tr.B != (Point{10, 2}) {
		t.Errorf("Translate = %v", tr)
	}
}

func TestZeroLengthSegmentIsHorizontal(t *testing.T) {
	s, _ := NewSegment(Point{4, 4}, Point{4, 4})
	if !s.Horizontal() || s.Vertical() || s.Len() != 0 {
		t.Error("degenerate segment misclassified")
	}
}

func TestRect(t *testing.T) {
	r := NewRect(5, 8, 1, 2)
	if r != (Rect{1, 2, 5, 8}) {
		t.Fatalf("normalize failed: %+v", r)
	}
	if r.Width() != 5 || r.Height() != 7 || r.Area() != 35 {
		t.Errorf("dims: %d %d %d", r.Width(), r.Height(), r.Area())
	}
	if !r.Contains(Point{1, 2}) || !r.Contains(Point{5, 8}) || r.Contains(Point{6, 2}) {
		t.Error("Contains wrong")
	}
	if r.ContainsInterior(Point{1, 3}) || !r.ContainsInterior(Point{2, 3}) {
		t.Error("ContainsInterior wrong")
	}
	if !r.Intersects(Rect{5, 8, 9, 9}) || r.Intersects(Rect{6, 0, 9, 9}) {
		t.Error("Intersects wrong")
	}
	if r.IntersectsInterior(Rect{5, 8, 9, 9}) {
		t.Error("touching rects reported as interior intersection")
	}
	u := r.Union(Rect{10, 10, 12, 12})
	if u != (Rect{1, 2, 12, 12}) {
		t.Errorf("Union = %v", u)
	}
}

func TestSegmentIntersectsRectInterior(t *testing.T) {
	r := NewRect(2, 2, 8, 8)
	h, _ := NewSegment(Point{0, 5}, Point{10, 5})
	if !SegmentIntersectsRectInterior(h, r) {
		t.Error("through-segment missed")
	}
	edge, _ := NewSegment(Point{0, 2}, Point{10, 2})
	if SegmentIntersectsRectInterior(edge, r) {
		t.Error("boundary segment flagged")
	}
	v, _ := NewSegment(Point{5, 0}, Point{5, 10})
	if !SegmentIntersectsRectInterior(v, r) {
		t.Error("vertical through-segment missed")
	}
	vEdge, _ := NewSegment(Point{8, 0}, Point{8, 10})
	if SegmentIntersectsRectInterior(vEdge, r) {
		t.Error("vertical boundary segment flagged")
	}
	outside, _ := NewSegment(Point{0, 9}, Point{10, 9})
	if SegmentIntersectsRectInterior(outside, r) {
		t.Error("outside segment flagged")
	}
	// Degenerate rect (a line) has no interior.
	thin := NewRect(2, 2, 2, 8)
	if SegmentIntersectsRectInterior(h, thin) {
		t.Error("thin rect has no interior")
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	f := func(a, b [4]int8) bool {
		r1 := NewRect(int(a[0]), int(a[1]), int(a[2]), int(a[3]))
		r2 := NewRect(int(b[0]), int(b[1]), int(b[2]), int(b[3]))
		return r1.Union(r2) == r2.Union(r1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOverlapSymmetryProperty(t *testing.T) {
	f := func(a, b [2]int8) bool {
		i1 := NewInterval(int(a[0]), int(a[1]))
		i2 := NewInterval(int(b[0]), int(b[1]))
		return i1.Overlaps(i2) == i2.Overlaps(i1) &&
			i1.OverlapsInterior(i2) == i2.OverlapsInterior(i1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
