package isn

import (
	"strings"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
)

func TestStepStrings(t *testing.T) {
	steps := Schedule(bitutil.MustGroupSpec(1, 1))
	if got := steps[0].String(); !strings.Contains(got, "cross(bit=0,dim=0)") {
		t.Errorf("cross step string = %q", got)
	}
	if got := steps[1].String(); !strings.Contains(got, "swap(level=2)") {
		t.Errorf("swap step string = %q", got)
	}
	eff := EffectiveSchedule(bitutil.MustGroupSpec(1, 1))
	if got := eff[1].String(); !strings.Contains(got, "merged(level=2") {
		t.Errorf("merged step string = %q", got)
	}
	if got := eff[0].String(); !strings.Contains(got, "plain(bit=0") {
		t.Errorf("plain step string = %q", got)
	}
}

func TestIDPanics(t *testing.T) {
	in := New(bitutil.MustGroupSpec(1, 1))
	sb := Transform(bitutil.MustGroupSpec(1, 1))
	cases := []func(){
		func() { in.ID(-1, 0) },
		func() { in.ID(0, in.Stages) },
		func() { in.RowStage(-1) },
		func() { in.RowStage(in.NumNodes()) },
		func() { sb.ID(4, 0) },
		func() { sb.ID(0, 3) },
		func() { sb.RowStage(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestVerifyCatchesCorruptISN(t *testing.T) {
	in := New(bitutil.MustGroupSpec(2, 1))
	// Rebuild with one cross edge pointing at the wrong row.
	g := graph.New(in.NumNodes())
	corrupted := false
	for _, e := range in.G.Edges() {
		if !corrupted && e.Kind == graph.KindCross {
			r, s := in.RowStage(e.V)
			e.V = in.ID(r^(in.Rows-1), s)
			corrupted = true
		}
		g.AddEdge(e.U, e.V, e.Kind)
	}
	bad := &ISN{Spec: in.Spec, Steps: in.Steps, Rows: in.Rows, Stages: in.Stages, G: g}
	if err := bad.Verify(); err == nil {
		t.Error("corrupted ISN passed Verify")
	}
}

func TestVerifyCatchesWrongStepCount(t *testing.T) {
	in := New(bitutil.MustGroupSpec(2, 1))
	bad := &ISN{Spec: in.Spec, Steps: in.Steps[:len(in.Steps)-1], Rows: in.Rows, Stages: in.Stages, G: in.G}
	if err := bad.Verify(); err == nil {
		t.Error("truncated schedule passed Verify")
	}
}

func TestVerifyAutomorphismCatchesBadLabels(t *testing.T) {
	sb := Transform(bitutil.MustGroupSpec(1, 1))
	sb.RowLabel[sb.ID(0, 2)] = sb.RowLabel[sb.ID(1, 2)] // duplicate label
	if err := sb.VerifyAutomorphism(); err == nil {
		t.Error("non-permutation labels accepted")
	}
}

func TestTransformPanicsOnHugeSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Transform did not panic")
		}
	}()
	Transform(bitutil.MustGroupSpec(20, 12))
}

func TestNewPanicsOnHugeSpec(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized New did not panic")
		}
	}()
	New(bitutil.MustGroupSpec(20, 12))
}
