// Package isn builds indirect swap networks (ISNs) and the swap-butterfly
// transformation of Section 2.2 of the paper, which turns an ISN into an
// automorphism of a butterfly network.
//
// An ISN is the flow graph of the FFT (ascend) algorithm on a swap network
// SN(l, Q_k1) with group spec (k_1, ..., k_l) (Appendix A.2). It has
// R = 2^{n_l} rows and m+1 stages, where m = n_l + l - 1 steps:
//
//	k_1 cross steps resolving bits 0..k_1-1, then, for each level
//	i = 2..l: one swap step (exchange the rightmost k_i bits with group
//	i) followed by k_i cross steps resolving bits 0..k_i-1 of the
//	swapped address.
//
// In a cross step every node has a straight link and a cross link to the
// next stage; in a swap step every node has a single swap link (data is
// forwarded, not exchanged).
package isn

import (
	"fmt"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
)

// StepKind distinguishes the two kinds of inter-stage steps in an ISN.
type StepKind uint8

const (
	// CrossStep is an exchange step: straight + cross links flipping Bit.
	CrossStep StepKind = iota
	// SwapStep is a forwarding step over level-Level swap links.
	SwapStep
)

// Step describes the connection pattern between two consecutive stages.
type Step struct {
	Kind StepKind
	// Bit is the address bit flipped by the cross links (cross steps).
	Bit int
	// Level is the swap level in [2, l] (swap steps).
	Level int
	// Dim is the butterfly dimension this step resolves (0-based, strictly
	// increasing across cross steps); -1 for swap steps.
	Dim int
}

func (s Step) String() string {
	if s.Kind == SwapStep {
		return fmt.Sprintf("swap(level=%d)", s.Level)
	}
	return fmt.Sprintf("cross(bit=%d,dim=%d)", s.Bit, s.Dim)
}

// Schedule returns the step sequence of the ISN derived from the swap
// network with the given spec, per the bottom-up FFT algorithm of
// Appendix A.2. The number of steps is n_l + l - 1.
func Schedule(spec bitutil.GroupSpec) []Step {
	var steps []Step
	dim := 0
	for b := 0; b < spec.GroupWidth(1); b++ {
		steps = append(steps, Step{Kind: CrossStep, Bit: b, Dim: dim})
		dim++
	}
	for lvl := 2; lvl <= spec.Levels(); lvl++ {
		steps = append(steps, Step{Kind: SwapStep, Level: lvl, Dim: -1})
		for b := 0; b < spec.GroupWidth(lvl); b++ {
			steps = append(steps, Step{Kind: CrossStep, Bit: b, Dim: dim})
			dim++
		}
	}
	return steps
}

// ISN is a materialized indirect swap network.
type ISN struct {
	Spec   bitutil.GroupSpec
	Steps  []Step
	Rows   int // R = 2^{n_l}
	Stages int // len(Steps) + 1
	G      *graph.Graph
}

// New constructs the ISN for the given group spec. Node (row, stage) has
// ID stage*Rows + row.
func New(spec bitutil.GroupSpec) *ISN {
	if spec.Size() > 1<<22 {
		panic(fmt.Sprintf("isn: %v too large to materialize", spec))
	}
	steps := Schedule(spec)
	rows := int(spec.Size())
	in := &ISN{
		Spec:   spec,
		Steps:  steps,
		Rows:   rows,
		Stages: len(steps) + 1,
	}
	in.G = graph.New(rows * in.Stages)
	for j, st := range steps {
		switch st.Kind {
		case CrossStep:
			bit := 1 << uint(st.Bit)
			for r := 0; r < rows; r++ {
				in.G.AddEdge(in.ID(r, j), in.ID(r, j+1), graph.KindStraight)
				in.G.AddEdge(in.ID(r, j), in.ID(r^bit, j+1), graph.KindCross)
			}
		case SwapStep:
			for r := 0; r < rows; r++ {
				v := int(spec.SwapNeighbor(uint64(r), st.Level))
				in.G.AddEdge(in.ID(r, j), in.ID(v, j+1), graph.KindSwap)
			}
		}
	}
	return in
}

// NumNodes returns Rows * Stages.
func (in *ISN) NumNodes() int { return in.Rows * in.Stages }

// ID maps (row, stage) to the node ID.
func (in *ISN) ID(row, stage int) int {
	if row < 0 || row >= in.Rows || stage < 0 || stage >= in.Stages {
		panic(fmt.Sprintf("isn: (row=%d, stage=%d) out of range", row, stage))
	}
	return stage*in.Rows + row
}

// RowStage is the inverse of ID.
func (in *ISN) RowStage(id int) (row, stage int) {
	if id < 0 || id >= in.NumNodes() {
		panic(fmt.Sprintf("isn: id %d out of range", id))
	}
	return id % in.Rows, id / in.Rows
}

// Verify checks stage counts and per-step link structure against the ISN
// definition.
func (in *ISN) Verify() error {
	if err := in.G.HandshakeOK(); err != nil {
		return err
	}
	wantSteps := in.Spec.TotalBits() + in.Spec.Levels() - 1
	if len(in.Steps) != wantSteps {
		return fmt.Errorf("isn: %d steps, want n_l + l - 1 = %d", len(in.Steps), wantSteps)
	}
	for j, st := range in.Steps {
		for r := 0; r < in.Rows; r++ {
			id := in.ID(r, j)
			var fwd []graph.HalfEdge
			for _, he := range in.G.Neighbors(id) {
				if _, s := in.RowStage(he.To); s == j+1 {
					fwd = append(fwd, he)
				} else if he.To == id {
					// a swap fixed point: self-loops cannot occur since
					// stages differ; defensive only
					return fmt.Errorf("isn: self loop at (%d,%d)", r, j)
				}
			}
			switch st.Kind {
			case CrossStep:
				if len(fwd) != 2 {
					return fmt.Errorf("isn: (%d,%d) has %d forward links in cross step", r, j, len(fwd))
				}
				straight, cross := false, false
				for _, he := range fwd {
					nr, _ := in.RowStage(he.To)
					switch {
					case nr == r && he.Kind == graph.KindStraight:
						straight = true
					case nr == r^(1<<uint(st.Bit)) && he.Kind == graph.KindCross:
						cross = true
					default:
						return fmt.Errorf("isn: bad cross-step link (%d,%d)->(%d,%d)", r, j, nr, j+1)
					}
				}
				if !straight || !cross {
					return fmt.Errorf("isn: (%d,%d) missing straight or cross link", r, j)
				}
			case SwapStep:
				if len(fwd) != 1 {
					return fmt.Errorf("isn: (%d,%d) has %d forward links in swap step", r, j, len(fwd))
				}
				nr, _ := in.RowStage(fwd[0].To)
				if uint64(nr) != in.Spec.SwapNeighbor(uint64(r), st.Level) || fwd[0].Kind != graph.KindSwap {
					return fmt.Errorf("isn: bad swap-step link (%d,%d)->(%d,%d)", r, j, nr, j+1)
				}
			}
		}
	}
	return nil
}

// StagePermutation returns, for each stage boundary crossed so far, the
// cumulative permutation applied to row indices by the swap steps up to
// (and excluding) stage s: perm[s][u] is the current row holding the data
// that started step 0 in row u... (identity across cross steps).
// It is used by the FFT dataflow engine.
func (in *ISN) StagePermutation() [][]int {
	perms := make([][]int, in.Stages)
	cur := make([]int, in.Rows)
	for i := range cur {
		cur[i] = i
	}
	cp := func() []int {
		out := make([]int, len(cur))
		copy(out, cur)
		return out
	}
	perms[0] = cp()
	for j, st := range in.Steps {
		if st.Kind == SwapStep {
			next := make([]int, in.Rows)
			for u := 0; u < in.Rows; u++ {
				next[u] = int(in.Spec.SwapNeighbor(uint64(cur[u]), st.Level))
			}
			cur = next
		}
		perms[j+1] = cp()
	}
	return perms
}
