package isn

import (
	"math/rand"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/graph"
)

func TestEffectiveScheduleShape(t *testing.T) {
	spec := bitutil.MustGroupSpec(3, 2, 2)
	eff := EffectiveSchedule(spec)
	if len(eff) != spec.TotalBits() {
		t.Fatalf("effective steps = %d, want %d", len(eff), spec.TotalBits())
	}
	// Steps 0..2 plain (bits 0..2), step 3 merged level 2 bit 0, step 4
	// plain bit 1, step 5 merged level 3 bit 0, step 6 plain bit 1.
	wantMerged := map[int]int{3: 2, 5: 3}
	for j, st := range eff {
		lvl, merged := wantMerged[j]
		if st.Merged != merged {
			t.Errorf("step %d merged = %v", j, st.Merged)
		}
		if merged && st.Level != lvl {
			t.Errorf("step %d level = %d, want %d", j, st.Level, lvl)
		}
		if st.Dim != j {
			t.Errorf("step %d dim = %d", j, st.Dim)
		}
	}
}

// The headline structural claim of Section 2.2, over a parameter sweep:
// the transformed ISN is an automorphism of B_{n_l}, verified by exact
// relabeled-edge-multiset equality.
func TestTransformIsButterflyAutomorphism(t *testing.T) {
	for _, spec := range testSpecs() {
		sb := Transform(spec)
		if err := sb.VerifyAutomorphism(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

// Figure 1: the 4x4 swap-butterfly. Node (1,2) of the swap-butterfly must
// map to row 2 of the butterfly (stated explicitly in Section 2.2).
func TestFig1RowRelabeling(t *testing.T) {
	sb := Transform(bitutil.MustGroupSpec(1, 1))
	if sb.Rows != 4 || sb.Stages != 3 {
		t.Fatalf("rows=%d stages=%d, want 4 rows x 3 stages", sb.Rows, sb.Stages)
	}
	if got := sb.RowLabel[sb.ID(1, 2)]; got != 2 {
		t.Errorf("row label of (1,2) = %d, want 2 (paper, Sec. 2.2)", got)
	}
	// Stage 0 and 1 labels are identities (no merged step yet).
	for r := 0; r < 4; r++ {
		if sb.RowLabel[sb.ID(r, 0)] != r || sb.RowLabel[sb.ID(r, 1)] != r {
			t.Errorf("early-stage labels not identity at row %d", r)
		}
	}
	if err := sb.VerifyAutomorphism(); err != nil {
		t.Fatal(err)
	}
}

// Figure 2a: the 8x8 swap-butterfly from spec (2,1)... the paper's figure
// uses a 3-dimensional butterfly built with one swap level. Its row-label
// column for stages past the merge must be a non-identity permutation.
func TestFig2SwapButterflies(t *testing.T) {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 1),    // 8x8
		bitutil.MustGroupSpec(1, 1, 1), // 8x8, two merges
		bitutil.MustGroupSpec(2, 2),    // 16x16 (Fig 2b)
		bitutil.MustGroupSpec(2, 1, 1), // 16x16 alternative
	} {
		sb := Transform(spec)
		if err := sb.VerifyAutomorphism(); err != nil {
			t.Errorf("%v: %v", spec, err)
			continue
		}
		// Past the last merged boundary, labels must differ from identity
		// for at least one row (the automorphism is non-trivial).
		last := sb.Stages - 1
		identity := true
		for r := 0; r < sb.Rows; r++ {
			if sb.RowLabel[sb.ID(r, last)] != r {
				identity = false
			}
		}
		if identity {
			t.Errorf("%v: final-stage relabeling is identity; transformation had no effect", spec)
		}
	}
}

func TestSwapLinkCounts(t *testing.T) {
	// Merged steps contribute 2R swap links each; per-row incidence is
	// 4(l-1) (Section 2.3).
	for _, spec := range testSpecs() {
		sb := Transform(spec)
		l := spec.Levels()
		wantLinks := 2 * sb.Rows * (l - 1)
		if got := sb.G.CountEdges(graph.KindSwap); got != wantLinks {
			t.Errorf("%v: swap links = %d, want %d", spec, got, wantLinks)
		}
		if got, want := sb.SwapLinksPerRow(), float64(4*(l-1)); got != want {
			t.Errorf("%v: swap links per row = %v, want %v", spec, got, want)
		}
	}
}

func TestMergedBoundaries(t *testing.T) {
	sb := Transform(bitutil.MustGroupSpec(3, 2, 2))
	got := sb.MergedBoundaries()
	want := []int{3, 5}
	if len(got) != len(want) {
		t.Fatalf("boundaries = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("boundaries = %v, want %v", got, want)
		}
	}
}

func TestTransformEdgeCountMatchesButterfly(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	sb := Transform(spec)
	want := butterfly.New(6)
	if sb.G.NumEdges() != want.G.NumEdges() {
		t.Errorf("edges = %d, want %d", sb.G.NumEdges(), want.G.NumEdges())
	}
	if sb.G.NumNodes() != want.NumNodes() {
		t.Errorf("nodes = %d, want %d", sb.G.NumNodes(), want.NumNodes())
	}
}

// Property: for random valid specs, the transformation always yields a
// butterfly automorphism. This is the repository's core invariant.
func TestTransformRandomSpecsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		l := 1 + rng.Intn(4)
		k1 := 1 + rng.Intn(3)
		widths := []int{k1}
		for i := 1; i < l; i++ {
			widths = append(widths, 1+rng.Intn(k1))
		}
		spec, err := bitutil.NewGroupSpec(widths...)
		if err != nil {
			t.Fatalf("generator produced invalid spec %v: %v", widths, err)
		}
		if spec.TotalBits() > 10 {
			continue
		}
		sb := Transform(spec)
		if err := sb.VerifyAutomorphism(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestSingleLevelTransformIsIdentity(t *testing.T) {
	// With l = 1 there are no swap steps; the swap-butterfly IS B_{k1}
	// under the identity labeling.
	sb := Transform(bitutil.MustGroupSpec(3))
	for id, l := range sb.RowLabel {
		r, _ := sb.RowStage(id)
		if l != r {
			t.Fatalf("identity labeling violated at id %d", id)
		}
	}
	if !butterfly.IsButterfly(sb.G, 3) {
		t.Error("l=1 swap-butterfly is not literally B_3")
	}
}

func BenchmarkTransform333(b *testing.B) {
	spec := bitutil.MustGroupSpec(3, 3, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transform(spec)
	}
}

func BenchmarkVerifyAutomorphism333(b *testing.B) {
	sb := Transform(bitutil.MustGroupSpec(3, 3, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sb.VerifyAutomorphism(); err != nil {
			b.Fatal(err)
		}
	}
}
