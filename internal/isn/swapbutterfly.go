package isn

import (
	"fmt"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/graph"
)

// EffectiveStep is one inter-stage step of a swap-butterfly. A plain step
// is a cross step inherited from the ISN. A merged step is a swap step
// fused with the cross step that followed it: the swap links were doubled,
// the swap stage bypassed, and each doubled link reconnected to one of the
// straight/cross links of the removed stage (Section 2.2).
type EffectiveStep struct {
	// Merged is true when this step absorbs a swap step.
	Merged bool
	// Level is the swap level for merged steps; 0 otherwise.
	Level int
	// Bit is the address bit flipped by the cross part of the step.
	Bit int
	// Dim is the butterfly dimension this step resolves.
	Dim int
}

func (e EffectiveStep) String() string {
	if e.Merged {
		return fmt.Sprintf("merged(level=%d,bit=%d,dim=%d)", e.Level, e.Bit, e.Dim)
	}
	return fmt.Sprintf("plain(bit=%d,dim=%d)", e.Bit, e.Dim)
}

// SwapButterfly is the graph obtained from an ISN by the Section 2.2
// transformation. It is an automorphism (relabeling) of B_{n_l}: same
// rows, n_l + 1 stages. Links contributed by merged steps carry
// graph.KindSwap (they are the doubled swap links of the ISN and become
// the inter-module links of the packaging scheme); links of plain steps
// keep KindStraight / KindCross.
type SwapButterfly struct {
	Spec   bitutil.GroupSpec
	Steps  []EffectiveStep
	Rows   int
	Stages int // n_l + 1
	G      *graph.Graph

	// RowLabel[stage*Rows + row] is the row number of the node in the
	// butterfly network it maps to (per the mapping rules of Section 2.2:
	// stage-0 rows map identically; row-preserving links are straight
	// links and swap-followed-by-straight pairs).
	RowLabel []int
}

// EffectiveSchedule fuses each swap step of the ISN schedule with the
// cross step immediately following it.
func EffectiveSchedule(spec bitutil.GroupSpec) []EffectiveStep {
	raw := Schedule(spec)
	var out []EffectiveStep
	for i := 0; i < len(raw); i++ {
		st := raw[i]
		if st.Kind == SwapStep {
			if i+1 >= len(raw) || raw[i+1].Kind != SwapStep {
				next := raw[i+1]
				out = append(out, EffectiveStep{Merged: true, Level: st.Level, Bit: next.Bit, Dim: next.Dim})
				i++
				continue
			}
			panic("isn: schedule has consecutive swap steps") // impossible: k_i >= 1
		}
		out = append(out, EffectiveStep{Bit: st.Bit, Dim: st.Dim})
	}
	return out
}

// Transform builds the swap-butterfly of the given group spec directly
// from the effective schedule (equivalently: build the ISN, double its
// swap links, bypass the swap stages, and reconnect).
func Transform(spec bitutil.GroupSpec) *SwapButterfly {
	if spec.Size() > 1<<22 {
		panic(fmt.Sprintf("isn: %v too large to materialize", spec))
	}
	steps := EffectiveSchedule(spec)
	rows := int(spec.Size())
	sb := &SwapButterfly{
		Spec:   spec,
		Steps:  steps,
		Rows:   rows,
		Stages: len(steps) + 1,
	}
	if sb.Stages != spec.TotalBits()+1 {
		panic("isn: effective schedule length mismatch")
	}
	sb.G = graph.New(rows * sb.Stages)
	for j, st := range steps {
		bit := 1 << uint(st.Bit)
		for r := 0; r < rows; r++ {
			u := sb.ID(r, j)
			if st.Merged {
				// Doubled swap link endpoints: the bypassed node was
				// swap(r); its straight link went to swap(r), its cross
				// link to swap(r) ^ bit.
				w := int(spec.SwapNeighbor(uint64(r), st.Level))
				sb.G.AddEdge(u, sb.ID(w, j+1), graph.KindSwap)
				sb.G.AddEdge(u, sb.ID(w^bit, j+1), graph.KindSwap)
			} else {
				sb.G.AddEdge(u, sb.ID(r, j+1), graph.KindStraight)
				sb.G.AddEdge(u, sb.ID(r^bit, j+1), graph.KindCross)
			}
		}
	}
	sb.computeRowLabels()
	return sb
}

// ID maps (row, stage) to the node ID.
func (sb *SwapButterfly) ID(row, stage int) int {
	if row < 0 || row >= sb.Rows || stage < 0 || stage >= sb.Stages {
		panic(fmt.Sprintf("isn: swap-butterfly (row=%d, stage=%d) out of range", row, stage))
	}
	return stage*sb.Rows + row
}

// RowStage is the inverse of ID.
func (sb *SwapButterfly) RowStage(id int) (row, stage int) {
	if id < 0 || id >= sb.Rows*sb.Stages {
		panic(fmt.Sprintf("isn: id %d out of range", id))
	}
	return id % sb.Rows, id / sb.Rows
}

// computeRowLabels propagates butterfly row numbers stage by stage along
// row-preserving links: identity at stage 0; across a plain step the
// straight link preserves the row; across a merged step the
// swap-then-straight link (r -> swap(r)) preserves the row.
func (sb *SwapButterfly) computeRowLabels() {
	sb.RowLabel = make([]int, sb.Rows*sb.Stages)
	for r := 0; r < sb.Rows; r++ {
		sb.RowLabel[sb.ID(r, 0)] = r
	}
	for j, st := range sb.Steps {
		for r := 0; r < sb.Rows; r++ {
			label := sb.RowLabel[sb.ID(r, j)]
			if st.Merged {
				w := int(sb.Spec.SwapNeighbor(uint64(r), st.Level))
				sb.RowLabel[sb.ID(w, j+1)] = label
			} else {
				sb.RowLabel[sb.ID(r, j+1)] = label
			}
		}
	}
}

// ButterflyDim returns n_l, the dimension of the butterfly this
// swap-butterfly is an automorphism of.
func (sb *SwapButterfly) ButterflyDim() int { return sb.Spec.TotalBits() }

// AsButterfly relabels the swap-butterfly with its butterfly row numbers
// and returns the resulting graph, whose node IDs follow the
// butterfly.Butterfly convention (stage*Rows + butterflyRow).
func (sb *SwapButterfly) AsButterfly() *graph.Graph {
	perm := make([]int, sb.Rows*sb.Stages)
	for s := 0; s < sb.Stages; s++ {
		for r := 0; r < sb.Rows; r++ {
			id := sb.ID(r, s)
			perm[id] = s*sb.Rows + sb.RowLabel[id]
		}
	}
	return sb.G.Relabel(perm)
}

// VerifyAutomorphism checks, exactly, that the swap-butterfly relabeled by
// its row labels is the butterfly network B_{n_l}: the row labels at every
// stage form a permutation, and the relabeled edge multiset equals B_n's
// (kinds ignored: the doubled swap links become ordinary butterfly links).
func (sb *SwapButterfly) VerifyAutomorphism() error {
	// Row labels must be a permutation at each stage.
	for s := 0; s < sb.Stages; s++ {
		seen := make([]bool, sb.Rows)
		for r := 0; r < sb.Rows; r++ {
			l := sb.RowLabel[sb.ID(r, s)]
			if l < 0 || l >= sb.Rows || seen[l] {
				return fmt.Errorf("isn: stage %d row labels are not a permutation (row %d label %d)", s, r, l)
			}
			seen[l] = true
		}
	}
	n := sb.ButterflyDim()
	want := butterfly.New(n)
	if !graph.SameEdgeMultiset(sb.AsButterfly(), want.G, true) {
		return fmt.Errorf("isn: relabeled swap-butterfly %v is not B_%d", sb.Spec, n)
	}
	return nil
}

// SwapLinksPerRow returns the number of swap-link incidences per row of
// the swap-butterfly: each row touches 4 doubled swap links per merged
// step, so 4(l-1) in total (Section 2.3). Computed from the graph, not
// the formula.
func (sb *SwapButterfly) SwapLinksPerRow() float64 {
	count := 0
	for _, e := range sb.G.Edges() {
		if e.Kind == graph.KindSwap {
			count += 2 // one incidence per endpoint, even within one row
		}
	}
	return float64(count) / float64(sb.Rows)
}

// MergedBoundaries returns the stage indices s such that the step from
// stage s to s+1 is a merged (inter-module) step.
func (sb *SwapButterfly) MergedBoundaries() []int {
	var out []int
	for j, st := range sb.Steps {
		if st.Merged {
			out = append(out, j)
		}
	}
	return out
}
