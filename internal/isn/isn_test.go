package isn

import (
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
)

func TestScheduleShape(t *testing.T) {
	spec := bitutil.MustGroupSpec(3, 2, 2)
	steps := Schedule(spec)
	if len(steps) != spec.TotalBits()+spec.Levels()-1 { // 7 + 2 = 9
		t.Fatalf("steps = %d, want %d", len(steps), spec.TotalBits()+spec.Levels()-1)
	}
	// First k1 steps are cross on bits 0..k1-1.
	for b := 0; b < 3; b++ {
		if steps[b].Kind != CrossStep || steps[b].Bit != b || steps[b].Dim != b {
			t.Errorf("step %d = %v", b, steps[b])
		}
	}
	if steps[3].Kind != SwapStep || steps[3].Level != 2 {
		t.Errorf("step 3 = %v", steps[3])
	}
	if steps[4].Kind != CrossStep || steps[4].Bit != 0 || steps[4].Dim != 3 {
		t.Errorf("step 4 = %v", steps[4])
	}
	if steps[6].Kind != SwapStep || steps[6].Level != 3 {
		t.Errorf("step 6 = %v", steps[6])
	}
	if steps[8].Kind != CrossStep || steps[8].Bit != 1 || steps[8].Dim != 6 {
		t.Errorf("step 8 = %v", steps[8])
	}
}

func TestScheduleDimsAreSequential(t *testing.T) {
	for _, spec := range testSpecs() {
		dim := 0
		for _, st := range Schedule(spec) {
			if st.Kind == CrossStep {
				if st.Dim != dim {
					t.Fatalf("%v: dims not sequential: %v at position %d", spec, st, dim)
				}
				dim++
			} else if st.Dim != -1 {
				t.Fatalf("%v: swap step has dim %d", spec, st.Dim)
			}
		}
		if dim != spec.TotalBits() {
			t.Fatalf("%v: resolved %d dims, want %d", spec, dim, spec.TotalBits())
		}
	}
}

func testSpecs() []bitutil.GroupSpec {
	return []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1, 1),
		bitutil.MustGroupSpec(2, 1),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(3, 3, 3),
		bitutil.MustGroupSpec(3, 2),
		bitutil.MustGroupSpec(4, 4, 1),
		bitutil.MustGroupSpec(3, 3, 2),
		bitutil.MustGroupSpec(2, 2, 2, 2),
		bitutil.MustGroupSpec(4, 3),
	}
}

func TestNewAndVerify(t *testing.T) {
	for _, spec := range testSpecs() {
		in := New(spec)
		if err := in.Verify(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

// Figure 1 of the paper: the 4x4 ISN with k1 = k2 = 1 has 4 stages; the
// middle step is the swap step exchanging bits 0 and 1.
func TestFig1ISNStructure(t *testing.T) {
	in := New(bitutil.MustGroupSpec(1, 1))
	if in.Rows != 4 || in.Stages != 4 {
		t.Fatalf("rows=%d stages=%d, want 4x4", in.Rows, in.Stages)
	}
	// Swap step is between stages 1 and 2: row 1 -> row 2 and vice versa,
	// rows 0 and 3 forward straight ahead.
	wantSwap := map[int]int{0: 0, 1: 2, 2: 1, 3: 3}
	for r, w := range wantSwap {
		found := false
		for _, he := range in.G.Neighbors(in.ID(r, 1)) {
			nr, ns := in.RowStage(he.To)
			if ns == 2 {
				if nr != w || he.Kind != graph.KindSwap {
					t.Errorf("swap step sends row %d to %d (kind %v), want %d", r, nr, he.Kind, w)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("row %d has no forward link at swap step", r)
		}
	}
	// Total edges: 2 cross steps x 2R + 1 swap step x R = 4*4 + 4 = 20.
	if in.G.NumEdges() != 20 {
		t.Errorf("edges = %d, want 20", in.G.NumEdges())
	}
}

func TestIDRoundTrip(t *testing.T) {
	in := New(bitutil.MustGroupSpec(2, 2))
	for s := 0; s < in.Stages; s++ {
		for r := 0; r < in.Rows; r++ {
			row, stage := in.RowStage(in.ID(r, s))
			if row != r || stage != s {
				t.Fatalf("round trip failed at (%d,%d)", r, s)
			}
		}
	}
}

func TestStagePermutation(t *testing.T) {
	in := New(bitutil.MustGroupSpec(1, 1))
	perms := in.StagePermutation()
	if len(perms) != in.Stages {
		t.Fatalf("perms = %d stages", len(perms))
	}
	// Identity through the first cross step.
	for u := 0; u < 4; u++ {
		if perms[0][u] != u || perms[1][u] != u {
			t.Errorf("early perms not identity")
		}
	}
	// After the swap step (stage 2 onward): 1<->2 swapped.
	want := []int{0, 2, 1, 3}
	for u := 0; u < 4; u++ {
		if perms[2][u] != want[u] || perms[3][u] != want[u] {
			t.Errorf("perm after swap = %v/%v, want %v", perms[2], perms[3], want)
		}
	}
}

func TestISNDegreeProfile(t *testing.T) {
	// Interior cross-step nodes have degree 4 (two straight + two cross);
	// nodes adjacent to a swap step have 3 (straight + cross + swap);
	// first/last stages have 2 or fewer. Check aggregate counts for (3,3).
	in := New(bitutil.MustGroupSpec(3, 3))
	hist := in.G.DegreeHistogram()
	// stages: 0..7 (7 steps: 3 cross, swap, 3 cross)
	// stage 0: deg 2 (64 nodes); stages 1,2: deg 4; stage 3: cross-behind + swap-ahead = 3
	// stage 4: swap-behind + cross-ahead = 3; stages 5,6: 4; stage 7: 2.
	if hist[2] != 2*64 || hist[3] != 2*64 || hist[4] != 4*64 {
		t.Errorf("degree histogram = %v", hist)
	}
}

func BenchmarkNewISN(b *testing.B) {
	spec := bitutil.MustGroupSpec(3, 3, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		New(spec)
	}
}

func BenchmarkVerifyISN(b *testing.B) {
	in := New(bitutil.MustGroupSpec(3, 3, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := in.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
