package isn

// Section 3.2's structural claims, verified exactly by contraction:
//
//   "if we merge each row of an ISN(3, B_{n/3}) into a super node, it
//    becomes the HSN(3, Q_{n/3}) it was derived from, where each
//    inter-cluster link is duplicated; if we continue to merge each
//    nucleus hypercube into a supernode, it becomes a 2-dimensional
//    radix-2^{n/3} generalized hypercube."

import (
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/hypercube"
	"bfvlsi/internal/swapnet"
)

// Contracting each row of the ISN yields the swap network it was derived
// from (as a simple graph), for arbitrary specs. (The contraction is
// stated for the ISN: the swap-butterfly's doubled links additionally
// contain swap-then-cross composites, which only merge at block level.)
func TestRowContractionYieldsSwapNetwork(t *testing.T) {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 3, 3),
		bitutil.MustGroupSpec(3, 2, 2),
	} {
		in := New(spec)
		super := make([]int, in.G.NumNodes())
		for id := range super {
			r, _ := in.RowStage(id)
			super[id] = r
		}
		contracted := in.G.Contract(super).Simple()
		want := swapnet.New(spec).G.Simple()
		if !graph.SameEdgeMultiset(contracted, want, true) {
			t.Errorf("%v: row contraction of the ISN is not SN%v", spec, spec)
		}
	}
}

// In the row contraction of the ISN, every inter-cluster (swap) link of
// the swap network appears exactly twice - the paper's "each
// inter-cluster link is duplicated (corresponding to two swap links)" -
// and every nucleus dimension-b link appears 2 * #{levels i : k_i > b}
// times (two directed cross links per level whose FFT phase crosses b).
func TestRowContractionMultiplicities(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	in := New(spec)
	super := make([]int, in.G.NumNodes())
	for id := range super {
		r, _ := in.RowStage(id)
		super[id] = r
	}
	contracted := in.G.Contract(super)
	mult := make(map[[2]int]int)
	for _, e := range contracted.Edges() {
		mult[[2]int{e.U, e.V}]++
	}
	sn := swapnet.New(spec)
	levelsCrossing := func(b int) int {
		c := 0
		for i := 1; i <= spec.Levels(); i++ {
			if spec.GroupWidth(i) > b {
				c++
			}
		}
		return c
	}
	for _, e := range sn.G.Edges() {
		key := [2]int{e.U, e.V}
		m := mult[key]
		switch e.Kind {
		case graph.KindSwap:
			if m != 2 {
				t.Errorf("swap pair (%d,%d): multiplicity %d, want 2", e.U, e.V, m)
			}
		case graph.KindCube:
			diff := e.U ^ e.V
			b := 0
			for diff>>uint(b+1) != 0 {
				b++
			}
			if want := 2 * levelsCrossing(b); m != want {
				t.Errorf("nucleus pair (%d,%d) dim %d: multiplicity %d, want %d", e.U, e.V, b, m, want)
			}
		}
	}
}

// Contracting the nucleus blocks (2^k1 consecutive rows) of the
// swap-butterfly gives the 2-D generalized hypercube of Section 3.2 when
// k2 == k3: every pair of blocks in the same grid row or column is
// adjacent.
func TestBlockContractionYieldsGeneralizedHypercube(t *testing.T) {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 2, 2),
	} {
		k1 := spec.GroupWidth(1)
		k2 := spec.GroupWidth(2)
		sb := Transform(spec)
		super := make([]int, sb.G.NumNodes())
		for id := range super {
			r, _ := sb.RowStage(id)
			super[id] = r >> uint(k1)
		}
		contracted := sb.G.Contract(super).Simple()
		// Node b of GHC(2, 2^k2): coordinates (b mod 2^k2, b div 2^k2);
		// hypercube.Generalized uses coordinate 0 as the fastest stride,
		// matching the block index convention (gc = low bits).
		want := hypercube.Generalized(2, 1<<uint(k2))
		if !graph.SameEdgeMultiset(contracted, want, true) {
			t.Errorf("%v: block contraction is not GHC(2, %d)", spec, 1<<uint(k2))
		}
	}
}

// Per Section 3.2: each pair of blocks in the same grid row or column is
// connected by exactly 2^{2+k1-k2} links (4 when k1 == k2).
func TestBlockPairLinkCounts(t *testing.T) {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 2, 2),
	} {
		k1 := spec.GroupWidth(1)
		k2 := spec.GroupWidth(2)
		want := 1 << uint(2+k1-k2)
		sb := Transform(spec)
		super := make([]int, sb.G.NumNodes())
		for id := range super {
			r, _ := sb.RowStage(id)
			super[id] = r >> uint(k1)
		}
		contracted := sb.G.Contract(super)
		mult := make(map[[2]int]int)
		for _, e := range contracted.Edges() {
			mult[[2]int{e.U, e.V}]++
		}
		for pair, m := range mult {
			if m != want {
				t.Errorf("%v: block pair %v has %d links, want %d", spec, pair, m, want)
			}
		}
	}
}
