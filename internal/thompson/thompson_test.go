package thompson

import (
	"testing"

	"bfvlsi/internal/bitutil"
)

func TestSpecForDim(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{1, "(1)"},
		{2, "(1,1)"},
		{3, "(1,1,1)"},
		{4, "(2,1,1)"},
		{5, "(2,2,1)"},
		{6, "(2,2,2)"},
		{7, "(3,2,2)"},
		{8, "(3,3,2)"},
		{9, "(3,3,3)"},
		{10, "(4,3,3)"},
	}
	for _, c := range cases {
		spec := SpecForDim(c.n)
		if spec.String() != c.want {
			t.Errorf("SpecForDim(%d) = %v, want %s", c.n, spec, c.want)
		}
		if spec.TotalBits() != c.n {
			t.Errorf("SpecForDim(%d) totals %d bits", c.n, spec.TotalBits())
		}
	}
}

func buildOrDie(t testing.TB, spec bitutil.GroupSpec) *Result {
	t.Helper()
	res, err := Build(Params{Spec: spec})
	if err != nil {
		t.Fatalf("%v: %v", spec, err)
	}
	return res
}

// The central geometric claim: the construction is a valid Thompson-model
// layout (no overlaps, no knock-knees, wires avoid node interiors, every
// wire terminates on nodes).
func TestBuildValidatesSmall(t *testing.T) {
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1),
		bitutil.MustGroupSpec(2),
		bitutil.MustGroupSpec(1, 1),
		bitutil.MustGroupSpec(2, 1),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 1, 1),
		bitutil.MustGroupSpec(2, 2, 1),
		bitutil.MustGroupSpec(2, 2, 2),
	}
	for _, spec := range specs {
		res := buildOrDie(t, spec)
		if err := res.Validate(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestBuildValidatesMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium layouts skipped in -short mode")
	}
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(3, 2, 2),
		bitutil.MustGroupSpec(3, 3, 2),
		bitutil.MustGroupSpec(3, 3, 3),
	} {
		res := buildOrDie(t, spec)
		if err := res.Validate(); err != nil {
			t.Errorf("%v: %v", spec, err)
		}
	}
}

func TestWireAndNodeCounts(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	res := buildOrDie(t, spec)
	n := spec.TotalBits()
	rows := 1 << uint(n)
	if got, want := len(res.L.Nodes), (n+1)*rows; got != want {
		t.Errorf("nodes = %d, want %d", got, want)
	}
	if got, want := len(res.L.Wires), 2*n*rows; got != want {
		t.Errorf("wires = %d, want %d (one per butterfly link)", got, want)
	}
}

func TestBandAndRegionSizesMatchFormulas(t *testing.T) {
	// Section 3.2: tracks per block row = 2^{k1+k2}; per column 2^{k1+k3}.
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(2, 2, 1),
		bitutil.MustGroupSpec(2, 1, 1),
	} {
		res := buildOrDie(t, spec)
		k1 := spec.GroupWidth(1)
		k2 := spec.GroupWidth(2)
		k3 := spec.GroupWidth(3)
		if got, want := res.BandH, 1<<uint(k1+k2); got != want {
			t.Errorf("%v: band height = %d, want %d", spec, got, want)
		}
		if got, want := res.ColW, 1<<uint(k1+k3); got != want {
			t.Errorf("%v: column region width = %d, want %d", spec, got, want)
		}
	}
}

func TestGridArrangement(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 1)
	res := buildOrDie(t, spec)
	if res.GridCols != 4 || res.GridRows != 2 || res.RowsPerBlock != 4 {
		t.Errorf("grid = %dx%d rowsPerBlock=%d", res.GridRows, res.GridCols, res.RowsPerBlock)
	}
	// Node (0,0) in block 0 at origin-ish; node of last row in last block.
	r0 := res.NodeRect(0, 0)
	if r0.X0 != 0 || r0.Y0 != 0 {
		t.Errorf("first node at %v", r0)
	}
	last := res.NodeRect((1<<5)-1, 0)
	if last.X0 != res.blockX0(3) || last.Y0 != res.blockY0(1)+3*res.rowPitch {
		t.Errorf("last row node at %v", last)
	}
}

func TestAreaScalesAsLeadingTerm(t *testing.T) {
	// Measured area / 2^{2n} must shrink toward the leading constant 1 as
	// n grows (the blocks' O(2^{n/3}) footprint is the o() term). We
	// check monotone decrease over the feasible sweep rather than
	// closeness to 1, which needs astronomically large n.
	if testing.Short() {
		t.Skip("sweep skipped in -short mode")
	}
	prev := 1e18
	for _, n := range []int{3, 6, 9} {
		res := buildOrDie(t, SpecForDim(n))
		st := res.L.Stats()
		lead := float64(int64(1) << uint(2*n))
		ratio := float64(st.Area) / lead
		if ratio >= prev {
			t.Errorf("n=%d: area ratio %.3f did not decrease (prev %.3f)", n, ratio, prev)
		}
		prev = ratio
	}
}

func TestBlockedBeatsSingleBlockAtModerateN(t *testing.T) {
	// The single-block (l=1) channel layout has area ~8*4^n; the paper's
	// blocked construction approaches 1*4^n but carries larger low-order
	// terms, so the crossover sits around n=9: there the blocked layout
	// must already win, and its normalized area must keep falling while
	// the naive one plateaus.
	if testing.Short() {
		t.Skip("n=9 build skipped in -short mode")
	}
	blocked := buildOrDie(t, bitutil.MustGroupSpec(3, 3, 3))
	naive := buildOrDie(t, bitutil.MustGroupSpec(9))
	ab := blocked.L.Stats().Area
	an := naive.L.Stats().Area
	if an <= ab {
		t.Errorf("naive single-block area %d not worse than blocked %d at n=9", an, ab)
	}
	// Naive constant factor stays near 8x the leading term.
	ratioNaive := float64(an) / float64(int64(1)<<18)
	if ratioNaive < 4 {
		t.Errorf("naive layout unexpectedly efficient: ratio %.2f", ratioNaive)
	}
}

func TestBuildRejectsDeepSpecs(t *testing.T) {
	if _, err := Build(Params{Spec: bitutil.MustGroupSpec(2, 2, 2, 2)}); err == nil {
		t.Error("l=4 spec accepted")
	}
}

func TestStageXMonotone(t *testing.T) {
	res := buildOrDie(t, bitutil.MustGroupSpec(2, 2, 2))
	for j := 1; j < len(res.stageXLoc); j++ {
		if res.stageXLoc[j] <= res.stageXLoc[j-1] {
			t.Fatalf("stageXLoc not increasing: %v", res.stageXLoc)
		}
	}
	if res.BlockW != res.stageXLoc[len(res.stageXLoc)-1]+NodeSide {
		t.Errorf("BlockW inconsistent")
	}
}

func TestMaxWireLengthOrderN(t *testing.T) {
	// Max wire length should be Theta(2^n): bounded by a small multiple
	// of the layout's larger side.
	res := buildOrDie(t, bitutil.MustGroupSpec(2, 2, 2))
	st := res.L.Stats()
	longest := st.MaxWireLength
	side := st.Width
	if st.Height > side {
		side = st.Height
	}
	if longest > 2*side {
		t.Errorf("max wire %d exceeds 2x side %d", longest, side)
	}
}

func BenchmarkBuild222(b *testing.B) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(Params{Spec: spec}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild333(b *testing.B) {
	spec := bitutil.MustGroupSpec(3, 3, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(Params{Spec: spec}); err != nil {
			b.Fatal(err)
		}
	}
}
