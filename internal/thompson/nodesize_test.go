package thompson

import (
	"testing"

	"bfvlsi/internal/bitutil"
)

// Section 3.3 / Theorem 4.1 scalability: enlarging the node boxes leaves
// the inter-block wiring (the leading area term) untouched; only the
// block footprints grow. We verify (a) larger-node layouts remain valid,
// (b) the band/region track counts are unchanged, and (c) the area grows
// by strictly less than the node-area ratio (wiring dominance).
func TestNodeSizeScalability(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	base, err := Build(Params{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	prevArea := base.L.Stats().Area
	for _, side := range []int{6, 8, 12} {
		res, err := Build(Params{Spec: spec, NodeSide: side})
		if err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		if err := res.Validate(); err != nil {
			t.Fatalf("side %d: %v", side, err)
		}
		if res.BandH != base.BandH || res.ColW != base.ColW {
			t.Errorf("side %d: band/region changed: %d/%d vs %d/%d",
				side, res.BandH, res.ColW, base.BandH, base.ColW)
		}
		area := res.L.Stats().Area
		if area <= prevArea {
			t.Errorf("side %d: area %d did not grow (prev %d)", side, area, prevArea)
		}
		// Node area grew by (side/4)^2; layout area must grow strictly
		// slower because wiring area is node-size independent.
		nodeRatio := float64(side*side) / 16.0
		areaRatio := float64(area) / float64(base.L.Stats().Area)
		if areaRatio >= nodeRatio {
			t.Errorf("side %d: area ratio %.2f not below node ratio %.2f", side, areaRatio, nodeRatio)
		}
		prevArea = area
	}
}

func TestNodeSizeScalabilityMultilayer(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 1)
	res, err := Build(Params{Spec: spec, Layers: 4, Multilayer: true, NodeSide: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNodeSideTooSmallRejected(t *testing.T) {
	if _, err := Build(Params{Spec: bitutil.MustGroupSpec(1, 1), NodeSide: 2}); err == nil {
		t.Error("node side below degree accepted")
	}
}

func TestNodeRectReflectsNodeSide(t *testing.T) {
	res, err := Build(Params{Spec: bitutil.MustGroupSpec(1, 1), NodeSide: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := res.NodeRect(0, 0)
	if r.Width() != 7 || r.Height() != 7 {
		t.Errorf("node rect %v, want 7x7", r)
	}
}
