package thompson

import (
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
)

// The measured bounding box must match the closed-form footprint up to
// the unused slack of the outermost band and column region.
func TestMeasuredDimsMatchPrediction(t *testing.T) {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(2, 2, 1),
		bitutil.MustGroupSpec(2, 2),
	} {
		res := buildOrDie(t, spec)
		pw, ph := res.PredictedDims()
		st := res.L.Stats()
		if st.Width > pw || st.Height > ph {
			t.Errorf("%v: measured %dx%d exceeds prediction %dx%d", spec, st.Width, st.Height, pw, ph)
		}
		if st.Width < pw-res.ColW || st.Height < ph-res.BandH {
			t.Errorf("%v: measured %dx%d below prediction %dx%d minus outer slack",
				spec, st.Width, st.Height, pw, ph)
		}
		if res.BlockFloorArea() > st.Area {
			t.Errorf("%v: block floor %d exceeds total area %d", spec, res.BlockFloorArea(), st.Area)
		}
	}
}

// Failure injection: the validator must catch deliberate corruption of a
// real layout - evidence that passing validation is meaningful.
func TestValidatorCatchesInjectedFaults(t *testing.T) {
	build := func() *Result { return buildOrDie(t, bitutil.MustGroupSpec(1, 1, 1)) }

	t.Run("duplicated wire overlaps itself", func(t *testing.T) {
		res := build()
		res.L.Wires = append(res.L.Wires, res.L.Wires[0])
		if err := res.Validate(); err == nil {
			t.Error("duplicate wire accepted")
		}
	})

	t.Run("wire shifted into a node box", func(t *testing.T) {
		res := build()
		// Move one inter-block wire's long segment down into the block
		// rows; some segment will cross a node interior or another wire.
		for i := range res.L.Wires {
			w := &res.L.Wires[i]
			if len(w.Segs) >= 5 { // an inter-block polyline
				for j := range w.Segs {
					w.Segs[j].Seg = w.Segs[j].Seg.Translate(0, -1)
				}
				break
			}
		}
		if err := res.Validate(); err == nil {
			t.Error("shifted wire accepted")
		}
	})

	t.Run("node grown over a channel", func(t *testing.T) {
		res := build()
		r0 := res.L.Nodes[0].Rect
		res.L.Nodes[0].Rect = geom.NewRect(r0.X0, r0.Y0, r0.X1+40, r0.Y1+2)
		if err := res.Validate(); err == nil {
			t.Error("grown node accepted")
		}
	})

	t.Run("wire endpoint detached", func(t *testing.T) {
		res := build()
		w := &res.L.Wires[0]
		first := &w.Segs[0]
		// Move the start point off the node into free space far above.
		first.Seg.A = geom.Point{X: first.Seg.A.X, Y: first.Seg.A.Y + 100000}
		// Re-validate with terminal checking: must fail (either
		// discontinuity or terminal rule).
		if err := res.L.Validate(grid.ValidateOptions{RequireTerminalsOnNodes: true}); err == nil {
			t.Error("detached wire accepted")
		}
	})
}

// Multilayer fault injection: moving a segment to a clashing layer must
// trip the 3-D validator.
func TestMultilayerValidatorCatchesLayerFault(t *testing.T) {
	res := buildML(t, bitutil.MustGroupSpec(2, 2, 1), 4)
	// Force every segment of one group-1 wire onto group-0 layers: its
	// band track now collides with a group-0 track at the same y.
	moved := false
	for i := range res.L.Wires {
		w := &res.L.Wires[i]
		hasHigh := false
		for _, s := range w.Segs {
			if s.Layer > 2 {
				hasHigh = true
			}
		}
		if !hasHigh {
			continue
		}
		for j := range w.Segs {
			if w.Segs[j].Layer == 3 {
				w.Segs[j].Layer = 1
			}
			if w.Segs[j].Layer == 4 {
				w.Segs[j].Layer = 2
			}
		}
		moved = true
		break
	}
	if !moved {
		t.Skip("no multi-group wire found")
	}
	if err := res.Validate(); err == nil {
		t.Error("layer collision accepted")
	}
}

// Ablation: disabling the Appendix B track reordering leaves area
// untouched but may lengthen the longest wire; the optimized build is
// never worse.
func TestTrackReorderAblation(t *testing.T) {
	for _, widths := range [][]int{{2, 2, 2}, {3, 3, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		opt := buildOrDie(t, spec)
		plain, err := Build(Params{Spec: spec, NoTrackReorder: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := plain.Validate(); err != nil {
			t.Fatalf("%v unordered: %v", spec, err)
		}
		so, sp := opt.L.Stats(), plain.L.Stats()
		if so.Area != sp.Area {
			t.Errorf("%v: reorder changed area %d -> %d", spec, sp.Area, so.Area)
		}
		if so.MaxWireLength > sp.MaxWireLength {
			t.Errorf("%v: reorder worsened max wire %d -> %d", spec, sp.MaxWireLength, so.MaxWireLength)
		}
	}
}
