package thompson

import (
	"testing"

	"bfvlsi/internal/bitutil"
)

func buildML(t testing.TB, spec bitutil.GroupSpec, layers int) *Result {
	t.Helper()
	res, err := Build(Params{Spec: spec, Layers: layers, Multilayer: true})
	if err != nil {
		t.Fatalf("%v L=%d: %v", spec, layers, err)
	}
	return res
}

// The multilayer construction must satisfy the strict 3-D grid rules:
// wire paths node-disjoint per layer, via columns conflict-free.
func TestMultilayerValidates(t *testing.T) {
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1, 1),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 1, 1),
		bitutil.MustGroupSpec(2, 2, 1),
		bitutil.MustGroupSpec(2, 2, 2),
	}
	for _, spec := range specs {
		for _, L := range []int{2, 3, 4, 5, 8} {
			res := buildML(t, spec, L)
			if err := res.Validate(); err != nil {
				t.Errorf("%v L=%d: %v", spec, L, err)
			}
		}
	}
}

func TestMultilayerMediumValidates(t *testing.T) {
	if testing.Short() {
		t.Skip("medium multilayer builds skipped in -short mode")
	}
	for _, L := range []int{4, 7, 16} {
		res := buildML(t, bitutil.MustGroupSpec(3, 3, 3), L)
		if err := res.Validate(); err != nil {
			t.Errorf("(3,3,3) L=%d: %v", L, err)
		}
	}
}

// Section 4.2: with L layers the band height shrinks to ceil(2T/L) for
// even L (T = 2^{k1+k2} tracks), and area shrinks accordingly.
func TestMultilayerBandCompression(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	full := 1 << 4 // 2^{k1+k2}
	for _, c := range []struct{ L, wantBand, wantCol int }{
		{2, full, full},
		{4, full / 2, full / 2},
		{8, full / 4, full / 4},
		{3, (full + 1) / 2, full}, // odd: H into (L+1)/2=2 groups, V into 1
		{5, (full + 2) / 3, full / 2},
	} {
		res := buildML(t, spec, c.L)
		if res.BandH != c.wantBand {
			t.Errorf("L=%d: BandH = %d, want %d", c.L, res.BandH, c.wantBand)
		}
		if res.ColW != c.wantCol {
			t.Errorf("L=%d: ColW = %d, want %d", c.L, res.ColW, c.wantCol)
		}
		if res.FullBandTracks != full || res.FullColTracks != full {
			t.Errorf("L=%d: full track counts %d/%d, want %d", c.L, res.FullBandTracks, res.FullColTracks, full)
		}
	}
}

func TestMultilayerL2MatchesThompsonArea(t *testing.T) {
	// The Thompson model is the L=2 special case of the multilayer model
	// (Section 4.1): identical geometry, stricter validation.
	spec := bitutil.MustGroupSpec(2, 2, 2)
	th := buildOrDie(t, spec)
	ml := buildML(t, spec, 2)
	if th.L.Stats().Area != ml.L.Stats().Area {
		t.Errorf("Thompson area %d != multilayer L=2 area %d", th.L.Stats().Area, ml.L.Stats().Area)
	}
	if th.L.Stats().MaxWireLength != ml.L.Stats().MaxWireLength {
		t.Errorf("max wire mismatch: %d vs %d", th.L.Stats().MaxWireLength, ml.L.Stats().MaxWireLength)
	}
}

func TestMultilayerAreaDecreasesWithL(t *testing.T) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	prev := int64(1) << 62
	for _, L := range []int{2, 4, 8} {
		res := buildML(t, spec, L)
		a := res.L.Stats().Area
		if a >= prev {
			t.Errorf("L=%d: area %d did not decrease (prev %d)", L, a, prev)
		}
		prev = a
	}
}

func TestMultilayerMaxWireDecreasesWithL(t *testing.T) {
	// Theorem 4.1: max wire length ~ 2N/(L log N); doubling L should
	// shrink the longest wire (dominated by band/column runs).
	spec := bitutil.MustGroupSpec(2, 2, 2)
	w2 := buildML(t, spec, 2).L.Stats().MaxWireLength
	w8 := buildML(t, spec, 8).L.Stats().MaxWireLength
	if w8 >= w2 {
		t.Errorf("max wire did not shrink: L=2 %d, L=8 %d", w2, w8)
	}
}

func TestMultilayerVolumeSweet(t *testing.T) {
	// Volume = L * area ~ 4N^2/(L log^2 N): grows sublinearly... i.e.
	// at fixed n, increasing L must not increase the wiring-dominated
	// volume by more than the block floor. Check volume at L=8 is below
	// volume at L=2 times 4 (it would be equal under the exact formula,
	// smaller in practice only until blocks dominate).
	spec := bitutil.MustGroupSpec(2, 2, 2)
	v2 := buildML(t, spec, 2).L.Stats().Volume
	v8 := buildML(t, spec, 8).L.Stats().Volume
	if v8 > 4*v2 {
		t.Errorf("volume blew up: L=2 %d, L=8 %d", v2, v8)
	}
}

func TestMultilayerRejectsBadLayers(t *testing.T) {
	if _, err := Build(Params{Spec: bitutil.MustGroupSpec(1, 1), Layers: 1, Multilayer: true}); err == nil {
		t.Error("L=1 accepted")
	}
	if _, err := Build(Params{Spec: bitutil.MustGroupSpec(1, 1), Layers: 6}); err == nil {
		t.Error("Layers=6 without Multilayer accepted")
	}
}

func BenchmarkBuildMultilayer222L8(b *testing.B) {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	for i := 0; i < b.N; i++ {
		if _, err := Build(Params{Spec: spec, Layers: 8, Multilayer: true}); err != nil {
			b.Fatal(err)
		}
	}
}
