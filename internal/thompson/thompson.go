// Package thompson builds the paper's optimal butterfly layouts under the
// Thompson model (Section 3) as complete, validated geometry.
//
// The construction follows Sections 3.2-3.3 exactly:
//
//  1. Transform ISN(l, ...) into a swap-butterfly (an automorphism of
//     B_n, package isn).
//  2. Place every 2^k1 consecutive rows into a block; arrange the blocks
//     as a 2^k3 x 2^k2 grid in row-major order (Fig. 3).
//  3. Level-2 (doubled) swap links connect blocks within a grid row; they
//     are wired in horizontal track bands above each block row using the
//     collinear layout of K_{2^k2} with every wire replicated
//     2^{2+k1-k2} times. Level-3 swap links connect blocks within a grid
//     column and use vertical track regions to the right of each block
//     column (collinear K_{2^k3}, replication 2^{2+k1-k3}).
//  4. Straight and cross links are confined to blocks and are
//     channel-routed stage by stage; links incident to a block are
//     connected to their nodes inside the block through dedicated
//     terminal tracks (level 2) and row-gap runs (level 3).
//
// Every node is a 4x4 box (the Thompson model's "degree-d node occupies a
// side-d square" with d = 4); every wire is a rectilinear polyline. The
// result passes the package grid Thompson-rule validator, and its area
// and maximum wire length are measured, not asserted.
package thompson

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/channel"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/isn"
)

// NodeSide is the default side of each node box: the butterfly's maximum
// degree (the Thompson model's minimum for a degree-4 node). Larger node
// sizes model nodes containing processors and memory banks (Section 3.3).
const NodeSide = 4

// gapSlotsPerRow is the height of the horizontal run gap above each node
// row when column (level-3) links exist: 2 outgoing + 2 incoming runs.
const gapSlotsPerRow = 4

// Params configures a layout build.
type Params struct {
	// Spec is the ISN group spec; 1 <= levels <= 3. Use SpecForDim for
	// the paper's parameter choices (Sections 3.2-3.3).
	Spec bitutil.GroupSpec
	// Layers selects the wiring model: 0 or 2 builds the two-layer
	// Thompson-model layout; L >= 2 with Multilayer true builds the
	// Section 4 multilayer 2-D grid layout, partitioning the inter-block
	// tracks into groups wired on separate layer pairs.
	Layers int
	// Multilayer switches validation and layer assignment to the
	// multilayer 2-D grid model (edge- and node-disjoint 3-D paths).
	Multilayer bool
	// NodeSide is the side of each node box. 0 means the minimum,
	// NodeSide (= 4). Larger values model nodes holding processors and
	// memory banks; Section 3.3 shows the leading area constant is
	// unaffected while the side stays o(sqrt(N)/log N).
	NodeSide int
	// NoTrackReorder disables the wire-length optimization of Appendix B
	// (placing long-span collinear tracks nearest the blocks). Used for
	// the ablation benchmark; area is unaffected, max wire length grows.
	NoTrackReorder bool
}

// SpecForDim returns the group spec the paper uses for an n-dimensional
// butterfly: (n/3, n/3, n/3) when 3 | n; k1=(n+2)/3, k2=k3=(n-1)/3 when
// n = 1 mod 3; k1=k2=(n+1)/3, k3=(n-2)/3 when n = 2 mod 3. For n < 3 it
// degenerates to fewer levels.
func SpecForDim(n int) bitutil.GroupSpec {
	switch {
	case n < 1:
		panic(fmt.Sprintf("thompson: dimension %d out of range", n))
	case n == 1:
		return bitutil.MustGroupSpec(1)
	case n == 2:
		return bitutil.MustGroupSpec(1, 1)
	}
	switch n % 3 {
	case 0:
		return bitutil.MustGroupSpec(n/3, n/3, n/3)
	case 1:
		return bitutil.MustGroupSpec((n+2)/3, (n-1)/3, (n-1)/3)
	default: // n % 3 == 2
		return bitutil.MustGroupSpec((n+1)/3, (n+1)/3, (n-2)/3)
	}
}

// Result is a built layout with its bookkeeping.
type Result struct {
	Spec     bitutil.GroupSpec
	SB       *isn.SwapButterfly
	L        *grid.Layout
	Layers   int
	NodeSide int

	// Geometry summary.
	BlockW, BlockH     int // block footprint
	BandH              int // horizontal track band height per block row (after any multilayer compression)
	ColW               int // vertical track region width per block column (after compression)
	FullBandTracks     int // uncompressed horizontal tracks per band (2^{k1+k2})
	FullColTracks      int // uncompressed vertical tracks per column region (2^{k1+k3})
	GridRows, GridCols int // block grid (2^k3 x 2^k2)
	RowsPerBlock       int // 2^k1

	rowPitch   int
	gapH       int
	stageXLoc  []int // local x of each stage's node column within a block
	chanWidths []int
}

// interLink is one doubled swap link that leaves its block.
type interLink struct {
	fromRow, toRow int // global swap-butterfly rows
	step           int // effective step index (stage boundary)
	level          int // 2 (row link) or 3 (column link)
}

type builder struct {
	res *Result

	spec           bitutil.GroupSpec
	n, k1          int
	rowsPer        int
	m2, m3         int
	c2, c3         int
	numBlocks      int
	layers         int
	model          grid.Model
	hGroups        int // horizontal track groups for band compression
	vGroups        int // vertical track groups for column-region compression
	perGroupH      int
	perGroupV      int
	noReorder      bool
	intraH, intraV int               // layers for block-internal wiring
	intraNets      [][][]channel.Net // [step][block]
	intraPlans     [][]*channel.Plan
	intraWidth     []int // per step: max intra tracks
	dedWidth       []int // per step: max dedicated tracks
	inter          []interLink
	dedRank        map[[3]int]int // (step, block, endpointKey) -> dedicated rank; see edKey
	gapRank        map[[3]int]int // (step, block, endpointKey) -> gap slot rank
	endpointCounts map[[2]int]int
}

// Build constructs the layout. It returns an error for specs with more
// than three levels (the paper's direct construction covers l <= 3;
// larger l is handled recursively in the paper and out of scope here).
func Build(p Params) (*Result, error) {
	spec := p.Spec
	l := spec.Levels()
	if l > 3 {
		return nil, fmt.Errorf("thompson: direct layout supports at most 3 levels, got %d", l)
	}
	if spec.Size() > 1<<20 {
		return nil, fmt.Errorf("thompson: %v too large to materialize", spec)
	}
	layers := p.Layers
	if layers == 0 {
		layers = 2
	}
	if layers < 2 {
		return nil, fmt.Errorf("thompson: need at least 2 wiring layers, got %d", layers)
	}
	if !p.Multilayer && layers != 2 {
		return nil, fmt.Errorf("thompson: the Thompson model has exactly 2 layers; set Multilayer for L=%d", layers)
	}
	b := &builder{
		spec:      spec,
		n:         spec.TotalBits(),
		k1:        spec.GroupWidth(1),
		rowsPer:   1 << uint(spec.GroupWidth(1)),
		layers:    layers,
		noReorder: p.NoTrackReorder,
	}
	if p.Multilayer {
		b.model = grid.Multilayer
		if layers%2 == 0 {
			b.hGroups, b.vGroups = layers/2, layers/2
			b.intraH, b.intraV = 2, 1
		} else {
			// Odd L (Section 4.2): horizontal tracks on the (L+1)/2 odd
			// layers, vertical tracks on the (L-1)/2 even layers.
			b.hGroups, b.vGroups = (layers+1)/2, (layers-1)/2
			b.intraH, b.intraV = 1, 2
		}
	} else {
		b.model = grid.Thompson
		b.hGroups, b.vGroups = 1, 1
		b.intraH, b.intraV = 1, 2
	}
	b.m2, b.m3 = 1, 1
	b.c2, b.c3 = 0, 0
	if l >= 2 {
		k2 := spec.GroupWidth(2)
		b.m2 = 1 << uint(k2)
		c2, ok := bitutil.CheckedShl(1, 2+b.k1-k2)
		if !ok {
			return nil, fmt.Errorf("thompson: row replication 2^(2+k1-k2) overflows int for spec %v", spec)
		}
		b.c2 = c2
	}
	if l == 3 {
		k3 := spec.GroupWidth(3)
		b.m3 = 1 << uint(k3)
		c3, ok := bitutil.CheckedShl(1, 2+b.k1-k3)
		if !ok {
			return nil, fmt.Errorf("thompson: column replication 2^(2+k1-k3) overflows int for spec %v", spec)
		}
		b.c3 = c3
	}
	numBlocks, ok := bitutil.CheckedMul(b.m2, b.m3)
	if !ok {
		return nil, fmt.Errorf("thompson: block grid 2^k2 x 2^k3 overflows int for spec %v", spec)
	}
	b.numBlocks = numBlocks

	nodeSide := p.NodeSide
	if nodeSide == 0 {
		nodeSide = NodeSide
	}
	if nodeSide < NodeSide {
		return nil, fmt.Errorf("thompson: node side %d below the degree-%d minimum", nodeSide, NodeSide)
	}
	sb := isn.Transform(spec)
	gapH := 0
	if l == 3 {
		gapH = gapSlotsPerRow
	}
	res := &Result{
		Spec:         spec,
		SB:           sb,
		Layers:       layers,
		NodeSide:     nodeSide,
		GridRows:     b.m3,
		GridCols:     b.m2,
		RowsPerBlock: b.rowsPer,
		rowPitch:     nodeSide + gapH,
		gapH:         gapH,
	}
	b.res = res

	if err := b.planChannels(); err != nil {
		return nil, err
	}
	b.computeFootprint()
	if err := b.realize(); err != nil {
		return nil, err
	}
	return res, nil
}

// ---- addressing helpers ----

func (b *builder) blockOf(row int) int { return row >> uint(b.k1) }
func (b *builder) gcOf(block int) int  { return block & (b.m2 - 1) }
func (b *builder) grOf(block int) int  { return block / b.m2 }

func (b *builder) swapAt(level int, row int) int {
	return int(b.spec.SwapNeighbor(uint64(row), level))
}

// slotOut returns the east-edge port slot (0 or 1) used by the link from
// row r to row to at a merged step of the given level.
func (b *builder) slotOut(level, r, to int) int {
	if b.swapAt(level, r) == to {
		return 0
	}
	return 1
}

// slotIn returns the west-edge port slot (2 or 3) at the receiving node.
func (b *builder) slotIn(level, r, to int) int {
	if b.swapAt(level, to) == r {
		return 2
	}
	return 3
}

// ---- geometry accessors (valid after computeFootprint) ----

// Grid coordinates and per-block dimensions are bounded by the
// Size() <= 2^20 guard in Build, so these products stay far below
// overflow; the analyzer cannot see through the struct fields.
func (r *Result) blockX0(gc int) int { return gc * (r.BlockW + r.ColW) }  //bflint:ignore overflowcalc bounded by the Build size guard
func (r *Result) blockY0(gr int) int { return gr * (r.BlockH + r.BandH) } //bflint:ignore overflowcalc bounded by the Build size guard

// NodeRect returns the box of swap-butterfly node (row, stage).
func (r *Result) NodeRect(row, stage int) geom.Rect {
	block := row >> uint(trailingLog(r.RowsPerBlock))
	gc := block & (r.GridCols - 1)
	gr := block / r.GridCols
	lr := row & (r.RowsPerBlock - 1)
	x0 := r.blockX0(gc) + r.stageXLoc[stage]
	y0 := r.blockY0(gr) + lr*r.rowPitch
	return geom.NewRect(x0, y0, x0+r.NodeSide-1, y0+r.NodeSide-1)
}

func trailingLog(v int) int {
	n := 0
	for n < 63 && (1<<uint(n)) < v {
		n++
	}
	return n
}

// portY returns the y coordinate of the given slot of node (row, stage).
func (b *builder) portY(row, slot int) int {
	gr := b.grOf(b.blockOf(row))
	lr := row & (b.rowsPer - 1)
	return b.res.blockY0(gr) + lr*b.res.rowPitch + slot
}

func (b *builder) nodeEastX(row, stage int) int {
	gc := b.gcOf(b.blockOf(row))
	return b.res.blockX0(gc) + b.res.stageXLoc[stage] + b.res.NodeSide - 1
}

func (b *builder) nodeWestX(row, stage int) int {
	gc := b.gcOf(b.blockOf(row))
	return b.res.blockX0(gc) + b.res.stageXLoc[stage]
}

// localPortY gives the port y as used during planning (block-relative;
// the per-block plans are computed before global positions exist).
func (b *builder) localPortY(row, slot int) int {
	lr := row & (b.rowsPer - 1)
	return lr*b.res.rowPitch + slot
}

// ---- pass 1: per-channel plans and widths ----

func (b *builder) planChannels() error {
	sb := b.res.SB
	steps := sb.Steps
	b.intraNets = make([][][]channel.Net, len(steps))
	b.intraPlans = make([][]*channel.Plan, len(steps))
	b.intraWidth = make([]int, len(steps))
	b.dedWidth = make([]int, len(steps))
	b.dedRank = make(map[[3]int]int)
	b.gapRank = make(map[[3]int]int)
	b.endpointCounts = make(map[[2]int]int)

	// Phase 1 (serial, deterministic): enumerate the nets of every
	// channel and the inter-block links. Order matters here - the inter
	// slice drives dedicated-track ranks and copy indices.
	for j, st := range steps {
		b.intraNets[j] = make([][]channel.Net, b.numBlocks)
		b.intraPlans[j] = make([]*channel.Plan, b.numBlocks)
		sbit := st.Bit
		if sbit < 0 || sbit > 62 {
			return fmt.Errorf("thompson: step %d has bit %d outside [0,62]", j, sbit)
		}
		bit := 1 << uint(sbit)
		if !st.Merged {
			for blk := 0; blk < b.numBlocks; blk++ {
				base := blk * b.rowsPer
				var nets []channel.Net
				for lr := 0; lr < b.rowsPer; lr++ {
					r := base + lr
					// straight link on slot 0 of both walls
					nets = append(nets, channel.Net{
						Label: fmt.Sprintf("s%d.%d", r, j),
						LeftY: b.localPortY(r, 0), RightY: b.localPortY(r, 0),
					})
					// cross link: out slot 1 -> in slot 2 at r^bit
					nets = append(nets, channel.Net{
						Label: fmt.Sprintf("c%d.%d", r, j),
						LeftY: b.localPortY(r, 1), RightY: b.localPortY(r^bit, 2),
					})
				}
				b.intraNets[j][blk] = nets
			}
			continue
		}
		// Merged step: split the 2R doubled swap links into intra-block
		// nets and inter-block links.
		for blk := 0; blk < b.numBlocks; blk++ {
			base := blk * b.rowsPer
			var nets []channel.Net
			ded := 0
			for lr := 0; lr < b.rowsPer; lr++ {
				r := base + lr
				w := b.swapAt(st.Level, r)
				for _, to := range []int{w, w ^ bit} {
					if b.blockOf(to) == blk {
						nets = append(nets, channel.Net{
							Label:  fmt.Sprintf("m%d-%d.%d", r, to, j),
							LeftY:  b.localPortY(r, b.slotOut(st.Level, r, to)),
							RightY: b.localPortY(to, b.slotIn(st.Level, r, to)),
						})
					} else {
						b.inter = append(b.inter, interLink{fromRow: r, toRow: to, step: j, level: st.Level})
						ded++ // out endpoint in this block
					}
				}
				// incoming endpoints from other blocks
				for _, from := range []int{b.swapAt(st.Level, r), b.swapAt(st.Level, r^bit)} {
					if b.blockOf(from) != blk {
						ded++
					}
				}
			}
			b.intraNets[j][blk] = nets
			if ded > b.dedWidth[j] {
				b.dedWidth[j] = ded
			}
		}
	}
	// Phase 2 (parallel): channel-route every (step, block) pair. Route
	// is pure and results land in preallocated slots, so the output is
	// identical to the serial order regardless of scheduling.
	if err := b.routeChannelsParallel(); err != nil {
		return err
	}
	for j := range steps {
		for blk := 0; blk < b.numBlocks; blk++ {
			if p := b.intraPlans[j][blk]; p != nil && p.Tracks > b.intraWidth[j] {
				b.intraWidth[j] = p.Tracks
			}
		}
	}
	b.assignDedicated()
	return nil
}

// routeChannelsParallel routes all planned channels across a worker pool.
func (b *builder) routeChannelsParallel() error {
	type job struct{ j, blk int }
	jobs := make(chan job, 64)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				nets := b.intraNets[jb.j][jb.blk]
				plan, err := channel.Route(nets)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("thompson: step %d block %d: %v", jb.j, jb.blk, err)
					}
					mu.Unlock()
					continue
				}
				b.intraPlans[jb.j][jb.blk] = plan
			}
		}()
	}
	for j := range b.res.SB.Steps {
		for blk := 0; blk < b.numBlocks; blk++ {
			jobs <- job{j, blk}
		}
	}
	close(jobs)
	wg.Wait()
	return firstErr
}

// endpoint describes one block-side terminal of an inter-block link.
type endpoint struct {
	linkIdx int
	row     int // the node row of this endpoint
	out     bool
	other   int // the block-grid coordinate of the other endpoint (gc or gr)
	tie     int
}

// assignDedicated orders, per (step, block), all inter-link endpoints by
// the other endpoint's grid coordinate and assigns dedicated track ranks
// (and, for level-3 links, row-gap run slots). The ordering makes the
// chained intervals of a shared collinear track pairwise disjoint.
func (b *builder) assignDedicated() {
	perKey := make(map[[2]int][]endpoint)
	for idx, il := range b.inter {
		fb, tb := b.blockOf(il.fromRow), b.blockOf(il.toRow)
		var fOther, tOther int
		if il.level == 2 {
			fOther, tOther = b.gcOf(tb), b.gcOf(fb)
		} else {
			fOther, tOther = b.grOf(tb), b.grOf(fb)
		}
		perKey[[2]int{il.step, fb}] = append(perKey[[2]int{il.step, fb}],
			endpoint{linkIdx: idx, row: il.fromRow, out: true, other: fOther, tie: idx})
		perKey[[2]int{il.step, tb}] = append(perKey[[2]int{il.step, tb}],
			endpoint{linkIdx: idx, row: il.toRow, out: false, other: tOther, tie: idx})
	}
	for key, eps := range perKey {
		sort.Slice(eps, func(i, j int) bool {
			if eps[i].other != eps[j].other {
				return eps[i].other < eps[j].other
			}
			return eps[i].tie < eps[j].tie
		})
		for rank, ep := range eps {
			code := ep.linkIdx*2 + boolToInt(ep.out)
			b.dedRank[[3]int{key[0], key[1], code}] = rank
			b.gapRank[[3]int{key[0], key[1], code}] = rank
		}
		b.endpointCounts[key] = len(eps)
	}
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// ---- pass 2: footprint ----

func (b *builder) computeFootprint() {
	res := b.res
	steps := res.SB.Steps
	res.chanWidths = make([]int, len(steps))
	res.stageXLoc = make([]int, len(steps)+1)
	x := 0
	for j := range steps {
		res.stageXLoc[j] = x
		res.chanWidths[j] = b.intraWidth[j] + b.dedWidth[j]
		x += res.NodeSide + res.chanWidths[j]
	}
	res.stageXLoc[len(steps)] = x
	res.BlockW = x + res.NodeSide
	res.BlockH = b.rowsPer * res.rowPitch
	if b.m2 > 1 {
		res.FullBandTracks = b.c2 * (b.m2 * b.m2 / 4)
		b.perGroupH = ceilDiv(res.FullBandTracks, b.hGroups)
		res.BandH = b.perGroupH
	}
	if b.m3 > 1 {
		res.FullColTracks = b.c3 * (b.m3 * b.m3 / 4)
		b.perGroupV = ceilDiv(res.FullColTracks, b.vGroups)
		res.ColW = b.perGroupV
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// maxLayerGroups bounds the horizontal/vertical group indices handed to
// the layer-pair helpers; group counts derive from the layer budget,
// which is tiny in practice.
const maxLayerGroups = 1 << 20

// rowLinkLayers returns the (hLayer, vLayer) pair for a row link whose
// horizontal band track falls into horizontal group g (0-based).
func (b *builder) rowLinkLayers(g int) (hLayer, vLayer int) {
	if g < 0 || g > maxLayerGroups {
		panic(fmt.Sprintf("thompson: horizontal group %d outside [0,%d]", g, maxLayerGroups))
	}
	if b.layers%2 == 0 {
		return 2*g + 2, 2*g + 1
	}
	h := 2*g + 1
	v := h - 1
	if v < 2 {
		v = 2
	}
	return h, v
}

// colLinkLayers returns the (hLayer, vLayer) pair for a column link whose
// vertical region track falls into vertical group g (0-based).
func (b *builder) colLinkLayers(g int) (hLayer, vLayer int) {
	if g < 0 || g > maxLayerGroups {
		panic(fmt.Sprintf("thompson: vertical group %d outside [0,%d]", g, maxLayerGroups))
	}
	if b.layers%2 == 0 {
		return 2*g + 2, 2*g + 1
	}
	return 2*g + 3, 2*g + 2
}

// ---- pass 3: realization ----

func (b *builder) realize() error {
	res := b.res
	sb := res.SB
	l := grid.NewLayout(b.model, b.layers)
	res.L = l

	// Nodes.
	for s := 0; s < sb.Stages; s++ {
		for r := 0; r < sb.Rows; r++ {
			l.AddNode(fmt.Sprintf("n%d.%d", r, s), res.NodeRect(r, s))
		}
	}

	// Intra-block channels.
	for j := range sb.Steps {
		for blk := 0; blk < b.numBlocks; blk++ {
			nets := b.intraNets[j][blk]
			if len(nets) == 0 {
				continue
			}
			gc, gr := b.gcOf(blk), b.grOf(blk)
			dx := res.blockX0(gc)
			dy := res.blockY0(gr)
			global := make([]channel.Net, len(nets))
			for i, nt := range nets {
				global[i] = channel.Net{Label: nt.Label, LeftY: nt.LeftY + dy, RightY: nt.RightY + dy}
			}
			xLeft := dx + res.stageXLoc[j] + res.NodeSide - 1
			xRight := dx + res.stageXLoc[j+1]
			trackX := func(t int) int { return xLeft + 1 + t }
			if err := channel.RealizeOnLayers(l, global, b.intraPlans[j][blk], xLeft, xRight, trackX, b.intraH, b.intraV); err != nil {
				return fmt.Errorf("thompson: step %d block %d: %v", j, blk, err)
			}
		}
	}

	// Inter-block wires.
	if err := b.realizeInter(); err != nil {
		return err
	}
	return nil
}

// dedX returns the global x of the dedicated track for an endpoint.
func (b *builder) dedX(step, blk, code int) (int, error) {
	rank, ok := b.dedRank[[3]int{step, blk, code}]
	if !ok {
		return 0, fmt.Errorf("thompson: missing dedicated rank for step %d block %d code %d", step, blk, code)
	}
	if rank >= b.dedWidth[step] {
		return 0, fmt.Errorf("thompson: dedicated rank %d exceeds width %d", rank, b.dedWidth[step])
	}
	gc := b.gcOf(blk)
	base := b.res.blockX0(gc) + b.res.stageXLoc[step] + b.res.NodeSide + b.intraWidth[step]
	return base + rank, nil
}

// gapY returns the global y of the row-gap run slot for an endpoint
// (level-3 links only).
func (b *builder) gapY(step, blk, code int) (int, error) {
	rank, ok := b.gapRank[[3]int{step, blk, code}]
	if !ok {
		return 0, fmt.Errorf("thompson: missing gap rank for step %d block %d code %d", step, blk, code)
	}
	capacity := b.rowsPer * b.res.gapH
	if rank >= capacity {
		return 0, fmt.Errorf("thompson: gap rank %d exceeds capacity %d", rank, capacity)
	}
	gr := b.grOf(blk)
	lr := rank / b.res.gapH
	slot := rank % b.res.gapH
	return b.res.blockY0(gr) + lr*b.res.rowPitch + b.res.NodeSide + slot, nil
}

func (b *builder) realizeInter() error {
	res := b.res
	// Collinear track assignments for the band (rows) and regions (cols).
	var rowTA, colTA *collinear.TrackAssignment
	rowTrack := map[[2]int]int{}
	colTrack := map[[2]int]int{}
	if b.m2 > 1 {
		var err error
		rowTA, err = collinear.Optimal(b.m2)
		if err != nil {
			return fmt.Errorf("thompson: row band layout: %v", err)
		}
		if !b.noReorder {
			rowTA.ReorderByDescendingSpan()
		}
		for _, lk := range rowTA.Links {
			rowTrack[[2]int{lk.A, lk.B}] = lk.Track
		}
	}
	if b.m3 > 1 {
		var err error
		colTA, err = collinear.Optimal(b.m3)
		if err != nil {
			return fmt.Errorf("thompson: column region layout: %v", err)
		}
		if !b.noReorder {
			colTA.ReorderByDescendingSpan()
		}
		for _, lk := range colTA.Links {
			colTrack[[2]int{lk.A, lk.B}] = lk.Track
		}
	}

	// Copy counters per (step, gridRowOrCol, pair).
	copyIdx := make(map[[4]int]int)

	for idx, il := range b.inter {
		fb, tb := b.blockOf(il.fromRow), b.blockOf(il.toRow)
		outCode := idx*2 + 1
		inCode := idx * 2
		pya := b.portY(il.fromRow, b.slotOut(il.level, il.fromRow, il.toRow))
		pyb := b.portY(il.toRow, b.slotIn(il.level, il.fromRow, il.toRow))
		pa := geom.Point{X: b.nodeEastX(il.fromRow, il.step), Y: pya}
		pb := geom.Point{X: b.nodeWestX(il.toRow, il.step+1), Y: pyb}
		dax, err := b.dedX(il.step, fb, outCode)
		if err != nil {
			return err
		}
		dbx, err := b.dedX(il.step, tb, inCode)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("x%d-%d.%d", il.fromRow, il.toRow, il.step)

		if il.level == 2 {
			gr := b.grOf(fb)
			a, c := b.gcOf(fb), b.gcOf(tb)
			if a > c {
				a, c = c, a
			}
			t, ok := rowTrack[[2]int{a, c}]
			if !ok {
				return fmt.Errorf("thompson: no row track for pair (%d,%d)", a, c)
			}
			key := [4]int{il.step, gr, a, c}
			cp := copyIdx[key]
			copyIdx[key]++
			if cp >= b.c2 {
				return fmt.Errorf("thompson: row pair (%d,%d) uses %d copies > c2=%d", a, c, cp+1, b.c2)
			}
			trackIdx := t*b.c2 + cp
			group := trackIdx / b.perGroupH
			hL, vL := 1, 2
			if b.model == grid.Multilayer {
				hL, vL = b.rowLinkLayers(group)
			}
			ty := res.blockY0(gr) + res.BlockH + trackIdx%b.perGroupH
			if err := res.L.AddWireOnLayers(label, hL, vL,
				pa,
				geom.Point{X: dax, Y: pya},
				geom.Point{X: dax, Y: ty},
				geom.Point{X: dbx, Y: ty},
				geom.Point{X: dbx, Y: pyb},
				pb,
			); err != nil {
				return err
			}
			continue
		}

		// level 3: column link
		gc := b.gcOf(fb)
		a, c := b.grOf(fb), b.grOf(tb)
		if a > c {
			a, c = c, a
		}
		t, ok := colTrack[[2]int{a, c}]
		if !ok {
			return fmt.Errorf("thompson: no column track for pair (%d,%d)", a, c)
		}
		key := [4]int{il.step, gc, a, c}
		cp := copyIdx[key]
		copyIdx[key]++
		if cp >= b.c3 {
			return fmt.Errorf("thompson: column pair (%d,%d) uses %d copies > c3=%d", a, c, cp+1, b.c3)
		}
		trackIdx := t*b.c3 + cp
		group := trackIdx / b.perGroupV
		hL, vL := 1, 2
		if b.model == grid.Multilayer {
			hL, vL = b.colLinkLayers(group)
		}
		tx := res.blockX0(gc) + res.BlockW + trackIdx%b.perGroupV
		gya, err := b.gapY(il.step, fb, outCode)
		if err != nil {
			return err
		}
		gyb, err := b.gapY(il.step, tb, inCode)
		if err != nil {
			return err
		}
		if err := res.L.AddWireOnLayers(label, hL, vL,
			pa,
			geom.Point{X: dax, Y: pya},
			geom.Point{X: dax, Y: gya},
			geom.Point{X: tx, Y: gya},
			geom.Point{X: tx, Y: gyb},
			geom.Point{X: dbx, Y: gyb},
			geom.Point{X: dbx, Y: pyb},
			pb,
		); err != nil {
			return err
		}
	}
	return nil
}

// Stats measures the built layout.
func (r *Result) Stats() grid.Stats { return r.L.Stats() }

// PredictedDims returns the closed-form footprint of the construction:
// width = gridCols * blockW + (gridCols of column regions) * colW, and
// height likewise with bands. The measured bounding box equals this up
// to unused slack in the outermost band/region (at most one band and one
// region).
func (r *Result) PredictedDims() (w, h int) {
	w = r.GridCols * (r.BlockW + r.ColW)
	h = r.GridRows * (r.BlockH + r.BandH)
	return w, h
}

// BlockFloorArea returns the layer-independent part of the footprint:
// the area the blocks alone would occupy with zero inter-block tracks.
// It is the concrete o() term of Theorem 4.1 at finite n.
func (r *Result) BlockFloorArea() int64 {
	return int64(r.GridCols*r.BlockW) * int64(r.GridRows*r.BlockH)
}

// Validate runs the full Thompson-rule validator including node-interior
// and terminal checks.
func (r *Result) Validate() error {
	return r.L.Validate(grid.ValidateOptions{
		CheckNodeInteriors:      true,
		RequireTerminalsOnNodes: true,
	})
}
