package hypercube

import (
	"math/bits"
	"testing"

	"bfvlsi/internal/graph"
)

func TestQCounts(t *testing.T) {
	for k := 0; k <= 8; k++ {
		g := Q(k)
		if g.NumNodes() != 1<<uint(k) {
			t.Errorf("Q(%d) nodes = %d", k, g.NumNodes())
		}
		wantEdges := k * (1 << uint(k)) / 2
		if g.NumEdges() != wantEdges {
			t.Errorf("Q(%d) edges = %d, want %d", k, g.NumEdges(), wantEdges)
		}
		if k > 0 && !g.Connected() {
			t.Errorf("Q(%d) disconnected", k)
		}
	}
}

func TestQAdjacencyIsHamming(t *testing.T) {
	g := Q(5)
	for u := 0; u < g.NumNodes(); u++ {
		for _, he := range g.Neighbors(u) {
			if bits.OnesCount(uint(u^he.To)) != 1 {
				t.Fatalf("Q(5): edge %d-%d not Hamming distance 1", u, he.To)
			}
		}
	}
}

func TestQDiameter(t *testing.T) {
	for k := 1; k <= 6; k++ {
		if d := Q(k).Diameter(); d != k {
			t.Errorf("Q(%d) diameter = %d, want %d", k, d, k)
		}
	}
}

func TestIsHypercube(t *testing.T) {
	if err := IsHypercube(Q(4), 4); err != nil {
		t.Errorf("Q(4) not recognized: %v", err)
	}
	// remove an edge: must fail
	g := graph.New(16)
	first := true
	for _, e := range Q(4).Edges() {
		if first {
			first = false
			continue
		}
		g.AddEdge(e.U, e.V, e.Kind)
	}
	if err := IsHypercube(g, 4); err == nil {
		t.Error("damaged hypercube accepted")
	}
	if err := IsHypercube(Q(3), 4); err == nil {
		t.Error("Q(3) accepted as Q(4)")
	}
}

func TestGeneralizedDegenerate(t *testing.T) {
	g := Generalized(1, 5) // K_5
	if g.NumNodes() != 5 || g.NumEdges() != 10 {
		t.Errorf("GHC(1,5) nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	g2 := Generalized(3, 2) // Q_3
	if err := IsHypercube(g2, 3); err != nil {
		t.Errorf("GHC(3,2) is not Q_3: %v", err)
	}
}

func TestGeneralized2D(t *testing.T) {
	// GHC(2, r): r^2 nodes, each of degree 2(r-1); rows and columns are cliques.
	r := 4
	g := Generalized(2, r)
	if g.NumNodes() != r*r {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 2*(r-1) {
			t.Fatalf("degree(%d) = %d, want %d", u, g.Degree(u), 2*(r-1))
		}
	}
	// total edges = r^2 * 2(r-1) / 2
	if g.NumEdges() != r*r*(r-1) {
		t.Errorf("edges = %d, want %d", g.NumEdges(), r*r*(r-1))
	}
	// same row => adjacent
	for a := 0; a < r; a++ {
		for b := a + 1; b < r; b++ {
			adj := false
			for _, he := range g.Neighbors(2*r + a) { // row 2 (stride of coord 0 is 1)
				if he.To == 2*r+b {
					adj = true
				}
			}
			if !adj {
				t.Fatalf("row clique missing edge %d-%d", a, b)
			}
		}
	}
}

func TestGeneralizedDiameterIsD(t *testing.T) {
	if d := Generalized(2, 3).Diameter(); d != 2 {
		t.Errorf("GHC(2,3) diameter = %d, want 2", d)
	}
}

func BenchmarkQ10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Q(10)
	}
}
