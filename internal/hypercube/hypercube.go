// Package hypercube builds binary hypercubes Q_k and generalized
// hypercubes (Bhuyan & Agrawal). Q_k is the nucleus of the paper's swap
// networks; the 2-dimensional radix-r generalized hypercube is the
// quotient graph that appears when the blocks of the recursive grid layout
// are contracted to supernodes (Section 3.2).
package hypercube

import (
	"fmt"

	"bfvlsi/internal/graph"
)

// Q returns the k-dimensional binary hypercube as a graph on 2^k nodes.
// Node IDs are the k-bit addresses; two nodes are adjacent iff their
// addresses differ in exactly one bit.
func Q(k int) *graph.Graph {
	if k < 0 || k > 30 {
		panic(fmt.Sprintf("hypercube: dimension %d out of range", k))
	}
	n := 1 << uint(k)
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for d := 0; d < k; d++ {
			v := u ^ (1 << uint(d))
			if v > u {
				g.AddEdge(u, v, graph.KindCube)
			}
		}
	}
	return g
}

// Generalized returns the d-dimensional radix-r generalized hypercube
// GHC(d, r): nodes are length-d vectors over [0, r); two nodes are
// adjacent iff they differ in exactly one coordinate. For d=2 this is the
// "rows and columns are cliques" graph of Section 3.2.
func Generalized(d, r int) *graph.Graph {
	if d < 1 || r < 1 {
		panic("hypercube: Generalized needs d >= 1, r >= 1")
	}
	n := 1
	for i := 0; i < d; i++ {
		n *= r
		if n > 1<<24 {
			panic("hypercube: Generalized too large")
		}
	}
	g := graph.New(n)
	// stride of coordinate i is r^i
	stride := make([]int, d)
	s := 1
	for i := 0; i < d; i++ {
		stride[i] = s
		s *= r
	}
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			ci := (u / stride[i]) % r
			for c := ci + 1; c < r; c++ {
				v := u + (c-ci)*stride[i]
				g.AddEdge(u, v, graph.KindCube)
			}
		}
	}
	return g
}

// IsHypercube verifies that g is exactly Q_k under the identity labeling:
// node u adjacent to precisely the k addresses u ^ 2^d. It returns a
// descriptive error on the first violation.
func IsHypercube(g *graph.Graph, k int) error {
	want := Q(k)
	if g.NumNodes() != want.NumNodes() {
		return fmt.Errorf("hypercube: node count %d, want %d", g.NumNodes(), want.NumNodes())
	}
	if !graph.SameEdgeMultiset(g.Simple(), want, true) {
		return fmt.Errorf("hypercube: edge set differs from Q_%d", k)
	}
	return nil
}
