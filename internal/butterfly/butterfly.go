// Package butterfly constructs n-dimensional butterfly networks B_n and
// provides the ascend-algorithm semantics the paper relies on.
//
// An R x R butterfly with R = 2^n rows has n+1 stages (columns) numbered
// 0..n, each with R nodes, so N = (n+1) * 2^n nodes in total. A node is
// the pair (row, stage). Between stage s and s+1 every node (r, s) has a
// straight link to (r, s+1) and a cross link to (r ^ 2^s, s+1): stage s
// "resolves" address bit s, exactly the flow graph of step s+1 of an
// ascend algorithm (paper, Section 2.2).
package butterfly

import (
	"fmt"

	"bfvlsi/internal/graph"
)

// Butterfly describes B_n together with the (row, stage) <-> node-ID
// mapping used to store it in a graph.
type Butterfly struct {
	// N is the dimension n.
	N int
	// Rows is 2^n.
	Rows int
	// Stages is n+1.
	Stages int
	// G is the underlying multigraph. Node IDs are ID(row, stage).
	G *graph.Graph
}

// MaxDim bounds the butterfly dimension so node counts stay in int range
// with room to spare; B_24 already has ~420M nodes.
const MaxDim = 24

// New constructs B_n.
func New(n int) *Butterfly {
	if n < 1 || n > MaxDim {
		panic(fmt.Sprintf("butterfly: dimension %d out of range [1,%d]", n, MaxDim))
	}
	rows := 1 << uint(n)
	stages := n + 1
	b := &Butterfly{N: n, Rows: rows, Stages: stages, G: graph.New(rows * stages)}
	for s := 0; s < n; s++ {
		bit := 1 << uint(s)
		for r := 0; r < rows; r++ {
			b.G.AddEdge(b.ID(r, s), b.ID(r, s+1), graph.KindStraight)
			b.G.AddEdge(b.ID(r, s), b.ID(r^bit, s+1), graph.KindCross)
		}
	}
	return b
}

// NumNodes returns N = (n+1) * 2^n.
func (b *Butterfly) NumNodes() int { return b.Rows * b.Stages }

// ID maps (row, stage) to the dense node ID.
func (b *Butterfly) ID(row, stage int) int {
	if row < 0 || row >= b.Rows || stage < 0 || stage >= b.Stages {
		panic(fmt.Sprintf("butterfly: (row=%d, stage=%d) out of range for B_%d", row, stage, b.N))
	}
	return stage*b.Rows + row
}

// RowStage is the inverse of ID.
func (b *Butterfly) RowStage(id int) (row, stage int) {
	if id < 0 || id >= b.NumNodes() {
		panic(fmt.Sprintf("butterfly: id %d out of range", id))
	}
	return id % b.Rows, id / b.Rows
}

// DimensionOf returns the address bit resolved between stage s and s+1.
func (b *Butterfly) DimensionOf(stage int) int {
	if stage < 0 || stage >= b.N {
		panic(fmt.Sprintf("butterfly: no dimension between stage %d and %d", stage, stage+1))
	}
	return stage
}

// Verify checks the defining structure of B_n: correct node count, every
// stage-s node has exactly one straight and one cross forward link with
// the right endpoints, first/last stages have degree 2 and interior
// stages degree 4.
func (b *Butterfly) Verify() error {
	if err := b.G.HandshakeOK(); err != nil {
		return err
	}
	if got, want := b.G.NumEdges(), 2*b.N*b.Rows; got != want {
		return fmt.Errorf("butterfly: edge count %d, want %d", got, want)
	}
	for s := 0; s < b.Stages; s++ {
		wantDeg := 4
		if s == 0 || s == b.N {
			wantDeg = 2
		}
		for r := 0; r < b.Rows; r++ {
			id := b.ID(r, s)
			if d := b.G.Degree(id); d != wantDeg {
				return fmt.Errorf("butterfly: node (%d,%d) degree %d, want %d", r, s, d, wantDeg)
			}
		}
	}
	// Spot-check forward edges from every node.
	for s := 0; s < b.N; s++ {
		bit := 1 << uint(s)
		for r := 0; r < b.Rows; r++ {
			id := b.ID(r, s)
			straight, cross := 0, 0
			for _, he := range b.G.Neighbors(id) {
				nr, ns := b.RowStage(he.To)
				if ns != s+1 {
					continue
				}
				switch {
				case nr == r && he.Kind == graph.KindStraight:
					straight++
				case nr == r^bit && he.Kind == graph.KindCross:
					cross++
				default:
					return fmt.Errorf("butterfly: bad forward edge (%d,%d)-(%d,%d) kind %v", r, s, nr, ns, he.Kind)
				}
			}
			if straight != 1 || cross != 1 {
				return fmt.Errorf("butterfly: node (%d,%d) forward links straight=%d cross=%d", r, s, straight, cross)
			}
		}
	}
	return nil
}

// IsButterfly reports whether g equals B_n under the identity labeling
// (same node-ID convention as New), ignoring edge kinds.
func IsButterfly(g *graph.Graph, n int) bool {
	want := New(n)
	return graph.SameEdgeMultiset(g, want.G, true)
}

// Ascend runs an ascend-style algorithm over the rows of the butterfly:
// at step i = 0..n-1, every pair of row values whose indices differ in bit
// i is combined by f, which receives (lowHalfValue, highHalfValue, bit)
// and returns their replacements. This is the communication pattern whose
// flow graph is exactly B_n; it is used by tests and by the FFT engine.
func (b *Butterfly) Ascend(vals []complex128, f func(lo, hi complex128, bit int) (complex128, complex128)) error {
	if len(vals) != b.Rows {
		return fmt.Errorf("butterfly: Ascend needs %d values, got %d", b.Rows, len(vals))
	}
	for i := 0; i < b.N; i++ {
		bit := 1 << uint(i)
		for r := 0; r < b.Rows; r++ {
			if r&bit != 0 {
				continue
			}
			lo, hi := f(vals[r], vals[r|bit], i)
			vals[r], vals[r|bit] = lo, hi
		}
	}
	return nil
}

// WrapAround returns the wrapped butterfly: B_n with stage n merged into
// stage 0 (each row's last node identified with its first). The result
// has n * 2^n nodes; node IDs are stage*Rows + row with stages 0..n-1.
// Wrapped butterflies are the topology used in several commercial
// machines the paper's introduction mentions; we provide it so routing
// experiments can use either flavor.
func WrapAround(n int) *graph.Graph {
	if n < 2 || n > MaxDim {
		panic(fmt.Sprintf("butterfly: wrap-around dimension %d out of range [2,%d]", n, MaxDim))
	}
	rows := 1 << uint(n)
	g := graph.New(rows * n)
	id := func(r, s int) int { return s*rows + r }
	for s := 0; s < n; s++ {
		next := (s + 1) % n
		bit := 1 << uint(s)
		for r := 0; r < rows; r++ {
			g.AddEdge(id(r, s), id(r, next), graph.KindStraight)
			g.AddEdge(id(r, s), id(r^bit, next), graph.KindCross)
		}
	}
	return g
}
