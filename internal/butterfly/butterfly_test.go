package butterfly

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"bfvlsi/internal/graph"
)

func TestNewCounts(t *testing.T) {
	for n := 1; n <= 8; n++ {
		b := New(n)
		if b.Rows != 1<<uint(n) || b.Stages != n+1 {
			t.Fatalf("B_%d rows=%d stages=%d", n, b.Rows, b.Stages)
		}
		if b.NumNodes() != (n+1)*(1<<uint(n)) {
			t.Fatalf("B_%d nodes = %d", n, b.NumNodes())
		}
		if b.G.NumEdges() != 2*n*(1<<uint(n)) {
			t.Fatalf("B_%d edges = %d", n, b.G.NumEdges())
		}
	}
}

func TestVerify(t *testing.T) {
	for n := 1; n <= 7; n++ {
		if err := New(n).Verify(); err != nil {
			t.Errorf("B_%d: %v", n, err)
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	b := New(3)
	// Rebuild with one cross edge redirected to the wrong row.
	g := graph.New(b.NumNodes())
	corrupted := false
	for _, e := range b.G.Edges() {
		if !corrupted && e.Kind == graph.KindCross {
			// Redirect the first cross edge's far endpoint to a wrong row
			// within the same stage.
			r, s := b.RowStage(e.V)
			e.V = b.ID(r^(b.Rows-1), s) // complement the row bits
			corrupted = true
		}
		g.AddEdge(e.U, e.V, e.Kind)
	}
	if !corrupted {
		t.Fatal("no cross edge found to corrupt")
	}
	b2 := &Butterfly{N: b.N, Rows: b.Rows, Stages: b.Stages, G: g}
	if err := b2.Verify(); err == nil {
		t.Error("corrupted butterfly passed Verify")
	}
}

func TestIDRoundTrip(t *testing.T) {
	b := New(5)
	for s := 0; s < b.Stages; s++ {
		for r := 0; r < b.Rows; r++ {
			row, stage := b.RowStage(b.ID(r, s))
			if row != r || stage != s {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", r, s, row, stage)
			}
		}
	}
}

func TestIDPanics(t *testing.T) {
	b := New(3)
	for _, c := range [][2]int{{-1, 0}, {8, 0}, {0, -1}, {0, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ID(%d,%d) did not panic", c[0], c[1])
				}
			}()
			b.ID(c[0], c[1])
		}()
	}
}

func TestIsButterfly(t *testing.T) {
	if !IsButterfly(New(4).G, 4) {
		t.Error("B_4 not recognized")
	}
	if IsButterfly(New(3).G, 4) {
		t.Error("B_3 accepted as B_4")
	}
}

func TestDimensionOf(t *testing.T) {
	b := New(4)
	for s := 0; s < 4; s++ {
		if b.DimensionOf(s) != s {
			t.Errorf("DimensionOf(%d) = %d", s, b.DimensionOf(s))
		}
	}
}

func TestConnectedAndDiameter(t *testing.T) {
	b := New(4)
	if !b.G.Connected() {
		t.Fatal("B_4 disconnected")
	}
	// Diameter of B_n is 2n (stage-0 row to stage-0 row through the far end).
	if d := b.G.Diameter(); d != 8 {
		t.Errorf("B_4 diameter = %d, want 8", d)
	}
}

// Ascend with XOR-style combine must realize a bit-reversal-free butterfly
// exchange: summing all values with +/- signs per dimension gives the
// Walsh-Hadamard transform; WHT applied twice is N * identity.
func TestAscendWalshHadamardInvolution(t *testing.T) {
	b := New(5)
	rng := rand.New(rand.NewSource(7))
	orig := make([]complex128, b.Rows)
	for i := range orig {
		orig[i] = complex(rng.Float64()*2-1, 0)
	}
	vals := append([]complex128(nil), orig...)
	wht := func(lo, hi complex128, _ int) (complex128, complex128) {
		return lo + hi, lo - hi
	}
	if err := b.Ascend(vals, wht); err != nil {
		t.Fatal(err)
	}
	if err := b.Ascend(vals, wht); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		want := orig[i] * complex(float64(b.Rows), 0)
		if cmplx.Abs(vals[i]-want) > 1e-9 {
			t.Fatalf("WHT involution failed at %d: got %v want %v", i, vals[i], want)
		}
	}
}

func TestAscendLengthCheck(t *testing.T) {
	b := New(3)
	if err := b.Ascend(make([]complex128, 4), func(a, c complex128, _ int) (complex128, complex128) { return a, c }); err == nil {
		t.Error("Ascend accepted wrong-length input")
	}
}

// Ascend's flow graph is the butterfly: value at output row r must depend
// on all input rows (full mixing). Check by running with basis vectors.
func TestAscendFullMixing(t *testing.T) {
	b := New(3)
	for src := 0; src < b.Rows; src++ {
		vals := make([]complex128, b.Rows)
		vals[src] = 1
		_ = b.Ascend(vals, func(lo, hi complex128, _ int) (complex128, complex128) {
			return lo + hi, lo + hi
		})
		for r, v := range vals {
			if math.Abs(real(v)-1) > 1e-12 {
				t.Fatalf("input %d did not reach output %d (got %v)", src, r, v)
			}
		}
	}
}

func TestWrapAround(t *testing.T) {
	n := 3
	g := WrapAround(n)
	rows := 1 << uint(n)
	if g.NumNodes() != n*rows {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every node in a wrapped butterfly has degree 4.
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
	if !g.Connected() {
		t.Error("wrapped butterfly disconnected")
	}
	if g.NumEdges() != 2*n*rows {
		t.Errorf("edges = %d, want %d", g.NumEdges(), 2*n*rows)
	}
}

func BenchmarkNewB10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		New(10)
	}
}

func BenchmarkVerifyB10(b *testing.B) {
	bf := New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bf.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
