// Package render draws grid layouts as SVG, making the constructions
// inspectable: Figure 3's block grid and track bands, Figure 4's
// collinear tracks, and the multilayer wiring (one color per layer) can
// all be regenerated as images from the actual built geometry.
package render

import (
	"bufio"
	"fmt"
	"io"

	"bfvlsi/internal/grid"
)

// Options controls the SVG output.
type Options struct {
	// Scale multiplies grid units into SVG user units (default 2).
	Scale int
	// Margin in grid units around the bounding box (default 4).
	Margin int
	// OnlyLayer, if positive, draws wires of that layer alone.
	OnlyLayer int
	// NodeFill overrides the node box color.
	NodeFill string
	// Labels adds wire labels as <title> children (hover text); large
	// layouts are better without.
	Labels bool
}

// layerPalette cycles for wire layers 1, 2, 3, ...
var layerPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
	"#ff7f0e", "#8c564b", "#17becf", "#bcbd22",
	"#e377c2", "#7f7f7f", "#aec7e8", "#ffbb78",
	"#98df8a", "#ff9896", "#c5b0d5", "#c49c94",
}

// LayerColor returns the palette color of a 1-based wiring layer.
func LayerColor(layer int) string {
	return layerPalette[(layer-1)%len(layerPalette)]
}

// SVG writes the layout as an SVG document.
func SVG(w io.Writer, l *grid.Layout, opts Options) error {
	scale := opts.Scale
	if scale == 0 {
		scale = 2
	}
	if scale < 1 {
		return fmt.Errorf("render: scale %d < 1", scale)
	}
	margin := opts.Margin
	if margin == 0 {
		margin = 4
	}
	nodeFill := opts.NodeFill
	if nodeFill == "" {
		nodeFill = "#e8e8e8"
	}
	bb := l.BoundingBox()
	ox, oy := bb.X0-margin, bb.Y0-margin
	width := (bb.Width() + 2*margin) * scale
	height := (bb.Height() + 2*margin) * scale
	// SVG y grows downward; flip so higher grid y draws higher.
	tx := func(x int) int { return (x - ox) * scale }
	ty := func(y int) int { return height - (y-oy)*scale }

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(bw, `<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", width, height)

	fmt.Fprintln(bw, `<g stroke="#777" stroke-width="0.5">`)
	for i := range l.Nodes {
		r := l.Nodes[i].Rect
		fmt.Fprintf(bw, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			tx(r.X0), ty(r.Y1)-scale, (r.Width())*scale, (r.Height())*scale, nodeFill)
	}
	fmt.Fprintln(bw, `</g>`)

	for i := range l.Wires {
		wire := &l.Wires[i]
		for _, seg := range wire.Segs {
			if opts.OnlyLayer > 0 && seg.Layer != opts.OnlyLayer {
				continue
			}
			fmt.Fprintf(bw, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="1"`,
				tx(seg.Seg.A.X), ty(seg.Seg.A.Y), tx(seg.Seg.B.X), ty(seg.Seg.B.Y),
				LayerColor(seg.Layer))
			if opts.Labels {
				fmt.Fprintf(bw, `><title>%s (layer %d)</title></line>`+"\n", escape(wire.Label), seg.Layer)
			} else {
				fmt.Fprintln(bw, `/>`)
			}
		}
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

func escape(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case '<':
			out = append(out, []rune("&lt;")...)
		case '>':
			out = append(out, []rune("&gt;")...)
		case '&':
			out = append(out, []rune("&amp;")...)
		default:
			out = append(out, r)
		}
	}
	return string(out)
}
