package render

import (
	"fmt"
	"io"
	"strings"

	"bfvlsi/internal/grid"
)

// ASCII draws small layouts as text, one character per grid cell - handy
// for terminal inspection and golden tests. Cells: '#' node boundary,
// '-' horizontal wire, '|' vertical wire, '+' wire bend or crossing,
// '.' empty. Layouts wider or taller than maxDim are refused (the output
// would be unreadable anyway).
func ASCII(w io.Writer, l *grid.Layout, maxDim int) error {
	if maxDim <= 0 {
		maxDim = 120
	}
	bb := l.BoundingBox()
	if bb.Width() > maxDim || bb.Height() > maxDim {
		return fmt.Errorf("render: layout %dx%d exceeds ASCII limit %d", bb.Width(), bb.Height(), maxDim)
	}
	width, height := bb.Width(), bb.Height()
	cells := make([][]byte, height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(".", width))
	}
	put := func(x, y int, c byte) {
		cx, cy := x-bb.X0, y-bb.Y0
		if cx < 0 || cx >= width || cy < 0 || cy >= height {
			return
		}
		row := height - 1 - cy // y grows upward
		prev := cells[row][cx]
		switch {
		case prev == '.':
			cells[row][cx] = c
		case prev == c:
		case prev == '#' || c == '#':
			cells[row][cx] = '#'
		default:
			cells[row][cx] = '+'
		}
	}
	for _, n := range l.Nodes {
		r := n.Rect
		for x := r.X0; x <= r.X1; x++ {
			for y := r.Y0; y <= r.Y1; y++ {
				put(x, y, '#')
			}
		}
	}
	for i := range l.Wires {
		for _, s := range l.Wires[i].Segs {
			if s.Seg.Horizontal() {
				span := s.Seg.XSpan()
				for x := span.Lo; x <= span.Hi; x++ {
					put(x, s.Seg.A.Y, '-')
				}
			} else {
				span := s.Seg.YSpan()
				for y := span.Lo; y <= span.Hi; y++ {
					put(s.Seg.A.X, y, '|')
				}
			}
		}
	}
	for _, row := range cells {
		if _, err := fmt.Fprintf(w, "%s\n", row); err != nil {
			return err
		}
	}
	return nil
}
