package render

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/thompson"
)

func smallLayout(t *testing.T) *grid.Layout {
	t.Helper()
	l := grid.NewLayout(grid.Thompson, 2)
	l.AddNode("a", geom.NewRect(0, 0, 3, 3))
	l.AddNode("b", geom.NewRect(10, 0, 13, 3))
	if err := l.AddWireHV("w", geom.Point{X: 3, Y: 1}, geom.Point{X: 7, Y: 1}, geom.Point{X: 7, Y: 2}, geom.Point{X: 10, Y: 2}); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, smallLayout(t), Options{Labels: true}); err != nil {
		t.Fatal(err)
	}
	// Must be parseable XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	elems := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("invalid XML: %v", err)
		}
		if _, ok := tok.(xml.StartElement); ok {
			elems++
		}
	}
	if elems < 5 {
		t.Errorf("suspiciously few elements: %d", elems)
	}
	s := buf.String()
	if c := strings.Count(s, "<rect"); c != 3 { // background + 2 nodes
		t.Errorf("rects = %d, want 3", c)
	}
	if c := strings.Count(s, "<line"); c != 3 { // 3 wire segments
		t.Errorf("lines = %d, want 3", c)
	}
	if !strings.Contains(s, "<title>w (layer") {
		t.Error("label title missing")
	}
}

func TestSVGLayerFilter(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, smallLayout(t), Options{OnlyLayer: 2}); err != nil {
		t.Fatal(err)
	}
	// Only the single vertical segment is on layer 2.
	if c := strings.Count(buf.String(), "<line"); c != 1 {
		t.Errorf("layer-2 lines = %d, want 1", c)
	}
}

func TestSVGEscaping(t *testing.T) {
	l := grid.NewLayout(grid.Thompson, 2)
	if err := l.AddWireHV("a<&>b", geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVG(&buf, l, Options{Labels: true}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a<&>b") {
		t.Error("unescaped label in output")
	}
	if !strings.Contains(buf.String(), "a&lt;&amp;&gt;b") {
		t.Error("escaped label missing")
	}
}

func TestSVGRejectsBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(&buf, smallLayout(t), Options{Scale: -1}); err == nil {
		t.Error("negative scale accepted")
	}
}

func TestLayerColorCycles(t *testing.T) {
	if LayerColor(1) == LayerColor(2) {
		t.Error("adjacent layers share a color")
	}
	if LayerColor(1) != LayerColor(1+len(layerPalette)) {
		t.Error("palette does not cycle")
	}
}

func TestSVGButterflyLayout(t *testing.T) {
	res, err := thompson.Build(thompson.Params{Spec: bitutil.MustGroupSpec(1, 1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVG(&buf, res.L, Options{}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// 8 rows x 4 stages of nodes + background.
	if c := strings.Count(s, "<rect"); c != 1+32 {
		t.Errorf("rects = %d, want 33", c)
	}
	// Every butterfly link contributes at least one segment.
	if c := strings.Count(s, "<line"); c < 2*3*8 {
		t.Errorf("lines = %d, want >= 48", c)
	}
}

func TestSVGCollinearFigure4(t *testing.T) {
	ta := collinear.MustOptimal(9)
	l, err := collinear.ToLayout(ta, collinear.LayoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SVG(&buf, l, Options{Scale: 3}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 1000 {
		t.Error("suspiciously small SVG")
	}
}

func BenchmarkSVGMedium(b *testing.B) {
	res, err := thompson.Build(thompson.Params{Spec: bitutil.MustGroupSpec(2, 2, 2)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := SVG(&buf, res.L, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestASCIISmallLayout(t *testing.T) {
	l := grid.NewLayout(grid.Thompson, 2)
	l.AddNode("a", geom.NewRect(0, 0, 1, 1))
	l.AddNode("b", geom.NewRect(6, 0, 7, 1))
	if err := l.AddWireHV("w", geom.Point{X: 1, Y: 1}, geom.Point{X: 6, Y: 1}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ASCII(&buf, l, 0); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "##----##\n##....##\n"
	if got != want {
		t.Errorf("ascii:\n%s\nwant:\n%s", got, want)
	}
}

func TestASCIIBendsAndCrossings(t *testing.T) {
	l := grid.NewLayout(grid.Thompson, 2)
	// An L-shaped wire and a crossing wire.
	if err := l.AddWireHV("a", geom.Point{X: 0, Y: 0}, geom.Point{X: 4, Y: 0}, geom.Point{X: 4, Y: 4}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddWireHV("b", geom.Point{X: 0, Y: 2}, geom.Point{X: 8, Y: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ASCII(&buf, l, 0); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "+") {
		t.Errorf("no bend/cross marker:\n%s", s)
	}
	if !strings.Contains(s, "|") || !strings.Contains(s, "-") {
		t.Errorf("wire characters missing:\n%s", s)
	}
}

func TestASCIIRefusesHuge(t *testing.T) {
	l := grid.NewLayout(grid.Thompson, 2)
	if err := l.AddWireHV("long", geom.Point{X: 0, Y: 0}, geom.Point{X: 500, Y: 0}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ASCII(&buf, l, 120); err == nil {
		t.Error("oversized layout accepted")
	}
}

func TestASCIICollinearK4(t *testing.T) {
	ta := collinear.MustOptimal(4)
	l, err := collinear.ToLayout(ta, collinear.LayoutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ASCII(&buf, l, 120); err != nil {
		t.Fatal(err)
	}
	// 4 tracks above the node row.
	lines := strings.Count(buf.String(), "\n")
	if lines != 5 {
		t.Errorf("K_4 ascii has %d lines, want 5:\n%s", lines, buf.String())
	}
}
