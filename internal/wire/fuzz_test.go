package wire

import (
	"bytes"
	"encoding"
	"testing"

	"bfvlsi/internal/routing"
)

// decoders instantiates one zero value per wire type; the fuzzer feeds
// the same raw bytes to all of them.
func decoders() []binaryCodec {
	return []binaryCodec{
		&Graph{}, &LayoutSpec{}, &LayoutResult{},
		&PackagingSpec{}, &PackagingPlan{},
		&FaultSpec{}, &RouteSpec{}, &RouteResult{}, &SweepSpec{},
	}
}

// FuzzWireDecode feeds arbitrary bytes to every decoder. The contract
// under test: decode never panics, and whenever decode succeeds the
// re-encoding is byte-identical to the input (the canonical-form
// invariant behind content addressing).
func FuzzWireDecode(f *testing.F) {
	seed := func(v encoding.BinaryMarshaler) {
		b, err := v.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	g, err := GraphFromButterfly(2)
	if err != nil {
		f.Fatal(err)
	}
	seed(g)
	seed(&LayoutSpec{Family: FamilyCollinear, N: 4})
	seed(&LayoutSpec{Family: FamilyThompson, Widths: []int{2, 2}})
	seed(&PackagingSpec{N: 4, Variant: VariantNucleus})
	seed(&PackagingPlan{Desc: "x", NumModules: 2, ModuleOf: []int{0, 1}})
	seed(&FaultSpec{N: 3, LinkRate: 0.1, Seed: 1})
	seed(&RouteSpec{N: 3, Lambda: 0.05, Cycles: 10, Pattern: routing.Shuffle})
	seed(&RouteResult{Nodes: 8, Injected: 3, Delivered: 3})
	seed(&SweepSpec{N: 3, Lambda: 0.05, Cycles: 20, Rates: []float64{0, 0.1}})
	f.Add([]byte{})
	f.Add([]byte{'B', 'F'})
	f.Add([]byte{'B', 'F', TypeGraph, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, d := range decoders() {
			if err := d.UnmarshalBinary(data); err != nil {
				continue
			}
			re, err := d.MarshalBinary()
			if err != nil {
				t.Fatalf("%T: decoded ok but re-encode failed: %v", d, err)
			}
			if !bytes.Equal(re, data) {
				t.Fatalf("%T: accepted non-canonical input:\n in=%x\nout=%x", d, data, re)
			}
		}
	})
}

// FuzzRouteSpecRoundTrip builds structured specs from fuzz arguments:
// any spec that validates must round-trip byte-identically, and any
// decodable encoding must validate back.
func FuzzRouteSpecRoundTrip(f *testing.F) {
	f.Add(4, 0.05, 100, 500, int64(42), 4, 64, 1, 1, false)
	f.Add(3, 0.5, 0, 10, int64(-1), 0, 0, 4, 0, true)
	f.Fuzz(func(t *testing.T, n int, lambda float64, warmup, cycles int,
		seed int64, bufLimit, ttl, pattern, policy int, withFault bool) {
		spec := &RouteSpec{
			N: n, Lambda: lambda, Warmup: warmup, Cycles: cycles, Seed: seed,
			BufferLimit: bufLimit, TTL: ttl,
			Pattern: routing.Pattern(pattern), Policy: routing.Policy(policy),
		}
		if withFault {
			spec.Fault = &FaultSpec{N: n, LinkRate: 0.1, Seed: seed}
		}
		if spec.Validate() != nil {
			return
		}
		b1, err := spec.MarshalBinary()
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		var out RouteSpec
		if err := out.UnmarshalBinary(b1); err != nil {
			t.Fatalf("own encoding failed to decode: %v", err)
		}
		b2, err := out.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("re-encode differs:\n b1=%x\n b2=%x", b1, b2)
		}
	})
}

// FuzzLayoutSpecRoundTrip does the same for layout specs across all
// four families.
func FuzzLayoutSpecRoundTrip(f *testing.F) {
	f.Add(0, 8, 0, 0, 0, 0, false, 0, false, 0, 0, 0)
	f.Add(1, 0, 2, 2, 2, 4, true, 6, false, 0, 0, 0)
	f.Add(2, 0, 2, 2, 2, 2, false, 0, false, 2, 0, 0)
	f.Add(3, 9, 0, 0, 0, 0, false, 0, false, 0, 64, 20)
	f.Fuzz(func(t *testing.T, family, n, w1, w2, w3, layers int, multi bool,
		nodeSide int, noReorder bool, sliceLayers, maxPins, chipSide int) {
		var widths []int
		for _, w := range []int{w1, w2, w3} {
			if w != 0 {
				widths = append(widths, w)
			}
		}
		spec := &LayoutSpec{
			Family: Family(family), N: n, Widths: widths,
			Layers: layers, Multilayer: multi, NodeSide: nodeSide,
			NoTrackReorder: noReorder, SliceLayers: sliceLayers,
			MaxPins: maxPins, ChipSide: chipSide,
		}
		if spec.Validate() != nil {
			return
		}
		b1, err := spec.MarshalBinary()
		if err != nil {
			t.Fatalf("valid spec failed to marshal: %v", err)
		}
		var out LayoutSpec
		if err := out.UnmarshalBinary(b1); err != nil {
			t.Fatalf("own encoding failed to decode: %v", err)
		}
		b2, err := out.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("re-encode differs:\n b1=%x\n b2=%x", b1, b2)
		}
	})
}
