// Package wire is the compact, versioned binary serialization layer for
// the repository's reusable artifacts: butterfly graphs, layout specs
// and results (collinear / thompson / stack3d / hierarchy), packaging
// plans, fault plans, and routing results.
//
// Every message is framed as
//
//	byte 0-1  magic "BF"
//	byte 2    type tag (one per marshalable type; see the Type constants)
//	byte 3    format version of that type (see the Version constants)
//	byte 4-   body
//
// and the body is built from four primitives: minimal-length unsigned
// varints, minimal-length zigzag varints, big-endian IEEE-754 float64s,
// and length-prefixed byte strings. The encoding is canonical: a value
// has exactly one valid byte representation. Decoders reject
// non-minimal varints, NaN floats, out-of-order edge or extra lists,
// trailing bytes, and over-long length prefixes, so for every type
//
//	Unmarshal(b) == nil  =>  Marshal(Unmarshal(b)) == b
//
// byte for byte. This is what makes the encoding safe to use as a
// content address: internal/serve keys its artifact cache by the
// SHA-256 of a spec's canonical encoding.
//
// Versioning and compatibility rules (see DESIGN.md section 9):
//
//   - The version byte is per type, not global. Adding a new field to a
//     type bumps that type's version; all other types keep theirs.
//   - Decoders accept exactly the versions they know and reject newer
//     ones with ErrVersion - a v1 decoder never silently misreads v2
//     bytes.
//   - Type tags are never reused or renumbered; retired types leave a
//     hole in the tag space.
//   - Corrupt input must produce an error, never a panic; the fuzzers
//     in fuzz_test.go enforce this.
//
// The field schema of every marshalable type is pinned by the committed
// schema.lock manifest in this directory, checked by the schemalock
// analyzer (see DESIGN.md section 13). To change a type's fields:
// bump its Version constant below, update both encode and decode paths
// (the wirecover analyzer checks they stay mirror images), regenerate
// the manifest with `bflint -writeschema`, and refresh the golden
// frames with `go test ./internal/wire -run TestGoldenFrames -update`.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type tags. Never renumber or reuse these: the tag is part of every
// persisted encoding.
const (
	TypeGraph         byte = 1
	TypeLayoutSpec    byte = 2
	TypeLayoutResult  byte = 3
	TypePackagingSpec byte = 4
	TypePackagingPlan byte = 5
	TypeFaultSpec     byte = 6
	TypeRouteSpec     byte = 7
	TypeRouteResult   byte = 8
	TypeSweepSpec     byte = 9
	// Tags 10-12 belong to the checkpoint layer: the stack spec and
	// checkpoint frames live in internal/snapshot and the sweep-farm
	// journal record in internal/sweepfarm, all built on this package's
	// Encoder/Decoder so the canonical-encoding contract carries over.
	TypeSimSpec    byte = 10
	TypeCheckpoint byte = 11
	TypeSweepPoint byte = 12
)

// Current format versions, one per type tag.
const (
	VersionGraph         byte = 1
	VersionLayoutSpec    byte = 1
	VersionLayoutResult  byte = 1
	VersionPackagingSpec byte = 1
	VersionPackagingPlan byte = 1
	VersionFaultSpec     byte = 1
	VersionRouteSpec     byte = 1
	VersionRouteResult   byte = 1
	VersionSweepSpec     byte = 1
	VersionSimSpec       byte = 1
	VersionCheckpoint    byte = 1
	VersionSweepPoint    byte = 1
)

// magic is the two-byte frame prefix of every wire message.
var magic = [2]byte{'B', 'F'}

// Sentinel decode errors; all decode failures wrap one of these.
var (
	// ErrTruncated marks input that ends before the structure does.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrMagic marks input that does not start with the "BF" frame.
	ErrMagic = errors.New("wire: bad magic")
	// ErrType marks a frame whose type tag is not the decoder's.
	ErrType = errors.New("wire: wrong type tag")
	// ErrVersion marks a frame version this decoder does not know.
	ErrVersion = errors.New("wire: unsupported version")
	// ErrCanonical marks structurally readable input that is not the
	// canonical encoding of any value (non-minimal varint, NaN float,
	// unsorted list, trailing bytes, over-long length prefix).
	ErrCanonical = errors.New("wire: non-canonical encoding")
	// ErrRange marks a field whose decoded value is outside its
	// representable range (e.g. an int field that overflows int).
	ErrRange = errors.New("wire: value out of range")
)

// maxStringLen bounds every length-prefixed string; real descriptions
// are tens of bytes.
const maxStringLen = 1 << 16

// ---- encoder ----

// enc accumulates a canonical encoding. The zero value is ready to use
// after header.
type enc struct {
	buf []byte
}

func newEnc(typ, version byte) *enc {
	return &enc{buf: []byte{magic[0], magic[1], typ, version}}
}

func (e *enc) uvarint(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) varint(v int64)    { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) uint(v int)        { e.uvarint(uint64(v)) }
func (e *enc) int(v int)         { e.varint(int64(v)) }
func (e *enc) bool(v bool)       { e.buf = append(e.buf, boolByte(v)) }
func (e *enc) float64(v float64) { e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v)) }

func (e *enc) string(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// ---- decoder ----

// dec consumes a canonical encoding. The first error sticks; callers
// check d.err once at the end (every getter returns a zero value after
// an error).
type dec struct {
	buf []byte
	off int
	err error
}

// header validates the frame and positions the decoder at the body.
func newDec(data []byte, typ, version byte) *dec {
	d := &dec{buf: data}
	if len(data) < 4 {
		d.err = fmt.Errorf("%w: %d-byte input is shorter than the 4-byte header", ErrTruncated, len(data))
		return d
	}
	if data[0] != magic[0] || data[1] != magic[1] {
		d.err = fmt.Errorf("%w: got %q", ErrMagic, data[:2])
		return d
	}
	if data[2] != typ {
		d.err = fmt.Errorf("%w: got tag %d, want %d", ErrType, data[2], typ)
		return d
	}
	if data[3] != version {
		d.err = fmt.Errorf("%w: got version %d, this decoder knows only %d", ErrVersion, data[3], version)
		return d
	}
	d.off = 4
	return d
}

func (d *dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) rem() int { return len(d.buf) - d.off }

// uvarint reads a minimal-length unsigned varint.
func (d *dec) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: unterminated or oversized uvarint at offset %d", ErrTruncated, d.off))
		return 0
	}
	if n != uvarintLen(v) {
		d.fail(fmt.Errorf("%w: non-minimal uvarint at offset %d", ErrCanonical, d.off))
		return 0
	}
	d.off += n
	return v
}

// varint reads a minimal-length zigzag varint.
func (d *dec) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(fmt.Errorf("%w: unterminated or oversized varint at offset %d", ErrTruncated, d.off))
		return 0
	}
	zig := uint64(v) << 1
	if v < 0 {
		zig = ^zig
	}
	if n != uvarintLen(zig) {
		d.fail(fmt.Errorf("%w: non-minimal varint at offset %d", ErrCanonical, d.off))
		return 0
	}
	d.off += n
	return v
}

// uint reads a non-negative value that must fit in int.
func (d *dec) uint() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(math.MaxInt) {
		d.fail(fmt.Errorf("%w: %d overflows int", ErrRange, v))
		return 0
	}
	return int(v)
}

// int reads a signed value that must fit in int.
func (d *dec) int() int {
	v := d.varint()
	if d.err == nil && (v > math.MaxInt || v < math.MinInt) {
		d.fail(fmt.Errorf("%w: %d overflows int", ErrRange, v))
		return 0
	}
	return int(v)
}

func (d *dec) bool() bool {
	if d.err != nil {
		return false
	}
	if d.rem() < 1 {
		d.fail(fmt.Errorf("%w: missing bool at offset %d", ErrTruncated, d.off))
		return false
	}
	b := d.buf[d.off]
	if b > 1 {
		d.fail(fmt.Errorf("%w: bool byte %d at offset %d", ErrCanonical, b, d.off))
		return false
	}
	d.off++
	return b == 1
}

func (d *dec) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.rem() < 8 {
		d.fail(fmt.Errorf("%w: missing float64 at offset %d", ErrTruncated, d.off))
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	if math.IsNaN(v) {
		d.fail(fmt.Errorf("%w: NaN float64 at offset %d", ErrCanonical, d.off))
		return 0
	}
	d.off += 8
	return v
}

func (d *dec) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.fail(fmt.Errorf("%w: string length %d exceeds cap %d", ErrRange, n, maxStringLen))
		return ""
	}
	if uint64(d.rem()) < n {
		d.fail(fmt.Errorf("%w: string of %d bytes with only %d remaining", ErrTruncated, n, d.rem()))
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// listLen reads an element count and rejects counts that cannot fit in
// the remaining bytes (every element occupies at least minBytes), so a
// corrupt length prefix cannot force a huge allocation.
func (d *dec) listLen(minBytes int) int {
	n := d.uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.rem()/minBytes) {
		d.fail(fmt.Errorf("%w: list of %d elements cannot fit in %d remaining bytes", ErrTruncated, n, d.rem()))
		return 0
	}
	return int(n)
}

// finish rejects trailing bytes and returns the sticky error.
func (d *dec) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.rem() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after the structure", ErrCanonical, d.rem())
	}
	return nil
}

// uvarintLen returns the minimal encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
