package wire

import (
	"bytes"
	"encoding"
	"errors"
	"math"
	"reflect"
	"testing"

	"bfvlsi/internal/graph"
	"bfvlsi/internal/routing"
)

// binaryCodec pairs both halves of the standard marshaling interfaces.
type binaryCodec interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// sampleValues returns one representative populated value per
// marshalable type; every round-trip and framing test runs over all of
// them, so adding a type here extends the whole property suite.
func sampleValues(t *testing.T) map[string]binaryCodec {
	t.Helper()
	g, err := GraphFromButterfly(3)
	if err != nil {
		t.Fatal(err)
	}
	rr := RouteResult{
		Nodes: 64, Injected: 100, Delivered: 95,
		Throughput: 0.031, AvgLatency: 7.25, AvgHops: 6.5,
		MaxQueue: 3, Backlog: 5, BoundaryCrossingsPerCycle: 1.5,
		InjectionDrops: 1, Stalls: 2, Dropped: 3, Unreachable: 6,
		Misroutes: 4, Detours: 2, Reroutes: 1,
		UnreachableDead: 3, UnreachableCut: 2, UnreachableDetected: 1,
		Retransmitted: 9, DuplicatesDropped: 2, GaveUp: 1,
		TotalInjected: 130, TotalDelivered: 118,
	}
	return map[string]binaryCodec{
		"graph": g,
		"layoutSpec": &LayoutSpec{
			Family: FamilyThompson, Widths: []int{2, 2, 2},
			Layers: 4, Multilayer: true, NodeSide: 6, NoTrackReorder: true,
		},
		"layoutResult": &LayoutResult{
			Family: FamilyThompson,
			Extras: []Extra{{Name: "blockWidth", Value: 41}, {Name: "gridCols", Value: 4}},
		},
		"packagingSpec": &PackagingSpec{N: 6, Variant: VariantNaive, RowsPerModule: 8},
		"packagingPlan": &PackagingPlan{
			Desc: "row partition", NumModules: 4, ModuleOf: []int{0, 1, 2, 3, 3, 2, 1, 0},
		},
		"faultSpec": &FaultSpec{
			N: 5, LinkRate: 0.05, NodeRate: 0.01, Seed: -7,
			TransientCount: 3, TransientHorizon: 100, TransientRepair: 20,
			Events: []FaultEvent{{Node: 4, Out: 1, Start: 10, RepairAfter: 5}, {Node: 9, Out: -1, Start: 0}},
		},
		"routeSpec": &RouteSpec{
			N: 4, Lambda: 0.05, Warmup: 100, Cycles: 500, Seed: 42,
			BufferLimit: 4, TTL: 64, Pattern: routing.Shuffle, Policy: routing.DropDead,
			Fault: &FaultSpec{N: 4, LinkRate: 0.02, Seed: 3},
		},
		"routeResult": &rr,
		"sweepSpec": &SweepSpec{
			N: 4, Lambda: 0.05, Warmup: 50, Cycles: 200, Seed: 9,
			TTL: 32, Rates: []float64{0, 0.01, 0.05},
		},
	}
}

// newValue returns a fresh zero value of the same concrete type.
func newValue(v binaryCodec) binaryCodec {
	return reflect.New(reflect.TypeOf(v).Elem()).Interface().(binaryCodec)
}

// The acceptance property: encode -> decode -> encode is byte-identical
// for every marshalable type, and the decoded value equals the
// original.
func TestRoundTripByteIdentity(t *testing.T) {
	for name, v := range sampleValues(t) {
		t.Run(name, func(t *testing.T) {
			b1, err := v.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			dec := newValue(v)
			if err := dec.UnmarshalBinary(b1); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if !reflect.DeepEqual(v, dec) {
				t.Fatalf("decode mismatch:\n got %+v\nwant %+v", dec, v)
			}
			b2, err := dec.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("re-encode differs:\n b1=%x\n b2=%x", b1, b2)
			}
		})
	}
}

// Framing errors: wrong magic, wrong tag, future version, truncation at
// every prefix length, and trailing garbage all must error (never
// panic) for every type.
func TestDecodeFraming(t *testing.T) {
	for name, v := range sampleValues(t) {
		t.Run(name, func(t *testing.T) {
			b, err := v.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			check := func(data []byte, want error) {
				t.Helper()
				err := newValue(v).UnmarshalBinary(data)
				if err == nil {
					t.Fatalf("decode of corrupted input succeeded")
				}
				if want != nil && !errors.Is(err, want) {
					t.Fatalf("error %v, want %v", err, want)
				}
			}
			bad := bytes.Clone(b)
			bad[0] = 'X'
			check(bad, ErrMagic)

			bad = bytes.Clone(b)
			bad[2] ^= 0x40
			check(bad, ErrType)

			bad = bytes.Clone(b)
			bad[3] = 200
			check(bad, ErrVersion)

			for i := 0; i < len(b); i++ {
				check(b[:i], nil)
			}
			check(append(bytes.Clone(b), 0), ErrCanonical)
		})
	}
}

// Canonicality: a non-minimal varint must be rejected, so every value
// has exactly one encoding and SHA-256 of the bytes is a usable content
// address.
func TestDecodeRejectsNonMinimalVarint(t *testing.T) {
	s := &PackagingSpec{N: 6, Variant: VariantRow}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Body starts at byte 4 with uvarint(6) = 0x06; 0x86 0x00 encodes
	// the same value in two bytes.
	bad := append(bytes.Clone(b[:4]), 0x86, 0x00)
	bad = append(bad, b[5:]...)
	var out PackagingSpec
	if err := out.UnmarshalBinary(bad); !errors.Is(err, ErrCanonical) {
		t.Fatalf("non-minimal uvarint: got %v, want ErrCanonical", err)
	}
}

// NaN floats have many bit patterns; the canonical encoding bans them.
func TestDecodeRejectsNaN(t *testing.T) {
	s := &FaultSpec{N: 4, LinkRate: 0.5}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// LinkRate is the first float64 in the body: header(4) + uvarint n(1).
	nan := math.Float64bits(math.NaN())
	for i := 0; i < 8; i++ {
		b[5+i] = byte(nan >> uint(56-8*i))
	}
	var out FaultSpec
	if err := out.UnmarshalBinary(b); !errors.Is(err, ErrCanonical) {
		t.Fatalf("NaN float: got %v, want ErrCanonical", err)
	}
}

func TestGraphRoundTripMaterializes(t *testing.T) {
	g, err := GraphFromButterfly(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Graph
	if err := out.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if !graph.SameEdgeMultiset(g.ToGraph(), out.ToGraph(), false) {
		t.Fatal("decoded graph is not the same edge multiset")
	}
}

func TestGraphMarshalRejectsUnsortedEdges(t *testing.T) {
	g := &Graph{NumNodes: 4, Edges: []graph.Edge{{U: 2, V: 3}, {U: 0, V: 1}}}
	if _, err := g.MarshalBinary(); err == nil {
		t.Fatal("unsorted edges marshaled")
	}
}

func TestLayoutSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec LayoutSpec
		ok   bool
	}{
		{"collinear ok", LayoutSpec{Family: FamilyCollinear, N: 8}, true},
		{"collinear too small", LayoutSpec{Family: FamilyCollinear, N: 1}, false},
		{"collinear stray widths", LayoutSpec{Family: FamilyCollinear, N: 8, Widths: []int{2}}, false},
		{"thompson ok", LayoutSpec{Family: FamilyThompson, Widths: []int{2, 2, 2}}, true},
		{"thompson multilayer ok", LayoutSpec{Family: FamilyThompson, Widths: []int{2, 2}, Layers: 4, Multilayer: true}, true},
		{"thompson layers without multilayer", LayoutSpec{Family: FamilyThompson, Widths: []int{2, 2}, Layers: 4}, false},
		{"thompson stray n", LayoutSpec{Family: FamilyThompson, N: 6, Widths: []int{2, 2}}, false},
		{"thompson too many widths", LayoutSpec{Family: FamilyThompson, Widths: []int{2, 2, 2, 2}}, false},
		{"stack3d ok", LayoutSpec{Family: FamilyStack3D, Widths: []int{2, 2, 2, 2}, SliceLayers: 2}, true},
		{"stack3d needs 4 widths", LayoutSpec{Family: FamilyStack3D, Widths: []int{2, 2}, SliceLayers: 2}, false},
		{"stack3d needs slice layers", LayoutSpec{Family: FamilyStack3D, Widths: []int{2, 2, 2, 2}}, false},
		{"hierarchy ok", LayoutSpec{Family: FamilyHierarchy, N: 9, MaxPins: 64, ChipSide: 20}, true},
		{"hierarchy missing pins", LayoutSpec{Family: FamilyHierarchy, N: 9}, false},
		{"unknown family", LayoutSpec{Family: Family(9)}, false},
		{"zero width", LayoutSpec{Family: FamilyThompson, Widths: []int{0}}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if c.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !c.ok && err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

// Every family must actually build, and the result must re-encode
// byte-identically (the cached-artifact invariant).
func TestLayoutSpecBuildAllFamilies(t *testing.T) {
	specs := []LayoutSpec{
		{Family: FamilyCollinear, N: 8},
		{Family: FamilyThompson, Widths: []int{2, 2, 2}},
		{Family: FamilyStack3D, Widths: []int{2, 2, 2, 2}, SliceLayers: 2},
		{Family: FamilyHierarchy, N: 9, MaxPins: 64, ChipSide: 20},
	}
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Family.String(), func(t *testing.T) {
			res, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			if res.Family != spec.Family {
				t.Fatalf("result family %v, want %v", res.Family, spec.Family)
			}
			if res.Stats.Area <= 0 {
				t.Fatalf("non-positive area %d", res.Stats.Area)
			}
			b1, err := res.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var out LayoutResult
			if err := out.UnmarshalBinary(b1); err != nil {
				t.Fatal(err)
			}
			b2, err := out.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("layout result does not re-encode identically")
			}
		})
	}
}

func TestCollinearBuildTrackCount(t *testing.T) {
	res, err := (&LayoutSpec{Family: FamilyCollinear, N: 10}).Build()
	if err != nil {
		t.Fatal(err)
	}
	tracks, ok := res.Extra("numTracks")
	if !ok || tracks != 25 {
		t.Fatalf("numTracks = %d (present %v), want floor(100/4) = 25", tracks, ok)
	}
}

func TestPackagingSpecBuildVariants(t *testing.T) {
	for _, spec := range []PackagingSpec{
		{N: 6, Variant: VariantRow},
		{N: 6, Variant: VariantNucleus},
		{N: 6, Variant: VariantNaive, RowsPerModule: 8},
	} {
		spec := spec
		t.Run(spec.Variant.String(), func(t *testing.T) {
			plan, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			if plan.NumModules < 2 {
				t.Fatalf("only %d modules", plan.NumModules)
			}
			if len(plan.ModuleOf) != 7*64 {
				t.Fatalf("ModuleOf has %d entries, want %d", len(plan.ModuleOf), 7*64)
			}
			b1, err := plan.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var out PackagingPlan
			if err := out.UnmarshalBinary(b1); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(&out, plan) {
				t.Fatal("packaging plan decode mismatch")
			}
		})
	}
}

// A fault spec must reconstruct the identical plan: two builds of the
// same spec drive two simulations to identical results.
func TestFaultSpecBuildDeterministic(t *testing.T) {
	spec := &FaultSpec{
		N: 4, LinkRate: 0.05, Seed: 11,
		TransientCount: 2, TransientHorizon: 200, TransientRepair: 30,
		Events: []FaultEvent{{Node: 5, Out: 0, Start: 50, RepairAfter: 100}},
	}
	run := func() *routing.Result {
		t.Helper()
		plan, err := spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := routing.Simulate(routing.Params{
			N: 4, Lambda: 0.05, Warmup: 50, Cycles: 300, Seed: 9,
			Faults: plan, TTL: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("two builds of the same fault spec diverged:\n%+v\n%+v", r1, r2)
	}
}

// A fault-free route spec must reproduce the plain simulation packet
// for packet.
func TestRouteSpecRunMatchesSimulate(t *testing.T) {
	spec := &RouteSpec{N: 4, Lambda: 0.05, Warmup: 100, Cycles: 400, Seed: 7, Pattern: routing.Uniform}
	got, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := routing.Simulate(routing.Params{N: 4, Lambda: 0.05, Warmup: 100, Cycles: 400, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("route spec run diverged from plain simulation:\n%+v\n%+v", got, want)
	}
}

func TestSweepSpecRun(t *testing.T) {
	spec := &SweepSpec{N: 3, Lambda: 0.05, Warmup: 20, Cycles: 100, Seed: 5, Rates: []float64{0, 0.2}}
	pts, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	if pts[0].DeadLinks != 0 || pts[0].Err != nil {
		t.Fatalf("zero-rate level: dead=%d err=%v", pts[0].DeadLinks, pts[0].Err)
	}
	if pts[1].DeadLinks == 0 {
		t.Fatal("0.2-rate level killed no links")
	}
	if bad := (&SweepSpec{N: 3, Lambda: 0.05, Cycles: 100}).Validate(); bad == nil {
		t.Fatal("sweep with no rates validated")
	}
	if bad := (&SweepSpec{N: 3, Lambda: 0.05, Cycles: 100, Rates: []float64{1.5}}).Validate(); bad == nil {
		t.Fatal("sweep with rate > 1 validated")
	}
}

func TestRouteSpecValidate(t *testing.T) {
	ok := RouteSpec{N: 4, Lambda: 0.1, Cycles: 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := map[string]RouteSpec{
		"dim":            {N: 0, Lambda: 0.1, Cycles: 100},
		"lambda":         {N: 4, Lambda: 1.5, Cycles: 100},
		"cycles":         {N: 4, Lambda: 0.1, Cycles: 0},
		"cycle cap":      {N: 4, Lambda: 0.1, Cycles: MaxRouteCycles + 1},
		"pattern":        {N: 4, Lambda: 0.1, Cycles: 100, Pattern: routing.Pattern(99)},
		"policy":         {N: 4, Lambda: 0.1, Cycles: 100, Policy: routing.Policy(9)},
		"fault dim":      {N: 4, Lambda: 0.1, Cycles: 100, Fault: &FaultSpec{N: 5}},
		"fault linkrate": {N: 4, Lambda: 0.1, Cycles: 100, Fault: &FaultSpec{N: 4, LinkRate: 2}},
	}
	for name, spec := range cases {
		spec := spec
		t.Run(name, func(t *testing.T) {
			if err := spec.Validate(); err == nil {
				t.Fatal("invalid spec accepted")
			}
		})
	}
}

func TestParseHelpers(t *testing.T) {
	for _, f := range []Family{FamilyCollinear, FamilyThompson, FamilyStack3D, FamilyHierarchy} {
		got, err := ParseFamily(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFamily(%q) = %v, %v", f.String(), got, err)
		}
	}
	if _, err := ParseFamily("benes"); err == nil {
		t.Fatal("unknown family parsed")
	}
	for _, v := range []Variant{VariantRow, VariantNucleus, VariantNaive} {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("hex"); err == nil {
		t.Fatal("unknown variant parsed")
	}
}
