package wire

import (
	"fmt"
	"math"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

// maxSweepRates bounds the number of fault levels one sweep request may
// ask for; each level is a full simulation.
const maxSweepRates = 64

// SweepSpec is the wire form of a link-fault degradation sweep request:
// a fault-free base simulation plus the list of link fault rates to
// measure, in the order the caller wants the points reported. The rate
// order is semantic (it fixes the per-level fault seeds), so it is
// preserved rather than sorted.
type SweepSpec struct {
	N           int
	Lambda      float64
	Warmup      int
	Cycles      int
	Seed        int64
	BufferLimit int
	TTL         int
	Rates       []float64
}

// Validate checks the spec's invariants.
func (s *SweepSpec) Validate() error {
	base := RouteSpec{
		N: s.N, Lambda: s.Lambda, Warmup: s.Warmup, Cycles: s.Cycles,
		Seed: s.Seed, BufferLimit: s.BufferLimit, TTL: s.TTL,
	}
	if err := base.Validate(); err != nil {
		return err
	}
	if len(s.Rates) < 1 {
		return fmt.Errorf("wire: sweep needs at least 1 fault rate")
	}
	if len(s.Rates) > maxSweepRates {
		return fmt.Errorf("wire: sweep has %d fault rates, cap is %d", len(s.Rates), maxSweepRates)
	}
	for i, r := range s.Rates {
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("wire: sweep rate %v (index %d) out of [0,1]", r, i)
		}
	}
	return nil
}

// Run executes one simulation per fault rate via faults.Sweep. The
// points are a pure function of the spec (each level draws its faults
// from a seed derived from Seed and the level index).
func (s *SweepSpec) Run() ([]faults.Point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return faults.Sweep(routing.Params{
		N:           s.N,
		Lambda:      s.Lambda,
		Warmup:      s.Warmup,
		Cycles:      s.Cycles,
		Seed:        s.Seed,
		BufferLimit: s.BufferLimit,
		TTL:         s.TTL,
	}, s.Rates), nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *SweepSpec) MarshalBinary() ([]byte, error) {
	if s.N < 0 || s.Warmup < 0 || s.Cycles < 0 || s.BufferLimit < 0 || s.TTL < 0 {
		return nil, fmt.Errorf("wire: sweep spec has negative fields")
	}
	if len(s.Rates) > maxSweepRates {
		return nil, fmt.Errorf("wire: sweep has %d fault rates, cap is %d", len(s.Rates), maxSweepRates)
	}
	e := newEnc(TypeSweepSpec, VersionSweepSpec)
	e.uint(s.N)
	e.float64(s.Lambda)
	e.uint(s.Warmup)
	e.uint(s.Cycles)
	e.varint(s.Seed)
	e.uint(s.BufferLimit)
	e.uint(s.TTL)
	e.uint(len(s.Rates))
	for _, r := range s.Rates {
		if math.IsNaN(r) {
			return nil, fmt.Errorf("wire: NaN sweep rate")
		}
		e.float64(r)
	}
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *SweepSpec) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeSweepSpec, VersionSweepSpec)
	var out SweepSpec
	out.N = d.uint()
	out.Lambda = d.float64()
	out.Warmup = d.uint()
	out.Cycles = d.uint()
	out.Seed = d.varint()
	out.BufferLimit = d.uint()
	out.TTL = d.uint()
	count := d.listLen(8)
	if d.err == nil && count > maxSweepRates {
		d.fail(fmt.Errorf("%w: %d fault rates, cap is %d", ErrRange, count, maxSweepRates))
	}
	for i := 0; i < count && d.err == nil; i++ {
		out.Rates = append(out.Rates, d.float64())
	}
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}
