package wire

import (
	"fmt"
	"sort"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/stack3d"
	"bfvlsi/internal/thompson"
)

// maxBuildN caps the collinear and hierarchy problem sizes a Build
// accepts: floor(n²/4) tracks are materialized link by link, so the
// construction itself is O(n²).
const maxBuildN = 512

// Build constructs the layout the spec describes and summarizes it as a
// LayoutResult. The result is a pure function of the spec, so it is safe
// to cache under the spec's content address.
func (s *LayoutSpec) Build() (*LayoutResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Family {
	case FamilyCollinear:
		return s.buildCollinear()
	case FamilyThompson:
		return s.buildThompson()
	case FamilyStack3D:
		return s.buildStack3D()
	case FamilyHierarchy:
		return s.buildHierarchy()
	}
	return nil, fmt.Errorf("wire: unknown layout family %d", int(s.Family))
}

// sortExtras orders the metric list by name, the canonical wire order.
func sortExtras(extras []Extra) []Extra {
	sort.Slice(extras, func(i, j int) bool { return extras[i].Name < extras[j].Name })
	return extras
}

func (s *LayoutSpec) buildCollinear() (*LayoutResult, error) {
	if s.N > maxBuildN {
		return nil, fmt.Errorf("wire: collinear n %d exceeds service cap %d", s.N, maxBuildN)
	}
	ta, err := collinear.Optimal(s.N)
	if err != nil {
		return nil, err
	}
	ta.ReorderByDescendingSpan()
	l, err := collinear.ToLayout(ta, collinear.LayoutOptions{})
	if err != nil {
		return nil, err
	}
	return &LayoutResult{
		Family: FamilyCollinear,
		Stats:  l.Stats(),
		Extras: sortExtras([]Extra{
			{Name: "chenAgrawalTracks", Value: int64(collinear.ChenAgrawalTracks(s.N))},
			{Name: "numLinks", Value: int64(len(ta.Links))},
			{Name: "numTracks", Value: int64(ta.NumTracks)},
		}),
	}, nil
}

func (s *LayoutSpec) buildThompson() (*LayoutResult, error) {
	spec, err := bitutil.NewGroupSpec(s.Widths...)
	if err != nil {
		return nil, err
	}
	r, err := thompson.Build(thompson.Params{
		Spec:           spec,
		Layers:         s.Layers,
		Multilayer:     s.Multilayer,
		NodeSide:       s.NodeSide,
		NoTrackReorder: s.NoTrackReorder,
	})
	if err != nil {
		return nil, err
	}
	return &LayoutResult{
		Family: FamilyThompson,
		Stats:  r.Stats(),
		Extras: sortExtras([]Extra{
			{Name: "bandHeight", Value: int64(r.BandH)},
			{Name: "blockHeight", Value: int64(r.BlockH)},
			{Name: "blockWidth", Value: int64(r.BlockW)},
			{Name: "colWidth", Value: int64(r.ColW)},
			{Name: "gridCols", Value: int64(r.GridCols)},
			{Name: "gridRows", Value: int64(r.GridRows)},
			{Name: "rowsPerBlock", Value: int64(r.RowsPerBlock)},
		}),
	}, nil
}

func (s *LayoutSpec) buildStack3D() (*LayoutResult, error) {
	spec, err := bitutil.NewGroupSpec(s.Widths...)
	if err != nil {
		return nil, err
	}
	st, err := stack3d.Build(spec, s.SliceLayers)
	if err != nil {
		return nil, err
	}
	return &LayoutResult{
		Family: FamilyStack3D,
		Stats:  st.Slice.Stats(),
		Extras: sortExtras([]Extra{
			{Name: "copies", Value: int64(st.Copies)},
			{Name: "footprintArea", Value: st.FootprintArea()},
			{Name: "interCopyLinks", Value: int64(st.InterCopyLinks)},
			{Name: "sliceLayers", Value: int64(st.SliceLayers)},
			{Name: "volume", Value: st.Volume()},
			{Name: "zColumns", Value: int64(st.ZColumns)},
		}),
	}, nil
}

func (s *LayoutSpec) buildHierarchy() (*LayoutResult, error) {
	if s.N > 24 {
		return nil, fmt.Errorf("wire: hierarchy n %d exceeds the butterfly cap 24", s.N)
	}
	d, err := hierarchy.Design(s.N, s.MaxPins, s.ChipSide)
	if err != nil {
		return nil, err
	}
	// The board geometry is reported for the two-layer wiring model;
	// Stats carries the board dims so every family fills the same
	// summary fields.
	w, h := d.BoardDims(2)
	res := &LayoutResult{Family: FamilyHierarchy}
	res.Stats.Width = w
	res.Stats.Height = h
	res.Stats.Area = d.BoardArea(2)
	res.Stats.Layers = 2
	res.Extras = sortExtras([]Extra{
		{Name: "gridCols", Value: int64(d.GridCols)},
		{Name: "gridRows", Value: int64(d.GridRows)},
		{Name: "nodesPerChip", Value: int64(d.NodesPerChip)},
		{Name: "numChips", Value: int64(d.NumChips)},
		{Name: "offChipLinks", Value: int64(d.OffChipLinks)},
		{Name: "optimizedHTracks", Value: int64(d.OptimizedHTracks)},
		{Name: "optimizedVTracks", Value: int64(d.OptimizedVTracks)},
		{Name: "rawHTracks", Value: int64(d.RawHTracks)},
		{Name: "rawVTracks", Value: int64(d.RawVTracks)},
		{Name: "rowsPerChip", Value: int64(d.RowsPerChip)},
	})
	return res, nil
}

// Build constructs the partition the spec describes and summarizes it
// as a PackagingPlan. The result is a pure function of the spec.
func (s *PackagingSpec) Build() (*PackagingPlan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var part *packaging.Partition
	switch s.Variant {
	case VariantRow:
		part = packaging.RowPartition(isn.Transform(thompson.SpecForDim(s.N)))
	case VariantNucleus:
		part = packaging.NucleusPartition(isn.Transform(thompson.SpecForDim(s.N)))
	case VariantNaive:
		part = packaging.NaiveRowPartition(butterfly.New(s.N), s.RowsPerModule)
	default:
		return nil, fmt.Errorf("wire: unknown packaging variant %d", int(s.Variant))
	}
	return &PackagingPlan{
		Desc:       part.Desc,
		NumModules: part.NumModules,
		ModuleOf:   part.ModuleOf,
		Stats:      part.Stats(),
	}, nil
}
