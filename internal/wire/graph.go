package wire

import (
	"fmt"

	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/graph"
)

// Graph is the wire form of a butterfly (or any dense-ID) multigraph:
// the node count plus the canonical sorted edge list. N records the
// butterfly dimension the graph was built from (0 when the graph did
// not come from a butterfly).
type Graph struct {
	N        int
	NumNodes int
	// Edges must be sorted by (U, V, Kind), U <= V, as graph.Edges()
	// returns them; MarshalBinary rejects anything else so that equal
	// graphs always produce equal bytes.
	Edges []graph.Edge
}

// GraphFromButterfly captures B_n in wire form.
func GraphFromButterfly(n int) (*Graph, error) {
	if n < 1 || n > butterfly.MaxDim {
		return nil, fmt.Errorf("wire: butterfly dimension %d out of range [1,%d]", n, butterfly.MaxDim)
	}
	b := butterfly.New(n)
	return &Graph{N: n, NumNodes: b.NumNodes(), Edges: b.G.Edges()}, nil
}

// ToGraph materializes the adjacency structure.
func (g *Graph) ToGraph() *graph.Graph {
	out := graph.New(g.NumNodes)
	for _, e := range g.Edges {
		out.AddEdge(e.U, e.V, e.Kind)
	}
	return out
}

// edgeLE reports a <= b in the canonical (U, V, Kind) order. Parallel
// edges with identical endpoints and kind are legal in a multigraph, so
// the order is non-strict.
func edgeLE(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	return a.Kind <= b.Kind
}

// MarshalBinary implements encoding.BinaryMarshaler. Edges are
// delta-encoded on U, which the sort order makes non-negative.
func (g *Graph) MarshalBinary() ([]byte, error) {
	if g.N < 0 || g.NumNodes < 0 {
		return nil, fmt.Errorf("wire: graph has negative dimension or node count")
	}
	e := newEnc(TypeGraph, VersionGraph)
	e.uint(g.N)
	e.uint(g.NumNodes)
	e.uint(len(g.Edges))
	prevU := 0
	for i, ed := range g.Edges {
		if ed.U < 0 || ed.V < ed.U || ed.V >= g.NumNodes {
			return nil, fmt.Errorf("wire: edge %d (%d,%d) outside canonical range for %d nodes", i, ed.U, ed.V, g.NumNodes)
		}
		if i > 0 && !edgeLE(g.Edges[i-1], ed) {
			return nil, fmt.Errorf("wire: edge %d out of (U,V,Kind) order", i)
		}
		e.uint(ed.U - prevU)
		e.uint(ed.V)
		e.uvarint(uint64(ed.Kind))
		prevU = ed.U
	}
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It accepts
// exactly the canonical encodings MarshalBinary produces.
func (g *Graph) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeGraph, VersionGraph)
	n := d.uint()
	nodes := d.uint()
	count := d.listLen(3)
	edges := make([]graph.Edge, 0, count)
	prevU := 0
	for i := 0; i < count && d.err == nil; i++ {
		du := d.uint()
		v := d.uint()
		kind := d.uvarint()
		if d.err != nil {
			break
		}
		u := prevU + du
		ed := graph.Edge{U: u, V: v, Kind: graph.EdgeKind(byte(kind))}
		if kind > 255 {
			d.fail(fmt.Errorf("%w: edge kind %d exceeds uint8", ErrRange, kind))
			break
		}
		if u < 0 || v < u || v >= nodes {
			d.fail(fmt.Errorf("%w: edge %d (%d,%d) outside canonical range for %d nodes", ErrCanonical, i, u, v, nodes))
			break
		}
		if len(edges) > 0 && !edgeLE(edges[len(edges)-1], ed) {
			d.fail(fmt.Errorf("%w: edge %d out of (U,V,Kind) order", ErrCanonical, i))
			break
		}
		edges = append(edges, ed)
		prevU = u
	}
	if err := d.finish(); err != nil {
		return err
	}
	g.N, g.NumNodes, g.Edges = n, nodes, edges
	return nil
}
