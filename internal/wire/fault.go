package wire

import (
	"fmt"

	"bfvlsi/internal/faults"
)

// FaultEvent is one explicit scheduled fault of a FaultSpec.
type FaultEvent struct {
	// Node is the faulted node (node events) or the link's tail node
	// (link events).
	Node int
	// Out is the directed output link (0 straight, 1 cross) for link
	// events; -1 marks a node event.
	Out int
	// Start is the onset cycle.
	Start int
	// RepairAfter is the number of cycles until repair (0 = permanent).
	RepairAfter int
}

// FaultSpec is the wire form of a fault plan: a deterministic recipe -
// seeded random link/node/transient faults plus explicit events - from
// which Build reconstructs the identical faults.Plan anywhere. Encoding
// the recipe rather than the expanded event list keeps the message
// small and makes the spec itself content-addressable.
type FaultSpec struct {
	N        int
	LinkRate float64
	NodeRate float64
	Seed     int64
	// TransientCount random link outages within TransientHorizon
	// cycles, each repaired after TransientRepair cycles.
	TransientCount   int
	TransientHorizon int
	TransientRepair  int
	Events           []FaultEvent
}

// maxFaultEvents bounds explicit event lists.
const maxFaultEvents = 1 << 16

// IsZero reports whether the spec schedules no faults at all.
func (s *FaultSpec) IsZero() bool {
	return s.LinkRate == 0 && s.NodeRate == 0 && s.TransientCount == 0 && len(s.Events) == 0
}

// Validate checks the spec's invariants.
func (s *FaultSpec) Validate() error {
	if s.N < 1 || s.N > 14 {
		return fmt.Errorf("wire: fault plan dimension %d out of range [1,14]", s.N)
	}
	if s.LinkRate < 0 || s.LinkRate > 1 {
		return fmt.Errorf("wire: link fault rate %v out of [0,1]", s.LinkRate)
	}
	if s.NodeRate < 0 || s.NodeRate > 1 {
		return fmt.Errorf("wire: node fault rate %v out of [0,1]", s.NodeRate)
	}
	if s.TransientCount < 0 || s.TransientHorizon < 0 || s.TransientRepair < 0 {
		return fmt.Errorf("wire: negative transient fault parameters")
	}
	if s.TransientCount > 0 && (s.TransientHorizon < 1 || s.TransientRepair < 1) {
		return fmt.Errorf("wire: transient faults need horizon >= 1 and repair >= 1")
	}
	nodes := s.N << uint(s.N)
	for i, ev := range s.Events {
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("wire: fault event %d node %d outside [0,%d)", i, ev.Node, nodes)
		}
		if ev.Out < -1 || ev.Out > 1 {
			return fmt.Errorf("wire: fault event %d out %d outside [-1,1]", i, ev.Out)
		}
		if ev.Start < 0 || ev.RepairAfter < 0 {
			return fmt.Errorf("wire: fault event %d has negative cycles", i)
		}
	}
	return nil
}

// Build reconstructs the fault plan the spec describes. The result is a
// pure function of the spec: random faults are drawn from seeds derived
// from Seed, and explicit events are applied in order.
func (s *FaultSpec) Build() (*faults.Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan, err := faults.NewPlan(s.N)
	if err != nil {
		return nil, err
	}
	if s.LinkRate > 0 {
		if _, err := plan.AddRandomLinkFaults(s.LinkRate, s.Seed+1); err != nil {
			return nil, err
		}
	}
	if s.NodeRate > 0 {
		if _, err := plan.AddRandomNodeFaults(s.NodeRate, s.Seed+2); err != nil {
			return nil, err
		}
	}
	if s.TransientCount > 0 {
		if err := plan.AddRandomTransientLinkFaults(s.TransientCount, s.TransientHorizon, s.TransientRepair, s.Seed+3); err != nil {
			return nil, err
		}
	}
	for i, ev := range s.Events {
		if ev.Out < 0 {
			err = plan.AddNodeFault(ev.Node, ev.Start, ev.RepairAfter)
		} else {
			err = plan.AddLinkFault(ev.Node, ev.Out, ev.Start, ev.RepairAfter)
		}
		if err != nil {
			return nil, fmt.Errorf("wire: fault event %d: %v", i, err)
		}
	}
	return plan, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *FaultSpec) MarshalBinary() ([]byte, error) {
	if s.N < 0 || s.TransientCount < 0 || s.TransientHorizon < 0 || s.TransientRepair < 0 {
		return nil, fmt.Errorf("wire: fault spec has negative fields")
	}
	if len(s.Events) > maxFaultEvents {
		return nil, fmt.Errorf("wire: fault spec has %d events, cap is %d", len(s.Events), maxFaultEvents)
	}
	e := newEnc(TypeFaultSpec, VersionFaultSpec)
	s.encodeBody(e)
	return e.buf, nil
}

// encodeBody appends the spec's body fields; shared with RouteSpec,
// which nests a fault spec.
func (s *FaultSpec) encodeBody(e *enc) {
	e.uint(s.N)
	e.float64(s.LinkRate)
	e.float64(s.NodeRate)
	e.varint(s.Seed)
	e.uint(s.TransientCount)
	e.uint(s.TransientHorizon)
	e.uint(s.TransientRepair)
	e.uint(len(s.Events))
	for _, ev := range s.Events {
		e.uint(ev.Node)
		e.int(ev.Out)
		e.uint(ev.Start)
		e.uint(ev.RepairAfter)
	}
}

// decodeBody reads the spec's body fields; shared with RouteSpec.
func (s *FaultSpec) decodeBody(d *dec) {
	s.N = d.uint()
	s.LinkRate = d.float64()
	s.NodeRate = d.float64()
	s.Seed = d.varint()
	s.TransientCount = d.uint()
	s.TransientHorizon = d.uint()
	s.TransientRepair = d.uint()
	count := d.listLen(4)
	if d.err == nil && count > maxFaultEvents {
		d.fail(fmt.Errorf("%w: %d fault events, cap is %d", ErrRange, count, maxFaultEvents))
		return
	}
	for i := 0; i < count && d.err == nil; i++ {
		ev := FaultEvent{
			Node:        d.uint(),
			Out:         d.int(),
			Start:       d.uint(),
			RepairAfter: d.uint(),
		}
		if d.err != nil {
			break
		}
		s.Events = append(s.Events, ev)
	}
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *FaultSpec) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeFaultSpec, VersionFaultSpec)
	var out FaultSpec
	out.decodeBody(d)
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}
