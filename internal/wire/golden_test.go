package wire

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire frames")

// TestGoldenFrames pins the encoded bytes of every wire type against
// committed frames: schema.lock freezes the field schema, this corpus
// freezes the actual byte layout. An encoding change that slips past
// the analyzers (e.g. a varint width tweak) fails here. Regenerate
// deliberately with `go test ./internal/wire -run TestGoldenFrames -update`.
func TestGoldenFrames(t *testing.T) {
	for name, v := range sampleValues(t) {
		t.Run(name, func(t *testing.T) {
			got, err := v.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			path := filepath.Join("testdata", "golden", name+".bin")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden frame missing (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("encoding of %s drifted from the golden frame:\n got %x\nwant %x", name, got, want)
			}
			// The committed frame must still decode, and re-encode to
			// itself: on-disk caches and archived sweep results written
			// by old binaries stay readable.
			dec := newValue(v)
			if err := dec.UnmarshalBinary(want); err != nil {
				t.Fatalf("committed frame no longer decodes: %v", err)
			}
			again, err := dec.MarshalBinary()
			if err != nil {
				t.Fatalf("re-marshal of committed frame: %v", err)
			}
			if !bytes.Equal(again, want) {
				t.Errorf("decode+re-encode of the committed frame differs:\n got %x\nwant %x", again, want)
			}
		})
	}
}
