package wire

import "fmt"

// Exported encoder/decoder wrappers. The checkpoint layer
// (internal/snapshot, internal/sweepfarm) defines its own frame types
// but must keep this package's canonical-encoding contract —
// Unmarshal(b) == nil implies re-encode == b — so it builds on the
// same primitives instead of reimplementing them. The wrappers are
// thin: every method forwards to the unexported enc/dec the in-package
// types use.

// Encoder accumulates a canonical frame for an out-of-package wire
// type. Create with NewEncoder; read the bytes with Bytes.
type Encoder struct {
	e *enc
}

// NewEncoder starts a frame with the standard magic/tag/version header.
func NewEncoder(typ, version byte) *Encoder {
	return &Encoder{e: newEnc(typ, version)}
}

// Uvarint appends a minimal-length unsigned varint.
func (x *Encoder) Uvarint(v uint64) { x.e.uvarint(v) }

// Varint appends a minimal-length zigzag varint.
func (x *Encoder) Varint(v int64) { x.e.varint(v) }

// Uint appends a non-negative int as an unsigned varint.
func (x *Encoder) Uint(v int) { x.e.uint(v) }

// Int appends an int as a zigzag varint.
func (x *Encoder) Int(v int) { x.e.int(v) }

// Bool appends one 0/1 byte.
func (x *Encoder) Bool(v bool) { x.e.bool(v) }

// Float64 appends a big-endian IEEE-754 float64.
func (x *Encoder) Float64(v float64) { x.e.float64(v) }

// String appends a length-prefixed string.
func (x *Encoder) String(s string) { x.e.string(s) }

// maxBytesLen bounds Decoder.Bytes: embedded frames (a spec inside a
// checkpoint) can outgrow the string cap, but not this.
const maxBytesLen = 1 << 24

// Bytes appends a length-prefixed byte string. Unlike String it admits
// lengths up to maxBytesLen, for embedding whole frames.
func (x *Encoder) Bytes(b []byte) {
	x.e.uvarint(uint64(len(b)))
	x.e.buf = append(x.e.buf, b...)
}

// Encoding returns the encoding accumulated so far.
func (x *Encoder) Encoding() []byte { return x.e.buf }

// Decoder consumes a canonical frame of an out-of-package wire type.
// The first error sticks (getters return zero values after it); Finish
// rejects trailing bytes and returns it.
type Decoder struct {
	d *dec
}

// NewDecoder validates the frame header (magic, tag, version) and
// positions the decoder at the body. Header failures stick like any
// other decode error.
func NewDecoder(data []byte, typ, version byte) *Decoder {
	return &Decoder{d: newDec(data, typ, version)}
}

// Uvarint reads a minimal-length unsigned varint.
func (x *Decoder) Uvarint() uint64 { return x.d.uvarint() }

// Varint reads a minimal-length zigzag varint.
func (x *Decoder) Varint() int64 { return x.d.varint() }

// Uint reads a non-negative value that must fit in int.
func (x *Decoder) Uint() int { return x.d.uint() }

// Int reads a signed value that must fit in int.
func (x *Decoder) Int() int { return x.d.int() }

// Bool reads one 0/1 byte.
func (x *Decoder) Bool() bool { return x.d.bool() }

// Float64 reads a big-endian IEEE-754 float64, rejecting NaN.
func (x *Decoder) Float64() float64 { return x.d.float64() }

// String reads a length-prefixed string.
func (x *Decoder) String() string { return x.d.string() }

// Bytes reads a length-prefixed byte string into a fresh slice.
func (x *Decoder) Bytes() []byte {
	d := x.d
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > maxBytesLen {
		d.fail(fmt.Errorf("%w: byte string length %d exceeds cap %d", ErrRange, n, maxBytesLen))
		return nil
	}
	if uint64(d.rem()) < n {
		d.fail(fmt.Errorf("%w: byte string of %d bytes with only %d remaining", ErrTruncated, n, d.rem()))
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b
}

// ListLen reads an element count, rejecting counts that cannot fit in
// the remaining bytes at minBytes per element.
func (x *Decoder) ListLen(minBytes int) int { return x.d.listLen(minBytes) }

// Err returns the sticky decode error, if any, without the
// trailing-bytes check.
func (x *Decoder) Err() error { return x.d.err }

// Finish rejects trailing bytes and returns the sticky error.
func (x *Decoder) Finish() error { return x.d.finish() }
