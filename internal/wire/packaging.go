package wire

import (
	"fmt"

	"bfvlsi/internal/packaging"
)

// Variant selects a packaging construction. The numeric values are part
// of the wire format: never renumber them.
type Variant int

// Packaging variants.
const (
	// VariantRow packages 2^k1 consecutive swap-butterfly rows per
	// module (Section 2.3 variant a).
	VariantRow Variant = 0
	// VariantNucleus packages nucleus butterflies per module
	// (Section 2.3 variant b, Theorem 2.1).
	VariantNucleus Variant = 1
	// VariantNaive packages consecutive plain-butterfly rows per
	// module, the baseline the paper improves on.
	VariantNaive Variant = 2
)

func (v Variant) String() string {
	switch v {
	case VariantRow:
		return "row"
	case VariantNucleus:
		return "nucleus"
	case VariantNaive:
		return "naive"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// ParseVariant is the inverse of Variant.String.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "row":
		return VariantRow, nil
	case "nucleus":
		return VariantNucleus, nil
	case "naive":
		return VariantNaive, nil
	default:
		return 0, fmt.Errorf("wire: unknown packaging variant %q (want row, nucleus, or naive)", s)
	}
}

// PackagingSpec is the wire form of a packaging request: which variant
// to apply to B_n. RowsPerModule is used only by the naive variant and
// must be zero elsewhere.
type PackagingSpec struct {
	N             int
	Variant       Variant
	RowsPerModule int
}

// Validate checks the spec's invariants.
func (s *PackagingSpec) Validate() error {
	if s.N < 1 || s.N > 20 {
		return fmt.Errorf("wire: packaging dimension %d out of range [1,20]", s.N)
	}
	switch s.Variant {
	case VariantRow, VariantNucleus:
		if s.RowsPerModule != 0 {
			return fmt.Errorf("wire: rowsPerModule is not used by variant %v and must be zero", s.Variant)
		}
	case VariantNaive:
		if s.RowsPerModule < 1 {
			return fmt.Errorf("wire: naive packaging needs rowsPerModule >= 1, got %d", s.RowsPerModule)
		}
	default:
		return fmt.Errorf("wire: unknown packaging variant %d", int(s.Variant))
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *PackagingSpec) MarshalBinary() ([]byte, error) {
	if s.N < 0 || s.Variant < 0 || s.RowsPerModule < 0 {
		return nil, fmt.Errorf("wire: packaging spec has negative fields")
	}
	e := newEnc(TypePackagingSpec, VersionPackagingSpec)
	e.uint(s.N)
	e.uint(int(s.Variant))
	e.uint(s.RowsPerModule)
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *PackagingSpec) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypePackagingSpec, VersionPackagingSpec)
	var out PackagingSpec
	out.N = d.uint()
	out.Variant = Variant(d.uint())
	out.RowsPerModule = d.uint()
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}

// PackagingPlan is the wire form of a computed partition: the module
// assignment of every node plus the measured packaging statistics.
type PackagingPlan struct {
	Desc       string
	NumModules int
	ModuleOf   []int
	Stats      packaging.Stats
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (p *PackagingPlan) MarshalBinary() ([]byte, error) {
	if p.NumModules < 0 {
		return nil, fmt.Errorf("wire: negative module count")
	}
	st := p.Stats
	for _, v := range []int{st.NumModules, st.MinNodesPerModule, st.MaxNodesPerModule, st.MaxOffLinksPerModu, st.TotalCutLinks} {
		if v < 0 {
			return nil, fmt.Errorf("wire: negative packaging stat")
		}
	}
	e := newEnc(TypePackagingPlan, VersionPackagingPlan)
	e.string(p.Desc)
	e.uint(p.NumModules)
	e.uint(len(p.ModuleOf))
	for i, m := range p.ModuleOf {
		if m < 0 || m >= p.NumModules {
			return nil, fmt.Errorf("wire: node %d assigned to module %d outside [0,%d)", i, m, p.NumModules)
		}
		e.uint(m)
	}
	e.uint(st.NumModules)
	e.uint(st.MinNodesPerModule)
	e.uint(st.MaxNodesPerModule)
	e.uint(st.MaxOffLinksPerModu)
	e.uint(st.TotalCutLinks)
	e.float64(st.AvgOffLinksPerNode)
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (p *PackagingPlan) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypePackagingPlan, VersionPackagingPlan)
	var out PackagingPlan
	out.Desc = d.string()
	out.NumModules = d.uint()
	count := d.listLen(1)
	if count > 0 {
		out.ModuleOf = make([]int, 0, count)
	}
	for i := 0; i < count && d.err == nil; i++ {
		m := d.uint()
		if d.err != nil {
			break
		}
		if m >= out.NumModules {
			d.fail(fmt.Errorf("%w: node %d assigned to module %d outside [0,%d)", ErrCanonical, i, m, out.NumModules))
			break
		}
		out.ModuleOf = append(out.ModuleOf, m)
	}
	out.Stats.NumModules = d.uint()
	out.Stats.MinNodesPerModule = d.uint()
	out.Stats.MaxNodesPerModule = d.uint()
	out.Stats.MaxOffLinksPerModu = d.uint()
	out.Stats.TotalCutLinks = d.uint()
	out.Stats.AvgOffLinksPerNode = d.float64()
	if err := d.finish(); err != nil {
		return err
	}
	*p = out
	return nil
}
