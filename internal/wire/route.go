package wire

import (
	"fmt"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

// Caps on routing request sizes; they keep a single cached artifact's
// compute bounded, which matters once specs arrive over the network.
const (
	// MaxRouteCycles bounds warmup + measured cycles.
	MaxRouteCycles = 1 << 20
	// maxBufferLimit bounds the per-VC queue capacity.
	maxBufferLimit = 1 << 16
)

// RouteSpec is the wire form of a routing-simulation request: the
// Params subset that is plain data (the hook interfaces - transport,
// adaptive router - are not serializable) plus the traffic pattern and
// an optional fault plan recipe.
type RouteSpec struct {
	N           int
	Lambda      float64
	Warmup      int
	Cycles      int
	Seed        int64
	BufferLimit int
	TTL         int
	Pattern     routing.Pattern
	Policy      routing.Policy
	Fault       *FaultSpec
}

// Validate checks the spec's invariants.
func (s *RouteSpec) Validate() error {
	if s.N < 1 || s.N > 14 {
		return fmt.Errorf("wire: routing dimension %d out of range [1,14]", s.N)
	}
	if s.Lambda < 0 || s.Lambda > 1 {
		return fmt.Errorf("wire: lambda %v out of [0,1]", s.Lambda)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("wire: negative warmup %d", s.Warmup)
	}
	if s.Cycles < 1 {
		return fmt.Errorf("wire: need at least 1 measured cycle, got %d", s.Cycles)
	}
	if s.Warmup+s.Cycles > MaxRouteCycles {
		return fmt.Errorf("wire: warmup+cycles %d exceeds cap %d", s.Warmup+s.Cycles, MaxRouteCycles)
	}
	if s.BufferLimit < 0 || s.BufferLimit > maxBufferLimit {
		return fmt.Errorf("wire: buffer limit %d out of [0,%d]", s.BufferLimit, maxBufferLimit)
	}
	if s.TTL < 0 || s.TTL > MaxRouteCycles {
		return fmt.Errorf("wire: ttl %d out of [0,%d]", s.TTL, MaxRouteCycles)
	}
	// Keep this bound on the last Pattern value in sync with
	// internal/routing/patterns.go when patterns are added.
	if s.Pattern < routing.Uniform || s.Pattern > routing.Shuffle {
		return fmt.Errorf("wire: unknown traffic pattern %d", int(s.Pattern))
	}
	if s.Policy != routing.Misroute && s.Policy != routing.DropDead {
		return fmt.Errorf("wire: unknown routing policy %d", int(s.Policy))
	}
	if s.Fault != nil {
		if s.Fault.N != s.N {
			return fmt.Errorf("wire: fault plan dimension %d does not match routing dimension %d", s.Fault.N, s.N)
		}
		if err := s.Fault.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the simulation the spec describes and verifies packet
// conservation. The result is a pure function of the spec. A faulted
// run with TTL 0 gets faults.DefaultTTL so trapped packets are dropped
// and accounted rather than pooling in Backlog (the same convention the
// fault sweeps use).
func (s *RouteSpec) Run() (*routing.Result, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p := routing.Params{
		N:           s.N,
		Lambda:      s.Lambda,
		Warmup:      s.Warmup,
		Cycles:      s.Cycles,
		Seed:        s.Seed,
		BufferLimit: s.BufferLimit,
		TTL:         s.TTL,
		Policy:      s.Policy,
	}
	if s.Fault != nil && !s.Fault.IsZero() {
		plan, err := s.Fault.Build()
		if err != nil {
			return nil, err
		}
		p.Faults = plan
		if p.TTL == 0 {
			p.TTL = faults.DefaultTTL(s.N)
		}
	}
	res, err := routing.SimulatePattern(p, s.Pattern)
	if err != nil {
		return nil, err
	}
	if err := res.CheckConservation(); err != nil {
		return nil, err
	}
	return res, nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *RouteSpec) MarshalBinary() ([]byte, error) {
	if s.N < 0 || s.Warmup < 0 || s.Cycles < 0 || s.BufferLimit < 0 || s.TTL < 0 ||
		s.Pattern < 0 || s.Policy < 0 {
		return nil, fmt.Errorf("wire: route spec has negative fields")
	}
	if s.Fault != nil && len(s.Fault.Events) > maxFaultEvents {
		return nil, fmt.Errorf("wire: fault spec has %d events, cap is %d", len(s.Fault.Events), maxFaultEvents)
	}
	e := newEnc(TypeRouteSpec, VersionRouteSpec)
	e.uint(s.N)
	e.float64(s.Lambda)
	e.uint(s.Warmup)
	e.uint(s.Cycles)
	e.varint(s.Seed)
	e.uint(s.BufferLimit)
	e.uint(s.TTL)
	e.uint(int(s.Pattern))
	e.uint(int(s.Policy))
	e.bool(s.Fault != nil)
	if s.Fault != nil {
		if s.Fault.N < 0 || s.Fault.TransientCount < 0 || s.Fault.TransientHorizon < 0 || s.Fault.TransientRepair < 0 {
			return nil, fmt.Errorf("wire: fault spec has negative fields")
		}
		s.Fault.encodeBody(e)
	}
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *RouteSpec) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeRouteSpec, VersionRouteSpec)
	var out RouteSpec
	out.N = d.uint()
	out.Lambda = d.float64()
	out.Warmup = d.uint()
	out.Cycles = d.uint()
	out.Seed = d.varint()
	out.BufferLimit = d.uint()
	out.TTL = d.uint()
	out.Pattern = routing.Pattern(d.uint())
	out.Policy = routing.Policy(d.uint())
	if d.bool() {
		var fs FaultSpec
		fs.decodeBody(d)
		out.Fault = &fs
	}
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}

// RouteResult is the wire form of routing.Result: every conservation
// counter and measurement of a run, so a cached result replays without
// re-simulating.
type RouteResult routing.Result

// MarshalBinary implements encoding.BinaryMarshaler.
func (r *RouteResult) MarshalBinary() ([]byte, error) {
	for _, v := range []int{
		r.Nodes, r.Injected, r.Delivered, r.MaxQueue, r.Backlog,
		r.InjectionDrops, r.Stalls, r.Dropped, r.Unreachable, r.Misroutes,
		r.Detours, r.Reroutes, r.UnreachableDead, r.UnreachableCut,
		r.UnreachableDetected, r.Retransmitted, r.DuplicatesDropped,
		r.GaveUp, r.TotalInjected, r.TotalDelivered,
	} {
		if v < 0 {
			return nil, fmt.Errorf("wire: route result has negative counters")
		}
	}
	e := newEnc(TypeRouteResult, VersionRouteResult)
	e.uint(r.Nodes)
	e.uint(r.Injected)
	e.uint(r.Delivered)
	e.float64(r.Throughput)
	e.float64(r.AvgLatency)
	e.float64(r.AvgHops)
	e.uint(r.MaxQueue)
	e.uint(r.Backlog)
	e.float64(r.BoundaryCrossingsPerCycle)
	e.uint(r.InjectionDrops)
	e.uint(r.Stalls)
	e.uint(r.Dropped)
	e.uint(r.Unreachable)
	e.uint(r.Misroutes)
	e.uint(r.Detours)
	e.uint(r.Reroutes)
	e.uint(r.UnreachableDead)
	e.uint(r.UnreachableCut)
	e.uint(r.UnreachableDetected)
	e.uint(r.Retransmitted)
	e.uint(r.DuplicatesDropped)
	e.uint(r.GaveUp)
	e.uint(r.TotalInjected)
	e.uint(r.TotalDelivered)
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *RouteResult) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeRouteResult, VersionRouteResult)
	// A keyed composite literal, not field assignments: the decoder
	// reconstructs a result that routing's accounting already produced,
	// and the conscount ownership contract only budges for whole-value
	// construction. The d.* calls evaluate in lexical order, which is the
	// encoding order.
	out := RouteResult{
		Nodes:                     d.uint(),
		Injected:                  d.uint(),
		Delivered:                 d.uint(),
		Throughput:                d.float64(),
		AvgLatency:                d.float64(),
		AvgHops:                   d.float64(),
		MaxQueue:                  d.uint(),
		Backlog:                   d.uint(),
		BoundaryCrossingsPerCycle: d.float64(),
		InjectionDrops:            d.uint(),
		Stalls:                    d.uint(),
		Dropped:                   d.uint(),
		Unreachable:               d.uint(),
		Misroutes:                 d.uint(),
		Detours:                   d.uint(),
		Reroutes:                  d.uint(),
		UnreachableDead:           d.uint(),
		UnreachableCut:            d.uint(),
		UnreachableDetected:       d.uint(),
		Retransmitted:             d.uint(),
		DuplicatesDropped:         d.uint(),
		GaveUp:                    d.uint(),
		TotalInjected:             d.uint(),
		TotalDelivered:            d.uint(),
	}
	if err := d.finish(); err != nil {
		return err
	}
	*r = out
	return nil
}
