package wire

import (
	"fmt"

	"bfvlsi/internal/grid"
)

// Family selects one of the four layout constructions the service
// exposes. The numeric values are part of the wire format: never
// renumber them.
type Family int

// Layout families.
const (
	// FamilyCollinear is the Appendix B collinear layout of K_n.
	FamilyCollinear Family = 0
	// FamilyThompson is the Section 3-4 Thompson / multilayer layout
	// of a butterfly given by a group spec.
	FamilyThompson Family = 1
	// FamilyStack3D is the Section 4.3 stacked 3-D layout of a 4-level
	// group spec.
	FamilyStack3D Family = 2
	// FamilyHierarchy is the Section 5.2 chip+board design search.
	FamilyHierarchy Family = 3
)

func (f Family) String() string {
	switch f {
	case FamilyCollinear:
		return "collinear"
	case FamilyThompson:
		return "thompson"
	case FamilyStack3D:
		return "stack3d"
	case FamilyHierarchy:
		return "hierarchy"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// ParseFamily is the inverse of Family.String for the four known
// families.
func ParseFamily(s string) (Family, error) {
	switch s {
	case "collinear":
		return FamilyCollinear, nil
	case "thompson":
		return FamilyThompson, nil
	case "stack3d":
		return FamilyStack3D, nil
	case "hierarchy":
		return FamilyHierarchy, nil
	default:
		return 0, fmt.Errorf("wire: unknown layout family %q (want collinear, thompson, stack3d, or hierarchy)", s)
	}
}

// LayoutSpec is the wire form of a layout request. All fields of every
// family are always encoded; Validate requires the fields a family does
// not use to be zero, so a spec has exactly one canonical encoding and
// its SHA-256 is a usable content address.
type LayoutSpec struct {
	Family Family
	// N is the complete-graph size (collinear) or butterfly dimension
	// (hierarchy).
	N int
	// Widths is the group spec (thompson: 1-3 groups; stack3d: exactly
	// 4 groups).
	Widths []int
	// Layers / Multilayer select the Section 4 multilayer model
	// (thompson only).
	Layers     int
	Multilayer bool
	// NodeSide overrides the node box side (thompson only; 0 = model
	// minimum).
	NodeSide int
	// NoTrackReorder disables the Appendix B wire-length optimization
	// (thompson only).
	NoTrackReorder bool
	// SliceLayers is the per-slice wiring layer count (stack3d only).
	SliceLayers int
	// MaxPins and ChipSide drive the board design search (hierarchy
	// only).
	MaxPins  int
	ChipSide int
}

// maxSpecWidths bounds the group-spec length; the paper's direct
// constructions use at most 4 groups.
const maxSpecWidths = 4

// Validate checks the spec's family-specific invariants, including that
// every field the family does not use is zero (canonicality: two specs
// that build the same artifact must have the same encoding).
func (s *LayoutSpec) Validate() error {
	zeroUnless := func(cond bool, name string, nonzero bool) error {
		if !cond && nonzero {
			return fmt.Errorf("wire: layout spec field %s is not used by family %v and must be zero", name, s.Family)
		}
		return nil
	}
	th := s.Family == FamilyThompson
	st := s.Family == FamilyStack3D
	hi := s.Family == FamilyHierarchy
	co := s.Family == FamilyCollinear
	if !th && !st && !hi && !co {
		return fmt.Errorf("wire: unknown layout family %d", int(s.Family))
	}
	// Every numeric field is a count or a side length; negatives can
	// never encode (the wire format is unsigned here), so reject them up
	// front with a clearer error than marshal would give.
	if s.N < 0 || s.Layers < 0 || s.NodeSide < 0 || s.SliceLayers < 0 ||
		s.MaxPins < 0 || s.ChipSide < 0 {
		return fmt.Errorf("wire: layout spec has negative fields")
	}
	for _, c := range []struct {
		used    bool
		name    string
		nonzero bool
	}{
		{co || hi, "n", s.N != 0},
		{th || st, "widths", len(s.Widths) != 0},
		{th, "layers", s.Layers != 0},
		{th, "multilayer", s.Multilayer},
		{th, "nodeSide", s.NodeSide != 0},
		{th, "noTrackReorder", s.NoTrackReorder},
		{st, "sliceLayers", s.SliceLayers != 0},
		{hi, "maxPins", s.MaxPins != 0},
		{hi, "chipSide", s.ChipSide != 0},
	} {
		if err := zeroUnless(c.used, c.name, c.nonzero); err != nil {
			return err
		}
	}
	switch s.Family {
	case FamilyCollinear:
		if s.N < 2 {
			return fmt.Errorf("wire: collinear layout needs n >= 2, got %d", s.N)
		}
	case FamilyThompson:
		if len(s.Widths) < 1 || len(s.Widths) > 3 {
			return fmt.Errorf("wire: thompson layout needs 1-3 group widths, got %d", len(s.Widths))
		}
		if s.Multilayer && s.Layers < 2 {
			return fmt.Errorf("wire: multilayer layout needs layers >= 2, got %d", s.Layers)
		}
		if !s.Multilayer && s.Layers != 0 && s.Layers != 2 {
			return fmt.Errorf("wire: the Thompson model has exactly 2 layers; set multilayer for layers=%d", s.Layers)
		}
	case FamilyStack3D:
		if len(s.Widths) != 4 {
			return fmt.Errorf("wire: stack3d layout needs exactly 4 group widths, got %d", len(s.Widths))
		}
		if s.SliceLayers < 2 {
			return fmt.Errorf("wire: stack3d layout needs sliceLayers >= 2, got %d", s.SliceLayers)
		}
	case FamilyHierarchy:
		if s.N < 1 {
			return fmt.Errorf("wire: hierarchy design needs n >= 1, got %d", s.N)
		}
		if s.MaxPins < 1 {
			return fmt.Errorf("wire: hierarchy design needs maxPins >= 1, got %d", s.MaxPins)
		}
		if s.ChipSide < 0 {
			return fmt.Errorf("wire: hierarchy chipSide must be non-negative, got %d", s.ChipSide)
		}
	}
	for i, w := range s.Widths {
		if w < 1 || w > 62 {
			return fmt.Errorf("wire: group width %d (index %d) outside [1,62]", w, i)
		}
	}
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *LayoutSpec) MarshalBinary() ([]byte, error) {
	if s.Family < 0 || s.N < 0 || s.Layers < 0 || s.NodeSide < 0 ||
		s.SliceLayers < 0 || s.MaxPins < 0 || s.ChipSide < 0 {
		return nil, fmt.Errorf("wire: layout spec has negative fields")
	}
	if len(s.Widths) > maxSpecWidths {
		return nil, fmt.Errorf("wire: layout spec has %d group widths, cap is %d", len(s.Widths), maxSpecWidths)
	}
	e := newEnc(TypeLayoutSpec, VersionLayoutSpec)
	e.uint(int(s.Family))
	e.uint(s.N)
	e.uint(len(s.Widths))
	for _, w := range s.Widths {
		if w < 0 {
			return nil, fmt.Errorf("wire: negative group width %d", w)
		}
		e.uint(w)
	}
	e.uint(s.Layers)
	e.bool(s.Multilayer)
	e.uint(s.NodeSide)
	e.bool(s.NoTrackReorder)
	e.uint(s.SliceLayers)
	e.uint(s.MaxPins)
	e.uint(s.ChipSide)
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *LayoutSpec) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeLayoutSpec, VersionLayoutSpec)
	var out LayoutSpec
	out.Family = Family(d.uint())
	out.N = d.uint()
	count := d.listLen(1)
	if d.err == nil && count > maxSpecWidths {
		d.fail(fmt.Errorf("%w: %d group widths, cap is %d", ErrRange, count, maxSpecWidths))
	}
	for i := 0; i < count && d.err == nil; i++ {
		out.Widths = append(out.Widths, d.uint())
	}
	out.Layers = d.uint()
	out.Multilayer = d.bool()
	out.NodeSide = d.uint()
	out.NoTrackReorder = d.bool()
	out.SliceLayers = d.uint()
	out.MaxPins = d.uint()
	out.ChipSide = d.uint()
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}

// Extra is one named family-specific metric of a layout result.
type Extra struct {
	Name  string
	Value int64
}

// LayoutResult is the wire form of a built layout: the measured
// grid-model statistics plus family-specific extras (track counts,
// block geometry, chip counts), sorted by name.
type LayoutResult struct {
	Family Family
	Stats  grid.Stats
	Extras []Extra
}

// Extra returns the named metric and whether it is present.
func (r *LayoutResult) Extra(name string) (int64, bool) {
	for _, x := range r.Extras {
		if x.Name == name {
			return x.Value, true
		}
	}
	return 0, false
}

// MarshalBinary implements encoding.BinaryMarshaler. Extras must be
// strictly sorted by name.
func (r *LayoutResult) MarshalBinary() ([]byte, error) {
	if r.Family < 0 {
		return nil, fmt.Errorf("wire: negative layout family")
	}
	st := r.Stats
	for _, v := range []int{st.Width, st.Height, st.Layers, st.MaxWireLength, st.Wires, st.Nodes, st.Vias} {
		if v < 0 {
			return nil, fmt.Errorf("wire: negative layout stat")
		}
	}
	if st.Area < 0 || st.Volume < 0 || st.TotalWireLength < 0 {
		return nil, fmt.Errorf("wire: negative layout stat")
	}
	e := newEnc(TypeLayoutResult, VersionLayoutResult)
	e.uint(int(r.Family))
	e.uint(st.Width)
	e.uint(st.Height)
	e.uvarint(uint64(st.Area))
	e.uvarint(uint64(st.Volume))
	e.uint(st.Layers)
	e.uint(st.MaxWireLength)
	e.uvarint(uint64(st.TotalWireLength))
	e.uint(st.Wires)
	e.uint(st.Nodes)
	e.uint(st.Vias)
	e.uint(len(r.Extras))
	for i, x := range r.Extras {
		if i > 0 && r.Extras[i-1].Name >= x.Name {
			return nil, fmt.Errorf("wire: layout extras not strictly sorted at %q", x.Name)
		}
		e.string(x.Name)
		e.varint(x.Value)
	}
	return e.buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *LayoutResult) UnmarshalBinary(data []byte) error {
	d := newDec(data, TypeLayoutResult, VersionLayoutResult)
	var out LayoutResult
	out.Family = Family(d.uint())
	out.Stats.Width = d.uint()
	out.Stats.Height = d.uint()
	out.Stats.Area = int64(d.uvarint())
	out.Stats.Volume = int64(d.uvarint())
	out.Stats.Layers = d.uint()
	out.Stats.MaxWireLength = d.uint()
	out.Stats.TotalWireLength = int64(d.uvarint())
	out.Stats.Wires = d.uint()
	out.Stats.Nodes = d.uint()
	out.Stats.Vias = d.uint()
	if d.err == nil && (out.Stats.Area < 0 || out.Stats.Volume < 0 || out.Stats.TotalWireLength < 0) {
		d.fail(fmt.Errorf("%w: layout stat overflows int64", ErrRange))
	}
	count := d.listLen(2)
	for i := 0; i < count && d.err == nil; i++ {
		name := d.string()
		val := d.varint()
		if d.err != nil {
			break
		}
		if len(out.Extras) > 0 && out.Extras[len(out.Extras)-1].Name >= name {
			d.fail(fmt.Errorf("%w: layout extras not strictly sorted at %q", ErrCanonical, name))
			break
		}
		out.Extras = append(out.Extras, Extra{Name: name, Value: val})
	}
	if err := d.finish(); err != nil {
		return err
	}
	*r = out
	return nil
}
