package adaptive

import (
	"fmt"
	"runtime"
	"sync"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

// Mode is one recovery strategy under comparison: a static dead-link
// policy or the adaptive router, optionally combined with the end-to-end
// retransmission layer.
type Mode struct {
	Name   string
	Policy routing.Policy
	// Adaptive attaches a Router (Policy is then ignored by the
	// simulator).
	Adaptive bool
	// Retransmit attaches a live reliable transport; without it an
	// observer transport still measures payload delivery.
	Retransmit bool
}

// StandardModes returns the four strategies the E23 sweeps compare: the
// two static policies, the adaptive router alone, and the adaptive
// router with retransmission - the full recovery stack.
func StandardModes() []Mode {
	return []Mode{
		{Name: "drop", Policy: routing.DropDead},
		{Name: "misroute", Policy: routing.Misroute},
		{Name: "adaptive", Adaptive: true},
		{Name: "adaptive+retx", Adaptive: true, Retransmit: true},
	}
}

// Point is one (mode, fault rate) cell of an adaptive link-fault sweep.
type Point struct {
	Mode string
	// Rate is the independent per-link probability of a permanent fault.
	Rate      float64
	DeadLinks int
	Result    *routing.Result
	// Router holds the adaptive router's learning counters (zero for
	// non-adaptive modes).
	Router Stats
	// Transport is the payload-level summary; non-retransmitting modes
	// attach a pure observer transport, so it is live for every mode.
	Transport reliable.Stats
	// Goodput is accepted payloads per node per measured cycle.
	Goodput float64
	// Overhead is Retransmitted / TotalInjected.
	Overhead float64
	Err      error
}

// observer is a transport whose first timer fires after the run ends: it
// never retransmits and leaves the run packet-for-packet untouched, but
// still measures payload delivery (mirrors the internal/reliable sweeps).
func observer(base routing.Params) reliable.Config {
	return reliable.Config{Timeout: base.Warmup + base.Cycles + 1, MaxRetries: 0, Seed: 1}
}

// prepare attaches the mode's machinery to a copy of base: the static
// policy or a fresh Router, and a live or observer transport.
func prepare(base routing.Params, cfg Config, rcfg reliable.Config, m Mode, cellSeed int64) (routing.Params, *Router, *reliable.Transport, error) {
	p := base
	var rt *Router
	if m.Adaptive {
		c := cfg
		c.Seed = cfg.Seed + cellSeed
		var err error
		if rt, err = New(c); err != nil {
			return p, nil, nil, err
		}
		p.Adaptive = rt
	} else {
		p.Policy = m.Policy
	}
	c := rcfg
	if !m.Retransmit {
		c = observer(base)
	}
	c.Seed = rcfg.Seed + cellSeed
	tr, err := reliable.New(c)
	if err != nil {
		return p, nil, nil, err
	}
	tr.MeasureFrom = base.Warmup
	p.Reliable = tr
	return p, rt, tr, nil
}

// finish fills the derived values and asserts copy-exact conservation,
// wrapping failures with the cell's coordinates.
func (pt *Point) finish(rt *Router, tr *reliable.Transport) {
	if pt.Err == nil {
		pt.Err = pt.Result.CheckConservation()
	}
	if pt.Err != nil {
		pt.Err = fmt.Errorf("adaptive: mode %s rate %g: %w", pt.Mode, pt.Rate, pt.Err)
		return
	}
	if rt != nil {
		pt.Router = rt.Stats()
	}
	pt.Transport = tr.Stats()
	pt.Goodput = pt.Result.Throughput
	if pt.Result.TotalInjected > 0 {
		pt.Overhead = float64(pt.Result.Retransmitted) / float64(pt.Result.TotalInjected)
	}
}

// Sweep measures goodput degradation as the permanent link fault rate
// grows, for every mode at every rate. Fault plans are seeded exactly as
// in faults.Sweep (from base.Seed and the rate index) so all modes of a
// rate see the same dead links and the cells line up with the PR-1/PR-2
// sweeps. base.Faults, base.Reliable, and base.Adaptive must be nil.
// base.TTL of 0 becomes faults.DefaultTTL on faulted cells. Cells run
// concurrently; results are mode-major in input order.
func Sweep(base routing.Params, cfg Config, rcfg reliable.Config, modes []Mode, rates []float64) []Point {
	out := make([]Point, len(modes)*len(rates))
	run := func(idx int) {
		mi, ri := idx/len(rates), idx%len(rates)
		pt := &out[idx]
		pt.Mode = modes[mi].Name
		pt.Rate = rates[ri]
		if base.Faults != nil || base.Reliable != nil || base.Adaptive != nil {
			pt.Err = fmt.Errorf("adaptive: mode %s rate %g: base params must not carry Faults, Reliable, or Adaptive", pt.Mode, pt.Rate)
			return
		}
		plan, err := faults.NewPlan(base.N)
		if err != nil {
			pt.Err = err
			pt.finish(nil, nil)
			return
		}
		dead, err := plan.AddRandomLinkFaults(rates[ri], base.Seed+int64(ri)*1_000_003+1)
		if err != nil {
			pt.Err = err
			pt.finish(nil, nil)
			return
		}
		pt.DeadLinks = dead
		p, rt, tr, err := prepare(base, cfg, rcfg, modes[mi], int64(idx)*11_000_027+19)
		if err != nil {
			pt.Err = err
			pt.finish(nil, nil)
			return
		}
		p.Faults = plan
		if p.TTL == 0 && dead > 0 {
			p.TTL = faults.DefaultTTL(base.N)
		}
		pt.Result, pt.Err = routing.Simulate(p)
		pt.finish(rt, tr)
	}
	forEach(len(out), run)
	return out
}

// SchemePoint is one (mode, scheme, kill count) cell of the E23
// module-kill recovery sweep.
type SchemePoint struct {
	Mode   string
	Scheme string
	// Killed is the number of modules failed; DeadNodes the resulting
	// dead node count and DeadNodeFrac its fraction of the network.
	Killed       int
	DeadNodes    int
	DeadNodeFrac float64
	Result       *routing.Result
	Router       Stats
	Transport    reliable.Stats
	Goodput      float64
	Overhead     float64
	Err          error
}

// ModuleKillSweep is experiment E23: it fails k whole modules under each
// packaging scheme (row, nucleus, naive - faults.StandardSchemes) and
// measures every recovery mode on the same wreckage. The module draw is
// seeded per kill count exactly as in faults.ModuleKillSweep, shared
// across schemes and modes. This is the sweep behind the PR's headline
// finding: deterministic retries plateau against permanent module-kill
// (PR 2), while the adaptive router's dimension-shift detours and
// epoch-map rejections recover goodput the static policies cannot.
// Results are ordered mode-major, then scheme, then kill count.
func ModuleKillSweep(base routing.Params, cfg Config, rcfg reliable.Config, modes []Mode, schemes []faults.Scheme, kills []int) []SchemePoint {
	out := make([]SchemePoint, len(modes)*len(schemes)*len(kills))
	run := func(idx int) {
		mi := idx / (len(schemes) * len(kills))
		si := idx / len(kills) % len(schemes)
		ki := idx % len(kills)
		sc := schemes[si]
		pt := &out[idx]
		pt.Mode = modes[mi].Name
		pt.Scheme = sc.Name
		pt.Killed = kills[ki]
		fail := func(err error) {
			pt.Err = fmt.Errorf("adaptive: mode %s scheme %s kills %d: %w",
				pt.Mode, pt.Scheme, pt.Killed, err)
		}
		if base.Faults != nil || base.Reliable != nil || base.Adaptive != nil {
			fail(fmt.Errorf("base params must not carry Faults, Reliable, or Adaptive"))
			return
		}
		if pt.Killed < 0 || pt.Killed > sc.NumModules {
			fail(fmt.Errorf("cannot kill %d of %d modules", pt.Killed, sc.NumModules))
			return
		}
		plan, err := faults.NewPlan(base.N)
		if err != nil {
			fail(err)
			return
		}
		// Same per-k seed across schemes and modes: the draw of which
		// modules die is shared, the cells differ only in what a module
		// is and how the survivors route.
		for _, m := range faults.PickModules(sc.NumModules, pt.Killed, base.Seed+int64(ki)*2_000_003+7) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				fail(err)
				return
			}
			pt.DeadNodes += killed
		}
		pt.DeadNodeFrac = float64(pt.DeadNodes) / float64(plan.Nodes())
		p, rt, tr, err := prepare(base, cfg, rcfg, modes[mi], int64(idx)*13_000_021+29)
		if err != nil {
			fail(err)
			return
		}
		p.Faults = plan
		if p.TTL == 0 && pt.Killed > 0 {
			p.TTL = faults.DefaultTTL(base.N)
		}
		pt.Result, err = routing.Simulate(p)
		if err != nil {
			fail(err)
			return
		}
		if err := pt.Result.CheckConservation(); err != nil {
			fail(err)
			return
		}
		if rt != nil {
			pt.Router = rt.Stats()
		}
		pt.Transport = tr.Stats()
		pt.Goodput = pt.Result.Throughput
		if pt.Result.TotalInjected > 0 {
			pt.Overhead = float64(pt.Result.Retransmitted) / float64(pt.Result.TotalInjected)
		}
	}
	forEach(len(out), run)
	return out
}

// forEach runs f(0..n-1) on a capped worker pool.
func forEach(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
