// Package adaptive implements online fault-aware adaptive routing for the
// wrapped butterfly simulators: the routing.AdaptiveRouter hook. Where the
// static Misroute policy consults the oracle fault state, this router has
// to *learn* link health from the traffic that fails, and spends that
// knowledge three ways.
//
// Detection: every directed link has a consecutive-failure circuit
// breaker. Threshold failed attempts in a row condemn ("open") the link;
// a successful traversal or a successful control-plane probe re-closes
// it. Open links are probed on a deterministic seeded phase every
// ProbeInterval cycles (half-open re-admission) so repaired links return
// to service without a packet having to gamble on them. No wall clock,
// no global randomness: the probe phases are drawn once at Reset from
// Config.Seed, and the run is reproducible.
//
// Detour routing: dimension-order routing has a unique required cross
// link per unfixed address bit, so a policy that merely falls back to the
// straight output (Misroute) retraces the same dead cross link every
// wrap-around pass and never recovers from a permanent fault. This
// router remembers, per packet, the column whose bit a condemned cross
// link kept it from fixing (the blocked marker), and on a later column
// spends one unit of a bounded detour budget to *deliberately* cross on
// a healthy dimension. That flips a row bit, so on the next wrap-around
// pass the packet reaches the blocked column in a different row - and
// needs a different physical cross link, which the fault may not cover.
// Deliberate dimension-shifts buy genuine path diversity, not just
// patience.
//
// Epoch reconfiguration: every Epoch cycles the router snapshots its
// breaker state into a disseminated link-state map (the sources'
// consistent view). The map is used two ways: injections to a
// destination whose every incoming link is condemned are refused upfront
// (Result.UnreachableDetected) instead of wandering to TTL death, and
// route choices avoid one-hop dead ends - nodes whose both outputs the
// map condemns - that oracle-free packets would walk into and die.
//
// A router that has learned nothing - in particular any router on a
// zero-fault run - never deviates from the plan, draws no randomness
// after Reset, and leaves the simulation packet-for-packet identical to
// the baseline.
package adaptive

import (
	"fmt"
	"math/rand"

	"bfvlsi/internal/routing"
)

// Config tunes a Router. The zero value of any field selects the
// DefaultConfig value for that field at New.
type Config struct {
	// Threshold is the number of consecutive failed attempts that opens a
	// link's breaker.
	Threshold int
	// ProbeInterval is the period, in cycles, of the deterministic probe
	// timer of an open breaker (half-open re-admission).
	ProbeInterval int
	// MaxDetours is the per-packet budget of deliberate dimension-shift
	// detours.
	MaxDetours int
	// Epoch is the link-state dissemination period in cycles; every
	// multiple of it the breaker state is snapshotted into the map that
	// drives RejectDest and dead-end avoidance. 0 disables dissemination
	// (breakers and detours still work).
	Epoch int
	// Seed draws the per-link probe phases at Reset.
	Seed int64
}

// DefaultConfig returns the tuning used by the sweeps for dimension n:
// breakers open fast (2 strikes), probes and epochs scale with the
// network diameter, and the detour budget allows a few dimension-shifts
// without letting packets thrash.
func DefaultConfig(n int) Config {
	return Config{
		Threshold:     2,
		ProbeInterval: 2 * n,
		MaxDetours:    3,
		Epoch:         4 * n,
		Seed:          1,
	}
}

// Stats counts the router's learning activity over a run.
type Stats struct {
	// Opened and Reclosed count breaker transitions (a link may open and
	// re-close many times).
	Opened, Reclosed int
	// Probes and ProbesAlive count control-plane probes sent and probes
	// that found the link alive.
	Probes, ProbesAlive int
	// Epochs counts link-state dissemination rounds.
	Epochs int
	// OpenAtEnd is the number of links condemned when the run ended.
	OpenAtEnd int
}

// Router is the routing.AdaptiveRouter implementation. Create one with
// New, hand it to routing.Params.Adaptive, and read Stats afterwards.
// A Router must not be shared by concurrently running simulations; Reset
// makes it reusable sequentially.
type Router struct {
	cfg   Config
	n     int
	rows  int
	cycle int

	consec []int  // consecutive failures per directed link
	open   []bool // breaker state per directed link
	phase  []int  // probe phase per directed link, drawn at Reset
	target []int  // directed link -> head node id

	mapDead []bool // disseminated link-state snapshot of open
	haveMap bool

	stats    Stats
	probeBuf []int
}

var _ routing.AdaptiveRouter = (*Router)(nil)

// New builds a Router; zero Config fields take their DefaultConfig
// values once the dimension is known at Reset. Negative fields are
// rejected.
func New(cfg Config) (*Router, error) {
	if cfg.Threshold < 0 || cfg.ProbeInterval < 0 || cfg.MaxDetours < 0 || cfg.Epoch < 0 {
		return nil, fmt.Errorf("adaptive: negative config field %+v", cfg)
	}
	return &Router{cfg: cfg}, nil
}

// Reset implements routing.AdaptiveRouter: it sizes the state for the
// n-dimensional wrapped butterfly and draws the probe phases. All
// randomness the router will ever use is consumed here.
func (r *Router) Reset(n, rows int) {
	r.n, r.rows = n, rows
	def := DefaultConfig(n)
	if r.cfg.Threshold == 0 {
		r.cfg.Threshold = def.Threshold
	}
	if r.cfg.ProbeInterval == 0 {
		r.cfg.ProbeInterval = def.ProbeInterval
	}
	if r.cfg.MaxDetours == 0 {
		r.cfg.MaxDetours = def.MaxDetours
	}
	if r.cfg.Seed == 0 {
		r.cfg.Seed = def.Seed
	}
	links := n * rows * 2
	r.consec = make([]int, links)
	r.open = make([]bool, links)
	r.phase = make([]int, links)
	r.target = make([]int, links)
	r.mapDead = make([]bool, links)
	r.haveMap = false
	r.stats = Stats{}
	r.cycle = 0
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for l := range r.phase {
		r.phase[l] = rng.Intn(r.cfg.ProbeInterval)
		node, out := l/2, l%2
		row, col := node%rows, node/rows
		nr := row
		if out == 1 {
			nr = row ^ (1 << uint(col))
		}
		r.target[l] = ((col+1)%n)*rows + nr
	}
}

// BeginCycle implements routing.AdaptiveRouter: it advances the probe
// clock and, on epoch boundaries, disseminates the breaker state into
// the sources' link-state map.
func (r *Router) BeginCycle(cycle int) {
	r.cycle = cycle
	if r.cfg.Epoch > 0 && cycle%r.cfg.Epoch == 0 {
		copy(r.mapDead, r.open)
		r.haveMap = true
		r.stats.Epochs++
	}
}

// Probes implements routing.AdaptiveRouter: the open links whose seeded
// probe timer fires this cycle. The returned slice is reused between
// calls.
func (r *Router) Probes() []int {
	r.probeBuf = r.probeBuf[:0]
	for l, o := range r.open {
		if o && (r.cycle+r.phase[l])%r.cfg.ProbeInterval == 0 {
			r.probeBuf = append(r.probeBuf, l)
		}
	}
	return r.probeBuf
}

// ProbeResult implements routing.AdaptiveRouter: a live probe re-closes
// the breaker (half-open re-admission), a dead one leaves it open.
func (r *Router) ProbeResult(link int, alive bool) {
	r.stats.Probes++
	if alive {
		r.stats.ProbesAlive++
		if r.open[link] {
			r.open[link] = false
			r.stats.Reclosed++
		}
		r.consec[link] = 0
	}
}

// ObserveSuccess implements routing.AdaptiveRouter.
func (r *Router) ObserveSuccess(link int) {
	r.consec[link] = 0
	if r.open[link] {
		// The simulator moved a packet over a link the router had
		// condemned (breakers do not block the physical link): the
		// condemnation was stale.
		r.open[link] = false
		r.stats.Reclosed++
	}
}

// ObserveFailure implements routing.AdaptiveRouter.
func (r *Router) ObserveFailure(link int) {
	r.consec[link]++
	if !r.open[link] && r.consec[link] >= r.cfg.Threshold {
		r.open[link] = true
		r.stats.Opened++
	}
}

// score ranks a directed link for a packet to dst: 0 usable, 1 usable
// but leading into a one-hop dead end the link-state map condemns, 2
// condemned by its own breaker. Lower is better; ties go to the planned
// output.
func (r *Router) score(l, dst int) int {
	if r.open[l] {
		return 2
	}
	if r.haveMap {
		t := r.target[l]
		if t != dst && r.mapDead[t*2] && r.mapDead[t*2+1] {
			return 1
		}
	}
	return 0
}

// Choose implements routing.AdaptiveRouter. It is a pure read: the
// simulator may discard the Decision (credit denial) and call again
// later.
func (r *Router) Choose(h routing.Hop) routing.Decision {
	col := h.Node / r.rows
	ss := r.score(h.Node*2, h.Dst)
	cs := r.score(h.Node*2+1, h.Dst)
	d := routing.Decision{Out: h.Want, Blocked: h.Blocked}
	if h.Want == 1 {
		// Planned cross: take it unless the straight output outranks it,
		// in which case detour straight and remember the blocked column
		// so a later hop may spend a deliberate dimension-shift on it.
		if cs <= ss {
			d.Out = 1
		} else {
			d.Out = 0
			d.Detour = true
			d.Blocked = col
		}
	} else {
		// Planned straight. A packet carrying a blocked-column marker
		// spends one unit of detour budget to cross here deliberately if
		// this cross is clean: that flips row bit col, so the next
		// wrap-around pass reaches the blocked column in a different row
		// and retries the bit over a different physical link.
		if h.Blocked >= 0 && h.Blocked != col && h.Detours < r.cfg.MaxDetours && cs == 0 {
			d.Out = 1
			d.Detour = true
			d.Deliberate = true
			d.Blocked = -1
		} else if ss <= cs {
			d.Out = 0
		} else {
			// Forced off the straight output: crossing breaks bit col,
			// which plain dimension-order routing re-fixes on a later
			// pass - no marker needed.
			d.Out = 1
			d.Detour = true
		}
	}
	if d.Out == 1 && d.Blocked == col {
		// Any cross taken at the blocked column fixes its bit.
		d.Blocked = -1
	}
	return d
}

// RejectDest implements routing.AdaptiveRouter: true when the
// disseminated link-state map condemns every link into dst.
func (r *Router) RejectDest(dst int) bool {
	if !r.haveMap {
		return false
	}
	dr, dc := dst%r.rows, dst/r.rows
	prev := (dc - 1 + r.n) % r.n
	straightSrc := prev*r.rows + dr
	crossSrc := prev*r.rows + (dr ^ (1 << uint(prev)))
	return r.mapDead[straightSrc*2] && r.mapDead[crossSrc*2+1]
}

// Stats returns the learning counters; OpenAtEnd reflects the breaker
// state at the time of the call.
func (r *Router) Stats() Stats {
	s := r.stats
	s.OpenAtEnd = 0
	for _, o := range r.open {
		if o {
			s.OpenAtEnd++
		}
	}
	return s
}
