package adaptive

import "fmt"

// Mid-run state export and restore, the router's half of the
// checkpoint contract (see routing.SimState). Only learned state is
// serialized: the probe phases and link targets are a pure function of
// (Config, n, rows) and are re-derived by Reset, which also consumes
// all the randomness the router will ever draw — so a restored router
// needs no RNG position at all.

// State is a router's complete learned mid-run state.
type State struct {
	N, Rows int
	// Cycle is the last BeginCycle value seen.
	Cycle int
	// Consec and Open are the per-directed-link breaker state; MapDead
	// and HaveMap the disseminated link-state snapshot.
	Consec  []int
	Open    []bool
	MapDead []bool
	HaveMap bool
	// Stats are the learning counters (OpenAtEnd is derived at read
	// time and ignored here).
	Stats Stats
}

// State exports the router's learned state. The result shares no
// memory with the router.
func (r *Router) State() *State {
	return &State{
		N: r.n, Rows: r.rows, Cycle: r.cycle,
		Consec:  append([]int(nil), r.consec...),
		Open:    append([]bool(nil), r.open...),
		MapDead: append([]bool(nil), r.mapDead...),
		HaveMap: r.haveMap,
		Stats:   r.stats,
	}
}

// RestoreState resets the router for st's geometry (re-deriving probe
// phases and targets from the Config) and overwrites the learned state
// with st, validating it first. The router's Config must be the one
// the state was captured under for the continuation to be exact.
func (r *Router) RestoreState(st *State) error {
	if st.N < 1 || st.N > 14 || st.Rows != 1<<uint(st.N) {
		return fmt.Errorf("adaptive: restore geometry n=%d rows=%d invalid", st.N, st.Rows)
	}
	links := st.N * st.Rows * 2
	if len(st.Consec) != links || len(st.Open) != links || len(st.MapDead) != links {
		return fmt.Errorf("adaptive: restore state sized %d/%d/%d links, want %d",
			len(st.Consec), len(st.Open), len(st.MapDead), links)
	}
	for _, c := range st.Consec {
		if c < 0 {
			return fmt.Errorf("adaptive: restore negative failure streak")
		}
	}
	// OpenAtEnd is derived at Stats() read time, never stored, so an
	// honest capture always carries 0; a nonzero value marks a
	// hand-built or corrupt state.
	if st.Cycle < 0 || st.Stats.Opened < 0 || st.Stats.Reclosed > st.Stats.Opened ||
		st.Stats.Probes < 0 || st.Stats.ProbesAlive > st.Stats.Probes ||
		st.Stats.Epochs < 0 || st.Stats.OpenAtEnd != 0 {
		return fmt.Errorf("adaptive: restore counters inconsistent: %+v", st.Stats)
	}
	r.Reset(st.N, st.Rows)
	r.cycle = st.Cycle
	copy(r.consec, st.Consec)
	copy(r.open, st.Open)
	copy(r.mapDead, st.MapDead)
	r.haveMap = st.HaveMap
	r.stats = st.Stats
	return nil
}
