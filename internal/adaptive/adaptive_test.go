package adaptive

import (
	"bytes"
	"strconv"
	"testing"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Threshold: -1}); err == nil {
		t.Error("negative Threshold accepted")
	}
	if _, err := New(Config{Epoch: -3}); err == nil {
		t.Error("negative Epoch accepted")
	}
	if _, err := New(Config{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}

// The circuit breaker: Threshold consecutive failures open a link, a
// success or a live probe re-closes it, and an intervening success resets
// the strike count.
func TestBreakerLifecycle(t *testing.T) {
	r, err := New(Config{Threshold: 3, ProbeInterval: 5, Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	r.Reset(3, 8)
	link := 42
	hop := routing.Hop{Node: link / 2, Want: link % 2, Dst: 0, Blocked: -1}
	r.ObserveFailure(link)
	r.ObserveFailure(link)
	r.ObserveSuccess(link) // strike count resets
	r.ObserveFailure(link)
	r.ObserveFailure(link)
	if d := r.Choose(hop); d.Out != hop.Want {
		t.Fatalf("breaker opened before threshold: %+v", d)
	}
	r.ObserveFailure(link)
	if s := r.Stats(); s.Opened != 1 || s.OpenAtEnd != 1 {
		t.Fatalf("breaker did not open at threshold: %+v", s)
	}
	// A success over the condemned link (the breaker does not block the
	// physical link) re-closes it immediately.
	r.ObserveSuccess(link)
	if s := r.Stats(); s.Reclosed != 1 || s.OpenAtEnd != 0 {
		t.Fatalf("success did not re-close the breaker: %+v", s)
	}
	// Open again and re-admit via a live probe instead.
	for i := 0; i < 3; i++ {
		r.ObserveFailure(link)
	}
	probed := false
	for cycle := 0; cycle < 10 && !probed; cycle++ {
		r.BeginCycle(cycle)
		for _, l := range r.Probes() {
			if l != link {
				t.Fatalf("probe for unexpected link %d", l)
			}
			r.ProbeResult(l, true)
			probed = true
		}
	}
	if !probed {
		t.Fatal("open breaker was never probed within its interval")
	}
	if s := r.Stats(); s.OpenAtEnd != 0 || s.ProbesAlive != 1 {
		t.Fatalf("live probe did not re-admit the link: %+v", s)
	}
}

// The epoch map: RejectDest condemns a destination only after a
// dissemination round has published breakers covering every incoming
// link, and a later round withdraws the condemnation once they re-close.
func TestEpochMapRejectDest(t *testing.T) {
	n, rows := 3, 8
	r, err := New(Config{Threshold: 1, Epoch: 10})
	if err != nil {
		t.Fatal(err)
	}
	r.Reset(n, rows)
	r.BeginCycle(0)
	// Destination (row 5, col 1): incoming straight from (5, col 0),
	// incoming cross from (5^1, col 0).
	dst := 1*rows + 5
	straightIn := 0*rows + 5
	crossIn := 0*rows + (5 ^ 1)
	r.ObserveFailure(straightIn * 2)
	r.ObserveFailure(crossIn*2 + 1)
	if r.RejectDest(dst) {
		t.Fatal("destination condemned before any dissemination round")
	}
	r.BeginCycle(10)
	if !r.RejectDest(dst) {
		t.Fatal("destination not condemned after dissemination")
	}
	if r.RejectDest(0*rows + 5) {
		t.Fatal("unrelated destination condemned")
	}
	r.ObserveSuccess(straightIn * 2)
	if !r.RejectDest(dst) {
		t.Fatal("condemnation withdrawn before the next epoch")
	}
	r.BeginCycle(20)
	if r.RejectDest(dst) {
		t.Fatal("condemnation not withdrawn after the link re-closed")
	}
}

// The Choose ladder: plan obeyed on clean links; a condemned planned
// cross forces a straight detour that records the blocked column; the
// marker buys exactly one deliberate dimension-shift on a later clean
// column; the budget caps the shifts.
func TestChooseLadder(t *testing.T) {
	n, rows := 4, 16
	r, err := New(Config{Threshold: 1, MaxDetours: 1, Epoch: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.Reset(n, rows)
	node := 1*rows + 3 // (row 3, col 1)
	dst := 3*rows + 9
	clean := r.Choose(routing.Hop{Node: node, Want: 1, Dst: dst, Blocked: -1})
	if clean.Out != 1 || clean.Detour || clean.Blocked != -1 {
		t.Fatalf("clean planned cross not obeyed: %+v", clean)
	}
	r.ObserveFailure(node*2 + 1) // condemn the cross (threshold 1)
	forced := r.Choose(routing.Hop{Node: node, Want: 1, Dst: dst, Blocked: -1})
	if forced.Out != 0 || !forced.Detour || forced.Deliberate || forced.Blocked != 1 {
		t.Fatalf("condemned cross did not force a marked straight detour: %+v", forced)
	}
	// At a later column with budget left, the marker buys a deliberate
	// shift and is consumed.
	later := 2*rows + 3
	shift := r.Choose(routing.Hop{Node: later, Want: 0, Dst: dst, Detours: 0, Blocked: 1})
	if shift.Out != 1 || !shift.Deliberate || shift.Blocked != -1 {
		t.Fatalf("blocked marker did not buy a dimension-shift: %+v", shift)
	}
	// Budget spent: no further shifts.
	spent := r.Choose(routing.Hop{Node: later, Want: 0, Dst: dst, Detours: 1, Blocked: 1})
	if spent.Out != 0 || spent.Deliberate {
		t.Fatalf("detour budget not enforced: %+v", spent)
	}
	// Both outputs condemned: wait on the plan.
	r.ObserveFailure(node * 2)
	wait := r.Choose(routing.Hop{Node: node, Want: 1, Dst: dst, Blocked: -1})
	if wait.Out != 1 || wait.Detour {
		t.Fatalf("fully condemned switch did not wait on the plan: %+v", wait)
	}
}

// The PR's golden acceptance gate: with detection enabled and zero
// faults, both simulators must produce runs packet-for-packet identical
// to the baseline - same Result, same trace bytes.
func TestGoldenZeroFaultIdentity(t *testing.T) {
	for _, buffers := range []int{0, 4} {
		var baseTrace, adaTrace bytes.Buffer
		p := routing.Params{
			N: 5, Lambda: 0.12, Warmup: 80, Cycles: 400, Seed: 7,
			BufferLimit: buffers, Trace: &baseTrace,
		}
		base, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := New(DefaultConfig(5))
		if err != nil {
			t.Fatal(err)
		}
		q := p
		q.Trace = &adaTrace
		q.Adaptive = rt
		got, err := routing.Simulate(q)
		if err != nil {
			t.Fatal(err)
		}
		if *base != *got {
			t.Errorf("buffers=%d: zero-fault adaptive run diverged:\n%+v\nvs\n%+v", buffers, base, got)
		}
		if !bytes.Equal(baseTrace.Bytes(), adaTrace.Bytes()) {
			t.Errorf("buffers=%d: zero-fault adaptive trace diverged", buffers)
		}
		if s := rt.Stats(); s.Opened != 0 || s.Probes != 0 {
			t.Errorf("buffers=%d: router learned from a fault-free run: %+v", buffers, s)
		}
	}
}

// Experiment E23, the PR's headline: under permanent module-kill the
// adaptive router - alone and stacked with retransmission - recovers
// strictly more goodput than the static Misroute and DropDead policies
// on the row and nucleus packagings, with copy-exact conservation in
// every cell. The naive packaging's modules span whole rows, and at this
// load Misroute already delivers everything deliverable there, so the
// assertion relaxes to "no worse" on that scheme.
func TestE23ModuleKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("E23 sweep is a full 36-cell n=6 comparison")
	}
	n := 6
	schemes, err := faults.StandardSchemes(n)
	if err != nil {
		t.Fatal(err)
	}
	base := routing.Params{N: n, Lambda: 0.06, Warmup: 200, Cycles: 800, Seed: 42}
	rcfg := reliable.Config{Timeout: 8 * n, MaxRetries: 1, MaxTimeout: 32 * n, Seed: 9}
	pts := ModuleKillSweep(base, DefaultConfig(n), rcfg, StandardModes(), schemes, []int{0, 2, 4})
	goodput := map[string]map[string]float64{}
	var sawDetours, sawReroutes, sawDetected, sawOpened bool
	for i := range pts {
		pt := &pts[i]
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		key := pt.Scheme + "/" + strconv.Itoa(pt.Killed)
		if goodput[key] == nil {
			goodput[key] = map[string]float64{}
		}
		goodput[key][pt.Mode] = pt.Goodput
		if pt.Mode == "adaptive" && pt.Killed > 0 {
			sawDetours = sawDetours || pt.Result.Detours > 0
			sawReroutes = sawReroutes || pt.Result.Reroutes > 0
			sawDetected = sawDetected || pt.Result.UnreachableDetected > 0
			sawOpened = sawOpened || pt.Router.Opened > 0
		}
		if pt.Killed == 0 && (pt.Result.Detours != 0 || pt.Result.Reroutes != 0 || pt.Result.UnreachableDetected != 0) {
			t.Errorf("%s %s: zero-kill cell deviated from the plan: %+v", pt.Mode, key, pt.Result)
		}
	}
	for key, g := range goodput {
		if len(g) != 4 {
			t.Fatalf("cell %s has %d modes", key, len(g))
		}
	}
	// Zero-kill cells: all four modes identical (the golden identity seen
	// through the sweep).
	for _, sc := range []string{"row", "nucleus", "naive"} {
		g := goodput[sc+"/0"]
		for mode, v := range g {
			if v != g["drop"] {
				t.Errorf("scheme %s kills 0: mode %s goodput %g != drop %g", sc, mode, v, g["drop"])
			}
		}
	}
	for _, sc := range []string{"row", "nucleus"} {
		for _, k := range []string{"2", "4"} {
			g := goodput[sc+"/"+k]
			for _, ada := range []string{"adaptive", "adaptive+retx"} {
				for _, static := range []string{"misroute", "drop"} {
					if g[ada] <= g[static] {
						t.Errorf("scheme %s kills %s: %s goodput %g not strictly above %s %g",
							sc, k, ada, g[ada], static, g[static])
					}
				}
			}
		}
	}
	for _, k := range []string{"2", "4"} {
		g := goodput["naive/"+k]
		if g["adaptive"] < g["misroute"] {
			t.Errorf("naive kills %s: adaptive goodput %g below misroute %g", k, g["adaptive"], g["misroute"])
		}
	}
	if !sawDetours || !sawReroutes || !sawOpened {
		t.Errorf("adaptive machinery idle under module-kill: detours=%v reroutes=%v opened=%v",
			sawDetours, sawReroutes, sawOpened)
	}
	if !sawDetected {
		t.Error("epoch map never rejected a learned-dead destination")
	}
}

// The link-fault sweep: zero-rate cells reproduce the fault-free baseline
// in every mode, all cells conserve, and the adaptive cells learn.
func TestSweepZeroRateBaseline(t *testing.T) {
	base := routing.Params{N: 4, Lambda: 0.1, Warmup: 50, Cycles: 300, Seed: 3}
	rcfg := reliable.Config{Timeout: 30, MaxRetries: 1, Seed: 5}
	pts := Sweep(base, DefaultConfig(4), rcfg, StandardModes(), []float64{0, 0.04})
	var zero []float64
	for i := range pts {
		pt := &pts[i]
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		if pt.Rate == 0 {
			zero = append(zero, pt.Goodput)
		} else if pt.Mode == "adaptive" && pt.Router.Opened == 0 {
			t.Errorf("mode %s rate %g: no breaker ever opened over %d dead links",
				pt.Mode, pt.Rate, pt.DeadLinks)
		}
	}
	for _, g := range zero {
		if g != zero[0] {
			t.Errorf("zero-rate cells disagree: %v", zero)
		}
	}
}

// The virtual-channel simulator honors the same adaptive semantics:
// module-kill cells conserve exactly and the detour machinery engages
// under finite buffers and dateline VCs.
func TestVCModuleKillConservation(t *testing.T) {
	n := 5
	schemes, err := faults.StandardSchemes(n)
	if err != nil {
		t.Fatal(err)
	}
	base := routing.Params{N: n, Lambda: 0.08, Warmup: 100, Cycles: 400, Seed: 21, BufferLimit: 3}
	rcfg := reliable.Config{Timeout: 8 * n, MaxRetries: 1, Seed: 9}
	pts := ModuleKillSweep(base, DefaultConfig(n), rcfg, StandardModes(), schemes[:2], []int{0, 2})
	sawDetours := false
	for i := range pts {
		pt := &pts[i]
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		if pt.Mode == "adaptive" && pt.Killed > 0 && pt.Result.Detours > 0 {
			sawDetours = true
		}
	}
	if !sawDetours {
		t.Error("no adaptive detours under VC module-kill")
	}
}
