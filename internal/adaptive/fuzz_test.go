package adaptive

import (
	"testing"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
)

// FuzzAdaptiveConservation throws arbitrary fault plans, router tunings,
// and simulator modes at the adaptive stack and asserts the copy-exact
// conservation identity - including the Unreachable partition - never
// breaks. This is the adaptive counterpart of FuzzPlanComposition: the
// oracle is the accounting itself.
func FuzzAdaptiveConservation(f *testing.F) {
	f.Add(uint8(3), uint16(100), int64(1), uint8(10), uint8(2), uint8(0), uint8(2), uint8(12), false)
	f.Add(uint8(4), uint16(200), int64(9), uint8(30), uint8(0), uint8(3), uint8(1), uint8(0), true)
	f.Add(uint8(2), uint16(50), int64(42), uint8(0), uint8(5), uint8(2), uint8(3), uint8(7), false)
	f.Fuzz(func(t *testing.T, nRaw uint8, lamRaw uint16, seed int64,
		linkPct, deadNodes, bufferLimit, threshold, epoch uint8, retx bool) {
		n := 2 + int(nRaw%4) // 2..5
		rows := 1 << uint(n)
		nodes := n * rows
		lambda := float64(lamRaw%300) / 1000
		plan, err := faults.NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.AddRandomLinkFaults(float64(linkPct%40)/100, seed+1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < int(deadNodes%8); i++ {
			node := int((seed + int64(i)*7919) % int64(nodes))
			if node < 0 {
				node += nodes
			}
			if err := plan.AddNodeFault(node, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		rt, err := New(Config{
			Threshold: 1 + int(threshold%4),
			Epoch:     int(epoch % 30), // 0 disables dissemination
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := routing.Params{
			N: n, Lambda: lambda, Warmup: 20, Cycles: 120, Seed: seed,
			BufferLimit: int(bufferLimit % 5), // 0 = unbounded mode
			Faults:      plan,
			Adaptive:    rt,
			TTL:         faults.DefaultTTL(n),
		}
		if retx {
			tr, err := reliable.New(reliable.Config{Timeout: 3 * n, MaxRetries: 2, Seed: seed + 3})
			if err != nil {
				t.Fatal(err)
			}
			p.Reliable = tr
		}
		res, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckConservation(); err != nil {
			t.Fatalf("n=%d lambda=%g buffers=%d retx=%v: %v", n, lambda, p.BufferLimit, retx, err)
		}
		if res.Detours < 0 || res.Reroutes < 0 {
			t.Fatalf("negative adaptive counters: %+v", res)
		}
	})
}
