// Package detrng wraps math/rand's seeded source with a draw counter,
// making a random stream's position serializable. The simulators'
// determinism contract says every run is a pure function of (params,
// seed); a checkpoint therefore does not need to serialize the opaque
// generator state at all — it records the seed and how many values have
// been drawn, and a restore re-seeds and fast-forwards. Replay cost is
// linear in the position, which is trivial next to re-simulating the
// cycles that consumed those draws.
//
// The wrapper is stream-transparent: a *rand.Rand built over a Source
// produces exactly the byte-for-byte value sequence of
// rand.New(rand.NewSource(seed)). Both Int63 and Uint64 delegate to the
// underlying rngSource, whose two methods advance the same internal
// state by exactly one step each, so a single counter positions the
// stream regardless of which mix of methods consumed it.
package detrng

import "math/rand"

// Source is a seeded rand.Source64 that counts its draws. Create with
// New or Restore; the zero value is not usable.
type Source struct {
	seed  int64
	draws uint64
	inner rand.Source64
}

// New returns a counted source seeded with seed, positioned at draw 0.
func New(seed int64) *Source {
	return &Source{seed: seed, inner: rand.NewSource(seed).(rand.Source64)}
}

// Restore returns a counted source seeded with seed and fast-forwarded
// past the first draws values: the position a checkpoint recorded.
func Restore(seed int64, draws uint64) *Source {
	s := New(seed)
	for i := uint64(0); i < draws; i++ {
		s.inner.Uint64()
	}
	s.draws = draws
	return s
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.inner.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.inner.Uint64()
}

// Seed implements rand.Source: it re-seeds and rewinds the counter.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.inner.Seed(seed)
}

// SeedValue returns the seed the stream was created from.
func (s *Source) SeedValue() int64 { return s.seed }

// Draws returns the stream position: the number of values drawn since
// seeding. Restore(s.SeedValue(), s.Draws()) reproduces the source's
// exact state.
func (s *Source) Draws() uint64 { return s.draws }
