package detrng

import (
	"math/rand"
	"testing"
)

// TestStreamTransparent pins the wrapper's core contract: a *rand.Rand
// over a counted Source yields exactly the stream of a bare seeded
// source, across the method mix the simulators use.
func TestStreamTransparent(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7} {
		want := rand.New(rand.NewSource(seed))
		got := rand.New(New(seed))
		for i := 0; i < 2000; i++ {
			switch i % 4 {
			case 0:
				if w, g := want.Float64(), got.Float64(); w != g {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, g, w)
				}
			case 1:
				if w, g := want.Intn(97), got.Intn(97); w != g {
					t.Fatalf("seed %d draw %d: Intn %v != %v", seed, i, g, w)
				}
			case 2:
				if w, g := want.Int63(), got.Int63(); w != g {
					t.Fatalf("seed %d draw %d: Int63 %v != %v", seed, i, g, w)
				}
			case 3:
				if w, g := want.Uint64(), got.Uint64(); w != g {
					t.Fatalf("seed %d draw %d: Uint64 %v != %v", seed, i, g, w)
				}
			}
		}
	}
}

// TestRestoreResumesExactly checks that Restore(seed, draws) continues
// the stream exactly where the original left off, for positions reached
// through an arbitrary mix of draw methods.
func TestRestoreResumesExactly(t *testing.T) {
	src := New(42)
	rng := rand.New(src)
	for i := 0; i < 1234; i++ {
		if i%3 == 0 {
			rng.Float64()
		} else {
			rng.Intn(1000)
		}
	}
	seed, draws := src.SeedValue(), src.Draws()

	resumed := rand.New(Restore(seed, draws))
	for i := 0; i < 500; i++ {
		if w, g := rng.Float64(), resumed.Float64(); w != g {
			t.Fatalf("draw %d after restore: %v != %v", i, g, w)
		}
	}
}

// TestSeedRewindsCounter checks Seed resets the position.
func TestSeedRewindsCounter(t *testing.T) {
	src := New(1)
	rand.New(src).Intn(100)
	if src.Draws() == 0 {
		t.Fatal("draws not counted")
	}
	src.Seed(9)
	if src.Draws() != 0 || src.SeedValue() != 9 {
		t.Fatalf("Seed did not rewind: draws=%d seed=%d", src.Draws(), src.SeedValue())
	}
	want := rand.New(rand.NewSource(9))
	got := rand.New(src)
	if want.Int63() != got.Int63() {
		t.Fatal("re-seeded stream diverges")
	}
}
