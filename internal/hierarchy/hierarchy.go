// Package hierarchy implements the hierarchical layout model of
// Section 5 of the paper: multiple packaging levels (chips on a board,
// boards in a cabinet), each with pin, area, and wire-width constraints,
// and the Section 5.2 design engine that reproduces the paper's worked
// example: a 9-dimensional butterfly packaged onto 64 chips of 80 nodes
// with 56 (<= 64) off-chip links per chip, on a board of area 409.6K with
// two wiring layers, 160K with four, and 78.4K with eight; the naive
// consecutive-row partition needs 171 chips.
package hierarchy

import (
	"fmt"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
)

// Level describes one level of the packaging hierarchy.
type Level struct {
	Name      string
	MaxPins   int // maximum off-module links per module at this level
	Side      int // module side length (level-specific length units)
	WireWidth int // minimum wire width at this level (1 = unit)
}

// Hierarchy is an ordered list of levels, innermost (chip) first.
type Hierarchy struct {
	Levels []Level
}

// Validate checks basic sanity of the hierarchy description.
func (h *Hierarchy) Validate() error {
	if len(h.Levels) == 0 {
		return fmt.Errorf("hierarchy: no levels")
	}
	for i, lv := range h.Levels {
		if lv.MaxPins < 0 || lv.Side <= 0 || lv.WireWidth <= 0 {
			return fmt.Errorf("hierarchy: level %d (%s) has invalid parameters", i, lv.Name)
		}
	}
	return nil
}

// BoardDesign is a two-level (chip + board) design for an n-dimensional
// butterfly produced by Design, mirroring Section 5.2.
type BoardDesign struct {
	N        int
	Spec     bitutil.GroupSpec
	ChipSide int
	MaxPins  int

	RowsPerChip  int
	NodesPerChip int
	NumChips     int
	// OffChipLinks is the maximum number of off-chip links of any chip,
	// measured from the actual partition (not the formula).
	OffChipLinks int

	GridRows, GridCols int
	// RawHTracks / RawVTracks are the two-layer track counts per
	// horizontal/vertical inter-chip gap from the quadrupled collinear
	// layouts (c * floor(m^2/4)).
	RawHTracks, RawVTracks int
	// Optimized*Tracks apply the paper's neighboring-block improvement,
	// which saves 4 tracks per gap.
	OptimizedHTracks, OptimizedVTracks int
}

// neighborSaving is the Section 5.2 optimization: links between
// neighboring blocks move onto the tracks directly between those blocks,
// reducing each gap by 4 tracks.
const neighborSaving = 4

// Design searches the l <= 3 group specs of an n-dimensional butterfly
// for the row partition that fits within maxPins off-chip links per chip
// while minimizing the number of chips (then pins). chipSide is carried
// into the board geometry.
func Design(n, maxPins, chipSide int) (*BoardDesign, error) {
	if n < 2 || n > 12 {
		return nil, fmt.Errorf("hierarchy: dimension %d out of supported range [2,12]", n)
	}
	var best *BoardDesign
	for k1 := 1; k1 < n; k1++ {
		rowsPer := 1 << uint(k1)
		for _, widths := range specCandidates(n, k1) {
			spec, err := bitutil.NewGroupSpec(widths...)
			if err != nil {
				continue
			}
			sb := isn.Transform(spec)
			part := packaging.RowPartition(sb)
			st := part.Stats()
			if st.MaxOffLinksPerModu > maxPins {
				continue
			}
			d := &BoardDesign{
				N:            n,
				Spec:         spec,
				ChipSide:     chipSide,
				MaxPins:      maxPins,
				RowsPerChip:  rowsPer,
				NodesPerChip: st.MaxNodesPerModule,
				NumChips:     st.NumModules,
				OffChipLinks: st.MaxOffLinksPerModu,
			}
			if err := d.fillBoardGeometry(); err != nil {
				continue
			}
			if best == nil || d.NumChips < best.NumChips ||
				(d.NumChips == best.NumChips && d.OffChipLinks < best.OffChipLinks) {
				best = d
			}
		}
	}
	if best == nil {
		return nil, fmt.Errorf("hierarchy: no l<=3 partition of B_%d fits %d pins", n, maxPins)
	}
	return best, nil
}

// specCandidates enumerates (k1, k2, k3) with k1 fixed, k1 >= k2 >= k3,
// summing to n, with 2 or 3 levels.
func specCandidates(n, k1 int) [][]int {
	var out [][]int
	if k1 == n {
		out = append(out, []int{k1})
	}
	for k2 := 1; k2 <= k1; k2++ {
		if k1+k2 == n {
			out = append(out, []int{k1, k2})
		}
		k3 := n - k1 - k2
		if k3 >= 1 && k3 <= k2 {
			out = append(out, []int{k1, k2, k3})
		}
	}
	return out
}

func (d *BoardDesign) fillBoardGeometry() error {
	spec := d.Spec
	k1 := spec.GroupWidth(1)
	m2, m3 := 1, 1
	if spec.Levels() >= 2 {
		m2 = 1 << uint(spec.GroupWidth(2))
		c2, ok := bitutil.CheckedShl(1, 2+k1-spec.GroupWidth(2))
		if !ok {
			return fmt.Errorf("hierarchy: horizontal replication 2^(2+k1-k2) overflows int for spec %v", spec)
		}
		m2sq, ok := bitutil.CheckedMul(m2, m2)
		if !ok {
			return fmt.Errorf("hierarchy: grid width 2^(2k2) overflows int for spec %v", spec)
		}
		raw, ok := bitutil.CheckedMul(c2, m2sq/4)
		if !ok {
			return fmt.Errorf("hierarchy: horizontal track count overflows int for spec %v", spec)
		}
		d.RawHTracks = raw
		d.OptimizedHTracks = d.RawHTracks - neighborSaving
	}
	if spec.Levels() == 3 {
		m3 = 1 << uint(spec.GroupWidth(3))
		c3, ok := bitutil.CheckedShl(1, 2+k1-spec.GroupWidth(3))
		if !ok {
			return fmt.Errorf("hierarchy: vertical replication 2^(2+k1-k3) overflows int for spec %v", spec)
		}
		m3sq, ok := bitutil.CheckedMul(m3, m3)
		if !ok {
			return fmt.Errorf("hierarchy: grid height 2^(2k3) overflows int for spec %v", spec)
		}
		raw, ok := bitutil.CheckedMul(c3, m3sq/4)
		if !ok {
			return fmt.Errorf("hierarchy: vertical track count overflows int for spec %v", spec)
		}
		d.RawVTracks = raw
		d.OptimizedVTracks = d.RawVTracks - neighborSaving
	}
	d.GridCols = m2
	d.GridRows = m3
	return nil
}

// HTracksPerGap returns the horizontal tracks per inter-chip-row gap with
// L wiring layers (L/2 groups for even L, (L+1)/2 for odd L, Section 4).
func (d *BoardDesign) HTracksPerGap(L int) int {
	return compress(d.OptimizedHTracks, hGroups(L))
}

// VTracksPerGap is the vertical analogue ((L-1)/2 groups for odd L).
func (d *BoardDesign) VTracksPerGap(L int) int {
	return compress(d.OptimizedVTracks, vGroups(L))
}

func hGroups(L int) int {
	if L%2 == 0 {
		return L / 2
	}
	return (L + 1) / 2
}

func vGroups(L int) int {
	if L%2 == 0 {
		return L / 2
	}
	return (L - 1) / 2
}

func compress(tracks, groups int) int {
	if tracks == 0 {
		return 0
	}
	if groups < 1 {
		groups = 1
	}
	return (tracks + groups - 1) / groups
}

// BoardDims returns the board width and height with L wiring layers:
// each chip column contributes ChipSide + vertical gap tracks, each chip
// row ChipSide + horizontal gap tracks (Fig. 3 arrangement).
func (d *BoardDesign) BoardDims(L int) (w, h int) {
	w = d.GridCols * (d.ChipSide + d.VTracksPerGap(L))
	h = d.GridRows * (d.ChipSide + d.HTracksPerGap(L))
	return w, h
}

// BoardArea returns the total board area with L wiring layers.
func (d *BoardDesign) BoardArea(L int) int64 {
	w, h := d.BoardDims(L)
	return int64(w) * int64(h)
}

// NaiveChipsPaperEstimate reproduces the paper's Section 5.2 baseline
// accounting: the naive partition pays approximately 2 off-module links
// per node, so a chip of q rows needs about 2*q*(n+1) pins. For B_9 with
// 64 pins this gives 3 rows per chip and 171 chips, the paper's numbers.
func NaiveChipsPaperEstimate(n, maxPins int) (rowsPerChip, numChips int) {
	if n < 1 || n > 30 {
		return 0, 0
	}
	rows := 1 << uint(n)
	q := maxPins / (2 * (n + 1))
	if q < 1 {
		return 0, 0
	}
	return q, (rows + q - 1) / q
}

// NaiveChips measures the baseline exactly: the largest number of
// consecutive plain-butterfly rows per chip whose measured off-chip link
// count stays within maxPins, and the resulting chip count. Exact
// counting is slightly kinder to the baseline than the paper's estimate
// (aligned power-of-two modules keep their low dimensions internal): for
// B_9 with 64 pins it allows 4 rows per chip (56 links) and 128 chips
// instead of the paper's 3 rows / 171 chips.
func NaiveChips(n, maxPins int) (rowsPerChip, numChips int) {
	bf := butterfly.New(n)
	rowsPerChip = 0
	for q := 1; q <= bf.Rows; q++ {
		st := packaging.NaiveRowPartition(bf, q).Stats()
		if st.MaxOffLinksPerModu <= maxPins {
			rowsPerChip = q
		} else if rowsPerChip > 0 {
			break
		}
	}
	if rowsPerChip == 0 {
		return 0, 0
	}
	numChips = (bf.Rows + rowsPerChip - 1) / rowsPerChip
	return rowsPerChip, numChips
}

// MinChipSide returns the smallest chip side that can expose all
// off-chip links when terminals are distributed around the four sides of
// the chip perimeter - the Section 5.2 remark that splitting wires "to
// opposite sides of the chip" makes "a block of side at least 16"
// sufficient for the 64-link example.
func (d *BoardDesign) MinChipSide() int {
	return (d.OffChipLinks + 3) / 4
}
