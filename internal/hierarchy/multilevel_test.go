package hierarchy

import (
	"testing"

	"bfvlsi/internal/bitutil"
)

func TestDesignMultiLevel333(t *testing.T) {
	d, err := DesignMultiLevel(bitutil.MustGroupSpec(3, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChips != 64 || d.NodesPerChip != 80 || d.ChipPins != 56 {
		t.Errorf("chip level: %d chips x %d nodes, %d pins", d.NumChips, d.NodesPerChip, d.ChipPins)
	}
	if d.NumBoards != 8 || d.ChipsPerBoard != 8 {
		t.Errorf("board level: %d boards x %d chips", d.NumBoards, d.ChipsPerBoard)
	}
	if d.NodesPerBoard != 640 {
		t.Errorf("nodes per board = %d, want 640", d.NodesPerBoard)
	}
	// Only level-3 links cross boards: each board's rows have 4 level-3
	// incidences each, 7/8 of which leave: 64 rows/board * 4 * 7/8 = 224.
	if d.BoardPins != 224 {
		t.Errorf("board pins = %d, want 224", d.BoardPins)
	}
	// Per node that is 0.35: a further ~2x improvement over the chip
	// level's per-node rate (0.7) because only one swap level crosses.
	if eff := d.BoardPinEfficiency(); eff < 0.34 || eff > 0.36 {
		t.Errorf("board pin efficiency = %v", eff)
	}
}

func TestDesignMultiLevelRejectsNon3Level(t *testing.T) {
	if _, err := DesignMultiLevel(bitutil.MustGroupSpec(3, 3)); err == nil {
		t.Error("2-level spec accepted")
	}
}

func TestDesignMultiLevelUnequalWidths(t *testing.T) {
	d, err := DesignMultiLevel(bitutil.MustGroupSpec(3, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumChips*d.NodesPerChip < (d.N+1)*(1<<uint(d.N)) {
		t.Errorf("chips do not cover the network: %d x %d", d.NumChips, d.NodesPerChip)
	}
	if d.BoardPins >= d.NumChips/d.NumBoards*d.ChipPins {
		t.Errorf("board pins %d not better than sum of chip pins", d.BoardPins)
	}
}

func TestCostModelTradesAreaAgainstLayers(t *testing.T) {
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Free layers: more layers always win until area stops shrinking.
	l1, _ := d.OptimalLayers(16, CostParams{AreaUnit: 1})
	if l1 < 8 {
		t.Errorf("free layers: optimum %d, want deep", l1)
	}
	// Expensive layers: stay at 2.
	l2, _ := d.OptimalLayers(16, CostParams{AreaUnit: 1, LayerFixed: 1e9})
	if l2 != 2 {
		t.Errorf("expensive layers: optimum %d, want 2", l2)
	}
	// Balanced: an interior optimum should appear (not 2, not max).
	l3, c3 := d.OptimalLayers(16, CostParams{AreaUnit: 1, LayerFixed: 40000})
	if l3 <= 2 || l3 >= 16 {
		t.Errorf("balanced optimum at boundary: L=%d cost=%v", l3, c3)
	}
	// Cost at the optimum is no worse than the endpoints.
	if c3 > d.Cost(2, CostParams{AreaUnit: 1, LayerFixed: 40000}) ||
		c3 > d.Cost(16, CostParams{AreaUnit: 1, LayerFixed: 40000}) {
		t.Error("optimum not optimal")
	}
}

func TestCostPerLayerAreaTerm(t *testing.T) {
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	// With per-layer-area cost (volume) dominating, the optimum is
	// interior: wiring area initially shrinks ~quadratically in L
	// (L*A falls), then the chip floor dominates and L*A rises again.
	// For the Section 5.2 numbers: L*A = 819200 (L=2), 640000 (L=4),
	// 614400 (L=6), 627200 (L=8): minimum at L=6.
	l, c := d.OptimalLayers(16, CostParams{LayerAreaUnit: 1})
	if l != 6 {
		t.Errorf("volume-dominated optimum %d (cost %v), want 6", l, c)
	}
	if c != 614400 {
		t.Errorf("optimal volume cost = %v, want 614400", c)
	}
}
