package hierarchy

import (
	"fmt"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
)

// MultiLevelDesign is a three-level packaging of a butterfly network
// (chips on boards in a cabinet), per the paper's remark that the
// partitioning scheme "can be extended to the case where there are more
// than two levels in the packaging hierarchy" (Sections 2.3 and 5.2).
//
// Chips are the row partition of the swap-butterfly (2^k1 consecutive
// rows); boards group the chips of one block-grid row, so that level-2
// swap links stay on-board and only level-3 swap links cross boards. The
// improvement compounds: chip pins are O(1/log N) per node, and board
// connectors carry only the level-3 traffic.
type MultiLevelDesign struct {
	N    int
	Spec bitutil.GroupSpec

	NumChips      int
	NodesPerChip  int
	ChipPins      int // measured max off-chip links per chip
	NumBoards     int
	ChipsPerBoard int
	NodesPerBoard int
	BoardPins     int // measured max off-board links per board
}

// DesignMultiLevel builds the three-level design for a 3-level group
// spec.
func DesignMultiLevel(spec bitutil.GroupSpec) (*MultiLevelDesign, error) {
	if spec.Levels() != 3 {
		return nil, fmt.Errorf("hierarchy: multi-level design needs a 3-level spec, got %v", spec)
	}
	sb := isn.Transform(spec)
	k2 := spec.GroupWidth(2)
	chipsPerBoard := 1 << uint(k2) // one block-grid row of chips

	chips := packaging.RowPartition(sb)
	chipStats := chips.Stats()

	// Board of a node: its chip's grid row = chip / chipsPerBoard.
	boardOf := make([]int, sb.G.NumNodes())
	for i, c := range chips.ModuleOf {
		boardOf[i] = c / chipsPerBoard
	}
	numBoards := chipStats.NumModules / chipsPerBoard
	boards := &packaging.Partition{
		Desc:       fmt.Sprintf("boards of %v (%d chips each)", spec, chipsPerBoard),
		G:          sb.G,
		ModuleOf:   boardOf,
		NumModules: numBoards,
	}
	boardStats := boards.Stats()

	return &MultiLevelDesign{
		N:             spec.TotalBits(),
		Spec:          spec,
		NumChips:      chipStats.NumModules,
		NodesPerChip:  chipStats.MaxNodesPerModule,
		ChipPins:      chipStats.MaxOffLinksPerModu,
		NumBoards:     numBoards,
		ChipsPerBoard: chipsPerBoard,
		NodesPerBoard: boardStats.MaxNodesPerModule,
		BoardPins:     boardStats.MaxOffLinksPerModu,
	}, nil
}

// BoardPinEfficiency compares the per-node board connector count with the
// naive scheme's ~2: the level-3-only cut means boards pay
// 2 * (1 - 2^-k3) / (n+1) per node.
func (d *MultiLevelDesign) BoardPinEfficiency() float64 {
	return float64(d.BoardPins) / float64(d.NodesPerBoard)
}

// CostParams weight the components of a layout's implementation cost
// (Section 4.2: "we can minimize the cost for implementation, which will
// be a function of area A, the number L of layers, ...").
type CostParams struct {
	// AreaUnit is the cost per unit of board area.
	AreaUnit float64
	// LayerFixed is the additive cost of each wiring layer (masks,
	// lamination).
	LayerFixed float64
	// LayerAreaUnit is the per-layer, per-area cost (processing scales
	// with both).
	LayerAreaUnit float64
}

// Cost evaluates a board design at a layer count.
func (d *BoardDesign) Cost(L int, p CostParams) float64 {
	area := float64(d.BoardArea(L))
	return p.AreaUnit*area + p.LayerFixed*float64(L) + p.LayerAreaUnit*float64(L)*area
}

// OptimalLayers returns the layer count in [2, maxL] minimizing Cost,
// and the minimal cost.
func (d *BoardDesign) OptimalLayers(maxL int, p CostParams) (int, float64) {
	bestL, bestC := 2, d.Cost(2, p)
	for L := 3; L <= maxL; L++ {
		if c := d.Cost(L, p); c < bestC {
			bestL, bestC = L, c
		}
	}
	return bestL, bestC
}
