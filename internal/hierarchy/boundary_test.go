package hierarchy

import (
	"testing"

	"bfvlsi/internal/bitutil"
)

func mustSpecLiteral(widths ...int) bitutil.GroupSpec {
	return bitutil.GroupSpec{Widths: widths}
}

// n = 30 is the largest dimension whose 2^n row count the naive estimate
// can represent safely; beyond it the formula declines rather than
// overflowing.
func TestNaiveEstimateDimensionBoundary(t *testing.T) {
	rows, chips := NaiveChipsPaperEstimate(30, 1<<20)
	if rows < 1 || chips < 1 {
		t.Errorf("NaiveChipsPaperEstimate(30, 2^20) = (%d, %d), want positive", rows, chips)
	}
	for _, n := range []int{0, -1, 31, 62} {
		if rows, chips := NaiveChipsPaperEstimate(n, 1<<20); rows != 0 || chips != 0 {
			t.Errorf("NaiveChipsPaperEstimate(%d, 2^20) = (%d, %d), want (0, 0)", n, rows, chips)
		}
	}
}

func TestFillBoardGeometryReportsOverflow(t *testing.T) {
	// A board design carrying a spec literal with a pathological group
	// split: k1 = 61, k2 = 1 gives a replication exponent 2+61-1 = 62
	// (representable) but a track product 2^62 * (2^2/4) = 2^62 that the
	// checked multiply accepts; k1 = 62 pushes the shift to 63 and must
	// error instead of wrapping negative.
	d := &BoardDesign{Spec: mustSpecLiteral(62, 1)}
	if err := d.fillBoardGeometry(); err == nil {
		t.Error("fillBoardGeometry with k1=62 succeeded, want overflow error")
	}
	d = &BoardDesign{Spec: mustSpecLiteral(3, 3)}
	if err := d.fillBoardGeometry(); err != nil {
		t.Errorf("fillBoardGeometry with k1=k2=3 failed: %v", err)
	}
}
