package hierarchy

import "testing"

// The full Section 5.2 worked example, end to end.
func TestSection52Example(t *testing.T) {
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if d.Spec.String() != "(3,3,3)" {
		t.Errorf("spec = %v, want (3,3,3)", d.Spec)
	}
	if d.RowsPerChip != 8 {
		t.Errorf("rows per chip = %d, want 8", d.RowsPerChip)
	}
	if d.NodesPerChip != 80 {
		t.Errorf("nodes per chip = %d, want 80 (paper)", d.NodesPerChip)
	}
	if d.NumChips != 64 {
		t.Errorf("chips = %d, want 64 (paper)", d.NumChips)
	}
	if d.OffChipLinks != 56 || d.OffChipLinks > 64 {
		t.Errorf("off-chip links = %d, want 56 (within the 64-pin budget)", d.OffChipLinks)
	}
	if d.GridRows != 8 || d.GridCols != 8 {
		t.Errorf("grid = %dx%d, want 8x8", d.GridRows, d.GridCols)
	}
	if d.RawHTracks != 64 || d.OptimizedHTracks != 60 {
		t.Errorf("h tracks = %d/%d, want 64/60", d.RawHTracks, d.OptimizedHTracks)
	}
	// Paper's board areas: 409.6K (L=2), 160K (L=4), 78.4K (L=8).
	for _, c := range []struct {
		L    int
		side int
		area int64
	}{
		{2, 640, 409600},
		{4, 400, 160000},
		{8, 280, 78400},
	} {
		w, h := d.BoardDims(c.L)
		if w != c.side || h != c.side {
			t.Errorf("L=%d: board %dx%d, want %dx%d", c.L, w, h, c.side, c.side)
		}
		if got := d.BoardArea(c.L); got != c.area {
			t.Errorf("L=%d: area = %d, want %d (paper)", c.L, got, c.area)
		}
	}
	// Paper: at L=8 the inter-chip wire space (15) is somewhat smaller
	// than the chip side (20).
	if d.HTracksPerGap(8) != 15 {
		t.Errorf("L=8 gap tracks = %d, want 15 (paper remark)", d.HTracksPerGap(8))
	}
}

func TestSection52NaiveBaseline(t *testing.T) {
	// The paper's own accounting (~2 links/node): 3 rows, 171 chips.
	rows, chips := NaiveChipsPaperEstimate(9, 64)
	if rows != 3 {
		t.Errorf("paper-estimate rows per chip = %d, want 3", rows)
	}
	if chips != 171 {
		t.Errorf("paper-estimate chips = %d, want 171", chips)
	}
	// Exact measurement is kinder to the baseline (aligned modules keep
	// dimensions 0-1 internal): 4 rows at 56 links, 128 chips - still
	// double the scheme's 64 chips.
	mrows, mchips := NaiveChips(9, 64)
	if mrows != 4 || mchips != 128 {
		t.Errorf("measured naive = %d rows / %d chips, want 4 / 128", mrows, mchips)
	}
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if mchips < 2*d.NumChips {
		t.Errorf("measured naive chips %d not at least 2x scheme's %d", mchips, d.NumChips)
	}
}

func TestDiminishingReturns(t *testing.T) {
	// Section 5.2: the relative saving diminishes as L grows because the
	// chips start to dominate. Area(2)/Area(4) ~ 2.56 but
	// Area(4)/Area(8) ~ 2.04 only.
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	r24 := float64(d.BoardArea(2)) / float64(d.BoardArea(4))
	r48 := float64(d.BoardArea(4)) / float64(d.BoardArea(8))
	if r24 <= r48 {
		t.Errorf("saving did not diminish: %v then %v", r24, r48)
	}
	if r24 < 2.5 || r24 > 2.6 {
		t.Errorf("area(2)/area(4) = %v, want ~2.56", r24)
	}
}

func TestOddLayerBoards(t *testing.T) {
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	// L=3: horizontal gaps use 2 groups (30 tracks), vertical 1 (60).
	if d.HTracksPerGap(3) != 30 || d.VTracksPerGap(3) != 60 {
		t.Errorf("L=3 gaps = %d/%d, want 30/60", d.HTracksPerGap(3), d.VTracksPerGap(3))
	}
	w, h := d.BoardDims(3)
	if w != 8*(20+60) || h != 8*(20+30) {
		t.Errorf("L=3 board = %dx%d", w, h)
	}
}

func TestDesignRespectsPinBudget(t *testing.T) {
	for _, pins := range []int{8, 16, 32, 64, 128} {
		d, err := Design(9, pins, 20)
		if err != nil {
			// Very small budgets may be infeasible for l<=3; that is fine.
			continue
		}
		if d.OffChipLinks > pins {
			t.Errorf("pins=%d: design uses %d off-chip links", pins, d.OffChipLinks)
		}
	}
}

func TestDesignPinBudgetBoundary(t *testing.T) {
	// 56 pins is exactly the (3,3,3) requirement; anything lower is
	// infeasible for l <= 3 on B_9 (deeper hierarchies would be needed).
	d, err := Design(9, 56, 20)
	if err != nil {
		t.Fatalf("56-pin design should be feasible: %v", err)
	}
	if d.OffChipLinks != 56 {
		t.Errorf("off-chip links = %d, want 56", d.OffChipLinks)
	}
	if _, err := Design(9, 55, 20); err == nil {
		t.Error("55-pin design should be infeasible for l<=3")
	}
}

func TestHierarchyValidate(t *testing.T) {
	h := &Hierarchy{Levels: []Level{
		{Name: "chip", MaxPins: 64, Side: 20, WireWidth: 1},
		{Name: "board", MaxPins: 1024, Side: 640, WireWidth: 1},
	}}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
	bad := &Hierarchy{Levels: []Level{{Name: "x", MaxPins: -1, Side: 0, WireWidth: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid hierarchy accepted")
	}
	empty := &Hierarchy{}
	if err := empty.Validate(); err == nil {
		t.Error("empty hierarchy accepted")
	}
}

func TestNaiveChipsDegenerate(t *testing.T) {
	// With 0 pins the only feasible "partition" is the whole network on
	// one chip (no links cut).
	rows, chips := NaiveChips(4, 0)
	if rows != 16 || chips != 1 {
		t.Errorf("got rows=%d chips=%d, want the single-chip degenerate 16/1", rows, chips)
	}
	if r, c := NaiveChipsPaperEstimate(4, 4); r != 0 || c != 0 {
		t.Errorf("paper estimate with tiny budget should be infeasible, got %d/%d", r, c)
	}
}

func BenchmarkDesign9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Design(9, 64, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMinChipSideRemark(t *testing.T) {
	// Section 5.2: with the 64-link budget (56 used), distributing the
	// terminals around the perimeter means a chip of side >= 14 would do;
	// the paper's "side at least 16" corresponds to the full 64-link
	// budget: 64/4 = 16.
	d, err := Design(9, 64, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.MinChipSide(); got != 14 {
		t.Errorf("min chip side = %d, want 14 (56 links over 4 sides)", got)
	}
	if (d.MaxPins+3)/4 != 16 {
		t.Errorf("full-budget side = %d, want 16 (paper)", (d.MaxPins+3)/4)
	}
	if d.MinChipSide() > d.ChipSide {
		t.Error("configured chip side below the terminal minimum")
	}
}
