package routing

import (
	"fmt"
	"math/rand"

	"bfvlsi/internal/detrng"
)

// Mid-run state export and restore. A SimState captured at a cycle
// boundary, together with the run's Params and the attached hooks' own
// state, determines the rest of the run exactly: RestoreSim continues
// packet-for-packet (and trace-byte) identical to the uninterrupted
// run. internal/snapshot serializes SimState (and the hook states)
// into a versioned, content-addressed checkpoint.

// PacketState is one queued packet of a paused run. Queue is the
// packet's queue index in the active mode's layout (plain:
// node*2+out; VC: (node*2+out)*numVC+vc); packets of one queue appear
// in FIFO order. VC is the packet's virtual channel, always
// Queue%numVC in VC mode and 0 in plain mode.
type PacketState struct {
	Queue          int
	DstRow, DstCol int
	Born           int
	Hops           int
	RID            uint64
	Detours        int
	Blocked        int
	VC             int
}

// SimState is the complete engine state of a paused run at a cycle
// boundary: everything Step touches that outlives a cycle, minus the
// hook (Faults/Reliable/Adaptive) internals, which their packages
// export themselves. Counters holds the running totals only — the
// derived summary fields (Backlog, MaxQueue, Throughput, AvgLatency,
// AvgHops, BoundaryCrossingsPerCycle) are computed by Finish and must
// be zero here.
type SimState struct {
	// Cycle is the number of completed cycles: the next cycle to run.
	Cycle int
	// Draws is the RNG stream position (values drawn since seeding).
	Draws uint64
	// Packets lists every queued packet, queue-major, FIFO order.
	Packets []PacketState
	// Counters are the running totals as of the boundary.
	Counters Result
	// Latency/hop accumulators and the module-boundary crossing count.
	LatSum, HopSum float64
	LatCount       int
	Crossings      int64
}

// State exports the engine's complete state at the current cycle
// boundary. The result shares no memory with the Sim.
func (s *Sim) State() *SimState {
	st := &SimState{
		Cycle:     s.cycle,
		Draws:     s.src.Draws(),
		Counters:  *s.res,
		LatSum:    s.latSum,
		HopSum:    s.hopSum,
		LatCount:  s.latCount,
		Crossings: s.crossings,
	}
	backlog := s.backlog()
	if backlog > 0 {
		st.Packets = make([]PacketState, 0, backlog)
	}
	if s.vcQueues != nil {
		for qi := range s.vcQueues {
			for _, pk := range s.vcQueues[qi].items() {
				st.Packets = append(st.Packets, PacketState{
					Queue: qi, DstRow: pk.dstRow, DstCol: pk.dstCol,
					Born: pk.born, Hops: pk.hops, RID: pk.rid,
					Detours: pk.detours, Blocked: pk.blocked, VC: pk.vc,
				})
			}
		}
		return st
	}
	for qi := range s.queues {
		for _, pk := range s.queues[qi].items() {
			st.Packets = append(st.Packets, PacketState{
				Queue: qi, DstRow: pk.dstRow, DstCol: pk.dstCol,
				Born: pk.born, Hops: pk.hops, RID: pk.rid,
				Detours: pk.detours, Blocked: pk.blocked,
			})
		}
	}
	return st
}

// RestoreSim rebuilds a paused run from its Params and exported state.
// It validates st against p and fails on any inconsistency, so a
// corrupt state cannot produce a silently wrong run. The restored Sim
// does not reset the attached hooks and does not rewrite the trace
// header: the caller restores hook state separately, and trace output
// of the prefix and the continuation concatenate to the uninterrupted
// run's bytes.
func RestoreSim(p Params, pattern Pattern, st *SimState) (*Sim, error) {
	s, err := buildSim(p, pattern)
	if err != nil {
		return nil, err
	}
	if st.Cycle < 0 || st.Cycle > s.total {
		return nil, fmt.Errorf("routing: restore cycle %d out of [0,%d]", st.Cycle, s.total)
	}
	if err := checkCounters(&st.Counters, s.nodes, len(st.Packets)); err != nil {
		return nil, err
	}
	nq := len(s.queues)
	if s.vcQueues != nil {
		nq = len(s.vcQueues)
	}
	prev := -1
	for i := range st.Packets {
		ps := &st.Packets[i]
		if err := s.checkPacket(ps, nq, st.Cycle); err != nil {
			return nil, fmt.Errorf("routing: restore packet %d: %w", i, err)
		}
		if ps.Queue < prev {
			return nil, fmt.Errorf("routing: restore packet %d: queue %d out of order (after %d)", i, ps.Queue, prev)
		}
		prev = ps.Queue
		pk := packet{
			dstRow: ps.DstRow, dstCol: ps.DstCol, born: ps.Born,
			hops: ps.Hops, rid: ps.RID, detours: ps.Detours, blocked: ps.Blocked,
		}
		if s.vcQueues != nil {
			if s.vcQueues[ps.Queue].len() >= p.BufferLimit {
				return nil, fmt.Errorf("routing: restore packet %d: queue %d over BufferLimit %d", i, ps.Queue, p.BufferLimit)
			}
			s.vcQueues[ps.Queue].push(vcPacket{packet: pk, vc: ps.VC})
		} else {
			s.queues[ps.Queue].push(pk)
		}
	}
	s.cycle = st.Cycle
	s.src = detrng.Restore(p.Seed, st.Draws)
	s.rng = rand.New(s.src)
	counters := st.Counters
	s.res = &counters
	s.latSum, s.hopSum = st.LatSum, st.HopSum
	s.latCount = st.LatCount
	s.crossings = st.Crossings
	return s, nil
}

// checkPacket validates one exported packet against the engine's
// geometry and mode.
func (s *Sim) checkPacket(ps *PacketState, nq, cycle int) error {
	if ps.Queue < 0 || ps.Queue >= nq {
		return fmt.Errorf("queue %d out of [0,%d)", ps.Queue, nq)
	}
	if ps.DstRow < 0 || ps.DstRow >= s.rows || ps.DstCol < 0 || ps.DstCol >= s.n {
		return fmt.Errorf("destination (%d,%d) outside %dx%d", ps.DstRow, ps.DstCol, s.rows, s.n)
	}
	if ps.Born < 0 || ps.Born >= cycle {
		return fmt.Errorf("born %d outside [0,%d)", ps.Born, cycle)
	}
	if ps.Hops < 0 || ps.Detours < 0 {
		return fmt.Errorf("negative hops %d or detours %d", ps.Hops, ps.Detours)
	}
	if ps.Blocked < -1 || ps.Blocked >= s.n {
		return fmt.Errorf("blocked column %d outside [-1,%d)", ps.Blocked, s.n)
	}
	wantVC := 0
	if s.vcQueues != nil {
		wantVC = ps.Queue % numVC
	}
	if ps.VC != wantVC {
		return fmt.Errorf("vc %d does not match queue %d (want %d)", ps.VC, ps.Queue, wantVC)
	}
	return nil
}

// checkCounters validates an exported counter block: derived summary
// fields zero, all totals nonnegative, and the conservation identities
// intact with the queued packets as the backlog term.
func checkCounters(c *Result, nodes, backlog int) error {
	if c.Nodes != nodes {
		return fmt.Errorf("routing: restore counters for %d nodes, want %d", c.Nodes, nodes)
	}
	if c.Backlog != 0 || c.MaxQueue != 0 || c.Throughput != 0 ||
		c.AvgLatency != 0 || c.AvgHops != 0 || c.BoundaryCrossingsPerCycle != 0 {
		return fmt.Errorf("routing: restore counters carry derived summary fields; they are computed by Finish and must be zero")
	}
	for _, v := range []int{
		c.Injected, c.Delivered, c.InjectionDrops, c.Stalls, c.Dropped,
		c.Unreachable, c.Misroutes, c.Detours, c.Reroutes,
		c.UnreachableDead, c.UnreachableCut, c.UnreachableDetected,
		c.Retransmitted, c.DuplicatesDropped, c.GaveUp,
		c.TotalInjected, c.TotalDelivered,
	} {
		if v < 0 {
			return fmt.Errorf("routing: restore counters carry a negative total")
		}
	}
	chk := *c
	chk.Backlog = backlog
	if err := chk.CheckConservation(); err != nil {
		return fmt.Errorf("routing: restore counters: %w", err)
	}
	return nil
}
