package routing

import (
	"fmt"
	"math/rand"

	"bfvlsi/internal/detrng"
)

// Stepwise simulation engine. Simulate and SimulatePattern run a whole
// configuration in one call; Sim exposes the same machinery one cycle
// at a time so callers can pause a run at a cycle boundary, export its
// complete state, and later restore and continue it elsewhere (see
// internal/snapshot). The engine is shared by both simulator modes:
// BufferLimit 0 selects the unbounded-FIFO simulator of routing.go,
// BufferLimit > 0 the virtual-channel/backpressure simulator of vc.go.
//
// The determinism contract extends to checkpointing: a run restored
// from a SimState is packet-for-packet (and trace-byte) identical to
// the uninterrupted run, provided the hooks (Faults, Reliable,
// Adaptive) are restored to their own mid-run state by the caller. All
// of the engine's randomness flows through one detrng.Source, so the
// RNG position is just a draw count.

// Sim is one in-flight simulation. Create with NewSim or
// RestoreSim, advance with Step, and collect the result with Finish.
// A Sim must not be shared by concurrently running goroutines.
type Sim struct {
	p       Params
	pattern Pattern

	n, rows, nodes int
	total          int
	cycle          int

	src *detrng.Source
	rng *rand.Rand

	// queues is the plain mode's FIFO set (nodes*2); vcQueues the VC
	// mode's (nodes*2*numVC). Exactly one is non-nil.
	queues   []fifo[packet]
	vcQueues []fifo[vcPacket]
	// room is the VC mode's per-cycle credit scratch.
	room []int

	res       *Result
	latSum    float64
	hopSum    float64
	latCount  int
	crossings int64

	// Per-cycle scratch, hoisted: reset to length zero each cycle, the
	// backing array reaches its high-water capacity once and is reused.
	arrivals   []arrival
	vcArrivals []vcArrival
}

// NewSim validates p and builds a simulation positioned before cycle 0,
// resetting the attached hooks and writing the trace header. Advance it
// with Step or Finish.
func NewSim(p Params, pattern Pattern) (*Sim, error) {
	s, err := buildSim(p, pattern)
	if err != nil {
		return nil, err
	}
	if p.Reliable != nil {
		p.Reliable.Reset(s.nodes)
	}
	if p.Adaptive != nil {
		p.Adaptive.Reset(s.n, s.rows)
	}
	if p.Trace != nil {
		if _, err := fmt.Fprintln(p.Trace, "cycle,injected,delivered,backlog"); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// buildSim validates p and allocates the engine without touching hooks
// or trace: the shared half of NewSim and RestoreSim.
func buildSim(p Params, pattern Pattern) (*Sim, error) {
	if p.N < 1 || p.N > 14 {
		return nil, fmt.Errorf("routing: dimension %d out of range [1,14]", p.N)
	}
	if p.Lambda < 0 || p.Lambda > 1 {
		return nil, fmt.Errorf("routing: lambda %v out of [0,1]", p.Lambda)
	}
	if p.Cycles <= 0 {
		return nil, fmt.Errorf("routing: need positive measured cycles")
	}
	n := p.N
	rows := 1 << uint(n)
	nodes := n * rows
	if p.ModuleOf != nil && len(p.ModuleOf) != nodes {
		return nil, fmt.Errorf("routing: ModuleOf has %d entries, want %d", len(p.ModuleOf), nodes)
	}
	s := &Sim{
		p: p, pattern: pattern,
		n: n, rows: rows, nodes: nodes,
		total: p.Warmup + p.Cycles,
		src:   detrng.New(p.Seed),
		res:   &Result{Nodes: nodes},
	}
	s.rng = rand.New(s.src)
	if p.BufferLimit > 0 {
		// queues[(node*2 + out)*numVC + vc]. Credit backpressure bounds
		// every VC queue at BufferLimit slots, so preallocating exactly
		// that much means no queue ever grows - the hot loop cannot
		// allocate through a push.
		s.vcQueues = newFifos[vcPacket](nodes*2*numVC, p.BufferLimit)
		s.room = make([]int, len(s.vcQueues))
		s.vcArrivals = make([]vcArrival, 0, 2*nodes)
	} else {
		// queues[node*2 + 0] straight, +1 cross. 16 slots of head-start
		// capacity per queue keeps steady-state growth (and its
		// allocations) out of the measured hot loop at moderate loads.
		s.queues = newFifos[packet](nodes*2, 16)
		s.arrivals = make([]arrival, 0, 2*nodes)
	}
	return s, nil
}

// Cycle returns the next cycle Step will simulate (0-based, warmup
// included): the number of completed cycles so far.
func (s *Sim) Cycle() int { return s.cycle }

// Total returns the run length, warmup plus measured cycles.
func (s *Sim) Total() int { return s.total }

// Done reports whether every cycle has been simulated.
func (s *Sim) Done() bool { return s.cycle >= s.total }

// Step simulates one cycle. It returns an error only for trace write
// failures, pattern errors, or stepping past the end of the run.
func (s *Sim) Step() error {
	if s.Done() {
		return fmt.Errorf("routing: step past the end of the %d-cycle run", s.total)
	}
	var err error
	if s.vcQueues != nil {
		err = s.stepVC()
	} else {
		err = s.stepPlain()
	}
	if err != nil {
		return err
	}
	s.cycle++
	return nil
}

// Finish simulates the remaining cycles and returns the final Result.
// The Sim itself is left at the end of the run; Finish is idempotent
// once the run completes.
func (s *Sim) Finish() (*Result, error) {
	for !s.Done() {
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	res := *s.res
	queueLens := s.queueLens()
	for _, l := range queueLens {
		res.Backlog += l
		if l > res.MaxQueue {
			res.MaxQueue = l
		}
	}
	res.Throughput = float64(res.Delivered) / float64(res.Nodes) / float64(s.p.Cycles)
	if s.latCount > 0 {
		res.AvgLatency = s.latSum / float64(s.latCount)
		res.AvgHops = s.hopSum / float64(s.latCount)
	}
	res.BoundaryCrossingsPerCycle = float64(s.crossings) / float64(s.p.Cycles)
	return &res, nil
}

// queueLens returns the occupancy of every queue in index order,
// whichever mode is active.
func (s *Sim) queueLens() []int {
	var lens []int
	if s.vcQueues != nil {
		lens = make([]int, len(s.vcQueues))
		for qi := range s.vcQueues {
			lens[qi] = s.vcQueues[qi].len()
		}
		return lens
	}
	lens = make([]int, len(s.queues))
	for qi := range s.queues {
		lens[qi] = s.queues[qi].len()
	}
	return lens
}

// backlog returns the total number of queued packets.
func (s *Sim) backlog() int {
	total := 0
	for _, l := range s.queueLens() {
		total += l
	}
	return total
}

// stepPlain simulates one cycle of the unbounded-FIFO mode. The body is
// the per-cycle block of the original monolithic loop, verbatim except
// that run-long state lives on s.
func (s *Sim) stepPlain() error {
	p := &s.p
	n, rows, nodes := s.n, s.rows, s.nodes
	queues := s.queues
	res := s.res
	rng := s.rng
	cycle := s.cycle
	id := func(row, col int) int { return col*rows + row }
	measured := cycle >= p.Warmup
	if p.Faults != nil {
		p.Faults.BeginCycle(cycle)
	}
	if p.Reliable != nil {
		p.Reliable.BeginCycle(cycle)
	}
	if p.Adaptive != nil {
		p.Adaptive.BeginCycle(cycle)
		runProbes(p.Adaptive, p.Faults)
	}
	// Phase 1: injections.
	for row := 0; row < rows; row++ {
		for col := 0; col < n; col++ {
			if p.Faults != nil && p.Faults.NodeDown(id(row, col)) {
				continue // dead nodes do not inject
			}
			if rng.Float64() >= p.Lambda {
				continue
			}
			dr, dc, derr := destFor(s.pattern, n, rows, row, col, rng)
			if derr != nil {
				return derr
			}
			pk := packet{
				dstRow:  dr,
				dstCol:  dc,
				born:    cycle,
				blocked: -1,
			}
			if measured {
				res.Injected++
			}
			res.TotalInjected++
			if pk.dstRow == row && pk.dstCol == col {
				// Delivered in place: no copy enters the network, so
				// no duplicate can ever exist and the payload needs
				// no reliable-transport state.
				res.TotalDelivered++
				if measured {
					res.Delivered++
				}
				continue
			}
			if p.Adaptive != nil && p.Adaptive.RejectDest(id(dr, dc)) {
				// The source's own disseminated link-state map calls
				// the destination unreachable: refuse locally, before
				// any transport state exists - no retries to burn.
				res.Unreachable++
				res.UnreachableDetected++
				continue
			}
			if p.Faults != nil && p.Faults.NodeDown(id(dr, dc)) {
				if p.Reliable != nil {
					// The source cannot know the destination is dead:
					// the payload is registered and its retries burn
					// budget against the void until it is abandoned.
					p.Reliable.Register(cycle, id(row, col), id(dr, dc))
				}
				res.Unreachable++
				res.UnreachableDead++
				continue
			}
			if destCut(p.Faults, n, rows, dr, dc) {
				// Every link into the destination is dead: the packet
				// could only wander until its TTL - or, with TTL 0,
				// forever. Refuse it at injection instead; as with a
				// dead node the source cannot know, so the payload is
				// still registered and its retries burn budget.
				if p.Reliable != nil {
					p.Reliable.Register(cycle, id(row, col), id(dr, dc))
				}
				res.Unreachable++
				res.UnreachableCut++
				continue
			}
			if p.Reliable != nil {
				pk.rid = p.Reliable.Register(cycle, id(row, col), id(dr, dc))
			}
			out, drop, mis, det := route(&pk, row, col, rows, p)
			if drop {
				res.Dropped++
				continue
			}
			if mis {
				res.Misroutes++
			}
			if det {
				res.Detours++
			}
			q := id(row, col)*2 + out
			queues[q].push(pk)
		}
	}
	// Phase 1b: retransmissions due this cycle re-enter at their
	// source, after fresh traffic (fresh injections keep priority).
	if p.Reliable != nil {
		for _, c := range p.Reliable.Retransmissions(cycle) {
			srcRow, srcCol := c.Src%rows, c.Src/rows
			if p.Faults != nil && p.Faults.NodeDown(c.Src) {
				p.Reliable.Deferred(c.ID) // dead sources cannot resend
				continue
			}
			p.Reliable.Emitted(c.ID, cycle)
			res.Retransmitted++
			if p.Adaptive != nil && p.Adaptive.RejectDest(c.Dst) {
				res.Unreachable++
				res.UnreachableDetected++
				continue
			}
			if p.Faults != nil && p.Faults.NodeDown(c.Dst) {
				res.Unreachable++
				res.UnreachableDead++
				continue
			}
			if destCut(p.Faults, n, rows, c.Dst%rows, c.Dst/rows) {
				res.Unreachable++
				res.UnreachableCut++
				continue
			}
			pk := packet{dstRow: c.Dst % rows, dstCol: c.Dst / rows, born: cycle, rid: c.ID, blocked: -1}
			out, drop, mis, det := route(&pk, srcRow, srcCol, rows, p)
			if drop {
				res.Dropped++
				continue
			}
			if mis {
				res.Misroutes++
			}
			if det {
				res.Detours++
			}
			q := c.Src*2 + out
			queues[q].push(pk)
		}
	}
	// Phase 1c: re-planning. The adaptive router re-examines the head of
	// every queue; a head whose link the router has since condemned is
	// moved to the node's other output queue instead of stalling until
	// the breaker re-closes. Only heads move: packets behind them follow
	// on later cycles if the condemnation persists. Choose is
	// deterministic within a cycle, so a moved head re-examined at its
	// new queue re-chooses the same output - no ping-pong.
	if p.Adaptive != nil {
		for node := 0; node < nodes; node++ {
			row, col := node%rows, node/rows
			for out := 0; out < 2; out++ {
				q := node*2 + out
				if queues[q].len() == 0 {
					continue
				}
				pk := queues[q].front()
				d := p.Adaptive.Choose(Hop{
					Node:    node,
					Want:    plannedOut(pk, row, col),
					Dst:     pk.dstCol*rows + pk.dstRow,
					Detours: pk.detours,
					Blocked: pk.blocked,
				})
				if d.Out == out {
					continue
				}
				pk.blocked = d.Blocked
				if d.Deliberate {
					pk.detours++
				}
				if d.Detour {
					res.Detours++
				}
				res.Reroutes++
				queues[q].pop()
				nq := node*2 + d.Out
				queues[nq].push(pk)
			}
		}
	}
	// Phase 2: every directed link moves one packet; arrivals are
	// buffered and enqueued after all moves (synchronous step).
	arrivals := s.arrivals[:0]
	//bflint:hotpath
	for row := 0; row < rows; row++ {
		for col := 0; col < n; col++ {
			node := id(row, col)
			base := node * 2
			nextCol := (col + 1) % n
			for out := 0; out < 2; out++ {
				q := base + out
				if p.TTL > 0 || p.Reliable != nil {
					for queues[q].len() > 0 {
						head := queues[q].front()
						if p.Reliable != nil && p.Reliable.Abandoned(head.rid) {
							queues[q].pop()
							res.GaveUp++
							continue
						}
						if p.TTL > 0 && cycle-head.born >= p.TTL {
							queues[q].pop()
							res.Dropped++
							continue
						}
						break
					}
				}
				if queues[q].len() == 0 {
					continue
				}
				if p.Faults != nil && p.Faults.LinkDown(node, out) {
					if measured {
						res.Stalls++
					}
					if p.Adaptive != nil {
						p.Adaptive.ObserveFailure(q)
					}
					continue
				}
				pk := queues[q].front()
				nr := row
				if out == 1 {
					nr = row ^ (1 << uint(col))
				}
				queues[q].pop()
				pk.hops++
				if p.Adaptive != nil {
					p.Adaptive.ObserveSuccess(q)
				}
				if p.ModuleOf != nil && measured {
					if p.ModuleOf[id(row, col)] != p.ModuleOf[id(nr, nextCol)] {
						s.crossings++
					}
				}
				arrivals = append(arrivals, arrival{pk: pk, row: nr, col: nextCol})
			}
		}
	}
	for _, a := range arrivals {
		if a.pk.dstRow == a.row && a.pk.dstCol == a.col {
			born := a.pk.born
			if p.Reliable != nil {
				v, born0 := p.Reliable.Arrive(cycle, a.pk.rid)
				switch v {
				case DeliverDuplicate:
					res.DuplicatesDropped++
					continue
				case DeliverGaveUp:
					res.GaveUp++
					continue
				}
				// End-to-end latency runs from the payload's first
				// injection, not this copy's emission.
				born = born0
			}
			res.TotalDelivered++
			if measured {
				res.Delivered++
				if born >= p.Warmup {
					s.latSum += float64(cycle - born + 1)
					s.hopSum += float64(a.pk.hops)
					s.latCount++
				}
			}
			continue
		}
		out, drop, mis, det := route(&a.pk, a.row, a.col, rows, p)
		if drop {
			res.Dropped++
			continue
		}
		if mis {
			res.Misroutes++
		}
		if det {
			res.Detours++
		}
		q := id(a.row, a.col)*2 + out
		queues[q].push(a.pk)
	}
	s.arrivals = arrivals
	if p.Trace != nil && measured {
		backlog := 0
		for qi := range queues {
			backlog += queues[qi].len()
		}
		if _, err := fmt.Fprintf(p.Trace, "%d,%d,%d,%d\n", //bflint:ignore hotalloc trace output is off on hot runs
			cycle-p.Warmup, res.Injected, res.Delivered, backlog); err != nil { //bflint:ignore hotalloc trace output is off on hot runs
			return err
		}
	}
	return nil
}
