package routing

// Adaptive fault-aware routing support. Where the static Policy reacts to
// the oracle fault state handed to it (faults.go), an AdaptiveRouter has
// to *learn* which links are dead from the traffic that fails on them,
// and may spend that knowledge three ways: picking outputs (including
// bounded detours that deliberately break an already-fixed dimension so a
// blocked bit can be retried over a different physical link on a later
// wrap-around pass), re-planning packets already queued behind a link it
// has since condemned, and refusing injections whose destination its
// disseminated link-state map says is cut off. The simulator stays
// belief-agnostic: it asks the router for decisions, answers its
// control-plane probes from the oracle fault state, and feeds it the
// outcome of every real link attempt. With a router that never deviates
// from the plan - in particular any router before its first failure
// observation - the run is identical to the plain simulation, packet for
// packet.

// Hop describes one packet at one switch for AdaptiveRouter.Choose: the
// position, the planned dimension-order output, and the packet's adaptive
// state (detour budget spent, blocked-column marker).
type Hop struct {
	// Node is the current node id (col*R + row).
	Node int
	// Want is the planned output under dimension-order routing
	// (0 = straight, 1 = cross).
	Want int
	// Dst is the destination node id.
	Dst int
	// Detours is the number of deliberate detours the packet has taken so
	// far (the router must stop granting them at its budget).
	Detours int
	// Blocked is the column whose bit the packet failed to fix because
	// the needed cross link was condemned, or -1. The router sets it via
	// Decision.Blocked and uses it to grant a deliberate dimension-shift.
	Blocked int
}

// Decision is the adaptive router's verdict for one Hop.
type Decision struct {
	// Out is the chosen output (0 = straight, 1 = cross).
	Out int
	// Blocked is the packet's updated blocked-column marker.
	Blocked int
	// Detour reports that Out differs from the planned output; the
	// simulator counts it in Result.Detours.
	Detour bool
	// Deliberate reports that the detour was a budget-consuming
	// dimension-shift (not a forced fallback); the simulator charges it
	// against the packet's budget.
	Deliberate bool
}

// AdaptiveRouter is the online fault-aware routing hook. The simulator
// drives it single-threaded in a fixed per-cycle order: BeginCycle (after
// FaultModel.BeginCycle and Transport.BeginCycle), then one Probes call
// whose links are each answered with ProbeResult from the oracle link
// state (a control-plane probe message), then Choose/RejectDest during
// injection, re-plan, and arrival processing, with ObserveSuccess and
// ObserveFailure fed from every real link attempt during traversal.
// Choose and RejectDest must be pure reads of the router's state: the
// simulator may call them for packets that then fail a buffer-credit
// check and discard the Decision. Implementations must be deterministic
// given the call order and must not draw randomness outside Reset. A
// router must not be shared by concurrently running simulations.
type AdaptiveRouter interface {
	// Reset clears per-run state for the n-dimensional wrapped butterfly
	// (R = 2^n rows). The simulator calls it once before the first cycle.
	Reset(n, rows int)
	// BeginCycle starts the given absolute cycle (0-based, warmup
	// included): breakers time forward, and on dissemination epochs the
	// router snapshots its link-state map.
	BeginCycle(cycle int)
	// Probes returns the directed links (id = node*2 + out) the router
	// wants probed this cycle - its open breakers whose deterministic
	// probe timer is due. The simulator answers every returned link with
	// exactly one ProbeResult call.
	Probes() []int
	// ProbeResult delivers the oracle outcome of a probe: alive re-closes
	// the breaker (half-open re-admission), dead leaves it open.
	ProbeResult(link int, alive bool)
	// Choose picks the output for one packet at one switch.
	Choose(h Hop) Decision
	// RejectDest reports whether the router's disseminated link-state map
	// says dst is unreachable (every incident link condemned). The
	// simulator refuses such injections as Unreachable (counted in
	// UnreachableDetected) instead of letting them wander to TTL death.
	RejectDest(dst int) bool
	// ObserveSuccess reports a packet crossed the link this cycle.
	ObserveSuccess(link int)
	// ObserveFailure reports an attempt on the link failed this cycle
	// (the packet at its head could not move because the link is dead).
	ObserveFailure(link int)
}

// plannedOut returns the dimension-order output for a packet at
// (row, col): cross iff address bit col disagrees with the destination.
func plannedOut(pk packet, row, col int) int {
	if pk.dstRow&(1<<uint(col)) != row&(1<<uint(col)) {
		return 1
	}
	return 0
}

// route picks the output queue for pk at (row, col): the adaptive router
// when one is attached, else the static fault policy. It mutates pk's
// adaptive state (blocked marker, detour budget) and returns the
// simulator-side accounting flags. drop is only ever true under the
// static DropDead policy.
func route(pk *packet, row, col, rows int, p *Params) (out int, drop, mis, detour bool) {
	if p.Adaptive == nil {
		out, drop, mis = chooseOut(*pk, row, col, rows, p.Faults, p.Policy)
		return out, drop, mis, false
	}
	want := plannedOut(*pk, row, col)
	d := p.Adaptive.Choose(Hop{
		Node:    col*rows + row,
		Want:    want,
		Dst:     pk.dstCol*rows + pk.dstRow,
		Detours: pk.detours,
		Blocked: pk.blocked,
	})
	pk.blocked = d.Blocked
	if d.Deliberate {
		pk.detours++
	}
	return d.Out, false, false, d.Detour
}

// destCut reports whether every link into the destination (dr, dc) is
// dead under the oracle fault model: no packet injected now can ever
// reach it, so the simulator refuses the injection as Unreachable
// (UnreachableCut) instead of letting the packet wander - with TTL 0 it
// would otherwise occupy the network forever. Each node has exactly two
// incoming links, from the straight and cross outputs of the previous
// column.
func destCut(fm FaultModel, n, rows, dr, dc int) bool {
	if fm == nil {
		return false
	}
	prev := (dc - 1 + n) % n
	straightSrc := prev*rows + dr
	crossSrc := prev*rows + (dr ^ (1 << uint(prev)))
	return fm.LinkDown(straightSrc, 0) && fm.LinkDown(crossSrc, 1)
}

// runProbes answers the router's control-plane probes for this cycle
// from the oracle link state.
func runProbes(ad AdaptiveRouter, fm FaultModel) {
	for _, l := range ad.Probes() {
		alive := fm == nil || !fm.LinkDown(l/2, l%2)
		ad.ProbeResult(l, alive)
	}
}
