package routing

import (
	"bytes"
	"encoding/csv"
	"math"
	"strconv"
	"testing"
)

func TestSimulateParamValidation(t *testing.T) {
	if _, err := Simulate(Params{N: 0, Lambda: 0.1, Cycles: 10}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Simulate(Params{N: 3, Lambda: -0.1, Cycles: 10}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := Simulate(Params{N: 3, Lambda: 0.1, Cycles: 0}); err == nil {
		t.Error("zero cycles accepted")
	}
	if _, err := Simulate(Params{N: 3, Lambda: 0.1, Cycles: 10, ModuleOf: []int{1}}); err == nil {
		t.Error("bad ModuleOf accepted")
	}
}

func TestConservationLowLoad(t *testing.T) {
	// Well below saturation every injected packet is eventually
	// delivered: injected = delivered + backlog (counting warmup too we
	// only check delivered+backlog >= measured injected).
	r, err := Simulate(Params{N: 4, Lambda: 0.05, Warmup: 200, Cycles: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Throughput must track offered load closely.
	if r.Throughput < 0.045 || r.Throughput > 0.055 {
		t.Errorf("throughput %v far from offered 0.05", r.Throughput)
	}
	// Backlog should be tiny at 5% load.
	if r.Backlog > r.Nodes {
		t.Errorf("backlog %d too large for low load", r.Backlog)
	}
}

func TestZeroLoad(t *testing.T) {
	r, err := Simulate(Params{N: 3, Lambda: 0, Cycles: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Injected != 0 || r.Delivered != 0 || r.Backlog != 0 {
		t.Errorf("zero-load run moved packets: %+v", r)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	p := Params{N: 3, Lambda: 0.1, Warmup: 50, Cycles: 200, Seed: 42}
	a, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestPathLenProperties(t *testing.T) {
	n := 4
	rows := 1 << uint(n)
	for dr := 0; dr < rows; dr++ {
		for dc := 0; dc < n; dc++ {
			h := pathLen(n, 0, 0, dr, dc)
			if h < 0 || h > 2*n-1 {
				t.Fatalf("path length %d out of range to (%d,%d)", h, dr, dc)
			}
			if dr == 0 && dc == 0 && h != 0 {
				t.Fatalf("self path length %d", h)
			}
		}
	}
}

func TestAvgHopsMatchesExpectedHops(t *testing.T) {
	// Measured mean hop count at low load must match the analytic mean.
	n := 4
	want := ExpectedHops(n)
	r, err := Simulate(Params{N: n, Lambda: 0.03, Warmup: 200, Cycles: 3000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.AvgHops-want) > 0.15 {
		t.Errorf("avg hops %v, analytic %v", r.AvgHops, want)
	}
}

func TestExpectedHopsThetaN(t *testing.T) {
	// E[hops] grows linearly in n: ratio to n settles around ~1.5.
	for _, n := range []int{3, 5, 7, 9} {
		e := ExpectedHops(n)
		if e < float64(n) || e > 2*float64(n) {
			t.Errorf("n=%d: E[hops]=%v outside [n, 2n]", n, e)
		}
	}
}

// The headline experiment: saturation rate scales as Theta(1/log R).
func TestSaturationScalesAsOneOverN(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation sweep skipped in -short mode")
	}
	products := make([]float64, 0, 3)
	for _, n := range []int{3, 5, 7} {
		rate, err := SaturationRate(n, SaturationOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if rate <= 0 || rate >= 1 {
			t.Fatalf("n=%d: degenerate saturation rate %v", n, rate)
		}
		products = append(products, rate*float64(n))
	}
	// lambda* x n should be near the analytic constant 2/1.5 = 4/3,
	// and roughly flat across n (within 2x).
	min, max := products[0], products[0]
	for _, p := range products {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	if max/min > 2.0 {
		t.Errorf("lambda* x n not flat: %v", products)
	}
	for i, p := range products {
		if p < 0.5 || p > 2.5 {
			t.Errorf("product %d = %v outside plausible band around 4/3", i, p)
		}
	}
}

func TestSaturationNearTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	n := 5
	rate, err := SaturationRate(n, SaturationOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	theory := TheoreticalSaturation(n)
	if rate < 0.4*theory || rate > 1.3*theory {
		t.Errorf("measured saturation %v vs fluid-limit %v", rate, theory)
	}
}

func TestBoundaryCrossingMeasurement(t *testing.T) {
	// Partition columns-with-rows modules: module = row block of 2 rows.
	n := 3
	rows := 1 << uint(n)
	moduleOf := make([]int, n*rows)
	for col := 0; col < n; col++ {
		for row := 0; row < rows; row++ {
			moduleOf[col*rows+row] = row / 2
		}
	}
	r, err := Simulate(Params{N: n, Lambda: 0.05, Warmup: 100, Cycles: 1000, Seed: 5, ModuleOf: moduleOf})
	if err != nil {
		t.Fatal(err)
	}
	if r.BoundaryCrossingsPerCycle <= 0 {
		t.Error("no boundary crossings measured")
	}
	// Crossings per cycle cannot exceed total link moves per cycle.
	if r.BoundaryCrossingsPerCycle > float64(2*n*rows) {
		t.Errorf("crossings per cycle %v exceeds link capacity", r.BoundaryCrossingsPerCycle)
	}
}

func BenchmarkSimulateN6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(Params{N: 6, Lambda: 0.1, Warmup: 50, Cycles: 200, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFiniteBuffersBoundQueues(t *testing.T) {
	r, err := Simulate(Params{
		N: 4, Lambda: 0.9, Warmup: 100, Cycles: 500, Seed: 21, BufferLimit: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.MaxQueue > 4 {
		t.Errorf("max queue %d exceeds buffer limit 4", r.MaxQueue)
	}
	if r.InjectionDrops == 0 {
		t.Error("overload with tiny buffers should drop injections")
	}
	if r.Stalls == 0 {
		t.Error("overload with tiny buffers should stall packets")
	}
}

func TestFiniteBuffersThroughputBelowInfinite(t *testing.T) {
	lambda := 0.9 * TheoreticalSaturation(4)
	inf, err := Simulate(Params{N: 4, Lambda: lambda, Warmup: 200, Cycles: 800, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := Simulate(Params{N: 4, Lambda: lambda, Warmup: 200, Cycles: 800, Seed: 22, BufferLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fin.Throughput >= inf.Throughput {
		t.Errorf("1-slot buffers (%v) not worse than infinite (%v): HOL blocking missing",
			fin.Throughput, inf.Throughput)
	}
}

func TestFiniteBuffersLowLoadHarmless(t *testing.T) {
	// At very low load generous buffers change nothing.
	a, err := Simulate(Params{N: 4, Lambda: 0.02, Warmup: 100, Cycles: 1000, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Params{N: 4, Lambda: 0.02, Warmup: 100, Cycles: 1000, Seed: 23, BufferLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered || a.Injected != b.Injected {
		t.Errorf("low-load runs diverged: %d/%d vs %d/%d",
			a.Delivered, a.Injected, b.Delivered, b.Injected)
	}
	if b.InjectionDrops != 0 || b.Stalls != 0 {
		t.Errorf("low load dropped %d / stalled %d", b.InjectionDrops, b.Stalls)
	}
}

func TestTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	r, err := Simulate(Params{N: 3, Lambda: 0.1, Warmup: 20, Cycles: 50, Seed: 2, Trace: &buf})
	if err != nil {
		t.Fatal(err)
	}
	rd := csv.NewReader(&buf)
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("trace is not CSV: %v", err)
	}
	if len(recs) != 51 { // header + one line per measured cycle
		t.Fatalf("trace rows = %d, want 51", len(recs))
	}
	if recs[0][0] != "cycle" || len(recs[0]) != 4 {
		t.Errorf("header = %v", recs[0])
	}
	// Last line's cumulative delivered must match the result.
	last := recs[len(recs)-1]
	if last[2] != strconv.Itoa(r.Delivered) {
		t.Errorf("final delivered %s != %d", last[2], r.Delivered)
	}
	// Monotone cumulative counters.
	prev := -1
	for _, rec := range recs[1:] {
		v, _ := strconv.Atoi(rec[1])
		if v < prev {
			t.Fatal("injected counter not monotone")
		}
		prev = v
	}
}

func TestVCNoDeadlockAtModerateLoad(t *testing.T) {
	// Regression: without virtual channels this exact configuration
	// deadlocks within a few cycles (zero deliveries, permanent backlog).
	r, err := Simulate(Params{N: 4, Lambda: 0.3, Warmup: 300, Cycles: 1000, Seed: 1, BufferLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Throughput < 0.15 {
		t.Errorf("throughput %v: network appears deadlocked", r.Throughput)
	}
}

func TestVCConservationUnderBackpressure(t *testing.T) {
	// Accepted injections are either delivered or still buffered.
	r, err := Simulate(Params{N: 3, Lambda: 0.5, Warmup: 0, Cycles: 400, Seed: 9, BufferLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Injected != r.Delivered+r.Backlog {
		t.Errorf("conservation violated: injected %d != delivered %d + backlog %d",
			r.Injected, r.Delivered, r.Backlog)
	}
}
