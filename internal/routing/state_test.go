package routing

import (
	"bytes"
	"reflect"
	"testing"
)

// TestRestoreSimContinuesIdentically pins the engine-level restore
// contract for both modes, hooks aside: pausing at an arbitrary cycle
// boundary, exporting state, and restoring into a fresh Sim continues
// the run to a final Result deeply equal to the uninterrupted run's,
// with the trace bytes of prefix and continuation concatenating to the
// uninterrupted trace.
func TestRestoreSimContinuesIdentically(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"plain", Params{N: 4, Lambda: 0.30, Warmup: 40, Cycles: 120, Seed: 7}},
		{"vc", Params{N: 4, Lambda: 0.30, Warmup: 40, Cycles: 120, Seed: 7, BufferLimit: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, cut := range []int{0, 1, 37, 99, 160} {
				var fullTrace bytes.Buffer
				pf := tc.p
				pf.Trace = &fullTrace
				sf, err := NewSim(pf, Uniform)
				if err != nil {
					t.Fatal(err)
				}
				want, err := sf.Finish()
				if err != nil {
					t.Fatal(err)
				}

				var prefix bytes.Buffer
				pp := tc.p
				pp.Trace = &prefix
				sp, err := NewSim(pp, Uniform)
				if err != nil {
					t.Fatal(err)
				}
				for sp.Cycle() < cut {
					if err := sp.Step(); err != nil {
						t.Fatal(err)
					}
				}
				st := sp.State()

				var rest bytes.Buffer
				pr := tc.p
				pr.Trace = &rest
				sr, err := RestoreSim(pr, Uniform, st)
				if err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				got, err := sr.Finish()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("cut %d: restored result diverged:\ngot  %+v\nwant %+v", cut, got, want)
				}
				if joined := prefix.String() + rest.String(); joined != fullTrace.String() {
					t.Fatalf("cut %d: trace bytes diverged", cut)
				}
				if err := got.CheckConservation(); err != nil {
					t.Fatalf("cut %d: %v", cut, err)
				}
			}
		})
	}
}

// TestRestoreSimRejectsCorrupt checks that a tampered state cannot
// silently restore.
func TestRestoreSimRejectsCorrupt(t *testing.T) {
	p := Params{N: 3, Lambda: 0.5, Warmup: 10, Cycles: 30, Seed: 3, BufferLimit: 2}
	s, err := NewSim(p, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	for s.Cycle() < 20 {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	base := s.State()
	if len(base.Packets) == 0 {
		t.Fatal("test needs a non-empty backlog")
	}

	mutate := []struct {
		name string
		fn   func(st *SimState)
	}{
		{"cycle past end", func(st *SimState) { st.Cycle = p.Warmup + p.Cycles + 1 }},
		{"queue out of range", func(st *SimState) { st.Packets[0].Queue = 1 << 20 }},
		{"dest out of range", func(st *SimState) { st.Packets[0].DstRow = 1 << 10 }},
		{"born in the future", func(st *SimState) { st.Packets[0].Born = st.Cycle + 5 }},
		{"vc mismatch", func(st *SimState) { st.Packets[0].VC = (st.Packets[0].VC + 1) % numVC }},
		{"counter drift", func(st *SimState) { st.Counters.TotalInjected += 3 }},
		{"derived field set", func(st *SimState) { st.Counters.Backlog = 1 }},
		{"wrong nodes", func(st *SimState) { st.Counters.Nodes++ }},
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			st := *base
			st.Packets = append([]PacketState(nil), base.Packets...)
			st.Counters = base.Counters
			m.fn(&st)
			if _, err := RestoreSim(p, Uniform, &st); err == nil {
				t.Fatal("corrupt state restored without error")
			}
		})
	}

	// The untampered state still restores.
	if _, err := RestoreSim(p, Uniform, base); err != nil {
		t.Fatalf("pristine state rejected: %v", err)
	}
}
