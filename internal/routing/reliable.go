package routing

// End-to-end reliable-delivery support. Like fault injection (faults.go),
// the simulator stays transport-agnostic: it consults a Transport
// (implemented outside this package, see internal/reliable) at a handful
// of well-defined points - fresh injection, retransmission emission,
// queue-head write-off, destination arrival - and keeps all Result
// accounting itself. With a nil Transport the run is identical to the
// plain simulation, packet for packet.
//
// Copy accounting. Every physical copy entering the system is counted
// once on each side of the strengthened conservation identity:
//
//	TotalInjected + Retransmitted =
//	    TotalDelivered + DuplicatesDropped + Dropped + GaveUp +
//	    Unreachable + Backlog
//
// A fresh injection counts TotalInjected; a retransmitted copy counts
// Retransmitted. The copy's eventual fate is exactly one of: accepted at
// the destination as the first copy of its payload (TotalDelivered),
// arrived after the payload was already accepted (DuplicatesDropped),
// discarded in flight by TTL or the DropDead policy (Dropped), written
// off because the source gave the payload up (GaveUp), refused at
// injection because the destination was dead (Unreachable), or still
// queued when the run ends (Backlog).

// DeliveryVerdict classifies a copy arriving at its destination under a
// reliable transport.
type DeliveryVerdict int

const (
	// DeliverAccept: first copy of a still-wanted payload - the payload
	// is delivered and its pending state cleared.
	DeliverAccept DeliveryVerdict = iota
	// DeliverDuplicate: the payload was already accepted; the copy is
	// discarded and counted in DuplicatesDropped.
	DeliverDuplicate
	// DeliverGaveUp: the source abandoned the payload (retry budget
	// exhausted) before this copy arrived; the copy is discarded and
	// counted in GaveUp.
	DeliverGaveUp
)

// RetransmitCopy is one retransmission the transport asks the simulator
// to inject: a fresh physical copy of payload ID, re-entering the network
// at Src addressed to Dst.
type RetransmitCopy struct {
	ID       uint64
	Src, Dst int // node ids (col*R + row)
}

// Transport is the end-to-end reliability hook. The simulator drives it
// single-threaded in a fixed per-cycle order: BeginCycle first (after
// FaultModel.BeginCycle), then Register for each fresh injection in node
// order, then one Retransmissions call whose copies are resolved with
// Emitted or Deferred, then Abandoned checks at queue heads, then Arrive
// for each copy reaching its destination. Implementations must be
// deterministic given that call order, and must reset all per-run state
// in Reset. A Transport must not be shared by concurrently running
// simulations.
type Transport interface {
	// Reset clears per-run state for a network of the given node count.
	// The simulator calls it once before the first cycle.
	Reset(nodes int)
	// BeginCycle fires the retransmission timers due at the given
	// absolute cycle (0-based, warmup included).
	BeginCycle(cycle int)
	// Register assigns a payload id to a fresh injection from src to dst
	// and arms its first retransmission timer. The simulator calls it for
	// every non-local injection attempt, including copies refused because
	// the destination is dead or (finite buffers) the entry queue is
	// full - the transport's timers then recover payloads the network
	// never even admitted.
	Register(cycle, src, dst int) (id uint64)
	// Retransmissions returns the copies whose timers have fired and that
	// are still pending, in deterministic order. The simulator resolves
	// every returned copy with exactly one Emitted or Deferred call.
	Retransmissions(cycle int) []RetransmitCopy
	// Emitted reports that the copy entered the system this cycle (or was
	// refused as unreachable, which also consumes an attempt): the
	// transport consumes one retry and re-arms the timer with backoff.
	Emitted(id uint64, cycle int)
	// Deferred reports that the copy could not be injected this cycle
	// (dead source node, or no room in the entry queue); the transport
	// re-offers it next cycle without consuming a retry.
	Deferred(id uint64)
	// Arrive reports a copy reaching its destination and returns the
	// verdict plus, for DeliverAccept, the cycle the payload was first
	// injected (for end-to-end latency accounting).
	Arrive(cycle int, id uint64) (v DeliveryVerdict, born int)
	// Abandoned reports whether the copy's payload has been given up on.
	// The simulator checks it at queue heads (like TTL) and discards
	// abandoned copies into GaveUp.
	Abandoned(id uint64) bool
}
