package routing

import (
	"runtime"
	"sync"
)

// SweepPoint is one load point of a parallel sweep.
type SweepPoint struct {
	Lambda float64
	Result *Result
	Err    error
}

// ParallelSweep simulates the given loads concurrently (one goroutine per
// available CPU, capped) and returns the results in input order. Each run
// derives its seed deterministically from base.Seed and its index, so the
// sweep is reproducible regardless of scheduling.
func ParallelSweep(base Params, lambdas []float64, pattern Pattern) []SweepPoint {
	out := make([]SweepPoint, len(lambdas))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(lambdas) {
		workers = len(lambdas)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int, len(lambdas))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				p := base
				p.Lambda = lambdas[i]
				p.Seed = base.Seed + int64(i)*1_000_003
				r, err := SimulatePattern(p, pattern)
				out[i] = SweepPoint{Lambda: lambdas[i], Result: r, Err: err}
			}
		}()
	}
	for i := range lambdas {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// SaturationFromSweep estimates the saturation rate from a sweep: the
// largest load whose delivered throughput is at least eff times the
// offered load (0 if none qualifies).
func SaturationFromSweep(points []SweepPoint, eff float64) float64 {
	best := 0.0
	for _, pt := range points {
		if pt.Err != nil || pt.Result == nil || pt.Lambda <= 0 {
			continue
		}
		if pt.Result.Throughput >= eff*pt.Lambda && pt.Lambda > best {
			best = pt.Lambda
		}
	}
	return best
}
