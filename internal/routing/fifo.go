package routing

// fifo is a queue with amortised O(1) push/pop and a reusable backing
// array. The previous queue representation — a plain slice dequeued
// with q = q[1:] — marches its base pointer forward through memory, so
// once the original capacity is consumed every append reallocates: the
// simulators paid roughly one allocation per enqueue in steady state.
// Here pop advances a head index instead, keeping the buffer's front
// capacity alive; a push that finds the buffer full compacts the live
// elements back to the start in place rather than growing. After the
// queue reaches its high-water capacity it never allocates again,
// which is what lets TestStepAllocsZero pin the hot loops at zero
// allocations per cycle.
type fifo[T any] struct {
	buf  []T
	head int
}

// newFifos returns n queues whose buffers are carved out of a single
// slab, each with capEach slots of preallocated capacity. A queue that
// outgrows its slot reallocates individually (append abandons the slab
// slice), so capEach is a head start, not a limit — except where the
// caller's own backpressure bounds occupancy (the VC simulator's
// credit scheme caps every queue at BufferLimit), in which case an
// exact capEach makes queue growth impossible.
func newFifos[T any](n, capEach int) []fifo[T] {
	fs := make([]fifo[T], n)
	if capEach > 0 {
		slab := make([]T, n*capEach)
		for i := range fs {
			fs[i].buf = slab[i*capEach : i*capEach : (i+1)*capEach]
		}
	}
	return fs
}

func (f *fifo[T]) len() int { return len(f.buf) - f.head }

// items returns the live elements in FIFO order, head first. The slice
// aliases the backing array: callers must not retain it across queue
// mutations.
func (f *fifo[T]) items() []T { return f.buf[f.head:] }

// front returns the head element without removing it. The queue must
// be non-empty.
func (f *fifo[T]) front() T { return f.buf[f.head] }

// pop removes the head element. When the queue empties, the buffer is
// rewound so its full capacity is immediately reusable.
func (f *fifo[T]) pop() {
	f.head++
	if f.head == len(f.buf) {
		f.head = 0
		f.buf = f.buf[:0]
	}
}

// push appends v at the tail, compacting live elements to the front of
// the backing array first when it is full but has dead space before
// the head.
func (f *fifo[T]) push(v T) {
	if f.head > 0 && len(f.buf) == cap(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}
