package routing

import (
	"reflect"
	"testing"
)

func TestParallelSweepDeterministic(t *testing.T) {
	base := Params{N: 4, Warmup: 100, Cycles: 300, Seed: 31}
	lambdas := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	a := ParallelSweep(base, lambdas, Uniform)
	b := ParallelSweep(base, lambdas, Uniform)
	if len(a) != len(lambdas) {
		t.Fatalf("points = %d", len(a))
	}
	for i := range a {
		if a[i].Err != nil || b[i].Err != nil {
			t.Fatalf("point %d errored: %v / %v", i, a[i].Err, b[i].Err)
		}
		if !reflect.DeepEqual(*a[i].Result, *b[i].Result) {
			t.Errorf("point %d differs across runs: scheduling leaked into results", i)
		}
		if a[i].Lambda != lambdas[i] {
			t.Errorf("point %d out of order", i)
		}
	}
}

func TestParallelSweepThroughputMonotoneAtLowLoad(t *testing.T) {
	base := Params{N: 4, Warmup: 100, Cycles: 600, Seed: 37}
	lambdas := []float64{0.02, 0.05, 0.1, 0.15}
	pts := ParallelSweep(base, lambdas, Uniform)
	prev := -1.0
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		if pt.Result.Throughput <= prev {
			t.Errorf("throughput not increasing below saturation: %v", pt.Result.Throughput)
		}
		prev = pt.Result.Throughput
	}
}

func TestSaturationFromSweep(t *testing.T) {
	base := Params{N: 4, Warmup: 150, Cycles: 500, Seed: 41}
	theory := TheoreticalSaturation(4)
	lambdas := []float64{theory * 0.4, theory * 0.8, theory * 1.2, theory * 1.6}
	pts := ParallelSweep(base, lambdas, Uniform)
	sat := SaturationFromSweep(pts, 0.95)
	if sat < theory*0.4 || sat > theory*1.3 {
		t.Errorf("sweep saturation %v implausible vs theory %v", sat, theory)
	}
	// Propagated errors are skipped, not fatal.
	bad := []SweepPoint{{Lambda: 0.5, Err: errFake{}}}
	if SaturationFromSweep(bad, 0.95) != 0 {
		t.Error("error points should not contribute")
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake" }

func BenchmarkParallelSweep(b *testing.B) {
	base := Params{N: 5, Warmup: 50, Cycles: 150, Seed: 1}
	lambdas := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3}
	for i := 0; i < b.N; i++ {
		ParallelSweep(base, lambdas, Uniform)
	}
}
