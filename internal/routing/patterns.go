package routing

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Pattern selects the destination distribution of injected packets.
type Pattern int

const (
	// Uniform sends every packet to an independently uniform node.
	Uniform Pattern = iota
	// BitReverse sends (row, col) to (reverse(row), col): the classic
	// butterfly adversary - all bit-reversal paths collide in the middle.
	BitReverse
	// Transpose sends row r to row with halves swapped (r_hi r_lo ->
	// r_lo r_hi), same column; another standard permutation stressor.
	Transpose
	// Complement sends row r to ^r (all bits flipped), same column.
	Complement
	// Shuffle sends row r to its left cyclic shift (r1 r2 ... r_{n-1} r0),
	// same column: the perfect-shuffle permutation, the third classic
	// butterfly adversary alongside transpose and bit-reversal. Every
	// packet must correct the single rotated bit disagreement pattern,
	// and the shifted addresses funnel whole row halves through the
	// same cross links.
	Shuffle
)

func (p Pattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case BitReverse:
		return "bit-reverse"
	case Transpose:
		return "transpose"
	case Complement:
		return "complement"
	case Shuffle:
		return "shuffle"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// destFor returns the destination of a packet injected at (row, col).
func destFor(p Pattern, n, rows, row, col int, rng *rand.Rand) (dr, dc int, err error) {
	switch p {
	case Uniform:
		return rng.Intn(rows), rng.Intn(n), nil
	case BitReverse:
		return int(bits.Reverse64(uint64(row)) >> uint(64-n)), col, nil
	case Transpose:
		h := n / 2
		lo := row & ((1 << uint(h)) - 1)
		hi := row >> uint(h)
		// For odd n the middle bit stays put.
		mid := 0
		if n%2 == 1 {
			mid = (row >> uint(h)) & 1
			hi = row >> uint(h+1)
			return lo<<uint(h+1) | mid<<uint(h) | hi, col, nil
		}
		return lo<<uint(h) | hi, col, nil
	case Complement:
		return row ^ (rows - 1), col, nil
	case Shuffle:
		return ((row << 1) | (row >> uint(n-1))) & (rows - 1), col, nil
	default:
		return 0, 0, fmt.Errorf("routing: unknown pattern %v", p)
	}
}

// SimulatePattern runs the simulation with a non-uniform destination
// pattern. It shares all mechanics with Simulate; Params.Lambda etc.
// apply unchanged.
func SimulatePattern(p Params, pattern Pattern) (*Result, error) {
	if pattern == Uniform {
		return Simulate(p)
	}
	return simulate(p, pattern)
}
