package routing

// Fault-aware routing support. The simulator itself stays fault-agnostic:
// it consults a FaultModel (implemented outside this package, see
// internal/faults) for the per-cycle dead sets and applies a Policy when
// the deterministic route runs into a dead link. A module (chip/board) in
// the Section 2.3 packaging is also a failure domain - when it dies, its
// nodes and boundary links die together - and the FaultModel interface is
// wide enough to express that without this package knowing about modules.

// FaultModel supplies the simulator's view of which nodes and directed
// links are dead during each cycle. The simulator calls BeginCycle exactly
// once per simulated cycle (warmup included, cycle 0 first) and then
// queries the frozen state; implementations may mutate their state only in
// BeginCycle. A FaultModel must not be shared by concurrently running
// simulations.
type FaultModel interface {
	// BeginCycle fixes the fault state for the given absolute cycle
	// (0-based, counting warmup cycles).
	BeginCycle(cycle int)
	// NodeDown reports whether node (id = col*R + row) is dead. Dead
	// nodes inject nothing and deliver nothing; every link into or out
	// of a dead node must also report dead via LinkDown.
	NodeDown(node int) bool
	// LinkDown reports whether the directed link out of node on output
	// out (0 = straight, 1 = cross) is dead. Implementations must fold
	// endpoint node deaths into this answer.
	LinkDown(node, out int) bool
}

// Policy selects how the router reacts to a dead planned output link.
type Policy int

const (
	// Misroute is the fault-aware policy: when the planned output link
	// is dead the packet takes the other output if it is alive - a
	// packet that wanted the cross link takes the straight link and
	// retries the dimension on the next wrap-around pass; a blocked
	// straight move takes the cross link and the flipped bit is
	// re-fixed a pass later. If both outputs are dead the packet waits
	// in place for a repair (or for its TTL to expire).
	Misroute Policy = iota
	// DropDead drops the packet at a dead planned link, with no
	// fallback: the naive baseline the misrouting policy is measured
	// against.
	DropDead
)

func (p Policy) String() string {
	switch p {
	case Misroute:
		return "misroute"
	case DropDead:
		return "drop"
	default:
		return "policy(?)"
	}
}

// chooseOut picks the output queue for pk at (row, col) under the fault
// policy. drop reports that the packet must be discarded instead
// (DropDead with a dead planned link); misrouted reports that the
// fallback output was taken.
func chooseOut(pk packet, row, col, rows int, fm FaultModel, policy Policy) (out int, drop, misrouted bool) {
	want := 0
	bit := 1 << uint(col)
	if pk.dstRow&bit != row&bit {
		want = 1
	}
	if fm == nil {
		return want, false, false
	}
	node := col*rows + row
	if !fm.LinkDown(node, want) {
		return want, false, false
	}
	if policy == DropDead {
		return want, true, false
	}
	other := 1 - want
	if !fm.LinkDown(node, other) {
		return other, false, true
	}
	// Both outputs dead: wait on the planned queue for a repair.
	return want, false, false
}
