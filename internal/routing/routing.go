// Package routing is a synchronous packet-routing simulator for wrapped
// butterfly networks. It provides the empirical counterpart of the
// Section 2.3 lower-bound argument: with uniform random traffic the
// maximum sustainable injection rate of an R-row butterfly is
// Theta(1/log R) (average distance Theta(log R), balanced link loads), so
// an M-node module must expose Omega(M/log R) off-module links.
//
// The model: every node of the n-dimensional wrapped butterfly (R = 2^n
// rows, n stage columns) injects a packet per cycle with probability
// lambda, addressed to a uniformly random node. Routing is deterministic
// and stateless: at column s the packet takes the cross link if address
// bit s of its current row disagrees with its destination row, else the
// straight link; once the row matches it continues straight to the
// destination column. Every directed link moves at most one packet per
// cycle; per-link FIFO queues are unbounded.
package routing

import (
	"fmt"
	"io"
)

// Params configures one simulation run.
type Params struct {
	// N is the butterfly dimension (R = 2^N rows, N columns).
	N int
	// Lambda is the per-node injection probability per cycle.
	Lambda float64
	// Warmup cycles are simulated but excluded from measurements.
	Warmup int
	// Cycles is the number of measured cycles after warmup.
	Cycles int
	// Seed drives the run's randomness (same seed, same run).
	Seed int64
	// ModuleOf, if non-nil, maps node id (col*R + row) to a module;
	// boundary-crossing traffic is then measured.
	ModuleOf []int
	// BufferLimit caps the per-virtual-channel FIFO of every link
	// (0 = unbounded single FIFO). Finite buffers switch the simulator to
	// credit-based backpressure with three dateline virtual channels -
	// without them the wrapped column ring deadlocks (see vc.go).
	BufferLimit int
	// Trace, if non-nil, receives one CSV line per measured cycle:
	// cycle,injected,delivered,backlog (cumulative counts, end-of-cycle
	// backlog). A header line is written first.
	Trace io.Writer
	// Faults, if non-nil, supplies per-cycle node and link fault state
	// (see internal/faults for implementations). With a nil Faults - or
	// one that never reports a fault - the run is identical to the
	// fault-free simulation, packet for packet.
	Faults FaultModel
	// Policy selects the router's reaction to dead planned links. The
	// zero value is Misroute (the fault-aware policy); DropDead is the
	// naive baseline. Ignored when Faults is nil.
	Policy Policy
	// TTL, if positive, drops any packet that has been in the network
	// for TTL cycles without being delivered (age = cycle - injection
	// cycle; expired packets are discarded when they reach the head of
	// a queue). 0 disables the check. A TTL bounds the lifetime of
	// packets trapped by permanent faults - without one they sit in
	// Backlog forever. Retransmitted copies age from their own emission
	// cycle.
	TTL int
	// Reliable, if non-nil, layers an end-to-end reliable transport over
	// the run (see internal/reliable): sources retransmit undelivered
	// payloads on timeout, destinations suppress duplicates, and the
	// Retransmitted / DuplicatesDropped / GaveUp counters become live.
	// With a nil Transport - or one whose timers never fire - the run is
	// identical to the plain simulation, packet for packet.
	Reliable Transport
	// Adaptive, if non-nil, replaces the static Policy with an online
	// fault-aware adaptive router (see internal/adaptive): link health is
	// learned from failed attempts and control-plane probes, packets take
	// bounded detours around condemned links, queued packets are
	// re-planned after their link is condemned, and injections to
	// destinations the disseminated link-state map calls unreachable are
	// refused upfront. Policy is ignored while Adaptive is set. A router
	// that has learned nothing (zero faults) leaves the run identical to
	// the plain simulation, packet for packet.
	Adaptive AdaptiveRouter
}

// Result summarizes a run.
type Result struct {
	Nodes     int
	Injected  int
	Delivered int
	// Throughput is delivered packets per node per measured cycle.
	Throughput float64
	// AvgLatency is the mean injection-to-delivery time of packets
	// delivered during the measurement window.
	AvgLatency float64
	// AvgHops is the mean hop count of delivered packets.
	AvgHops float64
	// MaxQueue is the largest per-link queue observed at the end.
	MaxQueue int
	// Backlog is the number of packets still queued at the end.
	Backlog int
	// BoundaryCrossingsPerCycle is the mean number of packets crossing a
	// module boundary per measured cycle (0 unless ModuleOf is set).
	BoundaryCrossingsPerCycle float64
	// InjectionDrops counts injections refused because the entry queue
	// was full (finite buffers only).
	InjectionDrops int
	// Stalls counts link-cycles where a packet could not advance because
	// its next queue was full (finite buffers) or its link was dead
	// (fault injection). Measured cycles only.
	Stalls int
	// Dropped counts packets discarded in flight - TTL expiry, or a
	// dead planned link under the DropDead policy - over the whole run,
	// warmup included (like Backlog, so conservation is exact).
	Dropped int
	// Unreachable counts packets that were addressed to a node that was
	// dead at injection time, over the whole run. They never enter the
	// network. A destination that dies while a packet is in flight is
	// not detected; such packets wander until their TTL drops them.
	Unreachable int
	// Misroutes counts fallback hops taken because the planned output
	// link was dead (Misroute policy), over the whole run.
	Misroutes int
	// Detours counts hops where the adaptive router (Params.Adaptive)
	// chose a non-planned output - forced fallbacks around condemned
	// links plus deliberate dimension-shifts - over the whole run. Zero
	// without a router.
	Detours int
	// Reroutes counts queued packets the adaptive router moved to their
	// node's other output queue after condemning the link they waited on.
	Reroutes int
	// UnreachableDead, UnreachableCut, and UnreachableDetected partition
	// Unreachable by cause: destination node dead at injection (oracle),
	// every link into the destination dead at injection (oracle), or the
	// adaptive router's disseminated link-state map condemning the
	// destination (learned). Exactly: Unreachable = UnreachableDead +
	// UnreachableCut + UnreachableDetected; CheckConservation verifies
	// it.
	UnreachableDead, UnreachableCut, UnreachableDetected int
	// Retransmitted counts copies re-injected by the reliable transport
	// (Params.Reliable), over the whole run. Zero without a transport.
	Retransmitted int
	// DuplicatesDropped counts copies that arrived at their destination
	// after the payload had already been accepted; the destination
	// suppresses them so goodput counts each payload once.
	DuplicatesDropped int
	// GaveUp counts copies written off after the source abandoned their
	// payload (retry budget exhausted): discarded at a queue head or on
	// arrival at the destination.
	GaveUp int
	// TotalInjected and TotalDelivered count over the whole run, warmup
	// included (Injected and Delivered remain measurement-window
	// counts). Exactly: TotalInjected + Retransmitted = TotalDelivered +
	// DuplicatesDropped + Dropped + GaveUp + Unreachable + Backlog.
	// Result.CheckConservation verifies it. Under a reliable transport
	// TotalDelivered counts accepted payloads (first copies only).
	TotalInjected, TotalDelivered int
}

// CheckConservation verifies that no copy was lost by the simulator:
// every copy that entered the system over the whole run - fresh injection
// or retransmission - was accepted, suppressed as a duplicate, dropped,
// written off after the source gave up, refused as unreachable, or is
// still queued. Without a reliable transport the extra terms are zero and
// the identity reduces to the classic TotalInjected = TotalDelivered +
// Dropped + Unreachable + Backlog.
func (r *Result) CheckConservation() error {
	if got := r.TotalDelivered + r.DuplicatesDropped + r.Dropped + r.GaveUp + r.Unreachable + r.Backlog; got != r.TotalInjected+r.Retransmitted {
		return fmt.Errorf("routing: conservation violated: injected %d + retransmitted %d != delivered %d + duplicates %d + dropped %d + gaveup %d + unreachable %d + backlog %d",
			r.TotalInjected, r.Retransmitted, r.TotalDelivered, r.DuplicatesDropped, r.Dropped, r.GaveUp, r.Unreachable, r.Backlog)
	}
	if got := r.UnreachableDead + r.UnreachableCut + r.UnreachableDetected; got != r.Unreachable {
		return fmt.Errorf("routing: unreachable accounting violated: dead %d + cut %d + detected %d != unreachable %d",
			r.UnreachableDead, r.UnreachableCut, r.UnreachableDetected, r.Unreachable)
	}
	return nil
}

// arrival is the phase-2 scratch record of the plain simulator: a
// packet that crossed a link this cycle, waiting to be enqueued (or
// delivered) at its new node after all moves complete.
type arrival struct {
	pk       packet
	row, col int
}

type packet struct {
	dstRow, dstCol int
	born           int
	hops           int
	// rid is the reliable-transport payload id (0 when no transport is
	// attached; see Params.Reliable).
	rid uint64
	// detours is the deliberate-detour budget the packet has spent, and
	// blocked the column whose bit a condemned cross link kept it from
	// fixing (-1 when none) - adaptive-router state (see adaptive.go),
	// untouched without a router.
	detours int
	blocked int
}

// Simulate runs the synchronous simulation with uniform random traffic.
func Simulate(p Params) (*Result, error) {
	return simulate(p, Uniform)
}

func simulate(p Params, pattern Pattern) (*Result, error) {
	s, err := NewSim(p, pattern)
	if err != nil {
		return nil, err
	}
	return s.Finish()
}

// SaturationOptions tunes the saturation search.
type SaturationOptions struct {
	Warmup, Cycles int
	Seed           int64
	// Efficiency is the delivered/injected ratio that still counts as
	// stable (default 0.95).
	Efficiency float64
	// Steps is the number of bisection steps (default 7).
	Steps int
}

// SaturationRate estimates, by bisection over lambda, the maximum stable
// injection rate of the n-dimensional wrapped butterfly under uniform
// random traffic. Theory: Theta(1/n).
func SaturationRate(n int, opts SaturationOptions) (float64, error) {
	if opts.Warmup == 0 {
		opts.Warmup = 300
	}
	if opts.Cycles == 0 {
		opts.Cycles = 700
	}
	if opts.Efficiency == 0 {
		opts.Efficiency = 0.95
	}
	if opts.Steps == 0 {
		opts.Steps = 7
	}
	stable := func(lambda float64) (bool, error) {
		r, err := Simulate(Params{
			N: n, Lambda: lambda,
			Warmup: opts.Warmup, Cycles: opts.Cycles, Seed: opts.Seed + 1,
		})
		if err != nil {
			return false, err
		}
		return r.Throughput >= opts.Efficiency*lambda, nil
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < opts.Steps; i++ {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// TheoreticalSaturation returns the analytic fluid-limit saturation rate:
// each of the nR nodes injects lambda packets per cycle travelling
// E[hops] links on average over 2nR directed links of unit capacity, so
// lambda* = 2nR / (nR * E[hops]) = 2 / E[hops], with E[hops] ~ 3n/2
// (n/2... the row-fixing prefix averages, plus the column alignment).
// The exact expectation is computed by enumeration.
func TheoreticalSaturation(n int) float64 {
	return 2 / ExpectedHops(n)
}

// ExpectedHops computes the exact mean path length of the deterministic
// route over uniform random source/destination pairs, by symmetry
// averaging over destinations from a fixed source column.
func ExpectedHops(n int) float64 {
	rows := 1 << uint(n)
	// By vertex-transitivity fix source (row 0, col 0). For destination
	// (dr, dc): the route fixes differing bits as their columns pass,
	// then runs straight to dc. Hop count: let f = the last column index
	// (in visiting order starting at col 0) whose bit differs; the walk
	// must pass through all columns up to f, then continue to dc.
	total := 0.0
	for dr := 0; dr < rows; dr++ {
		for dc := 0; dc < n; dc++ {
			total += float64(pathLen(n, 0, 0, dr, dc))
		}
	}
	return total / float64(rows*n)
}

// pathLen returns the deterministic route length from (sr, sc) to
// (dr, dc).
func pathLen(n, sr, sc, dr, dc int) int {
	if sr == dr && sc == dc {
		return 0
	}
	row, col := sr, sc
	hops := 0
	for {
		if row == dr && col == dc {
			return hops
		}
		// one hop forward (straight or cross chosen by bit col)
		bit := 1 << uint(col)
		if dr&bit != row&bit {
			row ^= bit
		}
		col = (col + 1) % n
		hops++
		if hops > 3*n {
			panic("routing: path did not terminate")
		}
	}
}
