package routing

import (
	"math/rand"
	"testing"
)

func TestDestForPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 6
	rows := 1 << uint(n)
	for _, p := range []Pattern{BitReverse, Transpose, Complement} {
		seen := make([]bool, rows)
		for r := 0; r < rows; r++ {
			dr, dc, err := destFor(p, n, rows, r, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			if dc != 3 {
				t.Fatalf("%v: column changed to %d", p, dc)
			}
			if dr < 0 || dr >= rows || seen[dr] {
				t.Fatalf("%v: destination %d invalid or repeated", p, dr)
			}
			seen[dr] = true
		}
	}
}

func TestDestForInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 5, 6, 7} {
		rows := 1 << uint(n)
		for _, p := range []Pattern{BitReverse, Transpose, Complement} {
			for r := 0; r < rows; r++ {
				d1, _, _ := destFor(p, n, rows, r, 0, rng)
				d2, _, _ := destFor(p, n, rows, d1, 0, rng)
				if d2 != r {
					t.Fatalf("%v n=%d: not an involution at %d (%d -> %d)", p, n, r, d1, d2)
				}
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	if Uniform.String() != "uniform" || BitReverse.String() != "bit-reverse" {
		t.Error("pattern names wrong")
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern empty string")
	}
}

func TestSimulatePatternConservation(t *testing.T) {
	for _, p := range []Pattern{Uniform, BitReverse, Transpose, Complement} {
		r, err := SimulatePattern(Params{
			N: 4, Lambda: 0.05, Warmup: 100, Cycles: 800, Seed: 3,
		}, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Delivered == 0 {
			t.Errorf("%v: nothing delivered", p)
		}
		if r.Throughput > 0.06 {
			t.Errorf("%v: throughput %v exceeds offered load", p, r.Throughput)
		}
	}
}

// Bit-reversal is the classic butterfly adversary: at a load the uniform
// pattern absorbs comfortably, bit-reversal saturates (backlog piles up).
func TestBitReverseIsAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary comparison skipped in -short mode")
	}
	n := 7
	lambda := 0.9 * TheoreticalSaturation(n)
	uni, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, BitReverse)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Backlog <= 2*uni.Backlog {
		t.Errorf("bit-reverse backlog %d not clearly worse than uniform %d", rev.Backlog, uni.Backlog)
	}
	if rev.Throughput >= uni.Throughput {
		t.Errorf("bit-reverse throughput %v not worse than uniform %v", rev.Throughput, uni.Throughput)
	}
}

func TestComplementHopsExactlyN(t *testing.T) {
	// Complement traffic keeps the column and flips every row bit: the
	// deterministic route takes exactly n hops for every packet (one
	// full wrap of the stages, correcting one bit each), so the measured
	// mean must be exactly n at low load.
	n := 5
	comp, err := SimulatePattern(Params{N: n, Lambda: 0.02, Warmup: 200, Cycles: 2000, Seed: 11}, Complement)
	if err != nil {
		t.Fatal(err)
	}
	if comp.AvgHops != float64(n) {
		t.Errorf("complement hops %v, want exactly %d", comp.AvgHops, n)
	}
}
