package routing

import (
	"math/rand"
	"testing"
)

func TestDestForPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 6
	rows := 1 << uint(n)
	for _, p := range []Pattern{BitReverse, Transpose, Complement, Shuffle} {
		seen := make([]bool, rows)
		for r := 0; r < rows; r++ {
			dr, dc, err := destFor(p, n, rows, r, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			if dc != 3 {
				t.Fatalf("%v: column changed to %d", p, dc)
			}
			if dr < 0 || dr >= rows || seen[dr] {
				t.Fatalf("%v: destination %d invalid or repeated", p, dr)
			}
			seen[dr] = true
		}
	}
}

func TestDestForInvolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 5, 6, 7} {
		rows := 1 << uint(n)
		for _, p := range []Pattern{BitReverse, Transpose, Complement} {
			for r := 0; r < rows; r++ {
				d1, _, _ := destFor(p, n, rows, r, 0, rng)
				d2, _, _ := destFor(p, n, rows, d1, 0, rng)
				if d2 != r {
					t.Fatalf("%v n=%d: not an involution at %d (%d -> %d)", p, n, r, d1, d2)
				}
			}
		}
	}
}

// Shuffle is a cyclic rotation, not an involution: applying it n times
// (one full rotation of the n row bits) must return every row to
// itself, and applying it fewer times must not fix a row like 1 (a
// single set bit keeps moving until it wraps).
func TestShuffleHasOrderN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 3, 5, 8} {
		rows := 1 << uint(n)
		for r := 0; r < rows; r++ {
			cur := r
			for i := 0; i < n; i++ {
				if i > 0 && r == 1 && cur == r {
					t.Fatalf("n=%d: shuffle fixed row 1 after only %d applications", n, i)
				}
				d, c, err := destFor(Shuffle, n, rows, cur, 2, rng)
				if err != nil {
					t.Fatal(err)
				}
				if c != 2 {
					t.Fatalf("shuffle moved the column to %d", c)
				}
				cur = d
			}
			if cur != r {
				t.Fatalf("n=%d: shuffle^%d(%d) = %d, want identity", n, n, r, cur)
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	if Uniform.String() != "uniform" || BitReverse.String() != "bit-reverse" {
		t.Error("pattern names wrong")
	}
	if Shuffle.String() != "shuffle" {
		t.Error("shuffle name wrong")
	}
	if Pattern(99).String() == "" {
		t.Error("unknown pattern empty string")
	}
}

func TestSimulatePatternConservation(t *testing.T) {
	for _, p := range []Pattern{Uniform, BitReverse, Transpose, Complement, Shuffle} {
		r, err := SimulatePattern(Params{
			N: 4, Lambda: 0.05, Warmup: 100, Cycles: 800, Seed: 3,
		}, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if r.Delivered == 0 {
			t.Errorf("%v: nothing delivered", p)
		}
		if r.Throughput > 0.06 {
			t.Errorf("%v: throughput %v exceeds offered load", p, r.Throughput)
		}
	}
}

// Bit-reversal is the classic butterfly adversary: at a load the uniform
// pattern absorbs comfortably, bit-reversal saturates (backlog piles up).
func TestBitReverseIsAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("adversary comparison skipped in -short mode")
	}
	n := 7
	lambda := 0.9 * TheoreticalSaturation(n)
	uni, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, BitReverse)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Backlog <= 2*uni.Backlog {
		t.Errorf("bit-reverse backlog %d not clearly worse than uniform %d", rev.Backlog, uni.Backlog)
	}
	if rev.Throughput >= uni.Throughput {
		t.Errorf("bit-reverse throughput %v not worse than uniform %v", rev.Throughput, uni.Throughput)
	}
}

// Shuffle stresses the network differently from bit-reversal: the
// dimension-order router spreads the rotated addresses well enough that
// aggregate backlog stays below uniform's, but the funneled row halves
// concentrate queueing - at saturation load the deepest queue is about
// twice as deep as under uniform traffic, and every packet needs the
// full n hops (all n rotated bits disagree in general).
func TestShuffleVsUniform(t *testing.T) {
	if testing.Short() {
		t.Skip("pattern comparison skipped in -short mode")
	}
	n := 7
	lambda := TheoreticalSaturation(n)
	uni, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	shuf, err := SimulatePattern(Params{N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 7}, Shuffle)
	if err != nil {
		t.Fatal(err)
	}
	if shuf.MaxQueue*2 <= uni.MaxQueue*3 {
		t.Errorf("shuffle max queue %d not clearly deeper than uniform %d", shuf.MaxQueue, uni.MaxQueue)
	}
	if shuf.AvgHops != float64(n) {
		t.Errorf("shuffle hops %v, want exactly %d", shuf.AvgHops, n)
	}
}

func TestComplementHopsExactlyN(t *testing.T) {
	// Complement traffic keeps the column and flips every row bit: the
	// deterministic route takes exactly n hops for every packet (one
	// full wrap of the stages, correcting one bit each), so the measured
	// mean must be exactly n at low load.
	n := 5
	comp, err := SimulatePattern(Params{N: n, Lambda: 0.02, Warmup: 200, Cycles: 2000, Seed: 11}, Complement)
	if err != nil {
		t.Fatal(err)
	}
	if comp.AvgHops != float64(n) {
		t.Errorf("complement hops %v, want exactly %d", comp.AvgHops, n)
	}
}
