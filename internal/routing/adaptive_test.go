package routing

import "testing"

// Regression for the dead-destination wander bug: a destination whose
// every incoming link is dead (but whose node is alive) used to trap
// packets addressed to it in the network - forever with TTL 0. They must
// now be refused at injection as Unreachable (UnreachableCut), in both
// simulator modes.
//
// The surgical case is n = 1 (2 nodes, 1 column): cutting row 1's two
// incoming links leaves exactly one kind of doomed traffic - packets
// addressed to row 1 - and no trapped transit, so before the fix the
// backlog grew without bound (the row-0 source misroutes them onto its
// straight self-loop forever) while after it the network must end the
// run empty.
func TestDeadDestZeroTTLRefusedAtInjection(t *testing.T) {
	fm := newStubFaults(1)
	fm.links[[2]int{1, 0}] = true // straight (row 1) -> (row 1)
	fm.links[[2]int{0, 1}] = true // cross (row 0) -> (row 1)
	for _, buffers := range []int{0, 3} {
		r, err := Simulate(Params{
			N: 1, Lambda: 0.2, Warmup: 0, Cycles: 400, Seed: 11,
			BufferLimit: buffers, Faults: fm, Policy: Misroute, // TTL deliberately 0
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Error(err)
		}
		if r.UnreachableCut == 0 {
			t.Errorf("buffers=%d: no injection refused toward the cut-off destination", buffers)
		}
		if r.Dropped != 0 {
			t.Errorf("buffers=%d: %d packets dropped with TTL disabled", buffers, r.Dropped)
		}
		if r.Backlog > 2 {
			t.Errorf("buffers=%d: backlog %d - packets for the cut destination wandering", buffers, r.Backlog)
		}
		if r.Delivered == 0 {
			t.Errorf("buffers=%d: row 1 -> row 0 traffic should still deliver", buffers)
		}
	}
	// The general case: in a bigger network, cut-addressed traffic is
	// refused at injection while the dead links' transit victims are
	// still handled by the TTL as before.
	n := 3
	rows := 1 << uint(n)
	fm = newStubFaults(n)
	fm.links[[2]int{0*rows + 5, 0}] = true       // straight into (row 5, col 1)
	fm.links[[2]int{0*rows + (5 ^ 1), 1}] = true // cross into (row 5, col 1)
	for _, buffers := range []int{0, 3} {
		r, err := Simulate(Params{
			N: n, Lambda: 0.1, Warmup: 0, Cycles: 600, Seed: 11,
			BufferLimit: buffers, Faults: fm, Policy: Misroute, TTL: 48,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Error(err)
		}
		if r.UnreachableCut == 0 {
			t.Errorf("buffers=%d: no injection refused toward the cut-off destination", buffers)
		}
		if r.Delivered == 0 {
			t.Errorf("buffers=%d: network stopped delivering", buffers)
		}
	}
}

// TTL expiry inside virtual-channel queues, scenario 1: heads blocked at
// a permanently dead link expire in place, packets queued behind them
// surface and expire in turn, accounting stays exact, and the rest of
// the network neither wedges nor leaks.
func TestVCQueueTTLExpiryAtDeadLink(t *testing.T) {
	n := 3
	rows := 1 << uint(n)
	fm := newStubFaults(n)
	for row := 0; row < rows; row++ {
		fm.links[[2]int{row, 1}] = true // every column-0 cross: bit 0 unfixable
	}
	r, err := Simulate(Params{
		N: n, Lambda: 0.1, Warmup: 0, Cycles: 500, Seed: 7,
		BufferLimit: 2, Faults: fm, Policy: Misroute, TTL: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Dropped == 0 {
		t.Error("no TTL expiry at the dead links")
	}
	if r.Delivered == 0 {
		t.Error("traffic not needing bit 0 should still be delivered")
	}
	if r.MaxQueue > 2 {
		t.Errorf("VC queue grew past BufferLimit: %d", r.MaxQueue)
	}
	// The expiry must actually free slots: with the dead links trapping a
	// constant packet stream in 2-deep buffers, a network that never
	// reclaimed expired heads would end with every trap queue full and a
	// TTL-free run's backlog; expiring must leave less.
	noTTL, err := Simulate(Params{
		N: n, Lambda: 0.1, Warmup: 0, Cycles: 500, Seed: 7,
		BufferLimit: 2, Faults: fm, Policy: Misroute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := noTTL.CheckConservation(); err != nil {
		t.Error(err)
	}
	if noTTL.Dropped != 0 {
		t.Errorf("TTL disabled but %d dropped", noTTL.Dropped)
	}
	if r.Backlog >= noTTL.Backlog {
		t.Errorf("TTL backlog %d not below TTL-free backlog %d", r.Backlog, noTTL.Backlog)
	}
}

// TTL expiry inside virtual-channel queues, scenario 2: no faults at
// all - packets age out while enqueued behind slow heads under pure
// congestion (credit stalls), so the expiry path is exercised mid-queue
// rather than at a dead link. Conservation must stay exact.
func TestVCQueueTTLExpiryUnderCongestion(t *testing.T) {
	r, err := Simulate(Params{
		N: 4, Lambda: 0.5, Warmup: 0, Cycles: 400, Seed: 3,
		BufferLimit: 1, TTL: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Dropped == 0 {
		t.Error("saturated 1-deep buffers with a short TTL expired nothing")
	}
	if r.Stalls == 0 {
		t.Error("no credit stalls at saturation")
	}
	if r.Delivered == 0 {
		t.Error("network wedged")
	}
}

// scriptedRouter is a minimal AdaptiveRouter that follows the plan except
// for one condemned cross link, active from a fixed cycle: packets
// wanting it are detoured straight, and queued heads get re-planned. It
// exercises the simulator-side hook accounting without the learning
// machinery.
type scriptedRouter struct {
	node  int
	from  int
	cycle int
	rows  int
}

func (s *scriptedRouter) Reset(n, rows int)             { s.rows = rows }
func (s *scriptedRouter) BeginCycle(cycle int)          { s.cycle = cycle }
func (s *scriptedRouter) Probes() []int                 { return nil }
func (s *scriptedRouter) ProbeResult(link int, ok bool) {}
func (s *scriptedRouter) ObserveSuccess(link int)       {}
func (s *scriptedRouter) ObserveFailure(link int)       {}
func (s *scriptedRouter) RejectDest(dst int) bool       { return false }
func (s *scriptedRouter) Choose(h Hop) Decision {
	if s.cycle >= s.from && h.Node == s.node && h.Want == 1 {
		return Decision{Out: 0, Blocked: s.node / s.rows, Detour: true}
	}
	return Decision{Out: h.Want, Blocked: h.Blocked}
}

// The simulator-side adaptive hook: a router that condemns one cross
// link mid-run makes the simulator detour new arrivals (Detours) and
// move already-queued heads off the condemned queue (Reroutes), in both
// modes, without breaking conservation or stopping delivery.
func TestAdaptiveHookDetoursAndReroutes(t *testing.T) {
	n := 4
	rows := 1 << uint(n)
	for _, buffers := range []int{0, 3} {
		sr := &scriptedRouter{node: 1*rows + 2, from: 50} // (row 2, col 1)
		r, err := Simulate(Params{
			N: n, Lambda: 0.15, Warmup: 0, Cycles: 500, Seed: 19,
			BufferLimit: buffers, Adaptive: sr, TTL: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Error(err)
		}
		if r.Detours == 0 {
			t.Errorf("buffers=%d: condemned cross produced no detours", buffers)
		}
		if r.Reroutes == 0 {
			t.Errorf("buffers=%d: queued heads were never re-planned", buffers)
		}
		if r.Misroutes != 0 {
			t.Errorf("buffers=%d: static-policy misroutes counted under an adaptive router: %d", buffers, r.Misroutes)
		}
		if r.Delivered == 0 {
			t.Errorf("buffers=%d: nothing delivered", buffers)
		}
	}
}
