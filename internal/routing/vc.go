package routing

import "fmt"

// Virtual-channel simulator: the finite-buffer mode. A wrapped butterfly
// with dimension-order routing and finite buffers deadlocks - the column
// wrap closes a cyclic channel dependency, the textbook motivation for
// Dally-style virtual channels. The deterministic route traverses fewer
// than 2n links, so it crosses the column-(n-1) -> column-0 "dateline" at
// most twice; three virtual channels with the rule "increment VC at the
// dateline" therefore order the channel dependency graph by (vc, column)
// and make the network deadlock-free.
//
// Each physical link has numVC private FIFOs of BufferLimit slots with
// credit-based backpressure; one packet crosses each physical link per
// cycle, arbitration scanning from the highest VC down for a movable
// head.

const numVC = 3

type vcPacket struct {
	packet
	vc int
}

// vcArrival is the link-traversal scratch record of the VC simulator:
// a packet that was granted a move this cycle, carrying the routing
// decision made at grant time so the arrival drain does not decide
// twice.
type vcArrival struct {
	pk        vcPacket
	row, col  int
	out       int
	drop, mis bool
	det       bool
	delivered bool
}

// stepVC simulates one cycle of the finite-buffer VC mode. The body is
// the per-cycle block of the original monolithic simulateVC loop,
// verbatim except that run-long state lives on s.
func (s *Sim) stepVC() error {
	p := &s.p
	n, rows, nodes := s.n, s.rows, s.nodes
	queues := s.vcQueues
	room := s.room
	res := s.res
	rng := s.rng
	cycle := s.cycle
	id := func(row, col int) int { return col*rows + row }
	qIdx := func(row, col, out, vc int) int { return (id(row, col)*2+out)*numVC + vc }
	measured := cycle >= p.Warmup
	{
		if p.Faults != nil {
			p.Faults.BeginCycle(cycle)
		}
		if p.Reliable != nil {
			p.Reliable.BeginCycle(cycle)
		}
		if p.Adaptive != nil {
			p.Adaptive.BeginCycle(cycle)
			runProbes(p.Adaptive, p.Faults)
		}
		// Injections (VC 0).
		for row := 0; row < rows; row++ {
			for col := 0; col < n; col++ {
				if p.Faults != nil && p.Faults.NodeDown(id(row, col)) {
					continue // dead nodes do not inject
				}
				if rng.Float64() >= p.Lambda {
					continue
				}
				dr, dc, derr := destFor(s.pattern, n, rows, row, col, rng)
				if derr != nil {
					return derr
				}
				pk := vcPacket{packet: packet{dstRow: dr, dstCol: dc, born: cycle, blocked: -1}}
				if dr == row && dc == col {
					// In place: no copy enters the network, so no
					// duplicate can exist and no transport state is kept.
					res.TotalInjected++
					res.TotalDelivered++
					if measured {
						res.Injected++
						res.Delivered++
					}
					continue
				}
				if p.Adaptive != nil && p.Adaptive.RejectDest(id(dr, dc)) {
					// The source's disseminated link-state map condemns the
					// destination: refuse before any transport state exists,
					// so no retries burn budget.
					res.TotalInjected++
					res.Unreachable++
					res.UnreachableDetected++
					if measured {
						res.Injected++
					}
					continue
				}
				if p.Faults != nil && p.Faults.NodeDown(id(dr, dc)) {
					if p.Reliable != nil {
						// Sources cannot see dead destinations: register
						// and let the retries burn budget into the void.
						p.Reliable.Register(cycle, id(row, col), id(dr, dc))
					}
					res.TotalInjected++
					res.Unreachable++
					res.UnreachableDead++
					if measured {
						res.Injected++
					}
					continue
				}
				if destCut(p.Faults, n, rows, dr, dc) {
					// Every link into the destination is dead: refuse the
					// packet here rather than let it wander to TTL death
					// (or, with TTL 0, forever). The source cannot know, so
					// the payload is still registered and retries burn.
					if p.Reliable != nil {
						p.Reliable.Register(cycle, id(row, col), id(dr, dc))
					}
					res.TotalInjected++
					res.Unreachable++
					res.UnreachableCut++
					if measured {
						res.Injected++
					}
					continue
				}
				if p.Reliable != nil {
					// Registered before the buffer check: a refused
					// injection leaves no copy in the network but stays
					// pending, so the transport's timer recovers it.
					pk.rid = p.Reliable.Register(cycle, id(row, col), id(dr, dc))
				}
				out, drop, mis, det := route(&pk.packet, row, col, rows, p)
				if drop {
					res.TotalInjected++
					res.Dropped++
					if measured {
						res.Injected++
					}
					continue
				}
				q := qIdx(row, col, out, 0)
				if queues[q].len() >= p.BufferLimit {
					if measured {
						res.InjectionDrops++
					}
					continue
				}
				if mis {
					res.Misroutes++
				}
				if det {
					res.Detours++
				}
				res.TotalInjected++
				if measured {
					res.Injected++
				}
				queues[q].push(pk)
			}
		}
		// Retransmissions due this cycle re-enter at their source on VC 0,
		// after fresh traffic; a full entry queue defers to next cycle
		// without consuming a retry.
		if p.Reliable != nil {
			for _, c := range p.Reliable.Retransmissions(cycle) {
				srcRow, srcCol := c.Src%rows, c.Src/rows
				if p.Faults != nil && p.Faults.NodeDown(c.Src) {
					p.Reliable.Deferred(c.ID) // dead sources cannot resend
					continue
				}
				if p.Adaptive != nil && p.Adaptive.RejectDest(c.Dst) {
					p.Reliable.Emitted(c.ID, cycle)
					res.Retransmitted++
					res.Unreachable++
					res.UnreachableDetected++
					continue
				}
				if p.Faults != nil && p.Faults.NodeDown(c.Dst) {
					p.Reliable.Emitted(c.ID, cycle)
					res.Retransmitted++
					res.Unreachable++
					res.UnreachableDead++
					continue
				}
				if destCut(p.Faults, n, rows, c.Dst%rows, c.Dst/rows) {
					p.Reliable.Emitted(c.ID, cycle)
					res.Retransmitted++
					res.Unreachable++
					res.UnreachableCut++
					continue
				}
				pk := vcPacket{packet: packet{dstRow: c.Dst % rows, dstCol: c.Dst / rows, born: cycle, rid: c.ID, blocked: -1}}
				out, drop, mis, det := route(&pk.packet, srcRow, srcCol, rows, p)
				if drop {
					p.Reliable.Emitted(c.ID, cycle)
					res.Retransmitted++
					res.Dropped++
					continue
				}
				q := qIdx(srcRow, srcCol, out, 0)
				if queues[q].len() >= p.BufferLimit {
					p.Reliable.Deferred(c.ID)
					continue
				}
				p.Reliable.Emitted(c.ID, cycle)
				res.Retransmitted++
				if mis {
					res.Misroutes++
				}
				if det {
					res.Detours++
				}
				queues[q].push(pk)
			}
		}
		// TTL expiry and give-up write-offs: discard dead queue heads
		// before credits are computed so the freed slots are usable.
		if p.TTL > 0 || p.Reliable != nil {
			for qi := range queues {
				for queues[qi].len() > 0 {
					head := queues[qi].front()
					if p.Reliable != nil && p.Reliable.Abandoned(head.rid) {
						queues[qi].pop()
						res.GaveUp++
						continue
					}
					if p.TTL > 0 && cycle-head.born >= p.TTL {
						queues[qi].pop()
						res.Dropped++
						continue
					}
					break
				}
			}
		}
		// Re-planning: the adaptive router re-examines every queue head and
		// moves those whose link it has since condemned to the node's other
		// output - same VC, so the dateline ordering is untouched - when
		// that queue has a free slot. Runs before credits are computed so
		// `room` sees the post-move occupancy.
		if p.Adaptive != nil {
			for node := 0; node < nodes; node++ {
				row, col := node%rows, node/rows
				for out := 0; out < 2; out++ {
					for vc := 0; vc < numVC; vc++ {
						q := qIdx(row, col, out, vc)
						if queues[q].len() == 0 {
							continue
						}
						pk := queues[q].front()
						d := p.Adaptive.Choose(Hop{
							Node:    node,
							Want:    plannedOut(pk.packet, row, col),
							Dst:     pk.dstCol*rows + pk.dstRow,
							Detours: pk.detours,
							Blocked: pk.blocked,
						})
						if d.Out == out {
							continue
						}
						nq := qIdx(row, col, d.Out, vc)
						if queues[nq].len() >= p.BufferLimit {
							continue // no slot: stay and retry next cycle
						}
						pk.blocked = d.Blocked
						if d.Deliberate {
							pk.detours++
						}
						if d.Detour {
							res.Detours++
						}
						res.Reroutes++
						queues[q].pop()
						queues[nq].push(pk)
					}
				}
			}
		}
		// Link traversal: one packet per physical link per cycle, with
		// per-VC credits. Credits are computed from start-of-phase
		// occupancy (conservative) and consumed as moves are granted.
		for i := range queues {
			room[i] = p.BufferLimit - queues[i].len()
		}
		arrivals := s.vcArrivals[:0]
		//bflint:hotpath
		for row := 0; row < rows; row++ {
			for col := 0; col < n; col++ {
				nextCol := (col + 1) % n
				for out := 0; out < 2; out++ {
					nr := row
					if out == 1 {
						nr = row ^ (1 << uint(col))
					}
					if p.Faults != nil && p.Faults.LinkDown(id(row, col), out) {
						// Dead link: nothing moves, no credits consumed.
						occupied := false
						for vc := 0; vc < numVC; vc++ {
							if queues[qIdx(row, col, out, vc)].len() > 0 {
								occupied = true
								break
							}
						}
						if occupied {
							if measured {
								res.Stalls++
							}
							if p.Adaptive != nil {
								p.Adaptive.ObserveFailure(id(row, col)*2 + out)
							}
						}
						continue
					}
					moved := false
					for vc := numVC - 1; vc >= 0 && !moved; vc-- {
						q := qIdx(row, col, out, vc)
						if queues[q].len() == 0 {
							continue
						}
						// The routing decision for the next hop is made
						// once, here, on a scratch copy: if the credit
						// check below denies the move the decision is
						// discarded whole (Choose is a pure read, so the
						// discarded call left no state behind), and the
						// arrival loop reuses the stored flags instead of
						// deciding again.
						npk := queues[q].front()
						nvc := npk.vc
						if nextCol == 0 && nvc < numVC-1 {
							nvc++ // dateline crossing
						}
						delivered := npk.dstRow == nr && npk.dstCol == nextCol
						var nout int
						var ndrop, nmis, ndet bool
						if !delivered {
							nout, ndrop, nmis, ndet = route(&npk.packet, nr, nextCol, rows, p)
							if !ndrop {
								// Packets dropped on arrival consume no
								// credit; everything else needs a slot in
								// its chosen next queue.
								nq := qIdx(nr, nextCol, nout, nvc)
								if room[nq] <= 0 {
									if measured {
										res.Stalls++
									}
									continue
								}
								room[nq]--
							}
						}
						queues[q].pop()
						npk.hops++
						npk.vc = nvc
						if p.Adaptive != nil {
							p.Adaptive.ObserveSuccess(id(row, col)*2 + out)
						}
						if p.ModuleOf != nil && measured {
							if p.ModuleOf[id(row, col)] != p.ModuleOf[id(nr, nextCol)] {
								s.crossings++
							}
						}
						arrivals = append(arrivals, vcArrival{
							pk: npk, row: nr, col: nextCol,
							out: nout, drop: ndrop, mis: nmis, det: ndet,
							delivered: delivered,
						})
						moved = true
					}
				}
			}
		}
		for _, a := range arrivals {
			if a.delivered {
				born := a.pk.born
				if p.Reliable != nil {
					v, born0 := p.Reliable.Arrive(cycle, a.pk.rid)
					switch v {
					case DeliverDuplicate:
						res.DuplicatesDropped++
						continue
					case DeliverGaveUp:
						res.GaveUp++
						continue
					}
					// End-to-end latency runs from the payload's first
					// injection, not this copy's emission.
					born = born0
				}
				res.TotalDelivered++
				if measured {
					res.Delivered++
					if born >= p.Warmup {
						s.latSum += float64(cycle - born + 1)
						s.hopSum += float64(a.pk.hops)
						s.latCount++
					}
				}
				continue
			}
			if a.drop {
				res.Dropped++
				continue
			}
			if a.mis {
				res.Misroutes++
			}
			if a.det {
				res.Detours++
			}
			q := qIdx(a.row, a.col, a.out, a.pk.vc)
			queues[q].push(a.pk)
		}
		s.vcArrivals = arrivals
		if p.Trace != nil && measured {
			backlog := 0
			for qi := range queues {
				backlog += queues[qi].len()
			}
			if _, err := fmt.Fprintf(p.Trace, "%d,%d,%d,%d\n", //bflint:ignore hotalloc trace output is off on hot runs
				cycle-p.Warmup, res.Injected, res.Delivered, backlog); err != nil { //bflint:ignore hotalloc trace output is off on hot runs
				return err
			}
		}
	}
	return nil
}
