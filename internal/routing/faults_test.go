package routing

import (
	"bytes"
	"fmt"
	"testing"
)

// stubFaults is a hand-rolled FaultModel for targeted scenarios: explicit
// dead nodes and dead directed links, optionally repaired at a fixed
// cycle. It derives link deaths from endpoint node deaths the same way
// real implementations must.
type stubFaults struct {
	n, rows     int
	nodes       map[int]bool
	links       map[[2]int]bool
	repairCycle int // faults vanish at this cycle; 0 = permanent
	cycle       int
}

func newStubFaults(n int) *stubFaults {
	return &stubFaults{
		n: n, rows: 1 << uint(n),
		nodes: make(map[int]bool),
		links: make(map[[2]int]bool),
	}
}

func (s *stubFaults) BeginCycle(cycle int) { s.cycle = cycle }

func (s *stubFaults) active() bool {
	return s.repairCycle == 0 || s.cycle < s.repairCycle
}

func (s *stubFaults) NodeDown(node int) bool {
	return s.active() && s.nodes[node]
}

func (s *stubFaults) LinkDown(node, out int) bool {
	if !s.active() {
		return false
	}
	if s.links[[2]int{node, out}] || s.nodes[node] {
		return true
	}
	col, row := node/s.rows, node%s.rows
	nr := row
	if out == 1 {
		nr = row ^ (1 << uint(col))
	}
	return s.nodes[((col+1)%s.n)*s.rows+nr]
}

// An attached fault model with zero faults must not change the run at all:
// same seed, same Result, in both the unbounded and the finite-buffer
// simulator.
func TestZeroFaultModelMatchesBaseline(t *testing.T) {
	for _, buffers := range []int{0, 4} {
		p := Params{N: 4, Lambda: 0.15, Warmup: 60, Cycles: 400, Seed: 17, BufferLimit: buffers}
		base, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, pol := range []Policy{Misroute, DropDead} {
			q := p
			q.Faults = newStubFaults(4)
			q.Policy = pol
			wrapped, err := Simulate(q)
			if err != nil {
				t.Fatal(err)
			}
			if *base != *wrapped {
				t.Errorf("buffers=%d policy=%v: zero-fault run diverged:\n%+v\nvs\n%+v",
					buffers, pol, base, wrapped)
			}
		}
	}
}

// A transient link fault with misrouting loses nothing: every packet is
// eventually delivered (or still queued), none dropped, and the fallback
// path was actually exercised.
func TestMisrouteTransientFaultRecovers(t *testing.T) {
	n := 4
	fm := newStubFaults(n)
	fm.links[[2]int{1 << uint(n), 1}] = true // cross link of (row 0, col 1)
	fm.repairCycle = 150
	r, err := Simulate(Params{
		N: n, Lambda: 0.05, Warmup: 0, Cycles: 700, Seed: 5,
		Faults: fm, Policy: Misroute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Dropped != 0 || r.Unreachable != 0 {
		t.Errorf("transient fault lost packets: dropped %d, unreachable %d", r.Dropped, r.Unreachable)
	}
	if r.Misroutes == 0 {
		t.Error("no misroutes recorded around the dead link")
	}
	if r.Backlog > 20 {
		t.Errorf("backlog %d did not drain after the repair", r.Backlog)
	}
}

// The DropDead baseline discards packets at the dead link instead.
func TestDropDeadPolicyDrops(t *testing.T) {
	n := 4
	fm := newStubFaults(n)
	fm.links[[2]int{1 << uint(n), 1}] = true
	r, err := Simulate(Params{
		N: n, Lambda: 0.05, Warmup: 0, Cycles: 700, Seed: 5,
		Faults: fm, Policy: DropDead,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Dropped == 0 {
		t.Error("DropDead at a permanently dead link dropped nothing")
	}
	if r.Misroutes != 0 {
		t.Errorf("DropDead recorded %d misroutes", r.Misroutes)
	}
}

// Killing every cross link of column 0 makes bit 0 unfixable: packets that
// need it wander until their TTL expires. Accounting must stay exact.
func TestTTLDropsTrappedPackets(t *testing.T) {
	n := 3
	rows := 1 << uint(n)
	fm := newStubFaults(n)
	for row := 0; row < rows; row++ {
		fm.links[[2]int{row, 1}] = true // column 0 node ids are 0..rows-1
	}
	r, err := Simulate(Params{
		N: n, Lambda: 0.08, Warmup: 0, Cycles: 600, Seed: 7,
		Faults: fm, Policy: Misroute, TTL: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Dropped == 0 {
		t.Error("trapped packets were never TTL-dropped")
	}
	if r.Delivered == 0 {
		t.Error("packets not needing bit 0 should still be delivered")
	}
	// Without a TTL the same run must trap the packets in Backlog
	// instead (nothing lost either way).
	noTTL, err := Simulate(Params{
		N: n, Lambda: 0.08, Warmup: 0, Cycles: 600, Seed: 7,
		Faults: fm, Policy: Misroute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := noTTL.CheckConservation(); err != nil {
		t.Error(err)
	}
	if noTTL.Dropped != 0 {
		t.Errorf("TTL disabled but %d packets dropped", noTTL.Dropped)
	}
	if noTTL.Backlog <= r.Backlog {
		t.Errorf("TTL-free backlog %d not larger than TTL backlog %d", noTTL.Backlog, r.Backlog)
	}
}

// A dead node neither injects nor receives: traffic addressed to it is
// refused as Unreachable at injection time.
func TestNodeFaultUnreachable(t *testing.T) {
	n := 3
	fm := newStubFaults(n)
	dead := 2<<uint(n) + 3 // (row 3, col 2)
	fm.nodes[dead] = true
	r, err := Simulate(Params{
		N: n, Lambda: 0.1, Warmup: 0, Cycles: 800, Seed: 11,
		Faults: fm, Policy: Misroute, TTL: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Unreachable == 0 {
		t.Error("uniform traffic to a dead node produced no Unreachable count")
	}
	if r.Delivered == 0 {
		t.Error("the rest of the network should still deliver")
	}
}

// The finite-buffer (virtual-channel) simulator honors the same fault
// semantics: exact accounting under node faults, link faults, and TTL.
func TestVCFaultConservation(t *testing.T) {
	n := 4
	fm := newStubFaults(n)
	fm.nodes[3] = true                         // (row 3, col 0)
	fm.links[[2]int{2<<uint(n) + 5, 0}] = true // straight link of (row 5, col 2)
	r, err := Simulate(Params{
		N: n, Lambda: 0.2, Warmup: 0, Cycles: 500, Seed: 13, BufferLimit: 3,
		Faults: fm, Policy: Misroute, TTL: 80,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if r.Unreachable == 0 {
		t.Error("no unreachable packets despite a dead node")
	}
	if r.Stalls == 0 {
		t.Error("no stalls recorded at the dead link")
	}
}

// Golden determinism: a fixed seed must produce a byte-identical Result
// and byte-identical trace across repeated runs - this guards the
// simulator against accidental use of the global math/rand source, whose
// consumption between runs would make them diverge.
func TestGoldenDeterminism(t *testing.T) {
	n := 4
	rows := 1 << uint(n)
	moduleOf := make([]int, n*rows)
	for col := 0; col < n; col++ {
		for row := 0; row < rows; row++ {
			moduleOf[col*rows+row] = row / 4
		}
	}
	run := func(faulted bool, buffers int) (string, string) {
		var trace bytes.Buffer
		p := Params{
			N: n, Lambda: 0.12, Warmup: 40, Cycles: 300, Seed: 99,
			ModuleOf: moduleOf, Trace: &trace, BufferLimit: buffers,
		}
		if faulted {
			fm := newStubFaults(n)
			fm.nodes[7] = true
			fm.links[[2]int{rows + 2, 1}] = true
			fm.repairCycle = 120
			p.Faults = fm
			p.TTL = 64
		}
		r, err := Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%#v", *r), trace.String()
	}
	for _, cfg := range []struct {
		name    string
		faulted bool
		buffers int
	}{
		{"plain", false, 0},
		{"faulted", true, 0},
		{"vc", false, 2},
		{"vc-faulted", true, 2},
	} {
		r1, t1 := run(cfg.faulted, cfg.buffers)
		r2, t2 := run(cfg.faulted, cfg.buffers)
		if r1 != r2 {
			t.Errorf("%s: same seed, different Result:\n%s\nvs\n%s", cfg.name, r1, r2)
		}
		if t1 != t2 {
			t.Errorf("%s: same seed, different trace bytes", cfg.name)
		}
	}
}
