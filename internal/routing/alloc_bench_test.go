package routing

import (
	"testing"
)

// allocBenchParams is the shared configuration of the hot-loop allocation
// benchmarks and the steady-state allocation guard: a mid-size butterfly
// under moderate load, fixed seed, no optional hooks (faults, transport,
// adaptive router, trace) so the measured loop is the bare per-cycle path.
func allocBenchParams(bufferLimit, cycles int) Params {
	return Params{
		N:           8,
		Lambda:      0.10,
		Warmup:      200,
		Cycles:      cycles,
		Seed:        42,
		BufferLimit: bufferLimit,
	}
}

// BenchmarkStepAllocs measures the per-cycle cost of both simulator hot
// loops (ns/cycle and allocations). The companion TestStepAllocsZero
// pins the steady-state allocation count to zero; this benchmark records
// the speed those reuse fixes buy (see EXPERIMENTS.md).
func BenchmarkStepAllocs(b *testing.B) {
	cases := []struct {
		name        string
		bufferLimit int
	}{
		{"plain", 0},
		{"vc", 4},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			p := allocBenchParams(bc.bufferLimit, 800)
			cyclesPerRun := float64(p.Warmup + p.Cycles)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*cyclesPerRun), "ns/cycle")
		})
	}
}

// marginalAllocsPerCycle returns the allocations attributable to one
// additional measured cycle: total allocations of a (warmup+2C)-cycle run
// minus a (warmup+C)-cycle run, divided by C. Setup allocations (queues,
// rng, result) cancel in the difference, so the value isolates the
// steady-state per-cycle loop. Runs are seeded identically; the longer
// run replays the shorter one's random stream exactly, then keeps going.
func marginalAllocsPerCycle(t *testing.T, bufferLimit int) float64 {
	t.Helper()
	const c = 300
	run := func(cycles int) float64 {
		p := allocBenchParams(bufferLimit, cycles)
		return testing.AllocsPerRun(3, func() {
			if _, err := Simulate(p); err != nil {
				t.Fatal(err)
			}
		})
	}
	return (run(2*c) - run(c)) / c
}

// TestStepAllocsZero is the allocation regression guard behind the
// hotalloc analyzer: in steady state neither simulator hot loop may
// allocate. Queue buffers, the arrivals scratch, and the VC credit table
// all reach their high-water capacity during the first measured block and
// are reused from then on, so the marginal cycle cost is exactly zero.
func TestStepAllocsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation steady-state run skipped in -short mode")
	}
	for _, bc := range []struct {
		name        string
		bufferLimit int
	}{
		{"plain", 0},
		{"vc", 4},
	} {
		t.Run(bc.name, func(t *testing.T) {
			if got := marginalAllocsPerCycle(t, bc.bufferLimit); got != 0 {
				t.Errorf("steady-state hot loop allocates %g times per cycle, want 0", got)
			}
		})
	}
}
