package channel

import (
	"fmt"
	"math/rand"
	"testing"

	"bfvlsi/internal/grid"
)

func TestRouteStraightNets(t *testing.T) {
	nets := []Net{{"a", 0, 0}, {"b", 3, 3}, {"c", 7, 7}}
	p, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tracks != 0 {
		t.Errorf("tracks = %d, want 0", p.Tracks)
	}
	for i := range nets {
		if p.TrackOf[i] != -1 {
			t.Errorf("net %d got track %d", i, p.TrackOf[i])
		}
	}
}

func TestRouteCrossPair(t *testing.T) {
	// A butterfly cross pair with slotted ports: left ports at slot 1,
	// right ports at slot 2 of each node (pitch 4).
	nets := []Net{{"up", 1, 4*1 + 2}, {"down", 4*1 + 1, 2}}
	p, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tracks != 2 {
		t.Errorf("tracks = %d, want 2 (overlapping intervals)", p.Tracks)
	}
}

func TestRouteSeparatedIntervalsShareTrack(t *testing.T) {
	nets := []Net{{"a", 0, 3}, {"b", 5, 8}}
	p, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tracks != 1 {
		t.Errorf("separated intervals use %d tracks, want 1", p.Tracks)
	}
}

func TestRouteDuplicatePortsRejected(t *testing.T) {
	if _, err := Route([]Net{{"a", 1, 2}, {"b", 1, 3}}); err == nil {
		t.Error("shared left port accepted")
	}
	if _, err := Route([]Net{{"a", 1, 2}, {"b", 3, 2}}); err == nil {
		t.Error("shared right port accepted")
	}
}

func TestRouteCrossWallCollisionRejected(t *testing.T) {
	// One net's left port y equals another's right port y: their stubs
	// would run on the same grid line.
	if _, err := Route([]Net{{"a", 1, 5}, {"b", 5, 9}}); err == nil {
		t.Error("cross-wall port collision accepted")
	}
	// A straight net reusing its own y on both walls is fine.
	if _, err := Route([]Net{{"s", 4, 4}, {"a", 1, 5}}); err != nil {
		t.Errorf("straight net rejected: %v", err)
	}
}

func TestTrackCountEqualsMaxCut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		perm := rng.Perm(64)
		perm2 := rng.Perm(64)
		var nets []Net
		for i := 0; i < n; i++ {
			// even ys on the left wall, odd on the right: no collisions
			nets = append(nets, Net{fmt.Sprintf("n%d", i), 2 * perm[i], 2*perm2[i] + 1})
		}
		p, err := Route(nets)
		if err != nil {
			t.Fatal(err)
		}
		if p.Tracks != MaxCut(nets) {
			t.Fatalf("trial %d: tracks=%d maxcut=%d (left-edge should be optimal)", trial, p.Tracks, MaxCut(nets))
		}
	}
}

func TestRealizeValidGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		perm := rng.Perm(50)
		perm2 := rng.Perm(50)
		var nets []Net
		for i := 0; i < n; i++ {
			nets = append(nets, Net{fmt.Sprintf("n%d", i), 2 * perm[i], 2*perm2[i] + 1})
		}
		p, err := Route(nets)
		if err != nil {
			t.Fatal(err)
		}
		l := grid.NewLayout(grid.Thompson, 2)
		xLeft, xRight := 0, p.Tracks+1
		if err := Realize(l, nets, p, xLeft, xRight, func(tk int) int { return 1 + tk }); err != nil {
			t.Fatal(err)
		}
		if err := l.Validate(grid.ValidateOptions{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRealizeTrackOutsideChannel(t *testing.T) {
	nets := []Net{{"a", 0, 5}}
	p, err := Route(nets)
	if err != nil {
		t.Fatal(err)
	}
	l := grid.NewLayout(grid.Thompson, 2)
	if err := Realize(l, nets, p, 0, 1, func(int) int { return 5 }); err == nil {
		t.Error("out-of-channel track accepted")
	}
}

func TestButterflyCrossStepTrackBound(t *testing.T) {
	// A full butterfly cross step of span 2^b over 2^k rows with row
	// pitch p needs at most 2^{b+1} tracks.
	for k := 1; k <= 6; k++ {
		for b := 0; b < k; b++ {
			pitch := 8
			var nets []Net
			for r := 0; r < 1<<uint(k); r++ {
				w := r ^ (1 << uint(b))
				nets = append(nets, Net{fmt.Sprintf("x%d", r), r*pitch + 1, w*pitch + 2})
			}
			p, err := Route(nets)
			if err != nil {
				t.Fatal(err)
			}
			if p.Tracks > 1<<uint(b+1) {
				t.Errorf("k=%d b=%d: %d tracks > bound %d", k, b, p.Tracks, 1<<uint(b+1))
			}
		}
	}
}

func BenchmarkRoute1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(4096)
	perm2 := rng.Perm(4096)
	var nets []Net
	for i := 0; i < 1024; i++ {
		nets = append(nets, Net{"", 2 * perm[i], 2*perm2[i] + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(nets); err != nil {
			b.Fatal(err)
		}
	}
}
