// Package channel provides a simple channel router for the stage-to-stage
// wiring inside butterfly blocks. A channel is the vertical strip between
// two columns of ports; each net connects a port on the left wall to a
// port on the right wall. A net whose ports share a y coordinate runs
// straight across; every other net uses one vertical track: left stub,
// vertical run, right stub.
//
// Track assignment is the left-edge algorithm on the nets' y intervals
// with strict separation (two nets in one track may not even touch, which
// keeps their bends distinct and the realized geometry free of
// knock-knees). The number of tracks therefore equals the maximum strict
// overlap depth of the intervals, which for a butterfly cross step of
// span 2^b is at most 2^{b+1}.
package channel

import (
	"fmt"
	"sort"

	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
)

// Net is one connection through the channel.
type Net struct {
	Label  string
	LeftY  int
	RightY int
}

// Plan is a track assignment for a set of nets.
type Plan struct {
	// Tracks is the number of vertical tracks used.
	Tracks int
	// TrackOf[i] is the track of nets[i], or -1 for straight nets.
	TrackOf []int
}

// straight reports whether the net needs no vertical track.
func straight(n Net) bool { return n.LeftY == n.RightY }

// Route assigns tracks to the nets. It fails if two nets share a port y
// on the same wall, or if one net's left port y equals a different net's
// right port y: their horizontal stubs would run on the same grid line
// and could overlap. (A straight net trivially uses the same y on both
// walls; that is allowed.) Builders satisfy this by giving left-wall and
// right-wall ports distinct slot offsets inside each node box.
func Route(nets []Net) (*Plan, error) {
	left := make(map[int]string, len(nets))
	right := make(map[int]string, len(nets))
	for _, n := range nets {
		if prev, ok := left[n.LeftY]; ok {
			return nil, fmt.Errorf("channel: nets %q and %q share left port y=%d", prev, n.Label, n.LeftY)
		}
		left[n.LeftY] = n.Label
		if prev, ok := right[n.RightY]; ok {
			return nil, fmt.Errorf("channel: nets %q and %q share right port y=%d", prev, n.Label, n.RightY)
		}
		right[n.RightY] = n.Label
	}
	for _, n := range nets {
		if straight(n) {
			continue
		}
		if other, ok := right[n.LeftY]; ok {
			return nil, fmt.Errorf("channel: net %q left port y=%d collides with right port of %q", n.Label, n.LeftY, other)
		}
		if other, ok := left[n.RightY]; ok {
			return nil, fmt.Errorf("channel: net %q right port y=%d collides with left port of %q", n.Label, n.RightY, other)
		}
	}
	plan := &Plan{TrackOf: make([]int, len(nets))}
	type iv struct {
		lo, hi, idx int
	}
	var ivs []iv
	for i, n := range nets {
		if straight(n) {
			plan.TrackOf[i] = -1
			continue
		}
		v := iv{lo: n.LeftY, hi: n.RightY, idx: i}
		if v.lo > v.hi {
			v.lo, v.hi = v.hi, v.lo
		}
		ivs = append(ivs, v)
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].lo != ivs[j].lo {
			return ivs[i].lo < ivs[j].lo
		}
		return ivs[i].hi < ivs[j].hi
	})
	// Left-edge with strict separation: reuse the track whose last hi is
	// strictly below the new lo.
	type trk struct{ hi, id int }
	var tracks []trk // sorted by hi ascending
	insert := func(t trk) {
		pos := sort.Search(len(tracks), func(i int) bool { return tracks[i].hi > t.hi })
		tracks = append(tracks, trk{})
		copy(tracks[pos+1:], tracks[pos:len(tracks)-1])
		tracks[pos] = t
	}
	next := 0
	for _, v := range ivs {
		pos := sort.Search(len(tracks), func(i int) bool { return tracks[i].hi >= v.lo })
		var t trk
		if pos == 0 {
			t = trk{id: next}
			next++
		} else {
			t = tracks[pos-1]
			tracks = append(tracks[:pos-1], tracks[pos:]...)
		}
		t.hi = v.hi
		insert(t)
		plan.TrackOf[v.idx] = t.id
	}
	plan.Tracks = next
	return plan, nil
}

// Realize emits the planned nets into the layout as Thompson-style wires
// (horizontal on layer 1, vertical on layer 2). xLeft and xRight are the
// wall x coordinates (ports sit exactly on the walls); trackX maps a
// track index to its x coordinate, which must lie strictly between the
// walls.
func Realize(l *grid.Layout, nets []Net, plan *Plan, xLeft, xRight int, trackX func(int) int) error {
	return RealizeOnLayers(l, nets, plan, xLeft, xRight, trackX, 1, 2)
}

// RealizeOnLayers is Realize with explicit horizontal and vertical wiring
// layers, for use inside multilayer layouts.
func RealizeOnLayers(l *grid.Layout, nets []Net, plan *Plan, xLeft, xRight int, trackX func(int) int, hLayer, vLayer int) error {
	if len(plan.TrackOf) != len(nets) {
		return fmt.Errorf("channel: plan is for %d nets, got %d", len(plan.TrackOf), len(nets))
	}
	for i, n := range nets {
		t := plan.TrackOf[i]
		if t < 0 {
			if err := l.AddWireOnLayers(n.Label, hLayer, vLayer,
				geom.Point{X: xLeft, Y: n.LeftY},
				geom.Point{X: xRight, Y: n.RightY}); err != nil {
				return err
			}
			continue
		}
		tx := trackX(t)
		if tx <= xLeft || tx >= xRight {
			return fmt.Errorf("channel: track %d x=%d outside channel (%d,%d)", t, tx, xLeft, xRight)
		}
		if err := l.AddWireOnLayers(n.Label, hLayer, vLayer,
			geom.Point{X: xLeft, Y: n.LeftY},
			geom.Point{X: tx, Y: n.LeftY},
			geom.Point{X: tx, Y: n.RightY},
			geom.Point{X: xRight, Y: n.RightY}); err != nil {
			return err
		}
	}
	return nil
}

// MaxCut returns the maximum strict overlap depth of the non-straight
// nets' y intervals: a lower bound on (and with left-edge, exactly) the
// track count.
func MaxCut(nets []Net) int {
	type ev struct{ y, d int }
	var evs []ev
	for _, n := range nets {
		if straight(n) {
			continue
		}
		lo, hi := n.LeftY, n.RightY
		if lo > hi {
			lo, hi = hi, lo
		}
		evs = append(evs, ev{lo, +1}, ev{hi + 1, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].y != evs[j].y {
			return evs[i].y < evs[j].y
		}
		return evs[i].d < evs[j].d // process -1 first? no: strict separation counts touching as overlap
	})
	cur, max := 0, 0
	for _, e := range evs {
		cur += e.d
		if cur > max {
			max = cur
		}
	}
	return max
}
