package reliable

import (
	"fmt"
	"math/rand"
	"sort"

	"bfvlsi/internal/detrng"
)

// Mid-run state export and restore, the transport's half of the
// checkpoint contract (see routing.SimState): State captures every
// field the call sequence mutates, in a canonical order, and
// RestoreState rebuilds a transport that continues the schedule
// payload-for-payload identically. The jitter RNG is positioned by its
// draw count (see internal/detrng), so restore re-seeds and
// fast-forwards instead of serializing generator internals.

// PendingState is one unresolved payload: its retransmission-queue
// entry keyed by payload id.
type PendingState struct {
	ID       uint64
	Src, Dst int
	Born     int
	Attempts int
}

// TimerState is one armed fire cycle and the payloads it wakes, in
// arming order (the order BeginCycle replays them).
type TimerState struct {
	Fire int
	IDs  []uint64
}

// State is a transport's complete mid-run state. Slices are canonical:
// Pending ascending by ID, Timers ascending by fire cycle, Accepted and
// Abandoned ascending, Ready and Latencies in their live order.
type State struct {
	Nodes       int
	MeasureFrom int
	NextSeq     []uint64
	Pending     []PendingState
	Timers      []TimerState
	Ready       []uint64
	Accepted    []uint64
	Abandoned   []uint64
	Registered  int
	Latencies   []int
	// Draws is the jitter RNG stream position.
	Draws uint64
}

// State exports the transport's complete state. The result shares no
// memory with the transport.
func (t *Transport) State() *State {
	st := &State{
		Nodes:       t.nodes,
		MeasureFrom: t.MeasureFrom,
		NextSeq:     append([]uint64(nil), t.nextSeq...),
		Ready:       append([]uint64(nil), t.ready...),
		Accepted:    sortedIDs(t.accepted),
		Abandoned:   sortedIDs(t.abandoned),
		Registered:  t.registered,
		Latencies:   append([]int(nil), t.latencies...),
		Draws:       t.src.Draws(),
	}
	ids := make([]uint64, 0, len(t.pending))
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	st.Pending = make([]PendingState, len(ids))
	for i, id := range ids {
		e := t.pending[id]
		st.Pending[i] = PendingState{ID: id, Src: e.src, Dst: e.dst, Born: e.born, Attempts: e.attempts}
	}
	fires := make([]int, 0, len(t.timers))
	for fire := range t.timers {
		fires = append(fires, fire)
	}
	sort.Ints(fires)
	st.Timers = make([]TimerState, len(fires))
	for i, fire := range fires {
		st.Timers[i] = TimerState{Fire: fire, IDs: append([]uint64(nil), t.timers[fire]...)}
	}
	return st
}

// sortedIDs returns a set's members in ascending order.
func sortedIDs(set map[uint64]struct{}) []uint64 {
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RestoreState overwrites the transport's per-run state with st,
// validating it first: a corrupt state cannot silently restore. The
// transport's Config must be the one the state was captured under for
// the continuation to be exact.
func (t *Transport) RestoreState(st *State) error {
	if err := t.checkState(st); err != nil {
		return err
	}
	t.nodes = st.Nodes
	t.MeasureFrom = st.MeasureFrom
	t.nextSeq = append([]uint64(nil), st.NextSeq...)
	t.pending = make(map[uint64]*entry, len(st.Pending))
	for _, p := range st.Pending {
		t.pending[p.ID] = &entry{src: p.Src, dst: p.Dst, born: p.Born, attempts: p.Attempts}
	}
	t.timers = make(map[int][]uint64, len(st.Timers))
	for _, tm := range st.Timers {
		t.timers[tm.Fire] = append([]uint64(nil), tm.IDs...)
	}
	t.ready = append(t.ready[:0], st.Ready...)
	t.accepted = make(map[uint64]struct{}, len(st.Accepted))
	for _, id := range st.Accepted {
		t.accepted[id] = struct{}{}
	}
	t.abandoned = make(map[uint64]struct{}, len(st.Abandoned))
	for _, id := range st.Abandoned {
		t.abandoned[id] = struct{}{}
	}
	t.registered = st.Registered
	t.acceptedN = len(st.Accepted)
	t.abandonedN = len(st.Abandoned)
	t.latencies = append(t.latencies[:0], st.Latencies...)
	t.src = detrng.Restore(t.cfg.Seed, st.Draws)
	t.rng = rand.New(t.src)
	return nil
}

// checkState validates a state's internal consistency: id packing,
// canonical ordering, set disjointness, and the payload conservation
// identity Registered = Pending + Accepted + Abandoned.
func (t *Transport) checkState(st *State) error {
	if st.Nodes < 0 {
		return fmt.Errorf("reliable: restore with %d nodes", st.Nodes)
	}
	if len(st.NextSeq) != st.Nodes {
		return fmt.Errorf("reliable: restore NextSeq has %d flows, want %d", len(st.NextSeq), st.Nodes)
	}
	var sum uint64
	for _, s := range st.NextSeq {
		sum += s
	}
	if sum != uint64(st.Registered) {
		return fmt.Errorf("reliable: restore Registered %d != sum of flow sequences %d", st.Registered, sum)
	}
	if st.Registered != len(st.Pending)+len(st.Accepted)+len(st.Abandoned) {
		return fmt.Errorf("reliable: restore payload conservation violated: %d registered != %d pending + %d accepted + %d abandoned",
			st.Registered, len(st.Pending), len(st.Accepted), len(st.Abandoned))
	}
	if len(st.Latencies) > len(st.Accepted) {
		return fmt.Errorf("reliable: restore has %d latency samples for %d accepted payloads", len(st.Latencies), len(st.Accepted))
	}
	resolved := make(map[uint64]bool, len(st.Accepted)+len(st.Abandoned))
	for _, ids := range [][]uint64{st.Accepted, st.Abandoned} {
		for i, id := range ids {
			if i > 0 && ids[i-1] >= id {
				return fmt.Errorf("reliable: restore id set not strictly ascending at %d", id)
			}
			if resolved[id] {
				return fmt.Errorf("reliable: restore id %d both accepted and abandoned", id)
			}
			resolved[id] = true
		}
	}
	for i := range st.Pending {
		p := &st.Pending[i]
		if i > 0 && st.Pending[i-1].ID >= p.ID {
			return fmt.Errorf("reliable: restore pending not strictly ascending at id %d", p.ID)
		}
		if resolved[p.ID] {
			return fmt.Errorf("reliable: restore id %d both pending and resolved", p.ID)
		}
		if p.Src < 0 || p.Src >= st.Nodes || p.Dst < 0 || p.Dst >= st.Nodes {
			return fmt.Errorf("reliable: restore pending id %d has endpoints (%d,%d) outside %d nodes", p.ID, p.Src, p.Dst, st.Nodes)
		}
		if p.ID != payloadID(p.Src, (p.ID&(1<<36-1))-1) || p.ID&(1<<36-1) == 0 || p.ID&(1<<36-1) > st.NextSeq[p.Src] {
			return fmt.Errorf("reliable: restore pending id %d does not pack (src %d, seq < %d)", p.ID, p.Src, st.NextSeq[p.Src])
		}
		if p.Born < 0 || p.Attempts < 1 {
			return fmt.Errorf("reliable: restore pending id %d born %d attempts %d", p.ID, p.Born, p.Attempts)
		}
	}
	for i := range st.Timers {
		tm := &st.Timers[i]
		if i > 0 && st.Timers[i-1].Fire >= tm.Fire {
			return fmt.Errorf("reliable: restore timers not strictly ascending at cycle %d", tm.Fire)
		}
		if len(tm.IDs) == 0 {
			return fmt.Errorf("reliable: restore timer at cycle %d wakes nothing", tm.Fire)
		}
	}
	return nil
}
