package reliable

import (
	"testing"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Timeout: 0},
		{Timeout: -3},
		{Timeout: 5, MaxRetries: -1},
		{Timeout: 5, Jitter: -2},
		{Timeout: 5, MaxTimeout: -1},
		{Timeout: 5, MaxTimeout: 4},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %+v accepted, want error", c)
		}
	}
	good := []Config{
		{Timeout: 1},
		{Timeout: 5, MaxRetries: 0, Jitter: 0},
		{Timeout: 5, MaxTimeout: 5},
		DefaultConfig(6),
	}
	for _, c := range good {
		if _, err := New(c); err != nil {
			t.Errorf("config %+v rejected: %v", c, err)
		}
	}
}

func TestBackoffSchedule(t *testing.T) {
	c := Config{Timeout: 10, MaxTimeout: 35}
	want := []int{10, 20, 35, 35}
	for i, w := range want {
		if got := c.RTO(i + 1); got != w {
			t.Errorf("RTO(%d) = %d, want %d", i+1, got, w)
		}
	}
	u := Config{Timeout: 3}
	if got := u.RTO(4); got != 24 {
		t.Errorf("uncapped RTO(4) = %d, want 24", got)
	}
	// Huge attempt counts must not overflow into negative delays.
	if got := u.RTO(80); got <= 0 {
		t.Errorf("RTO(80) = %d, want positive", got)
	}
}

// statsConsistent asserts the payload partition and the cross-layer
// relation between transport stats and simulator counters.
func statsConsistent(t *testing.T, r *routing.Result, s Stats) {
	t.Helper()
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
	if s.Registered != s.Accepted+s.Abandoned+s.Pending {
		t.Errorf("payload partition broken: registered %d != accepted %d + abandoned %d + pending %d",
			s.Registered, s.Accepted, s.Abandoned, s.Pending)
	}
}

// With faults dropping packets, the transport retransmits and recovers
// payloads in both simulator modes, with exact copy conservation.
func TestRetransmissionRecoversUnderFaults(t *testing.T) {
	for _, buffers := range []int{0, 4} {
		for _, pol := range []routing.Policy{routing.Misroute, routing.DropDead} {
			plan := faults.MustPlan(5)
			if _, err := plan.AddRandomLinkFaults(0.06, 11); err != nil {
				t.Fatal(err)
			}
			tr := MustNew(Config{Timeout: 25, MaxRetries: 4, Jitter: 3, Seed: 5})
			p := routing.Params{
				N: 5, Lambda: 0.1, Warmup: 100, Cycles: 500, Seed: 9,
				BufferLimit: buffers, Policy: pol,
				Faults: plan, TTL: faults.DefaultTTL(5), Reliable: tr,
			}
			r, err := routing.Simulate(p)
			if err != nil {
				t.Fatalf("buffers=%d policy=%v: %v", buffers, pol, err)
			}
			statsConsistent(t, r, tr.Stats())
			if r.Retransmitted == 0 {
				t.Errorf("buffers=%d policy=%v: no retransmissions under 6%% link faults", buffers, pol)
			}
			if r.Dropped == 0 {
				t.Errorf("buffers=%d policy=%v: no drops under faults?", buffers, pol)
			}
		}
	}
}

// Against repairable outages, retransmission must strictly improve
// goodput over the bare DropDead policy on the identical outage schedule:
// a retry that fires after the repair goes through.
func TestRetransmissionImprovesGoodput(t *testing.T) {
	mk := func(withRetx bool) *routing.Result {
		plan := faults.MustPlan(5)
		// ~200 outages of 40 cycles over 700: heavy rolling damage.
		if err := plan.AddRandomTransientLinkFaults(200, 700, 40, 23); err != nil {
			t.Fatal(err)
		}
		p := routing.Params{
			N: 5, Lambda: 0.1, Warmup: 100, Cycles: 600, Seed: 3,
			Policy: routing.DropDead, Faults: plan, TTL: faults.DefaultTTL(5),
		}
		if withRetx {
			p.Reliable = MustNew(Config{Timeout: 20, MaxRetries: 5, Jitter: 2, Seed: 7})
		}
		r, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CheckConservation(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	bare, retx := mk(false), mk(true)
	if retx.Throughput <= bare.Throughput {
		t.Errorf("retransmission did not improve goodput: %.4f with vs %.4f without",
			retx.Throughput, bare.Throughput)
	}
	if retx.Retransmitted == 0 {
		t.Error("no retransmissions under rolling outages")
	}
}

// An aggressive timeout under congestion (no faults) produces spurious
// retransmissions: duplicates must be suppressed, abandoned payloads'
// copies written off, and the identity must stay exact - in both modes.
func TestDuplicateSuppressionAndGiveUpUnderCongestion(t *testing.T) {
	for _, buffers := range []int{0, 2} {
		tr := MustNew(Config{Timeout: 4, MaxRetries: 1, Jitter: 1, Seed: 2})
		p := routing.Params{
			N: 5, Lambda: 0.35, Warmup: 0, Cycles: 400, Seed: 13,
			BufferLimit: buffers, Reliable: tr,
		}
		r, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		statsConsistent(t, r, tr.Stats())
		if r.Retransmitted == 0 {
			t.Errorf("buffers=%d: timeout 4 under saturation produced no retransmissions", buffers)
		}
		if r.DuplicatesDropped == 0 {
			t.Errorf("buffers=%d: no duplicates suppressed despite spurious retransmissions", buffers)
		}
		s := tr.Stats()
		if s.Abandoned == 0 {
			t.Errorf("buffers=%d: budget 1 under saturation abandoned no payloads", buffers)
		}
		if buffers == 0 && r.GaveUp == 0 {
			t.Errorf("no gave-up write-offs despite %d abandoned payloads", s.Abandoned)
		}
		// Goodput counts payloads once: accepted payloads can never
		// exceed registered ones.
		if s.Accepted > s.Registered {
			t.Errorf("accepted %d > registered %d", s.Accepted, s.Registered)
		}
	}
}

// Payloads addressed to a dead node burn their retry budget against the
// void: every copy counts Unreachable and the payload is abandoned
// without any physical copy to write off.
func TestUnreachableRetriesBurnBudget(t *testing.T) {
	plan := faults.MustPlan(3)
	if err := plan.AddNodeFault(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	tr := MustNew(Config{Timeout: 6, MaxRetries: 2, Seed: 4})
	p := routing.Params{
		N: 3, Lambda: 0.4, Warmup: 0, Cycles: 300, Seed: 17,
		Faults: plan, TTL: faults.DefaultTTL(3), Reliable: tr,
	}
	r, err := routing.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	statsConsistent(t, r, tr.Stats())
	if r.Unreachable == 0 {
		t.Fatal("no unreachable injections with a dead node")
	}
	if r.Retransmitted == 0 {
		t.Error("no retransmissions toward the dead node")
	}
	if tr.Stats().Abandoned == 0 {
		t.Error("no payloads abandoned despite a permanently dead destination")
	}
}

// Same seed, same run: the transport's jitter and timer state are a pure
// function of the configuration and the simulator's call sequence.
func TestReliableDeterminism(t *testing.T) {
	run := func() (*routing.Result, Stats) {
		plan := faults.MustPlan(4)
		if _, err := plan.AddRandomLinkFaults(0.05, 31); err != nil {
			t.Fatal(err)
		}
		if err := plan.AddRandomTransientLinkFaults(10, 300, 40, 32); err != nil {
			t.Fatal(err)
		}
		tr := MustNew(Config{Timeout: 15, MaxRetries: 3, Jitter: 4, Seed: 6})
		p := routing.Params{
			N: 4, Lambda: 0.12, Warmup: 50, Cycles: 400, Seed: 19,
			Faults: plan, TTL: faults.DefaultTTL(4), Reliable: tr,
		}
		r, err := routing.Simulate(p)
		if err != nil {
			t.Fatal(err)
		}
		return r, tr.Stats()
	}
	r1, s1 := run()
	r2, s2 := run()
	if *r1 != *r2 {
		t.Errorf("results diverged across identical runs:\n%+v\nvs\n%+v", r1, r2)
	}
	if s1 != s2 {
		t.Errorf("stats diverged across identical runs:\n%+v\nvs\n%+v", s1, s2)
	}
}

// A transport reused for a second run resets automatically and replays
// identically.
func TestTransportReuseResets(t *testing.T) {
	tr := MustNew(Config{Timeout: 5, MaxRetries: 2, Jitter: 2, Seed: 8})
	p := routing.Params{N: 4, Lambda: 0.3, Warmup: 0, Cycles: 200, Seed: 23, Reliable: tr}
	r1, err := routing.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	s1 := tr.Stats()
	r2, err := routing.Simulate(p)
	if err != nil {
		t.Fatal(err)
	}
	if *r1 != *r2 || s1 != tr.Stats() {
		t.Errorf("reused transport diverged: %+v vs %+v", r1, r2)
	}
}

func TestLatencyPercentile(t *testing.T) {
	tr := MustNew(Config{Timeout: 1000, Seed: 1})
	tr.Reset(4)
	for i, lat := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		id := tr.Register(0, 0, 1)
		_ = i
		if v, _ := tr.Arrive(lat-1, id); v != routing.DeliverAccept {
			t.Fatalf("verdict %v, want accept", v)
		}
	}
	if got := tr.LatencyPercentile(0.5); got != 5 {
		t.Errorf("p50 = %v, want 5", got)
	}
	if got := tr.LatencyPercentile(1); got != 10 {
		t.Errorf("p100 = %v, want 10", got)
	}
	if got := tr.LatencyPercentile(0); got != 1 {
		t.Errorf("p0 = %v, want 1", got)
	}
	empty := MustNew(Config{Timeout: 10})
	if got := empty.LatencyPercentile(0.99); got != 0 {
		t.Errorf("empty p99 = %v, want 0", got)
	}
}
