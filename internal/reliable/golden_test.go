package reliable

import (
	"bytes"
	"testing"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

// The acceptance golden: with a zero-fault plan and a timeout no payload
// ever reaches, a Retransmit run is packet-for-packet identical to the
// fault-free baseline - same Result, same per-cycle trace - in both the
// unbounded-FIFO and the virtual-channel simulator.
func TestGoldenZeroFaultIdentity(t *testing.T) {
	for _, buffers := range []int{0, 8} {
		base := routing.Params{
			N: 6, Lambda: 0.1, Warmup: 100, Cycles: 400, Seed: 7,
			BufferLimit: buffers,
		}
		var baseTrace bytes.Buffer
		pb := base
		pb.Trace = &baseTrace
		baseline, err := routing.Simulate(pb)
		if err != nil {
			t.Fatal(err)
		}
		if baseline.InjectionDrops != 0 {
			t.Fatalf("buffers=%d: baseline refused %d injections; pick gentler params",
				buffers, baseline.InjectionDrops)
		}

		tr := MustNew(Config{Timeout: 10 * (base.Warmup + base.Cycles), MaxRetries: 3, Jitter: 5, Seed: 99})
		var retxTrace bytes.Buffer
		pr := base
		pr.Trace = &retxTrace
		pr.Faults = faults.MustPlan(6) // empty plan: the zero-fault schedule
		pr.Reliable = tr
		got, err := routing.Simulate(pr)
		if err != nil {
			t.Fatal(err)
		}

		if *got != *baseline {
			t.Errorf("buffers=%d: reliable zero-fault run diverged from baseline:\n%+v\nvs\n%+v",
				buffers, got, baseline)
		}
		if !bytes.Equal(baseTrace.Bytes(), retxTrace.Bytes()) {
			t.Errorf("buffers=%d: per-cycle traces differ under zero faults", buffers)
		}
		if got.Retransmitted != 0 || got.DuplicatesDropped != 0 || got.GaveUp != 0 {
			t.Errorf("buffers=%d: spurious transport activity: retx=%d dup=%d gaveup=%d",
				buffers, got.Retransmitted, got.DuplicatesDropped, got.GaveUp)
		}
		if err := got.CheckConservation(); err != nil {
			t.Error(err)
		}
		// The observer still measured every payload.
		s := tr.Stats()
		if s.Accepted == 0 || s.Abandoned != 0 {
			t.Errorf("buffers=%d: observer stats off: %+v", buffers, s)
		}
	}
}

// A realistic finite timeout on a fault-free sub-saturation run must also
// stay silent: DefaultConfig's base timeout comfortably exceeds the
// fault-free latency tail at moderate load.
func TestDefaultConfigQuietWhenHealthy(t *testing.T) {
	tr := MustNew(DefaultConfig(6))
	r, err := routing.Simulate(routing.Params{
		N: 6, Lambda: 0.1, Warmup: 100, Cycles: 400, Seed: 7, Reliable: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Retransmitted != 0 {
		t.Errorf("default timeout fired %d retransmissions on a healthy run (p99 latency %v)",
			r.Retransmitted, tr.LatencyPercentile(0.99))
	}
	if err := r.CheckConservation(); err != nil {
		t.Error(err)
	}
}
