// Package reliable layers end-to-end reliable delivery over the wrapped
// butterfly routing simulators (both the unbounded-FIFO and the
// virtual-channel/backpressure mode). It is the recovery counterpart of
// internal/faults: where a fault plan quantifies the damage a packaged
// machine takes, the reliable transport quantifies what recovering from
// that damage costs in goodput, delivery latency, and retransmission
// overhead.
//
// The model is a deterministic simplification of a classic ARQ transport.
// Every source node keeps a per-flow sequence counter (flow = source
// node) and a retransmission queue of pending payloads. A payload is
// registered at first injection and a timer armed; if the timer fires
// before the destination accepts a copy, the source re-injects a fresh
// copy and re-arms the timer with exponential backoff (base timeout
// doubled per attempt, optionally capped) plus a seeded uniform jitter,
// until a retry budget is exhausted - then the source gives the payload
// up and every copy still in flight is written off when it next surfaces.
// Destinations remember every accepted payload and suppress duplicate
// copies, so delivered goodput counts each payload exactly once.
//
// A Transport implements routing.Transport. All state is a pure function
// of the configuration seed and the simulator's (deterministic) call
// sequence: same seed, same run. Reusing a transport for a second run
// resets automatically; a single transport must not be shared by
// concurrently running simulations.
package reliable

import (
	"fmt"
	"math/rand"
	"sort"

	"bfvlsi/internal/detrng"
	"bfvlsi/internal/routing"
)

// Transport implements routing.Transport.
var _ routing.Transport = (*Transport)(nil)

// Config tunes the retransmission schedule.
type Config struct {
	// Timeout is the base retransmission timeout in cycles: the delay
	// from a payload's first emission to its first retry. Must be >= 1.
	Timeout int
	// MaxRetries is the retry budget per payload: after MaxRetries
	// retransmissions the next timer firing abandons the payload.
	// 0 means never retransmit (the transport still tracks delivery,
	// suppresses duplicates, and classifies give-ups).
	MaxRetries int
	// Jitter adds a uniform seeded draw from [0, Jitter] cycles to every
	// armed timer, de-synchronizing retry bursts. 0 disables jitter.
	Jitter int
	// MaxTimeout, if positive, caps the exponential backoff. It must not
	// be smaller than Timeout.
	MaxTimeout int
	// Seed drives the jitter draws (same seed, same schedule).
	Seed int64
}

// DefaultConfig returns a schedule suited to dimension n under moderate
// load: base timeout 8n (several times the fault-free mean latency of
// ~1.5n), retry budget 3, jitter up to n cycles.
func DefaultConfig(n int) Config {
	return Config{Timeout: 8 * n, MaxRetries: 3, Jitter: n, Seed: 1}
}

// Validate reports the first nonsensical field combination.
func (c Config) Validate() error {
	if c.Timeout < 1 {
		return fmt.Errorf("reliable: timeout %d must be >= 1 cycle", c.Timeout)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("reliable: retry budget %d is negative", c.MaxRetries)
	}
	if c.Jitter < 0 {
		return fmt.Errorf("reliable: jitter %d is negative", c.Jitter)
	}
	if c.MaxTimeout < 0 {
		return fmt.Errorf("reliable: timeout cap %d is negative", c.MaxTimeout)
	}
	if c.MaxTimeout > 0 && c.MaxTimeout < c.Timeout {
		return fmt.Errorf("reliable: timeout cap %d below base timeout %d", c.MaxTimeout, c.Timeout)
	}
	return nil
}

// RTO returns the retransmission timeout armed after emitting copy
// number attempts (1 = the original injection): Timeout << (attempts-1),
// capped by MaxTimeout when set. Jitter is added on top at arming time.
func (c Config) RTO(attempts int) int {
	shift := attempts - 1
	if shift < 0 {
		shift = 0
	}
	if shift > 30 {
		shift = 30 // avoid overflow; any real cap bites far earlier
	}
	d := c.Timeout << uint(shift)
	if c.MaxTimeout > 0 && d > c.MaxTimeout {
		d = c.MaxTimeout
	}
	return d
}

// entry is one pending payload in a source's retransmission queue.
type entry struct {
	src, dst int
	born     int // first-injection cycle
	attempts int // copies emitted so far (1 = original)
}

// Transport is the end-to-end reliable transport. Attach one via
// routing.Params.Reliable; the zero value is not usable, construct with
// New.
type Transport struct {
	cfg Config

	// MeasureFrom gates the latency statistics: only payloads first
	// injected at cycle >= MeasureFrom are sampled (set it to the run's
	// warmup to match the simulator's measurement window; 0 samples
	// everything).
	MeasureFrom int

	nodes     int
	nextSeq   []uint64
	pending   map[uint64]*entry
	timers    map[int][]uint64 // fire cycle -> payload ids, arming order
	ready     []uint64         // timers fired, emission pending
	accepted  map[uint64]struct{}
	abandoned map[uint64]struct{}
	// src counts the jitter draws so a checkpoint can record the RNG
	// stream position (see internal/detrng); rng wraps it.
	src *detrng.Source
	rng *rand.Rand

	registered, acceptedN, abandonedN int
	latencies                         []int
}

// New returns a transport with the given schedule.
func New(cfg Config) (*Transport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Transport{cfg: cfg}
	t.Reset(0)
	return t, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Transport {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Config returns the transport's schedule.
func (t *Transport) Config() Config { return t.cfg }

// Reset implements routing.Transport: it clears all per-run state and
// re-seeds the jitter source, so a reused transport replays identically.
func (t *Transport) Reset(nodes int) {
	t.nodes = nodes
	t.nextSeq = make([]uint64, nodes)
	t.pending = make(map[uint64]*entry)
	t.timers = make(map[int][]uint64)
	t.ready = t.ready[:0]
	t.accepted = make(map[uint64]struct{})
	t.abandoned = make(map[uint64]struct{})
	t.src = detrng.New(t.cfg.Seed)
	t.rng = rand.New(t.src)
	t.registered, t.acceptedN, t.abandonedN = 0, 0, 0
	t.latencies = t.latencies[:0]
}

// id packs (src, seq) into a nonzero payload id: src < n*2^n <= 14*2^14 <
// 2^18 and seq is bounded by injections per flow, far below 2^36.
func payloadID(src int, seq uint64) uint64 {
	return uint64(src)<<36 | (seq + 1)
}

// BeginCycle implements routing.Transport: timers due this cycle either
// move their payload to the ready queue (budget remaining) or abandon it.
func (t *Transport) BeginCycle(cycle int) {
	due, ok := t.timers[cycle]
	if !ok {
		return
	}
	delete(t.timers, cycle)
	for _, id := range due {
		e, ok := t.pending[id]
		if !ok {
			continue // accepted since arming; stale timer
		}
		if e.attempts > t.cfg.MaxRetries {
			delete(t.pending, id)
			t.abandoned[id] = struct{}{}
			t.abandonedN++
			continue
		}
		t.ready = append(t.ready, id)
	}
}

// arm schedules the next timer for id after emitting copy number
// attempts at the given cycle.
func (t *Transport) arm(id uint64, cycle, attempts int) {
	at := cycle + t.cfg.RTO(attempts)
	if t.cfg.Jitter > 0 {
		at += t.rng.Intn(t.cfg.Jitter + 1)
	}
	t.timers[at] = append(t.timers[at], id)
}

// Register implements routing.Transport.
func (t *Transport) Register(cycle, src, dst int) uint64 {
	seq := t.nextSeq[src]
	t.nextSeq[src]++
	id := payloadID(src, seq)
	t.pending[id] = &entry{src: src, dst: dst, born: cycle, attempts: 1}
	t.registered++
	t.arm(id, cycle, 1)
	return id
}

// Retransmissions implements routing.Transport.
func (t *Transport) Retransmissions(cycle int) []routing.RetransmitCopy {
	if len(t.ready) == 0 {
		return nil
	}
	out := make([]routing.RetransmitCopy, 0, len(t.ready))
	for _, id := range t.ready {
		e, ok := t.pending[id]
		if !ok {
			continue // accepted while waiting for emission
		}
		out = append(out, routing.RetransmitCopy{ID: id, Src: e.src, Dst: e.dst})
	}
	t.ready = t.ready[:0]
	return out
}

// Emitted implements routing.Transport.
func (t *Transport) Emitted(id uint64, cycle int) {
	e, ok := t.pending[id]
	if !ok {
		return
	}
	e.attempts++
	t.arm(id, cycle, e.attempts)
}

// Deferred implements routing.Transport: the copy is re-offered next
// cycle without consuming a retry.
func (t *Transport) Deferred(id uint64) {
	if _, ok := t.pending[id]; ok {
		t.ready = append(t.ready, id)
	}
}

// Arrive implements routing.Transport.
func (t *Transport) Arrive(cycle int, id uint64) (routing.DeliveryVerdict, int) {
	if _, ok := t.accepted[id]; ok {
		return routing.DeliverDuplicate, 0
	}
	if _, ok := t.abandoned[id]; ok {
		return routing.DeliverGaveUp, 0
	}
	e, ok := t.pending[id]
	if !ok {
		// Unknown id: only reachable if the simulator hands back an id it
		// never registered; treat as a duplicate so nothing is counted
		// delivered twice.
		return routing.DeliverDuplicate, 0
	}
	delete(t.pending, id)
	t.accepted[id] = struct{}{}
	t.acceptedN++
	if e.born >= t.MeasureFrom {
		t.latencies = append(t.latencies, cycle-e.born+1)
	}
	return routing.DeliverAccept, e.born
}

// Abandoned implements routing.Transport.
func (t *Transport) Abandoned(id uint64) bool {
	_, ok := t.abandoned[id]
	return ok
}

// Stats summarizes the transport's payload-level view of a finished run.
// It complements routing.Result's copy-level counters: Registered
// payloads end Accepted, Abandoned, or Pending, exactly.
type Stats struct {
	// Registered counts payloads that entered a retransmission queue
	// (local src == dst deliveries are not registered).
	Registered int
	// Accepted counts payloads whose first copy reached the destination.
	Accepted int
	// Abandoned counts payloads given up after exhausting the budget.
	Abandoned int
	// Pending counts payloads still unresolved when the run ended.
	Pending int
	// LatencySamples, AvgLatency, and MaxLatency describe end-to-end
	// delivery latency (first injection to acceptance, inclusive) of
	// payloads first injected at cycle >= MeasureFrom.
	LatencySamples int
	AvgLatency     float64
	MaxLatency     int
}

// Stats returns the payload-level summary.
func (t *Transport) Stats() Stats {
	s := Stats{
		Registered:     t.registered,
		Accepted:       t.acceptedN,
		Abandoned:      t.abandonedN,
		Pending:        len(t.pending),
		LatencySamples: len(t.latencies),
	}
	sum := 0
	for _, l := range t.latencies {
		sum += l
		if l > s.MaxLatency {
			s.MaxLatency = l
		}
	}
	if len(t.latencies) > 0 {
		s.AvgLatency = float64(sum) / float64(len(t.latencies))
	}
	return s
}

// LatencyPercentile returns the q-quantile (0 <= q <= 1, nearest-rank) of
// the recorded end-to-end delivery latencies, or 0 with no samples.
func (t *Transport) LatencyPercentile(q float64) float64 {
	if len(t.latencies) == 0 {
		return 0
	}
	sorted := append([]int(nil), t.latencies...)
	sort.Ints(sorted)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx])
}
