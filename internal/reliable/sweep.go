package reliable

import (
	"fmt"
	"runtime"
	"sync"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

// Mode is one recovery strategy under comparison: a dead-link routing
// policy, optionally combined with the end-to-end retransmission layer.
type Mode struct {
	Name       string
	Policy     routing.Policy
	Retransmit bool
}

// StandardModes returns the four strategies the degradation sweeps
// compare: the two PR-1 policies alone and each combined with
// retransmission.
func StandardModes() []Mode {
	return []Mode{
		{Name: "drop", Policy: routing.DropDead},
		{Name: "misroute", Policy: routing.Misroute},
		{Name: "drop+retx", Policy: routing.DropDead, Retransmit: true},
		{Name: "misroute+retx", Policy: routing.Misroute, Retransmit: true},
	}
}

// Point is one (mode, fault rate) cell of a reliability sweep.
type Point struct {
	Mode string
	// Rate is the fault level: under Sweep the independent per-link
	// probability of a permanent fault, under OutageSweep the expected
	// steady-state fraction of links in outage.
	Rate float64
	// DeadLinks is the number of directed links killed permanently
	// (Sweep); Outages the number of transient outages scheduled
	// (OutageSweep).
	DeadLinks int
	Outages   int
	Result    *routing.Result
	// Stats is the transport's payload-level summary. Modes without
	// retransmission attach a pure observer transport (timers beyond the
	// run horizon), so payload accounting and latency percentiles are
	// available for every mode without perturbing the simulation.
	Stats Stats
	// Goodput is accepted payloads per node per measured cycle (equal to
	// Result.Throughput: duplicates are never counted delivered).
	Goodput float64
	// P99Latency is the 0.99-quantile end-to-end delivery latency over
	// payloads first injected inside the measurement window.
	P99Latency float64
	// Overhead is Retransmitted / TotalInjected: the fraction of extra
	// copies the reliability layer pushed into the network.
	Overhead float64
	Err      error
}

// observer returns a transport configuration whose first timer fires
// after the run ends: it never retransmits, never abandons, and leaves
// the simulation packet-for-packet identical to running without a
// transport - but still measures payload delivery and latency.
func observer(base routing.Params) Config {
	return Config{Timeout: base.Warmup + base.Cycles + 1, MaxRetries: 0, Seed: 1}
}

// prepare builds the per-cell transport and finalizes params shared by
// both sweep kinds.
func prepare(base routing.Params, cfg Config, m Mode, cellSeed int64) (routing.Params, *Transport, error) {
	p := base
	p.Policy = m.Policy
	c := cfg
	if !m.Retransmit {
		c = observer(base)
	}
	c.Seed = cfg.Seed + cellSeed
	tr, err := New(c)
	if err != nil {
		return p, nil, err
	}
	tr.MeasureFrom = base.Warmup
	p.Reliable = tr
	return p, tr, nil
}

// finish fills the derived curve values and asserts conservation,
// wrapping any inconsistency with the cell's coordinates so a sweep
// fails loudly instead of emitting a bad row.
func (pt *Point) finish(tr *Transport) {
	if pt.Err != nil {
		pt.Err = fmt.Errorf("reliable: mode %s rate %g: %w", pt.Mode, pt.Rate, pt.Err)
		return
	}
	if err := pt.Result.CheckConservation(); err != nil {
		pt.Err = fmt.Errorf("reliable: mode %s rate %g: %w", pt.Mode, pt.Rate, err)
		return
	}
	pt.Stats = tr.Stats()
	pt.Goodput = pt.Result.Throughput
	pt.P99Latency = tr.LatencyPercentile(0.99)
	if pt.Result.TotalInjected > 0 {
		pt.Overhead = float64(pt.Result.Retransmitted) / float64(pt.Result.TotalInjected)
	}
}

// Sweep measures goodput, p99 delivery latency, and retransmission
// overhead as the rate of permanent link faults grows, for every mode at
// every rate. Fault plans are seeded exactly as in faults.Sweep (derived
// from base.Seed and the rate index), so all modes of a rate see the
// same dead links and the cells line up with a plain faults.Sweep for
// comparison. Transports derive per-cell seeds from cfg.Seed. base.TTL
// of 0 is replaced by faults.DefaultTTL on faulted cells. base.Faults
// and base.Reliable must be nil. Cells run concurrently; results are
// mode-major in input order.
//
// Note the physics this sweep exposes: with deterministic routing a
// retransmitted copy retraces its predecessor's path, so against
// permanent holes end-to-end retries recover little beyond what the
// misroute policy already saves - the retransmission columns mostly
// measure wasted overhead. Recovery earns its keep against repairable
// outages; that is OutageSweep.
func Sweep(base routing.Params, cfg Config, modes []Mode, rates []float64) []Point {
	return sweep(base, cfg, modes, rates, 0)
}

// OutageSweep is the transient-fault reliability sweep: at each rate it
// schedules random link outages of the given duration (cycles) so that
// the expected steady-state fraction of links down is the rate, and
// measures every recovery mode on the same outage schedule. A retry that
// fires after the outage repairs goes through - this is the regime where
// the retransmission layer genuinely recovers goodput rather than just
// paying overhead. outage must be >= 1.
func OutageSweep(base routing.Params, cfg Config, modes []Mode, rates []float64, outage int) []Point {
	return sweep(base, cfg, modes, rates, outage)
}

func sweep(base routing.Params, cfg Config, modes []Mode, rates []float64, outage int) []Point {
	out := make([]Point, len(modes)*len(rates))
	run := func(idx int) {
		mi, ri := idx/len(rates), idx%len(rates)
		pt := &out[idx]
		pt.Mode = modes[mi].Name
		pt.Rate = rates[ri]
		if base.Faults != nil || base.Reliable != nil {
			pt.Err = fmt.Errorf("reliable: base params must not carry Faults or Reliable")
			return
		}
		if outage < 0 {
			pt.Err = fmt.Errorf("reliable: negative outage duration %d", outage)
			return
		}
		plan, err := faults.NewPlan(base.N)
		if err != nil {
			pt.Err = err
			pt.finish(nil)
			return
		}
		faultSeed := base.Seed + int64(ri)*1_000_003 + 1
		if outage > 0 {
			// count outages of the given length so that the expected
			// number of links concurrently down is rate * links.
			horizon := base.Warmup + base.Cycles
			links := 2 * plan.Nodes()
			count := int(rates[ri]*float64(links)*float64(horizon)/float64(outage) + 0.5)
			if count > 0 {
				if err := plan.AddRandomTransientLinkFaults(count, horizon, outage, faultSeed); err != nil {
					pt.Err = err
					pt.finish(nil)
					return
				}
			}
			pt.Outages = count
		} else {
			dead, err := plan.AddRandomLinkFaults(rates[ri], faultSeed)
			if err != nil {
				pt.Err = err
				pt.finish(nil)
				return
			}
			pt.DeadLinks = dead
		}
		p, tr, err := prepare(base, cfg, modes[mi], int64(idx)*7_000_003+13)
		if err != nil {
			pt.Err = err
			pt.finish(nil)
			return
		}
		p.Faults = plan
		if p.TTL == 0 && plan.NumEvents() > 0 {
			p.TTL = faults.DefaultTTL(base.N)
		}
		pt.Result, pt.Err = routing.Simulate(p)
		pt.finish(tr)
	}
	forEach(len(out), run)
	return out
}

// SchemePoint is one (mode, scheme, kill count) cell of a module-kill
// reliability sweep.
type SchemePoint struct {
	Mode   string
	Scheme string
	// Killed is the number of modules failed; DeadNodes the resulting
	// dead node count and DeadNodeFrac its fraction of the network.
	Killed       int
	DeadNodes    int
	DeadNodeFrac float64
	Result       *routing.Result
	Stats        Stats
	Goodput      float64
	P99Latency   float64
	Overhead     float64
	Err          error
}

// ModuleKillSweep is the packaging comparison with recovery in the loop:
// it fails k whole modules under each scheme (row, nucleus, naive - see
// faults.StandardSchemes) and measures every recovery mode on the same
// wreckage. The module draw is seeded per kill count exactly as in
// faults.ModuleKillSweep, shared across schemes and modes. Results are
// ordered mode-major, then scheme, then kill count.
func ModuleKillSweep(base routing.Params, cfg Config, modes []Mode, schemes []faults.Scheme, kills []int) []SchemePoint {
	out := make([]SchemePoint, len(modes)*len(schemes)*len(kills))
	run := func(idx int) {
		mi := idx / (len(schemes) * len(kills))
		si := idx / len(kills) % len(schemes)
		ki := idx % len(kills)
		sc := schemes[si]
		pt := &out[idx]
		pt.Mode = modes[mi].Name
		pt.Scheme = sc.Name
		pt.Killed = kills[ki]
		fail := func(err error) {
			pt.Err = fmt.Errorf("reliable: mode %s scheme %s kills %d: %w",
				pt.Mode, pt.Scheme, pt.Killed, err)
		}
		if base.Faults != nil || base.Reliable != nil {
			fail(fmt.Errorf("base params must not carry Faults or Reliable"))
			return
		}
		if pt.Killed < 0 || pt.Killed > sc.NumModules {
			fail(fmt.Errorf("cannot kill %d of %d modules", pt.Killed, sc.NumModules))
			return
		}
		plan, err := faults.NewPlan(base.N)
		if err != nil {
			fail(err)
			return
		}
		for _, m := range faults.PickModules(sc.NumModules, pt.Killed, base.Seed+int64(ki)*2_000_003+7) {
			killed, err := plan.AddModuleFault(sc.ModuleOf, m, 0, 0)
			if err != nil {
				fail(err)
				return
			}
			pt.DeadNodes += killed
		}
		pt.DeadNodeFrac = float64(pt.DeadNodes) / float64(plan.Nodes())
		p, tr, err := prepare(base, cfg, modes[mi], int64(idx)*9_000_011+17)
		if err != nil {
			fail(err)
			return
		}
		p.Faults = plan
		if p.TTL == 0 && pt.Killed > 0 {
			p.TTL = faults.DefaultTTL(base.N)
		}
		pt.Result, err = routing.Simulate(p)
		if err != nil {
			fail(err)
			return
		}
		if err := pt.Result.CheckConservation(); err != nil {
			fail(err)
			return
		}
		pt.Stats = tr.Stats()
		pt.Goodput = pt.Result.Throughput
		pt.P99Latency = tr.LatencyPercentile(0.99)
		if pt.Result.TotalInjected > 0 {
			pt.Overhead = float64(pt.Result.Retransmitted) / float64(pt.Result.TotalInjected)
		}
	}
	forEach(len(out), run)
	return out
}

// forEach runs f(0..n-1) on a capped worker pool.
func forEach(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
