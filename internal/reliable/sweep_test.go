package reliable

import (
	"fmt"
	"strconv"
	"testing"

	"bfvlsi/internal/faults"
	"bfvlsi/internal/routing"
)

// Observer modes (no retransmission) must reproduce faults.Sweep exactly:
// same plans, same runs, new counters zero - the reliability sweep is a
// strict superset of the PR-1 degradation sweep.
func TestSweepObserverMatchesFaultsSweep(t *testing.T) {
	base := routing.Params{N: 4, Lambda: 0.1, Warmup: 50, Cycles: 300, Seed: 21}
	rates := []float64{0, 0.08}
	plain := faults.Sweep(base, rates)
	rel := Sweep(base, DefaultConfig(4), []Mode{{Name: "drop", Policy: routing.DropDead}, {Name: "misroute", Policy: routing.Misroute}}, rates)
	if len(rel) != 4 {
		t.Fatalf("got %d points, want 4", len(rel))
	}
	for _, pt := range rel {
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
	}
	// plain ran with the zero-value policy (Misroute); compare against
	// the misroute observer row.
	for i, pt := range rel[2:] {
		want := plain[i]
		if pt.DeadLinks != want.DeadLinks {
			t.Errorf("rate %v: dead links %d vs %d", pt.Rate, pt.DeadLinks, want.DeadLinks)
		}
		if *pt.Result != *want.Result {
			t.Errorf("rate %v: observer diverged from faults.Sweep:\n%+v\nvs\n%+v",
				pt.Rate, pt.Result, want.Result)
		}
		if pt.Goodput != want.Result.Throughput {
			t.Errorf("rate %v: goodput %v != throughput %v", pt.Rate, pt.Goodput, want.Result.Throughput)
		}
		if pt.P99Latency == 0 {
			t.Errorf("rate %v: observer recorded no latency percentile", pt.Rate)
		}
	}
}

// The full four-mode permanent-fault sweep: every cell conserves copies,
// zero-rate retx cells stay silent, and on faulted cells the retransmit
// modes pay a visible overhead. (Goodput recovery is NOT asserted here:
// with deterministic routing a retry retraces its predecessor's path
// into the same permanent hole - see TestOutageSweepRecovery for the
// regime where retransmission actually wins.)
func TestSweepModes(t *testing.T) {
	base := routing.Params{N: 5, Lambda: 0.1, Warmup: 80, Cycles: 400, Seed: 5}
	rates := []float64{0, 0.05}
	// Timeout 25 clears the fault-free latency tail (rate-0 cells stay
	// silent) while the 2-retry budget exhausts ~175 cycles after
	// injection, well inside the 480-cycle horizon, so abandonment is
	// observable.
	cfg := Config{Timeout: 25, MaxRetries: 2, Jitter: 3, Seed: 1}
	pts := Sweep(base, cfg, StandardModes(), rates)
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	byCell := map[string]Point{}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		byCell[fmt.Sprintf("%s@%g", pt.Mode, pt.Rate)] = pt
	}
	for _, mode := range []string{"drop+retx", "misroute+retx"} {
		clean := byCell[mode+"@0"]
		if clean.Result.Retransmitted != 0 {
			t.Errorf("%s at rate 0 retransmitted %d copies", mode, clean.Result.Retransmitted)
		}
		if clean.Outages != 0 || clean.DeadLinks != 0 {
			t.Errorf("%s at rate 0 reported damage: %d dead links, %d outages",
				mode, clean.DeadLinks, clean.Outages)
		}
	}
	if dr := byCell["drop+retx@0.05"]; dr.Overhead == 0 {
		t.Error("drop+retx at 5% permanent faults reported zero retransmission overhead")
	} else if dr.Stats.Abandoned == 0 {
		t.Error("drop+retx at 5% permanent faults abandoned no payloads")
	}
	if d, dr := byCell["drop@0.05"], byCell["drop+retx@0.05"]; dr.DeadLinks != d.DeadLinks {
		t.Errorf("modes saw different wreckage at the same rate: %d vs %d dead links",
			dr.DeadLinks, d.DeadLinks)
	}
}

// Against repairable outages the retransmit mode must beat its bare
// policy on goodput: the retry fires after the repair and gets through.
func TestOutageSweepRecovery(t *testing.T) {
	base := routing.Params{N: 5, Lambda: 0.1, Warmup: 80, Cycles: 500, Seed: 5}
	modes := []Mode{
		{Name: "drop", Policy: routing.DropDead},
		{Name: "drop+retx", Policy: routing.DropDead, Retransmit: true},
	}
	cfg := Config{Timeout: 20, MaxRetries: 5, Jitter: 3, Seed: 1}
	pts := OutageSweep(base, cfg, modes, []float64{0.08}, 40)
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		if pt.Outages == 0 {
			t.Fatalf("%s: no outages scheduled at rate %g", pt.Mode, pt.Rate)
		}
		if pt.DeadLinks != 0 {
			t.Errorf("%s: outage sweep reported %d permanent dead links", pt.Mode, pt.DeadLinks)
		}
	}
	bare, retx := pts[0], pts[1]
	if retx.Goodput <= bare.Goodput {
		t.Errorf("drop+retx goodput %.4f not above drop %.4f under repairable outages",
			retx.Goodput, bare.Goodput)
	}
	if retx.Overhead == 0 {
		t.Error("drop+retx recovered without any retransmissions?")
	}
	// OutageSweep rejects a negative duration loudly.
	bad := OutageSweep(base, cfg, modes[:1], []float64{0.05}, -1)
	if bad[0].Err == nil {
		t.Error("negative outage duration accepted")
	}
}

// The module-kill comparison runs all modes x schemes x kills with exact
// conservation and the shared module draw.
func TestModuleKillSweepReliability(t *testing.T) {
	base := routing.Params{N: 6, Lambda: 0.08, Warmup: 60, Cycles: 250, Seed: 2}
	schemes, err := faults.StandardSchemes(6)
	if err != nil {
		t.Fatal(err)
	}
	modes := []Mode{
		{Name: "drop", Policy: routing.DropDead},
		{Name: "drop+retx", Policy: routing.DropDead, Retransmit: true},
	}
	kills := []int{0, 2}
	pts := ModuleKillSweep(base, Config{Timeout: 40, MaxRetries: 3, Jitter: 4, Seed: 3}, modes, schemes, kills)
	if want := len(modes) * len(schemes) * len(kills); len(pts) != want {
		t.Fatalf("got %d points, want %d", len(pts), want)
	}
	deadBy := map[string]int{}
	for _, pt := range pts {
		if pt.Err != nil {
			t.Fatal(pt.Err)
		}
		if pt.Killed == 0 && pt.DeadNodes != 0 {
			t.Errorf("%s/%s: 0 kills but %d dead nodes", pt.Mode, pt.Scheme, pt.DeadNodes)
		}
		// The module draw is shared across modes: dead node counts per
		// (scheme, kills) must agree.
		key := pt.Scheme + "#" + strconv.Itoa(pt.Killed)
		if prev, ok := deadBy[key]; ok && prev != pt.DeadNodes {
			t.Errorf("%s: dead nodes differ across modes: %d vs %d", key, prev, pt.DeadNodes)
		}
		deadBy[key] = pt.DeadNodes
	}
}

// Sweeps refuse base params that already carry a fault model or
// transport instead of silently double-attaching.
func TestSweepRejectsPreloadedBase(t *testing.T) {
	base := routing.Params{N: 4, Lambda: 0.1, Cycles: 100, Seed: 1}
	base.Reliable = MustNew(DefaultConfig(4))
	pts := Sweep(base, DefaultConfig(4), StandardModes()[:1], []float64{0})
	if pts[0].Err == nil {
		t.Error("sweep accepted base params with a preloaded transport")
	}
	base2 := routing.Params{N: 4, Lambda: 0.1, Cycles: 100, Seed: 1, Faults: faults.MustPlan(4)}
	pts2 := ModuleKillSweep(base2, DefaultConfig(4), StandardModes()[:1], nil, nil)
	_ = pts2 // empty cells: nothing to run, but the guard lives per cell
	schemes, err := faults.StandardSchemes(4)
	if err != nil {
		t.Fatal(err)
	}
	pts3 := ModuleKillSweep(base2, DefaultConfig(4), StandardModes()[:1], schemes, []int{0})
	if pts3[0].Err == nil {
		t.Error("module-kill sweep accepted base params with a preloaded fault plan")
	}
}
