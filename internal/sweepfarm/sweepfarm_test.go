package sweepfarm

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/wire"
)

// testSpec builds a farm over a VC stack with reliable transport:
// every fault rate × seed combination plus a fault-free control point.
func testSpec() Spec {
	base := snapshot.Spec{
		Route: wire.RouteSpec{
			N: 3, Lambda: 0.30, Warmup: 20, Cycles: 60, Seed: 11,
			BufferLimit: 4, TTL: 48,
		},
		Reliable: &snapshot.ReliableSpec{Timeout: 12, MaxRetries: 3, Jitter: 2, Seed: 5, MeasureFrom: 20},
	}
	points := []*wire.FaultSpec{nil} // control
	for _, rate := range []float64{0.02, 0.05, 0.08} {
		for seed := int64(1); seed <= 3; seed++ {
			points = append(points, &wire.FaultSpec{N: 3, LinkRate: rate, Seed: seed})
		}
	}
	return Spec{Base: base, ForkCycle: 20, Points: points}
}

func mustRun(t *testing.T, spec Spec, o Options) *Report {
	t.Helper()
	rep, err := Run(spec, o)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

func encode(t *testing.T, rep *Report) []byte {
	t.Helper()
	b, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

// TestFarmComplete pins the basics: a farm covers every point exactly
// once, in index order, each result conserving packets, and two farms
// over the same spec encode byte-identically regardless of scheduling.
func TestFarmComplete(t *testing.T) {
	spec := testSpec()
	rep := mustRun(t, spec, Options{Workers: 4})
	if len(rep.Points) != len(spec.Points) {
		t.Fatalf("report has %d points, want %d", len(rep.Points), len(spec.Points))
	}
	for i, p := range rep.Points {
		if p.Index != i {
			t.Fatalf("point %d has index %d; report must be sorted and complete", i, p.Index)
		}
		if err := p.Result.CheckConservation(); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if rep.Points[0].Result.Dropped+rep.Points[0].Result.Unreachable != 0 {
		t.Fatalf("fault-free control point lost packets: %+v", rep.Points[0].Result)
	}
	again := mustRun(t, spec, Options{Workers: 2})
	if !bytes.Equal(encode(t, rep), encode(t, again)) {
		t.Fatalf("two farms over the same spec encoded differently")
	}
}

// TestFarmResume pins journal replay: a second run over a complete
// journal simulates nothing and reproduces the same report.
func TestFarmResume(t *testing.T) {
	spec := testSpec()
	journal := filepath.Join(t.TempDir(), "journal.bin")
	first := mustRun(t, spec, Options{Workers: 4, Journal: journal})
	if first.Resumed != 0 {
		t.Fatalf("fresh farm reports %d resumed points", first.Resumed)
	}
	second := mustRun(t, spec, Options{Workers: 4, Journal: journal})
	if second.Resumed != len(spec.Points) {
		t.Fatalf("complete journal resumed %d of %d points", second.Resumed, len(spec.Points))
	}
	if !reflect.DeepEqual(first.Points, second.Points) {
		t.Fatalf("journal replay changed the report")
	}
}

// TestFarmKillResume is the mid-run kill/resume equivalence satellite:
// hard-abort the farm at a seeded random point (in-flight results
// discarded unjournaled, like a SIGKILL), resume from the journal, and
// require the merged result set byte-identical to an uninterrupted
// farm's.
func TestFarmKillResume(t *testing.T) {
	spec := testSpec()
	want := encode(t, mustRun(t, spec, Options{Workers: 4}))

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		journal := filepath.Join(t.TempDir(), "journal.bin")
		abortAfter := 1 + rng.Intn(len(spec.Points)-1)
		_, err := Run(spec, Options{Workers: 4, Journal: journal, AbortAfter: abortAfter})
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("trial %d: abort after %d points returned %v, want ErrAborted", trial, abortAfter, err)
		}
		pts, _, err := ReadJournal(journal)
		if err != nil {
			t.Fatalf("trial %d: ReadJournal: %v", trial, err)
		}
		if len(pts) < abortAfter || len(pts) >= len(spec.Points) {
			t.Fatalf("trial %d: aborted journal holds %d points (abort after %d, total %d)",
				trial, len(pts), abortAfter, len(spec.Points))
		}
		resumed := mustRun(t, spec, Options{Workers: 4, Journal: journal})
		if resumed.Resumed != len(pts) {
			t.Fatalf("trial %d: resume replayed %d points, journal had %d", trial, resumed.Resumed, len(pts))
		}
		if got := encode(t, resumed); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: killed-and-resumed farm encoded differently from the uninterrupted one", trial)
		}
	}
}

// TestFarmTornTail pins crash tolerance in the journal itself: garbage
// after the last complete record (a torn append) is ignored on read and
// truncated away on resume.
func TestFarmTornTail(t *testing.T) {
	spec := testSpec()
	journal := filepath.Join(t.TempDir(), "journal.bin")
	_, err := Run(spec, Options{Workers: 2, Journal: journal, AbortAfter: 3})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("abort returned %v", err)
	}
	clean, validLen, err := ReadJournal(journal)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Half a record: a plausible length prefix with a truncated frame.
	if _, err := f.Write([]byte{40, 'B', 'F', 12, 1, 7}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	torn, tornValid, err := ReadJournal(journal)
	if err != nil {
		t.Fatalf("ReadJournal with torn tail: %v", err)
	}
	if !reflect.DeepEqual(clean, torn) || tornValid != validLen {
		t.Fatalf("torn tail changed the readable journal (%d vs %d points, offset %d vs %d)",
			len(clean), len(torn), validLen, tornValid)
	}
	resumed := mustRun(t, spec, Options{Workers: 2, Journal: journal})
	if len(resumed.Points) != len(spec.Points) {
		t.Fatalf("resume over a torn journal finished %d of %d points", len(resumed.Points), len(spec.Points))
	}
	// After the resume the journal must be fully readable again — the
	// torn bytes were truncated, not buried.
	final, _, err := ReadJournal(journal)
	if err != nil {
		t.Fatalf("ReadJournal after resume: %v", err)
	}
	if len(final) != len(spec.Points) {
		t.Fatalf("final journal holds %d of %d points", len(final), len(spec.Points))
	}
}

// TestFarmRejects covers spec and journal validation.
func TestFarmRejects(t *testing.T) {
	good := testSpec()

	bad := good
	bad.ForkCycle = good.Base.Route.Warmup + good.Base.Route.Cycles + 1
	if _, err := Run(bad, Options{}); err == nil {
		t.Errorf("fork cycle past the end accepted")
	}

	bad = good
	bad.Points = nil
	if _, err := Run(bad, Options{}); err == nil {
		t.Errorf("empty point list accepted")
	}

	bad = good
	bad.Points = append([]*wire.FaultSpec(nil), good.Points...)
	bad.Points[2] = &wire.FaultSpec{N: 4, LinkRate: 0.1, Seed: 1}
	if _, err := Run(bad, Options{}); err == nil {
		t.Errorf("dimension-mismatched point accepted")
	}

	// A journal from a larger sweep must not silently attach to a
	// smaller one.
	journal := filepath.Join(t.TempDir(), "journal.bin")
	mustRun(t, good, Options{Workers: 2, Journal: journal})
	small := good
	small.Points = good.Points[:2]
	if _, err := Run(small, Options{Journal: journal}); err == nil {
		t.Errorf("journal with out-of-range indices accepted")
	}
}
