package sweepfarm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// The journal is a flat file of completed sweep points, one
// length-prefixed TypeSweepPoint frame per record:
//
//	uvarint record length | "BF" | tag 12 | version 1 | point index | result frame
//
// Records are appended under a lock and fsynced one at a time, so a
// crash can lose at most the record being written — a torn tail. The
// reader stops at the first incomplete or undecodable record and
// reports the byte offset of the last good one; the writer truncates
// there before appending, so a resumed farm never buries valid records
// behind garbage.

// maxRecordLen bounds a journal record; a real record is well under a
// kilobyte.
const maxRecordLen = 1 << 20

// Point is one completed sweep point: the index into Spec.Points and
// the finished run's full counter set.
type Point struct {
	Index  int
	Result *routing.Result
}

// marshalPoint encodes a point as a TypeSweepPoint frame.
func marshalPoint(p Point) ([]byte, error) {
	rr := wire.RouteResult(*p.Result)
	rb, err := rr.MarshalBinary()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(wire.TypeSweepPoint, wire.VersionSweepPoint)
	e.Uint(p.Index)
	e.Bytes(rb)
	return e.Encoding(), nil
}

// unmarshalPoint decodes a TypeSweepPoint frame.
func unmarshalPoint(b []byte) (Point, error) {
	d := wire.NewDecoder(b, wire.TypeSweepPoint, wire.VersionSweepPoint)
	idx := d.Uint()
	rb := d.Bytes()
	if err := d.Finish(); err != nil {
		return Point{}, err
	}
	var rr wire.RouteResult
	if err := rr.UnmarshalBinary(rb); err != nil {
		return Point{}, err
	}
	res := routing.Result(rr)
	return Point{Index: idx, Result: &res}, nil
}

// appendRecord writes one length-prefixed record and syncs it to disk
// before returning, so a journaled point survives a hard kill.
func appendRecord(f *os.File, p Point) error {
	rec, err := marshalPoint(p)
	if err != nil {
		return err
	}
	buf := binary.AppendUvarint(make([]byte, 0, len(rec)+4), uint64(len(rec)))
	buf = append(buf, rec...)
	if _, err := f.Write(buf); err != nil {
		return fmt.Errorf("sweepfarm: journal write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sweepfarm: journal sync: %w", err)
	}
	return nil
}

// ReadJournal reads every complete record of a journal file. A missing
// file is an empty journal. The second return is the byte offset just
// past the last complete record: a torn or corrupt tail (the wake of a
// crash mid-append) is tolerated by stopping there, and Run truncates
// the file to that offset before appending.
func ReadJournal(path string) ([]Point, int64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var pts []Point
	var off int64
	for int(off) < len(b) {
		n, k := binary.Uvarint(b[off:])
		if k <= 0 || n > maxRecordLen {
			break
		}
		start := off + int64(k)
		if start+int64(n) > int64(len(b)) {
			break
		}
		p, err := unmarshalPoint(b[start : start+int64(n)])
		if err != nil {
			break
		}
		pts = append(pts, p)
		off = start + int64(n)
	}
	return pts, off, nil
}
