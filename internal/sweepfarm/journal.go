package sweepfarm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// The journal is a flat file of completed sweep points, one
// length-prefixed TypeSweepPoint frame per record:
//
//	uvarint record length | "BF" | tag 12 | version 1 | point index | result frame
//
// Records are appended under a lock and fsynced one at a time, so a
// crash can lose at most the record being written — a torn tail. The
// reader stops at the first incomplete or undecodable record and
// reports the byte offset of the last good one; the writer truncates
// there before appending, so a resumed farm never buries valid records
// behind garbage. The parent directory is fsynced after the file is
// created, so the journal's directory entry survives a machine crash,
// not just a process kill.

// maxRecordLen bounds a journal record; a real record is well under a
// kilobyte.
const maxRecordLen = 1 << 20

// Point is one completed sweep point: the index into Spec.Points and
// the finished run's full counter set.
type Point struct {
	Index  int
	Result *routing.Result
}

// marshalPoint encodes a point as a TypeSweepPoint frame.
func marshalPoint(p Point) ([]byte, error) {
	rr := wire.RouteResult(*p.Result)
	rb, err := rr.MarshalBinary()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(wire.TypeSweepPoint, wire.VersionSweepPoint)
	e.Uint(p.Index)
	e.Bytes(rb)
	return e.Encoding(), nil
}

// unmarshalPoint decodes a TypeSweepPoint frame.
func unmarshalPoint(b []byte) (Point, error) {
	d := wire.NewDecoder(b, wire.TypeSweepPoint, wire.VersionSweepPoint)
	idx := d.Uint()
	rb := d.Bytes()
	if err := d.Finish(); err != nil {
		return Point{}, err
	}
	var rr wire.RouteResult
	if err := rr.UnmarshalBinary(rb); err != nil {
		return Point{}, err
	}
	res := routing.Result(rr)
	return Point{Index: idx, Result: &res}, nil
}

// Journal is an open append handle on a completed-point journal file.
// One farm (or one dispatch worker lane) appends; every append is
// fsynced before it returns, so a journaled point survives a hard kill.
// Append and Close serialize on an internal mutex, so concurrent
// appenders (a hedge pair both delivering into the same lane) interleave
// whole records rather than tearing each other's frames.
type Journal struct {
	path string
	mu   sync.Mutex
	f    *os.File //bflint:guardedby mu
}

// OpenJournal opens the journal at path for appending, creating it if
// absent, and returns the points already present. A torn or corrupt
// tail (the wake of a crash mid-append) is truncated away first, so new
// records are never buried behind garbage. When the file is created the
// parent directory is fsynced too: a machine crash after OpenJournal
// cannot lose the directory entry, only (at most) the record being
// appended when it hit.
func OpenJournal(path string) (*Journal, []Point, error) {
	pts, valid, err := ReadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	_, statErr := os.Stat(path)
	created := errors.Is(statErr, os.ErrNotExist)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("sweepfarm: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	// Persist the truncation before appending: a crash between a
	// truncate and the first new append must not resurrect the torn tail.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("sweepfarm: journal sync: %w", err)
	}
	if created {
		if err := syncDir(path); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
	}
	return &Journal{path: path, f: f}, pts, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append writes one length-prefixed record and syncs it to disk before
// returning. Append is safe for concurrent use: records are written
// whole under the journal's mutex.
func (j *Journal) Append(p Point) error {
	rec, err := marshalPoint(p)
	if err != nil {
		return err
	}
	buf := binary.AppendUvarint(make([]byte, 0, len(rec)+4), uint64(len(rec)))
	buf = append(buf, rec...)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("sweepfarm: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("sweepfarm: journal sync: %w", err)
	}
	return nil
}

// Close releases the journal's file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// syncDir fsyncs the directory holding path, making a freshly created
// file's directory entry durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("sweepfarm: opening journal directory: %w", err)
	}
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return fmt.Errorf("sweepfarm: syncing journal directory: %w", err)
	}
	return d.Close()
}

// ReadJournal reads every complete record of a journal file. A missing
// file is an empty journal. The second return is the byte offset just
// past the last complete record: a torn or corrupt tail (the wake of a
// crash mid-append) is tolerated by stopping there, and OpenJournal
// truncates the file to that offset before appending.
func ReadJournal(path string) ([]Point, int64, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	var pts []Point
	var off int64
	for int(off) < len(b) {
		n, k := binary.Uvarint(b[off:])
		if k <= 0 || n > maxRecordLen || k != uvarintLen(n) {
			break
		}
		start := off + int64(k)
		if start+int64(n) > int64(len(b)) {
			break
		}
		p, err := unmarshalPoint(b[start : start+int64(n)])
		if err != nil {
			break
		}
		pts = append(pts, p)
		off = start + int64(n)
	}
	return pts, off, nil
}

// uvarintLen returns the minimal encoded length of v; ReadJournal
// rejects non-minimal length prefixes so the readable prefix of a
// journal is exactly the canonical encoding of its points.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// MergePoints merges point records from any number of sources into one
// set sorted by index. Records carry their point index, so the merge is
// order-insensitive, and it is duplicate-tolerant: the same point
// delivered twice (a hedged request, a journal replayed into two files)
// merges cleanly exactly when every copy encodes identically. Copies
// that disagree are a real fault — two workers claiming different
// results for one deterministic point — and fail the merge. The second
// return counts the duplicate records absorbed.
func MergePoints(pts []Point) ([]Point, int, error) {
	byIndex := make(map[int][]byte, len(pts))
	out := make([]Point, 0, len(pts))
	dups := 0
	for _, p := range pts {
		enc, err := marshalPoint(p)
		if err != nil {
			return nil, 0, err
		}
		if prev, ok := byIndex[p.Index]; ok {
			if !bytes.Equal(prev, enc) {
				return nil, 0, fmt.Errorf("sweepfarm: conflicting duplicate records for point %d", p.Index)
			}
			dups++
			continue
		}
		byIndex[p.Index] = enc
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out, dups, nil
}

// MergeJournals reads every journal file and merges their records with
// MergePoints: the combined point set of a farm whose work was spread
// over many per-worker journals. Missing files read as empty journals,
// and each file's own torn tail is tolerated as in ReadJournal.
func MergeJournals(paths ...string) ([]Point, int, error) {
	var all []Point
	for _, path := range paths {
		pts, _, err := ReadJournal(path)
		if err != nil {
			return nil, 0, fmt.Errorf("sweepfarm: merging %s: %w", path, err)
		}
		all = append(all, pts...)
	}
	return MergePoints(all)
}
