// Package sweepfarm runs resumable fault-scenario sweeps on top of
// internal/snapshot: one base run is warmed up to a fork cycle and
// checkpointed once, then a pool of workers forks that single immutable
// checkpoint into every fault scenario of the sweep. Completed points
// are journaled (length-prefixed wire frames, fsynced per record), so a
// farm killed at any moment — including SIGKILL mid-append — resumes by
// re-reading the journal and running only the missing points.
//
// Every point is a deterministic function of (base spec, fork cycle,
// fault scenario): the merged result set of an interrupted-and-resumed
// farm is byte-identical to an uninterrupted one (Report.Encode is the
// canonical serialization), which is what makes the journal a cache
// rather than a log of opinions.
package sweepfarm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/wire"
)

// maxPoints bounds a sweep; journal indices are validated against it.
const maxPoints = 1 << 16

// Spec describes a sweep farm: the base stack, the cycle at which the
// warmed-up checkpoint is taken, and one fault scenario per point. A
// nil point is the fault-free control (the fork strips the base plan).
type Spec struct {
	Base      snapshot.Spec
	ForkCycle int
	Points    []*wire.FaultSpec
}

// Validate checks the farm spec's invariants.
func (s *Spec) Validate() error {
	if err := s.Base.Validate(); err != nil {
		return err
	}
	total := s.Base.Route.Warmup + s.Base.Route.Cycles
	if s.ForkCycle < 0 || s.ForkCycle > total {
		return fmt.Errorf("sweepfarm: fork cycle %d outside [0,%d]", s.ForkCycle, total)
	}
	if len(s.Points) == 0 {
		return fmt.Errorf("sweepfarm: no sweep points")
	}
	if len(s.Points) > maxPoints {
		return fmt.Errorf("sweepfarm: %d sweep points exceed cap %d", len(s.Points), maxPoints)
	}
	for i, pt := range s.Points {
		if pt == nil {
			continue
		}
		if err := pt.Validate(); err != nil {
			return fmt.Errorf("sweepfarm: point %d: %w", i, err)
		}
		if pt.N != s.Base.Route.N {
			return fmt.Errorf("sweepfarm: point %d is for n=%d, base is n=%d", i, pt.N, s.Base.Route.N)
		}
	}
	return nil
}

// ErrAborted reports a farm stopped by Options.AbortAfter with points
// still missing.
var ErrAborted = errors.New("sweepfarm: aborted")

// Options configure a farm run.
type Options struct {
	// Workers is the fork worker pool size; values below 1 select the
	// default of 4.
	Workers int
	// Journal, if non-empty, is the path of the completed-point journal:
	// read (and its torn tail truncated) before the run, appended to as
	// points finish. Empty disables persistence and resumability.
	Journal string
	// AbortAfter, if positive, hard-aborts the farm once that many new
	// points have been journaled this run: no further points are handed
	// out and in-flight results are discarded unjournaled, simulating a
	// kill at an arbitrary moment. Run then returns ErrAborted. Test
	// hook; zero disables it.
	AbortAfter int
}

// Report is the merged result set of a farm: every completed point,
// sorted by index.
type Report struct {
	Points []Point
	// Resumed counts points replayed from the journal rather than
	// simulated this run.
	Resumed int
}

// Encode returns the report's canonical serialization: the journal
// encoding of the points in index order. Two farms over the same spec
// produce byte-identical encodings regardless of worker scheduling or
// how many times the farm was killed and resumed along the way.
func (r *Report) Encode() ([]byte, error) {
	var out []byte
	for _, p := range r.Points {
		rec, err := marshalPoint(p)
		if err != nil {
			return nil, err
		}
		out = appendUvarint(out, uint64(len(rec)))
		out = append(out, rec...)
	}
	return out, nil
}

// appendUvarint mirrors binary.AppendUvarint without re-importing it
// here (journal.go owns the codec imports).
func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

// Run executes the farm: loads the journal, warms up and checkpoints
// the base run if any point is missing, forks the checkpoint across the
// worker pool, and returns the merged report. With a journal path the
// run is resumable: killed farms pick up where the journal ends.
func Run(spec Spec, o Options) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	done := make(map[int]*routing.Result, len(spec.Points))
	var jf *Journal
	if o.Journal != "" {
		j, raw, err := OpenJournal(o.Journal)
		if err != nil {
			return nil, err
		}
		// Duplicate records with identical bytes merge cleanly (a journal
		// fed by hedged deliveries repeats indices); conflicting ones and
		// out-of-range indices are a spec/journal mismatch.
		pts, _, err := MergePoints(raw)
		if err != nil {
			_ = j.Close()
			return nil, err
		}
		for _, p := range pts {
			if p.Index < 0 || p.Index >= len(spec.Points) {
				_ = j.Close()
				return nil, fmt.Errorf("sweepfarm: journal point %d out of range for a %d-point spec", p.Index, len(spec.Points))
			}
			done[p.Index] = p.Result
		}
		jf = j
	}
	resumed := len(done)

	runErr := runMissing(spec, o, done, jf)
	if jf != nil {
		if cerr := jf.Close(); cerr != nil && runErr == nil {
			runErr = cerr
		}
	}
	if runErr != nil && !errors.Is(runErr, ErrAborted) {
		return nil, runErr
	}

	rep := &Report{Points: make([]Point, 0, len(done)), Resumed: resumed}
	for idx, res := range done {
		rep.Points = append(rep.Points, Point{Index: idx, Result: res})
	}
	sort.Slice(rep.Points, func(i, j int) bool { return rep.Points[i].Index < rep.Points[j].Index })
	return rep, runErr
}

// runMissing simulates every point absent from done, journaling and
// recording each as it finishes. It returns ErrAborted when the
// AbortAfter hook fired with points still missing.
func runMissing(spec Spec, o Options, done map[int]*routing.Result, jf *Journal) error {
	missing := make([]int, 0, len(spec.Points))
	for i := range spec.Points {
		if _, ok := done[i]; !ok {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	warm, err := WarmCheckpoint(spec)
	if err != nil {
		return err
	}
	workers := o.Workers
	if workers < 1 {
		workers = 4
	}

	var (
		mu        sync.Mutex
		journaled int
		aborted   bool
		firstErr  error
	)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				run, err := warm.Fork(spec.Points[i], nil)
				var res *routing.Result
				if err == nil {
					res, err = run.Finish()
				}
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil {
						firstErr = fmt.Errorf("sweepfarm: point %d: %w", i, err)
					}
				case aborted:
					// Hard-abort semantics: results that finish after the
					// abort are dropped unjournaled, like a killed process.
				default:
					if jf != nil {
						if werr := jf.Append(Point{Index: i, Result: res}); werr != nil {
							if firstErr == nil {
								firstErr = werr
							}
							mu.Unlock()
							continue
						}
					}
					done[i] = res
					journaled++
					if o.AbortAfter > 0 && journaled >= o.AbortAfter {
						aborted = true
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range missing {
		mu.Lock()
		stop := aborted || firstErr != nil
		mu.Unlock()
		if stop {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if len(done) < len(spec.Points) {
		return fmt.Errorf("%w after %d points, %d missing", ErrAborted, journaled, len(spec.Points)-len(done))
	}
	return nil
}

// WarmCheckpoint runs the base stack to the fork cycle and captures the
// checkpoint every point forks from. It is the warm-up step shared by
// the in-process farm and the distributed coordinator
// (internal/dispatch), which ships the marshaled checkpoint to workers.
func WarmCheckpoint(spec Spec) (*snapshot.Checkpoint, error) {
	run, err := snapshot.Start(spec.Base, nil)
	if err != nil {
		return nil, err
	}
	if err := run.StepTo(spec.ForkCycle); err != nil {
		return nil, err
	}
	return run.Checkpoint(), nil
}
