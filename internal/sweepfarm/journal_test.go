package sweepfarm

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// completeJournal runs a small farm to completion with a journal and
// returns the journal's raw bytes plus its decoded points.
func completeJournal(t *testing.T) ([]byte, []Point) {
	t.Helper()
	spec := testSpec()
	journal := filepath.Join(t.TempDir(), "journal.bin")
	mustRun(t, spec, Options{Workers: 4, Journal: journal})
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	pts, valid, err := ReadJournal(journal)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	if int(valid) != len(raw) {
		t.Fatalf("complete journal has %d valid of %d bytes", valid, len(raw))
	}
	if len(pts) != len(spec.Points) {
		t.Fatalf("complete journal holds %d of %d points", len(pts), len(spec.Points))
	}
	return raw, pts
}

// TestJournalRecoveryAllTruncations is the torn-tail recovery property:
// for EVERY truncation length of a complete journal, ReadJournal
// returns exactly the records that lie fully inside the prefix, stops
// at the last record boundary at or before the cut, and never errors.
// A torn tail at any byte is indistinguishable from a crash mid-append,
// so this sweeps the whole crash surface.
func TestJournalRecoveryAllTruncations(t *testing.T) {
	raw, full := completeJournal(t)

	// boundaries[i] is the byte offset just past record i, recomputed
	// from the canonical per-record encoding.
	var boundaries []int64
	var buf []byte
	for _, p := range full {
		rec, err := marshalPoint(p)
		if err != nil {
			t.Fatal(err)
		}
		buf = appendUvarint(buf, uint64(len(rec)))
		buf = append(buf, rec...)
		boundaries = append(boundaries, int64(len(buf)))
	}
	if !bytes.Equal(buf, raw) {
		t.Fatalf("re-encoded journal differs from the file")
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, "torn.bin")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		pts, valid, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("cut %d: ReadJournal: %v", cut, err)
		}
		wantN := 0
		var wantValid int64
		for i, b := range boundaries {
			if int64(cut) >= b {
				wantN = i + 1
				wantValid = b
			}
		}
		if len(pts) != wantN || valid != wantValid {
			t.Fatalf("cut %d: recovered %d points to offset %d, want %d points to offset %d",
				cut, len(pts), valid, wantN, wantValid)
		}
		if wantN > 0 && !reflect.DeepEqual(pts, full[:wantN]) {
			t.Fatalf("cut %d: recovered points differ from the journal prefix", cut)
		}
	}
}

// TestJournalTruncationResume spot-checks full farm recovery at a few
// characteristic cuts (empty file, mid-first-record, a record boundary,
// one byte short of complete): resuming over the torn journal must
// reproduce the uninterrupted report byte for byte.
func TestJournalTruncationResume(t *testing.T) {
	raw, _ := completeJournal(t)
	spec := testSpec()
	want := encode(t, mustRun(t, spec, Options{Workers: 4}))

	firstRec := 0
	for i := 1; i <= len(raw); i++ {
		dir := t.TempDir()
		p := filepath.Join(dir, "j.bin")
		if err := os.WriteFile(p, raw[:i], 0o644); err != nil {
			t.Fatal(err)
		}
		if pts, _, _ := ReadJournal(p); len(pts) == 1 {
			firstRec = i
			break
		}
	}
	cuts := []int{0, firstRec / 2, firstRec, len(raw) - 1}
	for _, cut := range cuts {
		path := filepath.Join(t.TempDir(), "torn.bin")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rep := mustRun(t, spec, Options{Workers: 4, Journal: path})
		if got := encode(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("cut %d: resumed report differs from the uninterrupted one", cut)
		}
	}
}

// TestMergePoints pins the merge contract: order-insensitive,
// duplicate-tolerant for identical copies, conflict-rejecting for
// disagreeing ones.
func TestMergePoints(t *testing.T) {
	_, full := completeJournal(t)
	if len(full) < 3 {
		t.Fatal("need at least 3 points")
	}

	shuffled := []Point{full[2], full[0], full[1], full[2], full[0]}
	merged, dups, err := MergePoints(shuffled)
	if err != nil {
		t.Fatalf("MergePoints: %v", err)
	}
	if dups != 2 {
		t.Fatalf("absorbed %d duplicates, want 2", dups)
	}
	want := sortByIndex(full[:3])
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merge is not order-insensitive")
	}

	conflicting := *full[0].Result
	conflicting.Delivered++
	_, _, err = MergePoints([]Point{full[0], {Index: full[0].Index, Result: &conflicting}})
	if err == nil {
		t.Fatal("conflicting duplicate records merged silently")
	}
}

// TestMergeJournals pins the multi-file merge: points spread over
// several per-worker journals (with overlap) merge into the complete
// set, and missing files read as empty.
func TestMergeJournals(t *testing.T) {
	_, full := completeJournal(t)
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "w0.journal"),
		filepath.Join(dir, "w1.journal"),
		filepath.Join(dir, "missing.journal"),
	}
	write := func(path string, pts []Point) {
		j, prior, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(prior) != 0 {
			t.Fatalf("fresh journal %s reports %d prior points", path, len(prior))
		}
		for _, p := range pts {
			if err := j.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}
	half := len(full) / 2
	write(paths[0], full[:half+1]) // overlaps one point with w1
	write(paths[1], full[half:])

	merged, dups, err := MergeJournals(paths...)
	if err != nil {
		t.Fatalf("MergeJournals: %v", err)
	}
	if dups != 1 {
		t.Fatalf("absorbed %d duplicates, want 1", dups)
	}
	if !reflect.DeepEqual(merged, sortByIndex(full)) {
		t.Fatalf("merged journals differ from the complete point set")
	}
}

// sortByIndex returns a copy of pts sorted by point index (journals
// record completion order; merges report index order).
func sortByIndex(pts []Point) []Point {
	out := append([]Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}
