package sweepfarm

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the journal reader: it
// must never panic, and whatever records it does recover must be
// canonical — re-encoding them reproduces exactly the valid prefix the
// reader reported, and each record round-trips through its frame codec.
func FuzzJournalDecode(f *testing.F) {
	// Seed with a real complete journal and a few mangled variants.
	spec := testSpec()
	spec.Points = spec.Points[:3]
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "seed.bin")
	if _, err := Run(spec, Options{Workers: 2, Journal: seedPath}); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(append(append([]byte(nil), seed...), 0xFF, 0x03))
	f.Add([]byte{})
	f.Add([]byte{40, 'B', 'F', 12, 1, 7})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		pts, valid, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("ReadJournal errored on arbitrary bytes: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside [0,%d]", valid, len(data))
		}
		// Canonical prefix: re-encoding the recovered records reproduces
		// data[:valid] byte for byte.
		var re []byte
		for _, p := range pts {
			rec, err := marshalPoint(p)
			if err != nil {
				t.Fatalf("recovered record does not re-encode: %v", err)
			}
			re = appendUvarint(re, uint64(len(rec)))
			re = append(re, rec...)

			// Frame round-trip: marshal∘unmarshal is the identity on
			// recovered points.
			q, err := unmarshalPoint(rec)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v", err)
			}
			if !reflect.DeepEqual(p, q) {
				t.Fatalf("record %d changed across a round-trip", p.Index)
			}
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("valid prefix is not the canonical encoding of the recovered records")
		}
	})
}
