package fftsim

import (
	"math"
	"math/rand"
	"testing"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/isn"
)

func randVec(r *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(r.Float64()*2-1, r.Float64()*2-1)
	}
	return out
}

func TestDFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for k, v := range DFT(x) {
		if math.Abs(real(v)-1) > 1e-12 || math.Abs(imag(v)) > 1e-12 {
			t.Fatalf("X[%d] = %v, want 1", k, v)
		}
	}
}

func TestDFTConstant(t *testing.T) {
	// DFT of a constant is an impulse of height R at k=0.
	x := []complex128{1, 1, 1, 1}
	X := DFT(x)
	if math.Abs(real(X[0])-4) > 1e-12 {
		t.Errorf("X[0] = %v", X[0])
	}
	for k := 1; k < 4; k++ {
		if math.Abs(real(X[k])) > 1e-12 || math.Abs(imag(X[k])) > 1e-12 {
			t.Errorf("X[%d] = %v, want 0", k, X[k])
		}
	}
}

// The headline claim: the FFT computed along any ISN's stages equals the
// reference DFT, over a sweep of group specs including unequal widths.
func TestFFTOnISNMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	specs := []bitutil.GroupSpec{
		bitutil.MustGroupSpec(1),
		bitutil.MustGroupSpec(3),
		bitutil.MustGroupSpec(1, 1),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(3, 2),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 2, 1),
		bitutil.MustGroupSpec(2, 2, 2, 2),
		bitutil.MustGroupSpec(3, 3, 3),
	}
	for _, spec := range specs {
		in := isn.New(spec)
		x := randVec(rng, in.Rows)
		res, err := OnISN(in, x)
		if err != nil {
			t.Fatalf("%v: %v", spec, err)
		}
		want := DFT(x)
		if e := MaxError(res.Output, want); e > 1e-9*float64(in.Rows) {
			t.Errorf("%v: max error %v", spec, e)
		}
	}
}

func TestCommStepsCount(t *testing.T) {
	// Appendix A.2: an l-level ISN has n_l + l - 1 steps, of which l - 1
	// are swap (forwarding) steps.
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(4),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(2, 2, 2),
		bitutil.MustGroupSpec(3, 2, 1),
	} {
		in := isn.New(spec)
		res, err := OnISN(in, make([]complex128, in.Rows))
		if err != nil {
			t.Fatal(err)
		}
		wantSteps := spec.TotalBits() + spec.Levels() - 1
		if res.CommSteps != wantSteps {
			t.Errorf("%v: %d steps, want %d", spec, res.CommSteps, wantSteps)
		}
		if res.SwapSteps != spec.Levels()-1 {
			t.Errorf("%v: %d swap steps, want %d", spec, res.SwapSteps, spec.Levels()-1)
		}
	}
}

func TestOnButterflyMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, n := range []int{1, 2, 4, 6} {
		x := randVec(rng, 1<<uint(n))
		res, err := OnButterfly(n, x)
		if err != nil {
			t.Fatal(err)
		}
		if e := MaxError(res.Output, DFT(x)); e > 1e-9*float64(len(x)) {
			t.Errorf("n=%d: max error %v", n, e)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	spec := bitutil.MustGroupSpec(2, 2)
	in := isn.New(spec)
	x := randVec(rng, in.Rows)
	fwd, err := OnISN(in, x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(in, fwd.Output)
	if err != nil {
		t.Fatal(err)
	}
	if e := MaxError(back, x); e > 1e-9 {
		t.Errorf("round trip error %v", e)
	}
}

func TestOnISNLengthMismatch(t *testing.T) {
	in := isn.New(bitutil.MustGroupSpec(2, 2))
	if _, err := OnISN(in, make([]complex128, 3)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy conservation: sum |X[k]|^2 = R * sum |x[j]|^2.
	rng := rand.New(rand.NewSource(23))
	in := isn.New(bitutil.MustGroupSpec(2, 2, 1))
	x := randVec(rng, in.Rows)
	res, err := OnISN(in, x)
	if err != nil {
		t.Fatal(err)
	}
	var ex, eX float64
	for i := range x {
		ex += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		eX += real(res.Output[i])*real(res.Output[i]) + imag(res.Output[i])*imag(res.Output[i])
	}
	if math.Abs(eX-float64(in.Rows)*ex) > 1e-9*eX {
		t.Errorf("Parseval violated: %v vs %v", eX, float64(in.Rows)*ex)
	}
}

func TestMaxErrorLengthMismatch(t *testing.T) {
	if !math.IsInf(MaxError(make([]complex128, 2), make([]complex128, 3)), 1) {
		t.Error("length mismatch should give +Inf")
	}
}

func BenchmarkFFTOnISN512(b *testing.B) {
	in := isn.New(bitutil.MustGroupSpec(3, 3, 3))
	x := randVec(rand.New(rand.NewSource(1)), in.Rows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OnISN(in, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDFT512(b *testing.B) {
	x := randVec(rand.New(rand.NewSource(1)), 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DFT(x)
	}
}
