// Package fftsim executes a fast Fourier transform along the stages of an
// indirect swap network, demonstrating the claim that underpins the
// paper's ISN -> butterfly transformation (Section 2.2): an ISN's flow
// graph performs an ascend (FFT) computation, with swap steps merely
// forwarding data between clusters.
//
// Mechanics: the R inputs are loaded in bit-reversed order at stage 0.
// At every cross step the engine performs decimation-in-time radix-2
// butterflies between the rows the ISN physically connects; at every swap
// step the data moves along the swap links. The in-place array index of
// each datum is tracked through the permutations; the structural theorem
// that rows joined by a cross step always hold indices differing in
// exactly the next FFT dimension is asserted at every step - if the ISN
// wiring were wrong, the assertion (not just the output) would fail.
package fftsim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/isn"
)

// DFT is the O(R^2) reference discrete Fourier transform:
// X[k] = sum_j x[j] exp(-2*pi*i*j*k/R).
func DFT(x []complex128) []complex128 {
	r := len(x)
	out := make([]complex128, r)
	for k := 0; k < r; k++ {
		var sum complex128
		for j := 0; j < r; j++ {
			angle := -2 * math.Pi * float64(j) * float64(k) / float64(r)
			sum += x[j] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// Result reports an ISN FFT execution.
type Result struct {
	// Output is the DFT of the input, in natural order.
	Output []complex128
	// CommSteps is the number of inter-stage communication steps used:
	// n_l + l - 1 for an l-level ISN (Appendix A.2).
	CommSteps int
	// SwapSteps counts the forwarding-only steps among them.
	SwapSteps int
}

// OnISN runs the FFT of x along the stages of the ISN. len(x) must equal
// the ISN's row count.
func OnISN(in *isn.ISN, x []complex128) (*Result, error) {
	r := in.Rows
	if len(x) != r {
		return nil, fmt.Errorf("fftsim: input length %d, ISN has %d rows", len(x), r)
	}
	n := in.Spec.TotalBits()
	// Load bit-reversed: row p holds in-place index p whose initial value
	// is x[rev(p)].
	cur := make([]complex128, r)
	nat := make([]int, r)
	for p := 0; p < r; p++ {
		cur[p] = x[reverseBits(p, n)]
		nat[p] = p
	}
	res := &Result{CommSteps: len(in.Steps)}
	for _, st := range in.Steps {
		switch st.Kind {
		case isn.SwapStep:
			res.SwapSteps++
			nextCur := make([]complex128, r)
			nextNat := make([]int, r)
			for row := 0; row < r; row++ {
				to := int(in.Spec.SwapNeighbor(uint64(row), st.Level))
				nextCur[to] = cur[row]
				nextNat[to] = nat[row]
			}
			cur, nat = nextCur, nextNat
		case isn.CrossStep:
			bit := 1 << uint(st.Bit)
			dimBit := 1 << uint(st.Dim)
			for row := 0; row < r; row++ {
				if row&bit != 0 {
					continue
				}
				u, v := row, row^bit
				pu, pv := nat[u], nat[v]
				if pu^pv != dimBit {
					return nil, fmt.Errorf("fftsim: step %v pairs indices %d and %d; expected to differ in bit %d",
						st, pu, pv, st.Dim)
				}
				lo, hi := u, v
				if pu&dimBit != 0 {
					lo, hi = v, u
				}
				j := nat[lo] & (dimBit - 1)
				angle := -2 * math.Pi * float64(j) / float64(2*dimBit)
				w := cmplx.Exp(complex(0, angle))
				t := w * cur[hi]
				a := cur[lo]
				cur[lo] = a + t
				cur[hi] = a - t
			}
		}
	}
	out := make([]complex128, r)
	for row := 0; row < r; row++ {
		out[nat[row]] = cur[row]
	}
	res.Output = out
	return res, nil
}

// OnButterfly runs the FFT along a plain butterfly network: the l = 1
// special case of OnISN (no swap steps, n communication steps).
func OnButterfly(n int, x []complex128) (*Result, error) {
	spec, err := bitutil.NewGroupSpec(n)
	if err != nil {
		return nil, err
	}
	return OnISN(isn.New(spec), x)
}

// Inverse computes the inverse DFT of X using the same ISN dataflow
// (conjugate trick: IDFT(X) = conj(DFT(conj(X))) / R).
func Inverse(in *isn.ISN, x []complex128) ([]complex128, error) {
	conj := make([]complex128, len(x))
	for i, v := range x {
		conj[i] = cmplx.Conj(v)
	}
	res, err := OnISN(in, conj)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	scale := complex(float64(len(x)), 0)
	for i, v := range res.Output {
		out[i] = cmplx.Conj(v) / scale
	}
	return out, nil
}

// MaxError returns the largest magnitude difference between two vectors.
func MaxError(a, b []complex128) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	max := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	return max
}

func reverseBits(v, width int) int {
	return int(bits.Reverse64(uint64(v)) >> uint(64-width))
}
