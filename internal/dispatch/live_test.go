package dispatch

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// The hooks must be nil-safe (the coordinator calls them without
// checking Config.Live) and the counters must add up in a snapshot.
func TestLiveCountersAndNilSafety(t *testing.T) {
	var nilLive *Live
	nilLive.leaseGranted()
	nilLive.leaseSettled()
	nilLive.retry()
	nilLive.hedge()
	nilLive.deliver()
	nilLive.bind(nil)

	l := NewLive()
	l.leaseGranted()
	l.leaseGranted()
	l.leaseSettled()
	l.retry()
	l.hedge()
	l.deliver()
	st := l.Snapshot()
	if st.LeasesGranted != 2 || st.LeasesOutstanding != 1 || st.Calls != 2 {
		t.Errorf("lease counters = granted %d outstanding %d calls %d, want 2/1/2",
			st.LeasesGranted, st.LeasesOutstanding, st.Calls)
	}
	if st.Retries != 1 || st.Hedges != 1 || st.Delivered != 1 {
		t.Errorf("retries/hedges/delivered = %d/%d/%d, want 1/1/1", st.Retries, st.Hedges, st.Delivered)
	}
	if len(st.Breakers) != 0 {
		t.Errorf("unbound snapshot lists %d breakers, want 0", len(st.Breakers))
	}
}

// The handler serves the snapshot as JSON with every worker's breaker
// state, and a full Run through Config.Live leaves the live counters
// agreeing with the authoritative Stats.
func TestLiveThroughRunAndHandler(t *testing.T) {
	u1, _ := worker(t, nil)
	u2, _ := worker(t, nil)
	cfg := testConfig(u1, u2)
	live := NewLive()
	cfg.Live = live

	_, st := mustRun(t, testSpec(), cfg)

	snap := live.Snapshot()
	if snap.LeasesOutstanding != 0 {
		t.Errorf("leases outstanding after Run = %d, want 0", snap.LeasesOutstanding)
	}
	if int(snap.Calls) != st.Calls || int(snap.Retries) != st.Retries || int(snap.Hedges) != st.Hedges {
		t.Errorf("live calls/retries/hedges = %d/%d/%d, Stats says %d/%d/%d",
			snap.Calls, snap.Retries, snap.Hedges, st.Calls, st.Retries, st.Hedges)
	}
	if int(snap.LeasesGranted) != st.LeasesGranted {
		t.Errorf("live leases granted = %d, Stats says %d", snap.LeasesGranted, st.LeasesGranted)
	}
	if snap.Delivered == 0 {
		t.Error("live delivered = 0 after a successful run")
	}

	rec := httptest.NewRecorder()
	live.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /statsz = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var decoded LiveStats
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/statsz body does not decode: %v\n%s", err, rec.Body.String())
	}
	if len(decoded.Breakers) != 2 {
		t.Fatalf("/statsz lists %d breakers, want 2:\n%s", len(decoded.Breakers), rec.Body.String())
	}
	seen := map[string]bool{}
	for _, b := range decoded.Breakers {
		seen[b.Worker] = true
		if b.State != "closed" {
			t.Errorf("healthy worker %s reports breaker state %q, want closed", b.Worker, b.State)
		}
	}
	if !seen[u1] || !seen[u2] {
		t.Errorf("breaker workers = %v, want %s and %s", decoded.Breakers, u1, u2)
	}
}
