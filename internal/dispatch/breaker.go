package dispatch

import (
	"sync"
	"time"
)

// breaker is the coordinator's per-worker circuit breaker, the control
// plane analogue of internal/adaptive's per-link breakers: Threshold
// consecutive failed attempts condemn ("open") a worker, an open worker
// is skipped by assignment for Cooldown, and after the cooldown exactly
// one probe request is admitted (half-open). A successful probe
// re-closes the breaker; a failed one re-opens it and re-arms the
// cooldown. All timing flows through the coordinator's injected clock.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen // one probe in flight
)

type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState //bflint:guardedby mu
	strikes  int          //bflint:guardedby mu -- consecutive failures while closed
	openedAt time.Time    //bflint:guardedby mu -- when the breaker last opened

	opened, reclosed int //bflint:guardedby mu -- transition counters for Stats
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an attempt may be sent to this worker at the
// given instant. For an open breaker past its cooldown it admits the
// caller as the half-open probe (a reservation: concurrent callers get
// false until the probe resolves). The second return is how long until
// the breaker would next admit a probe — 0 when admitted, negative when
// unknowable (probe in flight).
func (b *breaker) allow(now time.Time) (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, 0
	case breakerHalfOpen:
		return false, -1
	default: // open
		if wait := b.openedAt.Add(b.cooldown).Sub(now); wait > 0 {
			return false, wait
		}
		b.state = breakerHalfOpen
		return true, 0
	}
}

// success records a completed attempt: it wipes the strike count and
// re-closes a half-open breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerHalfOpen {
		b.reclosed++
	}
	b.state = breakerClosed
	b.strikes = 0
}

// failure records a failed attempt at the given instant: a half-open
// probe failure re-opens immediately, and Threshold consecutive
// failures open a closed breaker.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = now
		b.opened++
	case breakerClosed:
		b.strikes++
		if b.strikes >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			b.strikes = 0
			b.opened++
		}
	default: // already open: a straggling failure changes nothing
	}
}

// stateName names the current state for a /statsz snapshot.
func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// counters returns the transition counts for Stats.
func (b *breaker) counters() (opened, reclosed int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opened, b.reclosed
}
