package dispatch

import (
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
)

// Live is a live view of a running coordinator for a /statsz endpoint:
// cmd/bffarm creates one, hands it to the coordinator through
// Config.Live, and serves Handler while the farm runs. The final Stats
// returned by Run is the authoritative record; Live answers "what is
// the fleet doing right now" while Run is still in flight.
//
// Live is the first in-repo consumer of the bflint v3 concurrency
// contracts: the hot counters are int64 fields touched only through
// sync/atomic (the atomicmix discipline — coordinator goroutines bump
// them without any coordinator lock), and the lane table set once by
// Run is a //bflint:guardedby field behind its own mutex.
type Live struct {
	// Counters. Accessed only via sync/atomic (atomicmix contract).
	leasesOutstanding int64 // leases granted and not yet settled
	leasesGranted     int64
	calls             int64
	retries           int64
	hedges            int64
	delivered         int64

	mu    sync.Mutex
	lanes []*workerState //bflint:guardedby mu -- set by Run, read by Snapshot
}

// NewLive returns an empty sink ready to pass as Config.Live.
func NewLive() *Live { return &Live{} }

// LiveStats is one /statsz snapshot. Counters are monotone except
// LeasesOutstanding, which rises and falls with in-flight attempts.
type LiveStats struct {
	LeasesOutstanding int64           `json:"leases_outstanding"`
	LeasesGranted     int64           `json:"leases_granted"`
	Calls             int64           `json:"calls"`
	Retries           int64           `json:"retries"`
	Hedges            int64           `json:"hedges"`
	Delivered         int64           `json:"delivered"`
	Breakers          []BreakerStatus `json:"breakers"`
}

// BreakerStatus is one worker's circuit-breaker state in a snapshot.
type BreakerStatus struct {
	Worker string `json:"worker"`
	State  string `json:"state"` // "closed", "open", or "half-open"
}

// bind points the sink at the coordinator's worker lanes; Run calls it
// once before dispatching.
func (l *Live) bind(lanes []*workerState) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.lanes = lanes
	l.mu.Unlock()
}

// The per-event hooks are nil-safe so the coordinator calls them
// unconditionally on its hot path.

func (l *Live) leaseGranted() {
	if l == nil {
		return
	}
	atomic.AddInt64(&l.leasesOutstanding, 1)
	atomic.AddInt64(&l.leasesGranted, 1)
	atomic.AddInt64(&l.calls, 1)
}

func (l *Live) leaseSettled() {
	if l == nil {
		return
	}
	atomic.AddInt64(&l.leasesOutstanding, -1)
}

func (l *Live) retry() {
	if l == nil {
		return
	}
	atomic.AddInt64(&l.retries, 1)
}

func (l *Live) hedge() {
	if l == nil {
		return
	}
	atomic.AddInt64(&l.hedges, 1)
}

func (l *Live) deliver() {
	if l == nil {
		return
	}
	atomic.AddInt64(&l.delivered, 1)
}

// Snapshot reads the counters and every worker's breaker state. Safe to
// call at any time, including before Run binds the lanes (the breaker
// list is empty then) and after Run returns.
func (l *Live) Snapshot() LiveStats {
	st := LiveStats{
		LeasesOutstanding: atomic.LoadInt64(&l.leasesOutstanding),
		LeasesGranted:     atomic.LoadInt64(&l.leasesGranted),
		Calls:             atomic.LoadInt64(&l.calls),
		Retries:           atomic.LoadInt64(&l.retries),
		Hedges:            atomic.LoadInt64(&l.hedges),
		Delivered:         atomic.LoadInt64(&l.delivered),
		Breakers:          []BreakerStatus{},
	}
	l.mu.Lock()
	lanes := l.lanes
	l.mu.Unlock()
	for _, ws := range lanes {
		st.Breakers = append(st.Breakers, BreakerStatus{Worker: ws.url, State: ws.breaker.stateName()})
	}
	return st
}

// Handler serves GET /statsz: the current Snapshot as indented JSON.
func (l *Live) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(l.Snapshot()); err != nil {
			// The snapshot always marshals; a failure here is the client
			// hanging up mid-write, which an HTTP handler cannot repair.
			return
		}
	})
}
