package dispatch

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bfvlsi/internal/dispatch/chaos"
	"bfvlsi/internal/serve"
	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/sweepfarm"
	"bfvlsi/internal/wire"
)

// testSpec mirrors the sweepfarm test farm — a VC stack with reliable
// transport, one control point plus a fault-rate × seed grid — and adds
// a deliberate duplicate of one scenario so content-address dedupe has
// something to collapse.
func testSpec() sweepfarm.Spec {
	base := snapshot.Spec{
		Route: wire.RouteSpec{
			N: 3, Lambda: 0.30, Warmup: 20, Cycles: 60, Seed: 11,
			BufferLimit: 4, TTL: 48,
		},
		Reliable: &snapshot.ReliableSpec{Timeout: 12, MaxRetries: 3, Jitter: 2, Seed: 5, MeasureFrom: 20},
	}
	points := []*wire.FaultSpec{nil} // control
	for _, rate := range []float64{0.02, 0.05} {
		for seed := int64(1); seed <= 3; seed++ {
			points = append(points, &wire.FaultSpec{N: 3, LinkRate: rate, Seed: seed})
		}
	}
	// Same scenario as points[1]: a distinct index, an identical query.
	points = append(points, &wire.FaultSpec{N: 3, LinkRate: 0.02, Seed: 1})
	return sweepfarm.Spec{Base: base, ForkCycle: 20, Points: points}
}

// serialEncoding is the golden reference: the canonical bytes of an
// uninterrupted in-process sweepfarm.Run over the same spec.
func serialEncoding(t *testing.T, spec sweepfarm.Spec) []byte {
	t.Helper()
	rep, err := sweepfarm.Run(spec, sweepfarm.Options{Workers: 4})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	b, err := rep.Encode()
	if err != nil {
		t.Fatalf("serial encode: %v", err)
	}
	return b
}

// worker starts an in-process bfserve behind a chaos proxy with the
// given schedule (nil = pass everything) and returns its URL plus the
// proxy for injection counters.
func worker(t *testing.T, sched chaos.Schedule) (string, *chaos.Proxy) {
	t.Helper()
	var mu sync.Mutex
	now := time.Unix(0, 0)
	srv := serve.New(serve.Config{
		CacheEntries: 64,
		MaxDim:       8,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Millisecond)
			return now
		},
	})
	proxy := &chaos.Proxy{Next: srv.Handler(), Schedule: sched, Delay: 200 * time.Millisecond}
	ts := httptest.NewServer(proxy)
	t.Cleanup(ts.Close)
	return ts.URL, proxy
}

// testConfig returns a coordinator config tuned for fast tests: tight
// backoff, a generous retry budget, and the real clock (test files are
// outside the detrand contract).
func testConfig(workers ...string) Config {
	return Config{
		Workers:          workers,
		LeaseTTL:         10 * time.Second,
		RequestTimeout:   5 * time.Second,
		MaxAttempts:      8,
		BackoffBase:      time.Millisecond,
		BackoffCap:       20 * time.Millisecond,
		JitterMax:        time.Millisecond,
		Seed:             7,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Now:              time.Now,
	}
}

func mustRun(t *testing.T, spec sweepfarm.Spec, cfg Config) (*sweepfarm.Report, *Stats) {
	t.Helper()
	rep, st, err := Run(spec, cfg)
	if err != nil {
		t.Fatalf("dispatch.Run: %v", err)
	}
	return rep, st
}

func encode(t *testing.T, rep *sweepfarm.Report) []byte {
	t.Helper()
	b, err := rep.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return b
}

// TestDistributedMatchesSerial is the core identity: a clean 3-worker
// distributed farm produces bytes identical to the serial farm, and the
// duplicated scenario costs zero extra remote calls.
func TestDistributedMatchesSerial(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)

	u0, p0 := worker(t, nil)
	u1, p1 := worker(t, nil)
	u2, p2 := worker(t, nil)
	rep, st := mustRun(t, spec, testConfig(u0, u1, u2))

	if got := encode(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("distributed report differs from the serial one")
	}
	if st.Deduped != 1 {
		t.Fatalf("deduped %d points, want 1 (the duplicated scenario)", st.Deduped)
	}
	if st.Groups != len(spec.Points)-1 {
		t.Fatalf("dispatched %d groups, want %d", st.Groups, len(spec.Points)-1)
	}
	if calls := p0.Requests() + p1.Requests() + p2.Requests(); calls != st.Groups {
		t.Fatalf("clean fleet saw %d requests for %d groups", calls, st.Groups)
	}
	if st.Retries != 0 || st.Shed != 0 || st.BreakerOpens != 0 {
		t.Fatalf("clean fleet recorded failures: %+v", *st)
	}
}

// TestChaosSchedules is the tentpole acceptance sweep: under every
// chaos schedule — drops, 500s, truncated bodies, duplicated bodies,
// delays with hedging, and a mixed storm — the merged report stays
// byte-identical to the uninterrupted serial run.
func TestChaosSchedules(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)

	cases := []struct {
		name      string
		schedules []chaos.Schedule // one per worker; nil passes
		hedge     time.Duration
	}{
		{"drops", []chaos.Schedule{chaos.Cycle(chaos.Drop, chaos.Pass), nil, nil}, 0},
		{"http500s", []chaos.Schedule{chaos.Cycle(chaos.Error500, chaos.Pass), chaos.Cycle(chaos.Pass, chaos.Error500), nil}, 0},
		{"truncated", []chaos.Schedule{chaos.Cycle(chaos.Truncate, chaos.Pass), nil, nil}, 0},
		{"duplicated", []chaos.Schedule{chaos.Cycle(chaos.Duplicate, chaos.Pass), nil, nil}, 0},
		{"delays hedged", []chaos.Schedule{chaos.Cycle(chaos.Delay), nil, nil}, 10 * time.Millisecond},
		{"mixed storm", []chaos.Schedule{
			chaos.Cycle(chaos.Drop, chaos.Pass, chaos.Truncate),
			chaos.Cycle(chaos.Error500, chaos.Pass, chaos.Duplicate),
			chaos.Cycle(chaos.Pass, chaos.Delay),
		}, 15 * time.Millisecond},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			urls := make([]string, len(c.schedules))
			for i, sched := range c.schedules {
				urls[i], _ = worker(t, sched)
			}
			cfg := testConfig(urls...)
			cfg.HedgeAfter = c.hedge
			rep, st := mustRun(t, spec, cfg)
			if got := encode(t, rep); !bytes.Equal(got, want) {
				t.Fatalf("report under %s chaos differs from the serial run", c.name)
			}
			if strings.Contains(c.name, "hedged") && st.Hedges == 0 {
				t.Fatalf("straggler schedule hedged nothing: %+v", *st)
			}
		})
	}
}

// TestWorkerKilledMidLease covers the acceptance case of a worker dying
// after taking a lease: worker 0 accepts every request and severs the
// connection without answering, so each of its leases is granted and
// then lost; retries move the points to the healthy worker and the
// report stays byte-identical.
func TestWorkerKilledMidLease(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)

	u0, p0 := worker(t, chaos.Cycle(chaos.Drop))
	u1, _ := worker(t, nil)
	rep, st := mustRun(t, spec, testConfig(u0, u1))

	if got := encode(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("report with a dead worker differs from the serial run")
	}
	if p0.Injected(chaos.Drop) == 0 {
		t.Fatal("dead worker was never even tried")
	}
	if st.Retries == 0 {
		t.Fatalf("lost leases triggered no retries: %+v", *st)
	}
	if st.LeasesGranted <= st.Groups {
		t.Fatalf("%d leases for %d groups: lost leases were not re-issued", st.LeasesGranted, st.Groups)
	}
}

// TestBreakerCondemnsAndRecovers drives worker 0 through sick-then-
// healthy: two consecutive 500s open its breaker, then clean answers so
// the half-open probe re-admits it. Worker 1 answers slowly (chaos
// Delay) so the run outlasts the cooldown and the round-robin pick is
// guaranteed to reach the condemned worker again while work remains.
func TestBreakerCondemnsAndRecovers(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)

	u0, _ := worker(t, chaos.FirstN(2, chaos.Error500))
	u1, _ := worker(t, chaos.Cycle(chaos.Delay))
	cfg := testConfig(u0, u1)
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 5 * time.Millisecond
	rep, st := mustRun(t, spec, cfg)

	if got := encode(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("report with a condemned worker differs from the serial run")
	}
	if st.BreakerOpens == 0 {
		t.Fatalf("six consecutive 500s opened no breaker: %+v", *st)
	}
	if st.BreakerCloses == 0 {
		t.Fatalf("recovered worker was never re-admitted: %+v", *st)
	}
}

// TestCoordinatorKillResume is the durability acceptance case: a
// coordinator hard-killed mid-run (AbortAfter) leaves per-worker
// journals behind; a new coordinator — with a different worker count,
// so one journal is an orphan lane — merges them and converges to the
// serial bytes, replaying instead of recomputing.
func TestCoordinatorKillResume(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)
	dir := t.TempDir()

	u0, _ := worker(t, chaos.Cycle(chaos.Pass, chaos.Error500))
	u1, _ := worker(t, nil)
	u2, _ := worker(t, nil)
	killed := testConfig(u0, u1, u2)
	killed.JournalDir = dir
	killed.AbortAfter = 3
	_, st, err := Run(spec, killed)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("AbortAfter returned %v, want ErrAborted", err)
	}
	if st.JournalRecords == 0 {
		t.Fatal("killed coordinator journaled nothing")
	}

	// Resume with two workers: worker-02.journal is now an orphan lane
	// that must still be merged.
	resumeCfg := testConfig(u0, u1)
	resumeCfg.JournalDir = dir
	rep, st2 := mustRun(t, spec, resumeCfg)
	if got := encode(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("killed-and-resumed coordinator differs from the serial run")
	}
	if st2.Resumed == 0 {
		t.Fatal("resume replayed nothing from the journals")
	}
	if rep.Resumed != st2.Resumed {
		t.Fatalf("report says %d resumed, stats say %d", rep.Resumed, st2.Resumed)
	}

	// A third run over the complete journals computes nothing at all.
	third, st3 := mustRun(t, spec, resumeCfg)
	if got := encode(t, third); !bytes.Equal(got, want) {
		t.Fatalf("replay-only run differs from the serial run")
	}
	if st3.Calls != 0 || st3.Resumed != len(spec.Points) {
		t.Fatalf("replay-only run made %d calls, resumed %d of %d", st3.Calls, st3.Resumed, len(spec.Points))
	}

	// The merged journals themselves hold the full point set.
	paths, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil {
		t.Fatal(err)
	}
	pts, _, err := sweepfarm.MergeJournals(paths...)
	if err != nil {
		t.Fatalf("MergeJournals: %v", err)
	}
	if len(pts) != len(spec.Points) {
		t.Fatalf("journals hold %d of %d points", len(pts), len(spec.Points))
	}
}

// TestRetryBudgetExhausted pins the failure path: a fleet that never
// answers exhausts the per-point budget and surfaces a real error, not
// a hang.
func TestRetryBudgetExhausted(t *testing.T) {
	spec := testSpec()
	u0, _ := worker(t, chaos.Cycle(chaos.Error500))
	cfg := testConfig(u0)
	cfg.MaxAttempts = 2
	cfg.BreakerThreshold = 100 // keep the breaker out of this test
	_, _, err := Run(spec, cfg)
	if err == nil || !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("all-sick fleet returned %v, want a retry-budget error", err)
	}
}

// TestConfigValidate covers the pure validation surface.
func TestConfigValidate(t *testing.T) {
	spec := testSpec()
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no workers", func(c *Config) { c.Workers = nil }, "no workers"},
		{"empty url", func(c *Config) { c.Workers = []string{""} }, "empty URL"},
		{"nil clock", func(c *Config) { c.Now = nil }, "clock is required"},
		{"negative lease", func(c *Config) { c.LeaseTTL = -time.Second }, "negative duration"},
		{"negative hedge", func(c *Config) { c.HedgeAfter = -time.Second }, "negative duration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig("http://127.0.0.1:1")
			c.mut(&cfg)
			_, _, err := Run(spec, cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("got %v, want error containing %q", err, c.want)
			}
		})
	}
}

// TestChaosSweepSmoke is the `make chaos-sweep` entry point: a
// coordinator over three in-process workers behind a mixed chaos storm
// with hedging and journals, asserting byte-identity. Run under -race
// it doubles as the concurrency audit for the whole dispatch path.
func TestChaosSweepSmoke(t *testing.T) {
	spec := testSpec()
	want := serialEncoding(t, spec)

	u0, _ := worker(t, chaos.Cycle(chaos.Pass, chaos.Drop, chaos.Delay))
	u1, _ := worker(t, chaos.Cycle(chaos.Error500, chaos.Pass, chaos.Truncate))
	u2, _ := worker(t, chaos.Cycle(chaos.Pass, chaos.Duplicate))
	cfg := testConfig(u0, u1, u2)
	cfg.HedgeAfter = 15 * time.Millisecond
	cfg.JournalDir = t.TempDir()
	rep, st := mustRun(t, spec, cfg)

	if got := encode(t, rep); !bytes.Equal(got, want) {
		t.Fatalf("chaos-sweep report differs from the serial run")
	}
	if st.Calls < st.Groups {
		t.Fatalf("%d calls for %d groups", st.Calls, st.Groups)
	}
	t.Logf("chaos-sweep: %+v", *st)
}

// TestClientRejectsBadAnswers unit-tests the response validator against
// handcrafted bodies: missing results, trailing documents, and broken
// conservation all read as retryable corruption, never as data.
func TestClientRejectsBadAnswers(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty object", `{}`},
		{"null result", `{"result":null}`},
		{"trailing document", `{"result":{}}{"result":{}}`},
		{"broken conservation", `{"result":{"totalInjected":5,"totalDelivered":1}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				_, _ = w.Write([]byte(c.body))
			}))
			t.Cleanup(ts.Close)
			_, err := postWhatif(context.Background(), ts.Client(), ts.URL, []byte(`{}`))
			if !errors.Is(err, errCorrupt) {
				t.Fatalf("got %v, want errCorrupt", err)
			}
		})
	}
}
