package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/wire"
)

// errPermanent marks failures a retry cannot fix: the worker understood
// the request and rejected it (4xx other than overload). The retry loop
// stops on these immediately instead of burning its budget.
var errPermanent = errors.New("request rejected")

// errShed marks a 503 overload answer from a worker at its -maxinflight
// cap: retryable, but counted separately so Stats distinguish shed load
// from broken workers.
var errShed = errors.New("worker shed the request")

// errCorrupt marks a syntactically-200 answer whose body failed
// validation: truncated or duplicated JSON, a missing result, or a
// result violating copy conservation. Retryable — transport corruption
// is transient, and a deterministic worker re-asked gives clean bytes.
var errCorrupt = errors.New("corrupt response body")

// whatifBody is the POST /v1/whatif request document, mirroring
// internal/serve's whatifRequest (encoding/json renders []byte as
// base64, which is what the server decodes).
type whatifBody struct {
	Checkpoint []byte     `json:"checkpoint"`
	Fault      *faultBody `json:"fault,omitempty"`
}

type faultBody struct {
	LinkRate         float64          `json:"linkRate,omitempty"`
	NodeRate         float64          `json:"nodeRate,omitempty"`
	Seed             int64            `json:"seed,omitempty"`
	TransientCount   int              `json:"transientCount,omitempty"`
	TransientHorizon int              `json:"transientHorizon,omitempty"`
	TransientRepair  int              `json:"transientRepair,omitempty"`
	Events           []faultEventBody `json:"events,omitempty"`
}

type faultEventBody struct {
	Node        int `json:"node"`
	Out         int `json:"out"`
	Start       int `json:"start"`
	RepairAfter int `json:"repairAfter,omitempty"`
}

// marshalWhatif renders the query for one sweep point: the base
// checkpoint plus that point's fault recipe (nil for the fault-free
// control). The worker re-derives N from the checkpoint, so the fault's
// N field does not travel.
func marshalWhatif(ck []byte, fault *wire.FaultSpec) ([]byte, error) {
	body := whatifBody{Checkpoint: ck}
	if fault != nil {
		fb := &faultBody{
			LinkRate:         fault.LinkRate,
			NodeRate:         fault.NodeRate,
			Seed:             fault.Seed,
			TransientCount:   fault.TransientCount,
			TransientHorizon: fault.TransientHorizon,
			TransientRepair:  fault.TransientRepair,
		}
		for _, ev := range fault.Events {
			fb.Events = append(fb.Events, faultEventBody{
				Node: ev.Node, Out: ev.Out, Start: ev.Start, RepairAfter: ev.RepairAfter,
			})
		}
		body.Fault = fb
	}
	return json.Marshal(body)
}

// whatifReply is the slice of the server's answer the coordinator
// journals. Reliable/adaptive stats ride along untyped: the report
// format carries routing.Result only, and tolerating extra keys keeps
// the client compatible with servers that grow their answer.
type whatifReply struct {
	Result   *routing.Result `json:"result"`
	Reliable json.RawMessage `json:"reliable,omitempty"`
	Adaptive json.RawMessage `json:"adaptive,omitempty"`
}

// postWhatif sends one what-if attempt to a worker and validates the
// answer hard: exactly one JSON document, a present result, and copy
// conservation intact. Under a chaos proxy a 200 can still carry a
// truncated or doubled body; both must read as a retryable failure, not
// as data.
func postWhatif(ctx context.Context, client *http.Client, workerURL string, body []byte) (*routing.Result, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+"/v1/whatif", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errPermanent, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err // transport fault: retryable
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		_ = resp.Body.Close()
	}()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		switch {
		case resp.StatusCode == http.StatusServiceUnavailable:
			return nil, fmt.Errorf("%w: %s", errShed, bytes.TrimSpace(msg))
		case resp.StatusCode >= 500:
			return nil, fmt.Errorf("worker answered %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
		default:
			return nil, fmt.Errorf("%w: worker answered %d: %s", errPermanent, resp.StatusCode, bytes.TrimSpace(msg))
		}
	}

	dec := json.NewDecoder(resp.Body)
	var reply whatifReply
	if err := dec.Decode(&reply); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	// A duplicated body decodes cleanly and then presents a second
	// document; only EOF after the first is a whole answer.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("%w: trailing data after the response document", errCorrupt)
	}
	if reply.Result == nil {
		return nil, fmt.Errorf("%w: response carries no result", errCorrupt)
	}
	if err := reply.Result.CheckConservation(); err != nil {
		return nil, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	return reply.Result, nil
}
