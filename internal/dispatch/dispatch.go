// Package dispatch scales the sweep farm out of process: a coordinator
// warms up the base run once (sweepfarm.WarmCheckpoint), then hands
// what-if points to a fleet of bfserve workers over POST /v1/whatif and
// merges their answers into a report byte-identical to a serial
// sweepfarm.Run over the same spec.
//
// The coordinator is built for lossy fleets. Points are leased to
// workers with a deterministic expiry (LeaseTTL bounds the attempt's
// context; an expired lease is re-issued to the next worker). Failed
// attempts retry under an exponential backoff with seeded jitter and a
// hard per-point budget (MaxAttempts, the internal/reliable RTO idiom).
// Each worker carries a circuit breaker (the internal/adaptive idiom):
// BreakerThreshold consecutive failures condemn it, and after
// BreakerCooldown one half-open probe decides re-admission. Straggling
// attempts are hedged: after HedgeAfter the same query is duplicated to
// a second worker and the first full answer wins, with both answers
// journaled — which is safe precisely because the journal merge is
// idempotent (records carry point indices; identical duplicates
// collapse, conflicting ones fail loudly).
//
// Identical queries are computed once: points are grouped by the same
// content address bfserve caches under (checkpoint bytes + fault
// presence + canonical fault frame, hashed), so a sweep with repeated
// scenarios costs one remote call per distinct query.
//
// Durability mirrors the in-process farm: each worker lane appends
// finished points to its own journal under JournalDir, and a new
// coordinator run first merges every *.journal file found there —
// including lanes left by a killed predecessor with a different worker
// count — before dispatching only what is still missing.
//
// The package takes no wall-clock dependency of its own: Config.Now is
// the coordinator clock (cmd/bffarm injects time.Now; tests inject what
// they like), keeping the package inside bflint's detrand contract.
package dispatch

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bfvlsi/internal/routing"
	"bfvlsi/internal/sweepfarm"
)

// ErrAborted reports a coordinator stopped by Config.AbortAfter with
// points still missing; its journals hold the finished prefix and a
// rerun resumes from them.
var ErrAborted = errors.New("dispatch: aborted")

// Config tunes the coordinator.
type Config struct {
	// Workers are the base URLs of bfserve instances (e.g.
	// "http://127.0.0.1:8417"). At least one is required.
	Workers []string
	// Client issues the HTTP calls; nil selects a plain &http.Client{}
	// (deadlines come from per-attempt contexts, not a client timeout).
	Client *http.Client
	// JournalDir, if non-empty, holds one append-only journal per worker
	// lane (worker-NN.journal). On start every *.journal file in the
	// directory is merged — resuming a killed coordinator, whatever its
	// worker count was. Empty disables persistence and resumability.
	JournalDir string
	// Inflight caps concurrently leased queries; values below 1 select
	// twice the worker count.
	Inflight int
	// LeaseTTL is how long a leased query may stay assigned to a worker
	// before the lease expires and the point is re-issued. It bounds the
	// attempt's context deadline. Values <= 0 select 30s.
	LeaseTTL time.Duration
	// RequestTimeout bounds a single HTTP attempt inside its lease; 0
	// lets the lease TTL alone bound it.
	RequestTimeout time.Duration
	// MaxAttempts is the per-point retry budget, counting the first
	// attempt (the reliable-transport MaxRetries idiom). Values below 1
	// select 4.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the retry backoff: attempt k
	// sleeps Base<<(k-1), capped at Cap (the reliable RTO doubling
	// idiom). Zero values select 50ms and 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterMax adds a uniform draw from [0, JitterMax) to every backoff
	// sleep, from a rand.Rand seeded with Seed — decorrelating retry
	// storms without forfeiting reproducibility.
	JitterMax time.Duration
	Seed      int64
	// HedgeAfter, if positive and more than one worker is configured,
	// duplicates an attempt still unanswered after this delay onto a
	// second worker; the first full answer wins and both are journaled.
	// Zero disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold consecutive failures open a worker's breaker
	// (values below 1 select 3); an open worker is skipped for
	// BreakerCooldown (default 2s), then admitted one half-open probe.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Live, if non-nil, receives live counter updates (leases, retries,
	// hedges) and a view of the worker breakers, for a /statsz endpoint
	// served while Run is in flight. The Stats returned by Run stays the
	// authoritative end-of-run record.
	Live *Live
	// Now is the coordinator clock, used for lease expiry accounting and
	// breaker cooldowns. Required: the package reads no wall clock of
	// its own (detrand contract); cmd/bffarm injects time.Now.
	Now func() time.Time
	// Sleep replaces time.Sleep for backoff, hedge, and breaker waits;
	// nil selects time.Sleep.
	Sleep func(time.Duration)
	// AbortAfter, if positive, hard-aborts the coordinator once that
	// many queries have been delivered this run: no further leases are
	// granted, in-flight answers are discarded unjournaled, and Run
	// returns ErrAborted. Test hook simulating a kill; zero disables.
	AbortAfter int
}

// validate checks the non-defaultable parts of the config.
func (c *Config) validate() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("dispatch: no workers configured")
	}
	for i, w := range c.Workers {
		if w == "" {
			return fmt.Errorf("dispatch: worker %d has an empty URL", i)
		}
	}
	if c.Now == nil {
		return fmt.Errorf("dispatch: Config.Now clock is required")
	}
	if c.RequestTimeout < 0 || c.LeaseTTL < 0 || c.HedgeAfter < 0 ||
		c.BackoffBase < 0 || c.BackoffCap < 0 || c.JitterMax < 0 || c.BreakerCooldown < 0 {
		return fmt.Errorf("dispatch: negative duration in config")
	}
	return nil
}

// Stats counts what the coordinator did; one instance is returned per
// Run, also on abort.
type Stats struct {
	Points  int // sweep points in the spec
	Resumed int // points replayed from merged journals
	Groups  int // distinct queries dispatched after dedupe
	Deduped int // points answered by another point's identical query

	Calls     int // HTTP attempts issued, hedges included
	Retries   int // attempts beyond the first for a query
	Hedges    int // hedged duplicate attempts launched
	HedgeWins int // queries whose winning answer came from a hedge

	LeasesGranted int
	LeasesExpired int // leases that hit LeaseTTL before an answer
	Shed          int // 503 overload answers (worker at its inflight cap)

	BreakerOpens   int // breaker transitions into open
	BreakerCloses  int // half-open probes that re-admitted a worker
	DupDeliveries  int // queries delivered twice (hedge double-success)
	JournalRecords int // records appended across worker lanes this run
}

// group is one distinct query: every sweep point sharing a content
// address, the marshaled request they share, and the address itself.
type group struct {
	key     string // hex content address of the query
	indices []int  // spec points answered by this query, ascending
	body    []byte // marshaled whatif request
}

// workerState is one worker lane: its URL, breaker, and journal.
type workerState struct {
	url     string
	breaker *breaker

	jmu     sync.Mutex
	journal *sweepfarm.Journal //bflint:guardedby jmu
}

type coordinator struct {
	cfg    Config
	client *http.Client
	lanes  []*workerState

	runCtx context.Context
	stop   context.CancelFunc

	rngMu sync.Mutex
	rng   *rand.Rand //bflint:guardedby rngMu

	fires sync.WaitGroup // every in-flight attempt, stragglers included

	mu        sync.Mutex
	rr        int                     //bflint:guardedby mu -- round-robin pick cursor
	done      map[int]*routing.Result //bflint:guardedby mu
	delivered int                     //bflint:guardedby mu -- groups delivered this run (AbortAfter counter)
	aborted   bool                    //bflint:guardedby mu
	firstErr  error                   //bflint:guardedby mu
	stats     Stats                   //bflint:guardedby mu
}

// contentKey is the query's content address: checkpoint bytes, a fault
// presence byte, and the canonical fault frame, hashed — the same
// recipe internal/serve uses for its whatif cache key, so coordinator
// dedupe and server-side caching agree on what "the same query" means.
func contentKey(ck []byte, fault *faultFrame) string {
	h := sha256.New()
	h.Write(ck)
	if fault == nil {
		h.Write([]byte{0})
	} else {
		h.Write([]byte{1})
		h.Write(fault.frame)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// faultFrame pairs a point's fault spec with its canonical encoding.
type faultFrame struct {
	frame []byte
}

// Run executes the distributed farm and returns the merged report. With
// a journal directory the run is resumable: killed coordinators pick up
// from whatever their worker lanes managed to journal.
func Run(spec sweepfarm.Spec, cfg Config) (*sweepfarm.Report, *Stats, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if cfg.Inflight < 1 {
		cfg.Inflight = 2 * len(cfg.Workers)
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 30 * time.Second
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffCap == 0 {
		cfg.BackoffCap = 2 * time.Second
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}

	runCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := &coordinator{
		cfg:    cfg,
		client: cfg.Client,
		runCtx: runCtx,
		stop:   cancel,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		done:   make(map[int]*routing.Result, len(spec.Points)),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	for _, url := range cfg.Workers {
		c.lanes = append(c.lanes, &workerState{
			url:     url,
			breaker: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	c.stats.Points = len(spec.Points)
	cfg.Live.bind(c.lanes)

	if err := c.openJournals(len(spec.Points)); err != nil {
		return nil, nil, err
	}
	c.stats.Resumed = len(c.done)

	runErr := c.runMissing(spec)

	closeErr := c.closeJournals()
	if runErr == nil {
		runErr = closeErr
	}
	st := c.snapshotStats()
	if runErr != nil {
		return nil, st, runErr
	}

	rep := &sweepfarm.Report{Points: make([]sweepfarm.Point, 0, len(c.done)), Resumed: st.Resumed}
	for idx, res := range c.done {
		rep.Points = append(rep.Points, sweepfarm.Point{Index: idx, Result: res})
	}
	sort.Slice(rep.Points, func(i, j int) bool { return rep.Points[i].Index < rep.Points[j].Index })
	return rep, st, nil
}

// openJournals opens one journal per worker lane under JournalDir and
// merges every *.journal file found there into done — the lanes about
// to be written plus any orphans from a predecessor with a different
// worker count.
func (c *coordinator) openJournals(points int) error {
	if c.cfg.JournalDir == "" {
		return nil
	}
	dir := c.cfg.JournalDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("dispatch: journal dir: %w", err)
	}
	owned := make(map[string]bool, len(c.lanes))
	var all []sweepfarm.Point
	for i, ws := range c.lanes {
		path := filepath.Join(dir, fmt.Sprintf("worker-%02d.journal", i))
		j, prior, err := sweepfarm.OpenJournal(path)
		if err != nil {
			_ = c.closeJournals()
			return err
		}
		ws.jmu.Lock()
		ws.journal = j
		ws.jmu.Unlock()
		owned[path] = true
		all = append(all, prior...)
	}
	orphans, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil {
		_ = c.closeJournals()
		return fmt.Errorf("dispatch: journal glob: %w", err)
	}
	sort.Strings(orphans)
	for _, path := range orphans {
		if owned[path] {
			continue
		}
		pts, _, err := sweepfarm.ReadJournal(path)
		if err != nil {
			_ = c.closeJournals()
			return err
		}
		all = append(all, pts...)
	}
	merged, _, err := sweepfarm.MergePoints(all)
	if err != nil {
		_ = c.closeJournals()
		return err
	}
	for _, p := range merged {
		if p.Index < 0 || p.Index >= points {
			_ = c.closeJournals()
			return fmt.Errorf("dispatch: journal point %d out of range for a %d-point spec", p.Index, points)
		}
	}
	c.mu.Lock()
	for _, p := range merged {
		c.done[p.Index] = p.Result
	}
	c.mu.Unlock()
	return nil
}

// closeJournals closes every open lane journal, keeping the first
// error: a failed close means the last fsync is unconfirmed, which a
// durability layer must not swallow.
func (c *coordinator) closeJournals() error {
	var first error
	for _, ws := range c.lanes {
		ws.jmu.Lock()
		if ws.journal != nil {
			if err := ws.journal.Close(); err != nil && first == nil {
				first = err
			}
			ws.journal = nil
		}
		ws.jmu.Unlock()
	}
	return first
}

// runMissing warms the checkpoint, groups missing points by content
// address, and drives the dispatch pool over the groups.
func (c *coordinator) runMissing(spec sweepfarm.Spec) error {
	var missing []int
	c.mu.Lock()
	for i := range spec.Points {
		if _, ok := c.done[i]; !ok {
			missing = append(missing, i)
		}
	}
	c.mu.Unlock()
	if len(missing) == 0 {
		return nil
	}

	warm, err := sweepfarm.WarmCheckpoint(spec)
	if err != nil {
		return err
	}
	ck, err := warm.MarshalBinary()
	if err != nil {
		return err
	}

	byKey := make(map[string]*group)
	var groups []*group
	for _, idx := range missing {
		var ff *faultFrame
		if fs := spec.Points[idx]; fs != nil {
			frame, err := fs.MarshalBinary()
			if err != nil {
				return fmt.Errorf("dispatch: point %d: %w", idx, err)
			}
			ff = &faultFrame{frame: frame}
		}
		key := contentKey(ck, ff)
		g := byKey[key]
		if g == nil {
			body, err := marshalWhatif(ck, spec.Points[idx])
			if err != nil {
				return fmt.Errorf("dispatch: point %d: %w", idx, err)
			}
			g = &group{key: key, body: body}
			byKey[key] = g
			groups = append(groups, g)
		}
		g.indices = append(g.indices, idx)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].indices[0] < groups[j].indices[0] })
	c.mu.Lock()
	c.stats.Groups = len(groups)
	c.stats.Deduped = len(missing) - len(groups)
	c.mu.Unlock()

	jobs := make(chan *group)
	var pool sync.WaitGroup
	for w := 0; w < c.cfg.Inflight; w++ {
		pool.Add(1)
		go func() {
			defer pool.Done()
			for g := range jobs {
				if err := c.runGroup(g); err != nil {
					c.fail(err)
				}
			}
		}()
	}
feed:
	for _, g := range groups {
		select {
		case jobs <- g:
		case <-c.runCtx.Done():
			break feed
		}
	}
	close(jobs)
	pool.Wait()
	// Hedge stragglers may still be delivering; the journals stay open
	// until every fire has landed.
	c.fires.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.firstErr != nil {
		return c.firstErr
	}
	if len(c.done) < len(spec.Points) {
		return fmt.Errorf("%w after %d queries, %d points missing",
			ErrAborted, c.delivered, len(spec.Points)-len(c.done))
	}
	return nil
}

// fail records the first hard error and stops the run.
func (c *coordinator) fail(err error) {
	c.mu.Lock()
	if c.firstErr == nil {
		c.firstErr = err
	}
	c.mu.Unlock()
	c.stop()
}

// abort flips the aborted flag and stops the run (AbortAfter hook).
// Caller holds c.mu.
func (c *coordinator) abortLocked() {
	c.aborted = true
	c.stop()
}

// runGroup drives one query to a delivered answer: lease a worker,
// attempt (with hedging), and on failure back off and re-issue up to
// the retry budget.
func (c *coordinator) runGroup(g *group) error {
	for attempt := 1; ; attempt++ {
		worker, err := c.pickWorker(-1)
		if err != nil {
			return nil // run stopped while waiting for a worker
		}
		err = c.attempt(g, worker)
		if err == nil {
			return nil
		}
		if errors.Is(err, errPermanent) {
			return fmt.Errorf("dispatch: point %d: %w", g.indices[0], err)
		}
		if c.stopped() {
			return nil
		}
		if attempt >= c.cfg.MaxAttempts {
			return fmt.Errorf("dispatch: point %d: retry budget (%d attempts) exhausted: %w",
				g.indices[0], c.cfg.MaxAttempts, err)
		}
		c.mu.Lock()
		c.stats.Retries++
		c.mu.Unlock()
		c.cfg.Live.retry()
		c.cfg.Sleep(c.backoff(attempt))
	}
}

// backoff returns the sleep before re-issuing after the k-th failed
// attempt: BackoffBase<<(k-1) capped at BackoffCap (the reliable RTO
// doubling), plus a seeded uniform jitter in [0, JitterMax).
func (c *coordinator) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffCap
	if shift := attempt - 1; shift < 30 {
		if exp := c.cfg.BackoffBase << shift; exp < d {
			d = exp
		}
	}
	if c.cfg.JitterMax > 0 {
		c.rngMu.Lock()
		d += time.Duration(c.rng.Int63n(int64(c.cfg.JitterMax)))
		c.rngMu.Unlock()
	}
	return d
}

// stopped reports whether the run has been cancelled (error or abort).
func (c *coordinator) stopped() bool {
	return c.runCtx.Err() != nil
}

// pickWorker leases the next available worker round-robin, skipping
// open breakers (and the excluded worker, for hedges). When every
// worker is condemned it sleeps until the earliest breaker can admit a
// half-open probe, so a fully-open fleet heals instead of deadlocking.
func (c *coordinator) pickWorker(exclude int) (int, error) {
	for {
		if c.stopped() {
			return -1, c.runCtx.Err()
		}
		c.mu.Lock()
		start := c.rr
		c.rr++
		c.mu.Unlock()
		wait := time.Duration(-1)
		for k := 0; k < len(c.lanes); k++ {
			i := (start + k) % len(c.lanes)
			if i == exclude {
				continue
			}
			ok, until := c.lanes[i].breaker.allow(c.cfg.Now())
			if ok {
				return i, nil
			}
			if until >= 0 && (wait < 0 || until < wait) {
				wait = until
			}
		}
		if exclude >= 0 {
			// A hedge never waits for capacity; it either finds a spare
			// worker now or stays unhedged.
			return -1, fmt.Errorf("dispatch: no spare worker to hedge on")
		}
		if wait < 0 {
			// Every breaker is half-open with its probe in flight; yield
			// briefly until one resolves.
			wait = time.Millisecond
		}
		c.cfg.Sleep(wait)
	}
}

// attempt sends the query to the primary worker and, if HedgeAfter
// passes without an answer, duplicates it onto a spare worker. The
// first full answer wins; every successful fire delivers (and journals)
// its own answer, so a double success exercises the idempotent merge.
func (c *coordinator) attempt(g *group, primary int) error {
	type outcome struct {
		res    *routing.Result
		worker int
		err    error
	}
	ch := make(chan outcome, 2)
	fire := func(worker int) {
		defer c.fires.Done()
		res, err := c.call(g, worker)
		if err == nil {
			c.deliver(g, res, worker)
		}
		ch <- outcome{res: res, worker: worker, err: err}
	}
	c.fires.Add(1)
	go fire(primary)

	var hedgeTimer <-chan struct{}
	if c.cfg.HedgeAfter > 0 && len(c.lanes) > 1 {
		hedgeTimer = c.after(c.cfg.HedgeAfter)
	}
	outstanding := 1
	var lastErr error
	for {
		select {
		case o := <-ch:
			outstanding--
			if o.err == nil {
				if o.worker != primary {
					c.mu.Lock()
					c.stats.HedgeWins++
					c.mu.Unlock()
				}
				return nil
			}
			lastErr = o.err
			if outstanding == 0 {
				return lastErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			spare, err := c.pickWorker(primary)
			if err != nil {
				continue // no spare worker: the primary stays unhedged
			}
			c.mu.Lock()
			c.stats.Hedges++
			c.mu.Unlock()
			c.cfg.Live.hedge()
			c.fires.Add(1)
			go fire(spare)
			outstanding++
		}
	}
}

// after returns a channel that closes once the configured sleep has
// elapsed — a timer built from the injected Sleep so tests control it.
func (c *coordinator) after(d time.Duration) <-chan struct{} {
	ch := make(chan struct{})
	go func() {
		c.cfg.Sleep(d)
		close(ch)
	}()
	return ch
}

// call performs one leased attempt against one worker: grant the lease,
// bound the attempt by min(LeaseTTL, RequestTimeout), send, and settle
// the breaker and lease books on the way out.
func (c *coordinator) call(g *group, worker int) (*routing.Result, error) {
	ws := c.lanes[worker]
	c.mu.Lock()
	c.stats.LeasesGranted++
	c.stats.Calls++
	c.mu.Unlock()
	c.cfg.Live.leaseGranted()
	defer c.cfg.Live.leaseSettled()

	bound := c.cfg.LeaseTTL
	leaseBounds := true
	if t := c.cfg.RequestTimeout; t > 0 && t < bound {
		bound = t
		leaseBounds = false
	}
	ctx, cancel := context.WithTimeout(c.runCtx, bound)
	defer cancel()

	res, err := postWhatif(ctx, c.client, ws.url, g.body)
	if err != nil {
		if c.runCtx.Err() != nil {
			return nil, c.runCtx.Err() // stopped, not a worker fault
		}
		if errors.Is(err, errShed) {
			c.mu.Lock()
			c.stats.Shed++
			c.mu.Unlock()
		}
		if errors.Is(ctx.Err(), context.DeadlineExceeded) && leaseBounds {
			// The lease, not the per-request timeout, was the binding
			// constraint: this attempt's assignment expired.
			c.mu.Lock()
			c.stats.LeasesExpired++
			c.mu.Unlock()
			err = fmt.Errorf("lease expired after %v: %w", c.cfg.LeaseTTL, err)
		}
		ws.breaker.failure(c.cfg.Now())
		return nil, err
	}
	ws.breaker.success()
	return res, nil
}

// deliver journals the answer to the worker's lane and records it for
// the report. Duplicate deliveries (a hedge pair both succeeding) are
// journaled again — the merge collapses identical records — and
// counted. After an abort, answers are dropped unjournaled, like a
// killed process.
func (c *coordinator) deliver(g *group, res *routing.Result, worker int) {
	ws := c.lanes[worker]
	c.mu.Lock()
	if c.aborted || c.firstErr != nil {
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	appended := 0
	ws.jmu.Lock()
	if ws.journal != nil {
		for _, idx := range g.indices {
			if err := ws.journal.Append(sweepfarm.Point{Index: idx, Result: res}); err != nil {
				ws.jmu.Unlock()
				c.fail(err)
				return
			}
			appended++
		}
	}
	ws.jmu.Unlock()

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.JournalRecords += appended
	if _, dup := c.done[g.indices[0]]; dup {
		c.stats.DupDeliveries++
		return
	}
	for _, idx := range g.indices {
		c.done[idx] = res
	}
	c.delivered++
	c.cfg.Live.deliver()
	if c.cfg.AbortAfter > 0 && c.delivered >= c.cfg.AbortAfter {
		c.abortLocked()
	}
}

// snapshotStats folds the breaker counters into a copy of the stats.
func (c *coordinator) snapshotStats() *Stats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	for _, ws := range c.lanes {
		opened, reclosed := ws.breaker.counters()
		st.BreakerOpens += opened
		st.BreakerCloses += reclosed
	}
	return &st
}
