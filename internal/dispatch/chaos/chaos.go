// Package chaos is a deterministic fault-injecting middleman for the
// dispatch coordinator's tests: it wraps a real worker handler (a
// bfserve serve.Server) and, per request ordinal, either passes the
// request through or injects one of the failure modes a lossy fleet
// produces — severed connections, long delays, HTTP 500s, truncated
// response bodies, and duplicated response bodies.
//
// Faults are chosen by a Schedule, a pure function of the request
// ordinal, so a test names its exact failure pattern ("drop every
// third request") instead of seeding a die. The proxy holds no clock
// and no randomness of its own.
package chaos

import (
	"bytes"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Fault is one injected failure mode.
type Fault int

const (
	// Pass forwards the request untouched.
	Pass Fault = iota
	// Drop accepts the request and severs the connection without
	// answering — the client sees an unexpected EOF mid-response.
	Drop
	// Delay holds the request for the proxy's Delay duration before
	// forwarding it, manufacturing a straggler for hedging to beat.
	Delay
	// Error500 answers 500 without consulting the worker.
	Error500
	// Truncate forwards the request but cuts the response body short
	// while declaring the full Content-Length, so the client reads a
	// torn body.
	Truncate
	// Duplicate forwards the request and sends the response body twice
	// under a doubled Content-Length — syntactically whole, semantically
	// two documents.
	Duplicate
)

// String names the fault for test diagnostics.
func (f Fault) String() string {
	switch f {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error500:
		return "error500"
	case Truncate:
		return "truncate"
	case Duplicate:
		return "duplicate"
	}
	return "unknown"
}

// Schedule maps a 0-based request ordinal to the fault injected on it.
type Schedule func(n int) Fault

// Cycle repeats the given pattern forever; an empty pattern passes
// everything.
func Cycle(pattern ...Fault) Schedule {
	return func(n int) Fault {
		if len(pattern) == 0 {
			return Pass
		}
		return pattern[n%len(pattern)]
	}
}

// FirstN injects f on the first n requests, then passes: the "worker
// was sick, then recovered" shape breakers and retries must ride out.
func FirstN(n int, f Fault) Schedule {
	return func(i int) Fault {
		if i < n {
			return f
		}
		return Pass
	}
}

// Proxy is the middleman handler. Zero value is not usable; set Next
// and Schedule.
type Proxy struct {
	// Next is the real worker handler.
	Next http.Handler
	// Schedule picks the fault per request ordinal.
	Schedule Schedule
	// Delay is how long a Delay fault holds the request (default 50ms).
	Delay time.Duration
	// Sleep replaces time.Sleep for Delay faults; nil selects
	// time.Sleep.
	Sleep func(time.Duration)

	mu       sync.Mutex
	requests int
	injected map[Fault]int
}

// Requests returns how many requests the proxy has seen.
func (p *Proxy) Requests() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.requests
}

// Injected returns how many times the given fault fired.
func (p *Proxy) Injected(f Fault) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[f]
}

// next assigns the request its ordinal and fault.
func (p *Proxy) next() Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.requests
	p.requests++
	f := Pass
	if p.Schedule != nil {
		f = p.Schedule(n)
	}
	if p.injected == nil {
		p.injected = make(map[Fault]int)
	}
	p.injected[f]++
	return f
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch f := p.next(); f {
	case Drop:
		hj, ok := w.(http.Hijacker)
		if !ok {
			// No raw connection to sever (e.g. an in-process
			// ResponseRecorder); a 500 is the closest observable fault.
			http.Error(w, "chaos: drop", http.StatusInternalServerError)
			return
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			http.Error(w, "chaos: drop", http.StatusInternalServerError)
			return
		}
		_ = conn.Close()
	case Delay:
		d := p.Delay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		sleep := p.Sleep
		if sleep == nil {
			sleep = time.Sleep
		}
		sleep(d)
		p.Next.ServeHTTP(w, r)
	case Error500:
		http.Error(w, "chaos: injected failure", http.StatusInternalServerError)
	case Truncate:
		p.mangle(w, r, false)
	case Duplicate:
		p.mangle(w, r, true)
	default:
		p.Next.ServeHTTP(w, r)
	}
}

// mangle runs the worker into a buffer and replays its answer with a
// lying Content-Length: the full length over half the bytes (truncate)
// or double the length over two copies (duplicate). Either way the
// bytes on the wire are not the answer the worker gave.
func (p *Proxy) mangle(w http.ResponseWriter, r *http.Request, duplicate bool) {
	rec := &recorder{h: make(http.Header), status: http.StatusOK}
	p.Next.ServeHTTP(rec, r)
	body := rec.body.Bytes()
	if len(body) < 2 {
		// Nothing to meaningfully corrupt; relay verbatim.
		relayHeaders(w.Header(), rec.h)
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
		return
	}
	relayHeaders(w.Header(), rec.h)
	if duplicate {
		w.Header().Set("Content-Length", strconv.Itoa(2*len(body)))
		w.WriteHeader(rec.status)
		_, _ = w.Write(body)
		_, _ = w.Write(body)
		return
	}
	// Declare everything, deliver half: when the handler returns short
	// of its declared length, net/http severs the connection and the
	// client reads an unexpected EOF mid-body.
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(rec.status)
	_, _ = w.Write(body[:len(body)/2])
}

// relayHeaders copies the worker's headers minus Content-Length, which
// the mangler sets itself.
func relayHeaders(dst, src http.Header) {
	for k, vs := range src {
		if k == "Content-Length" {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// recorder captures a handler's full answer so mangle can lie about it.
type recorder struct {
	h      http.Header
	status int
	body   bytes.Buffer
}

func (r *recorder) Header() http.Header { return r.h }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
