package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

const payload = `{"answer":"0123456789"}`

// newProxy wraps a fixed-payload backend and returns the test server.
func newProxy(t *testing.T, sched Schedule, sleep func(time.Duration)) (*Proxy, *httptest.Server) {
	t.Helper()
	backend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, payload)
	})
	p := &Proxy{Next: backend, Schedule: sched, Delay: 5 * time.Millisecond, Sleep: sleep}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

// TestFaultBehaviors pins what each fault looks like from the client
// side: the exact wire-level symptom the dispatch client must survive.
func TestFaultBehaviors(t *testing.T) {
	var slept time.Duration
	p, ts := newProxy(t,
		Cycle(Pass, Error500, Truncate, Duplicate, Delay, Drop),
		func(d time.Duration) { slept += d })

	get := func() (*http.Response, error) { return http.Get(ts.URL) }

	// Pass: the payload verbatim.
	resp, err := get()
	if err != nil {
		t.Fatalf("pass: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(b) != payload {
		t.Fatalf("pass gave %d %q", resp.StatusCode, b)
	}

	// Error500: an injected failure, backend never consulted.
	resp, err = get()
	if err != nil {
		t.Fatalf("error500: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("error500 gave %d", resp.StatusCode)
	}

	// Truncate: full Content-Length, torn body, read errors out.
	resp, err = get()
	if err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if got := resp.ContentLength; got != int64(len(payload)) {
		t.Fatalf("truncate declared %d bytes, want %d", got, len(payload))
	}
	b, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Fatalf("truncated body read cleanly: %q", b)
	}

	// Duplicate: the payload twice under a doubled Content-Length.
	resp, err = get()
	if err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != payload+payload {
		t.Fatalf("duplicate gave %q", b)
	}

	// Delay: the injected sleep ran, then the payload came through.
	resp, err = get()
	if err != nil {
		t.Fatalf("delay: %v", err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(b) != payload || slept != 5*time.Millisecond {
		t.Fatalf("delay gave %q after sleeping %v", b, slept)
	}

	// Drop: the connection dies without an answer. A fresh transport
	// keeps Go's client from transparently retrying the severed request
	// on a pooled connection, so the failure stays observable.
	fresh := &http.Client{Transport: &http.Transport{}}
	if resp, err := fresh.Get(ts.URL); err == nil {
		resp.Body.Close()
		t.Fatal("dropped request still answered")
	}
	fresh.CloseIdleConnections()

	if p.Requests() != 6 {
		t.Fatalf("proxy saw %d requests, want 6", p.Requests())
	}
	for _, f := range []Fault{Pass, Error500, Truncate, Duplicate, Delay, Drop} {
		if p.Injected(f) != 1 {
			t.Fatalf("fault %v fired %d times, want 1", f, p.Injected(f))
		}
	}
}

// TestSchedules pins the schedule combinators.
func TestSchedules(t *testing.T) {
	cyc := Cycle(Drop, Pass)
	for n, want := range []Fault{Drop, Pass, Drop, Pass} {
		if got := cyc(n); got != want {
			t.Fatalf("Cycle(%d) = %v, want %v", n, got, want)
		}
	}
	if got := Cycle()(3); got != Pass {
		t.Fatalf("empty Cycle = %v, want Pass", got)
	}
	first := FirstN(2, Error500)
	for n, want := range []Fault{Error500, Error500, Pass, Pass} {
		if got := first(n); got != want {
			t.Fatalf("FirstN(%d) = %v, want %v", n, got, want)
		}
	}
	names := map[Fault]string{Pass: "pass", Drop: "drop", Delay: "delay",
		Error500: "error500", Truncate: "truncate", Duplicate: "duplicate", Fault(99): "unknown"}
	for f, want := range names {
		if f.String() != want {
			t.Fatalf("Fault(%d).String() = %q, want %q", f, f.String(), want)
		}
	}
}
