package dispatch

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"bfvlsi/internal/dispatch/chaos"
	"bfvlsi/internal/serve"
	"bfvlsi/internal/wire"
)

// Ad-hoc measurement harness for EXPERIMENTS.md E26. Run with
//
//	E26=1 go test -run TestE26Measure -v ./internal/dispatch
//
// Workers answer behind a chaos proxy that injects a fixed 30ms delay
// on every request (a uniform service time), plus an Error500 on every
// k-th request for the chaos-rate axis.
func TestE26Measure(t *testing.T) {
	if os.Getenv("E26") == "" {
		t.Skip("set E26=1 to run the measurement harness")
	}
	spec := testSpec()
	// Widen the sweep so there is real parallelism to expose: rates x
	// seeds well beyond the worker counts measured (25 points).
	spec.Points = spec.Points[:1] // keep the control
	for _, rate := range []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06} {
		for seed := int64(1); seed <= 4; seed++ {
			spec.Points = append(spec.Points, &wire.FaultSpec{N: 3, LinkRate: rate, Seed: seed})
		}
	}

	mkWorker := func(sched chaos.Schedule) *httptest.Server {
		var mu sync.Mutex
		now := time.Unix(1700000000, 0)
		h := serve.New(serve.Config{
			CacheEntries: 256,
			MaxDim:       8,
			Now: func() time.Time {
				mu.Lock()
				defer mu.Unlock()
				now = now.Add(time.Millisecond)
				return now
			},
		})
		return httptest.NewServer(&chaos.Proxy{Next: h.Handler(), Schedule: sched, Delay: 30 * time.Millisecond})
	}

	serial := serialEncoding(t, spec)

	measure := func(workers int, sched chaos.Schedule, label string) {
		urls := make([]string, workers)
		for i := range urls {
			srv := mkWorker(sched)
			defer srv.Close()
			urls[i] = srv.URL
		}
		cfg := testConfig(urls...)
		cfg.Client = &http.Client{Transport: &http.Transport{}}
		cfg.BackoffBase = 2 * time.Millisecond
		cfg.BackoffCap = 20 * time.Millisecond
		start := time.Now()
		rep, st, err := Run(spec, cfg)
		elapsed := time.Since(start)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if string(mustEncode(t, rep)) != string(serial) {
			t.Fatalf("%s: bytes diverge from serial", label)
		}
		pts := float64(st.Points)
		fmt.Printf("E26 %-28s workers=%d points=%d groups=%d elapsed=%7.0fms pts/s=%6.1f calls=%d retries=%d\n",
			label, workers, st.Points, st.Groups, float64(elapsed.Milliseconds()), pts/elapsed.Seconds(), st.Calls, st.Retries)
	}

	everyKth := func(k int) chaos.Schedule {
		return func(n int) chaos.Fault {
			// Always keep the fixed service delay; overlay a 500 on
			// every k-th request.
			if k > 0 && n%k == k-1 {
				return chaos.Error500
			}
			return chaos.Delay
		}
	}

	for _, w := range []int{1, 2, 4, 8} {
		measure(w, chaos.Cycle(chaos.Delay), fmt.Sprintf("clean w=%d", w))
	}
	for _, k := range []int{0, 4, 2} {
		rate := "0%"
		if k > 0 {
			rate = fmt.Sprintf("%d%%", 100/k)
		}
		measure(4, everyKth(k), fmt.Sprintf("chaos500 rate=%s", rate))
	}
}

func mustEncode(t *testing.T, rep interface{ Encode() ([]byte, error) }) []byte {
	t.Helper()
	b, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
