package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, KindStraight)
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty graph not empty")
	}
	if !g.Connected() {
		t.Error("empty graph should be connected by convention")
	}
}

func TestAddEdgeAndDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, KindStraight)
	g.AddEdge(1, 2, KindCross)
	g.AddEdge(1, 2, KindCross) // parallel
	g.AddEdge(3, 3, KindSwap)  // loop
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	wantDeg := []int{1, 3, 2, 1}
	for u, w := range wantDeg {
		if g.Degree(u) != w {
			t.Errorf("Degree(%d) = %d, want %d", u, g.Degree(u), w)
		}
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	h := g.DegreeHistogram()
	if h[1] != 2 || h[2] != 1 || h[3] != 1 {
		t.Errorf("DegreeHistogram = %v", h)
	}
	if err := g.HandshakeOK(); err != nil {
		t.Error(err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, fn := range []func(){
		func() { g.AddEdge(-1, 0, KindStraight) },
		func() { g.AddEdge(0, 2, KindStraight) },
		func() { g.AddEdge(0, 1, KindAny) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := New(3)
	g.AddEdge(2, 0, KindCross)
	g.AddEdge(1, 0, KindStraight)
	g.AddEdge(2, 2, KindSwap)
	es := g.Edges()
	want := []Edge{{0, 1, KindStraight}, {0, 2, KindCross}, {2, 2, KindSwap}}
	if len(es) != len(want) {
		t.Fatalf("Edges = %v", es)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("Edges[%d] = %v, want %v", i, es[i], want[i])
		}
	}
}

func TestCountEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, KindStraight)
	g.AddEdge(1, 2, KindCross)
	g.AddEdge(0, 2, KindCross)
	if g.CountEdges(KindCross) != 2 || g.CountEdges(KindStraight) != 1 || g.CountEdges(KindAny) != 3 {
		t.Errorf("CountEdges wrong: cross=%d straight=%d any=%d",
			g.CountEdges(KindCross), g.CountEdges(KindStraight), g.CountEdges(KindAny))
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := ring(5)
	perm := []int{4, 3, 2, 1, 0}
	h := g.Relabel(perm)
	if !SameEdgeMultiset(g, h, true) {
		t.Error("ring reversed should be the same edge multiset")
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := ring(3)
	for _, perm := range [][]int{{0, 1}, {0, 0, 1}, {0, 1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Relabel(%v) did not panic", perm)
				}
			}()
			g.Relabel(perm)
		}()
	}
}

func TestSameEdgeMultisetKindSensitivity(t *testing.T) {
	a := New(2)
	a.AddEdge(0, 1, KindStraight)
	b := New(2)
	b.AddEdge(0, 1, KindCross)
	if SameEdgeMultiset(a, b, false) {
		t.Error("kinds differ; should not match with ignoreKind=false")
	}
	if !SameEdgeMultiset(a, b, true) {
		t.Error("should match with ignoreKind=true")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, KindStraight)
	g.AddEdge(1, 2, KindStraight)
	g.AddEdge(3, 4, KindStraight)
	comps, assign := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if assign[0] != assign[2] || assign[3] != assign[4] || assign[0] == assign[3] || assign[5] == assign[0] {
		t.Errorf("assignment = %v", assign)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := ring(6)
	d := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("BFS[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	if g.Diameter() != 3 {
		t.Errorf("Diameter = %d, want 3", g.Diameter())
	}
	g2 := New(3)
	if g2.Diameter() != -1 {
		t.Error("disconnected diameter should be -1")
	}
}

func TestAverageDistanceRing(t *testing.T) {
	g := ring(4)
	// distances from any node: 1,2,1 -> avg = 4/3
	got := g.AverageDistance()
	if got < 1.333 || got > 1.334 {
		t.Errorf("AverageDistance = %v", got)
	}
}

func TestCutEdges(t *testing.T) {
	g := ring(6)
	part := []int{0, 0, 0, 1, 1, 1}
	cut, per := g.CutEdges(part)
	if cut != 2 {
		t.Errorf("cut = %d, want 2", cut)
	}
	if per[0] != 2 || per[1] != 2 {
		t.Errorf("per-part = %v", per)
	}
}

func TestContract(t *testing.T) {
	g := ring(6)
	super := []int{0, 0, 1, 1, 2, 2}
	h := g.Contract(super)
	if h.NumNodes() != 3 || h.NumEdges() != 3 {
		t.Fatalf("contract nodes=%d edges=%d", h.NumNodes(), h.NumEdges())
	}
	// quotient of a 6-ring by 3 pairs is a triangle (simple here).
	if !SameEdgeMultiset(h.Simple(), ring(3), true) {
		t.Error("quotient is not a triangle")
	}
}

func TestSimple(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, KindStraight)
	g.AddEdge(0, 1, KindCross)
	g.AddEdge(1, 1, KindSwap)
	s := g.Simple()
	if s.NumEdges() != 1 {
		t.Errorf("Simple edges = %d, want 1", s.NumEdges())
	}
}

// Property: for random graphs, Relabel by a random permutation preserves
// the degree histogram and edge count, and double relabel by inverse is
// identity.
func TestRelabelProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n), KindStraight)
		}
		perm := rng.Perm(n)
		h := g.Relabel(perm)
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		dg, dh := g.DegreeHistogram(), h.DegreeHistogram()
		if len(dg) != len(dh) {
			return false
		}
		for k, v := range dg {
			if dh[k] != v {
				return false
			}
		}
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		return SameEdgeMultiset(g, h.Relabel(inv), false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBFSRing(b *testing.B) {
	g := ring(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.BFS(i % 4096)
	}
}

func BenchmarkEdges(b *testing.B) {
	g := ring(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Edges()
	}
}
