// Package graph provides a compact undirected multigraph used as the
// common substrate for every interconnection network in this repository
// (butterflies, hypercubes, swap networks, indirect swap networks).
//
// Nodes are dense integer IDs 0..N-1; the network packages define the
// mapping between structured addresses (row, stage, bit groups) and IDs.
// Edges carry a small integer Kind so that straight, cross, and swap links
// can be distinguished, counted, and filtered.
package graph

import (
	"fmt"
	"sort"
)

// EdgeKind tags the role of a link in the network it came from.
type EdgeKind uint8

// Edge kinds used across the repository. Packages may define additional
// kinds starting from KindUser.
const (
	KindAny      EdgeKind = 0 // wildcard in queries; never stored
	KindStraight EdgeKind = 1
	KindCross    EdgeKind = 2
	KindSwap     EdgeKind = 3
	KindCube     EdgeKind = 4 // hypercube dimension link
	KindUser     EdgeKind = 8
)

func (k EdgeKind) String() string {
	switch k {
	case KindAny:
		return "any"
	case KindStraight:
		return "straight"
	case KindCross:
		return "cross"
	case KindSwap:
		return "swap"
	case KindCube:
		return "cube"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// HalfEdge is one direction of an undirected edge as stored in an
// adjacency list.
type HalfEdge struct {
	To   int
	Kind EdgeKind
}

// Edge is an undirected edge in canonical form (U <= V).
type Edge struct {
	U, V int
	Kind EdgeKind
}

// Graph is an undirected multigraph. The zero value is an empty graph with
// no nodes; use New to create one with a fixed node count.
type Graph struct {
	adj   [][]HalfEdge
	edges int
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{adj: make([][]HalfEdge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges (multi-edges counted
// with multiplicity).
func (g *Graph) NumEdges() int { return g.edges }

// AddEdge inserts an undirected edge of the given kind between u and v.
// Self-loops and parallel edges are permitted (the paper's swap-butterfly
// doubles links, and swap steps may have fixed points).
func (g *Graph) AddEdge(u, v int, kind EdgeKind) {
	g.check(u)
	g.check(v)
	if kind == KindAny {
		panic("graph: KindAny cannot be stored")
	}
	g.adj[u] = append(g.adj[u], HalfEdge{To: v, Kind: kind})
	if u != v {
		g.adj[v] = append(g.adj[v], HalfEdge{To: u, Kind: kind})
	}
	g.edges++
}

func (g *Graph) check(u int) {
	if u < 0 || u >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, len(g.adj)))
	}
}

// Neighbors returns the adjacency list of u. The returned slice must not
// be modified. A self-loop appears once.
func (g *Graph) Neighbors(u int) []HalfEdge {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u; a self-loop contributes 1 (it is a
// single port in the layout models of the paper).
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// MaxDegree returns the maximum node degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram maps degree -> number of nodes with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := range g.adj {
		h[len(g.adj[u])]++
	}
	return h
}

// Edges returns all undirected edges in canonical sorted order
// (by U, then V, then Kind). Multi-edges appear with multiplicity.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.To > u || (he.To == u) {
				e := Edge{U: u, V: he.To, Kind: he.Kind}
				if he.To == u {
					// self-loop stored once
					out = append(out, e)
					continue
				}
				out = append(out, e)
			}
		}
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		if es[i].V != es[j].V {
			return es[i].V < es[j].V
		}
		return es[i].Kind < es[j].Kind
	})
}

// CountEdges returns the number of edges of the given kind
// (KindAny counts all).
func (g *Graph) CountEdges(kind EdgeKind) int {
	if kind == KindAny {
		return g.edges
	}
	n := 0
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.Kind == kind && (he.To >= u) {
				n++
			}
		}
	}
	return n
}

// HandshakeOK verifies the handshake lemma: the sum of adjacency entries
// equals 2*edges - selfloops. It returns an error describing any
// inconsistency in the internal representation.
func (g *Graph) HandshakeOK() error {
	half := 0
	loops := 0
	for u := range g.adj {
		for _, he := range g.adj[u] {
			half++
			if he.To == u {
				loops++
			}
			if he.To < 0 || he.To >= len(g.adj) {
				return fmt.Errorf("graph: dangling edge %d->%d", u, he.To)
			}
		}
	}
	if half != 2*g.edges-loops {
		return fmt.Errorf("graph: handshake violated: half-edges=%d edges=%d loops=%d", half, g.edges, loops)
	}
	return nil
}

// Relabel returns a new graph in which node u of g becomes node perm[u].
// perm must be a permutation of 0..N-1; Relabel panics otherwise.
func (g *Graph) Relabel(perm []int) *Graph {
	n := len(g.adj)
	if len(perm) != n {
		panic("graph: Relabel permutation length mismatch")
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic("graph: Relabel argument is not a permutation")
		}
		seen[p] = true
	}
	h := New(n)
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.To > u || he.To == u {
				h.AddEdge(perm[u], perm[he.To], he.Kind)
			}
		}
	}
	return h
}

// SameEdgeMultiset reports whether g and h have identical node counts and
// identical multisets of undirected edges. When ignoreKind is true, edge
// kinds are not compared (two networks can be the same graph even if their
// links are classified differently, e.g. a swap-butterfly's doubled swap
// links vs. a butterfly's straight/cross links).
func SameEdgeMultiset(g, h *Graph, ignoreKind bool) bool {
	if g.NumNodes() != h.NumNodes() || g.NumEdges() != h.NumEdges() {
		return false
	}
	eg, eh := g.Edges(), h.Edges()
	if ignoreKind {
		strip := func(es []Edge) {
			for i := range es {
				es[i].Kind = 0
			}
			sortEdges(es)
		}
		strip(eg)
		strip(eh)
	}
	for i := range eg {
		if eg[i] != eh[i] {
			return false
		}
	}
	return true
}

// Components returns the connected components as a slice of node slices,
// and an array mapping node -> component index.
func (g *Graph) Components() ([][]int, []int) {
	n := len(g.adj)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		members := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, he := range g.adj[u] {
				if comp[he.To] < 0 {
					comp[he.To] = id
					queue = append(queue, he.To)
					members = append(members, he.To)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	return comps, comp
}

// Connected reports whether the graph is connected (true for the empty
// graph and single-node graph).
func (g *Graph) Connected() bool {
	comps, _ := g.Components()
	return len(comps) <= 1
}

// BFS returns the distance (in hops) from src to every node; unreachable
// nodes get -1.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, he := range g.adj[u] {
			if dist[he.To] < 0 {
				dist[he.To] = dist[u] + 1
				queue = append(queue, he.To)
			}
		}
	}
	return dist
}

// Diameter returns the largest finite BFS distance over all source nodes.
// It is O(N * (N + E)) and intended for the small networks used in tests.
// Returns -1 for a disconnected graph.
func (g *Graph) Diameter() int {
	if !g.Connected() {
		return -1
	}
	d := 0
	for u := range g.adj {
		for _, x := range g.BFS(u) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// AverageDistance returns the mean BFS distance over ordered pairs of
// distinct nodes. Returns -1 for a disconnected or trivial graph.
func (g *Graph) AverageDistance() float64 {
	n := len(g.adj)
	if n < 2 || !g.Connected() {
		return -1
	}
	total := 0
	for u := 0; u < n; u++ {
		for _, x := range g.BFS(u) {
			total += x
		}
	}
	return float64(total) / float64(n*(n-1))
}

// CutEdges counts edges whose endpoints lie in different parts under the
// given node -> part assignment. Self-loops never cross. The second result
// is per-part external edge counts (each crossing edge counted once for
// each of its two parts).
func (g *Graph) CutEdges(part []int) (int, map[int]int) {
	if len(part) != len(g.adj) {
		panic("graph: CutEdges partition length mismatch")
	}
	cut := 0
	per := make(map[int]int)
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.To < u {
				continue // count each undirected edge once
			}
			if he.To == u {
				continue
			}
			if part[u] != part[he.To] {
				cut++
				per[part[u]]++
				per[part[he.To]]++
			}
		}
	}
	return cut, per
}

// Contract returns the quotient multigraph under the node -> supernode
// assignment super (values must be dense in 0..max). Edges inside a
// supernode are dropped; crossing edges become (multi-)edges between
// supernodes, retaining their kind.
func (g *Graph) Contract(super []int) *Graph {
	if len(super) != len(g.adj) {
		panic("graph: Contract assignment length mismatch")
	}
	max := -1
	for _, s := range super {
		if s < 0 {
			panic("graph: Contract negative supernode")
		}
		if s > max {
			max = s
		}
	}
	h := New(max + 1)
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.To < u || he.To == u {
				continue
			}
			if super[u] != super[he.To] {
				h.AddEdge(super[u], super[he.To], he.Kind)
			}
		}
	}
	return h
}

// Simple returns a copy of g with parallel edges merged (keeping the kind
// of the first occurrence) and self-loops removed.
func (g *Graph) Simple() *Graph {
	h := New(len(g.adj))
	seen := make(map[[2]int]bool)
	for u := range g.adj {
		for _, he := range g.adj[u] {
			if he.To <= u {
				continue
			}
			key := [2]int{u, he.To}
			if seen[key] {
				continue
			}
			seen[key] = true
			h.AddEdge(u, he.To, he.Kind)
		}
	}
	return h
}
