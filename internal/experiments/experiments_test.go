package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// Every experiment must run cleanly in quick mode: the reproduction
// harness itself is under test.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ex.Run(&Config{W: &buf, Quick: true}); err != nil {
				t.Fatalf("%s: %v", ex.Name, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", ex.Name)
			}
		})
	}
}

// Golden content markers: the experiments must report the paper's
// headline numbers.
func TestExperimentGoldenMarkers(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	cases := []struct {
		name    string
		markers []string
	}{
		{"e1", []string{"VERIFIED", "butterfly row 2 (paper: 2)"}},
		{"e4", []string{"20", "floor(N^2/4)"}},
		{"e5", []string{"0.7000", "1.2000"}},
		{"e9", []string{"409600", "160000", "78400", "171"}},
		{"e12", []string{"max |err|"}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := Run(tc.name, &Config{W: &buf, Quick: true}); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		out := buf.String()
		for _, m := range tc.markers {
			if !strings.Contains(out, m) {
				t.Errorf("%s output missing %q", tc.name, m)
			}
		}
	}
}

func TestRunUnknownName(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &Config{W: &buf}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestAllNamesUniqueAndOrdered(t *testing.T) {
	seen := map[string]bool{}
	for _, ex := range All() {
		if seen[ex.Name] {
			t.Errorf("duplicate experiment %s", ex.Name)
		}
		seen[ex.Name] = true
		if ex.Desc == "" || ex.Run == nil {
			t.Errorf("experiment %s incomplete", ex.Name)
		}
	}
	if len(seen) != 20 {
		t.Errorf("have %d experiments, want 18", len(seen))
	}
}
