// Package experiments implements the reproduction harness: one function
// per experiment of the DESIGN.md index (E1-E12 from the paper, E13-E18
// extensions), each regenerating its table or figure from the live
// implementation. The cmd/bftables binary is a thin shell over this
// package, which keeps every experiment under test.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Config carries the output sink and effort level into an experiment.
type Config struct {
	// W receives the experiment's report.
	W io.Writer
	// Quick shrinks the slowest sweeps for smoke runs.
	Quick bool
}

func (c *Config) tw() *tabwriter.Writer {
	return tabwriter.NewWriter(c.W, 2, 4, 2, ' ', 0)
}

// Experiment is a named, runnable experiment.
type Experiment struct {
	Name string
	Desc string
	Run  func(c *Config) error
}

// All returns the experiments in index order.
func All() []Experiment {
	return []Experiment{
		{"e1", "Fig. 1: 4x4 ISN -> butterfly transformation", e1},
		{"e2", "Fig. 2: 8x8 / 16x16 swap-butterflies", e2},
		{"e3", "Fig. 3: recursive grid layout structure", e3},
		{"e4", "Fig. 4: collinear layouts of K_N", e4},
		{"e5", "Sec. 2.3: off-module links vs baseline", e5},
		{"e6", "Thm. 2.1: nucleus packaging bounds", e6},
		{"e7", "Sec. 3: Thompson-model area and wire length", e7},
		{"e8", "Thm. 4.1: multilayer area, wire length, volume", e8},
		{"e9", "Sec. 5.2: hierarchical chip/board example", e9},
		{"e10", "Sec. 2.3: injection-rate lower bound (simulated)", e10},
		{"e11", "Sec. 3.3/4.2: node-size scalability", e11},
		{"e12", "Sec. 2.2: FFT along ISN stages", e12},
		{"e13", "extension: hypercube & torus layouts (conclusion)", e13},
		{"e14", "extension: Benes rearrangeability (introduction)", e14},
		{"e15", "extension: adversarial traffic patterns", e15},
		{"e16", "extension: 3-level packaging & cost model", e16},
		{"e17", "extension: Batcher bitonic sorter layout", e17},
		{"e18", "extension: wire-length distribution & layer usage", e18},
		{"e19", "extension: 3-D stacked layouts & bisection bounds", e19},
		{"e20", "extension: finite buffers, deadlock, virtual channels", e20},
	}
}

// Run executes the named experiment into c.W.
func Run(name string, c *Config) error {
	for _, ex := range All() {
		if ex.Name == name {
			return ex.Run(c)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", name)
}
