package experiments

import (
	"fmt"
	"math/rand"

	"bfvlsi/internal/analysis"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/fftsim"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/isn"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/thompson"
)

// e1 reproduces Figure 1: the 4x4 ISN with k1 = k2 = 1 and its
// transformation into a 4x4 butterfly, with the explicit row relabeling.
func e1(c *Config) error {
	spec := bitutil.MustGroupSpec(1, 1)
	in := isn.New(spec)
	fmt.Fprintf(c.W, "ISN%v: %d rows x %d stages, steps:\n", spec, in.Rows, in.Stages)
	for j, st := range in.Steps {
		fmt.Fprintf(c.W, "  step %d: %v\n", j, st)
	}
	sb := isn.Transform(spec)
	if err := sb.VerifyAutomorphism(); err != nil {
		return err
	}
	fmt.Fprintf(c.W, "swap-butterfly: %d rows x %d stages (automorphism of B_%d: VERIFIED)\n",
		sb.Rows, sb.Stages, sb.ButterflyDim())
	w := c.tw()
	fmt.Fprintf(w, "row\tstage0\tstage1\tstage2\t(butterfly row labels)\n")
	for r := 0; r < sb.Rows; r++ {
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\n", r,
			sb.RowLabel[sb.ID(r, 0)], sb.RowLabel[sb.ID(r, 1)], sb.RowLabel[sb.ID(r, 2)])
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(c.W, "paper check: node (1,2) maps to butterfly row %d (paper: 2)\n",
		sb.RowLabel[sb.ID(1, 2)])
	return nil
}

// e2 reproduces Figure 2: 8x8 and 16x16 swap-butterflies.
func e2(c *Config) error {
	for _, spec := range []bitutil.GroupSpec{
		bitutil.MustGroupSpec(2, 1),
		bitutil.MustGroupSpec(1, 1, 1),
		bitutil.MustGroupSpec(2, 2),
		bitutil.MustGroupSpec(3, 2),
	} {
		sb := isn.Transform(spec)
		err := sb.VerifyAutomorphism()
		status := "VERIFIED"
		if err != nil {
			status = err.Error()
		}
		fmt.Fprintf(c.W, "%v -> %dx%d swap-butterfly, automorphism of B_%d: %s\n",
			spec, sb.Rows, sb.Rows, sb.ButterflyDim(), status)
		if err != nil {
			return err
		}
		// Print the final-stage relabeling column (as in the figure).
		last := sb.Stages - 1
		fmt.Fprintf(c.W, "  final-stage row labels: ")
		for r := 0; r < sb.Rows; r++ {
			fmt.Fprintf(c.W, "%d ", sb.RowLabel[sb.ID(r, last)])
		}
		fmt.Fprintln(c.W)
	}
	return nil
}

// e3 reproduces the Figure 3 structure: the block grid with its track
// bands and regions, for the paper's spec choice per dimension.
func e3(c *Config) error {
	ns := []int{3, 4, 5, 6, 7, 8, 9}
	if c.Quick {
		ns = []int{3, 4, 5, 6}
	}
	w := c.tw()
	fmt.Fprintf(w, "n\tspec\tblock grid\trows/block\tblock WxH\tband H\tcol W\tlayout WxH\tvalid\n")
	for _, n := range ns {
		spec := thompson.SpecForDim(n)
		res, err := thompson.Build(thompson.Params{Spec: spec})
		if err != nil {
			return err
		}
		valid := "yes"
		if n <= 7 || !c.Quick {
			if err := res.Validate(); err != nil {
				valid = "NO: " + err.Error()
			}
		} else {
			valid = "(skipped)"
		}
		st := res.L.Stats()
		fmt.Fprintf(w, "%d\t%v\t%dx%d\t%d\t%dx%d\t%d\t%d\t%dx%d\t%s\n",
			n, spec, res.GridRows, res.GridCols, res.RowsPerBlock,
			res.BlockW, res.BlockH, res.BandH, res.ColW, st.Width, st.Height, valid)
	}
	return w.Flush()
}

// e4 reproduces Figure 4 and the Appendix B track-count comparison.
func e4(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "N\ttracks (paper scheme)\tfloor(N^2/4)\tgreedy\tChen-Agrawal\tCA/opt\n")
	for _, n := range []int{4, 8, 9, 16, 32, 64} {
		ta, err := collinear.Optimal(n)
		if err != nil {
			return err
		}
		if err := ta.Validate(); err != nil {
			return err
		}
		g, err := collinear.Greedy(n)
		if err != nil {
			return err
		}
		ca := collinear.ChenAgrawalTracks(n)
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.3f\n",
			n, ta.NumTracks, collinear.OptimalTracks(n), g.NumTracks, ca,
			float64(ca)/float64(ta.NumTracks))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	ta, err := collinear.Optimal(9)
	if err != nil {
		return err
	}
	before := ta.MaxWireLength()
	ta.ReorderByDescendingSpan()
	fmt.Fprintf(c.W, "K_9 (Fig. 4): %d tracks; max wire %d -> %d after track reversal\n",
		ta.NumTracks, before, ta.MaxWireLength())
	return nil
}

// e5 reproduces the Section 2.3 off-module-link comparison.
func e5(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "spec\tn\tavg off-links/node (measured)\tpaper formula\tnaive measured\tnaive formula\timprovement\n")
	for _, widths := range [][]int{{2, 2}, {3, 3}, {2, 2, 2}, {3, 3, 3}, {2, 2, 2, 2}, {3, 3, 3, 3}} {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		measured := packaging.RowPartition(sb).Stats().AvgOffLinksPerNode
		formula := packaging.PaperAvgOffLinks(spec.Levels(), spec.GroupWidth(1), spec.TotalBits())
		n := spec.TotalBits()
		bf := butterfly.New(n)
		naive := packaging.NaiveRowPartition(bf, 1<<uint(spec.GroupWidth(1))).Stats().AvgOffLinksPerNode
		naiveFormula := packaging.NaiveAvgOffLinks(n, spec.GroupWidth(1))
		fmt.Fprintf(w, "%v\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.2fx\n",
			spec, n, measured, formula, naive, naiveFormula, naive/measured)
	}
	return w.Flush()
}

// e6 checks Theorem 2.1 over a spec sweep.
func e6(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "spec\tmodules\tmax nodes\tbound 2^k1(k1+1)\tmax off-links\tbound 2^(k1+2)\tok\n")
	for _, widths := range [][]int{{2, 2}, {3, 3}, {2, 2, 2}, {3, 3, 3}, {3, 3, 2}, {3, 2, 2}, {4, 3, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		sb := isn.Transform(spec)
		p := packaging.NucleusPartition(sb)
		st := p.Stats()
		k1 := spec.GroupWidth(1)
		ok := "yes"
		if err := packaging.Theorem21(sb); err != nil {
			ok = err.Error()
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%s\n",
			spec, st.NumModules, st.MaxNodesPerModule, (1<<uint(k1))*(k1+1),
			st.MaxOffLinksPerModu, 1<<uint(k1+2), ok)
	}
	return w.Flush()
}

// e7 reproduces the Section 3 area / wire-length bounds.
func e7(c *Config) error {
	ns := []int{3, 4, 5, 6, 7, 8, 9}
	if c.Quick {
		ns = []int{3, 4, 5, 6}
	}
	w := c.tw()
	fmt.Fprintf(w, "n\tmeasured area\t2^2n\tratio\tN^2/log2^2N\tmeasured maxwire\t2^n\tratio\n")
	for _, n := range ns {
		res, err := thompson.Build(thompson.Params{Spec: thompson.SpecForDim(n)})
		if err != nil {
			return err
		}
		st := res.L.Stats()
		lead := analysis.LeadingAreaExact(n)
		wlead := analysis.LeadingWireExact(n)
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.2f\t%.0f\t%d\t%.0f\t%.2f\n",
			n, st.Area, lead, float64(st.Area)/lead, analysis.ThompsonArea(n),
			st.MaxWireLength, wlead, float64(st.MaxWireLength)/wlead)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "note: the area ratio decreases toward the leading constant 1 as n grows;")
	fmt.Fprintln(c.W, "at feasible n the O(2^{n/3})-wide blocks still contribute visibly (the paper's o() terms).")
	return nil
}

// e8 reproduces Theorem 4.1: the multilayer sweep.
func e8(c *Config) error {
	spec := bitutil.MustGroupSpec(3, 3, 3)
	if c.Quick {
		spec = bitutil.MustGroupSpec(2, 2, 2)
	}
	n := spec.TotalBits()
	w := c.tw()
	fmt.Fprintf(w, "L\tmeasured area\tThm4.1 area\tratio\tmaxwire\t2N/(Llog2N)\tvolume\t4N^2/(Llog2^2N)\n")
	for _, L := range []int{2, 3, 4, 5, 6, 8, 12, 16} {
		res, err := thompson.Build(thompson.Params{Spec: spec, Layers: L, Multilayer: true})
		if err != nil {
			return err
		}
		st := res.L.Stats()
		fmt.Fprintf(w, "%d\t%d\t%.0f\t%.2f\t%d\t%.0f\t%d\t%.0f\n",
			L, st.Area, analysis.MultilayerArea(n, L),
			float64(st.Area)/analysis.MultilayerArea(n, L),
			st.MaxWireLength, analysis.MultilayerMaxWire(n, L),
			st.Volume, analysis.MultilayerVolume(n, L))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// The measured area saturates at the "block floor": the nodes and
	// intra-block channels, which no amount of extra layers compresses
	// (the formula's o() terms). Show it so the trend reads correctly.
	res, err := thompson.Build(thompson.Params{Spec: spec, Layers: 2, Multilayer: true})
	if err != nil {
		return err
	}
	floor := int64(res.GridCols*res.BlockW) * int64(res.GridRows*res.BlockH)
	fmt.Fprintf(c.W, "block floor (nodes + intra-block wiring, layer-independent): %d\n", floor)
	fmt.Fprintln(c.W, "the compressible wiring area (measured - floor) tracks the 1/L^2 law;")
	fmt.Fprintln(c.W, "at large n the floor vanishes relative to the 4N^2/(L^2 log^2 N) term.")
	return nil
}

// e9 reproduces the Section 5.2 example end to end.
func e9(c *Config) error {
	d, err := hierarchy.Design(9, 64, 20)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.W, "B_9, 64-pin chips of side 20: spec %v\n", d.Spec)
	fmt.Fprintf(c.W, "  chips: %d x %d nodes, %d off-chip links each (paper: 64 x 80, 56 links)\n",
		d.NumChips, d.NodesPerChip, d.OffChipLinks)
	fmt.Fprintf(c.W, "  chip grid: %dx%d; raw tracks/gap %d, optimized %d (paper: 64 -> 60)\n",
		d.GridRows, d.GridCols, d.RawHTracks, d.OptimizedHTracks)
	w := c.tw()
	fmt.Fprintf(w, "L\tboard side\tboard area\tpaper\n")
	paper := map[int]int64{2: 409600, 4: 160000, 8: 78400}
	for _, L := range []int{2, 3, 4, 8} {
		bw, bh := d.BoardDims(L)
		p := "-"
		if v, ok := paper[L]; ok {
			p = fmt.Sprint(v)
		}
		fmt.Fprintf(w, "%d\t%dx%d\t%d\t%s\n", L, bw, bh, d.BoardArea(L), p)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	er, ec := hierarchy.NaiveChipsPaperEstimate(9, 64)
	mr, mc := hierarchy.NaiveChips(9, 64)
	fmt.Fprintf(c.W, "baseline: paper estimate %d rows/chip -> %d chips (paper: 171); exact measurement %d rows -> %d chips\n",
		er, ec, mr, mc)
	return nil
}

// e10 runs the injection-rate experiment behind the Theorem 2.1 lower
// bound: saturation rate ~ Theta(1/log R).
func e10(c *Config) error {
	ns := []int{3, 4, 5, 6, 7}
	opts := routing.SaturationOptions{Seed: 7}
	if c.Quick {
		ns = []int{3, 4, 5}
		opts.Warmup, opts.Cycles, opts.Steps = 150, 300, 5
	}
	w := c.tw()
	fmt.Fprintf(w, "n\trows\tlambda* (sim)\tlambda* x n\tfluid limit 2/E[hops]\tE[hops]\n")
	for _, n := range ns {
		rate, err := routing.SaturationRate(n, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d\t%d\t%.4f\t%.3f\t%.4f\t%.2f\n",
			n, 1<<uint(n), rate, rate*float64(n),
			routing.TheoreticalSaturation(n), routing.ExpectedHops(n))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	// Off-module demand at saturation vs Omega(M/log R).
	n := 6
	rows := 1 << uint(n)
	moduleOf := make([]int, n*rows)
	rowsPer := 8
	for col := 0; col < n; col++ {
		for row := 0; row < rows; row++ {
			moduleOf[col*rows+row] = row / rowsPer
		}
	}
	lambda := routing.TheoreticalSaturation(n) * 0.8
	r, err := routing.Simulate(routing.Params{
		N: n, Lambda: lambda, Warmup: 300, Cycles: 1200, Seed: 11, ModuleOf: moduleOf,
	})
	if err != nil {
		return err
	}
	modules := rows / rowsPer
	perModule := r.BoundaryCrossingsPerCycle / float64(modules)
	m := rowsPer * n // nodes per module
	fmt.Fprintf(c.W, "off-module demand at 0.8x saturation (n=%d, %d-node modules): %.2f links/module/cycle; Omega(M/log R) = %.2f\n",
		n, m, perModule, packaging.InjectionLowerBound(m, rows))
	return nil
}

// e11 sweeps node sizes against the scalability thresholds.
func e11(c *Config) error {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	n := spec.TotalBits()
	base, err := thompson.Build(thompson.Params{Spec: spec})
	if err != nil {
		return err
	}
	baseArea := base.L.Stats().Area
	w := c.tw()
	fmt.Fprintf(w, "node side\tarea\tarea ratio\tnode-area ratio\tband tracks\n")
	for _, side := range []int{4, 6, 8, 12, 16} {
		res, err := thompson.Build(thompson.Params{Spec: spec, NodeSide: side})
		if err != nil {
			return err
		}
		st := res.L.Stats()
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%d\n",
			side, st.Area, float64(st.Area)/float64(baseArea),
			float64(side*side)/16.0, res.BandH)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(c.W, "thresholds at n=%d: strict o(sqrt(N)/(L log N)) ~ %.1f (L=2); loose (boundary nodes) ~ %.1f\n",
		n, analysis.NodeSizeThreshold(n, 2), analysis.LooseNodeSizeThreshold(n, 2))
	fmt.Fprintln(c.W, "the layout area grows strictly slower than the node area: wiring dominates (Sec. 3.3).")
	return nil
}

// e12 runs the FFT dataflow over a spec sweep.
func e12(c *Config) error {
	rng := rand.New(rand.NewSource(99))
	w := c.tw()
	fmt.Fprintf(w, "spec\trows\tcomm steps\tn_l+l-1\tswap steps\tmax |err| vs DFT\n")
	for _, widths := range [][]int{{4}, {2, 2}, {3, 2}, {2, 2, 2}, {3, 3, 3}, {2, 2, 2, 2}} {
		spec := bitutil.MustGroupSpec(widths...)
		in := isn.New(spec)
		x := make([]complex128, in.Rows)
		for i := range x {
			x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		}
		res, err := fftsim.OnISN(in, x)
		if err != nil {
			return err
		}
		e := fftsim.MaxError(res.Output, fftsim.DFT(x))
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%.2e\n",
			spec, in.Rows, res.CommSteps, spec.TotalBits()+spec.Levels()-1, res.SwapSteps, e)
	}
	return w.Flush()
}
