package experiments

import (
	"fmt"
	"math/rand"

	"bfvlsi/internal/analysis"
	"bfvlsi/internal/benes"
	"bfvlsi/internal/bisect"
	"bfvlsi/internal/bitonic"
	"bfvlsi/internal/bitutil"
	"bfvlsi/internal/ccc"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/cubelayout"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/hierarchy"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/stack3d"
	"bfvlsi/internal/thompson"
)

// e13 extends the layout scheme to the "other networks" of the paper's
// conclusion: hypercubes and k-ary 2-cubes under the same
// grid-of-collinear-layouts technique.
func e13(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "network\tnodes\trow/col tracks\tlayout WxH\tarea\tarea/N^2\tvalid\n")
	ns := []int{4, 6, 8, 10}
	if c.Quick {
		ns = []int{4, 6}
	}
	for _, n := range ns {
		res, err := cubelayout.Hypercube(n)
		if err != nil {
			return err
		}
		valid := "yes"
		if err := res.Validate(); err != nil {
			valid = err.Error()
		}
		st := res.Stats()
		nn := float64(int64(1) << uint(n))
		fmt.Fprintf(w, "Q_%d\t%d\t%d/%d\t%dx%d\t%d\t%.2f\t%s\n",
			n, 1<<uint(n), res.RowTracks, res.ColTracks, st.Width, st.Height,
			st.Area, float64(st.Area)/(nn*nn), valid)
	}
	for _, nn := range []int{4, 6, 8} {
		c := ccc.New(nn)
		res, err := c.Layout()
		if err != nil {
			return err
		}
		valid := "yes"
		if err := res.Validate(); err != nil {
			valid = err.Error()
		}
		st := res.Stats()
		tot := float64(c.Nodes)
		fmt.Fprintf(w, "CCC(%d)\t%d\t%d/%d\t%dx%d\t%d\t%.2f\t%s\n",
			nn, c.Nodes, res.RowTracks, res.ColTracks, st.Width, st.Height,
			st.Area, float64(st.Area)/(tot*tot), valid)
	}
	for _, k := range []int{4, 8, 16} {
		res, err := cubelayout.Torus(k)
		if err != nil {
			return err
		}
		valid := "yes"
		if err := res.Validate(); err != nil {
			valid = err.Error()
		}
		st := res.Stats()
		nn := float64(k * k)
		fmt.Fprintf(w, "%d-ary 2-cube\t%d\t%d/%d\t%dx%d\t%d\t%.4f\t%s\n",
			k, k*k, res.RowTracks, res.ColTracks, st.Width, st.Height,
			st.Area, float64(st.Area)/(nn*nn), valid)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "hypercube area/N^2 approaches the scheme's constant (bisection-optimal order);")
	fmt.Fprintln(c.W, "the torus needs only 2 tracks per ring: area ~ (k(d+2))^2.")
	return nil
}

// e14 exercises the Benes substrate: rearrangeability via the looping
// algorithm, and the paper-derived area estimate.
func e14(c *Config) error {
	rng := rand.New(rand.NewSource(77))
	w := c.tw()
	fmt.Fprintf(w, "n\tterminals\tstages\tpermutations routed\tarea estimate (2x butterfly)\n")
	for _, n := range []int{2, 4, 6, 8} {
		b := benes.New(n)
		trials := 200
		if n >= 8 {
			trials = 40
		}
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(b.T)
			b.Reset()
			if err := b.Route(perm); err != nil {
				return fmt.Errorf("n=%d: %v", n, err)
			}
			if err := b.Verify(perm); err != nil {
				return fmt.Errorf("n=%d: %v", n, err)
			}
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d/%d\t%.0f\n",
			n, b.T, b.NumStages, trials, trials, benes.LayoutAreaEstimate(n))
	}
	return w.Flush()
}

// e15 compares traffic patterns: the bit-reversal adversary vs uniform.
func e15(c *Config) error {
	n := 6
	if c.Quick {
		n = 5
	}
	lambda := routing.TheoreticalSaturation(n) * 0.9
	w := c.tw()
	fmt.Fprintf(w, "pattern\tthroughput\tavg latency\tavg hops\tbacklog\n")
	for _, p := range []routing.Pattern{routing.Uniform, routing.BitReverse, routing.Transpose, routing.Complement} {
		r, err := routing.SimulatePattern(routing.Params{
			N: n, Lambda: lambda, Warmup: 300, Cycles: 900, Seed: 13,
		}, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%.4f\t%.1f\t%.2f\t%d\n",
			p, r.Throughput, r.AvgLatency, r.AvgHops, r.Backlog)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(c.W, "offered load %.4f (0.9x uniform saturation): permutation adversaries\n", lambda)
	fmt.Fprintln(c.W, "congest the oblivious route; uniform absorbs the same load comfortably.")
	return nil
}

// e16 runs the three-level packaging extension and the cost model.
func e16(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "spec\tchips\tchip pins\tboards\tboard pins\tboard pins/node\n")
	for _, widths := range [][]int{{3, 3, 3}, {3, 2, 2}, {2, 2, 2}} {
		d, err := hierarchy.DesignMultiLevel(bitutil.MustGroupSpec(widths...))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%.3f\n",
			d.Spec, d.NumChips, d.ChipPins, d.NumBoards, d.BoardPins, d.BoardPinEfficiency())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	d, err := hierarchy.Design(9, 64, 20)
	if err != nil {
		return err
	}
	for _, p := range []struct {
		name string
		cp   hierarchy.CostParams
	}{
		{"area-only", hierarchy.CostParams{AreaUnit: 1}},
		{"area + 40000/layer", hierarchy.CostParams{AreaUnit: 1, LayerFixed: 40000}},
		{"volume (per-layer area)", hierarchy.CostParams{LayerAreaUnit: 1}},
	} {
		l, cost := d.OptimalLayers(16, p.cp)
		fmt.Fprintf(c.W, "cost model %-24s -> optimal L=%d (cost %.0f)\n", p.name, l, cost)
	}
	return nil
}

// e17 exercises the Batcher bitonic sorter (the paper's companion
// workload [11]): the 0-1 principle, and a channel-routed layout.
func e17(c *Config) error {
	w := c.tw()
	fmt.Fprintf(w, "n\twires\tstages\tcomparators\tlayout WxH\tarea\tvalid\n")
	ns := []int{2, 3, 4, 5}
	if c.Quick {
		ns = []int{2, 3}
	}
	for _, n := range ns {
		net := bitonic.New(n)
		// exhaustive 0-1 check for small n, spot check otherwise
		if n <= 4 {
			for mask := 0; mask < 1<<uint(net.Wires); mask++ {
				xs := make([]int, net.Wires)
				for i := range xs {
					xs[i] = (mask >> uint(i)) & 1
				}
				if err := net.Check(xs); err != nil {
					return err
				}
			}
		}
		l, err := net.Layout()
		if err != nil {
			return err
		}
		valid := "yes"
		if err := l.Validate(grid.ValidateOptions{
			CheckNodeInteriors: true, RequireTerminalsOnNodes: true,
		}); err != nil {
			valid = err.Error()
		}
		st := l.Stats()
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%dx%d\t%d\t%s\n",
			n, net.Wires, len(net.Stages), net.NumComparators(),
			st.Width, st.Height, st.Area, valid)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "the sorter's stages are butterfly steps; the same channel router")
	fmt.Fprintln(c.W, "that wires butterfly blocks lays the whole fabric out (cf. [11]).")
	return nil
}

// e18 profiles the wire-length distribution and per-layer utilization of
// the built layouts, the microstructure behind the max-wire-length
// bounds.
func e18(c *Config) error {
	spec := bitutil.MustGroupSpec(2, 2, 2)
	w := c.tw()
	fmt.Fprintf(w, "L\tp50\tp90\tp99\tmax\tdensity\tlayer usage (wire units)\n")
	for _, L := range []int{2, 4, 8} {
		res, err := thompsonBuild(spec, L)
		if err != nil {
			return err
		}
		l := res.L
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\t%.2f\t%v\n",
			L, l.Percentile(50), l.Percentile(90), l.Percentile(99),
			l.MaxWireLength(), l.WiringDensity(), l.LayerUsage())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "p50 stays flat (intra-block wires); the tail (p99/max) shrinks with L -")
	fmt.Fprintln(c.W, "exactly the population of inter-block band/column wires Theorem 4.1 compresses.")
	return nil
}

func thompsonBuild(spec bitutil.GroupSpec, layers int) (*thompson.Result, error) {
	if layers == 2 {
		return thompson.Build(thompson.Params{Spec: spec})
	}
	return thompson.Build(thompson.Params{Spec: spec, Layers: layers, Multilayer: true})
}

// e19 runs the 3-D stacked-layout model of Section 4.2's closing remarks
// and the bisection-width corroboration of the lower bounds.
func e19(c *Config) error {
	fmt.Fprintln(c.W, "-- multilayer 3-D grid model (stacked slices) --")
	w := c.tw()
	fmt.Fprintf(w, "spec\tcopies\tslice L\tslice area\tz-cols\tfootprint\tvolume\n")
	for _, cse := range []struct {
		widths []int
		layers int
	}{
		{[]int{2, 2, 2, 1}, 2},
		{[]int{2, 2, 2, 1}, 4},
		{[]int{2, 2, 2, 2}, 2},
		{[]int{2, 2, 2, 2}, 4},
	} {
		spec := bitutil.MustGroupSpec(cse.widths...)
		s, err := stack3d.Build(spec, cse.layers)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%v\t%d\t%d\t%d\t%d\t%d\t%d\n",
			spec, s.Copies, s.SliceLayers, s.Slice.Stats().Area,
			s.ZColumns, s.FootprintArea(), s.Volume())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(c.W, "model optimum: L* = 2*2^{(n-2k4)/2} (paper: Theta(sqrt(N)/log N));\n")
	fmt.Fprintf(c.W, "optimal volume at n=20, k4=3: %.3g vs flat 8-layer %.3g\n\n",
		stack3d.OptimalModelVolume(20, 3), analysis.MultilayerVolume(20, 8))

	fmt.Fprintln(c.W, "-- bisection widths vs layout lower bounds --")
	w = c.tw()
	fmt.Fprintf(w, "graph\tbisection (exact)\tcollinear tracks\n")
	for _, n := range []int{4, 6, 8} {
		g := completeGraph(n)
		b, err := bisect.Exact(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "K_%d\t%d\t%d\n", n, b, collinear.OptimalTracks(n))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "Appendix B: the collinear track count exactly matches the bisection bound.")
	return nil
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddEdge(a, b, graph.KindStraight)
		}
	}
	return g
}

// e20 demonstrates the finite-buffer deadlock of the wrapped butterfly
// and its resolution with dateline virtual channels (the simulator's
// BufferLimit mode).
func e20(c *Config) error {
	n := 4
	lambda := 0.3
	w := c.tw()
	fmt.Fprintf(w, "buffers/VC\tthroughput\tefficiency\tstalls\tdrops\tmax queue\n")
	for _, buf := range []int{0, 1, 2, 4, 8} {
		r, err := routing.Simulate(routing.Params{
			N: n, Lambda: lambda, Warmup: 300, Cycles: 800, Seed: 17, BufferLimit: buf,
		})
		if err != nil {
			return err
		}
		label := "infinite"
		if buf > 0 {
			label = fmt.Sprintf("%d/VC", buf)
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.1f%%\t%d\t%d\t%d\n",
			label, r.Throughput, 100*r.Throughput/lambda, r.Stalls, r.InjectionDrops, r.MaxQueue)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(c.W, "without virtual channels the wrap ring deadlocks under backpressure")
	fmt.Fprintln(c.W, "(zero throughput); three dateline VCs restore most of the capacity -")
	fmt.Fprintln(c.W, "the era's standard fix, and the buffer budget is part of the node size")
	fmt.Fprintln(c.W, "the paper's layouts must accommodate (Sections 3.3/4.2 scalability).")
	return nil
}
