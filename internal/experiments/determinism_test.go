package experiments

import (
	"bytes"
	"testing"
)

// The experiments are the repo's printed face: bftables regenerates
// every table from them, and the golden markers only stay meaningful if
// two runs of one experiment emit identical bytes. This is the
// regression net behind the maporder analyzer — any order-sensitive
// iteration that sneaks into an output path shows up here as a byte
// diff between back-to-back runs.
func TestExperimentOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			var first, second bytes.Buffer
			if err := ex.Run(&Config{W: &first, Quick: true}); err != nil {
				t.Fatalf("%s run 1: %v", ex.Name, err)
			}
			if err := ex.Run(&Config{W: &second, Quick: true}); err != nil {
				t.Fatalf("%s run 2: %v", ex.Name, err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Fatalf("%s output differs between identical runs:\nrun1 %d bytes, run2 %d bytes\nfirst divergence near byte %d",
					ex.Name, first.Len(), second.Len(), firstDiff(first.Bytes(), second.Bytes()))
			}
		})
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
