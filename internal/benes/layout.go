package benes

import (
	"fmt"

	"bfvlsi/internal/channel"
	"bfvlsi/internal/geom"
	"bfvlsi/internal/grid"
)

// Layout channel-routes the Benes wire graph column by column into a
// valid Thompson-model layout: each wire node is a 4x4 box, each switch
// column a routed channel (straight + two cross nets per switch). The
// measured area realizes the "two back-to-back butterflies" structure
// whose asymptotic cost the paper's results bound.
func (b *Benes) Layout() (*grid.Layout, error) {
	const side = 4
	rowPitch := side
	l := grid.NewLayout(grid.Thompson, 2)
	cols := b.NumStages + 1

	plans := make([]*channel.Plan, b.NumStages)
	nets := make([][]channel.Net, b.NumStages)
	widths := make([]int, b.NumStages)
	for k := 0; k < b.NumStages; k++ {
		h := b.half(k)
		var ns []channel.Net
		for r := 0; r < b.T; r++ {
			ns = append(ns, channel.Net{
				Label: fmt.Sprintf("s%d.%d", r, k),
				LeftY: r * rowPitch, RightY: r * rowPitch,
			})
		}
		for r := 0; r < b.T; r++ {
			if r&h != 0 {
				continue
			}
			ns = append(ns,
				channel.Net{
					Label: fmt.Sprintf("c%d.%d", r, k),
					LeftY: r*rowPitch + 1, RightY: (r^h)*rowPitch + 2,
				},
				channel.Net{
					Label: fmt.Sprintf("c%d.%d", r^h, k),
					LeftY: (r^h)*rowPitch + 1, RightY: r*rowPitch + 2,
				})
		}
		plan, err := channel.Route(ns)
		if err != nil {
			return nil, fmt.Errorf("benes: column %d: %v", k, err)
		}
		plans[k], nets[k], widths[k] = plan, ns, plan.Tracks
	}

	colX := make([]int, cols)
	x := 0
	for s := 0; s < cols; s++ {
		colX[s] = x
		if s < b.NumStages {
			x += side + widths[s]
		}
	}
	for s := 0; s < cols; s++ {
		for r := 0; r < b.T; r++ {
			x0, y0 := colX[s], r*rowPitch
			l.AddNode(fmt.Sprintf("n%d.%d", r, s),
				geom.NewRect(x0, y0, x0+side-1, y0+side-1))
		}
	}
	for s := 0; s < b.NumStages; s++ {
		xLeft := colX[s] + side - 1
		xRight := colX[s+1]
		trackX := func(t int) int { return xLeft + 1 + t }
		if err := channel.Realize(l, nets[s], plans[s], xLeft, xRight, trackX); err != nil {
			return nil, err
		}
	}
	return l, nil
}
