package benes

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property (testing/quick): any permutation derived from a random seed
// routes and verifies, for a random dimension in [1, 6].
func TestRouteQuickProperty(t *testing.T) {
	f := func(seed int64, rawN uint8) bool {
		n := 1 + int(rawN)%6
		b := New(n)
		perm := rand.New(rand.NewSource(seed)).Perm(b.T)
		if err := b.Route(perm); err != nil {
			return false
		}
		return b.Verify(perm) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: routing then routing the inverse permutation composes to the
// identity when evaluated through both networks in sequence.
func TestRouteInverseComposition(t *testing.T) {
	f := func(seed int64) bool {
		n := 4
		fwd, bwd := New(n), New(n)
		perm := rand.New(rand.NewSource(seed)).Perm(fwd.T)
		inv := make([]int, len(perm))
		for i, v := range perm {
			inv[v] = i
		}
		if fwd.Route(perm) != nil || bwd.Route(inv) != nil {
			return false
		}
		for i := 0; i < fwd.T; i++ {
			if bwd.Evaluate(fwd.Evaluate(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
