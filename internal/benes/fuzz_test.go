package benes

import "testing"

// FuzzRoute derives a permutation from arbitrary bytes (Fisher-Yates
// keyed by the input) and asserts the looping algorithm always routes it.
func FuzzRoute(f *testing.F) {
	f.Add(uint8(3), int64(1))
	f.Add(uint8(5), int64(-42))
	f.Add(uint8(1), int64(0))
	f.Fuzz(func(t *testing.T, rawN uint8, key int64) {
		n := 1 + int(rawN)%6
		b := New(n)
		perm := make([]int, b.T)
		for i := range perm {
			perm[i] = i
		}
		s := uint64(key)
		for i := b.T - 1; i > 0; i-- {
			s = s*6364136223846793005 + 1442695040888963407
			j := int(s % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		if err := b.Route(perm); err != nil {
			t.Fatalf("route %v: %v", perm, err)
		}
		if err := b.Verify(perm); err != nil {
			t.Fatalf("verify %v: %v", perm, err)
		}
	})
}
