// Package benes implements Benes rearrangeable permutation networks and
// their looping (Waksman) routing algorithm. The paper's introduction
// motivates butterfly layouts with "network switches/routers ... based on
// butterfly, Benes, or related interconnection topologies"; a Benes
// network is two back-to-back butterflies, so the paper's layout results
// apply to it directly (twice the area), and this package provides the
// switching substrate that makes the examples' switch scenarios real.
//
// Structure: an n-dimensional Benes network connects T = 2^n inputs to T
// outputs through 2n-1 columns of T/2 two-by-two switches. Column k
// operates at recursion level j = min(k, 2n-2-k): the rows split into
// 2^j contiguous blocks of 2^{n-j}, and each switch pairs rows r and
// r ^ 2^{n-j-1} within a block. Any permutation is routable; Route finds
// the switch settings by 2-coloring the union of the input-pairing and
// output-pairing matchings at every recursion level.
package benes

import (
	"fmt"

	"bfvlsi/internal/graph"
)

// Benes is an n-dimensional Benes network with switch settings.
type Benes struct {
	// N is the dimension; the network has 2^N terminals per side.
	N int
	// T = 2^N.
	T int
	// NumStages = 2N - 1 switch columns.
	NumStages int
	// Settings[k][s] reports whether switch s in column k is crossed.
	// Switch s at column k is switchOf(k, r) for the rows r it pairs.
	Settings [][]bool
}

// New returns an n-dimensional Benes network with all switches straight.
func New(n int) *Benes {
	if n < 1 || n > 20 {
		panic(fmt.Sprintf("benes: dimension %d out of range [1,20]", n))
	}
	t := 1 << uint(n)
	stages := 2*n - 1
	b := &Benes{N: n, T: t, NumStages: stages}
	b.Settings = make([][]bool, stages)
	for k := range b.Settings {
		b.Settings[k] = make([]bool, t/2)
	}
	return b
}

// level returns the recursion level of column k.
func (b *Benes) level(k int) int {
	j := k
	if r := 2*b.N - 2 - k; r < j {
		j = r
	}
	return j
}

// half returns the pairing distance of column k: 2^{n - level - 1}.
func (b *Benes) half(k int) int {
	return 1 << uint(b.N-b.level(k)-1)
}

// SwitchOf returns the index of the switch in column k that handles
// row r.
func (b *Benes) SwitchOf(k, r int) int {
	h := b.half(k)
	blockSize := 2 * h
	return (r/blockSize)*h + (r & (h - 1))
}

// Evaluate walks a packet from the given input row through the current
// switch settings and returns the output row it reaches.
func (b *Benes) Evaluate(input int) int {
	if input < 0 || input >= b.T {
		panic(fmt.Sprintf("benes: input %d out of range", input))
	}
	r := input
	for k := 0; k < b.NumStages; k++ {
		if b.Settings[k][b.SwitchOf(k, r)] {
			r ^= b.half(k)
		}
	}
	return r
}

// Route sets the switches so that input i exits at perm[i], for any
// permutation perm of 0..T-1. It implements the looping algorithm as an
// explicit 2-coloring of the constraint cycles at each recursion level.
func (b *Benes) Route(perm []int) error {
	if len(perm) != b.T {
		return fmt.Errorf("benes: permutation has %d entries, want %d", len(perm), b.T)
	}
	seen := make([]bool, b.T)
	for _, v := range perm {
		if v < 0 || v >= b.T || seen[v] {
			return fmt.Errorf("benes: not a permutation")
		}
		seen[v] = true
	}
	local := make([]int, b.T)
	copy(local, perm)
	return b.route(0, 0, local)
}

// route handles one recursion level: the sub-network of size len(perm)
// whose rows start at blockStart, with outer columns `level` and
// 2N-2-level.
func (b *Benes) route(level, blockStart int, perm []int) error {
	t := len(perm)
	if t == 2 {
		// The center column: a single switch.
		k := b.N - 1
		b.Settings[k][b.SwitchOf(k, blockStart)] = perm[0] == 1
		return nil
	}
	half := t / 2
	inv := make([]int, t)
	for i, v := range perm {
		inv[v] = i
	}
	// 2-color the union of two perfect matchings on inputs:
	//   (i, i^half)            - partners at the input column
	//   (inv[o], inv[o^half])  - sources of partnered outputs
	// The union is a disjoint set of even cycles, hence 2-colorable;
	// color 0 sends an input through the upper sub-network.
	sub := make([]int, t)
	for i := range sub {
		sub[i] = -1
	}
	var stack []int
	for start := 0; start < t; start++ {
		if sub[start] >= 0 {
			continue
		}
		sub[start] = 0
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := sub[i]
			for _, nb := range [2]int{i ^ half, inv[perm[i]^half]} {
				if sub[nb] < 0 {
					sub[nb] = 1 - c
					stack = append(stack, nb)
				} else if sub[nb] == c {
					return fmt.Errorf("benes: constraint cycle not 2-colorable (internal error)")
				}
			}
		}
	}
	// Outer switch settings.
	inCol := level
	outCol := 2*b.N - 2 - level
	for i := 0; i < half; i++ {
		// Input switch pairing rows blockStart+i and blockStart+i+half:
		// crossed iff the top input goes to the lower sub-network.
		b.Settings[inCol][b.SwitchOf(inCol, blockStart+i)] = sub[i] == 1
		// Output switch for outputs j and j+half: crossed iff output j's
		// packet arrives from the lower sub-network.
		b.Settings[outCol][b.SwitchOf(outCol, blockStart+i)] = sub[inv[i]] == 1
	}
	// Sub-permutations: position p of a sub-network receives the packet
	// of the input with index p (mod half) assigned to it, destined for
	// output position perm[i] (mod half).
	upper := make([]int, half)
	lower := make([]int, half)
	for i := 0; i < t; i++ {
		p := i & (half - 1)
		q := perm[i] & (half - 1)
		if sub[i] == 0 {
			upper[p] = q
		} else {
			lower[p] = q
		}
	}
	if err := b.route(level+1, blockStart, upper); err != nil {
		return err
	}
	return b.route(level+1, blockStart+half, lower)
}

// Verify checks that the current settings realize the permutation.
func (b *Benes) Verify(perm []int) error {
	if len(perm) != b.T {
		return fmt.Errorf("benes: permutation has %d entries, want %d", len(perm), b.T)
	}
	for i := 0; i < b.T; i++ {
		if got := b.Evaluate(i); got != perm[i] {
			return fmt.Errorf("benes: input %d reaches %d, want %d", i, got, perm[i])
		}
	}
	return nil
}

// Reset sets every switch straight.
func (b *Benes) Reset() {
	for k := range b.Settings {
		for s := range b.Settings[k] {
			b.Settings[k][s] = false
		}
	}
}

// Graph returns the wire-level graph of the network: 2N columns of T
// wire segments (the links between consecutive switch columns plus the
// terminal links), as an undirected graph whose node (col, row) has ID
// col*T + row. Consecutive columns are joined per the switch pairing:
// each switch contributes a straight and a cross edge, so the graph is
// the "back-to-back butterflies" the paper alludes to.
func (b *Benes) Graph() *graph.Graph {
	cols := b.NumStages + 1
	g := graph.New(cols * b.T)
	id := func(c, r int) int { return c*b.T + r }
	for k := 0; k < b.NumStages; k++ {
		h := b.half(k)
		for r := 0; r < b.T; r++ {
			g.AddEdge(id(k, r), id(k+1, r), graph.KindStraight)
			if r&h == 0 {
				g.AddEdge(id(k, r), id(k+1, r^h), graph.KindCross)
				g.AddEdge(id(k, r^h), id(k+1, r), graph.KindCross)
			}
		}
	}
	return g
}

// LayoutAreaEstimate returns the leading-order Thompson-model area of a
// Benes network per the paper's butterfly result: two mirrored
// butterflies need twice the butterfly area, 2 * 2^{2n} (1 + o(1)).
func LayoutAreaEstimate(n int) float64 {
	return 2 * float64(int64(1)<<uint(2*n))
}
