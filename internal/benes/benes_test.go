package benes

import (
	"math/rand"
	"testing"

	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/grid"
)

func TestNewShape(t *testing.T) {
	b := New(3)
	if b.T != 8 || b.NumStages != 5 {
		t.Fatalf("T=%d stages=%d", b.T, b.NumStages)
	}
	for k, col := range b.Settings {
		if len(col) != 4 {
			t.Errorf("stage %d has %d switches", k, len(col))
		}
	}
}

func TestLevelsAndHalves(t *testing.T) {
	b := New(3)
	wantHalf := []int{4, 2, 1, 2, 4}
	for k := 0; k < b.NumStages; k++ {
		if b.half(k) != wantHalf[k] {
			t.Errorf("half(%d) = %d, want %d", k, b.half(k), wantHalf[k])
		}
	}
}

func TestIdentityDefault(t *testing.T) {
	// All-straight switches realize the identity.
	b := New(4)
	for i := 0; i < b.T; i++ {
		if b.Evaluate(i) != i {
			t.Fatalf("straight network moved input %d to %d", i, b.Evaluate(i))
		}
	}
}

func TestRouteIdentity(t *testing.T) {
	b := New(3)
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if err := b.Route(perm); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(perm); err != nil {
		t.Error(err)
	}
}

func TestRouteReversal(t *testing.T) {
	b := New(3)
	perm := []int{7, 6, 5, 4, 3, 2, 1, 0}
	if err := b.Route(perm); err != nil {
		t.Fatal(err)
	}
	if err := b.Verify(perm); err != nil {
		t.Error(err)
	}
}

// The rearrangeability theorem, empirically: every random permutation
// routes, across dimensions.
func TestRouteRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for n := 1; n <= 8; n++ {
		b := New(n)
		trials := 50
		if n >= 7 {
			trials = 10
		}
		for trial := 0; trial < trials; trial++ {
			perm := rng.Perm(b.T)
			b.Reset()
			if err := b.Route(perm); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
			if err := b.Verify(perm); err != nil {
				t.Fatalf("n=%d trial %d: %v", n, trial, err)
			}
		}
	}
}

func TestRouteAllPermutationsN2(t *testing.T) {
	// Exhaustive check for T=4: all 24 permutations.
	b := New(2)
	var perm [4]int
	var rec func(depth int, used int)
	count := 0
	rec = func(depth, used int) {
		if depth == 4 {
			p := append([]int(nil), perm[:]...)
			b.Reset()
			if err := b.Route(p); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			if err := b.Verify(p); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			count++
			return
		}
		for v := 0; v < 4; v++ {
			if used&(1<<uint(v)) == 0 {
				perm[depth] = v
				rec(depth+1, used|1<<uint(v))
			}
		}
	}
	rec(0, 0)
	if count != 24 {
		t.Errorf("checked %d permutations, want 24", count)
	}
}

func TestRouteRejectsNonPermutations(t *testing.T) {
	b := New(2)
	if err := b.Route([]int{0, 1, 2}); err == nil {
		t.Error("short input accepted")
	}
	if err := b.Route([]int{0, 0, 1, 2}); err == nil {
		t.Error("duplicate accepted")
	}
	if err := b.Route([]int{0, 1, 2, 4}); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestGraphStructure(t *testing.T) {
	n := 3
	b := New(n)
	g := b.Graph()
	cols := b.NumStages + 1
	if g.NumNodes() != cols*b.T {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Every column gap contributes 2T edges (T straight + T cross).
	if g.NumEdges() != b.NumStages*2*b.T {
		t.Errorf("edges = %d, want %d", g.NumEdges(), b.NumStages*2*b.T)
	}
	if !g.Connected() {
		t.Error("Benes graph disconnected")
	}
	if err := g.HandshakeOK(); err != nil {
		t.Error(err)
	}
}

func TestGraphFirstHalfIsReversedButterfly(t *testing.T) {
	// Columns 0..n of the Benes graph form a butterfly with dimensions
	// in descending order - an automorphism of B_n. Relabel rows by bit
	// reversal and compare with B_n exactly.
	n := 3
	b := New(n)
	g := b.Graph()
	t8 := b.T
	sub := graph.New((n + 1) * t8)
	id := func(c, r int) int { return c*t8 + r }
	for _, e := range g.Edges() {
		cu, ru := e.U/t8, e.U%t8
		cv, rv := e.V/t8, e.V%t8
		if cu <= n && cv <= n {
			sub.AddEdge(id(cu, ru), id(cv, rv), e.Kind)
		}
	}
	// Reverse the bits of every row label; dimension order n-1..0
	// becomes 0..n-1.
	perm := make([]int, sub.NumNodes())
	rev := func(r int) int {
		out := 0
		for i := 0; i < n; i++ {
			if r&(1<<uint(i)) != 0 {
				out |= 1 << uint(n-1-i)
			}
		}
		return out
	}
	for c := 0; c <= n; c++ {
		for r := 0; r < t8; r++ {
			perm[id(c, r)] = id(c, rev(r))
		}
	}
	want := butterfly.New(n)
	if !graph.SameEdgeMultiset(sub.Relabel(perm), want.G, true) {
		t.Error("first half of Benes is not a butterfly automorphism")
	}
}

func TestLayoutAreaEstimate(t *testing.T) {
	if LayoutAreaEstimate(5) != 2048 { // 2 * 2^{2*5}... 2^{10} = 1024, doubled
		t.Errorf("estimate = %v", LayoutAreaEstimate(5))
	}
}

func BenchmarkRouteN8(b *testing.B) {
	net := New(8)
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(net.T)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Reset()
		if err := net.Route(perm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateN8(b *testing.B) {
	net := New(8)
	rng := rand.New(rand.NewSource(1))
	perm := rng.Perm(net.T)
	if err := net.Route(perm); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Evaluate(i & (net.T - 1))
	}
}

func TestLayoutValidates(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4} {
		b := New(n)
		l, err := b.Layout()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := l.Validate(grid.ValidateOptions{
			CheckNodeInteriors:      true,
			RequireTerminalsOnNodes: true,
		}); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// Wires: per column, T straight + T cross nets.
		want := b.NumStages * 2 * b.T
		if got := len(l.Wires); got != want {
			t.Errorf("n=%d: %d wires, want %d", n, got, want)
		}
	}
}

func TestLayoutAreaNearTwoButterflies(t *testing.T) {
	// The column-by-column Benes layout has 2n-1 switch columns vs the
	// butterfly's n: its area should be roughly twice a same-style
	// butterfly layout (the bitonic/benes column router is the l=1
	// scheme, constant ~8x the leading term).
	b5 := New(5)
	l, err := b5.Layout()
	if err != nil {
		t.Fatal(err)
	}
	a := l.Stats().Area
	if float64(a) < benesAreaSanityLow(5) || float64(a) > benesAreaSanityHigh(5) {
		t.Errorf("area %d outside sanity band [%v, %v]", a, benesAreaSanityLow(5), benesAreaSanityHigh(5))
	}
}

func benesAreaSanityLow(n int) float64  { return float64(int64(2) << uint(2*n)) }  // 2*4^n
func benesAreaSanityHigh(n int) float64 { return float64(int64(64) << uint(2*n)) } // 64*4^n
