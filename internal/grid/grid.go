// Package grid implements the layout models of the paper as concrete
// geometric objects:
//
//   - the Thompson model (Section 3.1): wires of unit width run on grid
//     lines in two layers (one for horizontal, one for vertical segments);
//     wires may cross at a grid point but may not overlap, and two wires
//     may not bend at the same grid point (no knock-knees);
//   - the multilayer 2-D grid model (Section 4.1): wires are embedded in
//     an L-layer 3-D grid and must be edge- AND node-disjoint; nodes live
//     on a single active layer.
//
// A Layout holds node boxes and wires (rectilinear polylines whose
// segments carry explicit layer numbers). Metrics — bounding box, area,
// maximum/total wire length, via count, volume — are measured from the
// geometry. Validate checks the model rules; it is O(total wire length)
// in memory and intended for the small-to-medium instances used in tests
// and experiments.
package grid

import (
	"fmt"

	"bfvlsi/internal/geom"
)

// Model selects which rule set Validate applies.
type Model int

const (
	// Thompson: two implicit layers (horizontal/vertical); wires may cross
	// at points but not overlap; no two wires bend at the same point.
	Thompson Model = iota
	// Multilayer: explicit layers; wire paths must be node-disjoint in the
	// 3-D grid (crossings within a layer are forbidden).
	Multilayer
	// KnockKnee: the model of Brady-Sarrafzadeh / Muthukrishnan et al.
	// ([5], [16] in the paper): wires may not overlap on a grid edge, but
	// two wires MAY bend at the same grid point (a knock-knee). Such
	// layouts are denser on paper but "usually require more than two
	// layers of wires for actual wiring within the same area" (Sec. 1).
	KnockKnee
)

// WireSeg is one axis-aligned piece of a wire on a specific layer.
// Layers are numbered from 1.
type WireSeg struct {
	Seg   geom.Segment
	Layer int
}

// Wire is a rectilinear polyline: consecutive segments share endpoints.
// Where consecutive segments differ in layer, an inter-layer via is
// implied at the shared endpoint.
type Wire struct {
	Label string
	Segs  []WireSeg
}

// Endpoints returns the first and last points of the wire.
func (w *Wire) Endpoints() (geom.Point, geom.Point) {
	if len(w.Segs) == 0 {
		panic("grid: empty wire")
	}
	return w.Segs[0].Seg.A, w.Segs[len(w.Segs)-1].Seg.B
}

// Length returns the total L1 length of the wire (vias not counted,
// matching the paper's in-plane wire-length accounting).
func (w *Wire) Length() int {
	total := 0
	for _, s := range w.Segs {
		total += s.Seg.Len()
	}
	return total
}

// Vias returns the implied inter-layer connector count.
func (w *Wire) Vias() int {
	n := 0
	for i := 1; i < len(w.Segs); i++ {
		if w.Segs[i].Layer != w.Segs[i-1].Layer {
			n++
		}
	}
	return n
}

// NodeBox is a placed network node (or an opaque block/module) occupying
// a rectangle. Wires may terminate on its boundary but may not pass
// through its interior.
type NodeBox struct {
	Label string
	Rect  geom.Rect
}

// Layout is a set of node boxes and wires under a given model.
type Layout struct {
	Model  Model
	Layers int // number of wiring layers (Thompson: 2)
	Nodes  []NodeBox
	Wires  []Wire
}

// NewLayout returns an empty layout.
func NewLayout(model Model, layers int) *Layout {
	if layers < 1 {
		panic("grid: layouts need at least one layer")
	}
	return &Layout{Model: model, Layers: layers}
}

// AddNode places a node box.
func (l *Layout) AddNode(label string, r geom.Rect) {
	l.Nodes = append(l.Nodes, NodeBox{Label: label, Rect: r})
}

// AddWire validates and appends a wire built from the given points and
// per-segment layers (len(layers) == len(points)-1). Each consecutive
// point pair must be axis-aligned.
func (l *Layout) AddWire(label string, points []geom.Point, layers []int) error {
	if len(points) < 2 {
		return fmt.Errorf("grid: wire %q needs at least 2 points", label)
	}
	if len(layers) != len(points)-1 {
		return fmt.Errorf("grid: wire %q has %d layers for %d segments", label, len(layers), len(points)-1)
	}
	w := Wire{Label: label}
	for i := 0; i+1 < len(points); i++ {
		seg, err := geom.NewSegment(points[i], points[i+1])
		if err != nil {
			return fmt.Errorf("grid: wire %q: %v", label, err)
		}
		if layers[i] < 1 || layers[i] > l.Layers {
			return fmt.Errorf("grid: wire %q segment %d layer %d out of range [1,%d]", label, i, layers[i], l.Layers)
		}
		w.Segs = append(w.Segs, WireSeg{Seg: seg, Layer: layers[i]})
	}
	l.Wires = append(l.Wires, w)
	return nil
}

// AddWireHV appends a wire under the Thompson convention: horizontal
// segments on layer 1, vertical segments on layer 2. Zero-length segments
// are dropped.
func (l *Layout) AddWireHV(label string, points ...geom.Point) error {
	return l.AddWireOnLayers(label, 1, 2, points...)
}

// AddWireOnLayers appends a rectilinear wire whose horizontal segments go
// on hLayer and vertical segments on vLayer. Zero-length segments are
// dropped.
func (l *Layout) AddWireOnLayers(label string, hLayer, vLayer int, points ...geom.Point) error {
	var ps []geom.Point
	var layers []int
	prev := points[0]
	ps = append(ps, prev)
	for _, p := range points[1:] {
		if p == prev {
			continue
		}
		layer := hLayer
		if p.X == prev.X && p.Y != prev.Y {
			layer = vLayer
		}
		ps = append(ps, p)
		layers = append(layers, layer)
		prev = p
	}
	if len(ps) < 2 {
		return fmt.Errorf("grid: wire %q is degenerate", label)
	}
	return l.AddWire(label, ps, layers)
}

// BoundingBox returns the smallest upright rectangle containing all nodes
// and wires (the paper's area convention).
func (l *Layout) BoundingBox() geom.Rect {
	first := true
	var bb geom.Rect
	add := func(r geom.Rect) {
		if first {
			bb = r
			first = false
		} else {
			bb = bb.Union(r)
		}
	}
	for _, n := range l.Nodes {
		add(n.Rect)
	}
	for _, w := range l.Wires {
		for _, s := range w.Segs {
			add(geom.NewRect(s.Seg.A.X, s.Seg.A.Y, s.Seg.B.X, s.Seg.B.Y))
		}
	}
	if first {
		return geom.Rect{}
	}
	return bb
}

// Area returns the bounding-box area. For an empty layout it is 0.
func (l *Layout) Area() int64 {
	if len(l.Nodes) == 0 && len(l.Wires) == 0 {
		return 0
	}
	return l.BoundingBox().Area()
}

// Volume returns Layers * Area (Section 4.1).
func (l *Layout) Volume() int64 { return int64(l.Layers) * l.Area() }

// MaxWireLength returns the length of the longest wire (0 if none).
func (l *Layout) MaxWireLength() int {
	max := 0
	for i := range l.Wires {
		if n := l.Wires[i].Length(); n > max {
			max = n
		}
	}
	return max
}

// TotalWireLength sums all wire lengths.
func (l *Layout) TotalWireLength() int64 {
	var total int64
	for i := range l.Wires {
		total += int64(l.Wires[i].Length())
	}
	return total
}

// ViaCount sums implied vias over all wires.
func (l *Layout) ViaCount() int {
	n := 0
	for i := range l.Wires {
		n += l.Wires[i].Vias()
	}
	return n
}

// Translate moves the entire layout by (dx, dy).
func (l *Layout) Translate(dx, dy int) {
	for i := range l.Nodes {
		l.Nodes[i].Rect = l.Nodes[i].Rect.Translate(dx, dy)
	}
	for i := range l.Wires {
		for j := range l.Wires[i].Segs {
			l.Wires[i].Segs[j].Seg = l.Wires[i].Segs[j].Seg.Translate(dx, dy)
		}
	}
}

// Merge appends a translated copy of other into l. Models and layer
// counts must match.
func (l *Layout) Merge(other *Layout, dx, dy int) error {
	if other.Model != l.Model || other.Layers != l.Layers {
		return fmt.Errorf("grid: Merge model/layer mismatch")
	}
	for _, n := range other.Nodes {
		l.Nodes = append(l.Nodes, NodeBox{Label: n.Label, Rect: n.Rect.Translate(dx, dy)})
	}
	for _, w := range other.Wires {
		nw := Wire{Label: w.Label, Segs: make([]WireSeg, len(w.Segs))}
		for j, s := range w.Segs {
			nw.Segs[j] = WireSeg{Seg: s.Seg.Translate(dx, dy), Layer: s.Layer}
		}
		l.Wires = append(l.Wires, nw)
	}
	return nil
}

// Stats is a summary of the measured layout metrics.
type Stats struct {
	Width, Height   int
	Area            int64
	Volume          int64
	Layers          int
	MaxWireLength   int
	TotalWireLength int64
	Wires           int
	Nodes           int
	Vias            int
}

// Stats measures the layout.
func (l *Layout) Stats() Stats {
	bb := l.BoundingBox()
	return Stats{
		Width:           bb.Width(),
		Height:          bb.Height(),
		Area:            l.Area(),
		Volume:          l.Volume(),
		Layers:          l.Layers,
		MaxWireLength:   l.MaxWireLength(),
		TotalWireLength: l.TotalWireLength(),
		Wires:           len(l.Wires),
		Nodes:           len(l.Nodes),
		Vias:            l.ViaCount(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%dx%d area=%d volume=%d layers=%d maxwire=%d wires=%d nodes=%d vias=%d",
		s.Width, s.Height, s.Area, s.Volume, s.Layers, s.MaxWireLength, s.Wires, s.Nodes, s.Vias)
}
