package grid

import (
	"bytes"
	"strings"
	"testing"

	"bfvlsi/internal/geom"
)

func pt(x, y int) geom.Point { return geom.Point{X: x, Y: y} }

func TestAddWireHVAndMetrics(t *testing.T) {
	l := NewLayout(Thompson, 2)
	if err := l.AddWireHV("w1", pt(0, 0), pt(5, 0), pt(5, 3)); err != nil {
		t.Fatal(err)
	}
	if len(l.Wires) != 1 {
		t.Fatal("wire not added")
	}
	w := &l.Wires[0]
	if w.Length() != 8 {
		t.Errorf("length = %d, want 8", w.Length())
	}
	if w.Vias() != 1 {
		t.Errorf("vias = %d, want 1", w.Vias())
	}
	a, b := w.Endpoints()
	if a != pt(0, 0) || b != pt(5, 3) {
		t.Errorf("endpoints %v %v", a, b)
	}
	st := l.Stats()
	if st.Width != 6 || st.Height != 4 || st.Area != 24 {
		t.Errorf("stats = %+v", st)
	}
	if st.Volume != 48 {
		t.Errorf("volume = %d", st.Volume)
	}
}

func TestAddWireHVDropsZeroSegments(t *testing.T) {
	l := NewLayout(Thompson, 2)
	if err := l.AddWireHV("w", pt(0, 0), pt(0, 0), pt(3, 0)); err != nil {
		t.Fatal(err)
	}
	if len(l.Wires[0].Segs) != 1 {
		t.Errorf("segments = %d, want 1", len(l.Wires[0].Segs))
	}
}

func TestAddWireErrors(t *testing.T) {
	l := NewLayout(Thompson, 2)
	if err := l.AddWire("short", []geom.Point{pt(0, 0)}, nil); err == nil {
		t.Error("single-point wire accepted")
	}
	if err := l.AddWire("diag", []geom.Point{pt(0, 0), pt(1, 1)}, []int{1}); err == nil {
		t.Error("diagonal wire accepted")
	}
	if err := l.AddWire("layer", []geom.Point{pt(0, 0), pt(1, 0)}, []int{3}); err == nil {
		t.Error("out-of-range layer accepted")
	}
	if err := l.AddWire("arity", []geom.Point{pt(0, 0), pt(1, 0)}, []int{1, 2}); err == nil {
		t.Error("layer arity mismatch accepted")
	}
}

func TestValidateOverlapDetection(t *testing.T) {
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "a", pt(0, 0), pt(10, 0))
	mustWire(t, l, "b", pt(5, 0), pt(15, 0))
	err := l.Validate(ValidateOptions{})
	if err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap not detected: %v", err)
	}
}

func TestValidateCrossingAllowedInThompson(t *testing.T) {
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "h", pt(0, 5), pt(10, 5))
	mustWire(t, l, "v", pt(5, 0), pt(5, 10))
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("crossing rejected: %v", err)
	}
}

func TestValidateTouchingEndpointsAllowed(t *testing.T) {
	// Two collinear wires sharing only an endpoint (chained track
	// intervals, as in the collinear K_N layout) are legal.
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "a", pt(0, 0), pt(5, 0))
	mustWire(t, l, "b", pt(5, 0), pt(9, 0))
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("touching endpoints rejected: %v", err)
	}
}

func TestValidateKnockKnee(t *testing.T) {
	l := NewLayout(Thompson, 2)
	// Both wires bend at (5,5).
	mustWire(t, l, "a", pt(0, 5), pt(5, 5), pt(5, 10))
	mustWire(t, l, "b", pt(5, 0), pt(5, 5), pt(10, 5))
	err := l.Validate(ValidateOptions{})
	if err == nil || !strings.Contains(err.Error(), "knock-knee") {
		t.Errorf("knock-knee not detected: %v", err)
	}
}

func TestValidateSelfOverlap(t *testing.T) {
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "a", pt(0, 0), pt(10, 0), pt(10, 5), pt(3, 5), pt(3, 0), pt(8, 0))
	err := l.Validate(ValidateOptions{})
	if err == nil {
		t.Error("self-overlap not detected")
	}
}

func TestValidateDiscontinuity(t *testing.T) {
	l := NewLayout(Thompson, 2)
	l.Wires = append(l.Wires, Wire{
		Label: "broken",
		Segs: []WireSeg{
			{Seg: geom.Segment{A: pt(0, 0), B: pt(5, 0)}, Layer: 1},
			{Seg: geom.Segment{A: pt(6, 0), B: pt(9, 0)}, Layer: 1},
		},
	})
	err := l.Validate(ValidateOptions{})
	if err == nil || !strings.Contains(err.Error(), "discontinuous") {
		t.Errorf("discontinuity not detected: %v", err)
	}
}

func TestValidateMultilayerCrossingSameLayerRejected(t *testing.T) {
	l := NewLayout(Multilayer, 4)
	if err := l.AddWire("h", []geom.Point{pt(0, 5), pt(10, 5)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddWire("v", []geom.Point{pt(5, 0), pt(5, 10)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	err := l.Validate(ValidateOptions{})
	if err == nil || !strings.Contains(err.Error(), "share 3-D grid point") {
		t.Errorf("same-layer crossing not detected: %v", err)
	}
}

func TestValidateMultilayerCrossingDifferentLayersAllowed(t *testing.T) {
	l := NewLayout(Multilayer, 4)
	if err := l.AddWire("h", []geom.Point{pt(0, 5), pt(10, 5)}, []int{2}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddWire("v", []geom.Point{pt(5, 0), pt(5, 10)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("different-layer crossing rejected: %v", err)
	}
}

func TestValidateMultilayerViaColumnConflict(t *testing.T) {
	l := NewLayout(Multilayer, 4)
	// Wire a transitions from layer 1 to layer 4 at (5,5): via column
	// occupies layers 2 and 3 there too.
	if err := l.AddWire("a", []geom.Point{pt(0, 5), pt(5, 5), pt(5, 10)}, []int{1, 4}); err != nil {
		t.Fatal(err)
	}
	// Wire b runs on layer 2 through (5,5).
	if err := l.AddWire("b", []geom.Point{pt(0, 5), pt(10, 5)}, []int{2}); err != nil {
		t.Fatal(err)
	}
	err := l.Validate(ValidateOptions{})
	if err == nil {
		t.Error("via column conflict not detected")
	}
}

func TestValidateMultilayerSharedTerminalAtNode(t *testing.T) {
	l := NewLayout(Multilayer, 2)
	l.AddNode("n", geom.NewRect(5, 5, 8, 8))
	if err := l.AddWire("a", []geom.Point{pt(0, 5), pt(5, 5)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.AddWire("b", []geom.Point{pt(5, 0), pt(5, 5)}, []int{1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("shared terminal at node rejected: %v", err)
	}
}

func TestValidateNodeInterior(t *testing.T) {
	l := NewLayout(Thompson, 2)
	l.AddNode("n", geom.NewRect(2, 2, 8, 8))
	mustWire(t, l, "through", pt(0, 5), pt(10, 5))
	err := l.Validate(ValidateOptions{CheckNodeInteriors: true})
	if err == nil || !strings.Contains(err.Error(), "interior") {
		t.Errorf("node interior violation not detected: %v", err)
	}
	// Along the boundary is fine.
	l2 := NewLayout(Thompson, 2)
	l2.AddNode("n", geom.NewRect(2, 2, 8, 8))
	mustWire(t, l2, "edge", pt(0, 2), pt(10, 2))
	if err := l2.Validate(ValidateOptions{CheckNodeInteriors: true}); err != nil {
		t.Errorf("boundary wire rejected: %v", err)
	}
}

func TestValidateTerminals(t *testing.T) {
	l := NewLayout(Thompson, 2)
	l.AddNode("n1", geom.NewRect(0, 0, 2, 2))
	l.AddNode("n2", geom.NewRect(10, 0, 12, 2))
	mustWire(t, l, "ok", pt(2, 1), pt(10, 1))
	if err := l.Validate(ValidateOptions{RequireTerminalsOnNodes: true}); err != nil {
		t.Errorf("attached wire rejected: %v", err)
	}
	mustWire(t, l, "floating", pt(4, 5), pt(6, 5))
	if err := l.Validate(ValidateOptions{RequireTerminalsOnNodes: true}); err == nil {
		t.Error("floating wire accepted")
	}
}

func TestValidateMaxCells(t *testing.T) {
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "long", pt(0, 0), pt(1000, 0))
	err := l.Validate(ValidateOptions{MaxCells: 10})
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Errorf("cell cap not enforced: %v", err)
	}
}

func TestTranslateAndMerge(t *testing.T) {
	a := NewLayout(Thompson, 2)
	a.AddNode("n", geom.NewRect(0, 0, 1, 1))
	mustWire(t, a, "w", pt(0, 0), pt(4, 0))
	b := NewLayout(Thompson, 2)
	mustWire(t, b, "w2", pt(0, 0), pt(0, 4))
	if err := a.Merge(b, 10, 10); err != nil {
		t.Fatal(err)
	}
	bb := a.BoundingBox()
	if bb.X1 != 10 || bb.Y1 != 14 {
		t.Errorf("merged bounding box = %v", bb)
	}
	a.Translate(1, 2)
	bb = a.BoundingBox()
	if bb.X0 != 1 || bb.Y0 != 2 {
		t.Errorf("translated bounding box = %v", bb)
	}
	c := NewLayout(Multilayer, 4)
	if err := a.Merge(c, 0, 0); err == nil {
		t.Error("model mismatch merge accepted")
	}
}

func TestEmptyLayoutMetrics(t *testing.T) {
	l := NewLayout(Thompson, 2)
	if l.Area() != 0 || l.MaxWireLength() != 0 || l.ViaCount() != 0 {
		t.Error("empty layout has nonzero metrics")
	}
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("empty layout invalid: %v", err)
	}
}

func mustWire(t *testing.T, l *Layout, label string, ps ...geom.Point) {
	t.Helper()
	if err := l.AddWireHV(label, ps...); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkValidateThompson(b *testing.B) {
	l := NewLayout(Thompson, 2)
	for i := 0; i < 100; i++ {
		// Distinct track x per wire so the geometry is actually legal.
		_ = l.AddWireHV("w", pt(0, i), pt(200+i, i), pt(200+i, i+200))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Validate(ValidateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestKnockKneeModelAllowsSharedBends(t *testing.T) {
	// The exact geometry Thompson rejects (two wires bending at (5,5))
	// is legal in the knock-knee model, while edge overlap still is not.
	l := NewLayout(KnockKnee, 2)
	mustWire(t, l, "a", pt(0, 5), pt(5, 5), pt(5, 10))
	mustWire(t, l, "b", pt(5, 0), pt(5, 5), pt(10, 5))
	if err := l.Validate(ValidateOptions{}); err != nil {
		t.Errorf("knock-knee rejected: %v", err)
	}
	mustWire(t, l, "overlap", pt(0, 5), pt(3, 5))
	if err := l.Validate(ValidateOptions{}); err == nil {
		t.Error("edge overlap accepted under knock-knee model")
	}
}

func TestKnockKneeJSONRoundTrip(t *testing.T) {
	l := NewLayout(KnockKnee, 2)
	mustWire(t, l, "a", pt(0, 0), pt(4, 0))
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model != KnockKnee {
		t.Errorf("model = %v", back.Model)
	}
}
