package grid

import "sort"

// WireLengthHistogram buckets wire lengths by powers of two: the key is
// the smallest power of two >= the wire's length (key 0 holds zero-length
// wires, which AddWire prevents but decoded layouts could contain).
func (l *Layout) WireLengthHistogram() map[int]int {
	h := make(map[int]int)
	for i := range l.Wires {
		n := l.Wires[i].Length()
		b := 1
		for b < n {
			b <<= 1
		}
		if n == 0 {
			b = 0
		}
		h[b]++
	}
	return h
}

// LayerUsage returns, per wiring layer (index layer-1), the total wire
// length routed on it. Uneven usage signals a poorly balanced multilayer
// partition.
func (l *Layout) LayerUsage() []int64 {
	out := make([]int64, l.Layers)
	for i := range l.Wires {
		for _, s := range l.Wires[i].Segs {
			out[s.Layer-1] += int64(s.Seg.Len())
		}
	}
	return out
}

// Percentile returns the p-th percentile (0..100) of wire lengths, or 0
// for an empty layout.
func (l *Layout) Percentile(p float64) int {
	if len(l.Wires) == 0 {
		return 0
	}
	lens := make([]int, len(l.Wires))
	for i := range l.Wires {
		lens[i] = l.Wires[i].Length()
	}
	sort.Ints(lens)
	idx := int(p / 100 * float64(len(lens)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(lens) {
		idx = len(lens) - 1
	}
	return lens[idx]
}

// WiringDensity returns total wire length divided by the bounding-box
// area: the fraction of the die the wires occupy (per layer pair under
// the Thompson convention). The paper's optimal layouts are wire-
// dominated, so density close to its maximum signals little wasted area.
func (l *Layout) WiringDensity() float64 {
	a := l.Area()
	if a == 0 {
		return 0
	}
	return float64(l.TotalWireLength()) / float64(a)
}
