package grid

import (
	"encoding/json"
	"fmt"
	"io"

	"bfvlsi/internal/geom"
)

// The JSON form of a layout, for interchange with external tooling
// (viewers, DRC scripts, downstream CAD steps). Wires serialize as their
// polyline points plus per-segment layers, which is lossless.

type layoutJSON struct {
	Model  string     `json:"model"`
	Layers int        `json:"layers"`
	Nodes  []nodeJSON `json:"nodes"`
	Wires  []wireJSON `json:"wires"`
}

type nodeJSON struct {
	Label string `json:"label"`
	Rect  [4]int `json:"rect"` // x0, y0, x1, y1
}

type wireJSON struct {
	Label     string   `json:"label"`
	Points    [][2]int `json:"points"`
	SegLayers []int    `json:"layers"`
}

func modelName(m Model) string {
	switch m {
	case Thompson:
		return "thompson"
	case Multilayer:
		return "multilayer"
	case KnockKnee:
		return "knock-knee"
	default:
		return fmt.Sprintf("model-%d", int(m))
	}
}

func modelFromName(s string) (Model, error) {
	switch s {
	case "thompson":
		return Thompson, nil
	case "multilayer":
		return Multilayer, nil
	case "knock-knee":
		return KnockKnee, nil
	default:
		return 0, fmt.Errorf("grid: unknown model %q", s)
	}
}

// MarshalJSON implements json.Marshaler.
func (l *Layout) MarshalJSON() ([]byte, error) {
	out := layoutJSON{
		Model:  modelName(l.Model),
		Layers: l.Layers,
		Nodes:  make([]nodeJSON, len(l.Nodes)),
		Wires:  make([]wireJSON, len(l.Wires)),
	}
	for i, n := range l.Nodes {
		out.Nodes[i] = nodeJSON{Label: n.Label, Rect: [4]int{n.Rect.X0, n.Rect.Y0, n.Rect.X1, n.Rect.Y1}}
	}
	for i := range l.Wires {
		w := &l.Wires[i]
		wj := wireJSON{Label: w.Label}
		if len(w.Segs) > 0 {
			wj.Points = append(wj.Points, [2]int{w.Segs[0].Seg.A.X, w.Segs[0].Seg.A.Y})
			for _, s := range w.Segs {
				wj.Points = append(wj.Points, [2]int{s.Seg.B.X, s.Seg.B.Y})
				wj.SegLayers = append(wj.SegLayers, s.Layer)
			}
		}
		out.Wires[i] = wj
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded layout is
// re-validated structurally (axis alignment, layer ranges) via AddWire.
func (l *Layout) UnmarshalJSON(data []byte) error {
	var in layoutJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	model, err := modelFromName(in.Model)
	if err != nil {
		return err
	}
	if in.Layers < 1 {
		return fmt.Errorf("grid: layout has %d layers", in.Layers)
	}
	nl := NewLayout(model, in.Layers)
	for _, n := range in.Nodes {
		nl.AddNode(n.Label, geom.NewRect(n.Rect[0], n.Rect[1], n.Rect[2], n.Rect[3]))
	}
	for _, w := range in.Wires {
		pts := make([]geom.Point, len(w.Points))
		for i, p := range w.Points {
			pts[i] = geom.Point{X: p[0], Y: p[1]}
		}
		if err := nl.AddWire(w.Label, pts, w.SegLayers); err != nil {
			return err
		}
	}
	*l = *nl
	return nil
}

// WriteJSON streams the layout to w.
func (l *Layout) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(l)
}

// ReadJSON decodes a layout from r.
func ReadJSON(r io.Reader) (*Layout, error) {
	var l Layout
	dec := json.NewDecoder(r)
	if err := dec.Decode(&l); err != nil {
		return nil, err
	}
	return &l, nil
}
