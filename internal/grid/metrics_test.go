package grid

import (
	"testing"
)

func metricLayout(t *testing.T) *Layout {
	t.Helper()
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "short", pt(0, 0), pt(3, 0))            // len 3 -> bucket 4
	mustWire(t, l, "mid", pt(0, 2), pt(8, 2))              // len 8 -> bucket 8
	mustWire(t, l, "long", pt(0, 4), pt(20, 4), pt(20, 9)) // len 25 -> bucket 32
	return l
}

func TestWireLengthHistogram(t *testing.T) {
	h := metricLayout(t).WireLengthHistogram()
	if h[4] != 1 || h[8] != 1 || h[32] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestLayerUsage(t *testing.T) {
	u := metricLayout(t).LayerUsage()
	if len(u) != 2 {
		t.Fatalf("layers = %d", len(u))
	}
	// Horizontal on layer 1: 3 + 8 + 20 = 31; vertical on layer 2: 5.
	if u[0] != 31 || u[1] != 5 {
		t.Errorf("usage = %v, want [31 5]", u)
	}
}

func TestPercentile(t *testing.T) {
	l := metricLayout(t)
	if got := l.Percentile(0); got != 3 {
		t.Errorf("p0 = %d", got)
	}
	if got := l.Percentile(100); got != 25 {
		t.Errorf("p100 = %d", got)
	}
	if got := l.Percentile(50); got != 8 {
		t.Errorf("p50 = %d", got)
	}
	empty := NewLayout(Thompson, 2)
	if empty.Percentile(50) != 0 {
		t.Error("empty percentile nonzero")
	}
}

func TestWiringDensity(t *testing.T) {
	l := metricLayout(t)
	d := l.WiringDensity()
	if d <= 0 || d > 2 {
		t.Errorf("density = %v", d)
	}
	empty := NewLayout(Thompson, 2)
	if empty.WiringDensity() != 0 {
		t.Error("empty density nonzero")
	}
}
