package grid

import (
	"fmt"

	"bfvlsi/internal/geom"
)

// ValidateOptions tunes the geometric rule checker.
type ValidateOptions struct {
	// CheckNodeInteriors enables the "wires may not pass through node
	// boxes" rule. It costs O(wires * nodes) segment/box tests.
	CheckNodeInteriors bool
	// RequireTerminalsOnNodes additionally demands every wire start and
	// end on (the boundary or interior of) some node box.
	RequireTerminalsOnNodes bool
	// MaxCells bounds the occupancy map size (roughly total wire length in
	// grid units). Validation fails fast when exceeded so huge layouts are
	// not validated by accident. 0 means the default of 50M.
	MaxCells int
}

const defaultMaxCells = 50_000_000

type edgeKey struct {
	x, y  int32
	layer int16
	horiz bool
}

type pointKey struct {
	x, y  int32
	layer int16
}

// Validate checks the layout against its model's rules:
//
// Both models: wires are contiguous rectilinear polylines; optionally no
// wire crosses a node-box interior.
//
// Thompson: no two wires (nor a wire with itself) may share a unit grid
// edge, and no two distinct wires may bend at the same grid point
// (knock-knee rule). Crossings at grid points are allowed.
//
// Multilayer: wire paths, including via columns, must be node-disjoint in
// the L-layer 3-D grid; two wires may share a 3-D grid point only where a
// node box contains that point in the plane.
func (l *Layout) Validate(opts ValidateOptions) error {
	maxCells := opts.MaxCells
	if maxCells == 0 {
		maxCells = defaultMaxCells
	}
	var totalLen int64
	for i := range l.Wires {
		totalLen += int64(l.Wires[i].Length())
	}
	if totalLen > int64(maxCells) {
		return fmt.Errorf("grid: layout too large to validate (%d wire units > %d)", totalLen, maxCells)
	}
	if err := l.validateContiguity(); err != nil {
		return err
	}
	var err error
	switch l.Model {
	case Thompson:
		err = l.validateThompson(false)
	case KnockKnee:
		err = l.validateThompson(true)
	case Multilayer:
		err = l.validateMultilayer()
	default:
		return fmt.Errorf("grid: unknown model %d", l.Model)
	}
	if err != nil {
		return err
	}
	if opts.CheckNodeInteriors {
		if err := l.validateNodeInteriors(); err != nil {
			return err
		}
	}
	if opts.RequireTerminalsOnNodes {
		if err := l.validateTerminals(); err != nil {
			return err
		}
	}
	return nil
}

func (l *Layout) validateContiguity() error {
	for i := range l.Wires {
		w := &l.Wires[i]
		if len(w.Segs) == 0 {
			return fmt.Errorf("grid: wire %q has no segments", w.Label)
		}
		for j := 1; j < len(w.Segs); j++ {
			if w.Segs[j].Seg.A != w.Segs[j-1].Seg.B {
				return fmt.Errorf("grid: wire %q discontinuous at segment %d (%v != %v)",
					w.Label, j, w.Segs[j-1].Seg.B, w.Segs[j].Seg.A)
			}
		}
	}
	return nil
}

func (l *Layout) validateThompson(allowKnockKnees bool) error {
	edges := make(map[edgeKey]int)
	for i := range l.Wires {
		w := &l.Wires[i]
		for _, ws := range w.Segs {
			s := ws.Seg
			if s.Horizontal() {
				span := s.XSpan()
				for x := span.Lo; x < span.Hi; x++ {
					k := edgeKey{x: int32(x), y: int32(s.A.Y), horiz: true}
					if prev, ok := edges[k]; ok {
						return fmt.Errorf("grid: wires %q and %q overlap on edge (%d,%d)-(%d,%d)",
							l.Wires[prev].Label, w.Label, x, s.A.Y, x+1, s.A.Y)
					}
					edges[k] = i
				}
			} else {
				span := s.YSpan()
				for y := span.Lo; y < span.Hi; y++ {
					k := edgeKey{x: int32(s.A.X), y: int32(y), horiz: false}
					if prev, ok := edges[k]; ok {
						return fmt.Errorf("grid: wires %q and %q overlap on edge (%d,%d)-(%d,%d)",
							l.Wires[prev].Label, w.Label, s.A.X, y, s.A.X, y+1)
					}
					edges[k] = i
				}
			}
		}
	}
	if allowKnockKnees {
		return nil
	}
	// Knock-knee rule: bends of different wires must not coincide.
	bends := make(map[pointKey]int)
	for i := range l.Wires {
		w := &l.Wires[i]
		for j := 1; j < len(w.Segs); j++ {
			a, b := w.Segs[j-1].Seg, w.Segs[j].Seg
			if a.Len() == 0 || b.Len() == 0 {
				continue
			}
			if a.Horizontal() == b.Horizontal() {
				continue
			}
			p := b.A
			k := pointKey{x: int32(p.X), y: int32(p.Y)}
			if prev, ok := bends[k]; ok && prev != i {
				return fmt.Errorf("grid: knock-knee: wires %q and %q both bend at %v",
					l.Wires[prev].Label, w.Label, p)
			}
			bends[k] = i
		}
	}
	return nil
}

func (l *Layout) validateMultilayer() error {
	points := make(map[pointKey]int)
	claim := func(x, y, layer, wire int) error {
		k := pointKey{x: int32(x), y: int32(y), layer: int16(layer)}
		if prev, ok := points[k]; ok && prev != wire {
			p := geom.Point{X: x, Y: y}
			if l.pointOnSomeNode(p) {
				return nil // shared only at a node box: a common terminal
			}
			return fmt.Errorf("grid: wires %q and %q share 3-D grid point (%d,%d,layer %d)",
				l.Wires[prev].Label, l.Wires[wire].Label, x, y, layer)
		}
		points[k] = wire
		return nil
	}
	for i := range l.Wires {
		w := &l.Wires[i]
		for _, ws := range w.Segs {
			s := ws.Seg
			if s.Horizontal() {
				span := s.XSpan()
				for x := span.Lo; x <= span.Hi; x++ {
					if err := claim(x, s.A.Y, ws.Layer, i); err != nil {
						return err
					}
				}
			} else {
				span := s.YSpan()
				for y := span.Lo; y <= span.Hi; y++ {
					if err := claim(s.A.X, y, ws.Layer, i); err != nil {
						return err
					}
				}
			}
		}
		// Via columns: claim the intermediate layers at each transition.
		for j := 1; j < len(w.Segs); j++ {
			la, lb := w.Segs[j-1].Layer, w.Segs[j].Layer
			if la == lb {
				continue
			}
			if la > lb {
				la, lb = lb, la
			}
			p := w.Segs[j].Seg.A
			for z := la + 1; z < lb; z++ {
				if err := claim(p.X, p.Y, z, i); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (l *Layout) pointOnSomeNode(p geom.Point) bool {
	for i := range l.Nodes {
		if l.Nodes[i].Rect.Contains(p) {
			return true
		}
	}
	return false
}

func (l *Layout) validateNodeInteriors() error {
	for i := range l.Wires {
		w := &l.Wires[i]
		for _, ws := range w.Segs {
			for j := range l.Nodes {
				if geom.SegmentIntersectsRectInterior(ws.Seg, l.Nodes[j].Rect) {
					return fmt.Errorf("grid: wire %q passes through node %q interior",
						w.Label, l.Nodes[j].Label)
				}
			}
		}
	}
	return nil
}

func (l *Layout) validateTerminals() error {
	for i := range l.Wires {
		w := &l.Wires[i]
		a, b := w.Endpoints()
		if !l.pointOnSomeNode(a) {
			return fmt.Errorf("grid: wire %q start %v not on any node", w.Label, a)
		}
		if !l.pointOnSomeNode(b) {
			return fmt.Errorf("grid: wire %q end %v not on any node", w.Label, b)
		}
	}
	return nil
}
