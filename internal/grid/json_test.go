package grid

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"bfvlsi/internal/geom"
)

func roundTrip(t *testing.T, l *Layout) *Layout {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestJSONRoundTrip(t *testing.T) {
	l := NewLayout(Multilayer, 4)
	l.AddNode("n0", geom.NewRect(0, 0, 3, 3))
	l.AddNode("n1", geom.NewRect(10, 10, 13, 13))
	if err := l.AddWire("w0",
		[]geom.Point{{X: 3, Y: 1}, {X: 8, Y: 1}, {X: 8, Y: 10}, {X: 10, Y: 10}},
		[]int{2, 1, 4}); err != nil {
		t.Fatal(err)
	}
	back := roundTrip(t, l)
	if back.Model != l.Model || back.Layers != l.Layers {
		t.Errorf("model/layers lost: %v/%d", back.Model, back.Layers)
	}
	if len(back.Nodes) != 2 || len(back.Wires) != 1 {
		t.Fatalf("contents lost: %d nodes %d wires", len(back.Nodes), len(back.Wires))
	}
	if back.Nodes[1].Rect != l.Nodes[1].Rect || back.Nodes[1].Label != "n1" {
		t.Errorf("node mismatch: %+v", back.Nodes[1])
	}
	w, bw := &l.Wires[0], &back.Wires[0]
	if len(bw.Segs) != len(w.Segs) {
		t.Fatalf("segment count mismatch")
	}
	for i := range w.Segs {
		if w.Segs[i] != bw.Segs[i] {
			t.Errorf("segment %d mismatch: %+v vs %+v", i, w.Segs[i], bw.Segs[i])
		}
	}
	// Metrics identical.
	if l.Stats() != back.Stats() {
		t.Errorf("stats changed: %v vs %v", l.Stats(), back.Stats())
	}
}

func TestJSONRejectsCorruptInput(t *testing.T) {
	cases := []string{
		`{`,
		`{"model":"nope","layers":2,"nodes":[],"wires":[]}`,
		`{"model":"thompson","layers":0,"nodes":[],"wires":[]}`,
		// diagonal wire
		`{"model":"thompson","layers":2,"nodes":[],"wires":[{"label":"d","points":[[0,0],[1,1]],"layers":[1]}]}`,
		// layer out of range
		`{"model":"thompson","layers":2,"nodes":[],"wires":[{"label":"d","points":[[0,0],[1,0]],"layers":[3]}]}`,
	}
	for i, c := range cases {
		var l Layout
		if err := json.Unmarshal([]byte(c), &l); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
}

func TestJSONStableFields(t *testing.T) {
	l := NewLayout(Thompson, 2)
	l.AddNode("a", geom.NewRect(0, 0, 1, 1))
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, field := range []string{`"model":"thompson"`, `"layers":2`, `"nodes"`, `"wires"`} {
		if !strings.Contains(s, field) {
			t.Errorf("field %s missing from %s", field, s)
		}
	}
}

func TestJSONValidatedAfterDecode(t *testing.T) {
	// A decoded layout still validates (rules run on real structures).
	l := NewLayout(Thompson, 2)
	mustWire(t, l, "a", pt(0, 0), pt(5, 0), pt(5, 5))
	back := roundTrip(t, l)
	if err := back.Validate(ValidateOptions{}); err != nil {
		t.Error(err)
	}
}
