package serve

import (
	"container/list"
	"sync"
)

// entry is one cache slot. It is filled exactly once - ready is closed
// after body and err are set - and immutable afterwards, so waiters read
// body and err without holding the cache lock.
type entry struct {
	ready chan struct{}
	body  []byte
	err   error
}

// cache is a fixed-capacity LRU of content-addressed response bodies
// with single-flight semantics: concurrent requests for the same key
// share one computation, and every caller after the first gets the
// first caller's bytes (so cache hits are byte-identical by
// construction). Failed computations are not cached; a later request
// for the same key recomputes.
//
// The cache is bounded two ways: by entry count and, when maxBytes is
// positive, by the total size of cached bodies. A checkpoint response
// can be a million times the size of a layout response, so an
// entry-count bound alone would let a handful of large artifacts grow
// the heap without limit. In-flight entries have unknown size and
// count only against the entry bound; a body is charged when its
// computation completes, evicting from the LRU tail until the budget
// holds again (a single body larger than the whole budget is evicted
// immediately - it is served, just not kept).
type cache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	bytes    int64            //bflint:guardedby mu -- total size of sized (completed) cached bodies
	evicted  int64            //bflint:guardedby mu -- entries dropped to make room, both bounds
	order    *list.List       //bflint:guardedby mu -- front = most recently used; values are string keys
	entries  map[string]*slot //bflint:guardedby mu
}

type slot struct {
	elem *list.Element
	e    *entry
	// size is the charged body size; sized marks completed entries
	// (in-flight slots are not yet charged against the byte budget).
	size  int64
	sized bool
}

func newCache(capacity int, maxBytes int64) *cache {
	return &cache{
		cap:      capacity,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*slot, capacity),
	}
}

// do returns the cached body for key, computing it with compute on a
// miss. hit reports whether this caller reused an existing entry;
// joining a computation already in flight counts as a hit (the caller
// did not pay for the work).
func (c *cache) do(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if s, ok := c.entries[key]; ok {
		c.order.MoveToFront(s.elem)
		e := s.e
		c.mu.Unlock()
		<-e.ready
		return e.body, true, e.err
	}
	e := &entry{ready: make(chan struct{})}
	s := &slot{e: e}
	s.elem = c.order.PushFront(key)
	c.entries[key] = s
	c.evictLocked()
	c.mu.Unlock()

	e.body, e.err = compute()
	close(e.ready)
	if e.err != nil {
		// Errors are not cached: drop the entry so the next request
		// retries. Waiters already holding e still see the error.
		c.remove(key, s)
		return e.body, false, e.err
	}
	// Charge the completed body against the byte budget (the slot may
	// have been evicted while computing; chargeLocked checks).
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == s {
		s.size = int64(len(e.body))
		s.sized = true
		c.bytes += s.size
		c.evictLocked()
	}
	c.mu.Unlock()
	return e.body, false, e.err
}

// overLocked reports whether either bound is currently exceeded.
func (c *cache) overLocked() bool {
	if c.order.Len() > c.cap {
		return true
	}
	return c.maxBytes > 0 && c.bytes > c.maxBytes
}

// evictLocked drops least-recently-used entries until both the entry
// and byte bounds hold. An in-flight entry may be evicted; its waiters
// keep their pointer and the computation completes normally, it just is
// not cached.
func (c *cache) evictLocked() {
	for c.overLocked() && c.order.Len() > 0 {
		back := c.order.Back()
		key := back.Value.(string)
		s := c.entries[key]
		c.order.Remove(back)
		delete(c.entries, key)
		if s.sized {
			c.bytes -= s.size
		}
		c.evicted++
	}
}

// remove deletes key only if it still maps to the given slot (it may
// have been evicted and recomputed by someone else in the meantime).
func (c *cache) remove(key string, s *slot) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == s {
		c.order.Remove(s.elem)
		delete(c.entries, key)
		if s.sized {
			c.bytes -= s.size
		}
	}
	c.mu.Unlock()
}

// stats returns the entry count, cached body bytes, and eviction count.
func (c *cache) stats() (entries int, bytes, evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes, c.evicted
}

// len returns the current entry count.
func (c *cache) len() int {
	n, _, _ := c.stats()
	return n
}
