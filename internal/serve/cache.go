package serve

import (
	"container/list"
	"sync"
)

// entry is one cache slot. It is filled exactly once - ready is closed
// after body and err are set - and immutable afterwards, so waiters read
// body and err without holding the cache lock.
type entry struct {
	ready chan struct{}
	body  []byte
	err   error
}

// cache is a fixed-capacity LRU of content-addressed response bodies
// with single-flight semantics: concurrent requests for the same key
// share one computation, and every caller after the first gets the
// first caller's bytes (so cache hits are byte-identical by
// construction). Failed computations are not cached; a later request
// for the same key recomputes.
type cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are string keys
	entries map[string]*slot
}

type slot struct {
	elem *list.Element
	e    *entry
}

func newCache(capacity int) *cache {
	return &cache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*slot, capacity),
	}
}

// do returns the cached body for key, computing it with compute on a
// miss. hit reports whether this caller reused an existing entry;
// joining a computation already in flight counts as a hit (the caller
// did not pay for the work).
func (c *cache) do(key string, compute func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if s, ok := c.entries[key]; ok {
		c.order.MoveToFront(s.elem)
		e := s.e
		c.mu.Unlock()
		<-e.ready
		return e.body, true, e.err
	}
	e := &entry{ready: make(chan struct{})}
	s := &slot{e: e}
	s.elem = c.order.PushFront(key)
	c.entries[key] = s
	c.evictLocked()
	c.mu.Unlock()

	e.body, e.err = compute()
	close(e.ready)
	if e.err != nil {
		// Errors are not cached: drop the entry so the next request
		// retries. Waiters already holding e still see the error.
		c.remove(key, s)
	}
	return e.body, false, e.err
}

// evictLocked drops least-recently-used entries beyond capacity. An
// in-flight entry may be evicted; its waiters keep their pointer and
// the computation completes normally, it just is not cached.
func (c *cache) evictLocked() {
	for c.order.Len() > c.cap {
		back := c.order.Back()
		key := back.Value.(string)
		c.order.Remove(back)
		delete(c.entries, key)
	}
}

// remove deletes key only if it still maps to the given slot (it may
// have been evicted and recomputed by someone else in the meantime).
func (c *cache) remove(key string, s *slot) {
	c.mu.Lock()
	if cur, ok := c.entries[key]; ok && cur == s {
		c.order.Remove(s.elem)
		delete(c.entries, key)
	}
	c.mu.Unlock()
}

// len returns the current entry count.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
