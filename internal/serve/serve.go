// Package serve is the layout-and-routing query service behind
// cmd/bfserve: an HTTP/JSON front end over the repository's
// construction and simulation packages, with a content-addressed
// artifact cache.
//
// Every POST endpoint follows the same pipeline: decode the JSON
// request (unknown fields rejected), map it to the matching
// internal/wire spec, Validate, and use the SHA-256 of the spec's
// canonical wire encoding as the cache key. Because the wire encoding
// is canonical (one value, one byte string - see internal/wire), two
// requests describe the same artifact exactly when their keys match,
// and the cache can hand back the first computation's response bytes
// verbatim. Hits are therefore byte-identical, and concurrent misses
// for the same key share a single computation (single-flight).
//
// The service never reads the wall clock directly: Config.Now injects
// the clock, and the default frozen clock keeps responses a pure
// function of the request spec (the determinism contract bflint's
// detrand analyzer enforces on this package).
package serve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bfvlsi/internal/adaptive"
	"bfvlsi/internal/grid"
	"bfvlsi/internal/packaging"
	"bfvlsi/internal/reliable"
	"bfvlsi/internal/routing"
	"bfvlsi/internal/snapshot"
	"bfvlsi/internal/wire"
)

// Default configuration values.
const (
	// DefaultCacheEntries is the artifact cache capacity.
	DefaultCacheEntries = 256
	// DefaultMaxDim caps the butterfly dimension a request may ask the
	// service to simulate or design (2^12 rows is ~53k nodes, the
	// largest size that answers interactively).
	DefaultMaxDim = 12
	// DefaultCacheBytes is the artifact cache's body-size budget.
	// Checkpoint responses are orders of magnitude larger than layout
	// responses, so the cache is bounded by bytes as well as entries.
	DefaultCacheBytes = 64 << 20
	// maxRequestBytes bounds a request body; real specs are well under
	// a kilobyte.
	maxRequestBytes = 1 << 20
	// maxWhatifRequestBytes bounds a /v1/whatif body, which carries a
	// whole base64 checkpoint rather than a spec.
	maxWhatifRequestBytes = 1 << 26
)

// Config parameterizes a Server.
type Config struct {
	// CacheEntries is the artifact cache capacity (0 = DefaultCacheEntries).
	CacheEntries int
	// CacheBytes bounds the total size of cached response bodies
	// (0 = DefaultCacheBytes, negative = entry bound only).
	CacheBytes int64
	// MaxDim caps the butterfly dimension of route, sweep, packaging,
	// and hierarchy requests (0 = DefaultMaxDim; never above the wire
	// format's own caps).
	MaxDim int
	// Timeout, when positive, bounds each request's total handling time
	// (http.TimeoutHandler semantics: the client gets 503 on expiry).
	Timeout time.Duration
	// MaxInflight, when positive, caps concurrently handled /v1/
	// requests: excess requests are shed immediately with 503 and a
	// Retry-After header, giving client backoff a real overload signal
	// instead of a queue that silently grows until the timeout reaps it.
	// 0 disables shedding. /healthz and /statsz are never shed.
	MaxInflight int
	// Now supplies the clock for the /statsz latency metrics. Leaving
	// it nil freezes the clock: the service stays deterministic and the
	// latency metrics read zero.
	Now func() time.Time
}

// Server answers layout, packaging, routing, and fault-sweep queries
// over HTTP, caching every constructed artifact by content address.
type Server struct {
	cfg   Config
	cache *cache
	stats map[string]*endpointStats
	// inflight tracks concurrently handled /v1/ requests for the
	// MaxInflight overload gate; shed and oversize count the two
	// hardening rejections (503 overload, 413 oversized body).
	inflight atomic.Int64
	shed     atomic.Int64
	oversize atomic.Int64
}

// endpointNames fixes the metric iteration order; /statsz reports
// endpoints in this (sorted) order.
var endpointNames = []string{"checkpoint", "faultsweep", "layout", "packaging", "route", "whatif"}

// endpointStats is one endpoint's atomic counter set.
type endpointStats struct {
	requests     atomic.Int64
	hits         atomic.Int64
	misses       atomic.Int64
	errors       atomic.Int64
	latencyMicro atomic.Int64
}

// New builds a Server from the config, applying defaults.
func New(cfg Config) *Server {
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = DefaultCacheEntries
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.MaxDim <= 0 {
		cfg.MaxDim = DefaultMaxDim
	}
	if cfg.Now == nil {
		frozen := time.Time{}
		cfg.Now = func() time.Time { return frozen }
	}
	s := &Server{
		cfg:   cfg,
		cache: newCache(cfg.CacheEntries, cfg.CacheBytes),
		stats: make(map[string]*endpointStats, len(endpointNames)),
	}
	for _, name := range endpointNames {
		s.stats[name] = &endpointStats{}
	}
	return s
}

// Handler returns the service's HTTP handler, with the configured
// request timeout applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/v1/layout", s.endpoint("layout", s.parseLayout))
	mux.HandleFunc("/v1/packaging", s.endpoint("packaging", s.parsePackaging))
	mux.HandleFunc("/v1/route", s.endpoint("route", s.parseRoute))
	mux.HandleFunc("/v1/faultsweep", s.endpoint("faultsweep", s.parseFaultSweep))
	mux.HandleFunc("/v1/checkpoint", s.endpoint("checkpoint", s.parseCheckpoint))
	mux.HandleFunc("/v1/whatif", s.endpointLimit("whatif", maxWhatifRequestBytes, s.parseWhatif))
	if s.cfg.Timeout > 0 {
		return http.TimeoutHandler(mux, s.cfg.Timeout, `{"error":"request timed out"}`)
	}
	return mux
}

// spec is what every parser produces: a validated, canonically
// encodable request plus the computation that builds its response.
type spec struct {
	// encoded is the canonical wire encoding; its SHA-256 is the cache key.
	encoded []byte
	// compute builds the response value; it runs at most once per key.
	compute func() (any, error)
}

// errBadRequest wraps client errors (malformed JSON, invalid specs) so
// the endpoint wrapper maps them to 400 rather than 500.
var errBadRequest = errors.New("bad request")

func badRequest(err error) error {
	return fmt.Errorf("%w: %w", errBadRequest, err)
}

// endpoint wraps one POST endpoint with the shared pipeline: metrics,
// method and body-size checks, parse, content-address, cache, respond.
func (s *Server) endpoint(name string, parse func(*http.Request) (*spec, error)) http.HandlerFunc {
	return s.endpointLimit(name, maxRequestBytes, parse)
}

// endpointLimit is endpoint with an explicit request body cap, for the
// endpoints whose requests carry artifacts rather than specs.
func (s *Server) endpointLimit(name string, limit int64, parse func(*http.Request) (*spec, error)) http.HandlerFunc {
	st := s.stats[name]
	return func(w http.ResponseWriter, r *http.Request) {
		st.requests.Add(1)
		start := s.cfg.Now()
		defer func() {
			st.latencyMicro.Add(s.cfg.Now().Sub(start).Microseconds())
		}()
		if r.Method != http.MethodPost {
			st.errors.Add(1)
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
			return
		}
		// Overload gate: shed beyond-capacity requests before any work,
		// with Retry-After so a well-behaved coordinator backs off
		// instead of hammering a server that is already saturated.
		n := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		if max := s.cfg.MaxInflight; max > 0 && n > int64(max) {
			s.shed.Add(1)
			st.errors.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("server at its in-flight cap (%d); retry after backoff", max))
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, limit)
		sp, err := parse(r)
		if err != nil {
			st.errors.Add(1)
			status := http.StatusInternalServerError
			var mbe *http.MaxBytesError
			switch {
			case errors.As(err, &mbe):
				// MaxBytesReader tripped: the body exceeds this
				// endpoint's cap, which is the client's problem and has
				// its own status code.
				s.oversize.Add(1)
				status = http.StatusRequestEntityTooLarge
			case errors.Is(err, errBadRequest):
				status = http.StatusBadRequest
			}
			writeError(w, status, err)
			return
		}
		sum := sha256.Sum256(sp.encoded)
		key := hex.EncodeToString(sum[:])
		body, hit, err := s.cache.do(key, func() ([]byte, error) {
			v, err := sp.compute()
			if err != nil {
				return nil, err
			}
			return json.Marshal(v)
		})
		if err != nil {
			st.errors.Add(1)
			status := http.StatusInternalServerError
			if errors.Is(err, errBadRequest) {
				// Compute-time client errors: e.g. a structurally sound
				// checkpoint that fails semantic validation on restore.
				status = http.StatusBadRequest
			}
			writeError(w, status, err)
			return
		}
		if hit {
			st.hits.Add(1)
			w.Header().Set("X-Bfserve-Cache", "hit")
		} else {
			st.misses.Add(1)
			w.Header().Set("X-Bfserve-Cache", "miss")
		}
		w.Header().Set("X-Bfserve-Key", key)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// decodeJSON strictly decodes one JSON object from the request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(err)
	}
	if dec.More() {
		return badRequest(fmt.Errorf("trailing data after the JSON request"))
	}
	return nil
}

// checkDim applies the service-level butterfly dimension cap on top of
// the wire format's own bounds.
func (s *Server) checkDim(n int) error {
	if n > s.cfg.MaxDim {
		return badRequest(fmt.Errorf("dimension %d exceeds this server's cap %d", n, s.cfg.MaxDim))
	}
	return nil
}

// finishSpec validates and canonically encodes a wire spec.
func finishSpec(v interface {
	Validate() error
	MarshalBinary() ([]byte, error)
}, compute func() (any, error)) (*spec, error) {
	if err := v.Validate(); err != nil {
		return nil, badRequest(err)
	}
	encoded, err := v.MarshalBinary()
	if err != nil {
		return nil, badRequest(err)
	}
	return &spec{encoded: encoded, compute: compute}, nil
}

// ---- /v1/layout ----

type layoutRequest struct {
	Family         string `json:"family"`
	N              int    `json:"n,omitempty"`
	Widths         []int  `json:"widths,omitempty"`
	Layers         int    `json:"layers,omitempty"`
	Multilayer     bool   `json:"multilayer,omitempty"`
	NodeSide       int    `json:"nodeSide,omitempty"`
	NoTrackReorder bool   `json:"noTrackReorder,omitempty"`
	SliceLayers    int    `json:"sliceLayers,omitempty"`
	MaxPins        int    `json:"maxPins,omitempty"`
	ChipSide       int    `json:"chipSide,omitempty"`
}

type layoutResponse struct {
	Family string           `json:"family"`
	Stats  grid.Stats       `json:"stats"`
	Extras map[string]int64 `json:"extras"`
}

func (s *Server) parseLayout(r *http.Request) (*spec, error) {
	var req layoutRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	family, err := wire.ParseFamily(req.Family)
	if err != nil {
		return nil, badRequest(err)
	}
	ws := &wire.LayoutSpec{
		Family: family, N: req.N, Widths: req.Widths,
		Layers: req.Layers, Multilayer: req.Multilayer,
		NodeSide: req.NodeSide, NoTrackReorder: req.NoTrackReorder,
		SliceLayers: req.SliceLayers, MaxPins: req.MaxPins, ChipSide: req.ChipSide,
	}
	// The butterfly families answer in time exponential in the
	// dimension; collinear's N is a complete-graph size with its own
	// polynomial cap inside wire.
	dim := 0
	switch family {
	case wire.FamilyHierarchy:
		dim = req.N
	case wire.FamilyThompson, wire.FamilyStack3D:
		for _, w := range req.Widths {
			dim += w
		}
	}
	if err := s.checkDim(dim); err != nil {
		return nil, err
	}
	return finishSpec(ws, func() (any, error) {
		res, err := ws.Build()
		if err != nil {
			return nil, err
		}
		extras := make(map[string]int64, len(res.Extras))
		for _, x := range res.Extras {
			extras[x.Name] = x.Value
		}
		return layoutResponse{Family: res.Family.String(), Stats: res.Stats, Extras: extras}, nil
	})
}

// ---- /v1/packaging ----

type packagingRequest struct {
	Variant       string `json:"variant"`
	N             int    `json:"n"`
	RowsPerModule int    `json:"rowsPerModule,omitempty"`
}

type packagingResponse struct {
	Variant    string          `json:"variant"`
	Desc       string          `json:"desc"`
	NumModules int             `json:"numModules"`
	Stats      packaging.Stats `json:"stats"`
}

func (s *Server) parsePackaging(r *http.Request) (*spec, error) {
	var req packagingRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	variant, err := wire.ParseVariant(req.Variant)
	if err != nil {
		return nil, badRequest(err)
	}
	if err := s.checkDim(req.N); err != nil {
		return nil, err
	}
	ws := &wire.PackagingSpec{N: req.N, Variant: variant, RowsPerModule: req.RowsPerModule}
	return finishSpec(ws, func() (any, error) {
		plan, err := ws.Build()
		if err != nil {
			return nil, err
		}
		return packagingResponse{
			Variant:    variant.String(),
			Desc:       plan.Desc,
			NumModules: plan.NumModules,
			Stats:      plan.Stats,
		}, nil
	})
}

// ---- /v1/route ----

type faultRequest struct {
	LinkRate         float64             `json:"linkRate,omitempty"`
	NodeRate         float64             `json:"nodeRate,omitempty"`
	Seed             int64               `json:"seed,omitempty"`
	TransientCount   int                 `json:"transientCount,omitempty"`
	TransientHorizon int                 `json:"transientHorizon,omitempty"`
	TransientRepair  int                 `json:"transientRepair,omitempty"`
	Events           []faultEventRequest `json:"events,omitempty"`
}

type faultEventRequest struct {
	Node        int `json:"node"`
	Out         int `json:"out"`
	Start       int `json:"start"`
	RepairAfter int `json:"repairAfter,omitempty"`
}

type routeRequest struct {
	N           int           `json:"n"`
	Lambda      float64       `json:"lambda"`
	Warmup      int           `json:"warmup,omitempty"`
	Cycles      int           `json:"cycles"`
	Seed        int64         `json:"seed,omitempty"`
	BufferLimit int           `json:"bufferLimit,omitempty"`
	TTL         int           `json:"ttl,omitempty"`
	Pattern     string        `json:"pattern,omitempty"`
	Policy      string        `json:"policy,omitempty"`
	Fault       *faultRequest `json:"fault,omitempty"`
}

func parsePattern(s string) (routing.Pattern, error) {
	switch s {
	case "", "uniform":
		return routing.Uniform, nil
	case "bit-reverse":
		return routing.BitReverse, nil
	case "transpose":
		return routing.Transpose, nil
	case "complement":
		return routing.Complement, nil
	case "shuffle":
		return routing.Shuffle, nil
	default:
		return 0, fmt.Errorf("unknown traffic pattern %q (want uniform, bit-reverse, transpose, complement, or shuffle)", s)
	}
}

func parsePolicy(s string) (routing.Policy, error) {
	switch s {
	case "", "misroute":
		return routing.Misroute, nil
	case "drop", "dropdead":
		return routing.DropDead, nil
	default:
		return 0, fmt.Errorf("unknown dead-link policy %q (want misroute or drop)", s)
	}
}

func (f *faultRequest) toWire(n int) *wire.FaultSpec {
	fs := &wire.FaultSpec{
		N: n, LinkRate: f.LinkRate, NodeRate: f.NodeRate, Seed: f.Seed,
		TransientCount: f.TransientCount, TransientHorizon: f.TransientHorizon,
		TransientRepair: f.TransientRepair,
	}
	for _, ev := range f.Events {
		fs.Events = append(fs.Events, wire.FaultEvent{
			Node: ev.Node, Out: ev.Out, Start: ev.Start, RepairAfter: ev.RepairAfter,
		})
	}
	return fs
}

func (s *Server) parseRoute(r *http.Request) (*spec, error) {
	var req routeRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	pattern, err := parsePattern(req.Pattern)
	if err != nil {
		return nil, badRequest(err)
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return nil, badRequest(err)
	}
	if err := s.checkDim(req.N); err != nil {
		return nil, err
	}
	ws := &wire.RouteSpec{
		N: req.N, Lambda: req.Lambda, Warmup: req.Warmup, Cycles: req.Cycles,
		Seed: req.Seed, BufferLimit: req.BufferLimit, TTL: req.TTL,
		Pattern: pattern, Policy: policy,
	}
	if req.Fault != nil {
		ws.Fault = req.Fault.toWire(req.N)
	}
	return finishSpec(ws, func() (any, error) {
		return ws.Run()
	})
}

// ---- /v1/faultsweep ----

type faultSweepRequest struct {
	N           int       `json:"n"`
	Lambda      float64   `json:"lambda"`
	Warmup      int       `json:"warmup,omitempty"`
	Cycles      int       `json:"cycles"`
	Seed        int64     `json:"seed,omitempty"`
	BufferLimit int       `json:"bufferLimit,omitempty"`
	TTL         int       `json:"ttl,omitempty"`
	Rates       []float64 `json:"rates"`
}

type faultSweepResponse struct {
	Points []faultSweepPoint `json:"points"`
}

type faultSweepPoint struct {
	Rate      float64         `json:"rate"`
	DeadLinks int             `json:"deadLinks"`
	Result    *routing.Result `json:"result"`
}

func (s *Server) parseFaultSweep(r *http.Request) (*spec, error) {
	var req faultSweepRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if err := s.checkDim(req.N); err != nil {
		return nil, err
	}
	ws := &wire.SweepSpec{
		N: req.N, Lambda: req.Lambda, Warmup: req.Warmup, Cycles: req.Cycles,
		Seed: req.Seed, BufferLimit: req.BufferLimit, TTL: req.TTL, Rates: req.Rates,
	}
	return finishSpec(ws, func() (any, error) {
		pts, err := ws.Run()
		if err != nil {
			return nil, err
		}
		resp := faultSweepResponse{Points: make([]faultSweepPoint, 0, len(pts))}
		for _, pt := range pts {
			if pt.Err != nil {
				return nil, fmt.Errorf("sweep rate %g: %w", pt.Rate, pt.Err)
			}
			resp.Points = append(resp.Points, faultSweepPoint{
				Rate: pt.Rate, DeadLinks: pt.DeadLinks, Result: pt.Result,
			})
		}
		return resp, nil
	})
}

// ---- /v1/checkpoint ----

type reliableRequest struct {
	Timeout     int   `json:"timeout"`
	MaxRetries  int   `json:"maxRetries,omitempty"`
	Jitter      int   `json:"jitter,omitempty"`
	MaxTimeout  int   `json:"maxTimeout,omitempty"`
	Seed        int64 `json:"seed,omitempty"`
	MeasureFrom int   `json:"measureFrom,omitempty"`
}

type adaptiveRequest struct {
	Threshold     int   `json:"threshold,omitempty"`
	ProbeInterval int   `json:"probeInterval,omitempty"`
	MaxDetours    int   `json:"maxDetours,omitempty"`
	Epoch         int   `json:"epoch,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
}

// checkpointRequest is a routeRequest plus the optional hook recipes
// and the cycle boundary at which to freeze the run.
type checkpointRequest struct {
	routeRequest
	Reliable *reliableRequest `json:"reliable,omitempty"`
	Adaptive *adaptiveRequest `json:"adaptive,omitempty"`
	Cycle    int              `json:"cycle"`
}

type checkpointResponse struct {
	// Key is the checkpoint's content address (SHA-256 of its canonical
	// encoding); Checkpoint is the encoding itself (base64 in JSON),
	// ready to feed back to /v1/whatif.
	Key        string `json:"key"`
	Cycle      int    `json:"cycle"`
	SizeBytes  int    `json:"sizeBytes"`
	Checkpoint []byte `json:"checkpoint"`
}

// snapshotSpec assembles the internal/snapshot spec a checkpoint
// request describes.
func (req *checkpointRequest) snapshotSpec() (snapshot.Spec, error) {
	pattern, err := parsePattern(req.Pattern)
	if err != nil {
		return snapshot.Spec{}, err
	}
	policy, err := parsePolicy(req.Policy)
	if err != nil {
		return snapshot.Spec{}, err
	}
	sp := snapshot.Spec{Route: wire.RouteSpec{
		N: req.N, Lambda: req.Lambda, Warmup: req.Warmup, Cycles: req.Cycles,
		Seed: req.Seed, BufferLimit: req.BufferLimit, TTL: req.TTL,
		Pattern: pattern, Policy: policy,
	}}
	if req.Fault != nil {
		sp.Route.Fault = req.Fault.toWire(req.N)
	}
	if req.Reliable != nil {
		sp.Reliable = &snapshot.ReliableSpec{
			Timeout: req.Reliable.Timeout, MaxRetries: req.Reliable.MaxRetries,
			Jitter: req.Reliable.Jitter, MaxTimeout: req.Reliable.MaxTimeout,
			Seed: req.Reliable.Seed, MeasureFrom: req.Reliable.MeasureFrom,
		}
	}
	if req.Adaptive != nil {
		sp.Adaptive = &snapshot.AdaptiveSpec{
			Threshold: req.Adaptive.Threshold, ProbeInterval: req.Adaptive.ProbeInterval,
			MaxDetours: req.Adaptive.MaxDetours, Epoch: req.Adaptive.Epoch,
			Seed: req.Adaptive.Seed,
		}
	}
	return sp, nil
}

func (s *Server) parseCheckpoint(r *http.Request) (*spec, error) {
	var req checkpointRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if err := s.checkDim(req.N); err != nil {
		return nil, err
	}
	sp, err := req.snapshotSpec()
	if err != nil {
		return nil, badRequest(err)
	}
	if err := sp.Validate(); err != nil {
		return nil, badRequest(err)
	}
	if total := sp.Route.Warmup + sp.Route.Cycles; req.Cycle < 0 || req.Cycle > total {
		return nil, badRequest(fmt.Errorf("cycle %d outside [0,%d]", req.Cycle, total))
	}
	sb, err := sp.MarshalBinary()
	if err != nil {
		return nil, badRequest(err)
	}
	// The cache key covers spec AND cycle: the canonical spec frame with
	// the cycle appended is still one value, one byte string.
	encoded := binary.AppendUvarint(sb, uint64(req.Cycle))
	cycle := req.Cycle
	return &spec{encoded: encoded, compute: func() (any, error) {
		run, err := snapshot.Start(sp, nil)
		if err != nil {
			return nil, err
		}
		if err := run.StepTo(cycle); err != nil {
			return nil, err
		}
		b, err := run.Checkpoint().MarshalBinary()
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(b)
		return checkpointResponse{
			Key: hex.EncodeToString(sum[:]), Cycle: cycle,
			SizeBytes: len(b), Checkpoint: b,
		}, nil
	}}, nil
}

// ---- /v1/whatif ----

// whatifRequest resumes a checkpoint under a different fault plan: the
// "what if this fault future hit a warmed-up machine" query. A null
// fault strips the plan (the fault-free continuation).
type whatifRequest struct {
	Checkpoint []byte        `json:"checkpoint"`
	Fault      *faultRequest `json:"fault,omitempty"`
}

type whatifResponse struct {
	Result   *routing.Result `json:"result"`
	Reliable *reliable.Stats `json:"reliable,omitempty"`
	Adaptive *adaptive.Stats `json:"adaptive,omitempty"`
}

func (s *Server) parseWhatif(r *http.Request) (*spec, error) {
	var req whatifRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	var ck snapshot.Checkpoint
	if err := ck.UnmarshalBinary(req.Checkpoint); err != nil {
		return nil, badRequest(fmt.Errorf("checkpoint: %w", err))
	}
	if err := s.checkDim(ck.Spec.Route.N); err != nil {
		return nil, err
	}
	var fault *wire.FaultSpec
	// A decoded checkpoint's bytes are its canonical encoding, so
	// checkpoint bytes + fault presence + canonical fault frame is a
	// canonical encoding of the whole what-if query.
	encoded := append([]byte(nil), req.Checkpoint...)
	if req.Fault != nil {
		fault = req.Fault.toWire(ck.Spec.Route.N)
		if err := fault.Validate(); err != nil {
			return nil, badRequest(err)
		}
		fb, err := fault.MarshalBinary()
		if err != nil {
			return nil, badRequest(err)
		}
		encoded = append(append(encoded, 1), fb...)
	} else {
		encoded = append(encoded, 0)
	}
	return &spec{encoded: encoded, compute: func() (any, error) {
		run, err := ck.Fork(fault, nil)
		if err != nil {
			// A structurally sound checkpoint can still fail semantic
			// validation (counters that break conservation, draws out of
			// range); that is the client's artifact, not a server fault.
			return nil, badRequest(err)
		}
		res, err := run.Finish()
		if err != nil {
			return nil, err
		}
		resp := whatifResponse{Result: res}
		if run.Transport != nil {
			st := run.Transport.Stats()
			resp.Reliable = &st
		}
		if run.Router != nil {
			st := run.Router.Stats()
			resp.Adaptive = &st
		}
		return resp, nil
	}}, nil
}

// ---- /healthz and /statsz ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"status":"ok"}` + "\n"))
}

type statszEndpoint struct {
	Requests        int64 `json:"requests"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	Errors          int64 `json:"errors"`
	AvgLatencyMicro int64 `json:"avgLatencyMicros"`
}

type statszResponse struct {
	CacheEntries  int `json:"cacheEntries"`
	CacheCapacity int `json:"cacheCapacity"`
	// CacheBytes is the total size of cached response bodies;
	// CacheByteCapacity the configured budget (<= 0 means unbounded);
	// CacheEvictions counts entries dropped to satisfy either bound.
	CacheBytes        int64 `json:"cacheBytes"`
	CacheByteCapacity int64 `json:"cacheByteCapacity"`
	CacheEvictions    int64 `json:"cacheEvictions"`
	// Inflight is the instantaneous concurrent /v1/ request count and
	// MaxInflight the shedding cap (0 = unlimited); ShedOverload counts
	// 503s from the cap and RejectedOversize 413s from the body limits.
	Inflight         int64                     `json:"inflight"`
	MaxInflight      int                       `json:"maxInflight"`
	ShedOverload     int64                     `json:"shedOverload"`
	RejectedOversize int64                     `json:"rejectedOversize"`
	Endpoints        map[string]statszEndpoint `json:"endpoints"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	entries, cacheBytes, evicted := s.cache.stats()
	resp := statszResponse{
		CacheEntries:      entries,
		CacheCapacity:     s.cfg.CacheEntries,
		CacheBytes:        cacheBytes,
		CacheByteCapacity: s.cfg.CacheBytes,
		CacheEvictions:    evicted,
		Inflight:          s.inflight.Load(),
		MaxInflight:       s.cfg.MaxInflight,
		ShedOverload:      s.shed.Load(),
		RejectedOversize:  s.oversize.Load(),
		Endpoints:         make(map[string]statszEndpoint, len(endpointNames)),
	}
	// Iterate the fixed name list, not the stats map: encoding/json
	// sorts map keys on output, but the collection itself stays
	// order-insensitive this way.
	for _, name := range endpointNames {
		st := s.stats[name]
		ep := statszEndpoint{
			Requests: st.requests.Load(),
			Hits:     st.hits.Load(),
			Misses:   st.misses.Load(),
			Errors:   st.errors.Load(),
		}
		if ep.Requests > 0 {
			ep.AvgLatencyMicro = st.latencyMicro.Load() / ep.Requests
		}
		resp.Endpoints[name] = ep
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
