package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	// A ticking fake clock: deterministic, but latency metrics move.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	srv := New(Config{
		CacheEntries: 64,
		MaxDim:       8,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Millisecond)
			return now
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEndpoints drives every POST endpoint through the same table:
// a valid spec answers 200 with a well-formed body, malformed JSON and
// out-of-range parameters answer 400, and an unknown JSON field is a
// client error rather than silently ignored.
func TestEndpoints(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantIn     string // substring of the response body
	}{
		{"layout collinear ok", "/v1/layout", `{"family":"collinear","n":8}`, 200, `"extras"`},
		{"layout thompson ok", "/v1/layout", `{"family":"thompson","widths":[2,2,2]}`, 200, `"blockWidth"`},
		{"layout stack3d ok", "/v1/layout", `{"family":"stack3d","widths":[2,2,2,2],"sliceLayers":2}`, 200, `"volume"`},
		{"layout hierarchy ok", "/v1/layout", `{"family":"hierarchy","n":8,"maxPins":64,"chipSide":20}`, 200, `"numChips"`},
		{"layout unknown family", "/v1/layout", `{"family":"benes","n":8}`, 400, "unknown layout family"},
		{"layout malformed json", "/v1/layout", `{"family":`, 400, "error"},
		{"layout unknown field", "/v1/layout", `{"family":"collinear","n":8,"frobnicate":1}`, 400, "frobnicate"},
		{"layout stray field for family", "/v1/layout", `{"family":"collinear","n":8,"maxPins":4}`, 400, "must be zero"},
		{"layout dim over cap", "/v1/layout", `{"family":"hierarchy","n":9,"maxPins":64,"chipSide":20}`, 400, "exceeds this server's cap"},

		{"packaging row ok", "/v1/packaging", `{"variant":"row","n":6}`, 200, `"numModules"`},
		{"packaging nucleus ok", "/v1/packaging", `{"variant":"nucleus","n":6}`, 200, `"stats"`},
		{"packaging naive ok", "/v1/packaging", `{"variant":"naive","n":6,"rowsPerModule":8}`, 200, `"numModules"`},
		{"packaging unknown variant", "/v1/packaging", `{"variant":"hex","n":6}`, 400, "unknown"},
		{"packaging naive missing rows", "/v1/packaging", `{"variant":"naive","n":6}`, 400, "rowsPerModule"},
		{"packaging n over cap", "/v1/packaging", `{"variant":"row","n":9}`, 400, "exceeds this server's cap"},
		{"packaging malformed json", "/v1/packaging", `not json`, 400, "error"},

		{"route ok", "/v1/route", `{"n":3,"lambda":0.05,"warmup":20,"cycles":100,"seed":1}`, 200, `"Delivered"`},
		{"route shuffle drop ok", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"pattern":"shuffle","policy":"drop"}`, 200, `"Throughput"`},
		{"route faulted ok", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"fault":{"linkRate":0.05,"seed":2}}`, 200, `"Dropped"`},
		{"route bad pattern", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"pattern":"zigzag"}`, 400, "unknown traffic pattern"},
		{"route lambda out of range", "/v1/route", `{"n":3,"lambda":1.5,"cycles":100}`, 400, "lambda"},
		{"route n over cap", "/v1/route", `{"n":9,"lambda":0.05,"cycles":100}`, 400, "exceeds this server's cap"},
		{"route zero cycles", "/v1/route", `{"n":3,"lambda":0.05}`, 400, "cycle"},
		{"route malformed json", "/v1/route", `{{`, 400, "error"},

		{"faultsweep ok", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100,"rates":[0,0.1]}`, 200, `"deadLinks"`},
		{"faultsweep no rates", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100}`, 400, "at least 1 fault rate"},
		{"faultsweep rate out of range", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100,"rates":[2]}`, 400, "out of [0,1]"},
		{"faultsweep n over cap", "/v1/faultsweep", `{"n":9,"lambda":0.05,"cycles":100,"rates":[0]}`, 400, "exceeds this server's cap"},
		{"faultsweep malformed json", "/v1/faultsweep", `[1,2]`, 400, "error"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts, c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, c.wantStatus, body)
			}
			if !strings.Contains(string(body), c.wantIn) {
				t.Fatalf("body %s does not contain %q", body, c.wantIn)
			}
			if resp.StatusCode == 200 {
				if got := resp.Header.Get("X-Bfserve-Key"); len(got) != 64 {
					t.Fatalf("X-Bfserve-Key %q is not a SHA-256 hex digest", got)
				}
				if got := resp.Header.Get("X-Bfserve-Cache"); got != "hit" && got != "miss" {
					t.Fatalf("X-Bfserve-Cache %q", got)
				}
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/layout")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST endpoint: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("Allow header %q", resp.Header.Get("Allow"))
	}
}

// TestCacheHitByteIdentical is the caching acceptance criterion: the
// second identical request is a hit with the exact same bytes and the
// same content address.
func TestCacheHitByteIdentical(t *testing.T) {
	ts := newTestServer(t)
	const body = `{"n":3,"lambda":0.05,"warmup":20,"cycles":200,"seed":7,"pattern":"bit-reverse"}`
	r1, b1 := post(t, ts, "/v1/route", body)
	r2, b2 := post(t, ts, "/v1/route", body)
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", r1.StatusCode, r2.StatusCode)
	}
	if got := r1.Header.Get("X-Bfserve-Cache"); got != "miss" {
		t.Fatalf("first request: cache %q, want miss", got)
	}
	if got := r2.Header.Get("X-Bfserve-Cache"); got != "hit" {
		t.Fatalf("second request: cache %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit is not byte-identical:\n%s\n%s", b1, b2)
	}
	if r1.Header.Get("X-Bfserve-Key") != r2.Header.Get("X-Bfserve-Key") {
		t.Fatal("same spec, different content address")
	}
}

// Two spellings of the same spec (defaults elided vs explicit) must map
// to the same content address: the key is the canonical wire encoding,
// not the JSON text.
func TestKeyIsSpellingIndependent(t *testing.T) {
	ts := newTestServer(t)
	r1, _ := post(t, ts, "/v1/route", `{"n":3,"lambda":0.05,"cycles":100}`)
	r2, _ := post(t, ts, "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"warmup":0,"seed":0,"pattern":"uniform","policy":"misroute"}`)
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", r1.StatusCode, r2.StatusCode)
	}
	if r1.Header.Get("X-Bfserve-Key") != r2.Header.Get("X-Bfserve-Key") {
		t.Fatal("equivalent specs got different content addresses")
	}
	if got := r2.Header.Get("X-Bfserve-Cache"); got != "hit" {
		t.Fatalf("explicit spelling missed the cache: %q", got)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
}

func TestStatszCounts(t *testing.T) {
	ts := newTestServer(t)
	const body = `{"variant":"row","n":5}`
	post(t, ts, "/v1/packaging", body)
	post(t, ts, "/v1/packaging", body)
	post(t, ts, "/v1/packaging", `{"variant":"bogus","n":5}`)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ep := stats.Endpoints["packaging"]
	if ep.Requests != 3 || ep.Hits != 1 || ep.Misses != 1 || ep.Errors != 1 {
		t.Fatalf("packaging stats %+v, want requests=3 hits=1 misses=1 errors=1", ep)
	}
	if ep.AvgLatencyMicro <= 0 {
		t.Fatalf("latency metric did not advance with the injected clock: %+v", ep)
	}
	if stats.CacheEntries != 1 || stats.CacheCapacity != 64 {
		t.Fatalf("cache stats %d/%d, want 1/64", stats.CacheEntries, stats.CacheCapacity)
	}
}

// TestLoadConcurrent is the race-detector acceptance test: >=1000
// concurrent mixed requests, with every 200 response for the same spec
// byte-identical. Run with -race in CI.
func TestLoadConcurrent(t *testing.T) {
	ts := newTestServer(t)
	ts.Client().Timeout = 60 * time.Second

	// A small pool of distinct specs so requests collide on the cache
	// from every direction: same-key joins, evictions, and misses.
	requests := []struct{ path, body string }{
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":1}`},
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":2}`},
		{"/v1/route", `{"n":4,"lambda":0.05,"cycles":60,"seed":1,"pattern":"shuffle"}`},
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":3,"fault":{"linkRate":0.05,"seed":9}}`},
		{"/v1/layout", `{"family":"collinear","n":8}`},
		{"/v1/layout", `{"family":"thompson","widths":[2,2]}`},
		{"/v1/layout", `{"family":"hierarchy","n":6,"maxPins":64,"chipSide":20}`},
		{"/v1/packaging", `{"variant":"row","n":5}`},
		{"/v1/packaging", `{"variant":"nucleus","n":5}`},
		{"/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":60,"rates":[0,0.1]}`},
		{"/v1/route", `{"n":0,"lambda":0.05,"cycles":60}`}, // always 400
	}
	const total = 1100
	var (
		mu     sync.Mutex
		bodies = make(map[string][]byte) // spec body -> first 200 response
		oks    int
	)
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		req := requests[i%len(requests)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
			if err != nil {
				errs <- err
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode == 400 {
				return
			}
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("%s: status %d: %s", req.path, resp.StatusCode, b)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			oks++
			if prev, ok := bodies[req.body]; ok {
				if !bytes.Equal(prev, b) {
					errs <- fmt.Errorf("%s: two 200 responses for one spec differ", req.path)
				}
			} else {
				bodies[req.body] = b
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if oks < total/2 {
		t.Fatalf("only %d/%d requests succeeded", oks, total)
	}
}

// ---- cache unit tests ----

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(4, 0)
	var computes int
	var mu sync.Mutex
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]byte, 10)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.do("k", func() ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-gate
				return []byte("value"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (single flight)", computes)
	}
	for _, b := range results {
		if string(b) != "value" {
			t.Fatalf("got %q", b)
		}
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newCache(2, 0)
	fill := func(k string) {
		if _, _, err := c.do(k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	recompute := func(k string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(k + "-recomputed"), nil }
	}
	fill("a")
	fill("b")
	// Touch a so b is the LRU victim when c arrives.
	if _, hit, _ := c.do("a", recompute("a")); !hit {
		t.Fatal("a evicted too early")
	}
	fill("c")
	if _, hit, _ := c.do("a", recompute("a")); !hit {
		t.Fatal("recently-used a was evicted instead of b")
	}
	if _, hit, _ := c.do("b", recompute("b")); hit {
		t.Fatal("b survived past capacity")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newCache(2, 0)
	wantErr := fmt.Errorf("boom")
	if _, _, err := c.do("k", func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err %v", err)
	}
	body, hit, err := c.do("k", func() ([]byte, error) { return []byte("fine"), nil })
	if err != nil || hit || string(body) != "fine" {
		t.Fatalf("after error: body=%q hit=%v err=%v, want recompute", body, hit, err)
	}
}

// ---- checkpoint / what-if endpoints ----

// TestCheckpointWhatif drives the checkpoint pipeline over HTTP: freeze
// a warmed-up full-stack run, fork it into a fault future, and fork it
// into the fault-free continuation, which must match the plain
// /v1/route answer for the same spec exactly.
func TestCheckpointWhatif(t *testing.T) {
	ts := newTestServer(t)
	const ckBody = `{"n":3,"lambda":0.2,"warmup":20,"cycles":80,"seed":7,"bufferLimit":4,
		"reliable":{"timeout":10,"maxRetries":3,"jitter":2,"seed":5,"measureFrom":20},
		"adaptive":{"seed":9},"cycle":20}`
	resp, body := post(t, ts, "/v1/checkpoint", ckBody)
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	var ck checkpointResponse
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.Key) != 64 || ck.Cycle != 20 || ck.SizeBytes != len(ck.Checkpoint) || ck.SizeBytes == 0 {
		t.Fatalf("checkpoint response inconsistent: key %q cycle %d size %d len %d",
			ck.Key, ck.Cycle, ck.SizeBytes, len(ck.Checkpoint))
	}

	b64, err := json.Marshal(ck.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	// Fault future: must answer 200 with live fault counters available.
	resp, body = post(t, ts, "/v1/whatif",
		`{"checkpoint":`+string(b64)+`,"fault":{"linkRate":0.05,"seed":3}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("whatif faulted: %d %s", resp.StatusCode, body)
	}
	var faulted whatifResponse
	if err := json.Unmarshal(body, &faulted); err != nil {
		t.Fatal(err)
	}
	if faulted.Result == nil || faulted.Reliable == nil || faulted.Adaptive == nil {
		t.Fatalf("whatif response missing sections: %s", body)
	}

	// Fault-free continuation: byte-compare the routing result against
	// the answer /v1/route gives for the same spec from scratch. The
	// what-if fork carries no TTL default (no fault), so the runs match.
	resp, body = post(t, ts, "/v1/whatif", `{"checkpoint":`+string(b64)+`}`)
	if resp.StatusCode != 200 {
		t.Fatalf("whatif clean: %d %s", resp.StatusCode, body)
	}
	var clean whatifResponse
	if err := json.Unmarshal(body, &clean); err != nil {
		t.Fatal(err)
	}
	if clean.Result.Delivered == 0 {
		t.Fatalf("clean continuation delivered nothing: %s", body)
	}
	if clean.Result.Nodes != 24 {
		t.Fatalf("clean continuation nodes %d, want 24", clean.Result.Nodes)
	}
}

// TestWhatifRejectsCorrupt covers the artifact-validation wall: a
// truncated or bit-flipped checkpoint is the client's problem (400),
// never a panic or a 500.
func TestWhatifRejectsCorrupt(t *testing.T) {
	ts := newTestServer(t)
	resp, body := post(t, ts, "/v1/checkpoint",
		`{"n":3,"lambda":0.2,"warmup":10,"cycles":40,"seed":7,"cycle":10}`)
	if resp.StatusCode != 200 {
		t.Fatalf("checkpoint: %d %s", resp.StatusCode, body)
	}
	var ck checkpointResponse
	if err := json.Unmarshal(body, &ck); err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func([]byte) []byte) string {
		b := append([]byte(nil), ck.Checkpoint...)
		b64, err := json.Marshal(mut(b))
		if err != nil {
			t.Fatal(err)
		}
		return `{"checkpoint":` + string(b64) + `}`
	}
	cases := map[string]string{
		"truncated":   corrupt(func(b []byte) []byte { return b[:len(b)-3] }),
		"bit flipped": corrupt(func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b }),
		"empty":       `{"checkpoint":""}`,
		"not base64":  `{"checkpoint":"%%%"}`,
	}
	for name, body := range cases {
		resp, got := post(t, ts, "/v1/whatif", body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d (want 400): %s", name, resp.StatusCode, got)
		}
	}
}

// TestCheckpointValidation: cycle bounds and dimension cap.
func TestCheckpointValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := map[string]string{
		"cycle past end": `{"n":3,"lambda":0.2,"warmup":10,"cycles":40,"cycle":51}`,
		"negative cycle": `{"n":3,"lambda":0.2,"warmup":10,"cycles":40,"cycle":-1}`,
		"dim over cap":   `{"n":9,"lambda":0.2,"cycles":40,"cycle":0}`,
		"unknown field":  `{"n":3,"lambda":0.2,"cycles":40,"cycle":0,"nope":1}`,
	}
	for name, body := range cases {
		resp, got := post(t, ts, "/v1/checkpoint", body)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d (want 400): %s", name, resp.StatusCode, got)
		}
	}
}

// ---- cache byte budget ----

func TestCacheByteBudget(t *testing.T) {
	c := newCache(100, 10)
	big := func(n int) func() ([]byte, error) {
		return func() ([]byte, error) { return make([]byte, n), nil }
	}
	if _, _, err := c.do("a", big(6)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.do("b", big(6)); err != nil {
		t.Fatal(err)
	}
	entries, bytes, evicted := c.stats()
	if entries != 1 || bytes != 6 || evicted != 1 {
		t.Fatalf("after overflow: entries=%d bytes=%d evicted=%d, want 1/6/1", entries, bytes, evicted)
	}
	if _, hit, _ := c.do("a", big(6)); hit {
		t.Fatal("LRU victim a survived the byte budget")
	}
	// A body larger than the whole budget is served but never cached.
	if _, _, err := c.do("huge", big(50)); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.do("huge", big(50)); hit {
		t.Fatal("over-budget body was cached")
	}
	entries, bytes, _ = c.stats()
	if bytes > 10 {
		t.Fatalf("byte budget exceeded: %d cached bytes in %d entries", bytes, entries)
	}
}

// TestStatszCacheBytes: the budget and eviction accounting surface on
// /statsz.
func TestStatszCacheBytes(t *testing.T) {
	srv := New(Config{CacheEntries: 64, CacheBytes: 1, MaxDim: 8})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	post(t, ts, "/v1/packaging", `{"variant":"row","n":5}`)
	post(t, ts, "/v1/packaging", `{"variant":"nucleus","n":5}`)
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.CacheByteCapacity != 1 {
		t.Fatalf("byte capacity %d, want 1", stats.CacheByteCapacity)
	}
	if stats.CacheEvictions < 2 || stats.CacheBytes != 0 {
		t.Fatalf("1-byte budget kept %d bytes with %d evictions", stats.CacheBytes, stats.CacheEvictions)
	}
}

// ---- hardening: oversized bodies and overload shedding ----

// TestOversizedBody413 pins the MaxBytesReader path: a body past the
// endpoint's cap answers 413 (not 400 or 500), and /statsz counts it.
func TestOversizedBody413(t *testing.T) {
	ts := newTestServer(t)
	big := `{"family":"` + strings.Repeat("x", maxRequestBytes+1) + `"}`
	resp, body := post(t, ts, "/v1/layout", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body answered %d (%s), want 413", resp.StatusCode, body)
	}
	var stats statszResponse
	_, sb := get(t, ts, "/statsz")
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.RejectedOversize != 1 {
		t.Fatalf("statsz counts %d oversize rejections, want 1", stats.RejectedOversize)
	}
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestMaxInflightShed pins the overload gate: with MaxInflight 1 and a
// request parked inside a handler, a second request is shed with 503
// and a Retry-After header, /statsz counts the shed, and /healthz is
// never shed.
func TestMaxInflightShed(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	srv := New(Config{MaxInflight: 1, MaxDim: 8})
	mux := http.NewServeMux()
	// Park the first request inside the gate via a slow body: the
	// handler blocks reading the request body until we release it.
	mux.Handle("/", srv.Handler())
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pr, pw := io.Pipe()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/layout", pr)
		if err != nil {
			t.Error(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		entered <- struct{}{}
		go func() {
			<-release
			_, _ = pw.Write([]byte(`{"family":"collinear","n":8}`))
			pw.Close()
		}()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
	}()

	<-entered
	// Wait until the parked request is actually inside the gate.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := post(t, ts, "/v1/packaging", `{"variant":"row","n":6}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatalf("503 without Retry-After: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overload gate never shed (last status %d)", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Health and stats stay reachable while /v1/ is saturated.
	if resp, _ := get(t, ts, "/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz shed with status %d", resp.StatusCode)
	}
	var stats statszResponse
	_, sb := get(t, ts, "/statsz")
	if err := json.Unmarshal(sb, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShedOverload < 1 {
		t.Fatalf("statsz counts %d sheds, want >= 1", stats.ShedOverload)
	}
	if stats.MaxInflight != 1 {
		t.Fatalf("statsz reports cap %d, want 1", stats.MaxInflight)
	}

	close(release)
	wg.Wait()
}
