package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	// A ticking fake clock: deterministic, but latency metrics move.
	var mu sync.Mutex
	now := time.Unix(0, 0)
	srv := New(Config{
		CacheEntries: 64,
		MaxDim:       8,
		Now: func() time.Time {
			mu.Lock()
			defer mu.Unlock()
			now = now.Add(time.Millisecond)
			return now
		},
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestEndpoints drives every POST endpoint through the same table:
// a valid spec answers 200 with a well-formed body, malformed JSON and
// out-of-range parameters answer 400, and an unknown JSON field is a
// client error rather than silently ignored.
func TestEndpoints(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantIn     string // substring of the response body
	}{
		{"layout collinear ok", "/v1/layout", `{"family":"collinear","n":8}`, 200, `"extras"`},
		{"layout thompson ok", "/v1/layout", `{"family":"thompson","widths":[2,2,2]}`, 200, `"blockWidth"`},
		{"layout stack3d ok", "/v1/layout", `{"family":"stack3d","widths":[2,2,2,2],"sliceLayers":2}`, 200, `"volume"`},
		{"layout hierarchy ok", "/v1/layout", `{"family":"hierarchy","n":8,"maxPins":64,"chipSide":20}`, 200, `"numChips"`},
		{"layout unknown family", "/v1/layout", `{"family":"benes","n":8}`, 400, "unknown layout family"},
		{"layout malformed json", "/v1/layout", `{"family":`, 400, "error"},
		{"layout unknown field", "/v1/layout", `{"family":"collinear","n":8,"frobnicate":1}`, 400, "frobnicate"},
		{"layout stray field for family", "/v1/layout", `{"family":"collinear","n":8,"maxPins":4}`, 400, "must be zero"},
		{"layout dim over cap", "/v1/layout", `{"family":"hierarchy","n":9,"maxPins":64,"chipSide":20}`, 400, "exceeds this server's cap"},

		{"packaging row ok", "/v1/packaging", `{"variant":"row","n":6}`, 200, `"numModules"`},
		{"packaging nucleus ok", "/v1/packaging", `{"variant":"nucleus","n":6}`, 200, `"stats"`},
		{"packaging naive ok", "/v1/packaging", `{"variant":"naive","n":6,"rowsPerModule":8}`, 200, `"numModules"`},
		{"packaging unknown variant", "/v1/packaging", `{"variant":"hex","n":6}`, 400, "unknown"},
		{"packaging naive missing rows", "/v1/packaging", `{"variant":"naive","n":6}`, 400, "rowsPerModule"},
		{"packaging n over cap", "/v1/packaging", `{"variant":"row","n":9}`, 400, "exceeds this server's cap"},
		{"packaging malformed json", "/v1/packaging", `not json`, 400, "error"},

		{"route ok", "/v1/route", `{"n":3,"lambda":0.05,"warmup":20,"cycles":100,"seed":1}`, 200, `"Delivered"`},
		{"route shuffle drop ok", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"pattern":"shuffle","policy":"drop"}`, 200, `"Throughput"`},
		{"route faulted ok", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"fault":{"linkRate":0.05,"seed":2}}`, 200, `"Dropped"`},
		{"route bad pattern", "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"pattern":"zigzag"}`, 400, "unknown traffic pattern"},
		{"route lambda out of range", "/v1/route", `{"n":3,"lambda":1.5,"cycles":100}`, 400, "lambda"},
		{"route n over cap", "/v1/route", `{"n":9,"lambda":0.05,"cycles":100}`, 400, "exceeds this server's cap"},
		{"route zero cycles", "/v1/route", `{"n":3,"lambda":0.05}`, 400, "cycle"},
		{"route malformed json", "/v1/route", `{{`, 400, "error"},

		{"faultsweep ok", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100,"rates":[0,0.1]}`, 200, `"deadLinks"`},
		{"faultsweep no rates", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100}`, 400, "at least 1 fault rate"},
		{"faultsweep rate out of range", "/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":100,"rates":[2]}`, 400, "out of [0,1]"},
		{"faultsweep n over cap", "/v1/faultsweep", `{"n":9,"lambda":0.05,"cycles":100,"rates":[0]}`, 400, "exceeds this server's cap"},
		{"faultsweep malformed json", "/v1/faultsweep", `[1,2]`, 400, "error"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts, c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, c.wantStatus, body)
			}
			if !strings.Contains(string(body), c.wantIn) {
				t.Fatalf("body %s does not contain %q", body, c.wantIn)
			}
			if resp.StatusCode == 200 {
				if got := resp.Header.Get("X-Bfserve-Key"); len(got) != 64 {
					t.Fatalf("X-Bfserve-Key %q is not a SHA-256 hex digest", got)
				}
				if got := resp.Header.Get("X-Bfserve-Cache"); got != "hit" && got != "miss" {
					t.Fatalf("X-Bfserve-Cache %q", got)
				}
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/layout")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on a POST endpoint: status %d", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("Allow header %q", resp.Header.Get("Allow"))
	}
}

// TestCacheHitByteIdentical is the caching acceptance criterion: the
// second identical request is a hit with the exact same bytes and the
// same content address.
func TestCacheHitByteIdentical(t *testing.T) {
	ts := newTestServer(t)
	const body = `{"n":3,"lambda":0.05,"warmup":20,"cycles":200,"seed":7,"pattern":"bit-reverse"}`
	r1, b1 := post(t, ts, "/v1/route", body)
	r2, b2 := post(t, ts, "/v1/route", body)
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", r1.StatusCode, r2.StatusCode)
	}
	if got := r1.Header.Get("X-Bfserve-Cache"); got != "miss" {
		t.Fatalf("first request: cache %q, want miss", got)
	}
	if got := r2.Header.Get("X-Bfserve-Cache"); got != "hit" {
		t.Fatalf("second request: cache %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cache hit is not byte-identical:\n%s\n%s", b1, b2)
	}
	if r1.Header.Get("X-Bfserve-Key") != r2.Header.Get("X-Bfserve-Key") {
		t.Fatal("same spec, different content address")
	}
}

// Two spellings of the same spec (defaults elided vs explicit) must map
// to the same content address: the key is the canonical wire encoding,
// not the JSON text.
func TestKeyIsSpellingIndependent(t *testing.T) {
	ts := newTestServer(t)
	r1, _ := post(t, ts, "/v1/route", `{"n":3,"lambda":0.05,"cycles":100}`)
	r2, _ := post(t, ts, "/v1/route", `{"n":3,"lambda":0.05,"cycles":100,"warmup":0,"seed":0,"pattern":"uniform","policy":"misroute"}`)
	if r1.StatusCode != 200 || r2.StatusCode != 200 {
		t.Fatalf("statuses %d, %d", r1.StatusCode, r2.StatusCode)
	}
	if r1.Header.Get("X-Bfserve-Key") != r2.Header.Get("X-Bfserve-Key") {
		t.Fatal("equivalent specs got different content addresses")
	}
	if got := r2.Header.Get("X-Bfserve-Cache"); got != "hit" {
		t.Fatalf("explicit spelling missed the cache: %q", got)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(b), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}
}

func TestStatszCounts(t *testing.T) {
	ts := newTestServer(t)
	const body = `{"variant":"row","n":5}`
	post(t, ts, "/v1/packaging", body)
	post(t, ts, "/v1/packaging", body)
	post(t, ts, "/v1/packaging", `{"variant":"bogus","n":5}`)

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	ep := stats.Endpoints["packaging"]
	if ep.Requests != 3 || ep.Hits != 1 || ep.Misses != 1 || ep.Errors != 1 {
		t.Fatalf("packaging stats %+v, want requests=3 hits=1 misses=1 errors=1", ep)
	}
	if ep.AvgLatencyMicro <= 0 {
		t.Fatalf("latency metric did not advance with the injected clock: %+v", ep)
	}
	if stats.CacheEntries != 1 || stats.CacheCapacity != 64 {
		t.Fatalf("cache stats %d/%d, want 1/64", stats.CacheEntries, stats.CacheCapacity)
	}
}

// TestLoadConcurrent is the race-detector acceptance test: >=1000
// concurrent mixed requests, with every 200 response for the same spec
// byte-identical. Run with -race in CI.
func TestLoadConcurrent(t *testing.T) {
	ts := newTestServer(t)
	ts.Client().Timeout = 60 * time.Second

	// A small pool of distinct specs so requests collide on the cache
	// from every direction: same-key joins, evictions, and misses.
	requests := []struct{ path, body string }{
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":1}`},
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":2}`},
		{"/v1/route", `{"n":4,"lambda":0.05,"cycles":60,"seed":1,"pattern":"shuffle"}`},
		{"/v1/route", `{"n":3,"lambda":0.05,"cycles":60,"seed":3,"fault":{"linkRate":0.05,"seed":9}}`},
		{"/v1/layout", `{"family":"collinear","n":8}`},
		{"/v1/layout", `{"family":"thompson","widths":[2,2]}`},
		{"/v1/layout", `{"family":"hierarchy","n":6,"maxPins":64,"chipSide":20}`},
		{"/v1/packaging", `{"variant":"row","n":5}`},
		{"/v1/packaging", `{"variant":"nucleus","n":5}`},
		{"/v1/faultsweep", `{"n":3,"lambda":0.05,"cycles":60,"rates":[0,0.1]}`},
		{"/v1/route", `{"n":0,"lambda":0.05,"cycles":60}`}, // always 400
	}
	const total = 1100
	var (
		mu     sync.Mutex
		bodies = make(map[string][]byte) // spec body -> first 200 response
		oks    int
	)
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		req := requests[i%len(requests)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+req.path, "application/json", strings.NewReader(req.body))
			if err != nil {
				errs <- err
				return
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode == 400 {
				return
			}
			if resp.StatusCode != 200 {
				errs <- fmt.Errorf("%s: status %d: %s", req.path, resp.StatusCode, b)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			oks++
			if prev, ok := bodies[req.body]; ok {
				if !bytes.Equal(prev, b) {
					errs <- fmt.Errorf("%s: two 200 responses for one spec differ", req.path)
				}
			} else {
				bodies[req.body] = b
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if oks < total/2 {
		t.Fatalf("only %d/%d requests succeeded", oks, total)
	}
}

// ---- cache unit tests ----

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(4)
	var computes int
	var mu sync.Mutex
	gate := make(chan struct{})
	var wg sync.WaitGroup
	results := make([][]byte, 10)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := c.do("k", func() ([]byte, error) {
				mu.Lock()
				computes++
				mu.Unlock()
				<-gate
				return []byte("value"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	close(gate)
	wg.Wait()
	if computes != 1 {
		t.Fatalf("computed %d times, want 1 (single flight)", computes)
	}
	for _, b := range results {
		if string(b) != "value" {
			t.Fatalf("got %q", b)
		}
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newCache(2)
	fill := func(k string) {
		if _, _, err := c.do(k, func() ([]byte, error) { return []byte(k), nil }); err != nil {
			t.Fatal(err)
		}
	}
	recompute := func(k string) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte(k + "-recomputed"), nil }
	}
	fill("a")
	fill("b")
	// Touch a so b is the LRU victim when c arrives.
	if _, hit, _ := c.do("a", recompute("a")); !hit {
		t.Fatal("a evicted too early")
	}
	fill("c")
	if _, hit, _ := c.do("a", recompute("a")); !hit {
		t.Fatal("recently-used a was evicted instead of b")
	}
	if _, hit, _ := c.do("b", recompute("b")); hit {
		t.Fatal("b survived past capacity")
	}
}

func TestCacheDoesNotCacheErrors(t *testing.T) {
	c := newCache(2)
	wantErr := fmt.Errorf("boom")
	if _, _, err := c.do("k", func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err %v", err)
	}
	body, hit, err := c.do("k", func() ([]byte, error) { return []byte("fine"), nil })
	if err != nil || hit || string(body) != "fine" {
		t.Fatalf("after error: body=%q hit=%v err=%v, want recompute", body, hit, err)
	}
}
