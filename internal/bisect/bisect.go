// Package bisect computes graph bisection widths, the lower-bound
// machinery behind the paper's optimality claims: the collinear-layout
// track count of Appendix B "exactly matches the bisection-based lower
// bound", and the Thompson-model area lower bound is (bisection)^2 up to
// constants. Exact computation (exponential, for small graphs) is
// complemented by a Kernighan-Lin heuristic that upper-bounds the width
// of larger instances.
package bisect

import (
	"fmt"
	"math/bits"

	"bfvlsi/internal/graph"
)

// Exact returns the exact bisection width of g: the minimum number of
// edges between two halves of ceil(N/2) and floor(N/2) nodes. It
// enumerates all balanced bipartitions and is limited to 24 nodes.
func Exact(g *graph.Graph) (int, error) {
	n := g.NumNodes()
	if n > 24 {
		return 0, fmt.Errorf("bisect: exact bisection limited to 24 nodes, got %d", n)
	}
	if n < 2 {
		return 0, nil
	}
	half := n / 2
	edges := g.Edges()
	best := 1 << 30
	// Fix node 0 on side A to halve the search space.
	for mask := uint32(0); mask < 1<<uint(n-1); mask++ {
		m := (uint32(mask) << 1) | 1 // node 0 always on side A
		if bits.OnesCount32(m) != n-half {
			continue
		}
		cut := 0
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			if (m>>uint(e.U))&1 != (m>>uint(e.V))&1 {
				cut++
				if cut >= best {
					break
				}
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best, nil
}

// KernighanLin returns an upper bound on the bisection width via the
// classic KL refinement heuristic, starting from the given seed
// partition (nil means first half vs second half). Deterministic.
func KernighanLin(g *graph.Graph, seed []bool) int {
	n := g.NumNodes()
	if n < 2 {
		return 0
	}
	side := make([]bool, n)
	if seed != nil && len(seed) == n {
		copy(side, seed)
	} else {
		for i := n / 2; i < n; i++ {
			side[i] = true
		}
	}
	cutOf := func() int {
		cut := 0
		for _, e := range g.Edges() {
			if e.U != e.V && side[e.U] != side[e.V] {
				cut++
			}
		}
		return cut
	}
	// D[v] = external - internal degree of v under the current partition.
	dOf := func(v int) int {
		d := 0
		for _, he := range g.Neighbors(v) {
			if he.To == v {
				continue
			}
			if side[he.To] != side[v] {
				d++
			} else {
				d--
			}
		}
		return d
	}
	adjCount := func(u, v int) int {
		c := 0
		for _, he := range g.Neighbors(u) {
			if he.To == v {
				c++
			}
		}
		return c
	}
	best := cutOf()
	for pass := 0; pass < 8; pass++ {
		locked := make([]bool, n)
		type swapRec struct{ a, b, gain int }
		var recs []swapRec
		workSide := make([]bool, n)
		copy(workSide, side)
		// Greedy sequence of best swaps on a scratch partition.
		saved := side
		side = workSide
		for step := 0; step < n/2; step++ {
			bestGain := -1 << 30
			ba, bb := -1, -1
			for a := 0; a < n; a++ {
				if locked[a] || side[a] {
					continue
				}
				da := dOf(a)
				for b := 0; b < n; b++ {
					if locked[b] || !side[b] {
						continue
					}
					gain := da + dOf(b) - 2*adjCount(a, b)
					if gain > bestGain {
						bestGain, ba, bb = gain, a, b
					}
				}
			}
			if ba < 0 {
				break
			}
			side[ba], side[bb] = true, false
			locked[ba], locked[bb] = true, true
			recs = append(recs, swapRec{ba, bb, bestGain})
		}
		// Find the best prefix of the swap sequence.
		sum, bestSum, bestK := 0, 0, 0
		for k, r := range recs {
			sum += r.gain
			if sum > bestSum {
				bestSum, bestK = sum, k+1
			}
		}
		side = saved
		if bestSum <= 0 {
			break
		}
		for k := 0; k < bestK; k++ {
			side[recs[k].a], side[recs[k].b] = true, false
		}
		if c := cutOf(); c < best {
			best = c
		}
	}
	return best
}

// LayoutAreaLowerBound returns the classic Thompson lower bound
// (bisection width)^2 / 4 implied by a known bisection width.
func LayoutAreaLowerBound(bisection int) int64 {
	b := int64(bisection)
	return b * b / 4
}
