package bisect

import (
	"testing"

	"bfvlsi/internal/butterfly"
	"bfvlsi/internal/collinear"
	"bfvlsi/internal/graph"
	"bfvlsi/internal/hypercube"
)

func ring(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, graph.KindStraight)
	}
	return g
}

func complete(n int) *graph.Graph {
	g := graph.New(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			g.AddEdge(a, b, graph.KindStraight)
		}
	}
	return g
}

func TestExactKnownWidths(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"ring6", ring(6), 2},
		{"ring8", ring(8), 2},
		{"K4", complete(4), 4},
		{"K6", complete(6), 9},
		{"K8", complete(8), 16},
		{"Q3", hypercube.Q(3), 4},
		{"Q4", hypercube.Q(4), 8},
	}
	for _, c := range cases {
		got, err := Exact(c.g)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: bisection %d, want %d", c.name, got, c.want)
		}
	}
}

// Appendix B's optimality statement: the collinear track count of K_N
// exactly matches the bisection width (even N).
func TestCollinearTracksEqualBisection(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		b, err := Exact(complete(n))
		if err != nil {
			t.Fatal(err)
		}
		if tracks := collinear.OptimalTracks(n); tracks != b {
			t.Errorf("K_%d: tracks %d != bisection %d", n, tracks, b)
		}
	}
	// Odd N: floor(N^2/4) vs (N^2-1)/4 - also equal.
	for _, n := range []int{5, 7} {
		b, err := Exact(complete(n))
		if err != nil {
			t.Fatal(err)
		}
		if tracks := collinear.OptimalTracks(n); tracks != b {
			t.Errorf("K_%d: tracks %d != bisection %d", n, tracks, b)
		}
	}
}

func TestExactRejectsLarge(t *testing.T) {
	if _, err := Exact(complete(25)); err == nil {
		t.Error("25-node exact accepted")
	}
}

func TestExactDegenerate(t *testing.T) {
	if b, _ := Exact(graph.New(1)); b != 0 {
		t.Error("singleton bisection nonzero")
	}
	if b, _ := Exact(graph.New(0)); b != 0 {
		t.Error("empty bisection nonzero")
	}
}

func TestKLMatchesExactOnSmall(t *testing.T) {
	for _, g := range []*graph.Graph{ring(8), complete(6), hypercube.Q(3), hypercube.Q(4)} {
		exact, err := Exact(g)
		if err != nil {
			t.Fatal(err)
		}
		kl := KernighanLin(g, nil)
		if kl < exact {
			t.Fatalf("KL %d below exact %d: impossible", kl, exact)
		}
		if kl > 2*exact && kl > exact+2 {
			t.Errorf("KL %d far above exact %d", kl, exact)
		}
	}
}

func TestKLButterflyUpperBound(t *testing.T) {
	// Butterfly bisection is Theta(2^n); KL must find a cut within a
	// small factor of 2 * 2^n (the natural row-split gives ~2 * 2^{n-1}
	// cross links per middle stage... empirically small).
	for _, n := range []int{3, 4, 5} {
		bf := butterfly.New(n)
		kl := KernighanLin(bf.G, nil)
		rows := 1 << uint(n)
		if kl > 4*rows {
			t.Errorf("B_%d: KL cut %d implausibly large (4R = %d)", n, kl, 4*rows)
		}
		if kl < rows/2 {
			t.Errorf("B_%d: KL cut %d below plausible bisection", n, kl)
		}
	}
}

func TestKLSeededPartition(t *testing.T) {
	g := ring(8)
	seed := make([]bool, 8)
	// Alternating seed: worst case cut 8; KL must improve to 2.
	for i := range seed {
		seed[i] = i%2 == 0
	}
	if kl := KernighanLin(g, seed); kl != 2 {
		t.Errorf("KL from alternating seed = %d, want 2", kl)
	}
}

func TestLayoutAreaLowerBound(t *testing.T) {
	if LayoutAreaLowerBound(16) != 64 {
		t.Errorf("bound = %d", LayoutAreaLowerBound(16))
	}
	// Butterfly area lower bound vs our measured layout: measured area
	// must exceed bisection^2/4.
	bf := butterfly.New(4)
	kl := KernighanLin(bf.G, nil) // upper bound on bisection, still a sanity anchor
	if LayoutAreaLowerBound(kl) > 8640 {
		t.Errorf("lower bound %d exceeds measured B_4 area 8640: inconsistent", LayoutAreaLowerBound(kl))
	}
}

func BenchmarkExactK12(b *testing.B) {
	g := complete(12)
	for i := 0; i < b.N; i++ {
		if _, err := Exact(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKLQ6(b *testing.B) {
	g := hypercube.Q(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KernighanLin(g, nil)
	}
}
