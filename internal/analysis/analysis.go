// Package analysis collects the paper's closed-form bounds in one place
// so the experiment harness can print paper-vs-measured tables.
//
// Conventions: n is the butterfly dimension; the network has R = 2^n rows
// and N = (n+1) 2^n nodes. The paper states its bounds in terms of N and
// log2 N; note that N / log2 N = 2^n (1 + o(1)), so the exact leading
// term of the constructions is 2^n per side and 2^{2n} of area.
package analysis

import "math"

// NumNodes returns N = (n+1) * 2^n.
func NumNodes(n int) float64 { return float64(n+1) * math.Exp2(float64(n)) }

// Log2N returns log2 N.
func Log2N(n int) float64 { return math.Log2(NumNodes(n)) }

// ThompsonArea returns the paper's Thompson-model area bound
// N^2 / log2^2 N (Section 3.2), optimal within 1 + o(1).
func ThompsonArea(n int) float64 {
	v := NumNodes(n) / Log2N(n)
	return v * v
}

// ThompsonMaxWire returns the Section 3.2 maximum wire length bound
// N / log2 N.
func ThompsonMaxWire(n int) float64 { return NumNodes(n) / Log2N(n) }

// LeadingAreaExact returns 2^{2n}, the exact leading term of the
// recursive grid construction (the quantity ThompsonArea approximates).
func LeadingAreaExact(n int) float64 { return math.Exp2(float64(2 * n)) }

// LeadingWireExact returns 2^n.
func LeadingWireExact(n int) float64 { return math.Exp2(float64(n)) }

// MultilayerArea returns the Theorem 4.1 area bound with L layers:
// 4N^2/(L^2 log2^2 N) for even L, 4N^2/((L^2-1) log2^2 N) for odd L.
func MultilayerArea(n, L int) float64 {
	num := 4 * ThompsonArea(n)
	if L%2 == 0 {
		return num / float64(L*L)
	}
	return num / float64(L*L-1)
}

// MultilayerMaxWire returns 2N/(L log2 N) (Section 4.2).
func MultilayerMaxWire(n, L int) float64 {
	return 2 * NumNodes(n) / (float64(L) * Log2N(n))
}

// MultilayerVolume returns 4N^2/(L log2^2 N) (Section 4.2).
func MultilayerVolume(n, L int) float64 {
	return 4 * ThompsonArea(n) / float64(L)
}

// AviorArea is the prior two-layer bound of Avior et al. [1]:
// N^2/log2^2 N + o(.), the same leading term the paper matches while
// additionally gaining packaging and node-size scalability.
func AviorArea(n int) float64 { return ThompsonArea(n) }

// DinitzSlantedArea is the bound of Dinitz et al. [10] under the slanted
// (45-degree) rectangle model: N^2 / (2 log2^2 N).
func DinitzSlantedArea(n int) float64 { return ThompsonArea(n) / 2 }

// MuthuKnockKneeArea is the knock-knee model bound of Muthukrishnan et
// al. [16]: 2N^2 / (3 log2^2 N) (usually needing more than two layers to
// realize).
func MuthuKnockKneeArea(n int) float64 { return 2 * ThompsonArea(n) / 3 }

// NodeSizeThreshold returns sqrt(N)/(L log2 N): node sides strictly below
// any constant fraction of this leave the leading constants of the
// L-layer layout unchanged (Sections 3.3 and 4.2).
func NodeSizeThreshold(n, L int) float64 {
	return math.Sqrt(NumNodes(n)) / (float64(L) * Log2N(n))
}

// LooseNodeSizeThreshold returns sqrt(N / log2 N) / L: the larger bound
// available to O(N / log N) of the nodes (first/last-stage processor and
// memory nodes, Section 3.3).
func LooseNodeSizeThreshold(n, L int) float64 {
	return math.Sqrt(NumNodes(n)/Log2N(n)) / float64(L)
}

// RectangularNodeGrid returns the node-grid shape the paper prescribes
// for W1 x W2 rectangular nodes (Section 4.2): to minimize area, align
// the N nodes as a sqrt(W2 N / W1) x sqrt(W1 N / W2) grid, so that both
// sides of the node array are sqrt(W1 W2 N).
func RectangularNodeGrid(n int, w1, w2 float64) (rows, cols float64) {
	nodes := NumNodes(n)
	return math.Sqrt(w1 * nodes / w2), math.Sqrt(w2 * nodes / w1)
}

// SaturationRate returns the Theta(1/log R) analytic saturation scaling
// constant used by the packaging lower bound: c / n for the wrapped
// butterfly with deterministic routing, with c = 2 / 1.5 = 4/3 in the
// fluid limit (see package routing for the exact expectation).
func SaturationRate(n int) float64 { return 4.0 / (3.0 * float64(n)) }
