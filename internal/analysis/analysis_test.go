package analysis

import (
	"math"
	"testing"
)

func TestNumNodes(t *testing.T) {
	if NumNodes(3) != 32 {
		t.Errorf("NumNodes(3) = %v, want 32", NumNodes(3))
	}
	if NumNodes(9) != 5120 {
		t.Errorf("NumNodes(9) = %v, want 5120", NumNodes(9))
	}
}

func TestThompsonAreaApproachesLeadingTerm(t *testing.T) {
	// N^2/log2^2 N = 2^{2n} (1+o(1)): since log2 N = n + log2(n+1) > n+1
	// for n > 1, the paper's form slightly undershoots 2^{2n} and the
	// ratio climbs monotonically to 1 from below.
	prev := 0.0
	for _, n := range []int{8, 16, 32, 64, 256} {
		r := ThompsonArea(n) / LeadingAreaExact(n)
		if r > 1 {
			t.Errorf("n=%d: ratio %v above 1", n, r)
		}
		if r <= prev {
			t.Errorf("n=%d: ratio %v did not increase (prev %v)", n, r, prev)
		}
		prev = r
	}
	if prev < 0.9 {
		t.Errorf("ratio at n=256 still %v", prev)
	}
}

func TestMultilayerAreaEvenOdd(t *testing.T) {
	n := 12
	// L=2 even must equal the Thompson bound.
	if math.Abs(MultilayerArea(n, 2)-ThompsonArea(n)) > 1e-9 {
		t.Errorf("L=2 area %v != Thompson %v", MultilayerArea(n, 2), ThompsonArea(n))
	}
	// Odd L sits between the even neighbors.
	a4, a5, a6 := MultilayerArea(n, 4), MultilayerArea(n, 5), MultilayerArea(n, 6)
	if !(a6 < a5 && a5 < a4) {
		t.Errorf("areas not decreasing: %v %v %v", a4, a5, a6)
	}
	// Odd formula: 4/(L^2-1).
	want := 4 * ThompsonArea(n) / 24
	if math.Abs(a5-want) > 1e-9 {
		t.Errorf("L=5 area %v, want %v", a5, want)
	}
}

func TestMultilayerWireAndVolume(t *testing.T) {
	n := 9
	if math.Abs(MultilayerMaxWire(n, 2)-ThompsonMaxWire(n)) > 1e-9 {
		t.Errorf("L=2 wire %v != Thompson %v", MultilayerMaxWire(n, 2), ThompsonMaxWire(n))
	}
	// Volume halves when L doubles.
	if math.Abs(MultilayerVolume(n, 8)*4-MultilayerVolume(n, 2)) > 1e-6 {
		t.Errorf("volume scaling wrong: %v vs %v", MultilayerVolume(n, 8), MultilayerVolume(n, 2))
	}
}

func TestBaselineOrdering(t *testing.T) {
	// Dinitz (slanted) < Muthu (knock-knee) < Avior = paper (upright
	// Thompson): the models get stricter left to right.
	n := 10
	if !(DinitzSlantedArea(n) < MuthuKnockKneeArea(n) && MuthuKnockKneeArea(n) < AviorArea(n)) {
		t.Errorf("baseline ordering violated: %v %v %v",
			DinitzSlantedArea(n), MuthuKnockKneeArea(n), AviorArea(n))
	}
}

func TestNodeSizeThresholds(t *testing.T) {
	// Thresholds shrink with L and grow with n; the loose threshold is
	// larger than the strict one.
	if NodeSizeThreshold(9, 4) >= NodeSizeThreshold(9, 2) {
		t.Error("threshold did not shrink with L")
	}
	if NodeSizeThreshold(12, 2) <= NodeSizeThreshold(9, 2) {
		t.Error("threshold did not grow with n")
	}
	if LooseNodeSizeThreshold(9, 2) <= NodeSizeThreshold(9, 2) {
		t.Error("loose threshold not larger")
	}
}

func TestSaturationRateScaling(t *testing.T) {
	if SaturationRate(6)*2 != SaturationRate(3) {
		t.Error("saturation rate not 1/n")
	}
}

func TestRectangularNodeGrid(t *testing.T) {
	// Square nodes give a square grid; a 4:1 node gives a 2:1 grid the
	// other way, and the physical array is square in both cases:
	// rows*W1 == cols*W2 transposed... both sides equal sqrt(W1 W2 N).
	r, c := RectangularNodeGrid(6, 1, 1)
	if math.Abs(r-c) > 1e-9 {
		t.Errorf("square nodes: grid %v x %v not square", r, c)
	}
	r2, c2 := RectangularNodeGrid(6, 4, 1)
	if math.Abs(r2/c2-4) > 1e-9 {
		t.Errorf("4:1 nodes: grid aspect %v, want 4", r2/c2)
	}
	// Physical array sides: rows*W2? The paper's arrangement makes the
	// array ~ square: rows*w1 x cols*w2 with rows*w1 == cols*w2.
	if math.Abs(r2*1-c2*4) > 1e-6*r2 {
		// rows carry the short side of the node
		t.Logf("array sides %v vs %v", r2*1, c2*4)
	}
	if r2*c2-NumNodes(6) > 1e-6*r2*c2 {
		t.Errorf("grid does not hold N nodes: %v", r2*c2)
	}
}
