// Package wirecover defines an Analyzer enforcing round-trip field
// coverage on the binary wire format: every field of a type with
// MarshalBinary/UnmarshalBinary — and of every package-local struct
// nested in it that the marshaler touches per-field — must be read
// somewhere in Marshal's call reach and written somewhere in
// Unmarshal's, and the two sides must agree on field order. "Added a
// field, forgot to encode it" (or decode it, or encoded it in a
// different position than the decoder expects) becomes a lint error
// instead of a cache-corrupting runtime surprise.
package wirecover

import (
	"go/token"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/callgraph"
	"bfvlsi/internal/lint/schema"
)

var Analyzer = &analysis.Analyzer{
	Name: "wirecover",
	Doc: "check that every struct field of a MarshalBinary/UnmarshalBinary type " +
		"is read in the marshal path, written in the unmarshal path (traced " +
		"interprocedurally through package-local encode/decode helpers), and " +
		"encoded and decoded in the same field order",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	marshalers := schema.Marshalers(pass.Pkg, pass.TypesInfo, pass.Files)
	if len(marshalers) == 0 {
		return nil, nil
	}
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, m := range marshalers {
		if pass.InTestFile(m.Marshal.Pos()) || pass.InTestFile(m.Unmarshal.Pos()) {
			continue
		}
		closure := schema.Closure(pass.Pkg, m.Named)
		relevant := map[*types.TypeName]bool{}
		for _, n := range closure {
			relevant[n.Obj()] = true
		}
		mset := schema.Collect(g, pass.TypesInfo, m.Marshal, relevant)
		uset := schema.Collect(g, pass.TypesInfo, m.Unmarshal, relevant)
		for _, n := range closure {
			tn := n.Obj()
			st := n.Underlying().(*types.Struct)
			root := tn == m.TypeName
			// Sub-structs the marshaler never touches per-field on a
			// side (whole-value copies, or encoding delegated across
			// the package border) carry no per-field obligation there.
			if root || len(mset.Reads[tn]) > 0 {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if !mset.Reads[tn][f.Name()] {
						pass.Reportf(fieldPos(pass, f, m.Marshal.Name.Pos()),
							"field %s.%s is never read in the reach of (%s).MarshalBinary: encode it or the frame silently drops it",
							tn.Name(), f.Name(), m.TypeName.Name())
					}
				}
			}
			if root || len(uset.Writes[tn]) > 0 {
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if !uset.Writes[tn][f.Name()] {
						pass.Reportf(fieldPos(pass, f, m.Unmarshal.Name.Pos()),
							"field %s.%s is never written in the reach of (%s).UnmarshalBinary: decoded frames leave it zero",
							tn.Name(), f.Name(), m.TypeName.Name())
					}
				}
			}
			checkOrder(pass, m, tn, mset.ReadOrder[tn], uset.WriteOrder[tn])
		}
	}
	return nil, nil
}

// checkOrder compares the encoder-argument read order of Marshal with
// the write order of Unmarshal, restricted to the fields both sides
// order (guard-only reads and presence writes drop out of the
// comparison).
func checkOrder(pass *analysis.Pass, m *schema.Marshaler, tn *types.TypeName, morder, uorder []string) {
	common := map[string]bool{}
	for _, f := range morder {
		common[f] = true
	}
	ms := filterTo(morder, common, uorder)
	us := filterTo(uorder, common, nil)
	if len(ms) != len(us) {
		return // coverage diagnostics already explain a missing field
	}
	for i := range ms {
		if ms[i] != us[i] {
			pass.Reportf(m.Marshal.Name.Pos(),
				"(%s).MarshalBinary encodes %s fields in order [%s] but UnmarshalBinary decodes [%s]: the wire positions disagree",
				m.TypeName.Name(), tn.Name(), strings.Join(ms, " "), strings.Join(us, " "))
			return
		}
	}
}

// filterTo keeps the elements of seq present in set (and, when also is
// non-nil, present in also too).
func filterTo(seq []string, set map[string]bool, also []string) []string {
	alsoSet := map[string]bool{}
	for _, f := range also {
		alsoSet[f] = true
	}
	var out []string
	for _, f := range seq {
		if !set[f] {
			continue
		}
		if also != nil && !alsoSet[f] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// fieldPos anchors a diagnostic at the field's declaration when it
// lies in this package's fileset (types defined as aliases of another
// package's struct declare their fields elsewhere), else at fallback.
func fieldPos(pass *analysis.Pass, f *types.Var, fallback token.Pos) token.Pos {
	if pass.Fset.File(f.Pos()) != nil {
		return f.Pos()
	}
	return fallback
}
