package wirecover_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/wirecover"
)

func TestWirecover(t *testing.T) {
	analysistest.Run(t, "testdata", wirecover.Analyzer, "wc")
}
