package wc

// MissingRead drops a field on the encode side: the decoder expects
// it, the encoder never reads it, frames silently truncate it.
type MissingRead struct {
	A int
	C int // want "field MissingRead.C is never read in the reach of \\(MissingRead\\).MarshalBinary"
}

func (s *MissingRead) MarshalBinary() ([]byte, error) {
	e := newEnc(2, 1)
	e.uint(s.A)
	return e.buf, nil
}

func (s *MissingRead) UnmarshalBinary(data []byte) error {
	d := newDec(data, 2, 1)
	s.A = d.uint()
	s.C = d.uint()
	return d.finish()
}

// MissingWrite drops a field on the decode side: decoded values leave
// it zero no matter what the frame carried.
type MissingWrite struct {
	A int
	C int // want "field MissingWrite.C is never written in the reach of \\(MissingWrite\\).UnmarshalBinary"
}

func (s *MissingWrite) MarshalBinary() ([]byte, error) {
	e := newEnc(3, 1)
	e.uint(s.A)
	e.uint(s.C)
	return e.buf, nil
}

func (s *MissingWrite) UnmarshalBinary(data []byte) error {
	d := newDec(data, 3, 1)
	s.A = d.uint()
	return d.finish()
}

// OrderSwap covers every field on both sides but decodes them in the
// opposite order, so the wire positions disagree.
type OrderSwap struct {
	A int
	B int
}

func (s *OrderSwap) MarshalBinary() ([]byte, error) { // want "encodes OrderSwap fields in order \\[A B\\] but UnmarshalBinary decodes \\[B A\\]"
	e := newEnc(4, 1)
	e.uint(s.A)
	e.uint(s.B)
	return e.buf, nil
}

func (s *OrderSwap) UnmarshalBinary(data []byte) error {
	d := newDec(data, 4, 1)
	s.B = d.uint()
	s.A = d.uint()
	return d.finish()
}

// Outer's nested Pair is touched per-field on both sides, so partial
// nested coverage is a finding (unlike a whole-value copy, which
// carries no per-field obligation).
type Outer struct {
	Sub Pair
}

// Pair is covered on the encode side but only half-written on decode.
type Pair struct {
	L int
	R int // want "field Pair.R is never written in the reach of \\(Outer\\).UnmarshalBinary"
}

func (s *Outer) MarshalBinary() ([]byte, error) {
	e := newEnc(5, 1)
	e.uint(s.Sub.L)
	e.uint(s.Sub.R)
	return e.buf, nil
}

func (s *Outer) UnmarshalBinary(data []byte) error {
	d := newDec(data, 5, 1)
	s.Sub.L = d.uint()
	return d.finish()
}
