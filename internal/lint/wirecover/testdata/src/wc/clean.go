package wc

// Clean round-trips every field through shared body helpers, with a
// validation guard that re-reads fields before encoding begins: guard
// reads must not perturb the encode order the analyzer compares.
type Clean struct {
	A    int
	B    int
	Subs []Sub
}

// Sub is a nested struct encoded per-field by the helpers.
type Sub struct {
	X int
	Y int
}

func (s *Clean) MarshalBinary() ([]byte, error) {
	if s.B < 0 || s.A < 0 {
		return nil, nil
	}
	e := newEnc(1, 1)
	s.encodeBody(e)
	return e.buf, nil
}

func (s *Clean) encodeBody(e *enc) {
	e.uint(s.A)
	e.uint(s.B)
	e.uint(len(s.Subs))
	for _, sv := range s.Subs {
		e.uint(sv.X)
		e.uint(sv.Y)
	}
}

func (s *Clean) UnmarshalBinary(data []byte) error {
	d := newDec(data, 1, 1)
	var out Clean
	out.decodeBody(d)
	if err := d.finish(); err != nil {
		return err
	}
	*s = out
	return nil
}

func (s *Clean) decodeBody(d *dec) {
	s.A = d.uint()
	s.B = d.uint()
	n := d.uint()
	for i := 0; i < n; i++ {
		s.Subs = append(s.Subs, Sub{X: d.uint(), Y: d.uint()})
	}
}
