// Package wc is the wirecover fixture: a miniature of the
// internal/wire encoder/decoder idiom (named enc/dec types, body
// helpers shared between marshalers) with round-trip coverage and
// field-order violations for the analyzer to catch.
package wc

type enc struct{ buf []byte }

func newEnc(typ, version byte) *enc {
	return &enc{buf: []byte{'B', 'F', typ, version}}
}

func (e *enc) uint(v int) { e.buf = append(e.buf, byte(v)) }

type dec struct {
	buf []byte
	off int
	err error
}

func newDec(data []byte, typ, version byte) *dec { return &dec{buf: data, off: 4} }

func (d *dec) uint() int {
	if d.off >= len(d.buf) {
		return 0
	}
	v := int(d.buf[d.off])
	d.off++
	return v
}

func (d *dec) finish() error { return d.err }
