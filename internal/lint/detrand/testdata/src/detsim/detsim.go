// Package detsim is the detrand fixture: a mock simulator exercising
// both the forbidden wall-clock/global-rand escapes and the sanctioned
// seeded patterns.
package detsim

import (
	"math/rand"
	"time"
)

// Bad: global top-level math/rand draws from process-wide state.
func badGlobalRand() int {
	rand.Seed(42)                      // want `global rand\.Seed`
	x := rand.Intn(10)                 // want `global rand\.Intn`
	f := rand.Float64()                // want `global rand\.Float64`
	p := rand.Perm(4)                  // want `global rand\.Perm`
	rand.Shuffle(4, func(i, j int) {}) // want `global rand\.Shuffle`
	return x + int(f) + p[0]
}

// Bad: wall-clock reads tie the run to real time.
func badWallClock() time.Duration {
	t0 := time.Now()    // want `time\.Now reads the wall clock`
	d := time.Since(t0) // want `time\.Since reads the wall clock`
	d += time.Until(t0) // want `time\.Until reads the wall clock`
	return d
}

// Good: an explicitly seeded private source threaded through.
func goodSeeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10) + rng.Perm(4)[0]
}

// Good: time constants and arithmetic are not wall-clock reads.
func goodTimeArithmetic(d time.Duration) time.Duration {
	return d + 3*time.Millisecond
}

// Good: a zipf distribution over an already-seeded source.
func goodZipf(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.5, 1, 100)
	return z.Uint64()
}
