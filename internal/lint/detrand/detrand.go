// Package detrand implements the bflint analyzer that enforces the
// simulators' determinism contract: simulator packages must thread an
// explicitly seeded *rand.Rand through every stochastic choice and a
// cycle counter through every notion of time. The global math/rand
// top-level functions draw from process-wide state, and time.Now /
// time.Since tie behaviour to the wall clock; either one silently
// breaks the golden zero-fault identity tests that pin two simulators
// to bit-identical traces under one seed.
package detrand

import (
	"go/ast"
	"go/types"

	"bfvlsi/internal/lint/analysis"
)

// Analyzer flags wall-clock and global-randomness escapes in simulator
// packages.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid global math/rand, time.Now, and time.Since in simulator packages; " +
		"randomness must come from an explicitly seeded *rand.Rand and time from the cycle counter",
	Run: run,
}

// allowedRandFuncs are the constructors of seeded sources: building a
// *rand.Rand from an explicit seed is exactly the sanctioned pattern.
var allowedRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an already-seeded *rand.Rand
	"NewPCG":     true, // math/rand/v2 seeded source
	"NewChaCha8": true,
}

// bannedTimeFuncs are the wall-clock reads that leak real time into a
// cycle-driven simulation.
var bannedTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are the sanctioned path
			}
			if pass.InTestFile(sel.Pos()) {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if !allowedRandFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"global rand.%s draws from process-wide state and breaks seeded determinism; thread an explicitly seeded *rand.Rand instead",
						fn.Name())
				}
			case "time":
				if bannedTimeFuncs[fn.Name()] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock inside a simulator package; simulators must be functions of (params, seed) only — use the cycle counter",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
