package detrand_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "detsim")
}
