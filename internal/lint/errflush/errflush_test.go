package errflush_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/errflush"
)

func TestErrflush(t *testing.T) {
	analysistest.Run(t, "testdata", errflush.Analyzer, "flushfix")
}
