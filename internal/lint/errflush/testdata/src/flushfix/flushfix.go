// Package flushfix is the errflush fixture: discarded Flush/Close/Sync
// errors next to the checked and explicitly-discarded forms that must
// stay clean.
package flushfix

import (
	"os"
	"text/tabwriter"
)

// Bad: the statement forms that swallow the terminal error.
func badDiscards(w *tabwriter.Writer, f *os.File) {
	w.Flush()       // want `\*text/tabwriter\.Writer\.Flush error is discarded`
	f.Close()       // want `\*os\.File\.Close error is discarded`
	f.Sync()        // want `\*os\.File\.Sync error is discarded`
	defer w.Flush() // want `\*text/tabwriter\.Writer\.Flush error is discarded`
	defer f.Close() // want `\*os\.File\.Close error is discarded`
}

// Good: checking the error is the point.
func goodChecked(w *tabwriter.Writer, f *os.File) error {
	if err := w.Flush(); err != nil {
		return err
	}
	return f.Close()
}

// Good: assigning to the blank identifier records the decision.
func goodExplicitDiscard(f *os.File) {
	_ = f.Close()
}

// Good: Close with no error result (not an audited signature).
type quietCloser struct{}

func (quietCloser) Close() {}

func goodQuietClose(q quietCloser) {
	q.Close()
}
