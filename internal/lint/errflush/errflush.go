// Package errflush implements the bflint analyzer behind the CLI
// error-path audit. The repo's commands buffer all table output through
// text/tabwriter and write artifacts through os.File, so a swallowed
// Flush or Close error is exactly the path where a full disk or closed
// pipe turns into silently truncated output. The analyzer flags call
// statements that discard the error result of a Flush, Close, or Sync
// method; callers either check the error or assign it to the blank
// identifier to record the decision.
package errflush

import (
	"go/ast"
	"go/types"

	"bfvlsi/internal/lint/analysis"
)

// Analyzer flags discarded errors from Flush/Close/Sync calls.
var Analyzer = &analysis.Analyzer{
	Name: "errflush",
	Doc: "flag statements that discard the error returned by Flush, Close, or Sync; " +
		"buffered writers surface every upstream write failure there",
	Run: run,
}

// auditedMethods are the terminal operations whose error carries all
// buffered write failures.
var auditedMethods = map[string]bool{"Flush": true, "Close": true, "Sync": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !auditedMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil || !returnsOnlyError(sig) {
				return true
			}
			if pass.InTestFile(call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s.%s error is discarded; buffered write failures surface here — check it or assign to _",
				types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)), fn.Name())
			return true
		})
	}
	return nil, nil
}

func returnsOnlyError(sig *types.Signature) bool {
	if sig.Results().Len() != 1 {
		return false
	}
	named, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
