// Package schema is the shared engine behind the serialization-contract
// analyzers (wirecover, statecover, schemalock): it finds the
// MarshalBinary/UnmarshalBinary pairs of a package, computes the
// package-local struct closure a root type drags along, collects
// interprocedural field-access sets (which fields a function's call
// reach reads and writes, and in what encoder order), fingerprints a
// type's field schema deterministically, and reads/writes the committed
// schema.lock manifest.
//
// The access collector rides the internal/lint/callgraph package graph:
// calls that resolve to package-local functions are spliced (their
// bodies contribute to the caller's access set, each body at most
// once), while cross-package and dynamic calls stay opaque. Field-order
// facts are deliberately encoder-restricted: only a read that occurs in
// the arguments of a method call on an `enc`/`Encoder` receiver counts
// toward the marshal order, so validation guards that re-read fields do
// not perturb it. DESIGN.md §13 records the soundness limits.
package schema

import (
	"go/ast"
	"go/types"
	"sort"
)

// A Marshaler is one type with both halves of the binary-marshaling
// contract declared in the package under analysis.
type Marshaler struct {
	TypeName  *types.TypeName
	Named     *types.Named
	Struct    *types.Struct
	Marshal   *ast.FuncDecl
	Unmarshal *ast.FuncDecl
}

// Marshalers returns every package-declared struct type that has both
// MarshalBinary and UnmarshalBinary methods with bodies, sorted by type
// name for deterministic iteration.
func Marshalers(pkg *types.Package, info *types.Info, files []*ast.File) []*Marshaler {
	byType := map[*types.TypeName]*Marshaler{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			if name != "MarshalBinary" && name != "UnmarshalBinary" {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				continue
			}
			rt := sig.Recv().Type()
			if p, ok := rt.(*types.Pointer); ok {
				rt = p.Elem()
			}
			named, ok := rt.(*types.Named)
			if !ok || named.Obj().Pkg() != pkg {
				continue
			}
			st, ok := named.Underlying().(*types.Struct)
			if !ok {
				continue
			}
			m := byType[named.Obj()]
			if m == nil {
				m = &Marshaler{TypeName: named.Obj(), Named: named, Struct: st}
				byType[named.Obj()] = m
			}
			if name == "MarshalBinary" {
				m.Marshal = fd
			} else {
				m.Unmarshal = fd
			}
		}
	}
	var out []*Marshaler
	for _, m := range byType {
		if m.Marshal != nil && m.Unmarshal != nil {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].TypeName.Name() < out[j].TypeName.Name()
	})
	return out
}

// Closure returns the package-local named struct types reachable from
// root through struct fields (unwrapping pointers, slices, arrays, and
// maps), root first, in deterministic field-discovery order. Structs
// from other packages terminate the walk: no cross-package facts exist
// at analysis time, so coverage obligations stop at the package border
// (the fingerprint in schemalock still sees through it).
func Closure(pkg *types.Package, root *types.Named) []*types.Named {
	var out []*types.Named
	seen := map[*types.TypeName]bool{}
	var visit func(t types.Type)
	add := func(n *types.Named) {
		if seen[n.Obj()] {
			return
		}
		seen[n.Obj()] = true
		if n.Obj().Pkg() != pkg {
			return
		}
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			return
		}
		out = append(out, n)
		for i := 0; i < st.NumFields(); i++ {
			visit(st.Field(i).Type())
		}
	}
	visit = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Map:
			visit(t.Key())
			visit(t.Elem())
		case *types.Named:
			add(t)
		}
	}
	add(root)
	return out
}
