package schema

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/callgraph"
)

// An AccessSet is the interprocedural field-access summary of one
// function's call reach, keyed by the (package-local) named struct a
// field belongs to. Reads and Writes are coverage facts; ReadOrder and
// WriteOrder are first-occurrence sequences used for the
// field-order-agreement check: ReadOrder records only reads that happen
// inside the arguments of an encoder method call (so guard re-reads do
// not pollute the encode order), WriteOrder records every field write
// in source order (decode order on the unmarshal side).
type AccessSet struct {
	Reads      map[*types.TypeName]map[string]bool
	Writes     map[*types.TypeName]map[string]bool
	ReadOrder  map[*types.TypeName][]string
	WriteOrder map[*types.TypeName][]string
}

// Collect walks root and every package-local function its call reach
// can name (each body spliced once), recording accesses to fields of
// the relevant struct types.
func Collect(g *callgraph.Graph, info *types.Info, root *ast.FuncDecl, relevant map[*types.TypeName]bool) *AccessSet {
	c := &collector{
		g:        g,
		info:     info,
		relevant: relevant,
		set: &AccessSet{
			Reads:      map[*types.TypeName]map[string]bool{},
			Writes:     map[*types.TypeName]map[string]bool{},
			ReadOrder:  map[*types.TypeName][]string{},
			WriteOrder: map[*types.TypeName][]string{},
		},
		visited: map[*ast.FuncDecl]bool{},
	}
	c.process(root)
	return c.set
}

type collector struct {
	g        *callgraph.Graph
	info     *types.Info
	relevant map[*types.TypeName]bool
	set      *AccessSet
	visited  map[*ast.FuncDecl]bool
}

func (c *collector) process(decl *ast.FuncDecl) {
	if decl == nil || decl.Body == nil || c.visited[decl] {
		return
	}
	c.visited[decl] = true
	ast.Walk(&walker{c: c}, decl.Body)
}

// walker is the per-context AST visitor; inEnc is true while visiting
// the arguments of an encoder method call (transitively, through
// nested conversions and calls).
type walker struct {
	c     *collector
	inEnc bool
}

func (w *walker) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.CallExpr:
		w.call(n)
		return nil
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound assignment (+=, |=, ...) reads its target too.
			for _, l := range n.Lhs {
				ast.Walk(w, l)
			}
		}
		for _, r := range n.Rhs {
			ast.Walk(w, r)
		}
		for _, l := range n.Lhs {
			w.c.writeChain(w, l)
		}
		return nil
	case *ast.IncDecStmt:
		ast.Walk(w, n.X)
		w.c.writeChain(w, n.X)
		return nil
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			// Taking a field's address may hand it out for writing
			// (decode(d, &out.Sim)); count it as both read and write.
			w.c.writeChain(w, n.X)
		}
		return w
	case *ast.CompositeLit:
		if tn := w.c.litTypeName(n); tn != nil {
			w.c.composite(w, n, tn)
			return nil
		}
		return w
	case *ast.SelectorExpr:
		w.c.selector(w, n)
		return nil
	case *ast.FuncLit:
		ast.Walk(&walker{c: w.c}, n.Body)
		return nil
	}
	return w
}

// call handles one call expression: the callee expression and receiver
// are visited in the current context, arguments in an encoder context
// when the call is an encoder method, pointer-receiver method calls
// count as writes through their receiver chain, and package-local
// callees are spliced into the access set.
func (w *walker) call(n *ast.CallExpr) {
	c := w.c
	ast.Walk(w, n.Fun)
	aw := w
	if enc := w.inEnc || c.isEncoderCall(n); enc != w.inEnc {
		aw = &walker{c: c, inEnc: enc}
	}
	for _, a := range n.Args {
		ast.Walk(aw, a)
	}
	if fun, ok := callgraph.Unparen(n.Fun).(*ast.SelectorExpr); ok {
		if sel, ok := c.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
						c.writeChain(w, fun.X)
					}
				}
			}
		}
	}
	for _, callee := range c.g.CalleesOf(n) {
		c.process(callee.Decl)
	}
}

// isEncoderCall reports whether the call is a method call on an
// encoder value (the internal `enc` or the exported wire `Encoder`).
func (c *collector) isEncoderCall(n *ast.CallExpr) bool {
	fun, ok := callgraph.Unparen(n.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := c.info.Selections[fun]
	if !ok || sel.Kind() != types.MethodVal {
		return false
	}
	t := sel.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return name == "enc" || name == "Encoder"
}

// selector records a field read when the selector denotes a field of a
// relevant struct, then continues into the operand (x.y.z reads y of x
// as well as z of x.y).
func (c *collector) selector(w *walker, x *ast.SelectorExpr) {
	if tn, name, ok := c.fieldSel(x); ok {
		c.recordRead(tn, name, w.inEnc)
	}
	ast.Walk(w, x.X)
}

// fieldSel resolves a selector expression to (owning struct, field
// name) when it selects a field of a relevant package-local struct.
func (c *collector) fieldSel(x *ast.SelectorExpr) (*types.TypeName, string, bool) {
	sel, ok := c.info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return nil, "", false
	}
	t := c.info.TypeOf(x.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !c.relevant[named.Obj()] {
		return nil, "", false
	}
	return named.Obj(), x.Sel.Name, true
}

// writeChain records a write at every relevant selector level of an
// assignment target (out.Stats.Width = v writes Width of Stats and
// Stats of the root), walking index operands as reads.
func (c *collector) writeChain(w *walker, e ast.Expr) {
	for {
		switch x := callgraph.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if tn, name, ok := c.fieldSel(x); ok {
				c.recordWrite(tn, name)
			}
			e = x.X
		case *ast.IndexExpr:
			ast.Walk(w, x.Index)
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return
			}
			e = x.X
		default:
			return
		}
	}
}

// litTypeName resolves a composite literal to a relevant named struct.
func (c *collector) litTypeName(n *ast.CompositeLit) *types.TypeName {
	tv, ok := c.info.Types[n]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	if !c.relevant[named.Obj()] {
		return nil
	}
	return named.Obj()
}

// composite records the field writes a relevant struct literal
// performs, in element order (keyed literals write the named fields,
// unkeyed literals write positionally).
func (c *collector) composite(w *walker, n *ast.CompositeLit, tn *types.TypeName) {
	st := tn.Type().Underlying().(*types.Struct)
	for i, e := range n.Elts {
		if kv, ok := e.(*ast.KeyValueExpr); ok {
			ast.Walk(w, kv.Value)
			if id, ok := kv.Key.(*ast.Ident); ok {
				c.recordWrite(tn, id.Name)
			}
			continue
		}
		ast.Walk(w, e)
		if i < st.NumFields() {
			c.recordWrite(tn, st.Field(i).Name())
		}
	}
}

func (c *collector) recordRead(tn *types.TypeName, field string, ordered bool) {
	m := c.set.Reads[tn]
	if m == nil {
		m = map[string]bool{}
		c.set.Reads[tn] = m
	}
	m[field] = true
	if ordered && !contains(c.set.ReadOrder[tn], field) {
		c.set.ReadOrder[tn] = append(c.set.ReadOrder[tn], field)
	}
}

func (c *collector) recordWrite(tn *types.TypeName, field string) {
	m := c.set.Writes[tn]
	if m == nil {
		m = map[string]bool{}
		c.set.Writes[tn] = m
	}
	m[field] = true
	if !contains(c.set.WriteOrder[tn], field) {
		c.set.WriteOrder[tn] = append(c.set.WriteOrder[tn], field)
	}
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
