package schema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/callgraph"
)

// Fingerprint returns a deterministic SHA-256 (hex) of a struct type's
// field schema: field names, types, and order, with every named struct
// reachable through field types — cross-package included — expanded in
// breadth-first discovery order. Named non-struct types are rendered by
// their qualified name only (their underlying type is not part of the
// fingerprint; see DESIGN.md §13 for that soundness limit).
func Fingerprint(root *types.Named) string {
	var b strings.Builder
	qual := func(p *types.Package) string { return p.Path() }
	seen := map[*types.TypeName]bool{root.Obj(): true}
	queue := []*types.Named{root}
	var enqueue func(t types.Type)
	enqueue = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			enqueue(t.Elem())
		case *types.Slice:
			enqueue(t.Elem())
		case *types.Array:
			enqueue(t.Elem())
		case *types.Map:
			enqueue(t.Key())
			enqueue(t.Elem())
		case *types.Named:
			if seen[t.Obj()] {
				return
			}
			if _, ok := t.Underlying().(*types.Struct); ok {
				seen[t.Obj()] = true
				queue = append(queue, t)
			}
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "type %s struct\n", typeID(n))
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fmt.Fprintf(&b, "field %s %s\n", f.Name(), types.TypeString(f.Type(), qual))
			enqueue(f.Type())
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// typeID renders a named type's manifest key: package path dot name.
func typeID(n *types.Named) string {
	if p := n.Obj().Pkg(); p != nil {
		return p.Path() + "." + n.Obj().Name()
	}
	return n.Obj().Name()
}

// TypeID is typeID for external callers (the -writeschema driver and
// schemalock share the manifest key format through it).
func TypeID(n *types.Named) string { return typeID(n) }

// VersionOf extracts the version byte a MarshalBinary body passes to
// its encoder constructor (newEnc or wire.NewEncoder second argument):
// the constant's source name (VersionFaultSpec) and value. ok is false
// when no constructor call with a constant version is found in the
// body itself — helpers are deliberately not searched, so the version
// stays attributable to the marshaler.
func VersionOf(info *types.Info, fn *ast.FuncDecl) (name string, value int64, ok bool) {
	if fn == nil || fn.Body == nil {
		return "", 0, false
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ok {
			return false
		}
		call, is := n.(*ast.CallExpr)
		if !is || len(call.Args) < 2 {
			return true
		}
		callee := ""
		switch f := callgraph.Unparen(call.Fun).(type) {
		case *ast.Ident:
			callee = f.Name
		case *ast.SelectorExpr:
			callee = f.Sel.Name
		}
		if callee != "newEnc" && callee != "NewEncoder" {
			return true
		}
		tv, has := info.Types[call.Args[1]]
		if !has || tv.Value == nil {
			return true
		}
		v, exact := constant.Int64Val(constant.ToInt(tv.Value))
		if !exact {
			return true
		}
		switch a := callgraph.Unparen(call.Args[1]).(type) {
		case *ast.Ident:
			name = a.Name
		case *ast.SelectorExpr:
			name = a.Sel.Name
		default:
			name = tv.Value.String()
		}
		value, ok = v, true
		return false
	})
	return name, value, ok
}
