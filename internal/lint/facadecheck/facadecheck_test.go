package facadecheck_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/facadecheck"
)

func TestFacadecheck(t *testing.T) {
	defer func(prev []string) { facadecheck.Blessed = prev }(facadecheck.Blessed)
	facadecheck.Blessed = []string{"blessed"}
	analysistest.Run(t, "testdata", facadecheck.Analyzer, "facade")
}
