// Package blessed is the facadecheck fixture's internal package: its
// exported surface must be fully covered by the facade fixture.
package blessed

// Config is re-exported by the facade as a type alias.
type Config struct{ N int }

// Run is wrapped by an exported facade function.
func Run(c Config) int { return c.N }

// DefaultTTL is re-exported as a var binding.
func DefaultTTL(n int) int { return 16 * n }

// Mode is exempted by the facade with a //facade:exempt comment.
type Mode int

// Hidden is neither re-exported nor exempted: the analyzer must flag it.
func Hidden() int { return 1 }

// Orphan is a second uncovered symbol, to pin multi-report behaviour.
type Orphan struct{}

// internalHelper is unexported and of no interest to the facade.
func internalHelper() int { return 2 }
