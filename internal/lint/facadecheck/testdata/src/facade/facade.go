// Package facade is the facadecheck fixture's public surface over the
// blessed package: aliases, wrappers, a var re-binding, and one
// explicit exemption. blessed.Hidden and blessed.Orphan stay uncovered
// on purpose.
package facade

import "blessed" // want `exported symbol blessed\.Hidden is not re-exported by the facade` `exported symbol blessed\.Orphan is not re-exported by the facade`

// Config re-exports the blessed configuration type.
type Config = blessed.Config

// Run wraps the blessed entry point; referencing it from an exported
// wrapper counts as coverage.
func Run(c Config) int { return blessed.Run(c) }

// DefaultTTL re-binds the blessed function as a var.
var DefaultTTL = blessed.DefaultTTL

//facade:exempt blessed.Mode internal tuning enum, deliberately unexported

// unexportedUse references blessed.internalHelper's sibling but is not
// exported, so it must NOT count as coverage for anything it touches.
func unexportedUse() blessed.Orphan { return blessed.Orphan{} }
