// Package facadecheck implements the bflint analyzer that keeps the
// root bfvlsi facade honest. Internal packages are invisible to
// downstream users; the facade file re-exports their API as type
// aliases, wrapper functions, and const/var re-bindings. Every PR that
// adds an exported symbol to a blessed internal package must either
// re-export it through the facade or record an explicit exemption —
// otherwise the public surface silently drifts behind the
// implementation.
//
// A symbol counts as re-exported when any exported top-level
// declaration of the facade package references it. Deliberate omissions
// are declared in the facade source as
//
//	//facade:exempt routing.SweepPoint internal sweep plumbing
//
// naming the symbol as <package short name>.<symbol>, with an optional
// trailing reason.
package facadecheck

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"bfvlsi/internal/lint/analysis"
)

// Blessed lists the import paths whose exported surface the facade
// must cover. Tests narrow it to fixture packages.
var Blessed = []string{
	"bfvlsi/internal/routing",
	"bfvlsi/internal/faults",
	"bfvlsi/internal/reliable",
	"bfvlsi/internal/adaptive",
}

// Analyzer reports exported symbols of blessed internal packages that
// the facade package neither re-exports nor exempts.
var Analyzer = &analysis.Analyzer{
	Name: "facadecheck",
	Doc: "require every exported symbol of blessed internal packages to be re-exported " +
		"through the facade package or explicitly exempted with a //facade:exempt comment",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	blessed := map[string]bool{}
	for _, p := range Blessed {
		blessed[p] = true
	}

	// covered holds every object from a blessed package referenced by
	// an exported top-level declaration of the facade.
	covered := map[types.Object]bool{}
	exempt := map[string]bool{}
	// importPos maps a blessed package path to its import spec, the
	// natural anchor for "missing from facade" diagnostics.
	importPos := map[string]ast.Node{}

	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if blessed[path] {
				importPos[path] = imp
			}
		}
		collectExemptions(f, exempt)
		for _, decl := range f.Decls {
			if !exportedDecl(decl) {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[id]
				if obj != nil && obj.Pkg() != nil && blessed[obj.Pkg().Path()] {
					covered[obj] = true
				}
				return true
			})
		}
	}

	for _, path := range Blessed {
		var pkg *types.Package
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == path {
				pkg = imp
				break
			}
		}
		anchor := pass.Files[0].Name.Pos()
		if n, ok := importPos[path]; ok {
			anchor = n.Pos()
		}
		if pkg == nil {
			pass.Reportf(anchor, "blessed package %s is not imported by the facade package", path)
			continue
		}
		scope := pkg.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			obj := scope.Lookup(name)
			if !obj.Exported() || covered[obj] {
				continue
			}
			if exempt[pkg.Name()+"."+name] {
				continue
			}
			pass.Reportf(anchor,
				"exported symbol %s.%s is not re-exported by the facade; add a re-export or a //facade:exempt %s.%s comment",
				pkg.Name(), name, pkg.Name(), name)
		}
	}
	return nil, nil
}

// collectExemptions gathers //facade:exempt pkg.Sym comments.
func collectExemptions(f *ast.File, exempt map[string]bool) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, "facade:exempt") {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, "facade:exempt"))
			if len(fields) > 0 {
				exempt[fields[0]] = true
			}
		}
	}
}

// exportedDecl reports whether the top-level declaration defines at
// least one exported name (a re-export must itself be public to count).
func exportedDecl(decl ast.Decl) bool {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		return d.Recv == nil && d.Name.IsExported()
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() {
					return true
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() {
						return true
					}
				}
			}
		}
	}
	return false
}
