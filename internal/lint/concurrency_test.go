package lint_test

import (
	"go/ast"
	"go/parser"
	"os"
	"strings"
	"testing"

	"bfvlsi/internal/lint"
	"bfvlsi/internal/lint/load"
)

// concurrencyAnalyzers are the v3 contract analyzers this file gates
// on: the interprocedural call-graph/summary engine must run clean over
// the fixed tree (the ISSUE's acceptance bar), independently of what
// the rest of the suite does.
var concurrencyAnalyzers = map[string]bool{
	"lockcheck": true, "atomicmix": true, "goleak": true, "sweepshare": true,
}

// TestConcurrencyAnalyzersCleanOnRepo asserts the four concurrency
// analyzers report zero findings across the module. The annotated
// structs (serve's cache, dispatch's breaker and lease tables,
// sweepfarm's journal) are the real fixtures here: a regression that
// drops a lock or adds a joinless goroutine fails this test.
func TestConcurrencyAnalyzersCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check skipped in -short mode")
	}
	pkgs, err := load.New().Load("bfvlsi/...")
	if err != nil {
		t.Fatal(err)
	}
	var findings []string
	for _, p := range pkgs {
		if len(lint.AnalyzersFor(p.Path)) == 0 {
			continue
		}
		diags, err := lint.Run(p.Path, p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			if concurrencyAnalyzers[d.Category] {
				findings = append(findings, p.Fset.Position(d.Pos).String()+": "+d.Message+" ("+d.Category+")")
			}
		}
	}
	if len(findings) > 0 {
		t.Errorf("concurrency analyzers are not clean on the repository:\n%s", strings.Join(findings, "\n"))
	}
}

// TestLockcheckCatchesUnguardedCacheAccess is the mutation test: take
// the real internal/serve cache, strip the lock from stats(), and
// assert lockcheck flags the now-unguarded access to the annotated
// fields. This proves the repo-clean test above is load-bearing — the
// annotations fire on exactly the regression they exist to stop.
func TestLockcheckCatchesUnguardedCacheAccess(t *testing.T) {
	src, err := os.ReadFile("../serve/cache.go")
	if err != nil {
		t.Fatal(err)
	}
	const guard = "c.mu.Lock()\n\tdefer c.mu.Unlock()\n\treturn c.order.Len(), c.bytes, c.evicted"
	const unguarded = "return c.order.Len(), c.bytes, c.evicted"
	mutated := strings.Replace(string(src), guard, unguarded, 1)
	if mutated == string(src) {
		t.Fatalf("mutation did not apply; stats() no longer matches:\n%s", guard)
	}

	l := load.New()
	f, err := parser.ParseFile(l.Fset, "cache.go", mutated, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("bfvlsi/internal/serve", "", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Category != "lockcheck" {
			t.Errorf("unexpected %s diagnostic on the mutated cache: %s", d.Category, d.Message)
			continue
		}
		if strings.Contains(d.Message, "c.mu") && strings.Contains(d.Message, "guardedby") {
			found = true
		}
	}
	if !found {
		t.Error("lockcheck did not flag the un-guarded stats() access")
	}
}
