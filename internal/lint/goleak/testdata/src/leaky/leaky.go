// Package leaky is the goleak fixture: goroutines with and without a
// reachable join/cancel signal, directly, through package-local
// helpers, through bound closures, and across opaque imports.
package leaky

import (
	"context"
	"sync"

	"leakyhelper"
)

func compute(i int) int { return i * i }

// Bad: fire-and-forget literal with no signal.
func fireAndForget(n int) {
	go func() { // want `goroutine has no reachable join or cancel signal`
		compute(n)
	}()
}

// Good: WaitGroup-joined.
func joined(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		compute(n)
	}()
	wg.Wait()
}

// Good: channel hand-off.
func channelled(n int) int {
	ch := make(chan int, 1)
	go func() { ch <- compute(n) }()
	return <-ch
}

// Good: context-scoped loop.
func scoped(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

func worker(jobs chan int) {
	for j := range jobs {
		compute(j)
	}
}

func spin(n int) {
	for i := 0; i < n; i++ {
		compute(i)
	}
}

// Good: the helper's summary reaches a channel receive.
func viaHelper(jobs chan int) {
	go worker(jobs)
}

// Bad: the helper's summary reaches nothing.
func viaSpin(n int) {
	go spin(n) // want `goroutine has no reachable join or cancel signal`
}

// Good: bound closure followed to its body.
func viaClosure(n int) int {
	ch := make(chan int, 1)
	work := func() { ch <- compute(n) }
	go work()
	return <-ch
}

// Good: opaque cross-package call visibly handed a channel.
func viaOpaque(ch chan int) {
	go leakyhelper.Drain(ch)
}

// Bad: opaque cross-package call with nothing crossing.
func viaOpaqueBad(n int) {
	go leakyhelper.Spin(n) // want `goroutine has no reachable join or cancel signal`
}

// Bad: a nested goroutine's signal belongs to the nested goroutine.
func nested(ch chan int) {
	go func() { // want `goroutine has no reachable join or cancel signal`
		go func() { ch <- 1 }()
	}()
}
