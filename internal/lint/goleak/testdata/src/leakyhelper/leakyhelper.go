// Package leakyhelper gives the goleak fixture an opaque import: its
// summaries are invisible to the analyzer, so only visibly crossing
// carriers (the channel parameter) earn the benefit of the doubt.
package leakyhelper

// Drain consumes the channel.
func Drain(ch chan int) {
	for range ch {
	}
}

// Spin burns cycles with no join discipline.
func Spin(n int) {
	for i := 0; i < n; i++ {
	}
}
