package goleak_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", goleak.Analyzer, "leaky")
}
