// Package goleak implements the bflint analyzer requiring every
// goroutine launched in non-test code to have a reachable join or
// cancel signal: a WaitGroup.Done (usually deferred), a channel
// send/receive/close/select the launcher can observe, or a
// ctx.Done-scoped loop. A goroutine with none of these outlives its
// work invisibly — the sweep drivers and the serve/dispatch daemons all
// shut down by draining, so an unjoinable goroutine is either a leak or
// an unkillable background task.
//
// The check is summary-based (internal/lint/callgraph): signals inside
// package-local callees count through callgraph.SummaryRounds call
// edges, closures bound once to a local (`work := func(){...}; go
// work()`) are followed, and an opaque cross-package call visibly
// handed a channel, context.Context, or *sync.WaitGroup is given the
// benefit of the doubt. Everything else is reported at the go
// statement.
package goleak

import (
	"go/ast"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/callgraph"
)

// Analyzer requires a reachable join/cancel signal for every goroutine.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc: "every `go` statement in non-test code must have a reachable join or cancel " +
		"signal: WaitGroup.Done, a channel operation, or ctx.Done",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoins(g, gs) {
				pass.Reportf(gs.Pos(),
					"goroutine has no reachable join or cancel signal (WaitGroup.Done, "+
						"channel operation, or ctx.Done); it cannot be waited for or stopped")
			}
			return true
		})
	}
	return nil, nil
}

// goroutineJoins decides whether the spawned body can reach a signal.
func goroutineJoins(g *callgraph.Graph, gs *ast.GoStmt) bool {
	if lit, ok := callgraph.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return g.JoinsIn(lit.Body)
	}
	return g.CallJoins(gs.Call)
}
