package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its graph.
func buildGraph(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return Build(fn.Body)
}

// reachable returns the set of block indices reachable from entry.
func reachable(g *Graph) map[int]bool {
	seen := map[int]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := buildGraph(t, "x := 1\ny := x + 1\n_ = y")
	if len(g.Entry.Stmts) != 3 {
		t.Fatalf("entry has %d stmts, want 3", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0].To != g.Exit {
		t.Fatalf("entry should flow straight to exit: %s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	// Entry must have two conditional successors with opposite Taken.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond block has %d succs, want 2: %s", len(g.Entry.Succs), g)
	}
	a, b := g.Entry.Succs[0], g.Entry.Succs[1]
	if a.Cond == nil || b.Cond == nil || a.Taken == b.Taken {
		t.Fatalf("if edges must carry the condition with opposite senses: %s", g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable: %s", g)
	}
}

func TestForLoop(t *testing.T) {
	g := buildGraph(t, "s := 0\nfor i := 0; i < 10; i++ {\n s += i\n}\n_ = s")
	str := g.String()
	// The loop head must have a true edge (body) and false edge (after).
	found := false
	for _, blk := range g.Blocks {
		var hasTrue, hasFalse bool
		for _, e := range blk.Succs {
			if e.Cond != nil && e.Taken {
				hasTrue = true
			}
			if e.Cond != nil && !e.Taken {
				hasFalse = true
			}
		}
		if hasTrue && hasFalse {
			found = true
		}
	}
	if !found {
		t.Fatalf("no loop head with both branch edges:\n%s", str)
	}
	// The graph must contain a cycle (body -> post -> head).
	if !hasCycle(g) {
		t.Fatalf("for loop produced an acyclic graph:\n%s", str)
	}
}

func TestRangeLoop(t *testing.T) {
	g := buildGraph(t, "xs := []int{1, 2}\nt := 0\nfor _, v := range xs {\n t += v\n}\n_ = t")
	if !hasCycle(g) {
		t.Fatalf("range loop produced an acyclic graph:\n%s", g)
	}
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable: %s", g)
	}
}

func TestBreakContinue(t *testing.T) {
	g := buildGraph(t, `for i := 0; i < 10; i++ {
	if i == 3 {
		continue
	}
	if i == 7 {
		break
	}
}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable: %s", g)
	}
	if !hasCycle(g) {
		t.Fatalf("loop with break/continue lost its back edge:\n%s", g)
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildGraph(t, `outer:
for i := 0; i < 4; i++ {
	for j := 0; j < 4; j++ {
		if i*j > 4 {
			break outer
		}
	}
}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable after labeled break: %s", g)
	}
}

func TestSwitch(t *testing.T) {
	g := buildGraph(t, `x := 2
switch x {
case 1:
	x = 10
case 2:
	x = 20
default:
	x = 30
}
_ = x`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable: %s", g)
	}
	// With a default clause the dispatch block must NOT have a direct
	// edge to the after block — count dispatch successors: 3 clauses.
	var dispatch *Block
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 3 {
			dispatch = blk
		}
	}
	if dispatch == nil {
		t.Fatalf("no 3-way dispatch block found:\n%s", g)
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildGraph(t, `x := 2
switch x {
case 1:
	x = 10
}
_ = x`)
	// Dispatch: one clause edge + one fall-through-to-after edge.
	var found bool
	for _, blk := range g.Blocks {
		if len(blk.Succs) == 2 && len(blk.Stmts) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("switch without default must keep a skip edge:\n%s", g)
	}
}

func TestReturnEndsPath(t *testing.T) {
	g := buildGraph(t, "x := 1\nif x > 0 {\n return\n}\nx = 2\n_ = x")
	// The return statement's block must flow only to exit.
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			if _, ok := s.(*ast.ReturnStmt); ok {
				if len(blk.Succs) != 1 || blk.Succs[0].To != g.Exit {
					t.Fatalf("return block must jump to exit: %s", g)
				}
			}
		}
	}
}

func TestGotoForward(t *testing.T) {
	g := buildGraph(t, "x := 1\ngoto done\nx = 2\ndone:\n_ = x")
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable after goto: %s", g)
	}
}

func TestSelect(t *testing.T) {
	g := buildGraph(t, `ch := make(chan int)
select {
case v := <-ch:
	_ = v
default:
}`)
	if !reachable(g)[g.Exit.Index] {
		t.Fatalf("exit unreachable after select: %s", g)
	}
}

func TestFuncLitOpaque(t *testing.T) {
	g := buildGraph(t, "f := func() {\n for {\n }\n}\n_ = f")
	// The literal's infinite loop must not leak into the outer graph.
	if hasCycle(g) {
		t.Fatalf("function literal body leaked into outer graph:\n%s", g)
	}
}

func TestStringRendering(t *testing.T) {
	g := buildGraph(t, "x := 1\n_ = x")
	if !strings.Contains(g.String(), "b0:") {
		t.Fatalf("String() should list blocks: %q", g.String())
	}
}

func hasCycle(g *Graph) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Blocks))
	var visit func(b *Block) bool
	visit = func(b *Block) bool {
		color[b.Index] = grey
		for _, e := range b.Succs {
			switch color[e.To.Index] {
			case grey:
				return true
			case white:
				if visit(e.To) {
					return true
				}
			}
		}
		color[b.Index] = black
		return false
	}
	return visit(g.Entry)
}
