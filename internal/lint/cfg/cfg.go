// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies — the substrate of the bflint dataflow analyses
// (reaching definitions and interval abstract interpretation in
// internal/lint/dataflow). Like the rest of the lint framework it is a
// deliberately small, stdlib-only stand-in for the upstream
// golang.org/x/tools/go/cfg, with the extra information those analyses
// need: conditional edges carry their controlling expression and branch
// sense, so a dataflow client can refine facts along each branch.
//
// The graph is statement-level: every block holds the ast.Stmt nodes
// that execute unconditionally once the block is entered, in order.
// Conditions of if/for statements do not appear as block statements;
// they live on the out-edges. Function literals are opaque single
// statements — a literal's body gets its own graph via Build, never
// spliced into the enclosing function's.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block: every return statement
	// and the fall-off-the-end path lead here.
	Exit *Block
}

// A Block is a maximal straight-line statement sequence.
type Block struct {
	Index int
	Stmts []ast.Stmt
	Succs []*Edge
	Preds []*Edge
}

// An Edge connects two blocks. Cond is nil for unconditional edges; for
// the two edges leaving an if/for condition it is the condition
// expression, with Taken reporting which outcome the edge represents.
type Edge struct {
	From, To *Block
	Cond     ast.Expr
	Taken    bool
}

// builder carries the construction state.
type builder struct {
	g *Graph
	// cur is the block under construction; nil when the current path is
	// unreachable (after return/break/...).
	cur *Block
	// breakTo / continueTo map loop and switch nesting to their targets;
	// the innermost target is the last element.
	breakTo    []*Block
	continueTo []*Block
	// labels resolves labeled break/continue/goto.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	labelGoto     map[string]*Block
	// pendingGotos are forward gotos waiting for their label block.
	pendingGotos map[string][]*Block
}

// Build constructs the graph of one function body. It never fails on
// well-typed input; the graph of an empty body is entry -> exit.
func Build(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{
		g:             g,
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelGoto:     map[string]*Block{},
		pendingGotos:  map[string][]*Block{},
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit)
	// Unresolved forward gotos (label never defined — ill-formed code)
	// fall through to exit so the graph stays connected.
	for _, blocks := range b.pendingGotos {
		for _, blk := range blocks {
			b.edge(blk, g.Exit, nil, false)
		}
	}
	return g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block, cond ast.Expr, taken bool) {
	e := &Edge{From: from, To: to, Cond: cond, Taken: taken}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jump ends the current block with an unconditional edge to target and
// marks the path closed.
func (b *builder) jump(target *Block) {
	if b.cur != nil {
		b.edge(b.cur, target, nil, false)
	}
	b.cur = nil
}

// open continues construction at target (starting it as the new current
// block).
func (b *builder) open(target *Block) { b.cur = target }

func (b *builder) add(s ast.Stmt) {
	if b.cur == nil {
		// Unreachable statement: park it in a fresh orphan block so its
		// contents still appear in the graph for the analyses.
		b.cur = b.newBlock()
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		condBlock := b.cur
		if condBlock == nil {
			condBlock = b.newBlock()
			b.cur = condBlock
		}
		thenBlk := b.newBlock()
		afterBlk := b.newBlock()
		elseTarget := afterBlk
		var elseBlk *Block
		if s.Else != nil {
			elseBlk = b.newBlock()
			elseTarget = elseBlk
		}
		b.edge(condBlock, thenBlk, s.Cond, true)
		b.edge(condBlock, elseTarget, s.Cond, false)
		b.cur = nil
		b.open(thenBlk)
		b.stmtList(s.Body.List)
		b.jump(afterBlk)
		if elseBlk != nil {
			b.open(elseBlk)
			b.stmt(s.Else, "")
			b.jump(afterBlk)
		}
		b.open(afterBlk)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.jump(head)
		b.open(head)
		if s.Cond != nil {
			b.edge(head, body, s.Cond, true)
			b.edge(head, after, s.Cond, false)
		} else {
			b.edge(head, body, nil, false)
		}
		b.cur = nil
		b.pushLoop(after, post, label)
		b.open(body)
		b.stmtList(s.Body.List)
		b.jump(post)
		if s.Post != nil {
			b.open(post)
			b.add(s.Post)
			b.jump(head)
		}
		b.popLoop(label)
		b.open(after)

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.jump(head)
		// The range statement itself sits in the head block: it defines
		// the key/value variables once per iteration.
		head.Stmts = append(head.Stmts, s)
		b.edge(head, body, nil, false)
		b.edge(head, after, nil, false)
		b.pushLoop(after, head, label)
		b.open(body)
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop(label)
		b.open(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			// Evaluate the tag in the dispatch block (as a statement, so
			// defs inside it are seen).
			b.add(&ast.ExprStmt{X: s.Tag})
		}
		b.caseDispatch(s.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseDispatch(s.Body.List, label, nil)

	case *ast.SelectStmt:
		b.caseDispatch(s.Body.List, label, nil)

	case *ast.LabeledStmt:
		name := s.Label.Name
		// A label starts a fresh block so goto/continue can target it.
		target := b.newBlock()
		b.jump(target)
		b.open(target)
		b.labelGoto[name] = target
		for _, from := range b.pendingGotos[name] {
			b.edge(from, target, nil, false)
		}
		delete(b.pendingGotos, name)
		b.stmt(s.Stmt, name)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labelBreak[s.Label.Name]; t != nil {
					b.add(s)
					b.jump(t)
					return
				}
			} else if n := len(b.breakTo); n > 0 {
				b.add(s)
				b.jump(b.breakTo[n-1])
				return
			}
			b.add(s)
			b.jump(b.g.Exit)
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labelContinue[s.Label.Name]; t != nil {
					b.add(s)
					b.jump(t)
					return
				}
			} else if n := len(b.continueTo); n > 0 {
				b.add(s)
				b.jump(b.continueTo[n-1])
				return
			}
			b.add(s)
			b.jump(b.g.Exit)
		case token.GOTO:
			b.add(s)
			if s.Label != nil {
				if t := b.labelGoto[s.Label.Name]; t != nil {
					b.jump(t)
					return
				}
				from := b.cur
				b.cur = nil
				if from != nil {
					b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], from)
				}
				return
			}
			b.jump(b.g.Exit)
		case token.FALLTHROUGH:
			// Handled structurally by caseDispatch; as a statement it
			// just ends the clause.
			b.add(s)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.ExprStmt:
		b.add(s)
		// A panic call never falls through: treat it like a return so a
		// guard of the form `if bad { panic(...) }` leaves the refined
		// fall-through state intact. Detection is syntactic (an ident
		// named panic); shadowing the builtin defeats it, which is the
		// same trade every syntax-level tool makes.
		if isPanicCall(s.X) {
			b.jump(b.g.Exit)
		}

	default:
		// Assignments, declarations, sends, inc/dec, defer, go, empty:
		// straight-line.
		b.add(s)
	}
}

// isPanicCall reports whether e is a direct call of the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fun := call.Fun
	for {
		p, ok := fun.(*ast.ParenExpr)
		if !ok {
			break
		}
		fun = p.X
	}
	id, ok := fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// caseDispatch wires a switch/type-switch/select body: every clause gets
// its own block reachable from the dispatch point, plus an edge to the
// after block when no default clause exists.
func (b *builder) caseDispatch(clauses []ast.Stmt, label string, _ ast.Expr) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	after := b.newBlock()
	b.pushSwitch(after, label)
	hasDefault := false
	type clauseBlock struct {
		body  []ast.Stmt
		block *Block
	}
	var blocks []clauseBlock
	for _, c := range clauses {
		blk := b.newBlock()
		b.edge(dispatch, blk, nil, false)
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				// Case expressions are evaluated at dispatch; record them
				// in the clause block so defs inside are visible.
				blk.Stmts = append(blk.Stmts, &ast.ExprStmt{X: e})
			}
			blocks = append(blocks, clauseBlock{c.Body, blk})
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			} else {
				blk.Stmts = append(blk.Stmts, c.Comm)
			}
			blocks = append(blocks, clauseBlock{c.Body, blk})
		}
	}
	if !hasDefault {
		b.edge(dispatch, after, nil, false)
	}
	b.cur = nil
	for i, cb := range blocks {
		b.open(cb.block)
		b.stmtList(cb.body)
		// A trailing fallthrough continues into the next clause body.
		if n := len(cb.body); n > 0 {
			if br, ok := cb.body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
				b.jump(blocks[i+1].block)
				continue
			}
		}
		b.jump(after)
	}
	b.popSwitch(label)
	b.open(after)
}

func (b *builder) pushLoop(brk, cont *Block, label string) {
	b.breakTo = append(b.breakTo, brk)
	b.continueTo = append(b.continueTo, cont)
	if label != "" {
		b.labelBreak[label] = brk
		b.labelContinue[label] = cont
	}
}

func (b *builder) popLoop(label string) {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelContinue, label)
	}
}

func (b *builder) pushSwitch(brk *Block, label string) {
	b.breakTo = append(b.breakTo, brk)
	if label != "" {
		b.labelBreak[label] = brk
	}
}

func (b *builder) popSwitch(label string) {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	if label != "" {
		delete(b.labelBreak, label)
	}
}

// String renders the graph for tests and debugging.
func (g *Graph) String() string {
	s := ""
	for _, blk := range g.Blocks {
		s += fmt.Sprintf("b%d:", blk.Index)
		for _, e := range blk.Succs {
			if e.Cond != nil {
				s += fmt.Sprintf(" ->b%d(cond=%v)", e.To.Index, e.Taken)
			} else {
				s += fmt.Sprintf(" ->b%d", e.To.Index)
			}
		}
		s += "\n"
	}
	return s
}
