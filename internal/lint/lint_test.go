package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"strings"
	"testing"

	"bfvlsi/internal/lint"
	"bfvlsi/internal/lint/load"
)

// The acceptance bar for the suite itself: bflint must run clean over
// the whole repository. Any diagnostic here is either a real contract
// violation that needs fixing or an analyzer false positive that needs
// narrowing — both are failures of this PR, not of the code under test.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check skipped in -short mode")
	}
	pkgs, err := load.New().Load("bfvlsi/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the full module", len(pkgs))
	}
	checked := 0
	var report strings.Builder
	for _, p := range pkgs {
		if len(lint.AnalyzersFor(p.Path)) == 0 {
			continue
		}
		checked++
		diags, err := lint.Run(p.Path, p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			fmt.Fprintf(&report, "%s: %s (%s)\n", p.Fset.Position(d.Pos), d.Message, d.Category)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d packages had analyzers bound; binding table looks broken", checked)
	}
	if report.Len() > 0 {
		t.Errorf("bflint is not clean on the repository:\n%s", report.String())
	}
}

// The escape hatch must actually work: a //bflint:ignore comment on
// the offending line suppresses exactly the named analyzer, an ignore
// with no names suppresses everything on its line, and an unrelated
// name suppresses nothing. The file is type-checked under a simulator
// import path so detrand really binds.
func TestIgnoreComments(t *testing.T) {
	const src = `package experiments

import "math/rand"

func draws() int {
	a := rand.Intn(3) //bflint:ignore detrand
	b := rand.Intn(3) //bflint:ignore
	c := rand.Intn(3) //bflint:ignore maporder
	d := rand.Intn(3)
	return a + b + c + d
}
`
	l := load.New()
	f, err := parser.ParseFile(l.Fset, "ignorefix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("bfvlsi/internal/experiments", "", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		if d.Category != "detrand" {
			t.Errorf("unexpected %s diagnostic: %s", d.Category, d.Message)
			continue
		}
		lines = append(lines, pkg.Fset.Position(d.Pos).Line)
	}
	// Lines 8 (ignore names a different analyzer) and 9 (no ignore)
	// must be flagged; lines 6 and 7 must be suppressed.
	want := []int{8, 9}
	if fmt.Sprint(lines) != fmt.Sprint(want) {
		t.Errorf("flagged lines = %v, want %v", lines, want)
	}
}

// The same escape hatch must work for the dataflow-backed analyzers:
// overflowcalc, hotalloc, and sweepshare each honour a same-line
// //bflint:ignore naming them and stay active on unmarked lines. The
// file type-checks under a layout-package path so overflowcalc binds.
func TestIgnoreCommentsDataflowAnalyzers(t *testing.T) {
	const src = `package collinear

import "sync"

func shifts(n int) (int, int, int) {
	a := 1 << uint(n) //bflint:ignore overflowcalc
	b := 1 << uint(n) //bflint:ignore
	c := 1 << uint(n)
	return a, b, c
}

func hot(cycles int) int {
	total := 0
	//bflint:hotpath
	for i := 0; i < cycles; i++ {
		x := make([]int, 4) //bflint:ignore hotalloc
		y := make([]int, 4)
		total += x[0] + y[0]
	}
	return total
}

func sweep(n int) int {
	var wg sync.WaitGroup
	hits := 0
	misses := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hits++ //bflint:ignore sweepshare
			misses++
		}()
	}
	wg.Wait()
	return hits + misses
}
`
	l := load.New()
	f, err := parser.ParseFile(l.Fset, "dataflowfix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("bfvlsi/internal/collinear", "", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]int{}
	for _, d := range diags {
		got[d.Category] = append(got[d.Category], pkg.Fset.Position(d.Pos).Line)
	}
	want := map[string][]int{
		"overflowcalc": {8},  // a: named ignore, b: blanket ignore, c: flagged
		"hotalloc":     {17}, // x ignored, y flagged
		"sweepshare":   {32}, // hits ignored, misses flagged
	}
	for cat, lines := range want {
		if fmt.Sprint(got[cat]) != fmt.Sprint(lines) {
			t.Errorf("%s flagged lines = %v, want %v", cat, got[cat], lines)
		}
		delete(got, cat)
	}
	for cat, lines := range got {
		t.Errorf("unexpected %s diagnostics on lines %v", cat, lines)
	}
}

// One suppression comment must silence all findings on its line across
// analyzers — here a single bare //bflint:ignore swallows both the
// goleak finding (at the go statement) and the detrand finding (at the
// time.Now call) — and two ignore comments sharing a line must union
// their names rather than the later overwriting the earlier.
func TestIgnoreCrossAnalyzer(t *testing.T) {
	const src = `package serve

import "time"

func fire() {
	go func() { _ = time.Now() }() //bflint:ignore
	go func() { _ = time.Now() }() /*bflint:ignore detrand*/ //bflint:ignore goleak
	go func() { _ = time.Now() }()
}
`
	l := load.New()
	f, err := parser.ParseFile(l.Fset, "crossfix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.CheckFiles("bfvlsi/internal/serve", "", []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	byLine := map[int][]string{}
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		byLine[line] = append(byLine[line], d.Category)
	}
	if len(byLine[6]) != 0 {
		t.Errorf("line 6 (bare ignore) still flagged by %v", byLine[6])
	}
	if len(byLine[7]) != 0 {
		t.Errorf("line 7 (two named ignores) still flagged by %v; ignore comments must union", byLine[7])
	}
	want := map[string]bool{"detrand": true, "goleak": true}
	for _, cat := range byLine[8] {
		delete(want, cat)
	}
	if len(want) != 0 {
		t.Errorf("line 8 (no ignore) missing expected findings: %v (got %v)", want, byLine[8])
	}
}

// Every analyzer must bind somewhere, or it is dead weight that the
// repo-clean test silently never exercises.
func TestEveryAnalyzerBindsSomewhere(t *testing.T) {
	bound := map[string]bool{}
	for _, path := range []string{
		"bfvlsi",
		"bfvlsi/internal/routing",
		"bfvlsi/internal/faults",
		"bfvlsi/internal/reliable",
		"bfvlsi/internal/adaptive",
		"bfvlsi/internal/wire",
		"bfvlsi/internal/snapshot",
		"bfvlsi/internal/experiments",
		"bfvlsi/internal/thompson",
		"bfvlsi/internal/dispatch",
		"bfvlsi/cmd/bffault",
		"bfvlsi/examples/chipdesign",
	} {
		for _, a := range lint.AnalyzersFor(path) {
			bound[a.Name] = true
		}
	}
	for _, a := range lint.Suite() {
		if !bound[a.Name] {
			t.Errorf("analyzer %s never binds to any package", a.Name)
		}
	}
}
