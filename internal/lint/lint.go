// Package lint wires the bflint analyzers to the repo's package layout:
// which analyzer binds to which package, how diagnostics are filtered
// by //bflint:ignore comments, and the shared run loop used by both the
// standalone cmd/bflint driver and its `go vet -vettool` mode.
//
// The suite enforces three repo-wide contracts that previously existed
// only by convention:
//
//   - determinism: simulators are functions of (params, seed) alone
//     (detrand forbids wall-clock and global-rand escapes; maporder
//     forbids order-sensitive work under Go's randomized map order);
//   - conservation: every packet lands in exactly one accounting bucket
//     (conscount restricts counter writes to the owning package);
//   - facade: blessed internal packages stay fully re-exported through
//     the root bfvlsi package (facadecheck);
//
// plus the CLI error-path audit (errflush) for flush/close paths, and —
// on top of the internal/lint/cfg + internal/lint/dataflow engine — the
// v2 contracts:
//
//   - hot-path allocation freedom: loops marked //bflint:hotpath (the
//     two simulator cycle loops) must not allocate per iteration
//     (hotalloc);
//   - overflow-safe layout arithmetic: shifts and parameter-derived
//     products in the layout packages must be interval-bounded below
//     int overflow or use bitutil.CheckedShl/CheckedMul (overflowcalc);
//   - sweep ownership: goroutine fan-outs write only goroutine-owned
//     state (sweepshare, interprocedural since v3);
//
// and — on the internal/lint/callgraph call-graph/summary engine — the
// v3 concurrency contracts:
//
//   - guarded fields: //bflint:guardedby annotations hold on every CFG
//     path, through unexported helpers (lockcheck);
//   - atomic discipline: a variable touched via sync/atomic is never
//     read or written plainly (atomicmix);
//   - goroutine accountability: every `go` statement has a reachable
//     join or cancel signal (goleak);
//
// and — sharing that engine through internal/lint/schema — the v4
// serialization contracts:
//
//   - wire coverage: every field of a MarshalBinary/UnmarshalBinary
//     type is read in Marshal's call reach and written in Unmarshal's,
//     in the same order on both sides (wirecover);
//   - checkpoint coverage: simulator state structs captured by
//     internal/snapshot have every field written in the capture path
//     and read in the restore path (statecover);
//   - schema locking: a type's field schema fingerprint plus version
//     byte must match the committed internal/wire/schema.lock; field
//     changes without a version bump or a `bflint -writeschema`
//     regeneration fail the lint (schemalock).
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/atomicmix"
	"bfvlsi/internal/lint/conscount"
	"bfvlsi/internal/lint/detrand"
	"bfvlsi/internal/lint/errflush"
	"bfvlsi/internal/lint/facadecheck"
	"bfvlsi/internal/lint/goleak"
	"bfvlsi/internal/lint/hotalloc"
	"bfvlsi/internal/lint/lockcheck"
	"bfvlsi/internal/lint/maporder"
	"bfvlsi/internal/lint/overflowcalc"
	"bfvlsi/internal/lint/schemalock"
	"bfvlsi/internal/lint/statecover"
	"bfvlsi/internal/lint/sweepshare"
	"bfvlsi/internal/lint/wirecover"
)

// modulePath is the import-path root of this repository.
const modulePath = "bfvlsi"

// simulatorPackages are the packages bound by the determinism
// contract: their behaviour must be a pure function of (params, seed).
var simulatorPackages = map[string]bool{
	modulePath + "/internal/routing":     true,
	modulePath + "/internal/faults":      true,
	modulePath + "/internal/reliable":    true,
	modulePath + "/internal/adaptive":    true,
	modulePath + "/internal/experiments": true,
}

// servicePackages are the long-running daemon packages bound by the
// determinism contract for a different reason than simulators: a
// content-addressed cache is only sound if responses are pure functions
// of the spec, so wall-clock reads must stay behind the injected clock
// (the single time.Now call in cmd/bfserve carries an explicit ignore).
var servicePackages = map[string]bool{
	modulePath + "/internal/serve":          true,
	modulePath + "/cmd/bfserve":             true,
	modulePath + "/internal/dispatch":       true,
	modulePath + "/internal/dispatch/chaos": true,
	modulePath + "/cmd/bffarm":              true,
}

// checkpointPackages extend the determinism contract to the
// snapshot/resume layer: a checkpoint restore is only byte-identical to
// the uninterrupted run if capture and restore are pure functions of
// the serialized state, and the sweep farm's journal replay inherits
// the same obligation point by point.
var checkpointPackages = map[string]bool{
	modulePath + "/internal/snapshot":  true,
	modulePath + "/internal/sweepfarm": true,
	modulePath + "/cmd/bfsweep":        true,
}

// layoutPackages are the closed-form arithmetic packages bound by the
// overflow contract: their formulas (⌊N²/4⌋ tracks, area N²/log₂²N, 2ⁿ
// rows) overflow int for unguarded inputs.
var layoutPackages = map[string]bool{
	modulePath + "/internal/collinear": true,
	modulePath + "/internal/thompson":  true,
	modulePath + "/internal/stack3d":   true,
	modulePath + "/internal/hierarchy": true,
	modulePath + "/internal/packaging": true,
}

// Suite returns every analyzer bflint ships, for drivers and help
// listings.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		maporder.Analyzer,
		conscount.Analyzer,
		facadecheck.Analyzer,
		errflush.Analyzer,
		hotalloc.Analyzer,
		overflowcalc.Analyzer,
		sweepshare.Analyzer,
		lockcheck.Analyzer,
		atomicmix.Analyzer,
		goleak.Analyzer,
		wirecover.Analyzer,
		statecover.Analyzer,
		schemalock.Analyzer,
	}
}

// wirePackages are the packages whose binary marshalers carry the wire
// round-trip and schema-lock contracts: the wire format itself and the
// checkpoint frames layered on it.
var wirePackages = map[string]bool{
	modulePath + "/internal/wire":     true,
	modulePath + "/internal/snapshot": true,
}

// WirePackagePaths returns the packages whose binary marshalers the
// schema manifest covers, sorted; `bflint -writeschema` loads exactly
// these, so the manifest and the schemalock binding cannot drift.
func WirePackagePaths() []string {
	paths := make([]string, 0, len(wirePackages))
	for p := range wirePackages {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// statePackages are the packages whose State/Restore pairs feed
// internal/snapshot checkpoints: new simulator state must round-trip
// through capture and restore.
var statePackages = map[string]bool{
	modulePath + "/internal/routing":  true,
	modulePath + "/internal/reliable": true,
	modulePath + "/internal/adaptive": true,
	modulePath + "/internal/snapshot": true,
}

// AnalyzersFor returns the suite subset that binds to the package with
// the given import path.
func AnalyzersFor(pkgPath string) []*analysis.Analyzer {
	inModule := pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/")
	if !inModule {
		return nil
	}
	var out []*analysis.Analyzer
	if simulatorPackages[pkgPath] || servicePackages[pkgPath] || checkpointPackages[pkgPath] {
		out = append(out, detrand.Analyzer)
	}
	// The map-order, conservation, hot-path, sweep-ownership, and v3
	// concurrency contracts bind everywhere in the module: a golden
	// trace is only as deterministic as its least deterministic caller,
	// any package may mark a //bflint:hotpath loop or annotate a
	// //bflint:guardedby field, and goroutines race no matter which
	// package launches them.
	out = append(out, maporder.Analyzer, conscount.Analyzer,
		hotalloc.Analyzer, sweepshare.Analyzer,
		lockcheck.Analyzer, atomicmix.Analyzer, goleak.Analyzer)
	if layoutPackages[pkgPath] {
		out = append(out, overflowcalc.Analyzer)
	}
	if wirePackages[pkgPath] {
		out = append(out, wirecover.Analyzer, schemalock.Analyzer)
	}
	if statePackages[pkgPath] {
		out = append(out, statecover.Analyzer)
	}
	if pkgPath == modulePath {
		out = append(out, facadecheck.Analyzer)
	}
	if strings.HasPrefix(pkgPath, modulePath+"/cmd/") ||
		strings.HasPrefix(pkgPath, modulePath+"/examples/") ||
		strings.HasPrefix(pkgPath, modulePath+"/internal/experiments") ||
		pkgPath == modulePath+"/internal/serve" ||
		pkgPath == modulePath+"/internal/sweepfarm" ||
		pkgPath == modulePath+"/internal/dispatch" {
		out = append(out, errflush.Analyzer)
	}
	return out
}

// Run applies every analyzer bound to pkgPath to one type-checked
// package and returns the surviving diagnostics, ignore-filtered and
// sorted by position.
func Run(pkgPath string, fset *token.FileSet, files []*ast.File, tpkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range AnalyzersFor(pkgPath) {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       tpkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			d.Category = name
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = filterIgnored(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// filterIgnored drops diagnostics whose source line carries a
// `//bflint:ignore` comment naming the analyzer (or naming none, which
// suppresses all analyzers on that line).
func filterIgnored(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) []analysis.Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	// ignores[file][line] is the set of suppressed analyzer names;
	// an empty set suppresses everything.
	ignores := map[string]map[int]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if strings.HasPrefix(text, "//") {
					text = text[2:]
				} else {
					text = strings.TrimSuffix(strings.TrimPrefix(text, "/*"), "*/")
				}
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "bflint:ignore") {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := ignores[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					ignores[pos.Filename] = byLine
				}
				names := map[string]bool{}
				for _, n := range strings.FieldsFunc(strings.TrimPrefix(text, "bflint:ignore"), func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					names[n] = true
				}
				// Multiple ignore comments on one line union their names;
				// a bare ignore (empty set = suppress all) absorbs any
				// named one. Overwriting here would make one comment
				// silently cancel another.
				if existing, seen := byLine[pos.Line]; seen {
					if len(existing) == 0 || len(names) == 0 {
						byLine[pos.Line] = map[string]bool{}
					} else {
						for n := range names {
							existing[n] = true
						}
					}
				} else {
					byLine[pos.Line] = names
				}
			}
		}
	}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if names, ok := ignores[pos.Filename][pos.Line]; ok {
			if len(names) == 0 || names[d.Category] {
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept
}
