// Package statecover defines an Analyzer enforcing checkpoint field
// coverage on the simulator state structs: a package whose state is
// captured by internal/snapshot exposes a State() *S capture method
// and a Restore*-style entry point taking *S, and every field of S
// (and of every package-local struct nested in S that the path touches
// per-field) must be written somewhere in the capture path and read
// somewhere in the restore path. New simulator state therefore cannot
// silently escape checkpoints: forgetting either half is a lint error.
package statecover

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/callgraph"
	"bfvlsi/internal/lint/schema"
)

var Analyzer = &analysis.Analyzer{
	Name: "statecover",
	Doc: "check that snapshot state structs have every field written in the " +
		"capture path (a State() method returning *S) and read in the restore " +
		"path (a restore-prefixed function taking S), traced interprocedurally " +
		"through package-local helpers",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	var captures, restores []root
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			if named := captureTarget(pass, fd); named != nil {
				captures = append(captures, root{fd, named})
			}
			if named := restoreTarget(pass, fd); named != nil {
				restores = append(restores, root{fd, named})
			}
		}
	}
	if len(captures) == 0 && len(restores) == 0 {
		return nil, nil
	}
	g := callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, r := range captures {
		check(pass, g, r, true)
	}
	for _, r := range restores {
		check(pass, g, r, false)
	}
	return nil, nil
}

type root struct {
	fn    *ast.FuncDecl
	state *types.Named
}

// captureTarget recognizes a capture root: a method or function named
// State whose single result is *S for a package-local struct S.
func captureTarget(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Name.Name != "State" {
		return nil
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return nil
	}
	return localStruct(pass.Pkg, sig.Results().At(0).Type())
}

// restoreTarget recognizes a restore root: a function whose name
// starts with "restore" (any case) and whose last struct-typed
// parameter is a package-local struct S — that parameter is the state
// being restored.
func restoreTarget(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	if !strings.HasPrefix(strings.ToLower(fd.Name.Name), "restore") {
		return nil
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	for i := sig.Params().Len() - 1; i >= 0; i-- {
		if named := localStruct(pass.Pkg, sig.Params().At(i).Type()); named != nil {
			return named
		}
	}
	return nil
}

// localStruct unwraps a pointer and returns the named type when it is
// a struct declared in pkg.
func localStruct(pkg *types.Package, t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pkg {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// check enforces coverage over the state struct closure for one root:
// writes for a capture root, reads for a restore root. As in
// wirecover, nested structs the path only ever copies whole-value
// carry no per-field obligation.
func check(pass *analysis.Pass, g *callgraph.Graph, r root, capture bool) {
	closure := schema.Closure(pass.Pkg, r.state)
	relevant := map[*types.TypeName]bool{}
	for _, n := range closure {
		relevant[n.Obj()] = true
	}
	set := schema.Collect(g, pass.TypesInfo, r.fn, relevant)
	for _, n := range closure {
		tn := n.Obj()
		st := n.Underlying().(*types.Struct)
		var have map[string]bool
		if capture {
			have = set.Writes[tn]
		} else {
			have = set.Reads[tn]
		}
		if tn != r.state.Obj() && len(have) == 0 {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if have[f.Name()] {
				continue
			}
			if capture {
				pass.Reportf(fieldPos(pass, f, r.fn.Name.Pos()),
					"field %s.%s is never written in the capture path %s: checkpoints silently drop it",
					tn.Name(), f.Name(), r.fn.Name.Name)
			} else {
				pass.Reportf(fieldPos(pass, f, r.fn.Name.Pos()),
					"field %s.%s is never read in the restore path %s: restored runs silently ignore it",
					tn.Name(), f.Name(), r.fn.Name.Name)
			}
		}
	}
}

func fieldPos(pass *analysis.Pass, f *types.Var, fallback token.Pos) token.Pos {
	if pass.Fset.File(f.Pos()) != nil {
		return f.Pos()
	}
	return fallback
}
