// Package sc is the statecover fixture: capture (State) and restore
// (Restore*) roots over state structs, with dropped fields on both
// paths and a whole-value copy that exempts its struct from per-field
// obligations.
package sc

// Mach is the live object whose learned state round-trips.
type Mach struct {
	a, b  int
	inner Inner
	whole Copied
	v     int
}

// CapState is captured by Mach.State.
type CapState struct {
	A     int
	B     int // want "field CapState.B is never written in the capture path State"
	In    Inner
	Whole Copied
}

// Inner is written per-field by the capture, so full coverage binds.
type Inner struct {
	X int
	Y int // want "field Inner.Y is never written in the capture path State"
}

// Copied is only ever copied whole-value: no per-field obligation.
type Copied struct {
	P int
	Q int
}

func (m *Mach) State() *CapState {
	st := &CapState{A: m.a, Whole: m.whole}
	st.In.X = m.inner.X
	return st
}

// ResState is consumed by RestoreMach.
type ResState struct {
	A  int
	B  int // want "field ResState.B is never read in the restore path RestoreMach"
	In RInner
}

// RInner is read per-field by the restore, so full coverage binds.
type RInner struct {
	X int
	Y int // want "field RInner.Y is never read in the restore path RestoreMach"
}

// Config is a struct parameter before the state: the root is the LAST
// struct parameter, so Config carries no obligations.
type Config struct {
	Z int
}

func RestoreMach(cfg Config, st *ResState) *Mach {
	m := &Mach{a: st.A}
	m.inner.X = st.In.X
	return m
}

// Tiny round-trips cleanly through a helper on the restore side.
type Tiny struct{ v int }

// TinyState is fully covered on both paths.
type TinyState struct {
	V int
}

func (t *Tiny) State() *TinyState { return &TinyState{V: t.v} }

func RestoreTiny(st *TinyState) (*Tiny, error) {
	if err := checkTiny(st); err != nil {
		return nil, err
	}
	return &Tiny{v: st.V}, nil
}

// checkTiny is the interprocedural read: coverage traced through the
// package-local helper, not just the root body.
func checkTiny(st *TinyState) error {
	_ = st.V
	return nil
}
