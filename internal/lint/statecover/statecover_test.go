package statecover_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/statecover"
)

func TestStatecover(t *testing.T) {
	analysistest.Run(t, "testdata", statecover.Analyzer, "sc")
}
