// Package load turns Go package patterns into parsed, type-checked
// packages for the bflint analyzers — a small stand-in for
// golang.org/x/tools/go/packages built from the standard library only.
// Package enumeration shells out to `go list` (the only authority on
// pattern expansion and build-tag file selection); type information
// comes from go/types with the source importer, so the loader needs no
// compiled export data and works offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader type-checks packages against one shared FileSet and source
// importer, so repeated loads share the transitively checked imports.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// New returns a loader backed by the source importer. The importer
// resolves module-local import paths through the go command, so callers
// must run with a working directory inside the module.
func New() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Standard   bool
}

// Load expands the patterns with `go list` and type-checks each
// matched package from source (non-test files only).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Standard"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.Check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses the named files and type-checks them as one package
// under the given import path.
func (l *Loader) Check(path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.CheckFiles(path, dir, files)
}

// CheckFiles type-checks already-parsed files as one package. The
// importer may be overridden with SetImporter (the analysistest harness
// layers fixture resolution over the source importer this way).
func (l *Loader) CheckFiles(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// SetImporter replaces the loader's importer (used by the test harness
// to resolve fixture-local imports before falling back to source).
func (l *Loader) SetImporter(imp types.Importer) { l.imp = imp }

// Importer exposes the loader's current importer so wrappers can
// delegate to it.
func (l *Loader) Importer() types.Importer { return l.imp }
