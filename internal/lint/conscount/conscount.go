// Package conscount implements the bflint analyzer that guards the
// copy-exact conservation identity: every injected packet lands in
// exactly one of the accounting buckets (Delivered, Dropped, GaveUp,
// Unreachable and its Dead/Cut/Detected partition, ...). The identity
// is only auditable because each bucket is mutated solely by the
// accounting code of the package that owns the struct; a write from a
// new call site in another package could double-count or skip a packet
// without any test noticing until a sweep audit trips. This analyzer
// makes that ownership mechanical: assignments, increments, and
// address-taking of conservation counter fields are flagged outside the
// declaring package.
package conscount

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/analysis"
)

// Analyzer restricts mutation of conservation-identity counters to the
// package that declares them.
var Analyzer = &analysis.Analyzer{
	Name: "conscount",
	Doc: "restrict writes to conservation-identity counter fields (Dropped, GaveUp, " +
		"Unreachable*, Detours, ...) to the package that declares the struct",
	Run: run,
}

// CounterFields names the struct fields that participate in a
// conservation identity somewhere in the repo. A field with one of
// these names may only be written by its declaring package.
var CounterFields = map[string]bool{
	"Injected":            true,
	"TotalInjected":       true,
	"Delivered":           true,
	"Dropped":             true,
	"InjectionDrops":      true,
	"GaveUp":              true,
	"Duplicates":          true,
	"DuplicatesDropped":   true,
	"Unreachable":         true,
	"UnreachableDead":     true,
	"UnreachableCut":      true,
	"UnreachableDetected": true,
	"Detours":             true,
	"Reroutes":            true,
	"Misroutes":           true,
	"Retransmitted":       true,
	"Backlog":             true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs, n.Pos(), "written")
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X, n.Pos(), "written")
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					checkWrite(pass, n.X, n.Pos(), "aliased (address taken)")
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkWrite flags expr when it selects a conservation counter field
// declared by another package.
func checkWrite(pass *analysis.Pass, expr ast.Expr, pos token.Pos, verb string) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || !CounterFields[sel.Sel.Name] {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field := selection.Obj()
	if field.Pkg() == nil || field.Pkg() == pass.Pkg {
		return
	}
	if pass.InTestFile(pos) {
		return
	}
	pass.Reportf(pos,
		"conservation counter %s.%s %s outside its owning package %s; only the owner's accounting code may mutate identity buckets",
		types.TypeString(selection.Recv(), types.RelativeTo(pass.Pkg)), field.Name(), verb, field.Pkg().Path())
}
