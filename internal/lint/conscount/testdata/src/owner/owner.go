// Package owner is the conscount fixture's accounting package: it
// declares the conservation counters and is the only package allowed to
// mutate them.
package owner

// Result carries the conservation-identity buckets.
type Result struct {
	Injected  int
	Delivered int
	Dropped   int
	GaveUp    int

	UnreachableDead int
	Detours         int

	// Name is not a counter; anyone may set it.
	Name string
}

// Account is the owner's accounting code: in-package mutation is the
// sanctioned path and must stay clean.
func Account(r *Result) {
	r.Injected++
	r.Dropped += 2
	r.GaveUp = 1
	r.UnreachableDead++
	r.Detours++
	p := &r.Delivered
	*p = 5
}
