// Package intruder is the conscount fixture's out-of-package mutator:
// every write or alias of an owner counter from here must be flagged.
package intruder

import "owner"

// Tamper bypasses the owner's accounting from a foreign call site.
func Tamper(r *owner.Result) {
	r.Dropped++         // want `conservation counter .*\.Dropped written outside its owning package owner`
	r.GaveUp += 3       // want `conservation counter .*\.GaveUp written outside its owning package owner`
	r.Delivered = 7     // want `conservation counter .*\.Delivered written outside its owning package owner`
	r.UnreachableDead-- // want `conservation counter .*\.UnreachableDead written outside its owning package owner`
	p := &r.Detours     // want `conservation counter .*\.Detours aliased \(address taken\) outside its owning package owner`
	*p = 9
}

// Observe only reads and sets non-counter fields; reading buckets and
// naming results is always allowed.
func Observe(r *owner.Result) int {
	r.Name = "run-1"
	return r.Injected + r.Dropped + r.GaveUp
}
