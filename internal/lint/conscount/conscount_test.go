package conscount_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/conscount"
)

func TestConscount(t *testing.T) {
	// The owner package's own accounting must stay clean; the intruder
	// package's cross-package writes must all be flagged.
	analysistest.Run(t, "testdata", conscount.Analyzer, "owner", "intruder")
}
