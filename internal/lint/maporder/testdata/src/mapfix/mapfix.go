// Package mapfix is the maporder fixture: order-sensitive work inside
// range-over-map loops, next to the sanctioned collect-then-sort
// patterns that must stay clean.
package mapfix

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Bad: printing in map order emits different bytes every run.
func badEmit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf emits output inside iteration over a map`
	}
}

// Bad: stdout printing is just as order-sensitive.
func badPrint(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println emits output inside iteration over a map`
	}
}

// Bad: builder writes record the randomized order.
func badBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString emits output inside iteration over a map`
	}
	return b.String()
}

// Bad: the slice keeps map order and is never sorted.
func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside iteration over a map with no subsequent sort`
	}
	return keys
}

// Bad: float accumulation rounds differently in different orders.
func badFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside iteration over a map`
	}
	return sum
}

// Bad: string concatenation keeps the randomized byte order.
func badConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `string concatenation into s inside iteration over a map`
	}
	return s
}

// Bad: handing out sequence numbers in map order assigns different ids
// every run.
func badSeqHandout(m map[string]int) map[string]int {
	ids := make(map[string]int, len(m))
	next := 0
	for k := range m {
		ids[k] = next
		next++ // want `next hands out per-iteration values inside iteration over a map`
	}
	return ids
}

// Good: collect keys, sort, then emit in deterministic order.
func goodCollectSort(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// Good: an integer tally commutes, so map order cannot show.
func goodIntTally(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Good: integer sums commute too.
func goodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Good: writing into another map is order-insensitive.
func goodMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Good: ranging a slice may emit freely.
func goodSliceEmit(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
