// Package maporder implements the bflint analyzer that hunts the
// classic silent killer of golden-trace tests: iterating a Go map in
// its randomized order while doing something order-sensitive with each
// element. Emitting output, appending to a slice that is never sorted,
// accumulating floats or strings, and handing out sequence numbers are
// all order-sensitive; two runs of the same seeded simulation then
// produce different bytes and the determinism contract is gone.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"bfvlsi/internal/lint/analysis"
)

// Analyzer flags order-sensitive work inside iteration over a map.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag order-sensitive operations (output, unsorted accumulation, float/string " +
		"reduction, counter handout) inside range-over-map loops",
	Run: run,
}

// fmtPrinters are the fmt functions that emit in call order.
var fmtPrinters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

// writeMethods are method names that emit to a stream in call order.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Printf": true, "Print": true, "Println": true, "Logf": true, "Log": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		var funcStack []*ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcStack = append(funcStack, n.Body)
					ast.Inspect(n.Body, walk)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				ast.Inspect(n.Body, walk)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if isMapRange(pass, n) && !pass.InTestFile(n.Pos()) && len(funcStack) > 0 {
					checkMapRange(pass, n, funcStack[len(funcStack)-1])
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil, nil
}

func isMapRange(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range body for order-sensitive sinks.
// fnBody is the innermost enclosing function body, searched for a
// post-loop sort that launders appended slices back to determinism.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, fnBody *ast.BlockStmt) {
	// appends[obj] is the first append position for a loop-external
	// slice; flagged unless a later sort touches obj.
	appends := map[types.Object]token.Pos{}
	// counters[obj] marks loop-external int vars incremented in the
	// body; reads[obj] counts uses beyond the increment itself.
	counters := map[types.Object]token.Pos{}
	reads := map[types.Object]int{}

	outer := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := emitterCall(pass, n); ok {
				pass.Reportf(n.Pos(),
					"%s emits output inside iteration over a map; map order is randomized per run — iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, n, outer, appends)
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				obj := pass.TypesInfo.ObjectOf(id)
				if outer(obj) && isInteger(obj) {
					counters[obj] = n.Pos()
					reads[obj]-- // the operand itself is not a read
				}
			}
		}
		return true
	})

	// Count reads of candidate counters to separate pure tallies
	// (order-insensitive) from sequence-number handouts.
	if len(counters) > 0 {
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					if _, tracked := counters[obj]; tracked {
						reads[obj]++
					}
				}
			}
			return true
		})
		for obj, pos := range counters {
			if reads[obj] > 0 {
				pass.Reportf(pos,
					"%s hands out per-iteration values inside iteration over a map; the assignment order is randomized per run — iterate sorted keys instead", obj.Name())
			}
		}
	}

	for obj, pos := range appends {
		if !sortedAfter(pass, fnBody, rs.End(), obj) {
			pass.Reportf(pos,
				"append to %s inside iteration over a map with no subsequent sort; the element order is randomized per run — sort %s afterwards or iterate sorted keys", obj.Name(), obj.Name())
		}
	}
}

// checkAssign records appends to loop-external slices and flags
// order-sensitive accumulation (+= on floats and strings).
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, outer func(types.Object) bool, appends map[types.Object]token.Pos) {
	if as.Tok == token.ASSIGN || as.Tok == token.DEFINE {
		if len(as.Lhs) == 1 && len(as.Rhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && isAppendCall(pass, as.Rhs[0]) {
				obj := pass.TypesInfo.ObjectOf(id)
				if outer(obj) {
					if _, seen := appends[obj]; !seen {
						appends[obj] = as.Pos()
					}
				}
			}
		}
		return
	}
	// Compound assignment: order matters for non-commutative element
	// types (float rounding, string concatenation).
	if len(as.Lhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if !outer(obj) {
		return
	}
	if basic, ok := obj.Type().Underlying().(*types.Basic); ok {
		switch {
		case basic.Info()&types.IsFloat != 0:
			pass.Reportf(as.Pos(),
				"floating-point accumulation into %s inside iteration over a map; rounding makes the sum order-dependent — iterate sorted keys instead", obj.Name())
		case basic.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN:
			pass.Reportf(as.Pos(),
				"string concatenation into %s inside iteration over a map; the byte order is randomized per run — iterate sorted keys instead", obj.Name())
		}
	}
}

// emitterCall reports whether the call writes to an output stream, and
// names it for the diagnostic.
func emitterCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtPrinters[fn.Name()] {
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	if writeMethods[fn.Name()] {
		return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name(), true
	}
	return "", false
}

func isAppendCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isInteger(obj types.Object) bool {
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// sortedAfter reports whether a sort.* or slices.* call mentioning obj
// appears in fnBody after pos — the sanctioned collect-then-sort
// pattern.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
