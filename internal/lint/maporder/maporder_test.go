package maporder_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "mapfix")
}
