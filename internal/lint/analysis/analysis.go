// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis core: an Analyzer is a named check
// that runs over one type-checked package (a Pass) and reports
// Diagnostics. The API mirrors x/tools deliberately so the bflint suite
// can migrate to the upstream framework wholesale if the dependency
// ever becomes available; until then the standard library's go/ast,
// go/types, and go/importer carry the whole load.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one static check. Name appears in diagnostics and in
// the driver's enable/disable machinery; Doc is the one-paragraph
// contract the check enforces.
type Analyzer struct {
	Name string
	Doc  string

	// Run executes the check on one package and reports findings via
	// pass.Report. The result value is unused by this driver but kept
	// for x/tools signature compatibility.
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass is one (analyzer, package) unit of work, carrying the parsed
// and type-checked package under analysis.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver installs it.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string // analyzer name; the driver fills it in
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. The suite's
// contracts bind simulator and command code, not the tests that probe
// them, so analyzers skip test files before reporting.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Validate rejects duplicate or unnamed analyzers before a driver runs
// them (mirrors x/tools analysis.Validate).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" {
			return fmt.Errorf("analyzer without a name")
		}
		if a.Run == nil {
			return fmt.Errorf("analyzer %s has no Run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
