package lint_test

import (
	"go/ast"
	"go/parser"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bfvlsi/internal/lint"
	"bfvlsi/internal/lint/load"
)

// schemaAnalyzers are the v4 serialization-contract analyzers this file
// gates on: wire/snapshot field coverage, checkpoint capture/restore
// coverage, and the schema.lock fingerprint pin.
var schemaAnalyzers = map[string]bool{
	"wirecover": true, "statecover": true, "schemalock": true,
}

// TestSchemaAnalyzersCleanOnRepo asserts the three schema analyzers
// report zero findings across the module: every wire field is encoded
// and decoded, every checkpoint field is captured and restored, and the
// committed schema.lock matches the code.
func TestSchemaAnalyzersCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check skipped in -short mode")
	}
	pkgs, err := load.New().Load("bfvlsi/...")
	if err != nil {
		t.Fatal(err)
	}
	var findings []string
	for _, p := range pkgs {
		if len(lint.AnalyzersFor(p.Path)) == 0 {
			continue
		}
		diags, err := lint.Run(p.Path, p.Fset, p.Files, p.Types, p.Info)
		if err != nil {
			t.Fatalf("%s: %v", p.Path, err)
		}
		for _, d := range diags {
			if schemaAnalyzers[d.Category] {
				findings = append(findings, p.Fset.Position(d.Pos).String()+": "+d.Message+" ("+d.Category+")")
			}
		}
	}
	if len(findings) > 0 {
		t.Errorf("schema analyzers are not clean on the repository:\n%s", strings.Join(findings, "\n"))
	}
}

// loadMutated parses every non-test file of the package under dir,
// applying old→new to the named file, and type-checks the result. File
// names keep their directory so schemalock resolves the same
// schema.lock the real package uses.
func loadMutated(t *testing.T, pkgPath, dir, mutateFile, old, new string) *load.Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	l := load.New()
	var files []*ast.File
	applied := false
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		if name == mutateFile {
			text = strings.Replace(text, old, new, 1)
			if text == string(src) {
				t.Fatalf("mutation did not apply; %s no longer contains:\n%s", mutateFile, old)
			}
			applied = true
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), text, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if !applied {
		t.Fatalf("mutation target %s not found in %s", mutateFile, dir)
	}
	pkg, err := l.CheckFiles(pkgPath, "", files)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// runMutated lints the mutated package and returns the diagnostics of
// one analyzer. Sibling analyzers may legitimately fire on the same
// mutation (adding a field trips wirecover as well as schemalock), so
// unexpected categories are not errors here.
func runMutated(t *testing.T, pkg *load.Package, category string) []string {
	t.Helper()
	diags, err := lint.Run(pkg.Path, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if d.Category == category {
			msgs = append(msgs, d.Message)
		}
	}
	return msgs
}

// TestWirecoverCatchesDroppedEncode deletes the FaultSpec.LinkRate
// encode line from the real wire package and asserts wirecover reports
// the field as never read on the marshal side.
func TestWirecoverCatchesDroppedEncode(t *testing.T) {
	if testing.Short() {
		t.Skip("package type-check skipped in -short mode")
	}
	pkg := loadMutated(t, "bfvlsi/internal/wire", "../wire", "fault.go",
		"\te.float64(s.LinkRate)\n", "")
	msgs := runMutated(t, pkg, "wirecover")
	for _, m := range msgs {
		if strings.Contains(m, "LinkRate") && strings.Contains(m, "never read") {
			return
		}
	}
	t.Errorf("wirecover did not flag the dropped LinkRate encode; got %q", msgs)
}

// TestSchemalockCatchesFieldAddition adds a FaultSpec field without
// bumping VersionFaultSpec and asserts schemalock demands the bump.
func TestSchemalockCatchesFieldAddition(t *testing.T) {
	if testing.Short() {
		t.Skip("package type-check skipped in -short mode")
	}
	pkg := loadMutated(t, "bfvlsi/internal/wire", "../wire", "fault.go",
		"\tLinkRate float64\n", "\tLinkRate float64\n\tAddedRate float64\n")
	msgs := runMutated(t, pkg, "schemalock")
	for _, m := range msgs {
		if strings.Contains(m, "FaultSpec") && strings.Contains(m, "bump the version") {
			return
		}
	}
	t.Errorf("schemalock did not demand a version bump for the added field; got %q", msgs)
}

// TestStatecoverCatchesDroppedRestore deletes the HaveMap restore
// assignment from the real adaptive router and asserts statecover
// reports the field as never read on the restore side.
func TestStatecoverCatchesDroppedRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("package type-check skipped in -short mode")
	}
	pkg := loadMutated(t, "bfvlsi/internal/adaptive", "../adaptive", "state.go",
		"\tr.haveMap = st.HaveMap\n", "")
	msgs := runMutated(t, pkg, "statecover")
	for _, m := range msgs {
		if strings.Contains(m, "HaveMap") && strings.Contains(m, "never read in the restore path") {
			return
		}
	}
	t.Errorf("statecover did not flag the dropped HaveMap restore; got %q", msgs)
}
