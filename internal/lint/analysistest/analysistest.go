// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want` comments in the fixture
// source — the golden-test harness of the bflint suite, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. A line that
// should be flagged carries a trailing comment of the form
//
//	code() // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. Every
// diagnostic must match a want and every want must be matched, or the
// test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/load"
)

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, and compares diagnostics against the fixtures' want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := load.New()
	fx := &fixtureImporter{testdata: testdata, loader: ld, base: ld.Importer(), cache: map[string]*load.Package{}}
	ld.SetImporter(fx)
	for _, path := range pkgPaths {
		pkg, err := fx.load(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		checkPackage(t, a, pkg)
	}
}

// fixtureImporter resolves import paths against the fixture tree first
// and falls back to the surrounding loader (source importer) for the
// standard library.
type fixtureImporter struct {
	testdata string
	loader   *load.Loader
	base     types.Importer
	cache    map[string]*load.Package
}

func (fx *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, err := fx.load(path); err == nil {
		return p.Types, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return fx.base.Import(path)
}

func (fx *fixtureImporter) load(path string) (*load.Package, error) {
	if p, ok := fx.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fx.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", path, dir)
	}
	pkg, err := fx.loader.Check(path, dir, files)
	if err != nil {
		return nil, err
	}
	fx.cache[path] = pkg
	return pkg, nil
}

// expectation is one want regexp anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func checkPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	wants := collectWants(t, pkg.Fset, pkg.Files)

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer failed on %s: %v", a.Name, pkg.Path, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !matchWant(wants, pos.Filename, pos.Line, d.Message) {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.raw, filepath.Base(w.file), w.line)
		}
	}
}

func matchWant(wants []*expectation, file string, line int, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantRE extracts the quoted regexps of a want comment. Both
// double-quoted and backquoted Go string literals are accepted.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range wantRE.FindAllString(text[len("want "):], -1) {
					raw, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: malformed want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}
