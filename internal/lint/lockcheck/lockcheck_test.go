package lockcheck_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "guarded")
}
