// Package lockcheck implements the bflint analyzer enforcing the
// //bflint:guardedby annotation: a struct field annotated
//
//	type cache struct {
//		mu      sync.Mutex
//		entries map[string]*entry //bflint:guardedby mu
//	}
//
// may only be read or written while the named sibling mutex is held on
// EVERY control-flow path to the access — checked with the
// internal/lint/callgraph lockset analysis, and interprocedurally:
// an unexported helper may rely on its callers holding the lock
// (the *Locked-suffix idiom), in which case every recorded call site is
// checked instead, through up to callgraph.SummaryRounds levels of
// helpers.
//
// Soundness limits (documented in DESIGN.md §12): the lock must be a
// sibling field reachable by the same base path as the guarded field
// (c.entries ↔ c.mu); accesses through non-path expressions
// (m[k].field, f().field) and locals aliased from shared objects are
// not checked; RLock counts as Lock (the analyzer does not distinguish
// read from write accesses); fresh objects built locally from a
// composite literal or new() are exempt until they escape.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bfvlsi/internal/lint/analysis"
	"bfvlsi/internal/lint/callgraph"
)

// Analyzer enforces //bflint:guardedby field annotations.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "fields annotated //bflint:guardedby mu must only be accessed with the named " +
		"sibling mutex held on every CFG path, interprocedurally through unexported helpers",
	Run: run,
}

// maxObligationDepth bounds how many caller levels an unexported
// helper's lock obligation may climb before the access is reported.
const maxObligationDepth = callgraph.SummaryRounds

// obligation says: node's body accesses a guarded field whose lock is
// reached through node's parameter Param at RelPath; some caller must
// hold it at every call site.
type obligation struct {
	node      *callgraph.Node
	param     int
	relPath   string    // lock path below the parameter, e.g. ".mu"
	field     string    // guarded field name, for the message
	lock      string    // lock rendering at the access, for the message
	accessPos token.Pos // the original guarded access
	depth     int
}

type checker struct {
	pass    *analysis.Pass
	graph   *callgraph.Graph
	guarded map[*types.Var]string // field object -> sibling lock field name
	queue   []obligation
	// reported de-duplicates diagnostics per position.
	reported map[token.Pos]bool
	// litLocks caches per-literal lockset analyses.
	litLocks map[*ast.FuncLit]*callgraph.LockInfo
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{
		pass:     pass,
		guarded:  collectGuarded(pass),
		reported: map[token.Pos]bool{},
		litLocks: map[*ast.FuncLit]*callgraph.LockInfo{},
	}
	if len(c.guarded) == 0 {
		return nil, nil
	}
	c.graph = callgraph.Build(pass.Pkg, pass.TypesInfo, pass.Files)
	for _, node := range c.graph.Nodes {
		if pass.InTestFile(node.Decl.Pos()) {
			continue
		}
		c.checkFunc(node)
	}
	c.drainObligations()
	return nil, nil
}

// collectGuarded maps annotated struct fields to their lock field name.
// The annotation must name a sibling field of the same struct.
func collectGuarded(pass *analysis.Pass) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				lock := guardAnnotation(field)
				if lock == "" {
					continue
				}
				if !siblings[lock] {
					pass.Reportf(field.Pos(),
						"//bflint:guardedby names %s, which is not a sibling field of this struct", lock)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[v] = lock
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the lock name from a field's
// //bflint:guardedby comment (doc or trailing), or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "bflint:guardedby"); ok {
				if fields := strings.Fields(rest); len(fields) > 0 {
					return fields[0]
				}
			}
		}
	}
	return ""
}

// checkFunc checks every guarded-field access in one declared function,
// analyzing nested function literals against their own (empty-at-entry)
// locksets: a goroutine or deferred closure does not inherit the locks
// the enclosing function held when it was created.
func (c *checker) checkFunc(node *callgraph.Node) {
	fresh := freshLocals(c.pass.TypesInfo, node.Decl.Body)
	c.walk(node, node.Decl.Body, c.graph.Locksets(node), true, fresh)
}

func (c *checker) walk(node *callgraph.Node, body ast.Node, li *callgraph.LockInfo, topLevel bool, fresh map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if body == n {
				return true
			}
			lil, ok := c.litLocks[n]
			if !ok {
				lil = callgraph.Locksets(c.pass.TypesInfo, n.Body)
				c.litLocks[n] = lil
			}
			c.walk(node, n.Body, lil, false, fresh)
			return false
		case *ast.SelectorExpr:
			c.checkAccess(node, n, li, topLevel, fresh)
		}
		return true
	})
}

// checkAccess validates one selector against the guardedby contract.
func (c *checker) checkAccess(node *callgraph.Node, sel *ast.SelectorExpr, li *callgraph.LockInfo, topLevel bool, fresh map[types.Object]bool) {
	obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	lockName, ok := c.guarded[obj]
	if !ok {
		return
	}
	base, ok := callgraph.PathOf(c.pass.TypesInfo, sel.X)
	if !ok {
		return // non-path base (m[k].field): outside the contract
	}
	if fresh[base.Root] && base.Path == "" {
		return // object under construction, not yet shared
	}
	lockKey := callgraph.Key{Root: base.Root, Path: base.Path + "." + lockName}
	if li.Holds(sel.Sel.Pos(), lockKey) {
		return
	}
	field := base.Root.Name() + base.Path + "." + sel.Sel.Name
	lock := lockKey.String()

	// Not held here. An unexported function whose lock lives under its
	// own receiver or a parameter may shift the obligation to its
	// callers (the evictLocked idiom).
	if topLevel && !ast.IsExported(node.Func.Name()) {
		if idx, ok := c.paramIndexOf(node, base.Root); ok {
			c.queue = append(c.queue, obligation{
				node: node, param: idx, relPath: base.Path + "." + lockName,
				field: field, lock: lock, accessPos: sel.Sel.Pos(),
			})
			return
		}
	}
	c.report(sel.Sel.Pos(), field, lock, "")
}

// paramIndexOf maps an object to the node's receiver/parameter index.
func (c *checker) paramIndexOf(node *callgraph.Node, obj types.Object) (int, bool) {
	sig, ok := node.Func.Type().(*types.Signature)
	if !ok {
		return 0, false
	}
	if r := sig.Recv(); r != nil && r == obj {
		return callgraph.RecvParam, true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i, true
		}
	}
	return 0, false
}

// drainObligations checks each queued helper obligation at every
// recorded call site, climbing further up the graph when the caller
// itself forwards its own parameter, up to maxObligationDepth.
func (c *checker) drainObligations() {
	for len(c.queue) > 0 {
		ob := c.queue[0]
		c.queue = c.queue[1:]

		sites := c.graph.CallersOf(ob.node.Func)
		if len(sites) == 0 {
			// Nobody visibly calls the helper, so no caller can discharge
			// the obligation: report at the access itself.
			c.report(ob.accessPos, ob.field, ob.lock,
				" (helper has no recorded callers to hold it)")
			continue
		}
		for _, site := range sites {
			if c.pass.InTestFile(site.Call.Pos()) {
				continue
			}
			caller := site.Caller
			arg, ok := callgraph.ArgExpr(site.Call, ob.param)
			if ok {
				if u, isAddr := callgraph.Unparen(arg).(*ast.UnaryExpr); isAddr && u.Op == token.AND {
					arg = u.X
				}
			}
			var base callgraph.Key
			if ok {
				base, ok = callgraph.PathOf(c.pass.TypesInfo, arg)
			}
			if !ok {
				c.report(site.Call.Pos(), ob.field, ob.lock,
					" (call site passes a value the analyzer cannot name)")
				continue
			}
			lockKey := callgraph.Key{Root: base.Root, Path: base.Path + ob.relPath}
			li := c.lockInfoAt(caller, site.Call.Pos())
			if li.Holds(site.Call.Pos(), lockKey) {
				continue
			}
			// The caller may forward the obligation to its own callers
			// only when it is itself an unexported helper that somebody
			// calls; a root function (exported, or called by nobody) must
			// hold the lock here.
			if ob.depth+1 < maxObligationDepth && !ast.IsExported(caller.Func.Name()) &&
				len(c.graph.CallersOf(caller.Func)) > 0 && c.enclosesTopLevel(caller, site.Call.Pos()) {
				if idx, pok := c.paramIndexOf(caller, base.Root); pok {
					c.queue = append(c.queue, obligation{
						node: caller, param: idx, relPath: base.Path + ob.relPath,
						field: ob.field, lock: ob.lock,
						accessPos: ob.accessPos, depth: ob.depth + 1,
					})
					continue
				}
			}
			c.report(site.Call.Pos(), ob.field, lockKey.String(),
				" (callee "+ob.node.Func.Name()+" accesses it)")
		}
	}
}

// lockInfoAt returns the lockset analysis of the innermost function
// body (declared function or nested literal) containing pos.
func (c *checker) lockInfoAt(node *callgraph.Node, pos token.Pos) *callgraph.LockInfo {
	var innermost *ast.FuncLit
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				innermost = lit
				return true
			}
			return false
		}
		return true
	})
	if innermost == nil {
		return c.graph.Locksets(node)
	}
	li, ok := c.litLocks[innermost]
	if !ok {
		li = callgraph.Locksets(c.pass.TypesInfo, innermost.Body)
		c.litLocks[innermost] = li
	}
	return li
}

// enclosesTopLevel reports whether pos sits directly in the node's body
// rather than inside a nested literal (whose lockset is its own, so the
// caller-holds-it escape hatch does not apply).
func (c *checker) enclosesTopLevel(node *callgraph.Node, pos token.Pos) bool {
	top := true
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit.Body.Pos() <= pos && pos <= lit.Body.End() {
				top = false
			}
			return false
		}
		return true
	})
	return top
}

func (c *checker) report(pos token.Pos, field, lock, suffix string) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos,
		"%s is guarded by %s (//bflint:guardedby) but %s is not held on every path to this access%s",
		field, lock, lock, suffix)
}

// freshLocals finds local variables bound to a brand-new object — a
// composite literal, &composite, or new(T) — and never reassigned from
// anything else: accesses through them are construction, not sharing.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			if isFreshExpr(as.Rhs[i]) && as.Tok == token.DEFINE {
				fresh[obj] = true
			} else if as.Tok == token.ASSIGN {
				delete(fresh, obj)
			}
		}
		return true
	})
	return fresh
}

func isFreshExpr(e ast.Expr) bool {
	switch e := callgraph.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := callgraph.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := callgraph.Unparen(e.Fun).(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}
