// Package guarded is the lockcheck fixture: every shape of
// //bflint:guardedby access the analyzer distinguishes — straight-line
// locked access, deferred unlock, branch-only locks, the unexported
// *Locked helper idiom discharged (or not) at call sites, obligation
// chains through two helpers, goroutine literals that do not inherit
// the creator's lockset, and construction-time exemptions.
package guarded

import "sync"

type table struct {
	mu      sync.Mutex
	count   int            //bflint:guardedby mu
	entries map[string]int //bflint:guardedby mu
}

type badAnnot struct {
	//bflint:guardedby missing
	n int // want `names missing, which is not a sibling field`
}

// Good: lock held across the access.
func (t *table) good() {
	t.mu.Lock()
	t.count++
	t.mu.Unlock()
}

// Good: deferred unlock holds to the end of the body.
func (t *table) goodDeferred(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.entries[k]
}

// Bad: no lock at all.
func (t *table) Plain() int {
	return t.count // want `t\.count is guarded by t\.mu`
}

// Bad: locked on one arm only — not held on every path.
func (t *table) branchy(b bool) {
	if b {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	t.count++ // want `t\.count is guarded by t\.mu`
}

// The *Locked helper idiom: the unexported helper relies on its callers.
func (t *table) bumpLocked() {
	t.count++ // the obligation moves to the call sites
}

// Good: caller discharges the obligation.
func (t *table) viaHelper() {
	t.mu.Lock()
	t.bumpLocked()
	t.mu.Unlock()
}

// Bad: this call site does not hold t.mu.
func (t *table) viaHelperBad() {
	t.bumpLocked() // want `t\.count is guarded by t\.mu .*callee bumpLocked`
}

// Obligation chains: outerLocked -> bumpLocked, both unexported.
func (t *table) outerLocked() {
	t.bumpLocked()
}

func (t *table) chainGood() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.outerLocked()
}

func (t *table) chainBad() {
	t.outerLocked() // want `t\.count is guarded by t\.mu .*callee outerLocked`
}

// Bad: an unexported helper nobody calls can never discharge its
// obligation.
func (t *table) orphanLocked() {
	t.count-- // want `t\.count is guarded by t\.mu .*no recorded callers`
}

// Bad: a goroutine does not inherit the lock its creator held.
func (t *table) spawns() {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.count++ // want `t\.count is guarded by t\.mu`
	}()
}

// Good: construction of a fresh, unshared object is exempt.
func newTable() *table {
	t := &table{entries: map[string]int{}}
	t.count = 0
	return t
}

// Good: lock named through a nested path (s.inner.mu guards
// s.inner.count).
type wrapper struct {
	inner table
}

func (w *wrapper) nested() {
	w.inner.mu.Lock()
	w.inner.count++
	w.inner.mu.Unlock()
}

// Bad: nested path without the lock.
func (w *wrapper) nestedBad() {
	w.inner.count++ // want `w\.inner\.count is guarded by w\.inner\.mu`
}

var _ = badAnnot{}
var _ = newTable
