package hotalloc_test

import (
	"testing"

	"bfvlsi/internal/lint/analysistest"
	"bfvlsi/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "hotsim")
}
